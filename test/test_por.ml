(* Stubborn-set partial-order reduction (lib/tpn/indep.ml and its
   wiring through every engine): static-relation sanity and the
   net-level gate, per-state determinism and strictness of [reduce],
   verdict preservation POR-on vs POR-off on hand-built and generated
   specifications across all four engines, the strict (and growing)
   visited-state reduction on independent task sets, and the unified
   ezrt_por_* / ezrt_gc_* accounting every engine shares. *)

open Ezrealtime
open Test_util
module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec
module Case_studies = Ezrt_spec.Case_studies
module Spec_gen = Ezrt_gen.Spec_gen
module Translate = Ezrt_blocks.Translate
module Search = Ezrt_sched.Search
module Par_search = Ezrt_sched.Par_search
module Class_search = Ezrt_sched.Class_search
module Par_class = Ezrt_sched.Par_class
module Indep = Ezrt_tpn.Indep
module State = Ezrt_tpn.State

(* N independent zero-laxity tasks: every task must run back-to-back
   from time 0, so the set is infeasible for N >= 2, and the
   infeasibility proof must consider the task bookkeeping of all N
   tasks — factorially many interleavings unless the reduction
   collapses them.  The exponential family behind the A20 bench. *)
let zero_laxity n =
  let tasks =
    List.init n (fun i ->
        Task.make
          ~name:(Printf.sprintf "c%d" i)
          ~wcet:1 ~deadline:1 ~period:60 ())
  in
  Spec.make ~name:(Printf.sprintf "zl-%d" n) ~tasks ()

(* Same shape with one unit of laxity: feasible, exercises the
   feasible-path early exit under reduction. *)
let snug n =
  let tasks =
    List.init n (fun i ->
        Task.make
          ~name:(Printf.sprintf "c%d" i)
          ~wcet:1 ~deadline:2 ~period:60 ())
  in
  Spec.make ~name:(Printf.sprintf "snug-%d" n) ~tasks ()

let verdict = function
  | Ok _ -> "feasible"
  | Error Search.Infeasible -> "infeasible"
  | Error Search.Budget_exhausted -> "budget"

let class_verdict = function
  | Ok _ -> "feasible"
  | Error Class_search.Infeasible -> "infeasible"
  | Error Class_search.Budget_exhausted -> "budget"
  | Error Class_search.Extraction_failed -> "extraction-failed"

let seq ?(max_stored = 2_000_000) model ~por =
  Search.find_schedule
    ~options:{ Search.default_options with por; max_stored }
    model

(* --- static relations and the net-level gate ------------------------- *)

let test_mine_pump_applicable () =
  let model = Translate.translate Case_studies.mine_pump in
  let ind =
    Indep.create model.Translate.net ~final_place:model.Translate.final_place
      ~dead_places:model.Translate.dead_places
  in
  check_bool "translated net passes the gate" true (Indep.applicable ind);
  (* the dependency relation is symmetric by construction *)
  let n = Ezrt_tpn.Pnet.transition_count model.Translate.net in
  for t = 0 to n - 1 do
    List.iter
      (fun u ->
        check_bool
          (Printf.sprintf "dep symmetric (%d,%d)" t u)
          true
          (List.mem t (Indep.dependents ind u)))
      (Indep.dependents ind t)
  done

let test_gate_rejects_dead_consumer () =
  let open Ezrt_tpn in
  let b = Pnet.Builder.create "dead-consumer" in
  let p0 = Pnet.Builder.add_place b ~tokens:1 "p0" in
  let pd = Pnet.Builder.add_place b "pd" in
  let pf = Pnet.Builder.add_place b "pf" in
  let t0 = Pnet.Builder.add_transition b "t0" Time_interval.zero in
  let t1 = Pnet.Builder.add_transition b "t1" Time_interval.zero in
  Pnet.Builder.arc_pt b p0 t0;
  Pnet.Builder.arc_tp b t0 pd;
  Pnet.Builder.arc_pt b pd t1;
  Pnet.Builder.arc_tp b t1 pf;
  let net = Pnet.Builder.build b in
  let ind = Indep.create net ~final_place:pf ~dead_places:[ pd ] in
  check_bool "dead place with a consumer fails the gate" false
    (Indep.applicable ind)

let test_gate_rejects_slow_high_priority () =
  let open Ezrt_tpn in
  let b = Pnet.Builder.create "slow-high-priority" in
  let p0 = Pnet.Builder.add_place b ~tokens:1 "p0" in
  let pf = Pnet.Builder.add_place b "pf" in
  (* better-than-default priority on a non-[0,0] transition *)
  let t0 =
    Pnet.Builder.add_transition b
      ~priority:(Pnet.default_priority - 1)
      "t0" (Time_interval.make 1 2)
  in
  Pnet.Builder.arc_pt b p0 t0;
  Pnet.Builder.arc_tp b t0 pf;
  let net = Pnet.Builder.build b in
  let ind = Indep.create net ~final_place:pf ~dead_places:[] in
  check_bool "slow better-priority transition fails the gate" false
    (Indep.applicable ind)

(* [reduce] must be deterministic in the state and, when it reduces,
   return a strict order-preserving subset of the fireable list.  Walk
   the first urgent states of a multi-task net and check both at each
   stop. *)
let test_reduce_deterministic_and_strict () =
  let model = Translate.translate (zero_laxity 5) in
  let net = model.Translate.net in
  let ind =
    Indep.create net ~final_place:model.Translate.final_place
      ~dead_places:model.Translate.dead_places
  in
  check_bool "gate holds" true (Indep.applicable ind);
  let rec is_subsequence xs ys =
    match (xs, ys) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs', y :: ys' ->
      if x = y then is_subsequence xs' ys' else is_subsequence xs ys'
  in
  let reductions = ref 0 in
  let s = ref (State.initial net) in
  (try
     for _ = 1 to 60 do
       match State.fireable net !s with
       | [] -> raise Exit
       | fireable ->
         let urgent = State.min_dub net !s = Ezrt_tpn.Time_interval.Finite 0 in
         if urgent && List.length fireable > 1 then begin
           let run () =
             Indep.reduce ind
               ~enabled:(State.is_enabled !s)
               ~dub_zero:(fun t ->
                 State.dub net !s t = Ezrt_tpn.Time_interval.Finite 0)
               ~tokens:(State.tokens !s) fireable
           in
           let a = run () and b = run () in
           check_bool "reduce is deterministic" true (a = b);
           match a with
           | Indep.Reduced e ->
             incr reductions;
             check_bool "strictly smaller" true
               (List.length e < List.length fireable);
             check_bool "non-empty" true (e <> []);
             check_bool "order-preserving subset" true (is_subsequence e fireable)
           | Indep.Fallback -> ()
         end;
         let t = List.hd fireable in
         s := State.fire net !s t (State.dlb net !s t)
     done
   with Exit -> ());
  check_bool "walk hit at least one reduction" true (!reductions > 0)

(* --- verdict preservation ------------------------------------------- *)

let engines_agree name model =
  let (o_on, _) = seq model ~por:true in
  let (o_off, _) = seq model ~por:false in
  check_string (name ^ ": sequential") (verdict o_off) (verdict o_on);
  let c_on, _ = Class_search.find_schedule ~por:true model in
  let c_off, _ = Class_search.find_schedule ~por:false model in
  check_string (name ^ ": classes") (class_verdict c_off) (class_verdict c_on);
  (* the discrete and class engines must also agree with each other *)
  check_string (name ^ ": discrete vs classes") (verdict o_on)
    (class_verdict c_on)

let test_verdicts_sequential_engines () =
  List.iter
    (fun (name, spec) -> engines_agree name (Translate.translate spec))
    [
      ("zl-4", zero_laxity 4);
      ("snug-5", snug 5);
      ("mine-pump", Case_studies.mine_pump);
      ("fig3", Case_studies.fig3_precedence);
    ]

let test_verdicts_parallel_engines () =
  let model = Translate.translate (zero_laxity 6) in
  let (o_ref, _) = seq model ~por:false in
  let p_on =
    Par_search.find_schedule
      ~options:{ Search.default_options with por = true }
      ~domains:2 model
  in
  let p_off =
    Par_search.find_schedule
      ~options:{ Search.default_options with por = false }
      ~domains:2 model
  in
  check_string "parallel on = off" (verdict p_off.Par_search.outcome)
    (verdict p_on.Par_search.outcome);
  check_string "parallel = sequential" (verdict o_ref)
    (verdict p_on.Par_search.outcome);
  let pc_on = Par_class.find_schedule ~por:true ~domains:2 model in
  let pc_off = Par_class.find_schedule ~por:false ~domains:2 model in
  check_string "parallel classes on = off"
    (class_verdict pc_off.Par_class.outcome)
    (class_verdict pc_on.Par_class.outcome);
  check_string "parallel classes = sequential" (verdict o_ref)
    (class_verdict pc_on.Par_class.outcome)

let test_verdicts_generated_specs () =
  List.iter
    (fun i ->
      let spec = Spec_gen.spec_at ~seed:42 i in
      let model = Translate.translate spec in
      let (o_on, _) = seq ~max_stored:300_000 model ~por:true in
      let (o_off, _) = seq ~max_stored:300_000 model ~por:false in
      check_string (Printf.sprintf "campaign spec %d" i) (verdict o_off)
        (verdict o_on))
    (List.init 12 Fun.id)

let prop_por_preserves_verdict =
  qcheck ~count:40 "POR preserves the sequential verdict" arbitrary_spec
    (fun spec ->
      let model = Translate.translate spec in
      let (o_on, _) = seq ~max_stored:300_000 model ~por:true in
      let (o_off, _) = seq ~max_stored:300_000 model ~por:false in
      verdict o_on = verdict o_off)

(* --- strict state-count reduction ------------------------------------ *)

(* The acceptance family: on N independent zero-laxity tasks the
   reduction must at least halve the visited-state count at N = 8 and
   the ratio must grow with N (the reduction is exponential in the
   number of independent tasks, the full expansion factorial). *)
let test_reduction_at_least_2x_and_growing () =
  let ratio n =
    let model = Translate.translate (zero_laxity n) in
    let (o_on, m_on) = seq model ~por:true in
    let (o_off, m_off) = seq model ~por:false in
    check_string
      (Printf.sprintf "zl-%d verdicts agree" n)
      (verdict o_off) (verdict o_on);
    check_string (Printf.sprintf "zl-%d infeasible" n) "infeasible"
      (verdict o_on);
    check_bool
      (Printf.sprintf "zl-%d reduced counter moved" n)
      true
      (m_on.Search.por_reduced > 0);
    float_of_int m_off.Search.visited /. float_of_int m_on.Search.visited
  in
  let r6 = ratio 6 and r8 = ratio 8 in
  check_bool
    (Printf.sprintf "at least 2x at n=8 (got %.2f)" r8)
    true (r8 >= 2.0);
  check_bool
    (Printf.sprintf "ratio grows with n (%.2f -> %.2f)" r6 r8)
    true (r8 > r6)

let test_reduction_parallel () =
  let model = Translate.translate (zero_laxity 8) in
  let on =
    Par_search.find_schedule
      ~options:{ Search.default_options with por = true }
      ~domains:2 model
  in
  let off =
    Par_search.find_schedule
      ~options:{ Search.default_options with por = false }
      ~domains:2 model
  in
  check_string "verdicts agree" (verdict off.Par_search.outcome)
    (verdict on.Par_search.outcome);
  (* the shared-table race makes exact counts nondeterministic; the
     reduction is ~2.4x, so well clear of a conservative 1.5x floor *)
  check_bool "at least 1.5x fewer visited states" true
    (3 * on.Par_search.metrics.Search.visited
    <= 2 * off.Par_search.metrics.Search.visited)

let test_reduction_classes () =
  let model = Translate.translate (zero_laxity 8) in
  let o_on, m_on = Class_search.find_schedule ~por:true model in
  let o_off, m_off = Class_search.find_schedule ~por:false model in
  check_string "verdicts agree" (class_verdict o_off) (class_verdict o_on);
  check_bool "at least 2x fewer visited classes" true
    (2 * m_on.Class_search.visited <= m_off.Class_search.visited);
  check_bool "reduced counter moved" true (m_on.Class_search.por_reduced > 0)

(* --- unified accounting ---------------------------------------------- *)

(* Every engine reports the POR triple with the same semantics: with
   the reduction off all three are zero; with it on, the zero-laxity
   net yields reductions on every engine; and the ezrt_por_* series
   carry per-engine labels through one shared flush, alongside the
   end-of-span GC gauges. *)
let test_unified_por_accounting () =
  Obs_metrics.reset_all ();
  let model = Translate.translate (zero_laxity 6) in
  let (_, m_seq_off) = seq model ~por:false in
  check_int "seq off: reduced" 0 m_seq_off.Search.por_reduced;
  check_int "seq off: fallback" 0 m_seq_off.Search.por_fallback;
  check_int "seq off: skipped" 0 m_seq_off.Search.por_skipped;
  let (_, m_seq) = seq model ~por:true in
  let par =
    Par_search.find_schedule
      ~options:{ Search.default_options with por = true }
      ~domains:2 model
  in
  let _, m_cls = Class_search.find_schedule ~por:true model in
  let pc = Par_class.find_schedule ~por:true ~domains:2 model in
  check_bool "seq reduced > 0" true (m_seq.Search.por_reduced > 0);
  check_bool "par reduced > 0" true
    (par.Par_search.metrics.Search.por_reduced > 0);
  check_bool "classes reduced > 0" true (m_cls.Class_search.por_reduced > 0);
  check_bool "par classes reduced > 0" true
    (pc.Par_class.metrics.Class_search.por_reduced > 0);
  (* one flush vocabulary: every engine label exports the same series *)
  List.iter
    (fun engine ->
      check_bool (engine ^ " exports ezrt_por_reduced_total") true
        (Obs_metrics.value
           (Obs_metrics.counter
              ~labels:[ ("engine", engine) ]
              "ezrt_por_reduced_total")
        > 0))
    [ "discrete-incremental"; "discrete-parallel"; "classes";
      "classes-parallel" ];
  (* the end-of-search GC gauges were flushed by the same path *)
  check_bool "gc minor-words gauge set" true
    (Obs_metrics.gauge_value (Obs_metrics.gauge "ezrt_gc_minor_words") > 0);
  let contains ~needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  let dump = Obs_metrics.dump () in
  List.iter
    (fun series ->
      check_bool (series ^ " in dump") true (contains ~needle:series dump))
    [
      "ezrt_por_reduced_total";
      "ezrt_por_fallback_total";
      "ezrt_por_skipped_total";
      "ezrt_gc_minor_words";
      "ezrt_gc_major_words";
      "ezrt_gc_compactions";
    ]

let suite =
  [
    case "mine-pump net passes the gate; dep symmetric"
      test_mine_pump_applicable;
    case "gate rejects dead place with a consumer"
      test_gate_rejects_dead_consumer;
    case "gate rejects slow better-priority transition"
      test_gate_rejects_slow_high_priority;
    case "reduce is deterministic, strict, order-preserving"
      test_reduce_deterministic_and_strict;
    case "verdicts preserved: sequential engines"
      test_verdicts_sequential_engines;
    slow_case "verdicts preserved: parallel engines"
      test_verdicts_parallel_engines;
    slow_case "verdicts preserved: seed-42 campaign prefix"
      test_verdicts_generated_specs;
    prop_por_preserves_verdict;
    slow_case "zero-laxity family: >= 2x and growing"
      test_reduction_at_least_2x_and_growing;
    slow_case "parallel engine reduces too" test_reduction_parallel;
    slow_case "class engine reduces too" test_reduction_classes;
    case "unified ezrt_por_* / ezrt_gc_* accounting"
      test_unified_por_accounting;
  ]
