open Ezrt_tpn
module Translate = Ezrt_blocks.Translate
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let test_incidence () =
  let net = sequential_net () in
  let c = Invariants.incidence net in
  (* p0 -t0-> p1 -t1-> p2 *)
  check_int "p0 loses to t0" (-1) c.(0).(0);
  check_int "p1 gains from t0" 1 c.(1).(0);
  check_int "p1 loses to t1" (-1) c.(1).(1);
  check_int "p2 gains from t1" 1 c.(2).(1);
  check_int "p0 untouched by t1" 0 c.(0).(1)

let test_is_invariant () =
  let net = sequential_net () in
  check_bool "all-ones conserves the token" true
    (Invariants.is_invariant net [| 1; 1; 1 |]);
  check_bool "partial sum is not invariant" false
    (Invariants.is_invariant net [| 1; 1; 0 |]);
  check_bool "wrong length" false (Invariants.is_invariant net [| 1 |])

let test_weighted_tokens () =
  check_int "dot product" 7 (Invariants.weighted_tokens [| 1; 2 |] [| 3; 2 |])

let test_sequential_invariants () =
  let net = sequential_net () in
  let invs = Invariants.invariants_of (Invariants.p_invariants net) in
  check_int "one minimal invariant" 1 (List.length invs);
  check_bool "it is the token count" true (List.hd invs = [| 1; 1; 1 |]);
  check_int "its constant is 1" 1
    (Invariants.conserved_constant net (List.hd invs))

let test_ring_invariant () =
  let net = ring_net 5 7 in
  let invs = Invariants.invariants_of (Invariants.p_invariants net) in
  check_int "single circulating token" 1 (List.length invs);
  check_bool "uniform weights" true
    (Array.for_all (fun w -> w = 1) (List.hd invs))

let test_conflict_invariant () =
  let net = conflict_net () in
  let invs = Invariants.invariants_of (Invariants.p_invariants net) in
  (* p0 + p1 + p2 conserved *)
  check_bool "found" true (List.mem [| 1; 1; 1 |] invs);
  List.iter
    (fun y -> check_bool "each is an invariant" true (Invariants.is_invariant net y))
    invs

(* The load-bearing one: the processor/exclusion places of a translated
   model are covered by an invariant with constant 1 — a structural
   proof of mutual exclusion, independent of the state-space search. *)
let test_resources_structurally_safe () =
  List.iter
    (fun (name, spec) ->
      let model = Translate.translate spec in
      let outcome =
        Invariants.p_invariants ~max_rows:20_000 model.Translate.net
      in
      check_bool (name ^ ": Farkas completed") false
        (Invariants.is_truncated outcome);
      let invs = Invariants.invariants_of outcome in
      List.iter
        (fun y ->
          check_bool (name ^ ": Farkas output is an invariant") true
            (Invariants.is_invariant model.Translate.net y))
        invs;
      List.iter
        (fun place ->
          match Invariants.invariant_covering model.Translate.net place invs with
          | Some y ->
            (* the invariant bounds the place at constant / weight
               tokens; resources must be bounded at exactly 1 *)
            check_int
              (name ^ ": invariant proves the resource is 1-safe")
              1
              (Invariants.conserved_constant model.Translate.net y / y.(place))
          | None ->
            Alcotest.failf "%s: resource place %s not covered" name
              (Pnet.place_name model.Translate.net place))
        model.Translate.resource_places)
    [
      ("fig3", Case_studies.fig3_precedence);
      ("fig4", Case_studies.fig4_exclusion);
      ("quickstart", Case_studies.quickstart);
    ]

let test_row_bound () =
  let net =
    (Translate.translate Case_studies.fig4_exclusion).Translate.net
  in
  match Invariants.p_invariants ~max_rows:1 net with
  | Invariants.Truncated salvaged ->
    (* the salvaged rows must still be genuine invariants *)
    List.iter
      (fun y ->
        check_bool "salvaged row is an invariant" true
          (Invariants.is_invariant net y))
      salvaged
  | Invariants.Complete _ ->
    Alcotest.fail "expected the row bound to trip"

let prop_invariants_hold_along_runs =
  qcheck ~count:60 "invariants constant along random ring runs"
    QCheck.(pair (int_range 2 5) (int_range 0 50))
    (fun (n, seed) ->
      let net = ring_net n seed in
      let invs = Invariants.invariants_of (Invariants.p_invariants net) in
      let rec walk s steps =
        steps = 0
        || List.for_all
             (fun y ->
               Invariants.weighted_tokens y s.State.marking
               = Invariants.conserved_constant net y)
             invs
           &&
           match State.fireable net s with
           | [] -> true
           | tid :: _ ->
             walk (State.fire net s tid (State.dlb net s tid)) (steps - 1)
      in
      walk (State.initial net) 20)

let suite =
  [
    case "incidence matrix" test_incidence;
    case "is_invariant" test_is_invariant;
    case "weighted tokens" test_weighted_tokens;
    case "sequential net invariant" test_sequential_invariants;
    case "ring invariant" test_ring_invariant;
    case "conflict invariant" test_conflict_invariant;
    case "resources are structurally safe" test_resources_structurally_safe;
    case "row bound trips gracefully" test_row_bound;
    prop_invariants_hold_along_runs;
  ]
