open Ezrt_tpn
open Test_util

let test_universe_nonempty () =
  let d = Dbm.create 2 in
  Dbm.canonicalize d;
  check_bool "nonempty" false (Dbm.is_empty d);
  check_int "dim" 2 (Dbm.dim d)

let test_constrain_and_bounds () =
  let d = Dbm.create 1 in
  Dbm.constrain d 1 0 7;
  Dbm.constrain d 0 1 (-2);
  Dbm.canonicalize d;
  check_bool "consistent" false (Dbm.is_empty d);
  check_bool "bounds" true (Dbm.bounds d 1 = (2, 7))

let test_tightening_only () =
  let d = Dbm.create 1 in
  Dbm.constrain d 1 0 5;
  Dbm.constrain d 1 0 9;  (* looser: ignored *)
  check_int "kept tight" 5 (Dbm.get d 1 0)

let test_inconsistency_detected () =
  let d = Dbm.create 1 in
  Dbm.constrain d 1 0 1;  (* x <= 1 *)
  Dbm.constrain d 0 1 (-3);  (* x >= 3 *)
  Dbm.canonicalize d;
  check_bool "empty" true (Dbm.is_empty d)

let test_transitive_tightening () =
  (* x - y <= 2, y <= 3  =>  x <= 5 *)
  let d = Dbm.create 2 in
  Dbm.constrain d 1 2 2;
  Dbm.constrain d 2 0 3;
  Dbm.constrain d 0 1 0;
  Dbm.constrain d 0 2 0;
  Dbm.canonicalize d;
  check_int "derived upper bound" 5 (Dbm.get d 1 0)

let test_equal_hash () =
  let make () =
    let d = Dbm.create 2 in
    Dbm.constrain d 1 0 4;
    Dbm.constrain d 0 2 (-1);
    Dbm.canonicalize d;
    d
  in
  let a = make () and b = make () in
  check_bool "equal" true (Dbm.equal a b);
  check_int "hash agrees" (Dbm.hash a) (Dbm.hash b);
  Dbm.constrain b 1 0 2;
  check_bool "not equal after change" false (Dbm.equal a b)

let test_rebase () =
  (* two clocks x1 in [1,3], x2 in [2,5]; fire variable 1 first and
     rebase: x2' = x2 - x1 in [max(0,2-3), 5-1] = [0,4] with the
     fires-first constraint applied beforehand *)
  let d = Dbm.create 2 in
  Dbm.constrain d 1 0 3;
  Dbm.constrain d 0 1 (-1);
  Dbm.constrain d 2 0 5;
  Dbm.constrain d 0 2 (-2);
  Dbm.constrain d 1 2 0;  (* x1 <= x2: fires first *)
  Dbm.canonicalize d;
  let r = Dbm.rebase d 1 ~keep:[ 2 ] in
  Dbm.canonicalize r;
  check_bool "nonempty" false (Dbm.is_empty r);
  check_bool "rebased bounds" true (Dbm.bounds r 1 = (0, 4))

let test_add_fresh () =
  let d = Dbm.create 1 in
  Dbm.constrain d 1 0 3;
  Dbm.constrain d 0 1 0;
  let d' = Dbm.add_fresh d [ (2, 6); (0, Dbm.infinity) ] in
  Dbm.canonicalize d';
  check_int "three variables" 3 (Dbm.dim d');
  check_bool "fresh bounds" true (Dbm.bounds d' 2 = (2, 6));
  check_bool "unbounded fresh" true (snd (Dbm.bounds d' 3) >= Dbm.infinity)

let test_subset () =
  let mk hi =
    let d = Dbm.create 1 in
    Dbm.constrain d 1 0 hi;
    Dbm.constrain d 0 1 0;
    Dbm.canonicalize d;
    d
  in
  check_bool "tighter in looser" true (Dbm.subset (mk 3) (mk 5));
  check_bool "looser not in tighter" false (Dbm.subset (mk 5) (mk 3));
  check_bool "reflexive" true (Dbm.subset (mk 4) (mk 4));
  check_bool "dimension mismatch" false (Dbm.subset (mk 3) (Dbm.create 2))

(* Seed-driven random canonical matrix, plus the LCG for drawing more
   values afterwards; the same recipe as prop_canonical_idempotent. *)
let random_canonical dim seed =
  let d = Dbm.create dim in
  let rng = ref seed in
  let next () =
    rng := ((!rng * 1103515245) + 12345) land 0x3fffffff;
    !rng
  in
  for _ = 1 to 6 do
    let i = next () mod (dim + 1) and j = next () mod (dim + 1) in
    if i <> j then Dbm.constrain d i j ((next () mod 15) - 3)
  done;
  Dbm.canonicalize d;
  (d, next)

let prop_tighten_bit_identical =
  qcheck ~count:500 "tighten = constrain + canonicalize (bit-for-bit)"
    QCheck.(pair (int_range 1 4) (int_range 0 1_000_000))
    (fun (dim, seed) ->
      let d, next = random_canonical dim seed in
      if Dbm.is_empty d then true
      else begin
        (* a short chain, like State_class.fire applies *)
        let inc = Dbm.copy d and full = Dbm.copy d in
        for _ = 1 to 3 do
          let i = next () mod (dim + 1) and j = next () mod (dim + 1) in
          if i <> j then begin
            let b = (next () mod 15) - 5 in
            Dbm.tighten inc i j b;
            Dbm.constrain full i j b
          end
        done;
        Dbm.canonicalize full;
        if Dbm.is_empty full then Dbm.is_empty inc else Dbm.equal inc full
      end)

let prop_subset_partial_order =
  qcheck ~count:300 "subset reflexive + antisymmetric on canonical forms"
    QCheck.(triple (int_range 1 3) (int_range 0 1_000_000)
              (int_range 0 1_000_000))
    (fun (dim, s1, s2) ->
      let a, _ = random_canonical dim s1 in
      let b, _ = random_canonical dim s2 in
      if Dbm.is_empty a || Dbm.is_empty b then true
      else
        Dbm.subset a a
        && ((not (Dbm.subset a b && Dbm.subset b a)) || Dbm.equal a b))

let prop_add_fresh_preserves_bounds =
  qcheck ~count:300 "add_fresh preserves bounds"
    QCheck.(pair (int_range 1 3) (int_range 0 1_000_000))
    (fun (dim, seed) ->
      let d, next = random_canonical dim seed in
      if Dbm.is_empty d then true
      else begin
        let lo = next () mod 5 in
        let hi = lo + (next () mod 5) in
        let d' = Dbm.add_fresh d [ (lo, hi) ] in
        Dbm.canonicalize d';
        (not (Dbm.is_empty d'))
        && List.for_all
             (fun v -> Dbm.bounds d' v = Dbm.bounds d v)
             (List.init dim (fun i -> i + 1))
        && Dbm.bounds d' (dim + 1) = (lo, hi)
      end)

(* The property State_class.fire's persistent-block pass relies on: a
   projection with change of origin of a canonical matrix is already
   canonical (re-closing it is a no-op), and pairwise differences
   between kept variables are untouched. *)
let prop_rebase_preserves_canonicality =
  qcheck ~count:300 "rebase preserves canonicality and pairwise bounds"
    QCheck.(pair (int_range 2 4) (int_range 0 1_000_000))
    (fun (dim, seed) ->
      let d, next = random_canonical dim seed in
      if Dbm.is_empty d then true
      else begin
        let f = 1 + (next () mod dim) in
        let keep =
          List.filter (fun v -> v <> f) (List.init dim (fun i -> i + 1))
        in
        let r = Dbm.rebase d f ~keep in
        let again = Dbm.copy r in
        Dbm.canonicalize again;
        Dbm.equal r again
        && List.for_all
             (fun (i', i) ->
               List.for_all
                 (fun (j', j) ->
                   i = j || Dbm.get r (i' + 1) (j' + 1) = Dbm.get d i j)
                 (List.mapi (fun j' j -> (j', j)) keep))
             (List.mapi (fun i' i -> (i', i)) keep)
      end)

let prop_canonical_idempotent =
  qcheck ~count:100 "canonicalize is idempotent"
    QCheck.(pair (int_range 1 4) (int_range 0 1000))
    (fun (dim, seed) ->
      let d = Dbm.create dim in
      let rng = ref seed in
      let next () =
        rng := ((!rng * 1103515245) + 12345) land 0x3fffffff;
        !rng
      in
      for _ = 1 to 6 do
        let i = next () mod (dim + 1) and j = next () mod (dim + 1) in
        if i <> j then Dbm.constrain d i j ((next () mod 15) - 3)
      done;
      Dbm.canonicalize d;
      if Dbm.is_empty d then true
      else begin
        let again = Dbm.copy d in
        Dbm.canonicalize again;
        Dbm.equal d again
      end)

let suite =
  [
    case "universe" test_universe_nonempty;
    case "constrain and bounds" test_constrain_and_bounds;
    case "constrain only tightens" test_tightening_only;
    case "inconsistency detected" test_inconsistency_detected;
    case "transitive tightening" test_transitive_tightening;
    case "equality and hashing" test_equal_hash;
    case "subset (inclusion)" test_subset;
    case "rebase (change of origin)" test_rebase;
    case "add fresh variables" test_add_fresh;
    prop_canonical_idempotent;
    prop_tighten_bit_identical;
    prop_subset_partial_order;
    prop_add_fresh_preserves_bounds;
    prop_rebase_preserves_canonicality;
  ]
