module Translate = Ezrt_blocks.Translate
module Class_search = Ezrt_sched.Class_search
module Par_class = Ezrt_sched.Par_class
module Schedule = Ezrt_sched.Schedule
module Timeline = Ezrt_sched.Timeline
module Validator = Ezrt_sched.Validator
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let test_single_domain_matches_sequential () =
  (* one worker owns one LIFO deque: the expansion order is exactly the
     sequential engine's, so outcomes are structurally identical *)
  List.iter
    (fun (name, spec) ->
      let model = Translate.translate spec in
      let seq = fst (Class_search.find_schedule model) in
      let par = (Par_class.find_schedule ~domains:1 model).Par_class.outcome in
      check_bool (name ^ " identical outcome") true (seq = par))
    Case_studies.all

let test_two_domains_agree_and_certify () =
  List.iter
    (fun (name, spec) ->
      let model = Translate.translate spec in
      let seq = fst (Class_search.find_schedule model) in
      let r = Par_class.find_schedule ~domains:2 model in
      check_bool (name ^ " verdict agrees") true
        (Result.is_ok seq = Result.is_ok r.Par_class.outcome);
      match r.Par_class.outcome with
      | Ok schedule ->
        let segments = Timeline.of_schedule model schedule in
        check_bool (name ^ " certifies") true
          (Result.is_ok (Validator.check model segments))
      | Error _ -> ())
    Case_studies.all

let test_budget () =
  let model = Translate.translate Case_studies.mine_pump in
  match (Par_class.find_schedule ~max_stored:2 ~domains:2 model).Par_class.outcome with
  | Error Class_search.Budget_exhausted -> ()
  | Error f ->
    Alcotest.failf "wrong failure: %s" (Class_search.failure_to_string f)
  | Ok _ -> Alcotest.fail "expected budget exhaustion"

let test_cancel () =
  let model = Translate.translate Case_studies.mine_pump in
  let r = Par_class.find_schedule ~domains:2 ~cancel:(fun () -> true) model in
  match r.Par_class.outcome with
  | Error Class_search.Budget_exhausted -> ()
  | Error f ->
    Alcotest.failf "wrong failure: %s" (Class_search.failure_to_string f)
  | Ok _ -> Alcotest.fail "cancelled search cannot succeed"

let test_infeasible_with_subsumption () =
  (* the relations workload: exhaustive, subsumption-heavy — both
     verdict and the store's subsumed counter are checked *)
  let model = Translate.translate Test_class_search.relations_spec in
  let r = Par_class.find_schedule ~domains:2 model in
  (match r.Par_class.outcome with
  | Error Class_search.Infeasible -> ()
  | Error f ->
    Alcotest.failf "wrong failure: %s" (Class_search.failure_to_string f)
  | Ok _ -> Alcotest.fail "relations spec is infeasible");
  check_bool "subsumption fired" true
    (r.Par_class.store.Ezrt_tpn.Class_store.subsumed > 0)

let prop_parallel_agrees =
  qcheck ~count:20 "parallel class verdict matches sequential" arbitrary_spec
    (fun spec ->
      let model = Translate.translate spec in
      let seq = fst (Class_search.find_schedule model) in
      let par = (Par_class.find_schedule ~domains:2 model).Par_class.outcome in
      Result.is_ok seq = Result.is_ok par)

let suite =
  [
    case "domains=1 identical to sequential" test_single_domain_matches_sequential;
    slow_case "domains=2 agrees and certifies" test_two_domains_agree_and_certify;
    case "budget exhaustion" test_budget;
    case "prompt cancellation" test_cancel;
    case "infeasible relations with subsumption" test_infeasible_with_subsumption;
    prop_parallel_agrees;
  ]
