(* The synthesis service: digests, the re-validating cache, and the
   job server. *)

open Test_util
module Json = Ezrt_service.Json
module Spec_digest = Ezrt_service.Spec_digest
module Cache = Ezrt_service.Cache
module Server = Ezrt_service.Server
module Spec = Ezrt_spec.Spec
module Task = Ezrt_spec.Task
module Translate = Ezrt_blocks.Translate
module Schedulability = Ezrt_analysis.Schedulability
module Portfolio = Ezrt_sched.Portfolio
module Search = Ezrt_sched.Search
module Schedule = Ezrt_sched.Schedule
module Pnet = Ezrt_tpn.Pnet
module Spec_gen = Ezrt_gen.Spec_gen

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ezrt-service-test-%d-%d" (Unix.getpid ()) !counter)
    in
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    dir

(* A trivially feasible two-task spec. *)
let easy_spec ?(name = "easy") () =
  Spec.make ~name
    ~tasks:
      [
        Task.make ~name:"A" ~wcet:1 ~deadline:5 ~period:10 ();
        Task.make ~name:"B" ~wcet:2 ~deadline:10 ~period:10 ();
      ]
    ()

(* Valid (utilization 0.6) but analytically infeasible: 6 units of
   work must finish inside the deadline window [0, 5), so the pre-pass
   rejects it with a demand-overload witness. *)
let overloaded_spec ?(name = "overloaded") () =
  Spec.make ~name
    ~tasks:
      [
        Task.make ~name:"A" ~wcet:3 ~deadline:5 ~period:10 ();
        Task.make ~name:"B" ~wcet:3 ~deadline:5 ~period:10 ();
      ]
    ()

let solve_feasible cache spec =
  match Server.solve ~cache spec with
  | Ok ({ Server.verdict = Server.Feasible _; _ } as o) -> o
  | Ok o -> Alcotest.failf "expected feasible, got %s" (Server.verdict_line o)
  | Error msg -> Alcotest.failf "solve failed: %s" msg

(* --- Json ------------------------------------------------------------- *)

let test_json_roundtrip () =
  let values =
    [
      Json.Null;
      Json.Bool true;
      Json.Num 3.;
      Json.Num (-0.25);
      Json.Str "plain";
      Json.Str "esc \" \\ \n \t \r \x01 end";
      Json.List [ Json.Num 1.; Json.Str "two"; Json.Null ];
      Json.Obj
        [
          ("id", Json.Str "x");
          ("nested", Json.Obj [ ("k", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = Json.to_string v in
      check_bool ("single line: " ^ s) false (String.contains s '\n');
      match Json.of_string s with
      | Ok v' ->
        check_string ("roundtrip " ^ s) s (Json.to_string v')
      | Error msg -> Alcotest.failf "reparse of %s failed: %s" s msg)
    values

let test_json_rejects () =
  List.iter
    (fun input ->
      match Json.of_string input with
      | Ok _ -> Alcotest.failf "accepted malformed %S" input
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

let test_json_unicode () =
  match Json.of_string {|"aé😀b"|} with
  | Ok (Json.Str s) ->
    check_string "utf8 decoding" "a\xc3\xa9\xf0\x9f\x98\x80b" s
  | Ok _ | Error _ -> Alcotest.fail "unicode escape parse failed"

(* --- Spec_digest ------------------------------------------------------ *)

let shuffle seed xs =
  let rng = Random.State.make [| seed |] in
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let qcheck_digest_reorder =
  qcheck "digest is reorder-insensitive"
    QCheck.(pair arbitrary_spec small_int)
    (fun (spec, seed) ->
      let shuffled =
        {
          spec with
          Spec.tasks = shuffle seed spec.Spec.tasks;
          processors = shuffle (seed + 1) spec.Spec.processors;
          messages = shuffle (seed + 2) spec.Spec.messages;
          precedences = shuffle (seed + 3) spec.Spec.precedences;
          exclusions =
            shuffle (seed + 4)
              (List.map
                 (fun (a, b) -> if seed mod 2 = 0 then (b, a) else (a, b))
                 spec.Spec.exclusions);
        }
      in
      Spec_digest.digest spec = Spec_digest.digest shuffled)

let qcheck_digest_sensitive =
  qcheck "digest separates distinct specs" arbitrary_spec (fun spec ->
      let bumped =
        match spec.Spec.tasks with
        | t :: rest ->
          { spec with Spec.tasks = { t with Task.wcet = t.Task.wcet + 1 } :: rest }
        | [] -> QCheck.assume_fail ()
      in
      Spec_digest.digest spec <> Spec_digest.digest bumped)

let test_digest_shape () =
  let d = Spec_digest.digest (easy_spec ()) in
  check_int "32 hex chars" 32 (String.length d);
  String.iter
    (fun c ->
      check_bool "lowercase hex" true
        (match c with '0' .. '9' | 'a' .. 'f' -> true | _ -> false))
    d;
  (* the name participates: renamed copies are distinct cold entries *)
  check_bool "name is part of the address" true
    (Spec_digest.digest (easy_spec ~name:"other" ()) <> d)

(* --- Cache wire format ------------------------------------------------ *)

let entry_gen =
  let open QCheck.Gen in
  let str =
    string_size ~gen:(oneof [ char_range 'a' 'z'; oneofl [ ' '; '%'; '\n' ] ])
      (int_range 1 12)
  in
  let witness =
    oneof
      [
        (let* task = str and* instance = nat and* ready = nat
         and* wcet = nat and* deadline = nat in
         return
           (Schedulability.Negative_laxity
              { task; instance; ready; wcet; deadline }));
        (let* t1 = nat and* t2 = nat and* demand = nat and* capacity = nat in
         return (Schedulability.Demand_overload { t1; t2; demand; capacity }));
        (let* task = str and* instance = nat
         and* chain = list_size (int_range 0 4) str
         and* earliest_finish = nat and* deadline = nat in
         return
           (Schedulability.Chain_overrun
              { task; instance; chain; earliest_finish; deadline }));
        (let* task_a = str and* instance_a = nat and* task_b = str
         and* instance_b = nat and* forward_finish = nat and* deadline_b = nat
         and* backward_finish = nat and* deadline_a = nat in
         return
           (Schedulability.Exclusion_conflict
              {
                task_a;
                instance_a;
                task_b;
                instance_b;
                forward_finish;
                deadline_b;
                backward_finish;
                deadline_a;
              }));
        (let* task = str and* instance = nat and* time = nat in
         return (Schedulability.Edf_overload { task; instance; time }));
      ]
  in
  let verdict =
    oneof
      [
        (let* actions =
           list_size (int_range 0 20)
             (let* name = str and* delay = nat in
              return (name, delay))
         in
         return (Cache.Feasible actions));
        (let* w = witness in
         return (Cache.Infeasible w));
      ]
  in
  let* verdict = verdict
  and* engine = str
  (* the wire format prints elapsed with millisecond precision, so the
     roundtrip property quantifies over exactly-representable values *)
  and* elapsed_ms = map (fun n -> float_of_int n /. 8.) nat
  and* stored_states = nat in
  return { Cache.verdict; engine; elapsed_ms; stored_states }

let arbitrary_entry = QCheck.make entry_gen

let qcheck_entry_roundtrip =
  qcheck "cache entries roundtrip through the wire format" arbitrary_entry
    (fun entry ->
      let digest = String.make 32 'a' in
      match Cache.decode (Cache.encode ~digest entry) with
      | Ok (d, e) -> d = digest && e = entry
      | Error _ -> false)

let qcheck_truncation_detected =
  qcheck "any strict prefix fails to decode" arbitrary_entry (fun entry ->
      let text = Cache.encode ~digest:(String.make 32 'b') entry in
      let cut = String.length text / 2 in
      match Cache.decode (String.sub text 0 cut) with
      | Ok _ -> false
      | Error _ -> true)

(* --- Cache behaviour -------------------------------------------------- *)

let with_model spec f =
  let model = Translate.translate spec in
  f (Spec_digest.digest spec) model

let test_cache_memory_hit () =
  let cache = Cache.create () in
  let spec = easy_spec () in
  with_model spec (fun digest model ->
      check_bool "cold miss" true
        (Cache.find cache ~digest ~spec ~model = None);
      let o = solve_feasible cache spec in
      check_bool "computed, not cached" false o.Server.cached;
      match Cache.find cache ~digest ~spec ~model with
      | Some (Cache.Hit_feasible (schedule, segments)) ->
        check_bool "non-empty schedule" true (Schedule.length schedule > 0);
        check_bool "validated segments" true (segments <> []);
        let k = Cache.counters cache in
        check_int "one hit" 1 k.Cache.hits;
        check_int "no invalid" 0 k.Cache.invalid
      | Some (Cache.Hit_infeasible _) -> Alcotest.fail "wrong verdict class"
      | None -> Alcotest.fail "expected a memory hit")

let test_cache_disk_persistence () =
  let dir = tmp_dir () in
  let spec = easy_spec () in
  let cold = Cache.create ~dir () in
  ignore (solve_feasible cold spec);
  (* a fresh instance over the same directory only has the disk tier *)
  let warm = Cache.create ~dir () in
  with_model spec (fun digest model ->
      match Cache.find warm ~digest ~spec ~model with
      | Some (Cache.Hit_feasible _) ->
        check_int "disk hit" 1 (Cache.counters warm).Cache.hits
      | _ -> Alcotest.fail "expected a disk hit")

(* index of the first occurrence of [needle] in [haystack] *)
let substring_index haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then Alcotest.failf "substring %S not found" needle
    else if String.sub haystack i nn = needle then i
    else go (i + 1)
  in
  go 0

let corrupt_file path f =
  let text = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (f text))

let entry_file dir spec =
  Filename.concat dir (Spec_digest.digest spec ^ ".entry")

let test_cache_truncated_degrades_to_miss () =
  let dir = tmp_dir () in
  let spec = easy_spec () in
  ignore (solve_feasible (Cache.create ~dir ()) spec);
  corrupt_file (entry_file dir spec) (fun text ->
      String.sub text 0 (String.length text / 2));
  let warm = Cache.create ~dir () in
  with_model spec (fun digest model ->
      check_bool "truncated entry is a miss" true
        (Cache.find warm ~digest ~spec ~model = None);
      let k = Cache.counters warm in
      check_int "counted invalid" 1 k.Cache.invalid;
      check_int "counted miss" 1 k.Cache.misses;
      check_bool "self-healed: file deleted" false
        (Sys.file_exists (entry_file dir spec)))

let test_cache_bitflip_degrades_to_miss () =
  let dir = tmp_dir () in
  let spec = easy_spec () in
  ignore (solve_feasible (Cache.create ~dir ()) spec);
  let path = entry_file dir spec in
  (* flip a bit in the embedded digest: the file still decodes, but it
     no longer addresses this spec *)
  corrupt_file path (fun text ->
      let b = Bytes.of_string text in
      let i = substring_index text "digest " + String.length "digest " in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      Bytes.to_string b);
  let warm = Cache.create ~dir () in
  with_model spec (fun digest model ->
      check_bool "bit-flipped entry is a miss" true
        (Cache.find warm ~digest ~spec ~model = None);
      check_int "counted invalid" 1 (Cache.counters warm).Cache.invalid)

let test_cache_tampered_schedule_fails_certification () =
  let dir = tmp_dir () in
  let spec = easy_spec () in
  ignore (solve_feasible (Cache.create ~dir ()) spec);
  let path = entry_file dir spec in
  (* a syntactically valid entry whose first action delay is inflated:
     decode succeeds, replay/certification must reject it *)
  let text = In_channel.with_open_bin path In_channel.input_all in
  let digest, entry =
    match Cache.decode text with
    | Ok pair -> pair
    | Error msg -> Alcotest.failf "decode of fresh entry failed: %s" msg
  in
  let tampered =
    match entry.Cache.verdict with
    | Cache.Feasible ((name, delay) :: rest) ->
      { entry with Cache.verdict = Cache.Feasible ((name, delay + 1000) :: rest) }
    | _ -> Alcotest.fail "expected feasible actions"
  in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Cache.encode ~digest tampered));
  let warm = Cache.create ~dir () in
  with_model spec (fun digest model ->
      check_bool "uncertifiable entry is a miss" true
        (Cache.find warm ~digest ~spec ~model = None);
      check_int "counted invalid" 1 (Cache.counters warm).Cache.invalid)

let test_cache_wrong_digest_rejected () =
  let dir = tmp_dir () in
  let spec = easy_spec () in
  let other = easy_spec ~name:"other" () in
  ignore (solve_feasible (Cache.create ~dir ()) spec);
  (* renaming an entry file must not let it answer for another spec
     (the embedded digest catches it even before validation could) *)
  Sys.rename (entry_file dir spec) (entry_file dir other);
  let warm = Cache.create ~dir () in
  with_model other (fun digest model ->
      check_bool "renamed file is a miss" true
        (Cache.find warm ~digest ~spec:other ~model = None);
      check_int "counted invalid" 1 (Cache.counters warm).Cache.invalid)

let test_cache_lru_eviction () =
  let cache = Cache.create ~capacity:2 () in
  let entry verdict =
    { Cache.verdict; engine = "test"; elapsed_ms = 0.; stored_states = 0 }
  in
  let w =
    Schedulability.Demand_overload { t1 = 0; t2 = 10; demand = 16; capacity = 10 }
  in
  Cache.store cache ~digest:"d1" (entry (Cache.Infeasible w));
  Cache.store cache ~digest:"d2" (entry (Cache.Infeasible w));
  check_int "no eviction at capacity" 0 (Cache.counters cache).Cache.evictions;
  Cache.store cache ~digest:"d3" (entry (Cache.Infeasible w));
  check_int "one eviction past capacity" 1
    (Cache.counters cache).Cache.evictions

let test_cache_infeasible_witness_cached () =
  let cache = Cache.create () in
  let spec = overloaded_spec () in
  let cold =
    match Server.solve ~cache spec with
    | Ok o -> o
    | Error msg -> Alcotest.failf "solve failed: %s" msg
  in
  (match cold.Server.verdict with
  | Server.Infeasible (Some _) -> ()
  | _ -> Alcotest.failf "expected witnessed infeasible, got %s"
           (Server.verdict_line cold));
  let warm =
    match Server.solve ~cache spec with
    | Ok o -> o
    | Error msg -> Alcotest.failf "solve failed: %s" msg
  in
  check_bool "second solve is a cache hit" true warm.Server.cached;
  check_string "verdicts identical" (Server.verdict_line cold)
    (Server.verdict_line warm)

let test_cache_concurrent_get_or_compute () =
  (* 4 domains race get-or-compute on the same digest: every observed
     answer must be a validated feasible hit, and the cache must end up
     holding the entry.  Duplicated computes are allowed; lost updates
     and invalid answers are not. *)
  let cache = Cache.create () in
  let spec = easy_spec () in
  with_model spec (fun digest model ->
      let computes = Atomic.make 0 in
      let worker () =
        List.init 8 (fun _ ->
            Cache.get_or_compute cache ~digest ~spec ~model
              ~compute:(fun () ->
                Atomic.incr computes;
                let race =
                  Portfolio.find_schedule ~domains:1 model
                in
                match race.Portfolio.outcome with
                | Ok schedule ->
                  let net = model.Translate.net in
                  Some
                    {
                      Cache.verdict =
                        Cache.Feasible
                          (List.map
                             (fun (e : Schedule.entry) ->
                               ( Pnet.transition_name net e.Schedule.tid,
                                 e.Schedule.delay ))
                             schedule.Schedule.entries);
                      engine = "test";
                      elapsed_ms = 0.;
                      stored_states = 0;
                    }
                | Error _ -> None))
      in
      let domains = List.init 4 (fun _ -> Domain.spawn worker) in
      let results = List.concat_map Domain.join domains in
      check_int "every call answered" 32 (List.length results);
      List.iter
        (fun r ->
          match r with
          | Some (Cache.Hit_feasible (schedule, _)) ->
            check_bool "validated schedule" true (Schedule.length schedule > 0)
          | Some (Cache.Hit_infeasible _) | None ->
            Alcotest.fail "lost or wrong answer under contention")
        results;
      check_bool "computed at least once" true (Atomic.get computes >= 1);
      check_bool "final state is a hit" true
        (Cache.find cache ~digest ~spec ~model <> None))

(* --- Server ----------------------------------------------------------- *)

let test_server_matches_direct_portfolio () =
  let spec = easy_spec () in
  let model = Translate.translate spec in
  let direct = Portfolio.find_schedule ~domains:1 model in
  let o =
    match Server.solve spec with
    | Ok o -> o
    | Error msg -> Alcotest.failf "solve failed: %s" msg
  in
  match (direct.Portfolio.outcome, o.Server.verdict) with
  | Ok _, Server.Feasible _ -> ()
  | Error Search.Infeasible, Server.Infeasible _ -> ()
  | _ -> Alcotest.fail "service and direct portfolio verdicts diverge"

let test_server_timeout_verdict () =
  let server = Server.create ~workers:1 () in
  let box = ref None in
  (* mine-pump is not prepass-decidable, so an expired deadline cannot
     be beaten by the analytic quick-accept *)
  let req =
    { Server.id = "t"; spec = Ezrt_spec.Case_studies.mine_pump;
      timeout_ms = Some 0; max_states = None }
  in
  (match Server.submit server req ~on_done:(fun r -> box := Some r) with
  | `Accepted -> ()
  | `Overloaded -> Alcotest.fail "fresh pool shed a job");
  Server.shutdown server;
  match !box with
  | Some { Server.result = Ok { Server.verdict = Server.Timed_out; _ }; _ } ->
    ()
  | Some { Server.result = Ok o; _ } ->
    Alcotest.failf "expected timed-out, got %s" (Server.verdict_line o)
  | Some { Server.result = Error msg; _ } ->
    Alcotest.failf "expected timed-out, got error %s" msg
  | None -> Alcotest.fail "job never answered"

let test_server_sheds_load () =
  (* one worker, queue of one, five instant submissions: at least one
     must be shed, every accepted job must be answered on shutdown *)
  let server = Server.create ~workers:1 ~queue_limit:1 () in
  let answered = Atomic.make 0 in
  let accepted = ref 0 and overloaded = ref 0 in
  for i = 0 to 4 do
    let req =
      { Server.id = string_of_int i;
        spec = Ezrt_spec.Case_studies.mine_pump; timeout_ms = None;
        max_states = None }
    in
    match Server.submit server req ~on_done:(fun _ -> Atomic.incr answered) with
    | `Accepted -> incr accepted
    | `Overloaded -> incr overloaded
  done;
  Server.shutdown server;
  check_bool "some jobs shed" true (!overloaded >= 1);
  check_int "shed counter agrees" !overloaded (Server.shed_count server);
  check_int "every accepted job answered" !accepted (Atomic.get answered);
  check_int "nothing lost" 5 (!accepted + !overloaded)

let test_server_rejects_after_shutdown () =
  let server = Server.create ~workers:1 () in
  Server.shutdown server;
  let req =
    { Server.id = "late"; spec = easy_spec (); timeout_ms = None;
      max_states = None }
  in
  match Server.submit server req ~on_done:(fun _ -> ()) with
  | `Overloaded -> ()
  | `Accepted -> Alcotest.fail "accepted a job after shutdown"

let test_serve_channels_protocol () =
  let dir = tmp_dir () in
  let in_path = Filename.concat dir "requests" in
  let out_path = Filename.concat dir "responses" in
  Out_channel.with_open_text in_path (fun oc ->
      output_string oc "{\"op\":\"ping\"}\n";
      output_string oc "not json\n";
      output_string oc "{\"id\":\"j1\",\"case\":\"quickstart\"}\n";
      output_string oc "{\"id\":\"j2\",\"case\":\"no-such-case\"}\n");
  let server = Server.create ~workers:2 () in
  let reason =
    In_channel.with_open_text in_path (fun ic ->
        Out_channel.with_open_text out_path (fun oc ->
            Server.serve_channels server ic oc))
  in
  Server.shutdown server;
  check_bool "stream ended at EOF" true (reason = `Eof);
  let lines = In_channel.with_open_text out_path In_channel.input_lines in
  check_int "four responses" 4 (List.length lines);
  let statuses =
    List.filter_map
      (fun line ->
        match Json.of_string line with
        | Ok j ->
          Some
            ( Option.bind (Json.member "id" j) Json.to_str,
              Option.bind (Json.member "status" j) Json.to_str,
              Option.bind (Json.member "op" j) Json.to_str )
        | Error msg -> Alcotest.failf "unparseable response %S: %s" line msg)
      lines
  in
  check_bool "pong" true
    (List.exists (fun (_, s, op) -> s = Some "ok" && op = Some "pong") statuses);
  check_bool "parse error reported" true
    (List.exists (fun (id, s, _) -> id = Some "?" && s = Some "error") statuses);
  check_bool "job answered" true
    (List.exists (fun (id, s, _) -> id = Some "j1" && s = Some "ok") statuses);
  check_bool "unknown case errors" true
    (List.exists (fun (id, s, _) -> id = Some "j2" && s = Some "error") statuses)

let test_serve_socket_roundtrip () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "ezrt.sock" in
  let server = Server.create ~workers:1 () in
  let host = Domain.spawn (fun () -> Server.serve_socket server ~path) in
  let rec wait_for_socket n =
    if Sys.file_exists path then ()
    else if n = 0 then Alcotest.fail "socket never appeared"
    else begin
      Unix.sleepf 0.02;
      wait_for_socket (n - 1)
    end
  in
  wait_for_socket 250;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* the socket file appears at bind time, fractionally before listen *)
  let rec connect n =
    try Unix.connect fd (Unix.ADDR_UNIX path)
    with Unix.Unix_error (Unix.ECONNREFUSED, _, _) when n > 0 ->
      Unix.sleepf 0.02;
      connect (n - 1)
  in
  connect 50;
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  output_string oc "{\"op\":\"ping\"}\n{\"id\":\"s1\",\"case\":\"quickstart\"}\n{\"op\":\"shutdown\"}\n";
  flush oc;
  let lines = In_channel.input_lines ic in
  Domain.join host;
  Server.shutdown server;
  close_out_noerr oc;
  check_int "three responses" 3 (List.length lines);
  check_bool "job ok over the socket" true
    (List.exists
       (fun line ->
         match Json.of_string line with
         | Ok j ->
           Option.bind (Json.member "id" j) Json.to_str = Some "s1"
           && Option.bind (Json.member "status" j) Json.to_str = Some "ok"
         | Error _ -> false)
       lines);
  check_bool "socket file removed" false (Sys.file_exists path)

(* --- the service-path fuzz campaign ----------------------------------- *)

(* Seeded specs through the full service path, cache enabled, cold then
   warm, cross-checked against the direct portfolio on every spec: the
   cache and server layers must never change a verdict. *)
let test_service_fuzz_no_divergence () =
  let dir = tmp_dir () in
  let count = 12 in
  let specs =
    List.init count (fun i -> Spec_gen.spec_at ~profile:Spec_gen.smoke ~seed:7 i)
  in
  let classify = function
    | Server.Feasible _ -> "feasible"
    | Server.Infeasible _ -> "infeasible"
    | Server.Timed_out | Server.Inconclusive -> "unknown"
  in
  let direct_classify spec =
    let model = Translate.translate spec in
    match (Portfolio.find_schedule ~domains:1 model).Portfolio.outcome with
    | Ok _ -> "feasible"
    | Error Search.Infeasible -> "infeasible"
    | Error Search.Budget_exhausted -> "unknown"
  in
  let run cache =
    List.map
      (fun spec ->
        match Server.solve ~cache spec with
        | Ok o -> o
        | Error msg -> Alcotest.failf "service solve failed: %s" msg)
      specs
  in
  let cold = run (Cache.create ~dir ()) in
  let warm_cache = Cache.create ~dir () in
  let warm = run warm_cache in
  let divergences = ref 0 in
  List.iteri
    (fun i spec ->
      let c = List.nth cold i and w = List.nth warm i in
      if
        classify c.Server.verdict <> direct_classify spec
        || Server.verdict_line c <> Server.verdict_line w
      then incr divergences)
    specs;
  check_int "0 divergences" 0 !divergences;
  check_bool "warm run actually hit the cache" true
    ((Cache.counters warm_cache).Cache.hits > 0)

let suite =
  [
    case "json roundtrip" test_json_roundtrip;
    case "json rejects malformed input" test_json_rejects;
    case "json unicode escapes" test_json_unicode;
    qcheck_digest_reorder;
    qcheck_digest_sensitive;
    case "digest shape and name sensitivity" test_digest_shape;
    qcheck_entry_roundtrip;
    qcheck_truncation_detected;
    case "memory hit is re-validated" test_cache_memory_hit;
    case "disk tier persists across instances" test_cache_disk_persistence;
    case "truncated entry degrades to miss" test_cache_truncated_degrades_to_miss;
    case "bit-flipped entry degrades to miss" test_cache_bitflip_degrades_to_miss;
    case "tampered schedule fails re-certification"
      test_cache_tampered_schedule_fails_certification;
    case "renamed entry file cannot impersonate" test_cache_wrong_digest_rejected;
    case "lru eviction past capacity" test_cache_lru_eviction;
    case "witnessed infeasible is cached and re-checked"
      test_cache_infeasible_witness_cached;
    slow_case "concurrent get-or-compute (4 domains)"
      test_cache_concurrent_get_or_compute;
    case "service verdict matches direct portfolio"
      test_server_matches_direct_portfolio;
    case "expired deadline yields timed-out" test_server_timeout_verdict;
    slow_case "admission control sheds load" test_server_sheds_load;
    case "submissions after shutdown are rejected"
      test_server_rejects_after_shutdown;
    case "ndjson protocol over channels" test_serve_channels_protocol;
    slow_case "socket mode roundtrip" test_serve_socket_roundtrip;
    slow_case "service-path fuzz: cold/warm vs direct, 0 divergences"
      test_service_fuzz_no_divergence;
  ]
