(* Tests for the structural lint pass (lib/lint): every documented
   diagnostic code fires on a crafted net, reports are deterministic
   (byte-identical JSON/SARIF across runs), every P-invariant
   certificate re-checks against its net, the gate-explain verdicts
   agree with the live engine gates over the generated corpus and
   every case study, and golden files pin the three renderings of the
   mine-pump report.  Regenerate the goldens with:

     EZRT_UPDATE_GOLDEN=1 dune test --force *)

open Ezrt_tpn
module B = Pnet.Builder
module Lint = Ezrt_lint.Lint
module Translate = Ezrt_blocks.Translate
module Class_search = Ezrt_sched.Class_search
module Spec = Ezrt_spec.Spec
module Task = Ezrt_spec.Task
module Dsl = Ezrt_spec.Dsl
module Validate = Ezrt_spec.Validate
module Spec_gen = Ezrt_gen.Spec_gen
open Test_util

let codes (r : Lint.report) =
  List.map (fun (d : Lint.diagnostic) -> d.Lint.code) r.Lint.diagnostics

let has code r = List.mem code (codes r)

let check_has name code r =
  check_bool (Printf.sprintf "%s: %s fires" name code) true (has code r)

let check_not name code r =
  check_bool (Printf.sprintf "%s: no %s" name code) false (has code r)

let certificates_certify name (net : Pnet.t) (r : Lint.report) =
  List.iter
    (fun y ->
      check_bool
        (Printf.sprintf "%s: certificate re-checks" name)
        true
        (Invariants.is_invariant net y))
    r.Lint.certificates

(* --- crafted triggers, one per catalogue code ------------------------- *)

(* p0(1) --t--> p0 + p1: p1 accumulates without bound, so no invariant
   can cover it (L001) and it is produced but never consumed (L008). *)
let test_uncovered_and_accumulator =
  case "L001/L008: unbounded accumulator place" @@ fun () ->
  let b = B.create "growth" in
  let p0 = B.add_place b ~tokens:1 "p0" in
  let p1 = B.add_place b "p1" in
  let t = B.add_transition b "t" Time_interval.zero in
  B.arc_pt b p0 t;
  B.arc_tp b t p0;
  B.arc_tp b t p1;
  let net = B.build b in
  let r = Lint.check_net net in
  check_has "growth" "EZRT-L001" r;
  check_has "growth" "EZRT-L008" r;
  check_not "growth" "EZRT-L005" r;
  check_bool "growth: not truncated" false r.Lint.truncated;
  check_bool "growth: p0 covered" true (r.Lint.covered_places >= 1);
  certificates_certify "growth" net r

(* the Farkas row bound trips; salvaged rows must still certify, and
   the uncovered-place warning is withheld (coverage is unknown, not
   refuted) *)
let test_truncated =
  case "L002: row-bound truncation degrades gracefully" @@ fun () ->
  let net = sequential_net () in
  let r = Lint.check_net ~max_rows:1 net in
  check_bool "truncated flag" true r.Lint.truncated;
  check_has "truncated" "EZRT-L002" r;
  check_not "truncated" "EZRT-L001" r;
  certificates_certify "truncated" net r;
  let full = Lint.check_net net in
  check_bool "full run not truncated" false full.Lint.truncated;
  check_not "full run" "EZRT-L002" full

(* a resource place holding two tokens on a cycle: the covering
   invariant bounds it at 2, not 1 *)
let test_resource_not_safe =
  case "L003: resource place not 1-safe" @@ fun () ->
  let b = B.create "fat-resource" in
  let pr = B.add_place b ~tokens:2 "pr" in
  let t = B.add_transition b "t" Time_interval.zero in
  B.arc_pt b pr t;
  B.arc_tp b t pr;
  let net = B.build b in
  let r = Lint.check_net ~resource_places:[ pr ] net in
  check_has "fat-resource" "EZRT-L003" r;
  (* the same net without resource context is clean: bound 2 is fine
     for an ordinary place *)
  check_not "plain net" "EZRT-L003" (Lint.check_net net)

(* a wrong required-firing vector cannot reproduce the skeleton *)
let test_skeleton =
  case "L004: periodic skeleton not reproducible" @@ fun () ->
  let net = sequential_net () in
  let p2 = Pnet.find_place net "p2" in
  let bad = Lint.check_net ~final_places:[ p2 ]
      ~required_firings:[| 1; 0 |] net
  in
  check_has "bad vector" "EZRT-L004" bad;
  let good = Lint.check_net ~final_places:[ p2 ]
      ~required_firings:[| 1; 1 |] net
  in
  check_not "good vector" "EZRT-L004" good

(* a transition fed by an initially-empty, never-produced place is
   structurally dead, and that place is an unmarked siphon *)
let test_dead_and_siphon =
  case "L005/L009: dead transition on an unmarked siphon" @@ fun () ->
  let b = B.create "starved" in
  let p0 = B.add_place b "p0" in
  let p1 = B.add_place b "p1" in
  let t = B.add_transition b "t" Time_interval.zero in
  B.arc_pt b p0 t;
  B.arc_tp b t p1;
  let net = B.build b in
  check_bool "t is structurally dead" true
    (Lint.structurally_dead net = [ t ]);
  (* p1 rides along: its only producer is the dead transition, whose
     preset lies inside the siphon *)
  check_bool "the siphon is {p0, p1}" true
    (Lint.unmarked_siphon net = [ p0; p1 ]);
  let r = Lint.check_net net in
  check_has "starved" "EZRT-L005" r;
  check_has "starved" "EZRT-L009" r

let test_sink_transition =
  case "L006: sink transition" @@ fun () ->
  let b = B.create "sink" in
  let p0 = B.add_place b ~tokens:1 "p0" in
  let t = B.add_transition b "t" Time_interval.zero in
  B.arc_pt b p0 t;
  let net = B.build b in
  check_has "sink" "EZRT-L006" (Lint.check_net net)

let test_isolated_place =
  case "L007: isolated place" @@ fun () ->
  let b = B.create "loner" in
  let p0 = B.add_place b ~tokens:1 "p0" in
  let _lonely = B.add_place b "lonely" in
  let t = B.add_transition b "t" Time_interval.zero in
  B.arc_pt b p0 t;
  B.arc_tp b t p0;
  let net = B.build b in
  let r = Lint.check_net net in
  check_has "loner" "EZRT-L007" r;
  check_not "loner" "EZRT-L008" r

(* an unbounded latest firing time is a warning on its own, an error
   when the transition sits on the deadline path (must fire) *)
let test_unbounded_lft =
  case "L010: unbounded latest firing time" @@ fun () ->
  let b = B.create "lazy" in
  let p0 = B.add_place b ~tokens:1 "p0" in
  let p1 = B.add_place b "p1" in
  let t = B.add_transition b "t" (Time_interval.make_unbounded 2) in
  B.arc_pt b p0 t;
  B.arc_tp b t p1;
  let net = B.build b in
  let severity_of r =
    List.find_map
      (fun (d : Lint.diagnostic) ->
        if d.Lint.code = "EZRT-L010" then Some d.Lint.severity else None)
      r.Lint.diagnostics
  in
  check_bool "off the deadline path: warning" true
    (severity_of (Lint.check_net net) = Some Lint.Warning);
  check_bool "on the deadline path: error" true
    (severity_of
       (Lint.check_net ~final_places:[ p1 ] ~required_firings:[| 1 |] net)
    = Some Lint.Error)

(* p1 is unmarked, has a consumer, and every consumer feeds it back:
   an unmarked trap *)
let test_trap =
  case "L014: initially-unmarked trap" @@ fun () ->
  let b = B.create "trapped" in
  let p0 = B.add_place b ~tokens:1 "p0" in
  let p1 = B.add_place b "p1" in
  let t = B.add_transition b "t" Time_interval.zero in
  let t2 = B.add_transition b "t2" Time_interval.zero in
  B.arc_pt b p0 t;
  B.arc_tp b t p1;
  B.arc_pt b p1 t2;
  B.arc_tp b t2 p1;
  let net = B.build b in
  check_bool "p1 is the trap" true (Lint.unmarked_trap net = [ p1 ]);
  check_has "trapped" "EZRT-L014" (Lint.check_net net)

(* --- model-level checks: gates, provenance, L013 ---------------------- *)

let tiny_spec () =
  Spec.make ~name:"tiny"
    ~tasks:[ Task.make ~name:"a" ~wcet:1 ~deadline:10 ~period:10 () ]
    ()

let test_gate_diagnostics =
  case "L011/L012: gate decisions reported on models" @@ fun () ->
  let model = Translate.translate (tiny_spec ()) in
  let r = Lint.check_model model in
  check_has "tiny" "EZRT-L011" r;
  check_has "tiny" "EZRT-L012" r;
  check_not "tiny" "EZRT-L013" r;
  check_int "tiny: two gates" 2 (List.length r.Lint.gates);
  List.iter
    (fun (g : Lint.gate) ->
      check_bool "gate name" true (g.Lint.gate = "por" || g.Lint.gate = "subsumption"))
    r.Lint.gates

let test_provenance =
  case "diagnostics on models carry spec provenance" @@ fun () ->
  let model = Translate.translate (tiny_spec ()) in
  let net = model.Translate.net in
  (* every place and transition resolves to a printable origin *)
  for p = 0 to Pnet.place_count net - 1 do
    let s = Translate.origin_to_string model (Translate.place_origin model p) in
    check_bool "place origin non-empty" true (String.length s > 0)
  done;
  for t = 0 to Pnet.transition_count net - 1 do
    let s =
      Translate.origin_to_string model (Translate.transition_origin model t)
    in
    check_bool "transition origin non-empty" true (String.length s > 0)
  done

let xml_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".xml")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let case_study_models () =
  List.filter_map
    (fun file ->
      match Dsl.load_file file with
      | Error _ -> None
      | Ok spec ->
        if (Validate.check spec).Validate.errors <> [] then None
        else Some (Filename.basename file, Translate.translate spec))
    (xml_files "../specs")

(* the L013 self-check must never fire: lint's re-derived gates agree
   with [Class_search.subsumption_applicable] and [Indep.applicable]
   on every case study and a slice of the seed-42 generated corpus *)
let test_gate_agreement =
  slow_case "gate-explain agrees with the live gates" @@ fun () ->
  let generated =
    List.init 60 (fun i ->
        (Printf.sprintf "gen-%d" i, Translate.translate (Spec_gen.spec_at ~seed:42 i)))
  in
  List.iter
    (fun (name, model) ->
      let net = model.Translate.net in
      let live_sub = Class_search.subsumption_applicable model in
      let live_por =
        Indep.applicable
          (Indep.create net ~final_place:model.Translate.final_place
             ~dead_places:model.Translate.dead_places)
      in
      let sub = Lint.explain_subsumption model in
      let por = Lint.explain_por model in
      check_bool (name ^ ": subsumption explain = live gate") live_sub
        sub.Lint.gate_open;
      check_bool (name ^ ": por explain = live gate") live_por
        por.Lint.gate_open;
      check_not name "EZRT-L013" (Lint.check_model model))
    (case_study_models () @ generated)

(* every P-invariant certificate re-checks on 100 generated specs *)
let test_certificates_generated =
  slow_case "certificates re-check on the generated corpus" @@ fun () ->
  for i = 0 to 99 do
    let spec = Spec_gen.spec_at ~profile:Spec_gen.smoke ~seed:5 i in
    let model = Translate.translate spec in
    let r = Lint.check_model model in
    certificates_certify (Printf.sprintf "smoke-%d" i) model.Translate.net r;
    check_bool
      (Printf.sprintf "smoke-%d: coverage within bounds" i)
      true
      (r.Lint.covered_places <= r.Lint.place_count)
  done

(* --- determinism ------------------------------------------------------ *)

let test_deterministic =
  qcheck ~count:60 "lint output is byte-identical across runs" arbitrary_spec
    (fun spec ->
      let render s =
        match Lint.check_spec s with
        | Error e -> "error: " ^ e
        | Ok r -> Lint.to_json r ^ "\n" ^ Lint.to_sarif r
      in
      String.equal (render spec) (render spec))

let test_catalogue =
  case "catalogue codes are unique and ordered" @@ fun () ->
  let codes = List.map (fun (c, _, _) -> c) Lint.catalogue in
  check_int "catalogue size" 14 (List.length codes);
  check_bool "codes sorted and unique" true
    (List.sort_uniq compare codes = codes)

(* --- renderer golden files ------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let update_golden = Sys.getenv_opt "EZRT_UPDATE_GOLDEN" <> None

let check_golden name actual =
  let path = Filename.concat "golden" name in
  if update_golden then write_file path actual
  else check_string (name ^ " matches the golden file") (read_file path) actual

let test_goldens =
  case "mine-pump renderings match the golden files" @@ fun () ->
  match Dsl.load_file "../specs/mine-pump.xml" with
  | Error e -> Alcotest.failf "mine-pump unreadable: %s" (Dsl.error_to_string e)
  | Ok spec ->
    let r = Lint.check_model (Translate.translate spec) in
    check_golden "lint-mine-pump.txt" (Lint.to_text r);
    check_golden "lint-mine-pump.json" (Lint.to_json r ^ "\n");
    check_golden "lint-mine-pump.sarif"
      (Lint.to_sarif ~uri:"specs/mine-pump.xml" r ^ "\n")

(* --- CLI -------------------------------------------------------------- *)

let test_cli =
  case "ezrt lint: formats, deny threshold, exit codes" @@ fun () ->
  Test_cli.expect [ "lint"; "--case"; "mine-pump" ] ~code:0
    ~needles:[ "0 error(s)"; "gate por: open"; "gate subsumption: open" ];
  Test_cli.expect
    [ "lint"; "--case"; "mine-pump"; "--deny"; "info" ]
    ~code:1 ~needles:[ "EZRT-L011" ];
  Test_cli.expect
    [ "lint"; "--case"; "mine-pump"; "--format"; "sarif" ]
    ~code:0 ~needles:[ "sarif-2.1.0"; "ezrt-lint" ];
  Test_cli.expect
    [ "lint"; "--case"; "mine-pump"; "--format"; "json" ]
    ~code:0 ~needles:[ "ezrt-lint/1" ];
  Test_cli.expect [ "lint"; "no-such-spec.xml" ] ~code:2 ~needles:[ "ezrt:" ]

let suite =
  [
    test_uncovered_and_accumulator;
    test_truncated;
    test_resource_not_safe;
    test_skeleton;
    test_dead_and_siphon;
    test_sink_transition;
    test_isolated_place;
    test_unbounded_lft;
    test_trap;
    test_gate_diagnostics;
    test_provenance;
    test_gate_agreement;
    test_certificates_generated;
    test_deterministic;
    test_catalogue;
    test_goldens;
    test_cli;
  ]
