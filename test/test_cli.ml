(* End-to-end tests of the ezrt command-line tool: the binary is built
   by dune (declared as a test dependency) and spawned here. *)

open Test_util

let binary =
  lazy
    (let candidates =
       [
         "../bin/ezrt.exe";
         "bin/ezrt.exe";
         "_build/default/bin/ezrt.exe";
         Filename.concat (Filename.dirname Sys.executable_name) "../bin/ezrt.exe";
       ]
     in
     match List.find_opt Sys.file_exists candidates with
     | Some path -> Some path
     | None -> None)

let run args =
  match Lazy.force binary with
  | None -> None
  | Some bin ->
    let cmd =
      Printf.sprintf "%s %s 2>&1" (Filename.quote bin)
        (String.concat " " (List.map Filename.quote args))
    in
    let ic = Unix.open_process_in cmd in
    let output = In_channel.input_all ic in
    let code =
      match Unix.close_process_in ic with
      | Unix.WEXITED n -> n
      | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> -1
    in
    Some (code, output)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let expect args ~code ~needles =
  match run args with
  | None -> ()  (* binary not found in this context: skip *)
  | Some (got_code, output) ->
    Alcotest.(check int)
      (Printf.sprintf "exit code of ezrt %s" (String.concat " " args))
      code got_code;
    List.iter
      (fun needle ->
        if not (contains ~needle output) then
          Alcotest.failf "ezrt %s: output lacks %S:\n%s"
            (String.concat " " args) needle output)
      needles

let test_check () =
  expect [ "check"; "--case"; "mine-pump" ] ~code:0
    ~needles:[ "782 instances"; "well-formed" ]

let test_check_rejects () =
  expect [ "check"; "--case"; "no-such-case" ] ~code:1 ~needles:[ "unknown" ]

let test_info () =
  expect [ "info"; "--case"; "fig3" ] ~code:0
    ~needles:[ "T1"; "T2"; "minimum firings" ]

let test_schedule () =
  expect [ "schedule"; "--case"; "fig8" ] ~code:0
    ~needles:[ "schedule table"; "preempts"; "resumes" ]

let test_schedule_policy_flag () =
  expect [ "schedule"; "--case"; "quickstart"; "--policy"; "rm" ] ~code:0
    ~needles:[ "schedule table" ]

let test_schedule_infeasible_budget () =
  expect [ "schedule"; "--case"; "mine-pump"; "--max-states"; "2" ] ~code:1
    ~needles:[ "budget" ]

let test_latest_release_flag () =
  (* the trap is solvable either way (the DFS can reorder arrivals);
     the flag must at least be accepted and still find the schedule *)
  expect [ "schedule"; "--case"; "greedy-trap" ] ~code:0
    ~needles:[ "schedule table" ];
  expect [ "schedule"; "--case"; "greedy-trap"; "--latest-release" ] ~code:0
    ~needles:[ "schedule table" ]

let test_codegen () =
  expect [ "codegen"; "--case"; "quickstart" ] ~code:0
    ~needles:[ "struct ScheduleItem"; "ezrt_dispatch"; "int main(void)" ]

let test_codegen_target () =
  expect [ "codegen"; "--case"; "quickstart"; "--target"; "8051" ] ~code:0
    ~needles:[ "__interrupt(1)"; "8051" ]

let test_model_pnml () =
  expect [ "model"; "--case"; "fig3" ] ~code:0
    ~needles:[ "<pnml"; "initialMarking"; "toolspecific" ]

let test_simulate () =
  expect [ "simulate"; "--case"; "fig8" ] ~code:0
    ~needles:[ "instances completed"; "satisfies every constraint" ]

let test_compare () =
  expect [ "compare"; "--case"; "greedy-trap" ] ~code:0
    ~needles:[ "INFEASIBLE"; "pre-runtime (dfs)" ]

let test_dsl_file_workflow () =
  match Lazy.force binary with
  | None -> ()
  | Some _ ->
    let path = Filename.temp_file "ezrt_cli" ".xml" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Ezrt_spec.Dsl.save_file path Ezrt_spec.Case_studies.quickstart;
        expect [ "check"; path ] ~code:0 ~needles:[ "well-formed" ];
        expect [ "schedule"; path ] ~code:0 ~needles:[ "schedule table" ])

let test_class_engine () =
  expect [ "schedule"; "--case"; "greedy-trap"; "--engine"; "classes" ]
    ~code:0 ~needles:[ "class engine"; "urgent1 starts" ]

let test_gantt_flag () =
  expect [ "schedule"; "--case"; "quickstart"; "--gantt" ] ~code:0
    ~needles:[ "sample"; "|##" ]

let test_analyze () =
  expect [ "analyze"; "--case"; "fig8" ] ~code:0
    ~needles:
      [ "analytic verdict"; "schedule quality"; "preemptions";
        "dispatch overhead" ]

let test_analyze_spec_only () =
  (* fig8: independent preemptive, inside the accept fragment *)
  expect [ "analyze"; "--case"; "fig8"; "--spec-only" ] ~code:0
    ~needles:[ "analytic verdict: feasible"; "certified EDF schedule" ];
  (* mine-pump has relations: outside the analytic fragment *)
  expect [ "analyze"; "--case"; "mine-pump"; "--spec-only" ] ~code:2
    ~needles:[ "analytic verdict: unknown"; "analytic fragment" ]

let test_analyze_spec_only_rejects () =
  match Lazy.force binary with
  | None -> ()
  | Some _ ->
    (* two five-unit jobs both due within six units: the demand bound
       rejects with a witness, no search runs *)
    let path = Filename.temp_file "ezrt_cli" ".xml" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let spec =
          Ezrt_spec.Spec.make ~name:"tight"
            ~tasks:
              [
                Ezrt_spec.Task.make ~name:"a" ~wcet:5 ~deadline:5 ~period:10 ();
                Ezrt_spec.Task.make ~name:"b" ~wcet:5 ~deadline:6 ~period:10 ();
              ]
            ()
        in
        Ezrt_spec.Dsl.save_file path spec;
        expect [ "analyze"; path; "--spec-only" ] ~code:1
          ~needles:
            [ "analytic verdict: infeasible"; "witness [demand-overload]";
              "demand 10 > capacity" ])

let test_portfolio_prepass () =
  expect [ "schedule"; "--case"; "fig8"; "--engine"; "portfolio" ] ~code:0
    ~needles:[ "analysis pre-pass decided"; "schedule table" ];
  (* the escape hatch must race and name a winning config *)
  expect
    [ "schedule"; "--case"; "fig8"; "--engine"; "portfolio"; "--no-analysis" ]
    ~code:0
    ~needles:[ "won on"; "schedule table" ]

let test_analyze_sensitivity () =
  expect [ "analyze"; "--case"; "quickstart"; "--sensitivity" ] ~code:0
    ~needles:[ "WCET sensitivity"; "margin" ]

let test_vcd_output () =
  match Lazy.force binary with
  | None -> ()
  | Some _ ->
    let path = Filename.temp_file "ezrt_cli" ".vcd" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
      (fun () ->
        expect [ "schedule"; "--case"; "quickstart"; "--vcd"; path ] ~code:0
          ~needles:[ "VCD written" ];
        let contents = In_channel.with_open_text path In_channel.input_all in
        if not (contains ~needle:"$enddefinitions" contents) then
          Alcotest.fail "VCD file lacks its header")

let test_simulate_fault () =
  expect
    [ "simulate"; "--case"; "quickstart"; "--fault"; "sample:0:5" ]
    ~code:0
    ~needles:[ "fault isolation"; "confined" ];
  expect
    [ "simulate"; "--case"; "quickstart"; "--fault"; "ghost:0:5" ]
    ~code:1 ~needles:[ "unknown task" ]

let test_model_check () =
  expect [ "model-check"; "--case"; "fig4"; "-q"; "AG pproc <= 1" ] ~code:0
    ~needles:[ "holds" ];
  expect [ "model-check"; "--case"; "fig3"; "-q"; "EF pdm_T1 >= 1" ] ~code:1
    ~needles:[ "does not hold" ];
  expect [ "model-check"; "--case"; "fig3"; "-q"; "EF pend >= 1" ] ~code:0
    ~needles:[ "witness" ];
  expect [ "model-check"; "--case"; "fig3"; "-q"; "EF nonsense >= 1" ]
    ~code:1 ~needles:[ "unknown place" ]

let test_trace_output () =
  match Lazy.force binary with
  | None -> ()
  | Some _ ->
    let path = Filename.temp_file "ezrt_cli" ".trace.json" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
      (fun () ->
        expect [ "schedule"; "--case"; "quickstart"; "--trace"; path ] ~code:0
          ~needles:[ "trace written to" ];
        let contents = In_channel.with_open_text path In_channel.input_all in
        List.iter
          (fun needle ->
            if not (contains ~needle contents) then
              Alcotest.failf "trace file lacks %S" needle)
          [ "\"traceEvents\""; "\"search\""; "\"ph\":\"B\"" ])

let test_metrics_output () =
  match Lazy.force binary with
  | None -> ()
  | Some _ ->
    let path = Filename.temp_file "ezrt_cli" ".prom" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
      (fun () ->
        expect [ "schedule"; "--case"; "quickstart"; "--metrics"; path ]
          ~code:0 ~needles:[ "metrics written to" ];
        let contents = In_channel.with_open_text path In_channel.input_all in
        List.iter
          (fun needle ->
            if not (contains ~needle contents) then
              Alcotest.failf "metrics file lacks %S" needle)
          [ "# TYPE ezrt_search_stored_states_total counter"; "engine=" ])

let test_bad_usage () =
  expect [ "check" ] ~code:1 ~needles:[ "FILE" ];
  expect
    [ "check"; "--case"; "fig3"; "/tmp/nonexistent-also-a-file.xml" ]
    ~code:1 ~needles:[ "not both" ]

(* --- the synthesis service -------------------------------------------- *)

let test_info_digest () =
  match run [ "info"; "--case"; "quickstart"; "--digest" ] with
  | None -> ()
  | Some (code, output) ->
    Alcotest.(check int) "exit code" 0 code;
    let digest = String.trim output in
    Alcotest.(check int) "32 hex chars" 32 (String.length digest);
    (* the address is stable across invocations *)
    (match run [ "info"; "--case"; "quickstart"; "--digest" ] with
    | Some (0, again) ->
      Alcotest.(check string) "deterministic" digest (String.trim again)
    | _ -> Alcotest.fail "second --digest run failed")

let test_schedule_timeout () =
  (* deadline already expired at startup: the distinct verdict and the
     distinct exit code, on both a portfolio and a discrete search *)
  expect
    [ "schedule"; "--case"; "mine-pump"; "--timeout"; "0";
      "--engine"; "portfolio" ]
    ~code:124 ~needles:[ "timed-out" ];
  expect
    [ "schedule"; "--case"; "mine-pump"; "--timeout"; "0" ]
    ~code:124 ~needles:[ "timed-out" ]

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ezrt_cli_svc-%d-%d" (Unix.getpid ()) (Random.int 100000))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let test_gen_and_batch_warm () =
  match Lazy.force binary with
  | None -> ()
  | Some _ ->
    with_temp_dir (fun corpus ->
        with_temp_dir (fun cache ->
            expect
              [ "gen"; "--out"; corpus; "--count"; "4"; "--seed"; "3";
                "--smoke" ]
              ~code:0 ~needles:[ "wrote 4 spec(s)" ];
            let batch () =
              run [ "batch"; corpus; "--cache-dir"; cache; "--workers"; "2" ]
            in
            match (batch (), batch ()) with
            | Some (0, cold), Some (0, warm) ->
              (* stdout lines (the verdicts) must be byte-identical;
                 stderr differs (hit/miss counters) *)
              let verdicts out =
                List.filter
                  (fun l -> contains ~needle:"spec-" l)
                  (String.split_on_char '\n' out)
              in
              Alcotest.(check (list string))
                "cold and warm verdicts identical" (verdicts cold)
                (verdicts warm);
              (* not every verdict is cacheable (exhaustion infeasibles
                 and inconclusives recompute), but a warm run must hit
                 for the rest *)
              let hits =
                List.find_map
                  (fun l ->
                    match String.split_on_char ' ' (String.trim l) with
                    | "cache:" :: n :: "hit(s)," :: _ -> int_of_string_opt n
                    | _ -> None)
                  (String.split_on_char '\n' warm)
              in
              (match hits with
              | Some n when n > 0 -> ()
              | Some _ | None ->
                Alcotest.failf "warm batch did not hit the cache:\n%s" warm)
            | _ -> Alcotest.fail "batch run failed"))

let test_serve_stdio () =
  match Lazy.force binary with
  | None -> ()
  | Some bin ->
    let cmd =
      Printf.sprintf
        "printf '%%s\\n' '{\"op\":\"ping\"}' \
         '{\"id\":\"j1\",\"case\":\"quickstart\"}' '{\"op\":\"shutdown\"}' \
         | %s serve 2>/dev/null"
        (Filename.quote bin)
    in
    let ic = Unix.open_process_in cmd in
    let output = In_channel.input_all ic in
    let code =
      match Unix.close_process_in ic with Unix.WEXITED n -> n | _ -> -1
    in
    Alcotest.(check int) "serve exits cleanly" 0 code;
    List.iter
      (fun needle ->
        if not (contains ~needle output) then
          Alcotest.failf "serve output lacks %S:\n%s" needle output)
      [ "\"op\":\"pong\""; "\"id\":\"j1\""; "\"verdict\":\"feasible\"";
        "\"op\":\"shutdown\"" ]

let suite =
  [
    case "check" test_check;
    case "check rejects unknown case" test_check_rejects;
    case "info" test_info;
    case "schedule" test_schedule;
    case "schedule with a policy flag" test_schedule_policy_flag;
    case "schedule budget exhaustion exits nonzero"
      test_schedule_infeasible_budget;
    case "latest-release flag" test_latest_release_flag;
    case "codegen" test_codegen;
    case "codegen target selection" test_codegen_target;
    case "model prints PNML" test_model_pnml;
    case "simulate" test_simulate;
    case "compare" test_compare;
    case "DSL file workflow" test_dsl_file_workflow;
    case "class engine" test_class_engine;
    case "gantt flag" test_gantt_flag;
    case "analyze" test_analyze;
    case "analyze --spec-only verdicts and exit codes" test_analyze_spec_only;
    case "analyze --spec-only prints a reject witness"
      test_analyze_spec_only_rejects;
    case "portfolio prepass and --no-analysis" test_portfolio_prepass;
    case "analyze with sensitivity" test_analyze_sensitivity;
    case "vcd output" test_vcd_output;
    case "simulate with fault injection" test_simulate_fault;
    case "model-check" test_model_check;
    case "trace output" test_trace_output;
    case "metrics output" test_metrics_output;
    case "bad usage" test_bad_usage;
    case "info --digest" test_info_digest;
    slow_case "schedule --timeout exits 124" test_schedule_timeout;
    slow_case "gen + batch cold/warm" test_gen_and_batch_warm;
    slow_case "serve over stdio" test_serve_stdio;
  ]
