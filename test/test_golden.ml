(* Golden-file tests: the PNML export and the generated C program for
   a fixed corpus spec are compared byte-for-byte against checked-in
   references, so any unintended change to either serializer shows up
   as a readable diff.  Regenerate the files with:

     dune exec bin/ezrt.exe -- model test/corpus/feasible-mix.xml \
       -o test/golden/feasible-mix.pnml
     dune exec bin/ezrt.exe -- codegen test/corpus/feasible-mix.xml \
       -o test/golden/feasible-mix.c *)

open Ezrealtime
open Test_util

let spec_path = Filename.concat "corpus" "feasible-mix.xml"
let golden name = Filename.concat "golden" name

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_spec () =
  match Dsl.load_file spec_path with
  | Ok spec -> spec
  | Error e -> Alcotest.fail (Dsl.error_to_string e)

let test_pnml_golden () =
  let model = Translate.translate (load_spec ()) in
  check_string "PNML export matches the golden file"
    (read_file (golden "feasible-mix.pnml"))
    (Pnml.to_string model.Translate.net)

let test_codegen_golden () =
  match synthesize (load_spec ()) with
  | Error e -> Alcotest.fail (error_to_string e)
  | Ok artifact ->
    check_string "generated C matches the golden file"
      (read_file (golden "feasible-mix.c"))
      artifact.c_program

let suite =
  [
    case "pnml golden" test_pnml_golden;
    case "codegen golden" test_codegen_golden;
  ]
