module Translate = Ezrt_blocks.Translate
module Search = Ezrt_sched.Search
module Class_search = Ezrt_sched.Class_search
module Schedule = Ezrt_sched.Schedule
module Timeline = Ezrt_sched.Timeline
module Validator = Ezrt_sched.Validator
module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let solve spec =
  let model = Translate.translate spec in
  let outcome, metrics = Class_search.find_schedule model in
  (model, outcome, metrics)

let expect_feasible name spec =
  match solve spec with
  | model, Ok schedule, _ ->
    let final = Schedule.replay model.Translate.net schedule in
    check_bool (name ^ " reaches MF") true (Translate.is_final model final);
    let segments = Timeline.of_schedule model schedule in
    (match Validator.check model segments with
    | Ok () -> ()
    | Error vs ->
      Alcotest.failf "%s: %s" name (Validator.violation_to_string (List.hd vs)))
  | _, Error f, _ ->
    Alcotest.failf "%s: %s" name (Class_search.failure_to_string f)

let test_all_case_studies () =
  List.iter (fun (name, spec) -> expect_feasible name spec) Case_studies.all

let test_greedy_trap_without_flags () =
  (* the class search is complete for dense time: the inserted-idle
     schedule needs no special option, and the exact extraction
     realizes the delayed release *)
  expect_feasible "greedy trap" Case_studies.greedy_trap

let test_fewer_nodes_than_discrete () =
  let model = Translate.translate Case_studies.mine_pump in
  let _, class_metrics = Class_search.find_schedule model in
  let _, discrete_metrics = Search.find_schedule model in
  check_bool "classes below discrete states" true
    (class_metrics.Class_search.stored < discrete_metrics.Search.stored)

let test_infeasible_detected () =
  let spec =
    Spec.make ~name:"tight"
      ~tasks:
        [
          Task.make ~name:"a" ~wcet:5 ~deadline:5 ~period:10 ();
          Task.make ~name:"b" ~wcet:5 ~deadline:6 ~period:10 ();
        ]
      ()
  in
  match solve spec with
  | _, Error Class_search.Infeasible, _ -> ()
  | _, Error f, _ ->
    Alcotest.failf "wrong failure: %s" (Class_search.failure_to_string f)
  | _, Ok _, _ -> Alcotest.fail "should be unschedulable"

let test_budget () =
  let model = Translate.translate Case_studies.mine_pump in
  match Class_search.find_schedule ~max_stored:2 model with
  | Error Class_search.Budget_exhausted, m ->
    check_int "stored at budget" 2 m.Class_search.stored
  | Error _, _ | Ok _, _ -> Alcotest.fail "expected budget exhaustion"

let test_agrees_with_discrete_on_feasibility () =
  List.iter
    (fun (name, spec) ->
      let model = Translate.translate spec in
      let discrete = Result.is_ok (fst (Search.find_schedule model)) in
      let classes = Result.is_ok (fst (Class_search.find_schedule model)) in
      (* dense-time feasibility is implied by discrete feasibility *)
      if discrete && not classes then
        Alcotest.failf "%s: discrete feasible but class search failed" name)
    Case_studies.all

let prop_class_schedules_certify =
  qcheck ~count:40 "class-search schedules certify" arbitrary_spec (fun spec ->
      match solve spec with
      | model, Ok schedule, _ ->
        let segments = Timeline.of_schedule model schedule in
        Result.is_ok (Validator.check model segments)
      | _, Error Class_search.Extraction_failed, _ -> false
      | _, Error (Class_search.Infeasible | Class_search.Budget_exhausted), _
        -> true)

(* Both engines must agree on feasibility for generated specs: the
   discrete engine is work-conserving-restricted but the generator's
   synchronous harmonic sets don't need inserted idle... they might.
   Only the implication discrete => class is a theorem. *)
let prop_discrete_implies_class =
  qcheck ~count:30 "discrete feasible => class feasible" arbitrary_spec
    (fun spec ->
      let model = Translate.translate spec in
      match fst (Search.find_schedule model) with
      | Error _ -> true
      | Ok _ -> Result.is_ok (fst (Class_search.find_schedule model)))

(* Relation-heavy infeasible spec: five tasks in a near-complete
   exclusion clique plus one precedence.  Infeasibility forces the
   search to exhaust the class graph, where the same marking recurs
   under strictly nested domains — the workload subsumption exists
   for.  Mirrored by the A17_class_relations bench record. *)
let relations_spec =
  let mk i d =
    Task.make ~name:(Printf.sprintf "q%d" i) ~wcet:7 ~deadline:d ~period:40 ()
  in
  let tasks = [ mk 0 22; mk 1 22; mk 2 26; mk 3 30; mk 4 34 ] in
  let id i = (List.nth tasks i).Task.id in
  let pairs =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j -> if j > i then Some (id i, id j) else None)
          [ 0; 1; 2; 3; 4 ])
      [ 0; 1; 2; 3; 4 ]
  in
  Spec.make ~name:"relations" ~tasks
    ~precedences:[ (id 0, id 1) ]
    ~exclusions:(List.filter (fun p -> p <> (id 0, id 1)) pairs)
    ()

let test_subsumption_prunes () =
  let model = Translate.translate relations_spec in
  let on_outcome, on = Class_search.find_schedule model in
  let off_outcome, off = Class_search.find_schedule ~subsume:false model in
  check_bool "verdicts agree" true
    (Result.is_error on_outcome = Result.is_error off_outcome);
  check_bool "subsumption fired" true (on.Class_search.subsumed > 0);
  check_bool "fewer classes stored" true
    (on.Class_search.stored < off.Class_search.stored);
  check_int "no subsumption when disabled" 0 off.Class_search.subsumed

let test_determinism () =
  (* two runs over the same model are bit-identical: same schedule,
     same metrics (the store's iteration order never leaks) *)
  List.iter
    (fun (name, spec) ->
      let model = Translate.translate spec in
      let o1, m1 = Class_search.find_schedule model in
      let o2, m2 = Class_search.find_schedule model in
      check_bool (name ^ " same outcome") true (o1 = o2);
      check_int (name ^ " same stored") m1.Class_search.stored
        m2.Class_search.stored;
      check_int (name ^ " same backtracks") m1.Class_search.backtracks
        m2.Class_search.backtracks)
    (("relations", relations_spec) :: Case_studies.all)

let test_subsume_off_matches_on () =
  (* the escape hatch must not change any verdict *)
  List.iter
    (fun (name, spec) ->
      let model = Translate.translate spec in
      let on = fst (Class_search.find_schedule model) in
      let off = fst (Class_search.find_schedule ~subsume:false model) in
      check_bool (name ^ " verdict unchanged") true
        (Result.is_ok on = Result.is_ok off))
    (("relations", relations_spec) :: Case_studies.all)

let test_cancel_is_prompt () =
  (* a cancel that is already set must stop the search at the first
     visited class, including down eager chains *)
  let model = Translate.translate Case_studies.mine_pump in
  match Class_search.find_schedule ~cancel:(fun () -> true) model with
  | Error Class_search.Budget_exhausted, m ->
    check_int "nothing stored" 0 m.Class_search.stored
  | Error f, _ ->
    Alcotest.failf "wrong failure: %s" (Class_search.failure_to_string f)
  | Ok _, _ -> Alcotest.fail "cancelled search cannot succeed"

let test_subsumption_applicability () =
  (* the translation's priority discipline satisfies the static
     soundness conditions on every case study *)
  List.iter
    (fun (name, spec) ->
      let model = Translate.translate spec in
      check_bool (name ^ " subsumption applicable") true
        (Class_search.subsumption_applicable model))
    (("relations", relations_spec) :: Case_studies.all)

let prop_subsume_verdict_agreement =
  qcheck ~count:30 "subsumption never changes the verdict" arbitrary_spec
    (fun spec ->
      let model = Translate.translate spec in
      let on = fst (Class_search.find_schedule model) in
      let off = fst (Class_search.find_schedule ~subsume:false model) in
      Result.is_ok on = Result.is_ok off)

let suite =
  [
    case "case studies via state classes" test_all_case_studies;
    case "greedy trap needs no flag" test_greedy_trap_without_flags;
    slow_case "fewer nodes than the discrete search"
      test_fewer_nodes_than_discrete;
    case "infeasibility detected" test_infeasible_detected;
    case "budget exhaustion" test_budget;
    case "feasibility agrees with the discrete engine"
      test_agrees_with_discrete_on_feasibility;
    case "subsumption prunes the relations spec" test_subsumption_prunes;
    case "deterministic metrics and schedules" test_determinism;
    case "subsume off matches on" test_subsume_off_matches_on;
    case "cancel stops at the first class" test_cancel_is_prompt;
    case "subsumption statically applicable" test_subsumption_applicability;
    prop_class_schedules_certify;
    prop_discrete_implies_class;
    prop_subsume_verdict_agreement;
  ]
