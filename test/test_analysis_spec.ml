(* Tests for the spec-level schedulability analyzer (lib/analysis):
   the demand bound is monotone in the window, every quick-reject
   witness re-evaluates to true, every quick-accept certificate passes
   the independent validator, Unknown is the only verdict allowed to
   disagree with a search engine, and a golden file pins the verdict
   of every corpus and example spec.  Regenerate the golden file with:

     EZRT_UPDATE_GOLDEN=1 dune test --force *)

module Spec = Ezrt_spec.Spec
module Task = Ezrt_spec.Task
module Validate = Ezrt_spec.Validate
module Stats = Ezrt_spec.Stats
module Dsl = Ezrt_spec.Dsl
module Translate = Ezrt_blocks.Translate
module Search = Ezrt_sched.Search
module Schedule = Ezrt_sched.Schedule
module Validator = Ezrt_sched.Validator
module A = Ezrt_analysis.Schedulability
open Test_util

let valid spec = (Validate.check spec).Validate.errors = []

(* --- demand-bound properties ----------------------------------------- *)

(* a spec plus nested windows [t1, t2] within [u1, u2] within [0, H] *)
let spec_and_windows =
  let gen =
    QCheck.Gen.(
      let* spec = spec_gen in
      let h = Spec.hyperperiod spec in
      let* u1 = int_range 0 h in
      let* u2 = int_range u1 h in
      let* t1 = int_range u1 u2 in
      let* t2 = int_range t1 u2 in
      return (spec, (u1, u2), (t1, t2)))
  in
  QCheck.make
    ~print:(fun (s, (u1, u2), (t1, t2)) ->
      Format.asprintf "[%d,%d] in [%d,%d] of %a" t1 t2 u1 u2 Spec.pp s)
    gen

let test_demand_monotone =
  qcheck "demand is monotone in the window" spec_and_windows
    (fun (spec, (u1, u2), (t1, t2)) ->
      A.demand spec ~t1 ~t2 <= A.demand spec ~t1:u1 ~t2:u2)

let test_demand_nonneg =
  qcheck "demand is non-negative and bounded by total work"
    spec_and_windows
    (fun (spec, (u1, u2), _) ->
      let d = A.demand spec ~t1:u1 ~t2:u2 in
      0 <= d && d <= (Stats.compute spec).Stats.busy_time)

(* --- soundness properties -------------------------------------------- *)

let test_witnesses_hold =
  qcheck "quick-reject witnesses re-evaluate to true" arbitrary_spec
    (fun spec ->
      QCheck.assume (valid spec);
      match A.quick_reject spec with
      | Some w -> A.witness_holds spec w
      | None -> true)

let test_certificates_certify =
  qcheck ~count:100 "quick-accept certificates pass the validator"
    arbitrary_spec
    (fun spec ->
      QCheck.assume (valid spec);
      let model = Translate.translate spec in
      match A.analyze model with
      | A.Feasible actions -> (
        match Validator.certify model (Schedule.of_actions actions) with
        | Ok _ -> true
        | Error f ->
          QCheck.Test.fail_reportf "certificate rejected: %s"
            (Validator.certification_failure_to_string f))
      | A.Infeasible _ | A.Unknown _ -> true)

let test_only_unknown_disagrees =
  qcheck ~count:60 "Unknown is the only verdict allowed to disagree"
    arbitrary_spec
    (fun spec ->
      QCheck.assume (valid spec);
      let model = Translate.translate spec in
      let verdict = A.analyze model in
      let search, _ =
        Search.find_schedule
          ~options:{ Search.default_options with max_stored = 30_000 }
          model
      in
      match verdict, search with
      | A.Infeasible w, Ok _ ->
        QCheck.Test.fail_reportf
          "analysis rejected a searchable spec: %s" (A.witness_to_string w)
      | A.Feasible _, Error Search.Infeasible ->
        QCheck.Test.fail_reportf
          "analysis accepted a spec the search proved infeasible"
      | _ -> true)

(* --- saturation pin (satellite: overflow never wraps) ----------------- *)

let test_saturated_hyperperiod () =
  (* two coprime Mersenne primes: the true lcm is ~5e27, far past
     max_int, so every derived quantity must saturate, not wrap *)
  let spec =
    Spec.make ~name:"huge"
      ~tasks:
        [
          Task.make ~name:"a" ~wcet:1 ~deadline:10 ~period:2147483647 ();
          Task.make ~name:"b" ~wcet:1 ~deadline:10 ~period:2305843009213693951
            ();
        ]
      ()
  in
  check_int "hyperperiod saturates at max_int" max_int (Spec.hyperperiod spec);
  let stats = Stats.compute spec in
  check_bool "busy time is non-negative" true (stats.Stats.busy_time >= 0);
  check_bool "total instances is non-negative" true
    (stats.Stats.total_instances >= 0);
  (* with a saturated hyper-period the window analyses are skipped and
     only per-instance laxity runs: no crash, no wrapped witness *)
  (match A.quick_reject spec with
  | Some w -> check_bool "witness still holds" true (A.witness_holds spec w)
  | None -> ());
  check_bool "saturated spec is outside the accept fragment" false
    (A.accept_applicable spec);
  check_int "sat_add pins at max_int" max_int (Spec.sat_add max_int 1);
  check_int "sat_add is exact below the ceiling" 7 (Spec.sat_add 3 4);
  check_int "sat_mul pins at max_int" max_int (Spec.sat_mul ((max_int / 2) + 1) 2);
  check_int "sat_mul by zero" 0 (Spec.sat_mul max_int 0)

(* a laxity witness on the saturated spec: deadline too tight for the
   WCET, caught without ever touching the hyper-period *)
let test_saturated_laxity_witness () =
  let spec =
    Spec.make ~name:"huge-tight"
      ~tasks:
        [
          Task.make ~name:"a" ~wcet:9 ~deadline:10 ~period:2147483647 ();
          Task.make ~name:"b" ~release:3 ~wcet:8 ~deadline:10
            ~period:2305843009213693951 ();
        ]
      ()
  in
  check_int "hyperperiod saturates" max_int (Spec.hyperperiod spec);
  match A.quick_reject spec with
  | Some (A.Negative_laxity _ as w) ->
    check_bool "laxity witness holds" true (A.witness_holds spec w)
  | Some w -> Alcotest.failf "expected a laxity witness, got %s"
                (A.witness_to_string w)
  | None -> Alcotest.fail "r + c > d must quick-reject"

(* --- golden verdicts over the corpus and example specs ---------------- *)

let golden_path = Filename.concat "golden" "analysis-verdicts.txt"
let update_golden = Sys.getenv_opt "EZRT_UPDATE_GOLDEN" <> None

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let verdict_line file =
  let name = Filename.basename file in
  match Dsl.load_file file with
  | Error e -> Printf.sprintf "%s: unreadable (%s)" name (Dsl.error_to_string e)
  | Ok spec -> (
    match (Validate.check spec).Validate.errors with
    | e :: _ ->
      Printf.sprintf "%s: invalid (%s)" name (Validate.error_to_string e)
    | [] -> (
      match A.analyze (Translate.translate spec) with
      | A.Infeasible w ->
        Printf.sprintf "%s: infeasible [%s] %s" name (A.witness_kind w)
          (A.witness_to_string w)
      | A.Feasible actions ->
        Printf.sprintf "%s: feasible (%d firings)" name (List.length actions)
      | A.Unknown why -> Printf.sprintf "%s: unknown (%s)" name why))

let test_golden_verdicts () =
  let xml_files dir =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".xml")
    |> List.sort compare
    |> List.map (Filename.concat dir)
  in
  let files = xml_files "corpus" @ xml_files "../specs" in
  let actual =
    String.concat "" (List.map (fun f -> verdict_line f ^ "\n") files)
  in
  if update_golden then write_file golden_path actual
  else
    check_string "analysis verdicts match the golden file"
      (read_file golden_path) actual

let suite =
  [
    test_demand_monotone;
    test_demand_nonneg;
    test_witnesses_hold;
    test_certificates_certify;
    test_only_unknown_disagrees;
    case "saturated hyper-period never wraps" test_saturated_hyperperiod;
    case "laxity witness survives saturation" test_saturated_laxity_witness;
    case "golden verdicts" test_golden_verdicts;
  ]
