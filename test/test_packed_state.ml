(* Packed_state properties: pack/unpack round-trips at every cell
   width, the memoized hash agrees with State.hash, and equal logical
   states always encode to equal bytes (the property the search's memo
   table relies on). *)

open Ezrt_tpn
open Test_util
module Rng = Ezrt_gen.Rng
module Spec_gen = Ezrt_gen.Spec_gen

let pack_cells ~n_places cells =
  Packed_state.pack ~n_places
    ~n_transitions:(Array.length cells - n_places)
    ~tokens:(fun p -> cells.(p))
    ~clock:(fun t -> cells.(n_places + t))

let arb_cells =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Rng.create seed in
        let n = 1 + Rng.int rng 12 in
        let n_places = Rng.int rng (n + 1) in
        (n_places, Array.init n (fun _ -> Spec_gen.cell rng)))
      QCheck.Gen.int
  in
  QCheck.make
    ~print:(fun (n_places, cells) ->
      Printf.sprintf "n_places=%d [%s]" n_places
        (String.concat "; "
           (Array.to_list (Array.map string_of_int cells))))
    gen

let prop_roundtrip =
  qcheck "pack/unpack round-trip across widths" arb_cells
    (fun (n_places, cells) ->
      Packed_state.unpack (pack_cells ~n_places cells) = cells)

let prop_byte_size =
  qcheck "byte size is 1 + width * cells" arb_cells
    (fun (n_places, cells) ->
      let n = Array.length cells in
      List.mem
        (Packed_state.byte_size (pack_cells ~n_places cells))
        [ 1 + (2 * n); 1 + (4 * n); 1 + (8 * n) ])

let test_width_selection () =
  let size cells = Packed_state.byte_size (pack_cells ~n_places:1 cells) in
  check_int "16-bit cells" (1 + (2 * 3)) (size [| -0x8000; 0; 0x7fff |]);
  check_int "32-bit cells" (1 + (4 * 3)) (size [| -0x8001; 0; 0x7fff |]);
  check_int "32-bit upper edge" (1 + (4 * 2)) (size [| 0x8000; 1 |]);
  check_int "64-bit cells" (1 + (8 * 2)) (size [| min_int; max_int |]);
  check_int "empty" 1 (size [||])

(* a deterministic pseudo-random walk through a net's reachable states *)
let walk net steps =
  let rec go state k acc =
    if k = 0 then acc
    else
      match State.fireable net state with
      | [] -> acc
      | ts ->
        let t = List.nth ts (k mod List.length ts) in
        let lo, _ = State.firing_domain net state t in
        let state = State.fire net state t lo in
        go state (k - 1) (state :: acc)
  in
  go (State.initial net) steps [ State.initial net ]

let nets () =
  [ sequential_net (); conflict_net (); ring_net 4 3; ring_net 6 11 ]

let test_hash_agrees_with_state () =
  List.iter
    (fun net ->
      List.iter
        (fun s ->
          check_int "hash agreement" (State.hash s)
            (Packed_state.hash (Packed_state.of_state s)))
        (walk net 12))
    (nets ())

let test_equal_states_equal_bytes () =
  List.iter
    (fun net ->
      List.iter
        (fun s ->
          let a = Packed_state.of_state s and b = Packed_state.of_state s in
          check_bool "packed equal" true (Packed_state.equal a b);
          check_bool "identical bytes" true (a.Packed_state.data = b.Packed_state.data))
        (walk net 8))
    (nets ())

let test_distinct_states_distinct_bytes () =
  let net = sequential_net () in
  match walk net 2 with
  | s1 :: s0 :: _ ->
    check_bool "different states, different bytes" false
      (Packed_state.equal (Packed_state.of_state s0) (Packed_state.of_state s1))
  | _ -> Alcotest.fail "walk should reach two states"

let test_of_engine_matches_of_state () =
  let net = sequential_net () in
  let eng = State.Incremental.create net in
  let check_point () =
    let from_engine = Packed_state.of_engine eng in
    let from_state = Packed_state.of_state (State.Incremental.snapshot eng) in
    check_bool "of_engine = of_state" true
      (Packed_state.equal from_engine from_state);
    check_int "hash too" (Packed_state.hash from_state)
      (Packed_state.hash from_engine)
  in
  check_point ();
  State.Incremental.fire eng 0 2;
  check_point ();
  State.Incremental.fire eng 1 0;
  check_point ()

let suite =
  [
    prop_roundtrip;
    prop_byte_size;
    case "width selection edges" test_width_selection;
    case "hash agrees with State.hash" test_hash_agrees_with_state;
    case "equal states encode to equal bytes" test_equal_states_equal_bytes;
    case "distinct states differ" test_distinct_states_distinct_bytes;
    case "of_engine matches of_state" test_of_engine_matches_of_state;
  ]
