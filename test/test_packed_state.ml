(* Packed_state properties: pack/unpack round-trips at every cell
   width, the memoized hash agrees with State.hash, and equal logical
   states always encode to equal bytes (the property the search's memo
   table relies on). *)

open Ezrt_tpn
open Test_util
module Rng = Ezrt_gen.Rng
module Spec_gen = Ezrt_gen.Spec_gen

let pack_cells ~n_places cells =
  Packed_state.pack ~n_places
    ~n_transitions:(Array.length cells - n_places)
    ~tokens:(fun p -> cells.(p))
    ~clock:(fun t -> cells.(n_places + t))

let arb_cells =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Rng.create seed in
        let n = 1 + Rng.int rng 12 in
        let n_places = Rng.int rng (n + 1) in
        (n_places, Array.init n (fun _ -> Spec_gen.cell rng)))
      QCheck.Gen.int
  in
  QCheck.make
    ~print:(fun (n_places, cells) ->
      Printf.sprintf "n_places=%d [%s]" n_places
        (String.concat "; "
           (Array.to_list (Array.map string_of_int cells))))
    gen

let prop_roundtrip =
  qcheck "pack/unpack round-trip across widths" arb_cells
    (fun (n_places, cells) ->
      Packed_state.unpack (pack_cells ~n_places cells) = cells)

let prop_byte_size =
  qcheck "byte size is 1 + width * cells" arb_cells
    (fun (n_places, cells) ->
      let n = Array.length cells in
      List.mem
        (Packed_state.byte_size (pack_cells ~n_places cells))
        [ 1 + (2 * n); 1 + (4 * n); 1 + (8 * n) ])

let test_width_selection () =
  let size cells = Packed_state.byte_size (pack_cells ~n_places:1 cells) in
  check_int "16-bit cells" (1 + (2 * 3)) (size [| -0x8000; 0; 0x7fff |]);
  check_int "32-bit cells" (1 + (4 * 3)) (size [| -0x8001; 0; 0x7fff |]);
  check_int "32-bit upper edge" (1 + (4 * 2)) (size [| 0x8000; 1 |]);
  check_int "64-bit cells" (1 + (8 * 2)) (size [| min_int; max_int |]);
  check_int "empty" 1 (size [||])

(* a deterministic pseudo-random walk through a net's reachable states *)
let walk net steps =
  let rec go state k acc =
    if k = 0 then acc
    else
      match State.fireable net state with
      | [] -> acc
      | ts ->
        let t = List.nth ts (k mod List.length ts) in
        let lo, _ = State.firing_domain net state t in
        let state = State.fire net state t lo in
        go state (k - 1) (state :: acc)
  in
  go (State.initial net) steps [ State.initial net ]

let nets () =
  [ sequential_net (); conflict_net (); ring_net 4 3; ring_net 6 11 ]

let test_hash_agrees_with_state () =
  List.iter
    (fun net ->
      List.iter
        (fun s ->
          check_int "hash agreement" (State.hash s)
            (Packed_state.hash (Packed_state.of_state s)))
        (walk net 12))
    (nets ())

let test_equal_states_equal_bytes () =
  List.iter
    (fun net ->
      List.iter
        (fun s ->
          let a = Packed_state.of_state s and b = Packed_state.of_state s in
          check_bool "packed equal" true (Packed_state.equal a b);
          check_bool "identical bytes" true (a.Packed_state.data = b.Packed_state.data))
        (walk net 8))
    (nets ())

let test_distinct_states_distinct_bytes () =
  let net = sequential_net () in
  match walk net 2 with
  | s1 :: s0 :: _ ->
    check_bool "different states, different bytes" false
      (Packed_state.equal (Packed_state.of_state s0) (Packed_state.of_state s1))
  | _ -> Alcotest.fail "walk should reach two states"

let test_of_engine_matches_of_state () =
  let net = sequential_net () in
  let eng = State.Incremental.create net in
  let check_point () =
    let from_engine = Packed_state.of_engine eng in
    let from_state = Packed_state.of_state (State.Incremental.snapshot eng) in
    check_bool "of_engine = of_state" true
      (Packed_state.equal from_engine from_state);
    check_int "hash too" (Packed_state.hash from_state)
      (Packed_state.hash from_engine)
  in
  check_point ();
  State.Incremental.fire eng 0 2;
  check_point ();
  State.Incremental.fire eng 1 0;
  check_point ()

(* --- sharded table ------------------------------------------------- *)

(* Key multisets with deliberate duplication, so concurrent claims
   actually race on the same keys. *)
let arb_key_multiset =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Rng.create seed in
        let n_places = 1 + Rng.int rng 4 in
        let n_cells = n_places + 1 + Rng.int rng 4 in
        let distinct = 1 + Rng.int rng 50 in
        let keys =
          Array.init distinct (fun _ ->
              pack_cells ~n_places
                (Array.init n_cells (fun _ -> Spec_gen.cell rng)))
        in
        (* every key is offered at least once, plus random duplicates
           so concurrent claims race on the same keys *)
        let dups = Rng.int rng (3 * distinct) in
        ( Array.to_list keys,
          Array.to_list keys
          @ List.init dups (fun _ -> keys.(Rng.int rng distinct)) ))
      QCheck.Gen.int
  in
  QCheck.make
    ~print:(fun (keys, ops) ->
      Printf.sprintf "%d distinct keys, %d ops" (List.length keys)
        (List.length ops))
    gen

(* Linearizable-equivalence with a sequential Hashtbl fed the same
   multiset: however 4 domains interleave their [add]s, every key is
   claimed exactly once globally, [mem] sees every inserted key, and
   [length] equals the distinct count — the same observations a
   sequential run produces. *)
let prop_sharded_linearizable =
  qcheck ~count:60 "sharded table: 4-domain adds linearize"
    arb_key_multiset
    (fun (keys, ops) ->
      let distinct =
        let h = Hashtbl.create 64 in
        List.iter (fun k -> Hashtbl.replace h k.Packed_state.data ()) keys;
        Hashtbl.length h
      in
      let table = Packed_state.Sharded.create ~stripes:8 ~expected:16 () in
      let shares = Array.make 4 [] in
      List.iteri (fun i k -> shares.(i mod 4) <- k :: shares.(i mod 4)) ops;
      let claims =
        Array.map
          (fun share ->
            Domain.spawn (fun () ->
                List.fold_left
                  (fun n k ->
                    if Packed_state.Sharded.add table k then n + 1 else n)
                  0 share))
          shares
      in
      let claimed = Array.fold_left (fun n d -> n + Domain.join d) 0 claims in
      claimed = distinct
      && Packed_state.Sharded.length table = distinct
      && List.for_all (fun k -> Packed_state.Sharded.mem table k) keys)

let test_sharded_stats () =
  let table = Packed_state.Sharded.create ~stripes:4 ~expected:8 () in
  let keys =
    List.init 100 (fun i -> pack_cells ~n_places:1 [| i; i * 7; i mod 3 |])
  in
  List.iter (fun k -> ignore (Packed_state.Sharded.add table k)) keys;
  List.iter (fun k -> check_bool "present" true (Packed_state.Sharded.mem table k)) keys;
  let absent = pack_cells ~n_places:1 [| -1; -2; -3 |] in
  check_bool "absent key" false (Packed_state.Sharded.mem table absent);
  let st = Packed_state.Sharded.stats table in
  check_int "entries" 100 st.Packed_state.Sharded.entries;
  check_int "stripes" 4 st.Packed_state.Sharded.stripes;
  check_bool "capacity covers entries" true
    (st.Packed_state.Sharded.capacity >= 100);
  check_bool "load in (0, 1)" true
    (st.Packed_state.Sharded.load > 0.0 && st.Packed_state.Sharded.load < 1.0);
  check_bool "uncontended when sequential" true
    (st.Packed_state.Sharded.contended = 0)

let suite =
  [
    prop_roundtrip;
    prop_byte_size;
    case "width selection edges" test_width_selection;
    case "hash agrees with State.hash" test_hash_agrees_with_state;
    case "equal states encode to equal bytes" test_equal_states_equal_bytes;
    case "distinct states differ" test_distinct_states_distinct_bytes;
    case "of_engine matches of_state" test_of_engine_matches_of_state;
    prop_sharded_linearizable;
    case "sharded table: stats sanity" test_sharded_stats;
  ]
