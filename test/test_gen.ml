(* The differential fuzzing subsystem itself: seeded generation is
   byte-for-byte reproducible and always valid, the differ finds no
   divergence on healthy engines, a deliberately lying engine is
   caught and shrunk to a tiny counterexample, and the shrinker is
   minimal on a synthetic predicate. *)

open Test_util
module Rng = Ezrt_gen.Rng
module Spec_gen = Ezrt_gen.Spec_gen
module Differ = Ezrt_gen.Differ
module Shrink = Ezrt_gen.Shrink
module Fuzz = Ezrt_gen.Fuzz
module Spec = Ezrt_spec.Spec
module Task = Ezrt_spec.Task
module Dsl = Ezrt_spec.Dsl
module Validate = Ezrt_spec.Validate
module Case_studies = Ezrt_spec.Case_studies

(* --- the PRNG ------------------------------------------------------- *)

let test_rng_deterministic () =
  let draw () =
    let rng = Rng.create 99 in
    List.init 20 (fun _ -> Rng.int rng 1000)
  in
  check_bool "same seed, same stream" true (draw () = draw ());
  let a = Rng.create 1 and b = Rng.create 2 in
  check_bool "different seeds diverge" true
    (List.init 20 (fun _ -> Rng.int a 1000)
    <> List.init 20 (fun _ -> Rng.int b 1000))

let test_rng_derive_independent () =
  let root = Rng.create 7 in
  let s0 = Rng.derive root 0 and s1 = Rng.derive root 1 in
  check_bool "derived streams differ" true
    (List.init 10 (fun _ -> Rng.int s0 1000)
    <> List.init 10 (fun _ -> Rng.int s1 1000));
  (* deriving must not depend on how much the parent stream was used *)
  let root' = Rng.create 7 in
  ignore (Rng.int root' 1000);
  check_bool "derive ignores parent position" true
    (Rng.int (Rng.derive root' 5) 1000 = Rng.int (Rng.derive root 5) 1000)

let prop_rng_bounds =
  qcheck "int_in stays in bounds" QCheck.(pair int (pair small_int small_int))
    (fun (seed, (a, b)) ->
      let lo = min a b and hi = max a b in
      let rng = Rng.create seed in
      let v = Rng.int_in rng lo hi in
      lo <= v && v <= hi)

let prop_rng_float_unit =
  qcheck "float in [0,1)" QCheck.int (fun seed ->
      let f = Rng.float (Rng.create seed) in
      0.0 <= f && f < 1.0)

(* --- the generator -------------------------------------------------- *)

let test_generation_reproducible () =
  List.iter
    (fun i ->
      check_string
        (Printf.sprintf "spec %d byte-identical" i)
        (Dsl.to_string (Spec_gen.spec_at ~seed:123 i))
        (Dsl.to_string (Spec_gen.spec_at ~seed:123 i)))
    (List.init 10 Fun.id)

let test_generation_valid () =
  List.iter
    (fun i ->
      let spec = Spec_gen.spec_at ~seed:5 i in
      check_bool (Printf.sprintf "spec %d valid" i) true
        (Validate.is_valid spec))
    (List.init 40 Fun.id)

let test_generation_covers_features () =
  let specs = List.init 120 (Spec_gen.spec_at ~seed:3) in
  let exists f = List.exists f specs in
  check_bool "some spec has a precedence" true
    (exists (fun s -> s.Spec.precedences <> []));
  check_bool "some spec has an exclusion" true
    (exists (fun s -> s.Spec.exclusions <> []));
  check_bool "some spec has a message" true
    (exists (fun s -> s.Spec.messages <> []));
  check_bool "some spec has a preemptive task" true
    (exists (fun s ->
         List.exists (fun t -> t.Task.mode = Task.Preemptive) s.Spec.tasks));
  check_bool "some spec sits near the feasibility boundary" true
    (exists (fun s -> Spec.utilization s >= 0.8));
  check_bool "some spec is lightly loaded" true
    (exists (fun s -> Spec.utilization s <= 0.5));
  check_bool "every utilization validates" true
    (List.for_all (fun s -> Spec.utilization s <= 1.0 +. 1e-9) specs)

(* --- the differ ----------------------------------------------------- *)

let test_no_divergence_on_case_studies () =
  List.iter
    (fun (name, spec) ->
      let report = Differ.check spec in
      Alcotest.(check (list string))
        (name ^ " has no divergence") []
        (List.map Differ.divergence_to_string report.Differ.divergences))
    [
      ("quickstart", Case_studies.quickstart);
      ("fig8-preemptive", Case_studies.fig8_preemptive);
      ("greedy-trap", Case_studies.greedy_trap);
    ]

let test_smoke_campaign_clean () =
  let stats =
    Fuzz.run ~profile:Spec_gen.smoke ~shrink:false ~seed:9 ~count:40 ()
  in
  check_int "all specs generated" 40 stats.Fuzz.generated;
  check_int "no divergences" 0 (List.length stats.Fuzz.divergent);
  check_bool "verdicts on both sides" true
    (stats.Fuzz.feasible > 0 && stats.Fuzz.infeasible > 0)

let test_campaign_deterministic () =
  let run () =
    let s = Fuzz.run ~profile:Spec_gen.smoke ~shrink:false ~seed:4 ~count:25 () in
    (s.Fuzz.feasible, s.Fuzz.infeasible, s.Fuzz.unknown)
  in
  check_bool "tallies reproducible" true (run () = run ())

let lying_engine = ("liar", fun ~max_stored:_ _model -> Differ.Infeasible)

let test_injected_bug_caught_and_shrunk () =
  (* an engine that always answers infeasible must trip the differ on
     the first feasible spec... *)
  let rec first_catch i =
    if i > 50 then Alcotest.fail "no feasible spec in 50 draws"
    else
      let spec = Spec_gen.spec_at ~seed:11 i in
      if (Differ.check ~extra:[ lying_engine ] spec).Differ.divergences <> []
      then spec
      else first_catch (i + 1)
  in
  let spec = first_catch 0 in
  check_bool "healthy engines agree on the same spec" true
    ((Differ.check spec).Differ.divergences = []);
  (* ...and the divergence must shrink to a tiny spec that still trips *)
  let failing s =
    (Differ.check ~extra:[ lying_engine ] s).Differ.divergences <> []
  in
  let shrunk = Shrink.minimize ~failing spec in
  check_bool "shrunk to at most 4 tasks" true
    (List.length shrunk.Spec.tasks <= 4);
  check_bool "shrunk spec still fails" true (failing shrunk);
  check_bool "shrunk spec still valid" true (Validate.is_valid shrunk)

let test_uncertified_schedule_caught () =
  (* an engine whose schedule is a truncation of the real one must be
     flagged as uncertified, not silently accepted *)
  let spec = Case_studies.quickstart in
  let truncating =
    ( "truncator",
      fun ~max_stored model ->
        match
          fst
            (Ezrt_sched.Search.find_schedule
               ~options:{ Ezrt_sched.Search.default_options with max_stored }
               model)
        with
        | Ok s ->
          Differ.Feasible
            {
              Ezrt_sched.Schedule.entries =
                (match s.Ezrt_sched.Schedule.entries with
                | _ :: rest -> rest
                | [] -> []);
            }
        | Error _ -> Differ.Infeasible )
  in
  let report = Differ.check ~extra:[ truncating ] spec in
  check_bool "truncated schedule flagged" true
    (List.exists
       (function Differ.Uncertified _ -> true | _ -> false)
       report.Differ.divergences)

(* --- the shrinker --------------------------------------------------- *)

let test_shrink_minimal_on_synthetic_predicate () =
  let base = Spec_gen.spec_at ~seed:21 2 in
  (* grow to at least 3 tasks so there is something to shrink *)
  let failing s = List.length s.Spec.tasks >= 2 in
  let spec =
    if List.length base.Spec.tasks >= 3 then base
    else Spec_gen.spec_at ~seed:21 5
  in
  check_bool "starting point fails" true (failing spec);
  let shrunk = Shrink.minimize ~failing spec in
  check_int "exactly the minimal task count survives" 2
    (List.length shrunk.Spec.tasks);
  check_bool "no relations survive" true
    (shrunk.Spec.precedences = [] && shrunk.Spec.exclusions = []
    && shrunk.Spec.messages = []);
  (* fully reduced: every remaining candidate either grows, breaks
     validity, or stops failing *)
  check_bool "local minimum" true
    (List.for_all
       (fun c ->
         Shrink.size c >= Shrink.size shrunk
         || (not (Validate.is_valid c))
         || not (failing c))
       (Shrink.candidates shrunk))

let test_shrink_preserves_failure () =
  let failing s =
    List.exists (fun (t : Task.t) -> t.Task.mode = Task.Preemptive) s.Spec.tasks
  in
  let rec find i =
    if i > 100 then Alcotest.fail "no preemptive spec found"
    else
      let s = Spec_gen.spec_at ~seed:13 i in
      if failing s then s else find (i + 1)
  in
  let spec = find 0 in
  let shrunk = Shrink.minimize ~failing spec in
  check_bool "failure preserved" true (failing shrunk);
  check_bool "size never grows" true (Shrink.size shrunk <= Shrink.size spec)

(* --- corpus writing ------------------------------------------------- *)

let test_write_corpus_roundtrip () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "ezrt-fuzz-test" in
  let spec = Spec_gen.spec_at ~seed:17 0 in
  let stats =
    {
      Fuzz.seed = 17;
      count = 1;
      generated = 1;
      feasible = 1;
      infeasible = 0;
      unknown = 0;
      divergent =
        [ { Fuzz.index = 0; spec; divergences = []; shrunk = spec } ];
      elapsed_s = 0.1;
    }
  in
  (match Fuzz.write_corpus ~dir stats with
  | [ path ] ->
    (match Dsl.load_file path with
    | Ok reloaded ->
      check_string "round-trips through the DSL" (Dsl.to_string spec)
        (Dsl.to_string reloaded)
    | Error e -> Alcotest.fail (Dsl.error_to_string e));
    Sys.remove path
  | paths ->
    Alcotest.fail
      (Printf.sprintf "expected one corpus file, got %d" (List.length paths)));
  check_bool "empty stats write nothing" true
    (Fuzz.write_corpus ~dir { stats with divergent = [] } = [])

let suite =
  [
    case "rng determinism" test_rng_deterministic;
    case "rng derived streams" test_rng_derive_independent;
    prop_rng_bounds;
    prop_rng_float_unit;
    case "generation reproducible" test_generation_reproducible;
    case "generation valid" test_generation_valid;
    case "generation covers features" test_generation_covers_features;
    slow_case "no divergence on case studies" test_no_divergence_on_case_studies;
    slow_case "smoke campaign clean" test_smoke_campaign_clean;
    slow_case "campaign deterministic" test_campaign_deterministic;
    slow_case "injected bug caught and shrunk" test_injected_bug_caught_and_shrunk;
    case "uncertified schedule caught" test_uncertified_schedule_caught;
    case "shrink minimal on synthetic predicate"
      test_shrink_minimal_on_synthetic_predicate;
    case "shrink preserves failure" test_shrink_preserves_failure;
    case "write_corpus round-trip" test_write_corpus_roundtrip;
  ]
