(* Differential tests: the incremental firing engine and the packed
   state store against the copy-based State oracle, on random nets and
   on the full search. *)

open Ezrt_tpn
module Translate = Ezrt_blocks.Translate
module Search = Ezrt_sched.Search
module Schedule = Ezrt_sched.Schedule
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let bound = Alcotest.testable
    (fun ppf -> function
      | Time_interval.Finite n -> Format.fprintf ppf "%d" n
      | Time_interval.Infinity -> Format.pp_print_string ppf "inf")
    (fun a b -> Time_interval.bound_le a b && Time_interval.bound_le b a)

let check_bound = Alcotest.check bound
let check_ids = Alcotest.(check (list int))

(* Random nets richer than the ring: every transition keeps at least
   one input arc (so enabledness always depends on the marking) and
   gains random extra pre/post arcs; tokens are scattered.  Deadlocks
   and unboundedness don't matter here — we only compare observables
   along whatever walk exists. *)
let random_net rng =
  let n_places = 2 + Random.State.int rng 6 in
  let n_transitions = 1 + Random.State.int rng 6 in
  let b = Pnet.Builder.create "random" in
  let places =
    Array.init n_places (fun i ->
        Pnet.Builder.add_place b
          ~tokens:(Random.State.int rng 3)
          (Printf.sprintf "p%d" i))
  in
  for i = 0 to n_transitions - 1 do
    let eft = Random.State.int rng 4 in
    let lft = eft + Random.State.int rng 5 in
    let itv =
      if Random.State.int rng 8 = 0 then Time_interval.make_unbounded eft
      else Time_interval.make eft lft
    in
    let t = Pnet.Builder.add_transition b (Printf.sprintf "t%d" i) itv in
    let n_pre = 1 + Random.State.int rng 2 in
    for _ = 1 to n_pre do
      let w = 1 + Random.State.int rng 2 in
      Pnet.Builder.arc_pt b ~weight:w
        places.(Random.State.int rng n_places) t
    done;
    let n_post = Random.State.int rng 3 in
    for _ = 1 to n_post do
      let w = 1 + Random.State.int rng 2 in
      Pnet.Builder.arc_tp b ~weight:w t
        places.(Random.State.int rng n_places)
    done
  done;
  Pnet.Builder.build b

(* Compare every observable the search relies on. *)
let agree ctx net (s : State.t) eng =
  let n_places = Pnet.place_count net in
  let n_transitions = Pnet.transition_count net in
  for p = 0 to n_places - 1 do
    check_int
      (Printf.sprintf "%s tokens p%d" ctx p)
      (State.tokens s p)
      (State.Incremental.tokens eng p)
  done;
  for t = 0 to n_transitions - 1 do
    check_bool
      (Printf.sprintf "%s enabled t%d" ctx t)
      (State.is_enabled s t)
      (State.Incremental.is_enabled eng t);
    check_int
      (Printf.sprintf "%s clock t%d" ctx t)
      s.State.clocks.(t)
      (State.Incremental.clock eng t);
    if State.is_enabled s t then begin
      check_int
        (Printf.sprintf "%s dlb t%d" ctx t)
        (State.dlb net s t)
        (State.Incremental.dlb eng t);
      check_bound
        (Printf.sprintf "%s dub t%d" ctx t)
        (State.dub net s t)
        (State.Incremental.dub eng t)
    end
  done;
  check_bound (ctx ^ " min_dub") (State.min_dub net s)
    (State.Incremental.min_dub eng);
  check_ids (ctx ^ " candidates") (State.candidates net s)
    (State.Incremental.candidates eng);
  check_ids (ctx ^ " fireable") (State.fireable net s)
    (State.Incremental.fireable eng);
  List.iter
    (fun t ->
      let lo, hi = State.firing_domain net s t in
      let lo', hi' = State.Incremental.firing_domain eng t in
      check_int (Printf.sprintf "%s fd-lo t%d" ctx t) lo lo';
      check_bound (Printf.sprintf "%s fd-hi t%d" ctx t) hi hi')
    (State.fireable net s);
  let snap = State.Incremental.snapshot eng in
  check_bool (ctx ^ " snapshot equal") true (State.equal s snap);
  check_int (ctx ^ " snapshot hash") (State.hash s) (State.hash snap);
  let ps = Packed_state.of_state s in
  let pe = Packed_state.of_engine eng in
  check_bool (ctx ^ " packed equal") true (Packed_state.equal ps pe);
  check_int (ctx ^ " packed hash = State.hash") (State.hash s)
    (Packed_state.hash pe);
  check_int (ctx ^ " zhash = State.hash") (State.hash s)
    (State.Incremental.zhash eng)

(* Walk both representations in lockstep, firing random fireable
   transitions at random in-domain times, then unwind the engine with
   [undo] and re-check every recorded snapshot. *)
let lockstep_walk rng net =
  let eng = State.Incremental.create net in
  let rec forward s trace steps =
    agree (Printf.sprintf "step %d" steps) net s eng;
    if steps >= 12 then trace
    else
      match State.fireable net s with
      | [] -> trace
      | fireable ->
        let tid = List.nth fireable (Random.State.int rng (List.length fireable)) in
        let lo, hi = State.firing_domain net s tid in
        let q =
          match hi with
          | Time_interval.Finite h when h > lo ->
            lo + Random.State.int rng (min 4 (h - lo) + 1)
          | Time_interval.Finite _ -> lo
          | Time_interval.Infinity -> lo + Random.State.int rng 3
        in
        let s' = State.fire net s tid q in
        State.Incremental.fire eng tid q;
        forward s' (s :: trace) (steps + 1)
  in
  let trace = forward (State.initial net) [] 0 in
  (* undo must restore each predecessor exactly *)
  List.iter
    (fun prev ->
      State.Incremental.undo eng;
      agree "undo" net prev eng)
    trace;
  check_int "fully unwound" 0 (State.Incremental.depth eng)

let test_random_nets () =
  let rng = Random.State.make [| 0x5eed |] in
  for _ = 1 to 150 do
    lockstep_walk rng (random_net rng)
  done

let test_ring_nets () =
  let rng = Random.State.make [| 42 |] in
  for seed = 1 to 50 do
    lockstep_walk rng (ring_net (2 + (seed mod 5)) seed)
  done

let test_undo_to () =
  let net = sequential_net () in
  let eng = State.Incremental.create net in
  let s0 = State.Incremental.snapshot eng in
  State.Incremental.fire eng 0 2;
  let s1 = State.Incremental.snapshot eng in
  State.Incremental.fire eng 1 0;
  check_int "depth 2" 2 (State.Incremental.depth eng);
  State.Incremental.undo_to eng 1;
  check_bool "back to s1" true (State.equal s1 (State.Incremental.snapshot eng));
  State.Incremental.undo_to eng 0;
  check_bool "back to s0" true (State.equal s0 (State.Incremental.snapshot eng));
  let raises_invalid name f =
    match f () with
    | () -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  raises_invalid "undo at depth 0" (fun () -> State.Incremental.undo eng)

let raises_invalid name f =
  match f () with
  | () -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_fire_validation () =
  let net = conflict_net () in
  let eng = State.Incremental.create net in
  (* t0 is [1,3], t1 is [2,7]: min dub is 3, so t0's domain is [1,3] *)
  raises_invalid "q below domain" (fun () -> State.Incremental.fire eng 0 0);
  raises_invalid "q above min dub" (fun () -> State.Incremental.fire eng 0 4);
  State.Incremental.fire eng 0 2;
  raises_invalid "disabled transition" (fun () ->
      State.Incremental.fire eng 1 0)

(* Packed encoding picks a cell width from the extreme cells; wide
   cells must round-trip through the 32- and 64-bit layouts and still
   hash like State.hash would. *)
let test_packed_widths () =
  let widths = [ 100; 40_000; 30_000_000; 5_000_000_000 ] in
  List.iter
    (fun big ->
      let tokens p = if p = 0 then big else p in
      let clock t = if t = 0 then -1 else t * 7 in
      let a = Packed_state.pack ~n_places:3 ~n_transitions:3 ~tokens ~clock in
      let b = Packed_state.pack ~n_places:3 ~n_transitions:3 ~tokens ~clock in
      check_bool "same cells, equal" true (Packed_state.equal a b);
      check_int "same cells, same hash" (Packed_state.hash a)
        (Packed_state.hash b);
      let c =
        Packed_state.pack ~n_places:3 ~n_transitions:3
          ~tokens:(fun p -> if p = 1 then big else tokens p)
          ~clock
      in
      check_bool "different cells, not equal" false (Packed_state.equal a c))
    widths;
  (* the reference hash on a real state matches the packed hash even
     when the clock forces a wider layout *)
  let b = Pnet.Builder.create "wide" in
  let p0 = Pnet.Builder.add_place b ~tokens:1 "p0" in
  let p1 = Pnet.Builder.add_place b "p1" in
  let p2 = Pnet.Builder.add_place b "p2" in
  let slow =
    Pnet.Builder.add_transition b "slow"
      (Time_interval.make 30_000_000 30_000_000)
  in
  let fast = Pnet.Builder.add_transition b "fast" Time_interval.zero in
  Pnet.Builder.arc_pt b p0 slow;
  Pnet.Builder.arc_tp b slow p1;
  Pnet.Builder.arc_pt b p0 fast;
  Pnet.Builder.arc_tp b fast p2;
  let net = Pnet.Builder.build b in
  let s = State.initial net in
  check_int "point-width hash agrees" (State.hash s)
    (Packed_state.hash (Packed_state.of_state s))

let test_packed_smaller () =
  List.iter
    (fun (_, spec) ->
      let model = Translate.translate spec in
      let s = State.initial model.Translate.net in
      let packed = Packed_state.of_state s in
      let cells =
        Array.length s.State.marking + Array.length s.State.clocks
      in
      (* boxed arrays cost >= 8 bytes per cell plus two headers; the
         16-bit packing must stay well under that *)
      check_bool "packed under 8 bytes/cell" true
        (Packed_state.byte_size packed < cells * 8))
    Case_studies.all

(* The acceptance bar for the engine swap: both search engines produce
   action-for-action identical schedules and identical node counts on
   every case study. *)
let test_search_parity () =
  List.iter
    (fun (name, spec) ->
      let model = Translate.translate spec in
      let run incremental =
        Search.find_schedule
          ~options:{ Search.default_options with incremental }
          model
      in
      let copy_outcome, copy_m = run false in
      let incr_outcome, incr_m = run true in
      (match (copy_outcome, incr_outcome) with
      | Ok a, Ok b ->
        check_bool
          (name ^ " identical schedules")
          true
          (a.Schedule.entries = b.Schedule.entries)
      | Error a, Error b ->
        check_string (name ^ " same failure") (Search.failure_to_string a)
          (Search.failure_to_string b)
      | _ -> Alcotest.failf "%s: engines disagree on feasibility" name);
      check_int (name ^ " stored") copy_m.Search.stored incr_m.Search.stored;
      check_int (name ^ " visited") copy_m.Search.visited incr_m.Search.visited;
      check_int (name ^ " eager") copy_m.Search.eager incr_m.Search.eager;
      check_int (name ^ " backtracks") copy_m.Search.backtracks
        incr_m.Search.backtracks;
      check_int (name ^ " max_depth") copy_m.Search.max_depth
        incr_m.Search.max_depth)
    Case_studies.all

(* Zobrist maintenance: along a random walk, [zhash] must equal the
   from-scratch [State.hash] at every prefix, and unwinding with
   [undo_to] must restore each recorded hash word bit for bit —
   XOR-in/XOR-out with no drift.  Walks are driven by [Ezrt_gen.Rng]
   so failures replay from the printed seed. *)
let test_zobrist_roundtrip () =
  List.iter
    (fun seed ->
      let rng = Ezrt_gen.Rng.create seed in
      let net =
        random_net (Random.State.make [| Ezrt_gen.Rng.int rng 0x3fffffff |])
      in
      let eng = State.Incremental.create net in
      let trail = ref [ (0, State.Incremental.zhash eng) ] in
      let steps = ref 0 in
      let continue = ref true in
      while !continue && !steps < 40 do
        match State.Incremental.fireable eng with
        | [] -> continue := false
        | ts ->
          let tid = List.nth ts (Ezrt_gen.Rng.int rng (List.length ts)) in
          let lo, hi = State.Incremental.firing_domain eng tid in
          let q =
            match hi with
            | Time_interval.Finite hi -> Ezrt_gen.Rng.int_in rng lo hi
            | Time_interval.Infinity -> lo + Ezrt_gen.Rng.int rng 4
          in
          State.Incremental.fire eng tid q;
          incr steps;
          let z = State.Incremental.zhash eng in
          check_int
            (Printf.sprintf "seed %d step %d: zhash = State.hash" seed !steps)
            (State.hash (State.Incremental.snapshot eng))
            z;
          trail := (!steps, z) :: !trail
      done;
      (* unwind depth by depth, re-checking every recorded hash *)
      List.iter
        (fun (depth, z) ->
          State.Incremental.undo_to eng depth;
          check_int
            (Printf.sprintf "seed %d undo to %d restores zhash" seed depth)
            z
            (State.Incremental.zhash eng))
        !trail)
    [ 7; 42; 1234; 90210 ]

let test_search_parity_random_specs =
  qcheck ~count:60 "random specs: engines agree" arbitrary_spec (fun spec ->
      let model = Translate.translate spec in
      let run incremental =
        Search.find_schedule
          ~options:
            { Search.default_options with incremental; max_stored = 20_000 }
          model
      in
      let copy_outcome, copy_m = run false in
      let incr_outcome, incr_m = run true in
      (match (copy_outcome, incr_outcome) with
      | Ok a, Ok b -> a.Schedule.entries = b.Schedule.entries
      | Error a, Error b -> a = b
      | _ -> false)
      && copy_m.Search.stored = incr_m.Search.stored
      && copy_m.Search.visited = incr_m.Search.visited)

let suite =
  [
    case "random nets: engine tracks oracle" test_random_nets;
    case "ring nets: engine tracks oracle" test_ring_nets;
    case "undo_to restores snapshots" test_undo_to;
    case "fire validates like the oracle" test_fire_validation;
    case "packed states: widths round-trip" test_packed_widths;
    case "packed states: smaller than boxed arrays" test_packed_smaller;
    case "zobrist fire/undo round-trips bit-for-bit" test_zobrist_roundtrip;
    slow_case "case studies: engine parity" test_search_parity;
    test_search_parity_random_specs;
  ]
