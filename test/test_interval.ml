open Ezrt_tpn
open Test_util

let test_make_valid () =
  let itv = Time_interval.make 3 7 in
  check_int "eft" 3 (Time_interval.eft itv);
  check_bool "lft" true (Time_interval.lft itv = Time_interval.Finite 7)

let test_make_rejects_negative () =
  Alcotest.check_raises "negative eft" (Invalid_argument
    "Time_interval.make: negative EFT") (fun () ->
      ignore (Time_interval.make (-1) 3))

let test_make_rejects_inverted () =
  Alcotest.check_raises "lft < eft" (Invalid_argument
    "Time_interval.make: LFT < EFT") (fun () ->
      ignore (Time_interval.make 5 3))

let test_point () =
  let itv = Time_interval.point 4 in
  check_bool "is point" true (Time_interval.is_point itv);
  check_bool "contains 4" true (Time_interval.contains itv 4);
  check_bool "not 5" false (Time_interval.contains itv 5);
  check_bool "not 3" false (Time_interval.contains itv 3)

let test_zero () =
  check_bool "zero is [0,0]" true
    (Time_interval.equal Time_interval.zero (Time_interval.point 0))

let test_unbounded () =
  let itv = Time_interval.make_unbounded 2 in
  check_bool "not point" false (Time_interval.is_point itv);
  check_bool "contains huge" true (Time_interval.contains itv 1_000_000);
  check_bool "not below eft" false (Time_interval.contains itv 1);
  check_string "render" "[2, inf]" (Time_interval.to_string itv)

let test_to_string () =
  check_string "finite" "[0, 130]"
    (Time_interval.to_string (Time_interval.make 0 130))

let test_bound_ops () =
  let open Time_interval in
  check_bool "min finite" true (bound_min (Finite 3) (Finite 5) = Finite 3);
  check_bool "min inf" true (bound_min Infinity (Finite 5) = Finite 5);
  check_bool "le inf" true (bound_le (Finite 1000) Infinity);
  check_bool "inf not le" false (bound_le Infinity (Finite 1000));
  check_bool "inf le inf" true (bound_le Infinity Infinity);
  check_bool "add" true (bound_add (Finite 3) 4 = Finite 7);
  check_bool "add inf" true (bound_add Infinity 4 = Infinity);
  check_bool "sub" true (bound_sub (Finite 3) 4 = Finite (-1));
  check_bool "sub inf" true (bound_sub Infinity 4 = Infinity)

let test_equal () =
  let open Time_interval in
  check_bool "same" true (equal (make 1 2) (make 1 2));
  check_bool "diff lft" false (equal (make 1 2) (make 1 3));
  check_bool "finite vs inf" false (equal (make 1 2) (make_unbounded 1));
  check_bool "inf vs inf" true (equal (make_unbounded 1) (make_unbounded 1))

let prop_make_contains_bounds =
  qcheck "contains both bounds" QCheck.(pair (int_bound 50) (int_bound 50))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let itv = Time_interval.make lo hi in
      Time_interval.contains itv lo && Time_interval.contains itv hi)

let prop_bound_min_commutative =
  let bound_gen =
    QCheck.map
      (fun n ->
        if n = 0 then Time_interval.Infinity else Time_interval.Finite n)
      QCheck.(int_bound 20)
  in
  qcheck "bound_min commutative" (QCheck.pair bound_gen bound_gen)
    (fun (a, b) -> Time_interval.bound_min a b = Time_interval.bound_min b a)

let prop_bound_min_le =
  let bound_gen =
    QCheck.map
      (fun n ->
        if n = 0 then Time_interval.Infinity else Time_interval.Finite n)
      QCheck.(int_bound 20)
  in
  qcheck "bound_min is a lower bound" (QCheck.pair bound_gen bound_gen)
    (fun (a, b) ->
      let m = Time_interval.bound_min a b in
      Time_interval.bound_le m a && Time_interval.bound_le m b)

(* Algebra properties over the fuzzing generator's primitive interval
   distribution (finite and unbounded intervals alike). *)

let arb_interval_pair =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        let rng = Ezrt_gen.Rng.create seed in
        (Ezrt_gen.Spec_gen.interval rng, Ezrt_gen.Spec_gen.interval rng))
      QCheck.Gen.int
  in
  QCheck.make
    ~print:(fun (a, b) ->
      Time_interval.to_string a ^ " ∩ " ^ Time_interval.to_string b)
    gen

let arb_interval =
  QCheck.map ~rev:(fun i -> (i, i)) fst arb_interval_pair

(* the generator caps finite bounds at eft 20 + width 20; probing a
   little past that also exercises the unbounded tails *)
let sample_points = List.init 60 Fun.id

let prop_intersect_membership =
  qcheck "intersect contains exactly the common instants" arb_interval_pair
    (fun (a, b) ->
      List.for_all
        (fun q ->
          let in_both = Time_interval.contains a q && Time_interval.contains b q in
          match Time_interval.intersect a b with
          | Some i -> Time_interval.contains i q = in_both
          | None -> not in_both)
        sample_points)

let prop_intersect_commutative =
  qcheck "intersect commutative" arb_interval_pair (fun (a, b) ->
      Option.equal Time_interval.equal
        (Time_interval.intersect a b)
        (Time_interval.intersect b a))

let prop_intersect_idempotent =
  qcheck "interval ∩ itself = itself" arb_interval (fun a ->
      match Time_interval.intersect a a with
      | Some i -> Time_interval.equal i a
      | None -> false)

let prop_shift_zero =
  qcheck "shift by 0 is identity" arb_interval (fun a ->
      Time_interval.equal (Time_interval.shift a 0) a)

let prop_shift_composes =
  qcheck "shift p then q = shift (p+q)"
    QCheck.(triple arb_interval (int_bound 30) (int_bound 30))
    (fun (a, p, q) ->
      Time_interval.equal
        (Time_interval.shift (Time_interval.shift a p) q)
        (Time_interval.shift a (p + q)))

let prop_shift_translates_membership =
  qcheck "shift translates membership"
    QCheck.(pair arb_interval (int_bound 30))
    (fun (a, q) ->
      List.for_all
        (fun x ->
          Time_interval.contains (Time_interval.shift a q) (x + q)
          = Time_interval.contains a x)
        sample_points)

let prop_shift_back_roundtrip =
  qcheck "shift up then down round-trips"
    QCheck.(pair arb_interval (int_bound 30))
    (fun (a, q) ->
      Time_interval.equal (Time_interval.shift (Time_interval.shift a q) (-q)) a)

let test_intersect_disjoint () =
  check_bool "disjoint" true
    (Time_interval.intersect (Time_interval.make 0 2) (Time_interval.make 5 9)
     = None);
  check_bool "touching" true
    (match
       Time_interval.intersect (Time_interval.make 0 5) (Time_interval.make 5 9)
     with
    | Some i -> Time_interval.equal i (Time_interval.point 5)
    | None -> false);
  check_bool "unbounded pair" true
    (match
       Time_interval.intersect (Time_interval.make_unbounded 3)
         (Time_interval.make_unbounded 7)
     with
    | Some i -> Time_interval.equal i (Time_interval.make_unbounded 7)
    | None -> false)

let test_shift_negative_eft_rejected () =
  Alcotest.check_raises "below zero"
    (Invalid_argument "Time_interval.shift: negative EFT") (fun () ->
      ignore (Time_interval.shift (Time_interval.make 2 5) (-3)))

let suite =
  [
    case "make valid" test_make_valid;
    case "make rejects negative" test_make_rejects_negative;
    case "make rejects inverted" test_make_rejects_inverted;
    case "point" test_point;
    case "zero" test_zero;
    case "unbounded" test_unbounded;
    case "to_string" test_to_string;
    case "bound ops" test_bound_ops;
    case "equal" test_equal;
    prop_make_contains_bounds;
    prop_bound_min_commutative;
    prop_bound_min_le;
    case "intersect edge cases" test_intersect_disjoint;
    case "shift rejects negative eft" test_shift_negative_eft_rejected;
    prop_intersect_membership;
    prop_intersect_commutative;
    prop_intersect_idempotent;
    prop_shift_zero;
    prop_shift_composes;
    prop_shift_translates_membership;
    prop_shift_back_roundtrip;
  ]
