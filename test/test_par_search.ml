(* Work-stealing parallel search: every schedule it finds must
   certify, its verdicts must match the sequential engines, and with
   one domain it must be action-for-action identical to the
   incremental engine — the determinism contract the differ encodes. *)

module Translate = Ezrt_blocks.Translate
module Search = Ezrt_sched.Search
module Par_search = Ezrt_sched.Par_search
module Schedule = Ezrt_sched.Schedule
module Timeline = Ezrt_sched.Timeline
module Validator = Ezrt_sched.Validator
module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let certify name model schedule =
  let final = Schedule.replay model.Translate.net schedule in
  check_bool (name ^ " replay reaches MF") true (Translate.is_final model final);
  match Validator.check model (Timeline.of_schedule model schedule) with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "%s: %s" name (Validator.violation_to_string (List.hd vs))

let test_case_studies_certify () =
  List.iter
    (fun (name, spec) ->
      let model = Translate.translate spec in
      let r = Par_search.find_schedule ~domains:2 model in
      match r.Par_search.outcome with
      | Ok schedule ->
        certify name model schedule;
        check_bool (name ^ " used at least one domain") true
          (r.Par_search.domains_used >= 1);
        check_bool (name ^ " stored states counted") true
          (r.Par_search.metrics.Search.stored > 0)
      | Error f -> Alcotest.failf "%s: %s" name (Search.failure_to_string f))
    Case_studies.all

(* The one-domain run takes the exact sequential path: same schedule,
   same node counts, and it must be stable across runs. *)
let test_one_domain_matches_sequential () =
  List.iter
    (fun (name, spec) ->
      let model = Translate.translate spec in
      let seq_outcome, seq_m = Search.find_schedule model in
      let par = Par_search.find_schedule ~domains:1 model in
      (match (seq_outcome, par.Par_search.outcome) with
      | Ok a, Ok b ->
        check_bool
          (name ^ " identical schedule")
          true
          (a.Schedule.entries = b.Schedule.entries)
      | Error a, Error b ->
        check_string (name ^ " same failure") (Search.failure_to_string a)
          (Search.failure_to_string b)
      | _ -> Alcotest.failf "%s: engines disagree on feasibility" name);
      check_int (name ^ " stored") seq_m.Search.stored
        par.Par_search.metrics.Search.stored;
      check_int (name ^ " one domain") 1 par.Par_search.domains_used)
    [ ("mine-pump", Case_studies.mine_pump); ("fig8", Case_studies.fig8_preemptive) ]

let unschedulable_pair =
  Spec.make ~name:"tight"
    ~tasks:
      [
        Task.make ~name:"a" ~wcet:5 ~deadline:5 ~period:10 ();
        Task.make ~name:"b" ~wcet:5 ~deadline:6 ~period:10 ();
      ]
    ()

(* Infeasibility is a proof of exhaustion; it must be deterministic
   under any domain count. *)
let test_infeasible_agrees () =
  let model = Translate.translate unschedulable_pair in
  let seq_outcome, _ = Search.find_schedule model in
  check_bool "sequential says infeasible" true
    (seq_outcome = Error Search.Infeasible);
  List.iter
    (fun domains ->
      let r = Par_search.find_schedule ~domains model in
      check_bool
        (Printf.sprintf "parallel x%d says infeasible" domains)
        true
        (r.Par_search.outcome = Error Search.Infeasible))
    [ 1; 2; 3 ]

(* Feasibility verdicts are deterministic even though the specific
   schedule may differ between runs; whatever comes back must
   certify. *)
let test_verdict_deterministic () =
  let model = Translate.translate Case_studies.mine_pump in
  for _ = 1 to 5 do
    let r = Par_search.find_schedule ~domains:2 model in
    match r.Par_search.outcome with
    | Ok schedule -> certify "mine-pump repeat" model schedule
    | Error f ->
      Alcotest.failf "mine-pump went %s" (Search.failure_to_string f)
  done

let test_budget_exhaustion () =
  let model = Translate.translate unschedulable_pair in
  let options = { Search.default_options with max_stored = 5 } in
  let r = Par_search.find_schedule ~options ~domains:2 model in
  (match r.Par_search.outcome with
  | Error Search.Budget_exhausted -> ()
  | Ok _ -> Alcotest.fail "budget 5 cannot find a schedule"
  | Error Search.Infeasible ->
    Alcotest.fail "budget exhaustion must not claim a proof");
  check_bool "stored within an overshoot of one per domain" true
    (r.Par_search.metrics.Search.stored <= 5 + 2)

let test_cancellation () =
  let model = Translate.translate unschedulable_pair in
  let polls = ref 0 in
  let cancel () =
    incr polls;
    !polls > 3
  in
  let r = Par_search.find_schedule ~domains:2 ~cancel model in
  match r.Par_search.outcome with
  | Error Search.Budget_exhausted -> ()
  | Ok _ -> Alcotest.fail "cancelled search returned a schedule"
  | Error Search.Infeasible ->
    Alcotest.fail "cancelled search must not claim a proof"

let test_stats_sanity () =
  let model = Translate.translate Case_studies.mine_pump in
  let r = Par_search.find_schedule ~domains:2 model in
  let m = r.Par_search.metrics in
  check_bool "visited >= stored" true (m.Search.visited >= m.Search.stored);
  check_bool "elapsed non-negative" true (m.Search.elapsed_s >= 0.0);
  check_bool "max_depth positive" true (m.Search.max_depth > 0);
  check_bool "table entries = stored claims" true
    (r.Par_search.table.Ezrt_tpn.Packed_state.Sharded.entries
    >= m.Search.stored);
  check_bool "counters non-negative" true
    (r.Par_search.steals >= 0
    && r.Par_search.shared_hits >= 0
    && r.Par_search.replayed_fires >= 0)

let suite =
  [
    slow_case "case studies certify under 2 domains" test_case_studies_certify;
    case "one domain matches the sequential engine"
      test_one_domain_matches_sequential;
    case "infeasibility agrees at any domain count" test_infeasible_agrees;
    case "feasibility verdict is deterministic" test_verdict_deterministic;
    case "budget exhaustion is reported" test_budget_exhaustion;
    case "cancellation stops every domain" test_cancellation;
    case "stats are sane" test_stats_sanity;
  ]
