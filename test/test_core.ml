open Ezrealtime
open Test_util

let test_synthesize_case_studies () =
  List.iter
    (fun (name, spec) ->
      if name <> "greedy-trap" then begin
        match synthesize spec with
        | Ok artifact ->
          check_bool (name ^ " schedule nonempty") true
            (Schedule.length artifact.schedule > 0);
          check_bool (name ^ " c program") true
            (String.length artifact.c_program > 500);
          check_bool (name ^ " table matches segments") true
            (List.length artifact.table = List.length artifact.segments)
        | Error e -> Alcotest.failf "%s: %s" name (error_to_string e)
      end)
    Case_studies.all

let test_invalid_spec_error () =
  match synthesize (Spec.make ~name:"e" ~tasks:[] ()) with
  | Error (Invalid_spec _) -> ()
  | Error _ -> Alcotest.fail "wrong error"
  | Ok _ -> Alcotest.fail "expected failure"

let test_infeasible_error () =
  let spec =
    Spec.make ~name:"tight"
      ~tasks:
        [
          Task.make ~name:"a" ~wcet:5 ~deadline:5 ~period:10 ();
          Task.make ~name:"b" ~wcet:5 ~deadline:6 ~period:10 ();
        ]
      ()
  in
  match synthesize spec with
  | Error (No_schedule (Search.Infeasible, metrics)) ->
    check_bool "metrics carried" true (metrics.Search.stored > 0)
  | Error e -> Alcotest.failf "wrong error: %s" (error_to_string e)
  | Ok _ -> Alcotest.fail "expected failure"

let test_search_options_pass_through () =
  let search = { Search.default_options with latest_release = true } in
  match synthesize ~search Case_studies.greedy_trap with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "greedy trap: %s" (error_to_string e)

let test_target_pass_through () =
  match synthesize ~target:Target.arm9 Case_studies.quickstart with
  | Ok artifact ->
    check_bool "arm9 code" true
      (String.length artifact.c_program > 0
       &&
       let rec contains i =
         i + 4 <= String.length artifact.c_program
         && (String.sub artifact.c_program i 4 = "arm9" || contains (i + 1))
       in
       contains 0)
  | Error e -> Alcotest.failf "%s" (error_to_string e)

let test_synthesize_exn () =
  let artifact = synthesize_exn Case_studies.quickstart in
  check_bool "ok" true (Schedule.length artifact.schedule > 0);
  Alcotest.check_raises "raises on bad spec"
    (Failure "invalid specification: specification has no tasks") (fun () ->
      ignore (synthesize_exn (Spec.make ~name:"e" ~tasks:[] ())))

let test_report_renders () =
  let artifact = synthesize_exn Case_studies.fig8_preemptive in
  let s = Format.asprintf "%a" report artifact in
  List.iter
    (fun needle ->
      let rec contains i =
        i + String.length needle <= String.length s
        && (String.sub s i (String.length needle) = needle || contains (i + 1))
      in
      check_bool needle true (contains 0))
    [ "specification"; "search"; "schedule table"; "preempts" ]

let test_error_strings () =
  let strings =
    [
      error_to_string (Invalid_spec [ Validate.No_tasks ]);
      error_to_string
        (No_schedule
           ( Search.Infeasible,
             {
               Search.stored = 1; visited = 1; eager = 0; backtracks = 1;
               max_depth = 1; elapsed_s = 0.1; por_reduced = 0;
               por_fallback = 0; por_skipped = 0;
             } ));
      error_to_string (Not_certified []);
    ]
  in
  List.iter (fun s -> check_bool "non-empty" true (String.length s > 0)) strings

let prop_synthesize_total =
  qcheck ~count:40 "synthesize never raises on generated specs"
    arbitrary_spec (fun spec ->
      match synthesize spec with Ok _ | Error _ -> true)

let suite =
  [
    case "case studies synthesize" test_synthesize_case_studies;
    case "invalid spec error" test_invalid_spec_error;
    case "infeasible error" test_infeasible_error;
    case "search options pass through" test_search_options_pass_through;
    case "target pass through" test_target_pass_through;
    case "synthesize_exn" test_synthesize_exn;
    case "report renders" test_report_renders;
    case "error strings" test_error_strings;
    prop_synthesize_total;
  ]
