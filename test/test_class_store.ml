open Ezrt_tpn
open Test_util

(* The sequential_net shape with a parametric t0 interval: every
   variant has the same initial marking, so initial classes differ only
   in their firing domain — exactly what the store discriminates on. *)
let net_with lo hi =
  let b = Pnet.Builder.create "store-test" in
  let p0 = Pnet.Builder.add_place b ~tokens:1 "p0" in
  let p1 = Pnet.Builder.add_place b "p1" in
  let p2 = Pnet.Builder.add_place b "p2" in
  let t0 = Pnet.Builder.add_transition b "t0" (Time_interval.make lo hi) in
  let t1 = Pnet.Builder.add_transition b "t1" Time_interval.zero in
  Pnet.Builder.arc_pt b p0 t0;
  Pnet.Builder.arc_tp b t0 p1;
  Pnet.Builder.arc_pt b p1 t1;
  Pnet.Builder.arc_tp b t1 p2;
  Pnet.Builder.build b

let cls lo hi = State_class.initial (net_with lo hi)

let check_verdict msg expected actual =
  let s = function
    | Class_store.Fresh -> "fresh"
    | Class_store.Duplicate -> "duplicate"
    | Class_store.Subsumed -> "subsumed"
  in
  Alcotest.(check string) msg (s expected) (s actual)

let test_fresh_then_duplicate () =
  let store = Class_store.create () in
  check_verdict "first visit" Class_store.Fresh
    (Class_store.visit store (cls 2 5));
  check_verdict "identical domain" Class_store.Duplicate
    (Class_store.visit store (cls 2 5));
  check_int "one entry" 1 (Class_store.length store)

let test_subsumed_by_wider () =
  let store = Class_store.create () in
  ignore (Class_store.visit store (cls 2 5));
  (* [3,4] is strictly inside [2,5] over the same marking *)
  check_verdict "nested domain" Class_store.Subsumed
    (Class_store.visit store (cls 3 4));
  check_int "not stored" 1 (Class_store.length store)

let test_wider_after_narrower_is_fresh () =
  let store = Class_store.create () in
  ignore (Class_store.visit store (cls 3 4));
  (* [2,5] is NOT contained in [3,4]: it must be explored *)
  check_verdict "wider domain" Class_store.Fresh
    (Class_store.visit store (cls 2 5));
  check_int "both stored" 2 (Class_store.length store);
  check_int "one marking" 1 (Class_store.stats store).Class_store.skeletons

let test_overlapping_not_subsumed () =
  let store = Class_store.create () in
  ignore (Class_store.visit store (cls 2 5));
  (* [1,4] overlaps [2,5] without inclusion either way *)
  check_verdict "overlap" Class_store.Fresh (Class_store.visit store (cls 1 4))

let test_different_marking_is_fresh () =
  let store = Class_store.create () in
  let net = net_with 2 5 in
  let c0 = State_class.initial net in
  ignore (Class_store.visit store c0);
  let c1 = State_class.fire net c0 0 in
  check_verdict "successor marking" Class_store.Fresh
    (Class_store.visit store c1);
  check_int "two markings" 2 (Class_store.stats store).Class_store.skeletons

let test_subsume_disabled () =
  let store = Class_store.create ~subsume:false () in
  check_bool "flag off" false (Class_store.subsume_enabled store);
  ignore (Class_store.visit store (cls 2 5));
  check_verdict "nested but stored" Class_store.Fresh
    (Class_store.visit store (cls 3 4));
  check_verdict "exact dup still caught" Class_store.Duplicate
    (Class_store.visit store (cls 3 4));
  check_int "no subsumed" 0 (Class_store.stats store).Class_store.subsumed

let test_stats () =
  let store = Class_store.create ~stripes:4 () in
  ignore (Class_store.visit store (cls 2 5));
  ignore (Class_store.visit store (cls 2 5));
  ignore (Class_store.visit store (cls 3 4));
  let s = Class_store.stats store in
  check_int "stripes" 4 s.Class_store.stripes;
  check_int "entries" 1 s.Class_store.entries;
  check_int "skeletons" 1 s.Class_store.skeletons;
  check_int "duplicates" 1 s.Class_store.duplicates;
  check_int "subsumed" 1 s.Class_store.subsumed

let test_stripes_rounded_to_power_of_two () =
  let store = Class_store.create ~stripes:5 () in
  check_int "rounded up" 8 (Class_store.stats store).Class_store.stripes

let test_concurrent_single_fresh () =
  (* N domains race to insert the same class: exactly one Fresh *)
  let store = Class_store.create ~stripes:1 () in
  let fresh = Atomic.make 0 in
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 50 do
              match Class_store.visit store (cls 2 5) with
              | Class_store.Fresh -> Atomic.incr fresh
              | Class_store.Duplicate | Class_store.Subsumed -> ()
            done))
  in
  List.iter Domain.join workers;
  check_int "one winner" 1 (Atomic.get fresh);
  check_int "one entry" 1 (Class_store.length store)

let suite =
  [
    case "fresh then duplicate" test_fresh_then_duplicate;
    case "nested domain subsumed" test_subsumed_by_wider;
    case "wider after narrower is fresh" test_wider_after_narrower_is_fresh;
    case "overlap without inclusion is fresh" test_overlapping_not_subsumed;
    case "different marking is fresh" test_different_marking_is_fresh;
    case "subsumption disabled" test_subsume_disabled;
    case "stats" test_stats;
    case "stripes rounded to a power of two"
      test_stripes_rounded_to_power_of_two;
    case "concurrent visits store once" test_concurrent_single_fresh;
  ]
