(* Regression corpus replay: every spec under corpus/ was either
   handpicked for engine coverage or is a shrunken divergence from a
   past fuzzing campaign (`ezrt fuzz --corpus`).  Each must pass the
   full differential cross-check forever — a fixed bug that resurfaces
   fails here with the original counterexample. *)

open Test_util
module Differ = Ezrt_gen.Differ
module Dsl = Ezrt_spec.Dsl

let corpus_files () =
  Sys.readdir "corpus"
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".xml")
  |> List.sort compare
  |> List.map (Filename.concat "corpus")

let load path =
  match Dsl.load_file path with
  | Ok spec -> spec
  | Error e -> Alcotest.fail (path ^ ": " ^ Dsl.error_to_string e)

let test_corpus_present () =
  check_bool "corpus has specs" true (List.length (corpus_files ()) >= 4)

let test_corpus_replays_clean () =
  List.iter
    (fun path ->
      let report = Differ.check (load path) in
      Alcotest.(check (list string))
        (path ^ " has no divergence") []
        (List.map Differ.divergence_to_string report.Differ.divergences))
    (corpus_files ())

let test_corpus_roundtrips () =
  List.iter
    (fun path ->
      let spec = load path in
      check_string
        (path ^ " survives a DSL round-trip")
        (Dsl.to_string spec)
        (Dsl.to_string (Dsl.of_string_exn (Dsl.to_string spec))))
    (corpus_files ())

let suite =
  [
    case "corpus present" test_corpus_present;
    slow_case "corpus replays clean" test_corpus_replays_clean;
    case "corpus round-trips" test_corpus_roundtrips;
  ]
