(* Tests for the observability subsystem (lib/obs): ring-buffer trace
   sink, Chrome trace-event export, Prometheus-style counters, and the
   throttled progress reporter.  The Chrome export is pinned by a
   byte-exact golden file produced with an injected fake clock;
   regenerate it with:

     EZRT_UPDATE_GOLDEN=1 dune test --force *)

open Ezrealtime
open Test_util

let golden name = Filename.concat "golden" name
let update_golden = Sys.getenv_opt "EZRT_UPDATE_GOLDEN" <> None

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* A deterministic clock: starts at 0 and advances 1 ms per call.  The
   sink samples it once at creation for the epoch, then once per
   event, so event N gets ts_us = (N+1) * 1000. *)
let fake_clock () =
  let ticks = ref 0 in
  fun () ->
    let v = float_of_int !ticks /. 1000. in
    incr ticks;
    v

(* [with_sink] installs a fresh sink around [f] and always uninstalls,
   so a failing test cannot leak tracing into the rest of the suite. *)
let with_sink ?capacity ?clock f =
  let sink = Obs_trace.create ?capacity ?clock () in
  Obs_trace.install sink;
  Fun.protect ~finally:Obs_trace.uninstall (fun () -> f sink)

(* --- a minimal JSON well-formedness checker -------------------------- *)
(* Just enough of RFC 8259 to reject anything structurally broken in
   the Chrome export; values are discarded. *)

let json_well_formed s =
  let n = String.length s in
  let pos = ref 0 in
  let fail () = raise Exit in
  let peek () = if !pos >= n then fail () else s.[!pos] in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true
                       | _ -> false)
    do advance () done
  in
  let expect c = if peek () <> c then fail () else advance () in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> string ()
    | 't' -> literal "true"
    | 'f' -> literal "false"
    | 'n' -> literal "null"
    | '-' | '0' .. '9' -> number ()
    | _ -> fail ()
  and literal lit =
    if !pos + String.length lit > n then fail ();
    if String.sub s !pos (String.length lit) <> lit then fail ();
    pos := !pos + String.length lit
  and number () =
    if peek () = '-' then advance ();
    if peek () = '0' then advance ()
    else begin
      (match peek () with '1' .. '9' -> () | _ -> fail ());
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false)
      do advance () done
    end;
    if !pos < n && s.[!pos] = '.' then begin
      advance ();
      (match peek () with '0' .. '9' -> () | _ -> fail ());
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false)
      do advance () done
    end;
    if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
      advance ();
      if peek () = '+' || peek () = '-' then advance ();
      (match peek () with '0' .. '9' -> () | _ -> fail ());
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false)
      do advance () done
    end
  and string () =
    expect '"';
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> advance ()
        | 'u' ->
          advance ();
          for _ = 1 to 4 do
            (match peek () with
            | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> advance ()
            | _ -> fail ())
          done
        | _ -> fail ());
        go ()
      | c when Char.code c < 0x20 -> fail ()
      | _ -> advance (); go ()
    in
    go ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | ',' -> advance (); members ()
        | '}' -> advance ()
        | _ -> fail ()
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then advance ()
    else
      let rec elements () =
        value ();
        skip_ws ();
        match peek () with
        | ',' -> advance (); elements ()
        | ']' -> advance ()
        | _ -> fail ()
      in
      elements ()
  in
  match
    value ();
    skip_ws ();
    !pos = n
  with
  | complete -> complete
  | exception Exit -> false

(* --- trace sink ------------------------------------------------------- *)

let test_ring_wraparound () =
  with_sink ~capacity:8 ~clock:(fake_clock ()) (fun sink ->
      for i = 0 to 19 do
        Obs_trace.instant ~cat:"test"
          ~args:[ ("i", Obs_trace.Int i) ]
          (Printf.sprintf "e%d" i)
      done;
      check_int "written counts every event" 20 (Obs_trace.written sink);
      check_int "dropped counts the overwritten" 12 (Obs_trace.dropped sink);
      check_int "capacity is as configured" 8 (Obs_trace.capacity sink);
      let events = Obs_trace.events sink in
      check_int "ring keeps the newest [capacity]" 8 (List.length events);
      List.iteri
        (fun k (e : Obs_trace.event) ->
          check_string "surviving events are the last ones, in order"
            (Printf.sprintf "e%d" (12 + k))
            e.Obs_trace.name)
        events;
      let ts = List.map (fun e -> e.Obs_trace.ts_us) events in
      check_bool "timestamps are non-decreasing" true
        (List.sort compare ts = ts))

let test_no_sink_is_noop () =
  Obs_trace.uninstall ();
  check_bool "no sink installed" false (Obs_trace.enabled ());
  (* must not raise and must record nowhere *)
  Obs_trace.begin_span ~cat:"test" "ghost";
  Obs_trace.end_span ~cat:"test" "ghost";
  Obs_trace.instant ~cat:"test" "ghost";
  check_int "with_span still runs the thunk" 7
    (Obs_trace.with_span ~cat:"test" (fun () -> 7) "ghost")

let test_with_span_closes_on_exception () =
  with_sink ~clock:(fake_clock ()) (fun sink ->
      (try
         Obs_trace.with_span ~cat:"test"
           (fun () -> failwith "boom")
           "failing"
       with Failure _ -> ());
      match Obs_trace.events sink with
      | [ b; e ] ->
        check_bool "begin phase" true (b.Obs_trace.phase = Obs_trace.Begin);
        check_bool "end phase" true (e.Obs_trace.phase = Obs_trace.End);
        check_string "same name" b.Obs_trace.name e.Obs_trace.name
      | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs))

let test_chrome_golden () =
  let sink = Obs_trace.create ~capacity:16 ~clock:(fake_clock ()) () in
  Obs_trace.install sink;
  Fun.protect ~finally:Obs_trace.uninstall (fun () ->
      Obs_trace.with_span ~cat:"search"
        ~args:
          [
            ("engine", Obs_trace.Str "discrete");
            ("budget", Obs_trace.Int 500_000);
          ]
        (fun () ->
          Obs_trace.instant ~cat:"search" "backtrack"
            ~args:[ ("depth", Obs_trace.Float 1.5) ];
          Obs_trace.instant ~cat:"search" "quo\"ted\nname")
        "search");
  let actual = Obs_trace.to_chrome_json sink in
  check_bool "chrome export is well-formed JSON" true (json_well_formed actual);
  let path = golden "obs-trace.json" in
  if update_golden then write_file path actual
  else check_string "chrome export matches the golden file" (read_file path)
      actual

let test_trace_of_fuzz_campaign () =
  (* A real seeded campaign: every begin must LIFO-match an end on its
     own domain, nothing may be dropped, and the acceptance spans
     (search, portfolio members, fuzz specs) must all appear. *)
  Obs_metrics.reset_all ();
  with_sink ~capacity:65536 (fun sink ->
      let stats = Fuzz.run ~profile:Spec_gen.smoke ~seed:42 ~count:4 () in
      check_int "campaign ran every spec" 4 stats.Fuzz.generated;
      check_int "nothing dropped" 0 (Obs_trace.dropped sink);
      let events = Obs_trace.events sink in
      let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 4 in
      let stack tid =
        match Hashtbl.find_opt stacks tid with
        | Some s -> s
        | None ->
          let s = ref [] in
          Hashtbl.add stacks tid s;
          s
      in
      List.iter
        (fun (e : Obs_trace.event) ->
          let s = stack e.Obs_trace.tid in
          match e.Obs_trace.phase with
          | Obs_trace.Begin -> s := e.Obs_trace.name :: !s
          | Obs_trace.End -> (
            match !s with
            | top :: rest when String.equal top e.Obs_trace.name -> s := rest
            | top :: _ ->
              Alcotest.failf "tid %d: end %S closes open span %S"
                e.Obs_trace.tid e.Obs_trace.name top
            | [] ->
              Alcotest.failf "tid %d: end %S with no open span" e.Obs_trace.tid
                e.Obs_trace.name)
          | Obs_trace.Instant -> ())
        events;
      Hashtbl.iter
        (fun tid s ->
          if !s <> [] then
            Alcotest.failf "tid %d: %d span(s) left open" tid (List.length !s))
        stacks;
      let names =
        List.sort_uniq compare
          (List.map (fun (e : Obs_trace.event) -> e.Obs_trace.name) events)
      in
      List.iter
        (fun required ->
          check_bool (Printf.sprintf "campaign trace has %S spans" required)
            true (List.mem required names))
        [ "search"; "portfolio-member"; "fuzz-spec"; "fuzz-campaign" ];
      check_bool "campaign export is well-formed JSON" true
        (json_well_formed (Obs_trace.to_chrome_json sink)));
  (* the flushed counters must agree with the campaign stats *)
  check_int "fuzz spec counter matches the campaign" 4
    (Obs_metrics.value (Obs_metrics.counter "ezrt_fuzz_specs_total"))

(* --- metrics ---------------------------------------------------------- *)

let test_counter_monotonic =
  qcheck "counter value is the sum of its additions"
    QCheck.(list (int_range 0 1000))
    (fun amounts ->
      let c =
        Obs_metrics.counter
          ~labels:[ ("case", string_of_int (Hashtbl.hash amounts)) ]
          "ezrt_test_monotonic_total"
      in
      let before = Obs_metrics.value c in
      List.iter (Obs_metrics.add c) amounts;
      Obs_metrics.value c = before + List.fold_left ( + ) 0 amounts)

let test_counter_rejects_negative () =
  let c = Obs_metrics.counter "ezrt_test_negative_total" in
  Alcotest.check_raises "negative add is rejected"
    (Invalid_argument
       "Metrics.add: negative increment -3 on ezrt_test_negative_total")
    (fun () -> Obs_metrics.add c (-3))

let test_counter_identity () =
  let a = Obs_metrics.counter ~labels:[ ("k", "1") ] "ezrt_test_identity_total"
  and b = Obs_metrics.counter ~labels:[ ("k", "1") ] "ezrt_test_identity_total"
  and c =
    Obs_metrics.counter ~labels:[ ("k", "2") ] "ezrt_test_identity_total"
  in
  let before_a = Obs_metrics.value a and before_c = Obs_metrics.value c in
  Obs_metrics.incr a;
  check_int "same (name, labels) is the same cell" (before_a + 1)
    (Obs_metrics.value b);
  check_int "different labels are different cells" before_c
    (Obs_metrics.value c)

let test_timer_accounting () =
  let t = Obs_metrics.timer ~labels:[ ("k", "t") ] "ezrt_test_timer" in
  let runs = Obs_metrics.timer_runs t in
  Obs_metrics.observe t 0.25;
  Obs_metrics.observe t 0.5;
  check_int "two runs recorded" (runs + 2) (Obs_metrics.timer_runs t);
  check_bool "accumulated seconds include both runs" true
    (Obs_metrics.timer_seconds t >= 0.75);
  check_int "time runs the thunk" 3 (Obs_metrics.time t (fun () -> 3));
  check_int "and counts its run" (runs + 3) (Obs_metrics.timer_runs t)

let test_dump_format () =
  Obs_metrics.reset_all ();
  let a = Obs_metrics.counter ~help:"Example" "ezrt_test_dump_a_total" in
  let b =
    Obs_metrics.counter ~labels:[ ("engine", "x\"y") ] "ezrt_test_dump_b_total"
  in
  Obs_metrics.add a 3;
  Obs_metrics.incr b;
  let dump = Obs_metrics.dump () in
  List.iter
    (fun needle ->
      if
        not
          (let n = String.length needle and h = String.length dump in
           let rec go i =
             i + n <= h && (String.sub dump i n = needle || go (i + 1))
           in
           go 0)
      then Alcotest.failf "dump lacks %S:\n%s" needle dump)
    [
      "# HELP ezrt_test_dump_a_total Example";
      "# TYPE ezrt_test_dump_a_total counter";
      "ezrt_test_dump_a_total 3";
      "ezrt_test_dump_b_total{engine=\"x\\\"y\"} 1";
    ];
  (* deterministic: same values, same dump *)
  check_string "dump is stable" dump (Obs_metrics.dump ())

(* --- progress --------------------------------------------------------- *)

(* clock advancing 0.3 s per call *)
let fake_clock_scaled () =
  let ticks = ref 0 in
  fun () ->
    let v = float_of_int !ticks *. 0.3 in
    incr ticks;
    v

let test_progress_throttle () =
  let lines = ref [] in
  let rendered = ref 0 in
  let snapshot () =
    incr rendered;
    Printf.sprintf "snapshot %d" !rendered
  in
  (* clock advances 0.3 s per call; interval 1.0 s; every=1 so each
     tick consults the clock *)
  let reporter =
    Obs_progress.create ~interval_s:1.0 ~every:1 ~clock:(fake_clock_scaled ())
      ~out:(fun l -> lines := l :: !lines)
      ()
  in
  Obs_progress.install reporter;
  Fun.protect ~finally:Obs_progress.uninstall (fun () ->
      for _ = 1 to 10 do
        Obs_progress.tick snapshot
      done);
  let emitted = List.length !lines in
  check_bool "throttled below one line per tick" true (emitted < 10);
  check_bool "but some lines got through" true (emitted >= 2);
  check_int "snapshot rendered only when emitting" emitted !rendered;
  Obs_progress.tick snapshot;
  check_int "uninstalled reporter ignores ticks" emitted !rendered

let test_progress_mask () =
  (* every=4: only every 4th tick may reach the clock, so 7 ticks with
     an always-due clock emit exactly once *)
  let emitted = ref 0 in
  let reporter =
    Obs_progress.create ~interval_s:0.0 ~every:4
      ~clock:(fake_clock_scaled ())
      ~out:(fun _ -> incr emitted)
      ()
  in
  Obs_progress.install reporter;
  Fun.protect ~finally:Obs_progress.uninstall (fun () ->
      for _ = 1 to 7 do
        Obs_progress.tick (fun () -> "line")
      done);
  check_int "mask limits clock consultations" 1 !emitted

let test_progress_force () =
  let lines = ref [] in
  let reporter =
    Obs_progress.create
      ~out:(fun l -> lines := l :: !lines)
      ()
  in
  Obs_progress.install reporter;
  Fun.protect ~finally:Obs_progress.uninstall (fun () ->
      Obs_progress.force (fun () -> "final");
      Obs_progress.force (fun () -> "really final"));
  check_int "force always emits" 2 (List.length !lines)

let suite =
  [
    case "ring wraparound" test_ring_wraparound;
    case "no sink is a no-op" test_no_sink_is_noop;
    case "with_span closes on exception" test_with_span_closes_on_exception;
    case "chrome trace golden" test_chrome_golden;
    slow_case "fuzz campaign trace is balanced" test_trace_of_fuzz_campaign;
    test_counter_monotonic;
    case "counter rejects negative" test_counter_rejects_negative;
    case "counter identity by (name, labels)" test_counter_identity;
    case "timer accounting" test_timer_accounting;
    case "prometheus dump format" test_dump_format;
    case "progress throttling by interval" test_progress_throttle;
    case "progress throttling by mask" test_progress_mask;
    case "progress force" test_progress_force;
  ]
