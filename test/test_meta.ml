(* Meta-test: every test_*.ml module that defines a suite must be
   registered in main.ml, so a new test file cannot silently never
   run.  The test enumerates its own build directory (dune copies all
   module sources next to the executable). *)

open Test_util

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_modules () =
  Sys.readdir "."
  |> Array.to_list
  |> List.filter (fun f ->
         String.starts_with ~prefix:"test_" f && Filename.check_suffix f ".ml")
  |> List.sort compare

let test_every_suite_registered () =
  let files = test_modules () in
  check_bool "found the test modules" true (List.length files > 20);
  let main = read_file "main.ml" in
  let unregistered =
    List.filter
      (fun f ->
        contains ~needle:"let suite" (read_file f)
        && not
             (contains
                ~needle:
                  (String.capitalize_ascii (Filename.remove_extension f)
                  ^ ".suite")
                main))
      files
  in
  Alcotest.(check (list string))
    "every test_*.ml with a suite is registered in main.ml" [] unregistered

let test_known_suite_detected () =
  (* sanity-check the detector itself on this very file *)
  check_bool "this file defines a suite" true
    (contains ~needle:"let suite" (read_file "test_meta.ml"));
  check_bool "test_util has no suite" false
    (contains ~needle:"let suite" (read_file "test_util.ml"))

let suite =
  [
    case "every suite is registered" test_every_suite_registered;
    case "detector sanity" test_known_suite_detected;
  ]
