(* Parallel portfolio search: the winner must certify, sequential mode
   must be deterministic, and infeasibility needs every config's vote. *)

module Translate = Ezrt_blocks.Translate
module Search = Ezrt_sched.Search
module Schedule = Ezrt_sched.Schedule
module Timeline = Ezrt_sched.Timeline
module Validator = Ezrt_sched.Validator
module Priority = Ezrt_sched.Priority
module Portfolio = Ezrt_sched.Portfolio
module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec
module Case_studies = Ezrt_spec.Case_studies
open Test_util

let certify name model schedule =
  let final = Schedule.replay model.Translate.net schedule in
  check_bool (name ^ " replay reaches MF") true (Translate.is_final model final);
  match Validator.check model (Timeline.of_schedule model schedule) with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "%s: %s" name (Validator.violation_to_string (List.hd vs))

let test_mine_pump_wins () =
  let model = Translate.translate Case_studies.mine_pump in
  let result = Portfolio.find_schedule model in
  match result.Portfolio.outcome with
  | Ok schedule ->
    certify "portfolio mine-pump" model schedule;
    check_bool "has a winner" true (result.Portfolio.winner <> None);
    check_bool "used at least one domain" true
      (result.Portfolio.domains_used >= 1)
  | Error f -> Alcotest.failf "mine-pump: %s" (Search.failure_to_string f)

let test_all_case_studies () =
  List.iter
    (fun (name, spec) ->
      if name <> "greedy-trap" then begin
        let model = Translate.translate spec in
        match (Portfolio.find_schedule model).Portfolio.outcome with
        | Ok schedule -> certify name model schedule
        | Error f -> Alcotest.failf "%s: %s" name (Search.failure_to_string f)
      end)
    Case_studies.all

(* greedy-trap needs idle time at t=0; the portfolio must still find
   and certify a schedule whichever config gets there first *)
let test_greedy_trap () =
  let model = Translate.translate Case_studies.greedy_trap in
  let result = Portfolio.find_schedule model in
  match result.Portfolio.outcome with
  | Ok schedule ->
    certify "greedy-trap" model schedule;
    check_bool "feasible outcome names a winner" true
      (result.Portfolio.winner <> None)
  | Error f -> Alcotest.failf "greedy-trap: %s" (Search.failure_to_string f)

let test_sequential_deterministic () =
  let model = Translate.translate Case_studies.mine_pump in
  let run () = Portfolio.find_schedule ~domains:1 model in
  let a = run () and b = run () in
  match (a.Portfolio.outcome, b.Portfolio.outcome) with
  | Ok s1, Ok s2 ->
    check_bool "same schedule on both runs" true
      (s1.Schedule.entries = s2.Schedule.entries);
    check_bool "same winner" true (a.Portfolio.winner = b.Portfolio.winner);
    (* sequentially, the race stops at the first feasible config *)
    check_bool "winner is the first attempt" true
      (match a.Portfolio.attempts with
      | first :: _ -> Result.is_ok first.Portfolio.outcome
      | [] -> false)
  | _ -> Alcotest.fail "sequential portfolio should be feasible"

let unschedulable_pair =
  Spec.make ~name:"tight"
    ~tasks:
      [
        Task.make ~name:"a" ~wcet:5 ~deadline:5 ~period:10 ();
        Task.make ~name:"b" ~wcet:5 ~deadline:6 ~period:10 ();
      ]
    ()

let test_infeasible_unanimous () =
  let model = Translate.translate unschedulable_pair in
  (* analysis off: this test is about the race's unanimity requirement,
     and the pre-pass would demand-reject this spec before any config
     starts (covered by the prepass tests below) *)
  let result = Portfolio.find_schedule ~analysis:false model in
  (match result.Portfolio.outcome with
  | Error Search.Infeasible -> ()
  | Error Search.Budget_exhausted -> Alcotest.fail "expected a full verdict"
  | Ok _ -> Alcotest.fail "unschedulable pair got a schedule");
  check_bool "no winner" true (result.Portfolio.winner = None);
  check_bool "prepass off" true (result.Portfolio.prepass = Portfolio.Prepass_off);
  (* infeasibility is a proof: every config must have voted *)
  check_int "all configs finished"
    (List.length (Portfolio.default_configs model))
    (List.length result.Portfolio.attempts)

(* the same spec with the pre-pass on: the demand-bound witness decides
   the race before any configuration starts *)
let test_prepass_rejects () =
  let model = Translate.translate unschedulable_pair in
  let result = Portfolio.find_schedule model in
  (match result.Portfolio.outcome with
  | Error Search.Infeasible -> ()
  | Error Search.Budget_exhausted | Ok _ ->
    Alcotest.fail "prepass should prove infeasibility");
  (match result.Portfolio.prepass with
  | Portfolio.Prepass_rejected w ->
    check_bool "witness re-evaluates to true" true
      (Ezrt_analysis.Schedulability.witness_holds unschedulable_pair w)
  | p -> Alcotest.failf "expected a rejection, got %s"
           (Portfolio.prepass_to_string p));
  check_int "no config started" 0 result.Portfolio.configs_started;
  check_bool "no attempts" true (result.Portfolio.attempts = [])

(* an independent preemptive set inside the analytic fragment: the EDF
   quick-accept decides with a certified schedule and no search *)
let test_prepass_accepts () =
  let spec = List.assoc "fig8" Case_studies.all in
  let model = Translate.translate spec in
  let result = Portfolio.find_schedule model in
  check_bool "accepted" true
    (result.Portfolio.prepass = Portfolio.Prepass_accepted);
  check_bool "no winner config" true (result.Portfolio.winner = None);
  check_int "no config started" 0 result.Portfolio.configs_started;
  match result.Portfolio.outcome with
  | Ok schedule -> certify "prepass fig8" model schedule
  | Error f -> Alcotest.failf "fig8 prepass: %s" (Search.failure_to_string f)

(* --no-analysis: the same spec must race and still find a schedule *)
let test_no_analysis_races () =
  let spec = List.assoc "fig8" Case_studies.all in
  let model = Translate.translate spec in
  let result = Portfolio.find_schedule ~analysis:false ~domains:1 model in
  check_bool "prepass off" true
    (result.Portfolio.prepass = Portfolio.Prepass_off);
  match result.Portfolio.outcome with
  | Ok schedule ->
    certify "no-analysis fig8" model schedule;
    check_bool "race names a winner" true (result.Portfolio.winner <> None)
  | Error f -> Alcotest.failf "fig8 race: %s" (Search.failure_to_string f)

let test_custom_configs () =
  let model = Translate.translate Case_studies.quickstart in
  let configs =
    [
      {
        Portfolio.engine = Portfolio.Discrete;
        policy = Priority.Edf;
        latest_release = false;
      };
    ]
  in
  let result = Portfolio.find_schedule ~configs model in
  match result.Portfolio.outcome with
  | Ok schedule ->
    (* a single-config portfolio must agree with the plain search *)
    let direct, _ = Search.find_schedule model in
    (match direct with
    | Ok s ->
      check_bool "matches direct search" true
        (s.Schedule.entries = schedule.Schedule.entries)
    | Error _ -> Alcotest.fail "direct search disagrees")
  | Error f -> Alcotest.failf "quickstart: %s" (Search.failure_to_string f)

let suite =
  [
    case "mine-pump: portfolio wins and certifies" test_mine_pump_wins;
    slow_case "all case studies certify" test_all_case_studies;
    case "greedy-trap certifies" test_greedy_trap;
    case "sequential mode is deterministic" test_sequential_deterministic;
    case "infeasible needs a unanimous verdict" test_infeasible_unanimous;
    case "prepass quick-reject decides without a race" test_prepass_rejects;
    case "prepass quick-accept certifies without a race" test_prepass_accepts;
    case "no-analysis escape hatch races" test_no_analysis_races;
    case "custom single-config portfolio" test_custom_configs;
  ]
