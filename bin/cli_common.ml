(* Shared plumbing for every ezrt subcommand: specification loading,
   the common cmdliner argument vocabulary, and the observability
   flags.  Subcommands compose these instead of redeclaring them. *)

open Ezrealtime
open Cmdliner

let load_spec file case =
  match (file, case) with
  | Some path, None -> (
    match Dsl.load_file path with
    | Ok spec -> Ok spec
    | Error e -> Error (Dsl.error_to_string e))
  | None, Some name -> (
    match List.assoc_opt name Case_studies.all with
    | Some spec -> Ok spec
    | None ->
      Error
        (Printf.sprintf "unknown case study %S (available: %s)" name
           (String.concat ", " (List.map fst Case_studies.all))))
  | Some _, Some _ -> Error "pass either FILE or --case, not both"
  | None, None -> Error "pass a specification FILE or --case NAME"

let file_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"ezRealtime DSL specification (XML, see Fig 7 of the paper).")

let case_arg =
  Arg.(value & opt (some string) None & info [ "case" ] ~docv:"NAME"
         ~doc:"Use a built-in case study (mine-pump, fig3, fig4, fig8, \
               quickstart).")

let policy_arg =
  let policy_conv = Arg.enum Priority.all in
  Arg.(value & opt policy_conv Priority.Edf & info [ "policy" ] ~docv:"POLICY"
         ~doc:"Branch ordering policy: edf, rm, dm or fifo.")

let no_po_arg =
  Arg.(value & flag & info [ "no-partial-order" ]
         ~doc:"Disable the partial-order state-space pruning.")

let latest_arg =
  Arg.(value & flag & info [ "latest-release" ]
         ~doc:"Also branch on the latest release times (inserted idle \
               time).")

let no_por_arg =
  Arg.(value & flag & info [ "no-por" ]
         ~doc:"Disable the stubborn-set partial-order reduction (expand \
               the full fireable set at every urgent state).  The \
               feasibility verdict is unchanged either way; this is the \
               escape hatch and the differential-testing baseline.")

let max_states_arg =
  Arg.(value & opt int 500_000 & info [ "max-states" ] ~docv:"N"
         ~doc:"Stored-state budget for the search.")

let search_options policy no_po latest max_stored no_por =
  { Search.policy; partial_order = not no_po; latest_release = latest;
    max_stored; incremental = true; por = not no_por }

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("ezrt: " ^ msg);
    exit 1

let with_spec file case f = f (or_die (load_spec file case))

(* --- engine selection ------------------------------------------------- *)

let engine_arg =
  let engine_conv =
    Arg.enum
      [ ("discrete", `Discrete); ("classes", `Classes);
        ("portfolio", `Portfolio); ("parallel", `Parallel) ]
  in
  Arg.(value & opt engine_conv `Discrete & info [ "engine" ] ~docv:"ENGINE"
         ~doc:"Search engine: discrete (integer-clock TLTS), classes \
               (dense-time state classes), portfolio (race every \
               policy and engine on parallel domains, first feasible \
               schedule wins), or parallel (work-stealing DFS over one \
               search problem with a shared visited table).")

let domains_arg =
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
         ~doc:"Worker domains for the parallel, classes and portfolio \
               engines (default: from the host's recommended domain \
               count; classes defaults to 1).")

let no_subsume_arg =
  Arg.(value & flag & info [ "no-subsume" ]
         ~doc:"Disable inclusion-based subsumption in the class engines \
               (exact visited-set pruning only).")

let no_analysis_arg =
  Arg.(value & flag & info [ "no-analysis" ]
         ~doc:"Skip the analytic schedulability pre-pass in the portfolio \
               engine and always race the search configurations.")

(* --- wall-clock deadlines --------------------------------------------- *)

let timeout_arg =
  Arg.(value & opt (some int) None & info [ "timeout" ] ~docv:"MS"
         ~doc:"Wall-clock deadline in milliseconds, mapped onto the \
               search engines' cancellation hooks.  An expired deadline \
               reports the distinct $(b,timed-out) verdict and exits \
               with code 124.")

(* The deadline is absolute from the moment the command starts; the
   [cancel] closure is what the engines poll at every search node. *)
let deadline_of_timeout = function
  | None -> None
  | Some ms -> Some (Unix.gettimeofday () +. (float_of_int ms /. 1000.))

let cancel_of_deadline = function
  | None -> Search.no_cancel
  | Some d -> fun () -> Unix.gettimeofday () > d

let deadline_expired = function
  | None -> false
  | Some d -> Unix.gettimeofday () > d

let timeout_exit_code = 124

let die_timed_out () =
  prerr_endline "ezrt: timed-out (wall-clock deadline expired)";
  exit timeout_exit_code

(* --- service flags ---------------------------------------------------- *)

let cache_dir_arg =
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Enable the on-disk content-addressed result cache under \
               DIR (created if missing).  Every hit is re-validated \
               before being trusted; see docs/SERVICE.md.")

let workers_arg =
  Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N"
         ~doc:"Worker domains for the job pool (default: the host's \
               recommended domain count minus one).")

(* --- observability flags (accepted by every command) ----------------- *)

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Record begin/end spans and events of every synthesis phase \
               and write them as Chrome trace-event JSON to FILE on exit \
               (open at chrome://tracing or https://ui.perfetto.dev).")

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write the counter registry as a Prometheus-style text dump \
               to FILE on exit.")

let progress_arg =
  Arg.(value & flag & info [ "progress" ]
         ~doc:"Print a throttled one-line progress report to stderr while \
               searches and fuzz campaigns run.")

(* Sinks are installed while cmdliner evaluates the term — before the
   command body runs — and flushed via [at_exit] so early [exit 1]
   paths still write their files. *)
let obs_setup trace metrics progress =
  (match trace with
  | Some path ->
    let sink = Obs_trace.create () in
    Obs_trace.install sink;
    at_exit (fun () ->
        Obs_trace.save_file path sink;
        Printf.eprintf "trace written to %s (%d events, %d dropped)\n%!" path
          (min (Obs_trace.written sink) (Obs_trace.capacity sink))
          (Obs_trace.dropped sink))
  | None -> ());
  (match metrics with
  | Some path ->
    at_exit (fun () ->
        Obs_metrics.save_file path;
        Printf.eprintf "metrics written to %s\n%!" path)
  | None -> ());
  if progress then Obs_progress.install (Obs_progress.create ())

let obs_term = Term.(const obs_setup $ trace_arg $ metrics_arg $ progress_arg)
