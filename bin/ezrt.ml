(* ezrt: the ezRealtime command-line tool.

   Mirrors the paper's workflow: check a specification, model it as a
   time Petri net (PNML/DOT), synthesize a feasible pre-runtime
   schedule, generate scheduled C code, simulate the generated table on
   the virtual target, and compare against runtime-scheduling
   baselines. *)

open Ezrealtime
open Cmdliner
open Cli_common

(* --- check ---------------------------------------------------------- *)

let check_cmd =
  let run () file case =
    with_spec file case (fun spec ->
        let outcome = Validate.check spec in
        List.iter
          (fun w ->
            Printf.printf "warning: %s\n" (Validate.warning_to_string w))
          outcome.Validate.warnings;
        match outcome.Validate.errors with
        | [] ->
          Format.printf "%a@." Spec.pp spec;
          print_endline "specification is well-formed"
        | errors ->
          List.iter
            (fun e -> Printf.printf "error: %s\n" (Validate.error_to_string e))
            errors;
          exit 1)
  in
  Cmd.v (Cmd.info "check" ~doc:"Validate a specification.")
    Term.(const run $ obs_term $ file_arg $ case_arg)

(* --- info ----------------------------------------------------------- *)

let info_cmd =
  let digest_arg =
    Arg.(value & flag & info [ "digest" ]
           ~doc:"Print only the specification's content address — the \
                 canonical, order-insensitive digest that keys the \
                 result cache (see docs/SERVICE.md).")
  in
  let run () file case digest =
    with_spec file case (fun spec ->
        if digest then print_endline (Spec_digest.digest spec)
        else begin
          Format.printf "%a@." Spec.pp spec;
          List.iter
            (fun (id, n) ->
              match Spec.find_task spec id with
              | Some t -> Format.printf "  %a  instances=%d@." Task.pp t n
              | None -> ())
            (Spec.instance_counts spec);
          Format.printf "@.workload statistics:@.%a@." Stats.pp
            (Stats.compute spec);
          let model = Translate.translate spec in
          Format.printf "%a@." Translate.pp_inventory model
        end)
  in
  Cmd.v (Cmd.info "info" ~doc:"Print the specification and model summary.")
    Term.(const run $ obs_term $ file_arg $ case_arg $ digest_arg)

(* --- model ---------------------------------------------------------- *)

let model_cmd =
  let pnml_out =
    Arg.(value & opt (some string) None & info [ "o"; "pnml" ] ~docv:"FILE"
           ~doc:"Write the PNML document here.")
  in
  let dot_out =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
           ~doc:"Write a Graphviz rendering here.")
  in
  let tina_out =
    Arg.(value & opt (some string) None & info [ "tina" ] ~docv:"FILE"
           ~doc:"Write a TINA .net rendering here.")
  in
  let run () file case pnml dot tina =
    with_spec file case (fun spec ->
        let model = Translate.translate spec in
        Format.printf "%a@." Pnet.pp_summary model.Translate.net;
        (match pnml with
        | Some path ->
          Pnml.save_file path model.Translate.net;
          Printf.printf "PNML written to %s\n" path
        | None ->
          print_string (Pnml.to_string model.Translate.net));
        (match dot with
        | Some path ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (Dot.to_dot model.Translate.net));
          Printf.printf "DOT written to %s\n" path
        | None -> ());
        match tina with
        | Some path ->
          Tina.save_file path model.Translate.net;
          Printf.printf "TINA .net written to %s\n" path
        | None -> ())
  in
  Cmd.v
    (Cmd.info "model"
       ~doc:"Translate the specification to a time Petri net (PNML).")
    Term.(const run $ obs_term $ file_arg $ case_arg $ pnml_out $ dot_out
          $ tina_out)

(* --- lint ----------------------------------------------------------- *)

let lint_cmd =
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: $(b,text), $(b,json) or $(b,sarif) (SARIF \
                2.1.0).")
  in
  let deny_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("error", Lint.Error);
               ("warning", Lint.Warning);
               ("info", Lint.Info);
             ])
          Lint.Error
      & info [ "deny" ] ~docv:"SEV"
          ~doc:"Exit 1 when any diagnostic at or above this severity is \
                present (default: $(b,error)).")
  in
  let max_rows_arg =
    Arg.(
      value & opt int 20_000
      & info [ "max-rows" ] ~docv:"N"
          ~doc:"Farkas row bound for the P-invariant computation; exceeding \
                it degrades boundedness coverage to unknown instead of \
                failing.")
  in
  let run () file case fmt deny max_rows =
    match load_spec file case with
    | Error msg ->
      prerr_endline ("ezrt: " ^ msg);
      exit 2
    | Ok spec -> (
      match Lint.check_spec ~max_rows spec with
      | Error msg ->
        prerr_endline ("ezrt: " ^ msg);
        exit 2
      | Ok report ->
        (match fmt with
        | `Text -> print_string (Lint.to_text report)
        | `Json -> print_endline (Lint.to_json report)
        | `Sarif -> print_endline (Lint.to_sarif ?uri:file report));
        if Lint.deny_hit ~deny report then exit 1)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically lint the compiled net: invariant-certified \
             boundedness, dead structure, siphon/trap hints and \
             gate-explain diagnostics — no state-space search.  Exits 0 \
             when clean, 1 on findings at or above --deny, 2 when the \
             specification cannot be loaded.")
    Term.(
      const run $ obs_term $ file_arg $ case_arg $ format_arg $ deny_arg
      $ max_rows_arg)

(* --- schedule ------------------------------------------------------- *)

let gantt_arg =
  Arg.(value & flag & info [ "gantt" ] ~doc:"Print an ASCII Gantt chart.")

let vcd_arg =
  Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE"
         ~doc:"Write the timeline as a VCD waveform here.")

let schedule_cmd =
  let run () file case policy no_po latest max_states engine domains no_subsume
      no_analysis no_por timeout gantt vcd =
    with_spec file case (fun spec ->
        (* Structural lint pre-pass: polynomial, no search.  Surfaces
           errors and warnings before any engine runs but never blocks
           synthesis — the POR/subsumption gates fall back on their
           own, and a lint error usually means the search is about to
           prove infeasibility the hard way. *)
        (let lr = Lint.check_model (Translate.translate spec) in
         let e = Lint.count Lint.Error lr
         and w = Lint.count Lint.Warning lr in
         if e + w = 0 then print_endline "lint pre-pass: clean"
         else begin
           Printf.printf
             "lint pre-pass: %d error(s), %d warning(s) — run 'ezrt lint' \
              for details\n"
             e w;
           List.iter
             (fun d ->
               if d.Lint.severity <> Lint.Info then
                 Printf.printf "  %s %s: %s\n" d.Lint.code d.Lint.subject
                   d.Lint.message)
             lr.Lint.diagnostics
         end);
        let deadline = deadline_of_timeout timeout in
        let cancel = cancel_of_deadline deadline in
        (* a budget failure with the wall clock past the deadline is the
           deadline firing through the cancel hook, not a real budget
           exhaustion — report it as the distinct timed-out verdict *)
        let die_search_failure f =
          (match f with
          | Search.Budget_exhausted when deadline_expired deadline ->
            die_timed_out ()
          | _ -> ());
          prerr_endline ("ezrt: " ^ Search.failure_to_string f);
          exit 1
        in
        let finish artifact =
          Format.printf "%a" report artifact;
          if gantt then
            Format.printf "@.%s"
              (Chart.render artifact.model artifact.segments);
          match vcd with
          | Some path ->
            Vcd.save_file path artifact.model artifact.segments;
            Printf.printf "VCD written to %s\n" path
          | None -> ()
        in
        match engine with
        | `Discrete -> (
          let search = search_options policy no_po latest max_states no_por in
          match synthesize ~search ~cancel spec with
          | Ok artifact -> finish artifact
          | Error (No_schedule (f, _)) -> die_search_failure f
          | Error e ->
            prerr_endline ("ezrt: " ^ error_to_string e);
            exit 1)
        | `Classes -> (
          let model = Translate.translate spec in
          let subsume = not no_subsume in
          let por = not no_por in
          let outcome, metrics, par_note =
            match domains with
            | Some d when d > 1 ->
              let r =
                Par_class.find_schedule ~max_stored:max_states ~subsume ~por
                  ~domains:d ~cancel model
              in
              ( r.Par_class.outcome,
                r.Par_class.metrics,
                Printf.sprintf ", %d domain(s) used, %d steals"
                  r.Par_class.domains_used r.Par_class.steals )
            | Some _ | None ->
              let outcome, metrics =
                Class_search.find_schedule ~max_stored:max_states ~subsume ~por
                  ~cancel model
              in
              (outcome, metrics, "")
          in
          match outcome with
          | Ok schedule ->
            let segments = Timeline.of_schedule model schedule in
            (match Validator.check model segments with
            | Error vs ->
              prerr_endline
                ("ezrt: schedule failed certification: "
                ^ Validator.violation_to_string (List.hd vs));
              exit 1
            | Ok () ->
              let table = Table.of_segments segments in
              Format.printf
                "class engine: %d classes stored (%d pruned eagerly, %d \
                 subsumed), %d backtracks%s, %.1f ms@."
                metrics.Class_search.stored metrics.Class_search.eager
                metrics.Class_search.subsumed metrics.Class_search.backtracks
                par_note
                (metrics.Class_search.elapsed_s *. 1000.);
              Format.printf "schedule table:@.%a" (Table.pp model) table;
              if gantt then Format.printf "@.%s" (Chart.render model segments);
              (match vcd with
              | Some path ->
                Vcd.save_file path model segments;
                Printf.printf "VCD written to %s\n" path
              | None -> ()))
          | Error f ->
            (match f with
            | Class_search.Budget_exhausted when deadline_expired deadline ->
              die_timed_out ()
            | _ -> ());
            prerr_endline ("ezrt: " ^ Class_search.failure_to_string f);
            exit 1)
        | `Parallel -> (
          let model = Translate.translate spec in
          let options = search_options policy no_po latest max_states no_por in
          let r = Par_search.find_schedule ~options ?domains ~cancel model in
          match r.Par_search.outcome with
          | Ok schedule -> (
            let segments = Timeline.of_schedule model schedule in
            match Validator.check model segments with
            | Error vs ->
              prerr_endline
                ("ezrt: schedule failed certification: "
                ^ Validator.violation_to_string (List.hd vs));
              exit 1
            | Ok () ->
              let table = Table.of_segments segments in
              let m = r.Par_search.metrics in
              Format.printf
                "parallel search: %d domain(s) used, %d states stored, %d \
                 steals, %d shared-table hits, %.1f ms@."
                r.Par_search.domains_used m.Search.stored r.Par_search.steals
                r.Par_search.shared_hits
                (m.Search.elapsed_s *. 1000.);
              Format.printf "schedule table:@.%a" (Table.pp model) table;
              if gantt then Format.printf "@.%s" (Chart.render model segments);
              (match vcd with
              | Some path ->
                Vcd.save_file path model segments;
                Printf.printf "VCD written to %s\n" path
              | None -> ()))
          | Error f -> die_search_failure f)
        | `Portfolio -> (
          let model = Translate.translate spec in
          let race =
            Portfolio.find_schedule ~max_stored:max_states ?domains
              ~analysis:(not no_analysis) ~por:(not no_por) ~cancel model
          in
          match race.Portfolio.outcome with
          | Ok schedule -> (
            let segments = Timeline.of_schedule model schedule in
            match Validator.check model segments with
            | Error vs ->
              prerr_endline
                ("ezrt: schedule failed certification: "
                ^ Validator.violation_to_string (List.hd vs));
              exit 1
            | Ok () ->
              let table = Table.of_segments segments in
              (match race.Portfolio.winner, race.Portfolio.prepass with
              | None, Portfolio.Prepass_accepted ->
                Format.printf
                  "portfolio: analysis pre-pass decided (certified EDF \
                   quick-accept, no search ran), %.1f ms@."
                  (race.Portfolio.elapsed_s *. 1000.)
              | winner, _ ->
                Format.printf
                  "portfolio: %s won on %d domain(s) (%d config(s) started, \
                   %d finished), %.1f ms@."
                  (match winner with
                  | Some cfg -> Portfolio.config_to_string cfg
                  | None -> "?")
                  race.Portfolio.domains_used race.Portfolio.configs_started
                  (List.length race.Portfolio.attempts)
                  (race.Portfolio.elapsed_s *. 1000.));
              Format.printf "schedule table:@.%a" (Table.pp model) table;
              if gantt then Format.printf "@.%s" (Chart.render model segments);
              (match vcd with
              | Some path ->
                Vcd.save_file path model segments;
                Printf.printf "VCD written to %s\n" path
              | None -> ()))
          | Error f ->
            (match race.Portfolio.prepass with
            | Portfolio.Prepass_rejected w ->
              prerr_endline
                ("ezrt: analysis pre-pass decided: infeasible — "
                ^ Schedulability.witness_to_string w);
              exit 1
            | _ -> die_search_failure f)))
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Synthesize a feasible pre-runtime schedule.")
    Term.(const run $ obs_term $ file_arg $ case_arg $ policy_arg $ no_po_arg
          $ latest_arg $ max_states_arg $ engine_arg $ domains_arg
          $ no_subsume_arg $ no_analysis_arg $ no_por_arg $ timeout_arg
          $ gantt_arg $ vcd_arg)

(* --- analyze -------------------------------------------------------- *)

let analyze_cmd =
  let sensitivity_arg =
    Arg.(value & flag & info [ "sensitivity" ]
           ~doc:"Also run the WCET sensitivity analysis (one synthesis per \
                 binary-search probe).")
  in
  let spec_only_arg =
    Arg.(value & flag & info [ "spec-only" ]
           ~doc:"Only run the analytic schedulability pre-pass (no search, \
                 no synthesis).  Exit 0 when the verdict is feasible with a \
                 certified schedule, 1 when infeasible with a witness, 2 \
                 when unknown.")
  in
  (* the analytic verdict costs closed-form arithmetic plus at most one
     certified EDF simulation — print it before any search-based
     analysis, and under --spec-only print nothing else *)
  let analytic_verdict spec =
    match (Validate.check spec).Validate.errors with
    | e :: _ ->
      Format.printf "analytic verdict: unknown (spec does not validate: %s)@."
        (Validate.error_to_string e);
      2
    | [] -> (
      let model = Translate.translate spec in
      match Schedulability.analyze model with
      | Schedulability.Infeasible w ->
        Format.printf "analytic verdict: infeasible@.witness [%s]: %s@."
          (Schedulability.witness_kind w)
          (Schedulability.witness_to_string w);
        1
      | Schedulability.Feasible actions -> (
        let schedule = Schedule.of_actions actions in
        match Validator.certify model schedule with
        | Ok _ ->
          Format.printf
            "analytic verdict: feasible (certified EDF schedule, %d \
             firings)@."
            (Schedule.length schedule);
          0
        | Error failure ->
          (* acceptance is never taken on faith: a certificate that
             fails certification downgrades the verdict *)
          Format.printf
            "analytic verdict: unknown (quick-accept certificate failed \
             certification: %s)@."
            (Validator.certification_failure_to_string failure);
          2)
      | Schedulability.Unknown why ->
        Format.printf "analytic verdict: unknown (%s)@." why;
        2)
  in
  let run () file case sensitivity spec_only =
    with_spec file case (fun spec ->
        let analytic_code = analytic_verdict spec in
        if spec_only then exit analytic_code;
        match synthesize spec with
        | Error e ->
          prerr_endline ("ezrt: " ^ error_to_string e);
          exit 1
        | Ok artifact ->
          Format.printf "schedule quality:@.%a@." Quality.pp
            (Quality.of_timeline artifact.model artifact.segments);
          (match Rta.analyze spec with
          | Ok rta -> Format.printf "response-time analysis:@.%a@." Rta.pp rta
          | Error msg ->
            Format.printf "response-time analysis: not applicable (%s)@.@."
              msg);
          Format.printf "max tolerable dispatch overhead: %d@."
            (Vm.max_tolerable_overhead artifact.model artifact.table);
          if sensitivity then begin
            (match Sensitivity.analyze spec with
            | Ok t -> Format.printf "@.WCET sensitivity:@.%a" Sensitivity.pp t
            | Error msg -> Format.printf "@.WCET sensitivity: %s@." msg);
            match Sensitivity.deadline_margins spec with
            | Ok t ->
              Format.printf "@.deadline margins:@.%a" Sensitivity.pp_deadlines t
            | Error msg -> Format.printf "@.deadline margins: %s@." msg
          end)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Analytic schedulability verdict, then quality, response-time \
             and robustness analysis of the synthesized schedule.")
    Term.(const run $ obs_term $ file_arg $ case_arg $ sensitivity_arg
          $ spec_only_arg)

(* --- model-check ----------------------------------------------------- *)

let model_check_cmd =
  let query_arg =
    Arg.(required & opt (some string) None & info [ "q"; "query" ]
           ~docv:"QUERY"
           ~doc:"Reachability query, e.g. 'AG pproc <= 1' or 'EF pdm_T1 \
                 >= 1'.")
  in
  let max_states_mc =
    Arg.(value & opt int 100_000 & info [ "max-states" ] ~docv:"N"
           ~doc:"State budget for the bounded walk.")
  in
  let classes_flag =
    Arg.(value & flag & info [ "classes" ]
           ~doc:"Check over the dense-time state-class graph instead of \
                 the discrete TLTS.")
  in
  let unprioritized_flag =
    Arg.(value & flag & info [ "unprioritized" ]
           ~doc:"With --classes: drop the FT priority filter (classical \
                 TPN semantics; over-approximates).")
  in
  let run () file case query max_states classes unprioritized =
    with_spec file case (fun spec ->
        let model = Translate.translate spec in
        match Query.parse query with
        | Error msg ->
          prerr_endline ("ezrt: query syntax: " ^ msg);
          exit 1
        | Ok q -> (
          match
            if classes then
              Query.check_classes ~max_classes:max_states
                ~priorities:(not unprioritized) model.Translate.net q
            else Query.check ~max_states model.Translate.net q
          with
          | Error msg ->
            prerr_endline ("ezrt: " ^ msg);
            exit 1
          | Ok verdict ->
            Printf.printf "%s: %s\n" (Query.to_string q)
              (Query.verdict_to_string verdict);
            (match verdict with
            | Query.Holds _ -> ()
            | Query.Fails _ | Query.Unknown -> exit 1)))
  in
  Cmd.v
    (Cmd.info "model-check"
       ~doc:"Check a reachability property of the translated net (EF/AG \
             over marking atoms).")
    Term.(const run $ obs_term $ file_arg $ case_arg $ query_arg
          $ max_states_mc $ classes_flag $ unprioritized_flag)

(* --- codegen -------------------------------------------------------- *)

let codegen_cmd =
  let target_arg =
    let target_conv = Arg.enum Target.all in
    Arg.(value & opt target_conv Target.hosted & info [ "target" ] ~docv:"TARGET"
           ~doc:"Code generation target: hosted, x86, arm9, 8051 or m68k.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE"
           ~doc:"Write the generated C here (stdout otherwise).")
  in
  let compact_arg =
    Arg.(value & flag & info [ "compact" ]
           ~doc:"Emit the compact table layout (3 bytes per row) for \
                 flash-constrained parts.")
  in
  let run () file case target out compact =
    with_spec file case (fun spec ->
        match synthesize ~target spec with
        | Ok artifact -> (
          let program =
            if compact then
              Emit.program ~target ~layout:Emit.Compact_table artifact.model
                artifact.table
            else artifact.c_program
          in
          let fp =
            Emit.table_footprint
              ~layout:(if compact then Emit.Compact_table else Emit.Struct_table)
              target artifact.table
          in
          match out with
          | Some path ->
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc program);
            Printf.printf "scheduled C written to %s (table: %d rows, %d B%s)\n"
              path fp.Emit.rows fp.Emit.table_bytes
              (match fp.Emit.fits_flash with
              | Some false -> ", EXCEEDS the target's typical flash"
              | Some true | None -> "")
          | None -> print_string program)
        | Error e ->
          prerr_endline ("ezrt: " ^ error_to_string e);
          exit 1)
  in
  Cmd.v (Cmd.info "codegen" ~doc:"Generate the scheduled C program.")
    Term.(const run $ obs_term $ file_arg $ case_arg $ target_arg $ out_arg
          $ compact_arg)

(* --- simulate ------------------------------------------------------- *)

let simulate_cmd =
  let overhead_arg =
    Arg.(value & opt (some int) None & info [ "overhead" ] ~docv:"N"
           ~doc:"Per-dispatch overhead in time units (defaults to the \
                 specification's dispatcherOverhead).")
  in
  let cycles_arg =
    Arg.(value & opt int 1 & info [ "cycles" ] ~docv:"N"
           ~doc:"Hyper-periods to simulate.")
  in
  let print_trace_arg =
    Arg.(value & flag & info [ "print-trace" ]
           ~doc:"Print the full event trace.")
  in
  let fault_arg =
    Arg.(value & opt_all (t3 ~sep:':' string int int) []
         & info [ "fault" ] ~docv:"TASK:INSTANCE:EXTRA"
             ~doc:"Inject an execution-time overrun (task name, instance \
                   number, extra time units); repeatable.")
  in
  let run () file case overhead cycles print_trace faults =
    with_spec file case (fun spec ->
        match synthesize spec with
        | Error e ->
          prerr_endline ("ezrt: " ^ error_to_string e);
          exit 1
        | Ok artifact ->
          let vm_faults =
            List.map
              (fun (name, instance, extra) ->
                match Translate.task_index artifact.model name with
                | index ->
                  { Vm.f_task = index; f_instance = instance; f_extra = extra }
                | exception Not_found ->
                  prerr_endline ("ezrt: unknown task " ^ name);
                  exit 1)
              faults
          in
          let outcome =
            Vm.execute ?overhead ~cycles ~faults:vm_faults artifact.model
              artifact.table
          in
          if print_trace then
            List.iter
              (fun e ->
                print_endline (Vm.event_to_string artifact.model e))
              outcome.Vm.trace;
          Printf.printf
            "simulated %d hyper-period(s): %d instances completed, %d \
             overruns\n"
            cycles outcome.Vm.completed outcome.Vm.overruns;
          (if vm_faults <> [] then begin
            match Vm.isolation_check ?overhead ~faults:vm_faults artifact.model artifact.table with
            | Ok overruns ->
              Printf.printf
                "fault isolation: %d overrun(s) confined to the faulty \
                 instance(s); healthy instances unaffected\n"
                overruns
            | Error vs ->
              List.iter
                (fun v ->
                  Printf.printf "fault LEAKED onto healthy work: %s\n"
                    (Validator.violation_to_string v))
                vs
          end);
          (match Vm.verify ?overhead artifact.model artifact.table with
          | Ok () -> print_endline "trace satisfies every constraint"
          | Error violations ->
            List.iter
              (fun v ->
                Printf.printf "violation: %s\n"
                  (Validator.violation_to_string v))
              violations;
            exit 1);
          Printf.printf "max tolerable dispatch overhead: %d\n"
            (Vm.max_tolerable_overhead artifact.model artifact.table))
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Execute the schedule table on the virtual target machine.")
    Term.(const run $ obs_term $ file_arg $ case_arg $ overhead_arg
          $ cycles_arg $ print_trace_arg $ fault_arg)

(* --- compare -------------------------------------------------------- *)

let compare_cmd =
  let run () file case =
    with_spec file case (fun spec ->
        let rows = Baseline_compare.run_all spec in
        Format.printf "%a" Baseline_compare.pp rows)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare runtime scheduling policies against the pre-runtime \
             synthesis.")
    Term.(const run $ obs_term $ file_arg $ case_arg)

(* --- fuzz ----------------------------------------------------------- *)

let fuzz_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
           ~doc:"PRNG seed; the whole campaign is a pure function of it.")
  in
  let count_arg =
    Arg.(value & opt (some int) None & info [ "count" ] ~docv:"K"
           ~doc:"Number of specifications to generate (default 200, or 60 \
                 with $(b,--smoke)).")
  in
  let smoke_arg =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"Small, fast profile for CI: fewer tasks, lower utilization \
                 and a 60-spec default count.")
  in
  let corpus_arg =
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR"
           ~doc:"Write each shrunken divergent spec to DIR as DSL XML so the \
                 regression suite replays it.")
  in
  let fuzz_max_states_arg =
    Arg.(value & opt int 50_000 & info [ "max-states" ] ~docv:"N"
           ~doc:"Per-engine stored-state budget; exhausting it yields an \
                 inconclusive verdict, not a divergence.")
  in
  let no_shrink_arg =
    Arg.(value & flag & info [ "no-shrink" ]
           ~doc:"Report divergent specs as generated, without minimizing \
                 them first.")
  in
  let engines_arg =
    Arg.(value & opt (some string) None & info [ "engines" ] ~docv:"NAMES"
           ~doc:"Comma-separated engine filter (reference, incremental, \
                 latest-release, classes, portfolio, parallel, analysis, \
                 no-por, classes-no-por); \
                 only these engines run and cross-check — e.g. \
                 $(b,--engines analysis,classes,reference) cross-checks the \
                 analytic pre-pass against search engines, and \
                 $(b,--engines parallel,reference) bisects parallel-only \
                 divergences.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Only print the summary line.")
  in
  let fuzz_domains_arg =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"Worker domains for the classes engine; above 1 the \
                 campaign cross-checks the work-stealing parallel class \
                 searcher against the other engines.")
  in
  let run () seed count smoke corpus max_stored no_shrink engines domains
      quiet =
    let profile = if smoke then Spec_gen.smoke else Spec_gen.default in
    let count =
      match count with Some c -> c | None -> if smoke then 60 else 200
    in
    let log =
      if quiet then None
      else
        Some
          (fun index _spec (report : Differ.report) ->
            if report.Differ.divergences <> [] then
              Printf.printf "spec %d: DIVERGENT\n%!" index
            else if (index + 1) mod 50 = 0 then
              Printf.printf "checked %d/%d specs\n%!" (index + 1) count)
    in
    let engines =
      Option.map
        (fun s ->
          String.split_on_char ',' s |> List.map String.trim
          |> List.filter (fun n -> n <> ""))
        engines
    in
    let stats =
      try
        Fuzz.run ~profile ~max_stored ~class_domains:domains ?engines
          ~shrink:(not no_shrink) ?log ~seed ~count ()
      with Invalid_argument msg ->
        prerr_endline ("ezrt: " ^ msg);
        exit 2
    in
    Printf.printf
      "fuzz: seed %d, %d specs in %.1f s (%.1f specs/s) — %d feasible, %d \
       infeasible, %d inconclusive, %d divergent\n"
      stats.Fuzz.seed stats.Fuzz.generated stats.Fuzz.elapsed_s
      (Fuzz.specs_per_s stats) stats.Fuzz.feasible stats.Fuzz.infeasible
      stats.Fuzz.unknown
      (List.length stats.Fuzz.divergent);
    List.iter
      (fun (d : Fuzz.divergent) ->
        Printf.printf "divergence at spec %d (%d tasks, shrunk to %d):\n"
          d.Fuzz.index
          (List.length d.Fuzz.spec.Spec.tasks)
          (List.length d.Fuzz.shrunk.Spec.tasks);
        List.iter
          (fun div ->
            Printf.printf "  - %s\n" (Differ.divergence_to_string div))
          d.Fuzz.divergences)
      stats.Fuzz.divergent;
    (match corpus with
    | Some dir ->
      List.iter
        (fun path -> Printf.printf "wrote %s\n" path)
        (Fuzz.write_corpus ~dir stats)
    | None -> ());
    if stats.Fuzz.divergent <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differentially fuzz the synthesis engines on random \
             specifications.")
    Term.(const run $ obs_term $ seed_arg $ count_arg $ smoke_arg $ corpus_arg
          $ fuzz_max_states_arg $ no_shrink_arg $ engines_arg
          $ fuzz_domains_arg $ quiet_arg)

(* --- serve ----------------------------------------------------------- *)

let queue_limit_arg =
  Arg.(value & opt int 64 & info [ "queue-limit" ] ~docv:"N"
         ~doc:"Bound on accepted-but-unstarted jobs; submissions beyond \
               it are shed with an explicit overloaded response.")

let serve_timeout_arg =
  Arg.(value & opt (some int) None & info [ "timeout" ] ~docv:"MS"
         ~doc:"Default per-job wall-clock deadline in milliseconds \
               (requests may override with their own timeout_ms field).")

let serve_cmd =
  let socket_arg =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Serve the protocol over a Unix domain socket bound at \
                 PATH instead of stdin/stdout.")
  in
  let run () workers queue_limit cache_dir max_states timeout socket =
    let cache =
      Option.map (fun dir -> Result_cache.create ~dir ()) cache_dir
    in
    let server =
      Server.create ?workers ~queue_limit ?cache ~max_states
        ?default_timeout_ms:timeout ()
    in
    (match socket with
    | Some path ->
      Printf.eprintf "ezrt: serving on %s (send {\"op\":\"shutdown\"} to \
                      stop)\n%!"
        path;
      Server.serve_socket server ~path
    | None -> ignore (Server.serve_channels server stdin stdout));
    Server.shutdown server
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the synthesis job server: newline-delimited JSON \
             requests over stdio or a Unix domain socket, a bounded job \
             queue drained by worker domains, and the content-addressed \
             result cache (see docs/SERVICE.md).")
    Term.(const run $ obs_term $ workers_arg $ queue_limit_arg
          $ cache_dir_arg $ max_states_arg $ serve_timeout_arg $ socket_arg)

(* --- batch ----------------------------------------------------------- *)

let batch_cmd =
  let corpus_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CORPUS"
           ~doc:"A directory of DSL XML specifications (all *.xml files, \
                 sorted), or a manifest file listing one specification \
                 path per line (relative paths resolve against the \
                 manifest's directory).")
  in
  let run () corpus workers cache_dir max_states timeout =
    let files =
      if Sys.is_directory corpus then
        Sys.readdir corpus |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".xml")
        |> List.sort compare
        |> List.map (Filename.concat corpus)
      else
        In_channel.with_open_text corpus In_channel.input_lines
        |> List.map String.trim
        |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
        |> List.map (fun l ->
               if Sys.file_exists l then l
               else Filename.concat (Filename.dirname corpus) l)
    in
    if files = [] then begin
      prerr_endline "ezrt: no specifications in the corpus";
      exit 1
    end;
    let specs =
      List.map
        (fun path ->
          match Dsl.load_file path with
          | Ok spec -> (path, spec)
          | Error e ->
            prerr_endline
              ("ezrt: " ^ path ^ ": " ^ Dsl.error_to_string e);
            exit 1)
        files
    in
    let n = List.length specs in
    let cache =
      Option.map (fun dir -> Result_cache.create ~dir ()) cache_dir
    in
    (* the whole corpus is admitted up front, so the queue bound is the
       corpus size — batch has no load to shed *)
    let server =
      Server.create ?workers ~queue_limit:n ?cache ~max_states
        ?default_timeout_ms:timeout ()
    in
    let started = Unix.gettimeofday () in
    let results = Array.make n None in
    List.iteri
      (fun i (path, spec) ->
        let req =
          { Server.id = Filename.basename path; spec; timeout_ms = None;
            max_states = None }
        in
        match
          Server.submit server req ~on_done:(fun r -> results.(i) <- Some r)
        with
        | `Accepted -> ()
        | `Overloaded ->
          results.(i) <-
            Some { Server.id = req.Server.id; result = Error "overloaded" })
      specs;
    Server.shutdown server;
    let elapsed = Unix.gettimeofday () -. started in
    let errors = ref 0 and timed_out = ref 0 and cached = ref 0 in
    Array.iter
      (fun r ->
        match r with
        | None -> incr errors  (* unreachable: shutdown drains *)
        | Some (r : Server.response) -> (
          match r.Server.result with
          | Ok o ->
            if o.Server.cached then incr cached;
            (match o.Server.verdict with
            | Server.Timed_out -> incr timed_out
            | _ -> ());
            Printf.printf "%s %s\n" r.Server.id (Server.verdict_line o)
          | Error msg ->
            incr errors;
            Printf.printf "%s error\n" r.Server.id;
            Printf.eprintf "ezrt: %s: %s\n" r.Server.id msg))
      results;
    (match cache with
    | Some c ->
      let k = Result_cache.counters c in
      Printf.eprintf
        "cache: %d hit(s), %d miss(es), %d invalid, %d evicted\n"
        k.Result_cache.hits k.Result_cache.misses k.Result_cache.invalid
        k.Result_cache.evictions
    | None -> ());
    Printf.eprintf "batch: %d spec(s) in %.1f s (%.1f specs/s), %d from \
                    cache, %d timed out, %d error(s)\n"
      n elapsed
      (float_of_int n /. Float.max elapsed 1e-9)
      !cached !timed_out !errors;
    if !errors > 0 then exit 1;
    if !timed_out > 0 then exit timeout_exit_code
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Synthesize a whole corpus of specifications through the job \
             pool, one deterministic verdict line per spec on stdout \
             (byte-identical across reruns, so warm-cache runs are \
             diffable against cold ones).")
    Term.(const run $ obs_term $ corpus_arg $ workers_arg $ cache_dir_arg
          $ max_states_arg $ serve_timeout_arg)

(* --- gen ------------------------------------------------------------- *)

let gen_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
           ~doc:"PRNG seed; the corpus is a pure function of it.")
  in
  let count_arg =
    Arg.(value & opt int 50 & info [ "count" ] ~docv:"K"
           ~doc:"Number of specifications to write.")
  in
  let smoke_arg =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"Use the generator's small CI profile.")
  in
  let out_arg =
    Arg.(required & opt (some string) None & info [ "out" ] ~docv:"DIR"
           ~doc:"Write the specifications here as DSL XML (created if \
                 missing).")
  in
  let run () seed count smoke out =
    let profile = if smoke then Spec_gen.smoke else Spec_gen.default in
    if not (Sys.file_exists out) then Unix.mkdir out 0o755;
    for i = 0 to count - 1 do
      let spec = Spec_gen.spec_at ~profile ~seed i in
      Dsl.save_file
        (Filename.concat out (Printf.sprintf "spec-%04d.xml" i))
        spec
    done;
    Printf.printf "wrote %d spec(s) to %s (seed %d)\n" count out seed
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:"Write a seeded corpus of generated specifications — input \
             for $(b,ezrt batch) and the CI service smoke test.")
    Term.(const run $ obs_term $ seed_arg $ count_arg $ smoke_arg $ out_arg)

let main_cmd =
  let doc = "embedded hard real-time software synthesis (ezRealtime)" in
  Cmd.group (Cmd.info "ezrt" ~version ~doc)
    [ check_cmd; info_cmd; model_cmd; lint_cmd; schedule_cmd; analyze_cmd;
      model_check_cmd; codegen_cmd; simulate_cmd; compare_cmd; fuzz_cmd;
      serve_cmd; batch_cmd; gen_cmd ]

let () = exit (Cmd.eval main_cmd)
