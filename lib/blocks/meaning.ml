type t =
  | Start
  | End
  | Phase_arrival of int
  | Arrival of int
  | Release_wait of int
  | Release of int
  | Grab of int
  | Compute of int
  | Unit_grab of int
  | Unit_compute of int
  | Excl_grab of int
  | Finish of int
  | Deadline_ok of int
  | Deadline_miss of int
  | Cycle_overrun
  | Precedence of int * int
  | Msg_grant of int
  | Msg_transfer of int

let task_index = function
  | Phase_arrival i
  | Arrival i
  | Release_wait i
  | Release i
  | Grab i
  | Compute i
  | Unit_grab i
  | Unit_compute i
  | Excl_grab i
  | Finish i
  | Deadline_ok i
  | Deadline_miss i -> Some i
  | Start | End | Cycle_overrun | Precedence _ | Msg_grant _ | Msg_transfer _ ->
    None

let is_release = function
  | Release _ -> true
  | Start | End | Phase_arrival _ | Arrival _ | Release_wait _ | Grab _
  | Compute _ | Unit_grab _ | Unit_compute _ | Excl_grab _ | Finish _
  | Deadline_ok _ | Deadline_miss _ | Cycle_overrun | Precedence _
  | Msg_grant _ | Msg_transfer _ ->
    false

let to_string = function
  | Start -> "start"
  | End -> "end"
  | Phase_arrival i -> Printf.sprintf "phase-arrival(%d)" i
  | Arrival i -> Printf.sprintf "arrival(%d)" i
  | Release_wait i -> Printf.sprintf "release-wait(%d)" i
  | Release i -> Printf.sprintf "release(%d)" i
  | Grab i -> Printf.sprintf "grab(%d)" i
  | Compute i -> Printf.sprintf "compute(%d)" i
  | Unit_grab i -> Printf.sprintf "unit-grab(%d)" i
  | Unit_compute i -> Printf.sprintf "unit-compute(%d)" i
  | Excl_grab i -> Printf.sprintf "excl-grab(%d)" i
  | Finish i -> Printf.sprintf "finish(%d)" i
  | Deadline_ok i -> Printf.sprintf "deadline-ok(%d)" i
  | Deadline_miss i -> Printf.sprintf "deadline-miss(%d)" i
  | Cycle_overrun -> "cycle-overrun"
  | Precedence (i, j) -> Printf.sprintf "precedence(%d,%d)" i j
  | Msg_grant m -> Printf.sprintf "msg-grant(%d)" m
  | Msg_transfer m -> Printf.sprintf "msg-transfer(%d)" m
