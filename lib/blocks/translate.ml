open Ezrt_tpn
module B = Pnet.Builder
module Spec = Ezrt_spec.Spec
module Task = Ezrt_spec.Task
module Message = Ezrt_spec.Message
module Validate = Ezrt_spec.Validate

type origin =
  | From_task of int
  | From_message of int
  | From_precedence of int * int
  | From_exclusion of int * int
  | From_resource of string
  | From_framework of string

type t = {
  net : Pnet.t;
  spec : Spec.t;
  tasks : Task.t array;
  meanings : Meaning.t array;
  place_origins : origin array;
  instance_counts : int array;
  horizon : int;
  final_place : Pnet.place_id;
  dead_places : Pnet.place_id list;
  deadline_watch : Pnet.transition_id array;
  progress : (Pnet.place_id * Pnet.place_id) option array;
  processor_place : Pnet.place_id;
  resource_places : Pnet.place_id list;
}

let rec translate spec =
  Ezrt_obs.Trace.with_span ~cat:"model"
    ~args:[ ("spec", Ezrt_obs.Trace.Str spec.Spec.name) ]
    (fun () ->
      Ezrt_obs.Metrics.time
        (Ezrt_obs.Metrics.timer
           ~help:"Wall-clock time spent translating specs to nets"
           "ezrt_translate_duration")
        (fun () -> translate_untraced spec))
    "translate"

and translate_untraced spec =
  Validate.check_exn spec;
  let tasks = Array.of_list spec.Spec.tasks in
  let n_tasks = Array.length tasks in
  let horizon = Spec.hyperperiod spec in
  let instance_counts =
    Array.map (fun task -> Task.instances_in task horizon) tasks
  in
  let b = B.create spec.Spec.name in
  let meanings : (int * Meaning.t) list ref = ref [] in
  let note tid meaning = meanings := (tid, meaning) :: !meanings in
  (* Spec provenance: every place created inside [tag origin f] is
     recorded as coming from that spec fragment, by watermarking the
     builder's place counter around the construction. *)
  let origins : (int * origin) list ref = ref [] in
  let tag origin f =
    let lo = B.place_count b in
    let r = f () in
    let hi = B.place_count b in
    for p = lo to hi - 1 do
      origins := (p, origin) :: !origins
    done;
    r
  in
  (* (i-pre) Resources: the processor, exclusion slots, buses. *)
  let pproc =
    tag (From_resource "processor") (fun () -> Blocks.processor_block b "pproc")
  in
  let index_of_id id =
    let rec go i =
      if i >= n_tasks then raise Not_found
      else if String.equal tasks.(i).Task.id id then i
      else go (i + 1)
    in
    go 0
  in
  let exclusion_slots =
    List.map
      (fun (a, b_id) ->
        let ia = index_of_id a and ib = index_of_id b_id in
        let name =
          Printf.sprintf "%s_%s" tasks.(ia).Task.name tasks.(ib).Task.name
        in
        ( (ia, ib),
          tag (From_exclusion (ia, ib)) (fun () ->
              Relations.exclusion_place b ~name) ))
      spec.Spec.exclusions
  in
  let exclusions_of i =
    List.filter_map
      (fun ((ia, ib), place) ->
        if ia = i || ib = i then Some place else None)
      exclusion_slots
  in
  let buses =
    List.sort_uniq compare
      (List.map (fun (m : Message.t) -> m.Message.bus) spec.Spec.messages)
  in
  let bus_places =
    List.map
      (fun bus ->
        ( bus,
          tag
            (From_resource ("bus " ^ bus))
            (fun () -> B.add_place b ~tokens:1 ("pbus_" ^ bus)) ))
      buses
  in
  (* (i) Arrival, deadline and structure blocks per task. *)
  let structures =
    Array.mapi
      (fun i task ->
        tag (From_task i) @@ fun () ->
        let name = task.Task.name in
        let build_structure =
          match task.Task.mode with
          | Task.Non_preemptive -> Blocks.non_preemptive_structure
          | Task.Preemptive -> Blocks.preemptive_structure
        in
        let st =
          build_structure b ~task:name ~release:task.Task.release
            ~wcet:task.Task.wcet ~deadline:task.Task.deadline ~processor:pproc
            ~exclusions:(exclusions_of i)
        in
        note st.Blocks.tr (Meaning.Release i);
        Option.iter (fun tw -> note tw (Meaning.Release_wait i)) st.Blocks.tw;
        note st.Blocks.tf (Meaning.Finish i);
        (match task.Task.mode with
        | Task.Non_preemptive ->
          note st.Blocks.tg (Meaning.Grab i);
          note st.Blocks.tc (Meaning.Compute i)
        | Task.Preemptive ->
          note st.Blocks.tg (Meaning.Unit_grab i);
          note st.Blocks.tc (Meaning.Unit_compute i));
        Option.iter (fun te -> note te (Meaning.Excl_grab i)) st.Blocks.te;
        let dl =
          Blocks.deadline_block b ~task:name ~deadline:task.Task.deadline
            ~finished:st.Blocks.pf
        in
        note dl.Blocks.td (Meaning.Deadline_miss i);
        note dl.Blocks.tpc (Meaning.Deadline_ok i);
        let pst = B.add_place b ("pst_" ^ name) in
        let arr =
          Blocks.arrival_block b ~task:name ~phase:task.Task.phase
            ~period:task.Task.period ~instances:instance_counts.(i) ~start:pst
            ~release:st.Blocks.pwr ~watch:dl.Blocks.pwd
        in
        note arr.Blocks.tph (Meaning.Phase_arrival i);
        Option.iter (fun ta -> note ta (Meaning.Arrival i)) arr.Blocks.ta;
        (pst, st, dl))
      tasks
  in
  (* (ii) Precedence relations. *)
  List.iter
    (fun (a, b_id) ->
      let ia = index_of_id a and ib = index_of_id b_id in
      let _, st_a, _ = structures.(ia) and _, st_b, _ = structures.(ib) in
      let name =
        Printf.sprintf "%s_%s" tasks.(ia).Task.name tasks.(ib).Task.name
      in
      let rel =
        tag (From_precedence (ia, ib)) (fun () ->
            Relations.add_precedence b ~name ~finish_of_pred:st_a.Blocks.tf
              ~release_of_succ:st_b.Blocks.tr)
      in
      note rel.Relations.tprec (Meaning.Precedence (ia, ib)))
    spec.Spec.precedences;
  (* (iii) Inter-task communications. *)
  List.iteri
    (fun mi (m : Message.t) ->
      let ia = index_of_id m.Message.sender
      and ib = index_of_id m.Message.receiver in
      let _, st_a, _ = structures.(ia) and _, st_b, _ = structures.(ib) in
      let bus = List.assoc m.Message.bus bus_places in
      let comm =
        tag (From_message mi) (fun () ->
            Relations.add_message b ~name:m.Message.name ~bus
              ~grant_time:m.Message.grant_time ~comm_time:m.Message.comm_time
              ~finish_of_sender:st_a.Blocks.tf
              ~release_of_receiver:st_b.Blocks.tr)
      in
      note comm.Relations.tsm (Meaning.Msg_grant mi);
      note comm.Relations.tcm (Meaning.Msg_transfer mi))
    spec.Spec.messages;
  (* (iv) Fork and (v) join. *)
  let starts = Array.to_list (Array.map (fun (pst, _, _) -> pst) structures) in
  let _, tstart =
    tag (From_framework "fork") (fun () -> Blocks.fork_block b ~starts)
  in
  note tstart Meaning.Start;
  let sources =
    Array.to_list
      (Array.mapi (fun i (_, _, dl) -> (dl.Blocks.pe, instance_counts.(i)))
         structures)
  in
  let pend, tend =
    tag (From_framework "join") (fun () -> Blocks.join_block b ~sources)
  in
  note tend Meaning.End;
  (* Cyclic-executive semantics: the whole hyper-period's work must
     complete within the hyper-period, or the schedule table cannot
     repeat.  A watchdog armed at the start forces the final marking by
     [horizon]: runs that would spill into the next cycle hit a dead
     marking instead. *)
  let pcyc, pcm =
    tag (From_framework "cyclic-watchdog") (fun () ->
        let pcyc = B.add_place b ~tokens:1 "pcyc" in
        let pcm = B.add_place b "pcm" in
        (pcyc, pcm))
  in
  let tcyc =
    B.add_transition b ~priority:Blocks.prio_deadline_miss "tcyc"
      (Time_interval.point horizon)
  in
  B.arc_pt b pcyc tcyc;
  B.arc_tp b tcyc pcm;
  B.arc_pt b pcyc tend;
  note tcyc Meaning.Cycle_overrun;
  let net = B.build b in
  let meaning_table = Array.make (Pnet.transition_count net) Meaning.Start in
  List.iter (fun (tid, m) -> meaning_table.(tid) <- m) !meanings;
  let origin_table =
    Array.make (Pnet.place_count net) (From_framework "net")
  in
  List.iter (fun (p, o) -> origin_table.(p) <- o) !origins;
  {
    net;
    spec;
    tasks;
    meanings = meaning_table;
    place_origins = origin_table;
    instance_counts;
    horizon;
    final_place = pend;
    dead_places =
      pcm
      :: Array.to_list (Array.map (fun (_, _, dl) -> dl.Blocks.pdm) structures);
    deadline_watch = Array.map (fun (_, _, dl) -> dl.Blocks.td) structures;
    progress =
      Array.map
        (fun task ->
          match task.Task.mode with
          | Task.Non_preemptive -> None
          | Task.Preemptive ->
            Some
              ( Pnet.find_place net ("pwu_" ^ task.Task.name),
                Pnet.find_place net ("pwx_" ^ task.Task.name) ))
        tasks;
    processor_place = pproc;
    resource_places =
      (pproc :: List.map snd bus_places) @ List.map snd exclusion_slots;
  }

let is_final model (s : State.t) = s.State.marking.(model.final_place) >= 1

let is_dead model (s : State.t) =
  List.exists (fun pdm -> s.State.marking.(pdm) > 0) model.dead_places

let task_index model id =
  let n = Array.length model.tasks in
  let rec go i =
    if i >= n then raise Not_found
    else if String.equal model.tasks.(i).Task.id id then i
    else go (i + 1)
  in
  go 0

let place_origin model p = model.place_origins.(p)

let transition_origin model tid =
  match model.meanings.(tid) with
  | Meaning.Start -> From_framework "fork"
  | Meaning.End -> From_framework "join"
  | Meaning.Cycle_overrun -> From_framework "cyclic-watchdog"
  | Meaning.Precedence (i, j) -> From_precedence (i, j)
  | Meaning.Msg_grant mi | Meaning.Msg_transfer mi -> From_message mi
  | m -> (
    match Meaning.task_index m with
    | Some i -> From_task i
    | None -> From_framework "net")

let origin_to_string model = function
  | From_task i ->
    let t = model.tasks.(i) in
    Printf.sprintf "task %s (id %s)" t.Task.name t.Task.id
  | From_message mi ->
    let m = List.nth model.spec.Spec.messages mi in
    Printf.sprintf "message %s (%s -> %s)" m.Message.name m.Message.sender
      m.Message.receiver
  | From_precedence (i, j) ->
    Printf.sprintf "precedence %s -> %s" model.tasks.(i).Task.id
      model.tasks.(j).Task.id
  | From_exclusion (i, j) ->
    Printf.sprintf "exclusion {%s, %s}" model.tasks.(i).Task.id
      model.tasks.(j).Task.id
  | From_resource r -> "resource " ^ r
  | From_framework f -> "framework " ^ f

let required_firings model =
  let count tid =
    let instances i = model.instance_counts.(i) in
    match model.meanings.(tid) with
    | Meaning.Start | Meaning.End -> 1
    | Meaning.Phase_arrival _ -> 1
    | Meaning.Arrival i -> instances i - 1
    | Meaning.Release_wait i
    | Meaning.Release i
    | Meaning.Grab i
    | Meaning.Compute i
    | Meaning.Excl_grab i
    | Meaning.Finish i
    | Meaning.Deadline_ok i -> instances i
    | Meaning.Unit_grab i | Meaning.Unit_compute i ->
      instances i * model.tasks.(i).Task.wcet
    | Meaning.Deadline_miss _ | Meaning.Cycle_overrun -> 0
    | Meaning.Precedence (i, _) -> instances i
    | Meaning.Msg_grant mi | Meaning.Msg_transfer mi ->
      let m = List.nth model.spec.Spec.messages mi in
      instances (task_index model m.Message.sender)
  in
  Array.init (Pnet.transition_count model.net) count

let minimum_firings model =
  Array.fold_left ( + ) 0 (required_firings model)

let minimum_states model = minimum_firings model + 1

let pp_inventory fmt model =
  let st = Analysis.structure model.net in
  Format.fprintf fmt "net %s: %a@." model.spec.Spec.name Analysis.pp_structure
    st;
  Array.iteri
    (fun i task ->
      Format.fprintf fmt "  task %-10s N=%-4d mode=%s@." task.Task.name
        model.instance_counts.(i)
        (Task.scheduling_mode_to_string task.Task.mode))
    model.tasks;
  Format.fprintf fmt "  minimum firings to MF: %d (states: %d)@."
    (minimum_firings model) (minimum_states model)
