(** Semantic role of each transition in a generated net.

    The TPN library is agnostic about what its transitions mean; the
    translation keeps this side table so that the scheduler can turn a
    feasible firing schedule back into task-level execution segments.
    Task and message arguments are indices into the specification's
    task/message lists. *)

type t =
  | Start  (** the fork block's [tstart] *)
  | End  (** the join block's [tend]; firing it reaches [MF] *)
  | Phase_arrival of int  (** [tph_i]: first arrival after the phase *)
  | Arrival of int  (** [ta_i]: each subsequent periodic arrival *)
  | Release_wait of int
      (** [tw_i]: anchors the release offset at the period start — a
          point [r, r] delay between arrival and the release decision,
          present only when [r > 0].  Without it a precedence or
          message token arriving later than the arrival would re-add
          [r] on top of the delivery time. *)
  | Release of int
      (** [tr_i]: the (gated) release decision; window [r, d-c] when
          the task has no wait stage, [0, d-c-r] after one *)
  | Grab of int  (** [tg_i] (non-preemptive): processor acquisition *)
  | Compute of int
      (** [tc_i] (non-preemptive): fires when the whole computation
          completes, [c] units after {!Grab} *)
  | Unit_grab of int  (** preemptive: acquire processor for one unit *)
  | Unit_compute of int  (** preemptive: one unit done, processor freed *)
  | Excl_grab of int
      (** preemptive task with exclusions: acquire every exclusion slot
          before the first unit *)
  | Finish of int  (** [tf_i]: instance wrap-up *)
  | Deadline_ok of int  (** [tpc_i]: the instance met its deadline *)
  | Deadline_miss of int  (** [td_i]: firing it marks [pdm_i] *)
  | Cycle_overrun
      (** [tcyc]: fires when the hyper-period elapses before the final
          marking — the schedule would not fit one cycle of the table,
          so the run is a dead end (cyclic-executive semantics) *)
  | Precedence of int * int  (** [tprec_ij] forwarding a finish token *)
  | Msg_grant of int  (** message m acquires its bus *)
  | Msg_transfer of int  (** message m transfer complete, bus freed *)

val task_index : t -> int option
(** The task a transition belongs to, when it belongs to one. *)

val is_release : t -> bool
(** Whether the transition is a release decision [tr_i] — the only
    kind whose firing window the search may stretch when branching on
    inserted idle time (shared by {!Ezrt_sched.Search}'s firing-time
    enumeration and the portfolio's config pruning). *)

val to_string : t -> string
