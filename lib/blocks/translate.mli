(** The ezRealtime2PNML translation: specification -> time Petri net.

    Follows the composition order of paper §4.3: (i) arrival, deadline
    and task structure blocks for each task; (ii) precedence and
    exclusion relations; (iii) inter-task communications; (iv) the fork
    block; (v) the join block.  The desired final marking [MF] is the
    join's [pend] place holding one token. *)

open Ezrt_tpn

type origin =
  | From_task of int  (** task index into the spec's task list *)
  | From_message of int  (** message index *)
  | From_precedence of int * int  (** (predecessor, successor) tasks *)
  | From_exclusion of int * int  (** the two mutually excluded tasks *)
  | From_resource of string  (** processor or bus place *)
  | From_framework of string  (** fork / join / cyclic-watchdog glue *)
      (** The spec fragment a net node was compiled from — the
          provenance attached to every structural-lint diagnostic so a
          net-level finding points back at the user's spec. *)

type t = {
  net : Pnet.t;
  spec : Ezrt_spec.Spec.t;
  tasks : Ezrt_spec.Task.t array;  (** indexable copy of the task list *)
  meanings : Meaning.t array;  (** by transition id *)
  place_origins : origin array;  (** by place id *)
  instance_counts : int array;  (** [N(ti)] by task index *)
  horizon : int;  (** the schedule period [PS] *)
  final_place : Pnet.place_id;  (** [pend]; [MF] marks it once *)
  dead_places : Pnet.place_id list;  (** the [pdm_i] markers *)
  deadline_watch : Pnet.transition_id array;
      (** [td_i] by task index; its clock measures the time since the
          current instance arrived, so [DUB(td_i)] is the task's
          dynamic slack *)
  progress : (Pnet.place_id * Pnet.place_id) option array;
      (** preemptive tasks only: [(pwu_i, pwx_i)] — pending units and
          the in-flight unit.  A marked [pwx] or a partially drained
          [pwu] means the instance has started; used by
          preemption-avoiding search policies *)
  processor_place : Pnet.place_id;
  resource_places : Pnet.place_id list;
      (** processor, buses and exclusion slots — places that must stay
          safe (at most one token) in every reachable state *)
}

val translate : Ezrt_spec.Spec.t -> t
(** Raises [Failure] when the specification does not validate, and
    [Invalid_argument] on a task with [wcet < 1] (the building blocks
    need at least one computation unit). *)

val is_final : t -> State.t -> bool
(** The state reached the desired final marking [MF]. *)

val is_dead : t -> State.t -> bool
(** Some deadline-missed place is marked: the branch cannot extend to a
    feasible schedule. *)

val task_index : t -> string -> int
(** Index of a task id; raises [Not_found]. *)

val place_origin : t -> Pnet.place_id -> origin

val transition_origin : t -> Pnet.transition_id -> origin
(** Derived from the transition's {!Meaning.t}. *)

val origin_to_string : t -> origin -> string
(** Human-readable provenance, e.g. ["task sensor (id t1)"] or
    ["exclusion {t1, t2}"]. *)

val required_firings : t -> int array
(** How many times each transition must fire on any run reaching [MF]
    (0 for the deadline-miss transitions).  Derived from the instance
    counts and the block structure. *)

val minimum_firings : t -> int
(** Sum of {!required_firings} — the length of an ideal,
    backtrack-free feasible firing schedule. *)

val minimum_states : t -> int
(** [minimum_firings + 1]: states on an ideal run, counting the
    initial state.  This is our analogue of the paper's "minimum number
    of states" (3130 for the mine pump); see DESIGN.md on the two
    accounting conventions. *)

val pp_inventory : Format.formatter -> t -> unit
(** Per-block node inventory (used to regenerate the Fig 1-4 structure
    tables). *)
