(* Analytic schedulability: sound quick-reject via necessary
   conditions on the task parameters, sound quick-accept via an EDF
   simulation replayed on the translated net.

   Everything here decides *before* any search runs, so the arithmetic
   must be honest on adversarial inputs: absolute times are computed
   with saturating operations (never wrap), and window enumerations
   are capped — evaluating fewer windows only weakens the reject, it
   never unsounds it. *)

module Spec = Ezrt_spec.Spec
module Task = Ezrt_spec.Task
module Message = Ezrt_spec.Message
module Translate = Ezrt_blocks.Translate
module Meaning = Ezrt_blocks.Meaning
module State = Ezrt_tpn.State

let sat_add = Spec.sat_add
let sat_mul = Spec.sat_mul

(* floor/ceil division for a possibly negative numerator, b > 0 *)
let fdiv a b = if a >= 0 then a / b else -((-a + b - 1) / b)
let cdiv a b = if a >= 0 then (a + b - 1) / b else -(-a / b)

(* --- witnesses ------------------------------------------------------- *)

type witness =
  | Negative_laxity of {
      task : string;
      instance : int;
      ready : int;
      wcet : int;
      deadline : int;
    }
  | Demand_overload of { t1 : int; t2 : int; demand : int; capacity : int }
  | Chain_overrun of {
      task : string;
      instance : int;
      chain : string list;
      earliest_finish : int;
      deadline : int;
    }
  | Exclusion_conflict of {
      task_a : string;
      instance_a : int;
      task_b : string;
      instance_b : int;
      forward_finish : int;
      deadline_b : int;
      backward_finish : int;
      deadline_a : int;
    }
  | Edf_overload of { task : string; instance : int; time : int }

let witness_kind = function
  | Negative_laxity _ -> "negative-laxity"
  | Demand_overload _ -> "demand-overload"
  | Chain_overrun _ -> "chain-overrun"
  | Exclusion_conflict _ -> "exclusion-conflict"
  | Edf_overload _ -> "edf-overload"

let witness_to_string = function
  | Negative_laxity { task; instance; ready; wcet; deadline } ->
    Printf.sprintf
      "task %s instance %d: window [%d, %d] holds %d < wcet %d" task instance
      ready deadline (deadline - ready) wcet
  | Demand_overload { t1; t2; demand; capacity } ->
    Printf.sprintf "demand %d > capacity %d in window [%d, %d]" demand
      capacity t1 t2
  | Chain_overrun { task; instance; chain; earliest_finish; deadline } ->
    Printf.sprintf
      "chain %s: earliest finish %d > deadline %d of %s instance %d"
      (String.concat " -> " chain)
      earliest_finish deadline task instance
  | Exclusion_conflict
      {
        task_a;
        instance_a;
        task_b;
        instance_b;
        forward_finish;
        deadline_b;
        backward_finish;
        deadline_a;
      } ->
    Printf.sprintf
      "exclusion %s#%d | %s#%d: %s first finishes %s by %d > %d, %s first \
       finishes %s by %d > %d"
      task_a instance_a task_b instance_b task_a task_b forward_finish
      deadline_b task_b task_a backward_finish deadline_a
  | Edf_overload { task; instance; time } ->
    Printf.sprintf
      "EDF (optimal here) leaves %s instance %d unfinished at its deadline %d"
      task instance time

type verdict =
  | Infeasible of witness
  | Feasible of (Ezrt_tpn.Pnet.transition_id * int) list
  | Unknown of string

let verdict_to_string = function
  | Infeasible w ->
    Printf.sprintf "infeasible (%s: %s)" (witness_kind w)
      (witness_to_string w)
  | Feasible actions ->
    Printf.sprintf "feasible (EDF certificate, %d firings)"
      (List.length actions)
  | Unknown why -> Printf.sprintf "unknown (%s)" why

(* --- absolute instance times ----------------------------------------- *)

let arrival (t : Task.t) k = sat_add t.Task.phase (sat_mul k t.Task.period)
let ready (t : Task.t) k = sat_add (arrival t k) t.Task.release

(* cyclic-executive semantics: every instance must also complete within
   the hyper-period (the net's [tcyc] kills any run that does not) *)
let eff_deadline ~h (t : Task.t) k = min (sat_add (arrival t k) t.Task.deadline) h

(* --- processor demand ------------------------------------------------ *)

(* Instances that must execute entirely inside [t1, t2]: ready >= t1
   and effective deadline <= t2.  Counted in closed form per task, so
   the cost is O(tasks) regardless of instance counts. *)
let demand_h spec ~h ~t1 ~t2 =
  List.fold_left
    (fun acc (t : Task.t) ->
      let n = Task.instances_in t h in
      if n = 0 then acc
      else begin
        let p = t.Task.period in
        let lo = max 0 (cdiv (t1 - t.Task.phase - t.Task.release) p) in
        let hi =
          if t2 >= h then n - 1
          else min (n - 1) (fdiv (t2 - t.Task.phase - t.Task.deadline) p)
        in
        let count = max 0 (hi - lo + 1) in
        sat_add acc (sat_mul count t.Task.wcet)
      end)
    0 spec.Spec.tasks

let demand spec ~t1 ~t2 = demand_h spec ~h:(Spec.hyperperiod spec) ~t1 ~t2

(* --- the relation graph (precedences + messages) --------------------- *)

type graph = {
  index_of : (string, int) Hashtbl.t;
  tasks : Task.t array;
  preds : (int * int) list array;  (** (predecessor, extra delay) *)
  topo : int list option;  (** None when the combined graph has a cycle *)
}

let relation_graph spec =
  let tasks = Array.of_list spec.Spec.tasks in
  let index_of = Hashtbl.create 16 in
  Array.iteri
    (fun i (t : Task.t) -> Hashtbl.replace index_of t.Task.id i)
    tasks;
  let n = Array.length tasks in
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  let edge a b extra =
    match (Hashtbl.find_opt index_of a, Hashtbl.find_opt index_of b) with
    | Some i, Some j ->
      preds.(j) <- (i, extra) :: preds.(j);
      succs.(i) <- j :: succs.(i)
    | _ -> ()
  in
  List.iter (fun (a, b) -> edge a b 0) spec.Spec.precedences;
  List.iter
    (fun (m : Message.t) ->
      edge m.Message.sender m.Message.receiver (Message.duration m))
    spec.Spec.messages;
  (* Kahn's algorithm over the tasks that have relations at all *)
  let indeg = Array.map List.length preds in
  let queue = Queue.create () in
  let involved = Array.make n false in
  Array.iteri
    (fun i _ ->
      if preds.(i) <> [] || succs.(i) <> [] then involved.(i) <- true)
    preds;
  Array.iteri
    (fun i d -> if involved.(i) && d = 0 then Queue.add i queue)
    indeg;
  let order = ref [] in
  let emitted = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order := i :: !order;
    incr emitted;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      succs.(i)
  done;
  let total_involved =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 involved
  in
  let topo = if !emitted = total_involved then Some (List.rev !order) else None in
  { index_of; tasks; preds; topo }

(* Earliest-finish bounds of instance [k] along the relation DAG: a
   task cannot start before its own ready time nor before every
   predecessor instance finished (plus the message delay), and its
   finish is at least start + wcet even under preemption (the units
   occupy disjoint time).  Returns per-task (earliest_finish,
   argmax predecessor) for chain recovery. *)
let chain_finishes g k =
  let n = Array.length g.tasks in
  let ef = Array.make n min_int in
  let via = Array.make n (-1) in
  (match g.topo with
  | None -> ()
  | Some order ->
    List.iter
      (fun i ->
        let t = g.tasks.(i) in
        let start = ref (ready t k) in
        List.iter
          (fun (j, extra) ->
            let cand = sat_add ef.(j) extra in
            if cand > !start then begin
              start := cand;
              via.(i) <- j
            end)
          g.preds.(i);
        ef.(i) <- sat_add !start t.Task.wcet)
      order);
  (ef, via)

(* --- quick-reject ---------------------------------------------------- *)

(* enumeration budgets: sound to lower, they only skip windows *)
let max_demand_pairs = 200_000
let max_time_points = 10_000
let max_chain_rows = 200_000
let max_exclusion_checks = 50_000

let laxity_reject ~h tasks =
  let witness (t : Task.t) k =
    let r = ready t k and d = eff_deadline ~h t k in
    if d - r < t.Task.wcet then
      Some
        (Negative_laxity
           {
             task = t.Task.name;
             instance = k;
             ready = r;
             wcet = t.Task.wcet;
             deadline = d;
           })
    else None
  in
  Array.fold_left
    (fun acc (t : Task.t) ->
      match acc with
      | Some _ -> acc
      | None -> (
        match witness t 0 with
        | Some _ as w -> w
        | None ->
          if h = max_int then None
          else
            (* the last instance is the one the horizon can clip *)
            let n = Task.instances_in t h in
            if n > 1 then witness t (n - 1) else None))
    None tasks

let demand_reject spec ~h tasks =
  let points f =
    let out = ref [] in
    let per_task =
      max 1 (max_time_points / max 1 (Array.length tasks))
    in
    Array.iter
      (fun (t : Task.t) ->
        let n = Task.instances_in t h in
        let stride = max 1 (cdiv n per_task) in
        let k = ref 0 in
        while !k < n do
          out := f t !k :: !out;
          k := !k + stride
        done;
        (* the clipped tail matters most, keep it exact *)
        if n > 0 then out := f t (n - 1) :: !out)
      tasks;
    List.sort_uniq compare !out
  in
  let t1s = points ready in
  let t1s = if List.mem 0 t1s then t1s else 0 :: t1s in
  let t2s =
    points (fun t k -> eff_deadline ~h t k) @ [ h ] |> List.sort_uniq compare
  in
  (* cap the pair count by thinning the start points (0 is kept) *)
  let t1s =
    let n1 = List.length t1s and n2 = List.length t2s in
    if n1 * n2 <= max_demand_pairs then t1s
    else begin
      let keep = max 1 (max_demand_pairs / n2) in
      let stride = max 1 (cdiv n1 keep) in
      List.filteri (fun i _ -> i mod stride = 0) t1s
    end
  in
  List.fold_left
    (fun acc t1 ->
      match acc with
      | Some _ -> acc
      | None ->
        List.fold_left
          (fun acc t2 ->
            match acc with
            | Some _ -> acc
            | None when t1 < t2 ->
              let d = demand_h spec ~h ~t1 ~t2 in
              if d > t2 - t1 then
                Some (Demand_overload { t1; t2; demand = d; capacity = t2 - t1 })
              else None
            | None -> None)
          None t2s)
    None t1s

let chain_reject spec ~h =
  let g = relation_graph spec in
  match g.topo with
  | None -> None  (* cyclic relation graph: out of this check's fragment *)
  | Some order when order <> [] ->
    let max_n =
      List.fold_left
        (fun acc i -> max acc (Task.instances_in g.tasks.(i) h))
        0 order
    in
    let rows = List.length order in
    let k_cap =
      if sat_mul max_n rows > max_chain_rows then max_chain_rows / max 1 rows
      else max_n
    in
    let result = ref None in
    let k = ref 0 in
    while !result = None && !k < k_cap do
      let ef, via = chain_finishes g !k in
      List.iter
        (fun i ->
          if !result = None then begin
            let t = g.tasks.(i) in
            if !k < Task.instances_in t h then begin
              let d = eff_deadline ~h t !k in
              if ef.(i) > d then begin
                let rec walk i acc =
                  let acc = g.tasks.(i).Task.name :: acc in
                  if via.(i) >= 0 then walk via.(i) acc else acc
                in
                result :=
                  Some
                    (Chain_overrun
                       {
                         task = t.Task.name;
                         instance = !k;
                         chain = walk i [];
                         earliest_finish = ef.(i);
                         deadline = d;
                       })
              end
            end
          end)
        order;
      incr k
    done;
    !result
  | Some _ -> None

(* Exclusion serialization: the validator keeps excluded instances'
   whole spans disjoint, so for any pair of instances either a runs
   entirely first or b does.  If neither order can meet the later
   deadline, the pair is a proof of infeasibility. *)
let exclusion_reject spec ~h =
  let tasks = Array.of_list spec.Spec.tasks in
  let index_of = Hashtbl.create 16 in
  Array.iteri
    (fun i (t : Task.t) -> Hashtbl.replace index_of t.Task.id i)
    tasks;
  List.fold_left
    (fun acc (aid, bid) ->
      match acc with
      | Some _ -> acc
      | None -> (
        match (Hashtbl.find_opt index_of aid, Hashtbl.find_opt index_of bid) with
        | Some ai, Some bi ->
          let a = tasks.(ai) and b = tasks.(bi) in
          let ca = a.Task.wcet and cb = b.Task.wcet in
          let na = Task.instances_in a h and nb = Task.instances_in b h in
          let budget = ref max_exclusion_checks in
          let found = ref None in
          let check j k =
            if !found = None && k >= 0 && k < nb && !budget > 0 then begin
              decr budget;
              let ra = ready a j and da = eff_deadline ~h a j in
              let rb = ready b k and db = eff_deadline ~h b k in
              let forward = sat_add ra (sat_add ca cb) in
              let backward = sat_add rb (sat_add cb ca) in
              if forward > db && backward > da then
                found :=
                  Some
                    (Exclusion_conflict
                       {
                         task_a = a.Task.name;
                         instance_a = j;
                         task_b = b.Task.name;
                         instance_b = k;
                         forward_finish = forward;
                         deadline_b = db;
                         backward_finish = backward;
                         deadline_a = da;
                       })
            end
          in
          let j = ref 0 in
          while !found = None && !j < na && !budget > 0 do
            (* only instances of b whose window is near a#j can make
               both orders fail; derive the k band, pad it, and always
               look at the clipped last instance *)
            let ra = ready a !j and da = eff_deadline ~h a !j in
            let x = sat_add ra (sat_add ca cb) in
            let y = da - ca - cb in
            let pb = b.Task.period in
            let k_hi = cdiv (x - b.Task.phase - b.Task.deadline) pb in
            let k_lo = fdiv (y - b.Task.phase - b.Task.release) pb in
            for k = max 0 (k_lo - 1) to min (nb - 1) (k_hi + 1) do
              check !j k
            done;
            check !j 0;
            check !j (nb - 1);
            incr j
          done;
          !found
        | _ -> None))
    None spec.Spec.exclusions

let quick_reject spec =
  let h = Spec.hyperperiod spec in
  let tasks = Array.of_list spec.Spec.tasks in
  match laxity_reject ~h tasks with
  | Some _ as w -> w
  | None ->
    if h = max_int then None  (* saturated horizon: windows mean nothing *)
    else (
      match demand_reject spec ~h tasks with
      | Some _ as w -> w
      | None -> (
        match chain_reject spec ~h with
        | Some _ as w -> w
        | None -> exclusion_reject spec ~h))

(* --- EDF quick-accept ------------------------------------------------ *)

let max_edf_work = 10_000_000

let independent spec =
  spec.Spec.precedences = [] && spec.Spec.exclusions = []
  && spec.Spec.messages = []

let accept_applicable spec =
  independent spec
  && List.for_all
       (fun (t : Task.t) ->
         t.Task.mode = Task.Preemptive && t.Task.wcet >= 1)
       spec.Spec.tasks
  && spec.Spec.tasks <> []
  &&
  let h = Spec.hyperperiod spec in
  h < max_int && sat_mul h (Spec.total_instances spec) <= max_edf_work

type edf_miss = { m_task : int; m_inst : int; m_time : int }

(* Unit-stepped EDF over the hyper-period.  EDF is optimal for
   independent jobs with release times and deadlines on a preemptive
   uniprocessor, so a miss here is a proof of infeasibility, and a
   clean run is a concrete schedule (the occupant per time unit). *)
let edf_sim tasks ~h =
  let acc = ref [] in
  Array.iteri
    (fun i (t : Task.t) ->
      for k = 0 to Task.instances_in t h - 1 do
        acc := (i, k, ready t k, eff_deadline ~h t k, t.Task.wcet) :: !acc
      done)
    tasks;
  let jobs = Array.of_list (List.rev !acc) in
  let m = Array.length jobs in
  let task_of = Array.map (fun (i, _, _, _, _) -> i) jobs in
  let inst_of = Array.map (fun (_, k, _, _, _) -> k) jobs in
  let ready_at = Array.map (fun (_, _, r, _, _) -> r) jobs in
  let dline = Array.map (fun (_, _, _, d, _) -> d) jobs in
  let rem = Array.map (fun (_, _, _, _, c) -> c) jobs in
  let occupant = Array.make h (-1) in
  let miss = ref None in
  let t = ref 0 in
  while !miss = None && !t < h do
    let best = ref (-1) in
    for j = 0 to m - 1 do
      if rem.(j) > 0 then
        if dline.(j) <= !t then begin
          if !miss = None then
            miss :=
              Some
                { m_task = task_of.(j); m_inst = inst_of.(j); m_time = dline.(j) }
        end
        else if ready_at.(j) <= !t then
          if
            !best < 0
            || (dline.(j), task_of.(j), inst_of.(j))
               < (dline.(!best), task_of.(!best), inst_of.(!best))
          then best := j
    done;
    if !miss = None && !best >= 0 then begin
      occupant.(!t) <- task_of.(!best);
      rem.(!best) <- rem.(!best) - 1
    end;
    incr t
  done;
  if !miss = None then
    (* stragglers whose effective deadline is the horizon itself *)
    for j = 0 to m - 1 do
      if rem.(j) > 0 && !miss = None then
        miss :=
          Some { m_task = task_of.(j); m_inst = inst_of.(j); m_time = dline.(j) }
    done;
  match !miss with Some m -> Error m | None -> Ok occupant

(* --- certificate construction by guided replay ----------------------- *)

(* Drive the incremental engine along the EDF timeline: administrative
   transitions fire at their earliest time, each Unit_grab fires at
   the next time unit EDF gave its task, and the deadline-miss /
   cycle-overrun transitions are never chosen.  Every firing is
   validated by the TPN semantics itself ([fire] raises on anything
   illegal), so a desync degrades to an error, never to a bogus
   certificate. *)
let guided_replay model occupant =
  let net = model.Translate.net in
  let meanings = model.Translate.meanings in
  let h = Array.length occupant in
  let e = State.Incremental.create net in
  let limit = Translate.minimum_firings model + 8 in
  let actions = ref [] in
  let exception Stuck of string in
  try
    let steps = ref 0 in
    while State.Incremental.tokens e model.Translate.final_place = 0 do
      if !steps > limit then raise (Stuck "firing-count limit exceeded");
      incr steps;
      let now = State.Incremental.now e in
      let best = ref None in
      let consider target rank tid =
        match !best with
        | Some (bt, br, btid) when (bt, br, btid) <= (target, rank, tid) -> ()
        | _ -> best := Some (target, rank, tid)
      in
      List.iter
        (fun tid ->
          match meanings.(tid) with
          | Meaning.Deadline_miss _ | Meaning.Cycle_overrun -> ()
          | Meaning.Grab _ | Meaning.Excl_grab _ ->
            (* non-preemptive / exclusion structure is outside the
               quick-accept fragment *)
            raise (Stuck "unexpected non-preemptive structure")
          | Meaning.Unit_grab i ->
            let u = ref now in
            while !u < h && occupant.(!u) <> i do incr u done;
            if !u < h then consider !u 1 tid
          | _ -> consider (now + State.Incremental.dlb e tid) 0 tid)
        (State.Incremental.fireable e);
      match !best with
      | None -> raise (Stuck "no admissible fireable transition")
      | Some (target, _, tid) ->
        let q = target - now in
        State.Incremental.fire e tid q;
        actions := (tid, q) :: !actions
    done;
    Ok (List.rev !actions)
  with
  | Stuck msg -> Error msg
  | Invalid_argument msg -> Error msg

(* --- witness re-evaluation ------------------------------------------- *)

let witness_holds spec w =
  let h = Spec.hyperperiod spec in
  let by_name name =
    List.find_opt
      (fun (t : Task.t) -> String.equal t.Task.name name)
      spec.Spec.tasks
  in
  match w with
  | Negative_laxity { task; instance; ready = r; wcet; deadline } -> (
    match by_name task with
    | Some t ->
      instance >= 0
      && instance < Task.instances_in t h
      && ready t instance = r
      && eff_deadline ~h t instance = deadline
      && t.Task.wcet = wcet
      && deadline - r < wcet
    | None -> false)
  | Demand_overload { t1; t2; demand = dm; capacity } ->
    capacity = t2 - t1 && demand_h spec ~h ~t1 ~t2 = dm && dm > capacity
  | Chain_overrun { task; instance; chain = _; earliest_finish; deadline } -> (
    match by_name task with
    | Some t -> (
      let g = relation_graph spec in
      match Hashtbl.find_opt g.index_of t.Task.id with
      | Some i when g.topo <> None && instance >= 0
                    && instance < Task.instances_in t h ->
        let ef, _ = chain_finishes g instance in
        ef.(i) = earliest_finish
        && eff_deadline ~h t instance = deadline
        && earliest_finish > deadline
      | _ -> false)
    | None -> false)
  | Exclusion_conflict
      {
        task_a;
        instance_a;
        task_b;
        instance_b;
        forward_finish;
        deadline_b;
        backward_finish;
        deadline_a;
      } -> (
    match (by_name task_a, by_name task_b) with
    | Some a, Some b ->
      Spec.excludes spec a.Task.id b.Task.id
      && instance_a >= 0
      && instance_a < Task.instances_in a h
      && instance_b >= 0
      && instance_b < Task.instances_in b h
      && forward_finish
         = sat_add (ready a instance_a) (sat_add a.Task.wcet b.Task.wcet)
      && backward_finish
         = sat_add (ready b instance_b) (sat_add b.Task.wcet a.Task.wcet)
      && deadline_a = eff_deadline ~h a instance_a
      && deadline_b = eff_deadline ~h b instance_b
      && forward_finish > deadline_b
      && backward_finish > deadline_a
    | _ -> false)
  | Edf_overload { task; instance; time } -> (
    accept_applicable spec
    &&
    let tasks = Array.of_list spec.Spec.tasks in
    match edf_sim tasks ~h with
    | Error m ->
      tasks.(m.m_task).Task.name = task
      && m.m_inst = instance && m.m_time = time
    | Ok _ -> false)

(* --- the analyzer ----------------------------------------------------- *)

let count_verdict verdict =
  Ezrt_obs.Metrics.incr
    (Ezrt_obs.Metrics.counter ~help:"Analytic schedulability verdicts"
       ~labels:[ ("verdict", verdict) ]
       "ezrt_analysis_verdicts_total")

let count_reject w =
  Ezrt_obs.Metrics.incr
    (Ezrt_obs.Metrics.counter
       ~help:"Analytic quick-rejects by violated condition"
       ~labels:[ ("condition", witness_kind w) ]
       "ezrt_analysis_rejects_total")

let analyze model =
  let spec = model.Translate.spec in
  Ezrt_obs.Trace.begin_span ~cat:"analysis" "analysis";
  let verdict =
    match quick_reject spec with
    | Some w -> Infeasible w
    | None ->
      if accept_applicable spec then (
        match edf_sim model.Translate.tasks ~h:model.Translate.horizon with
        | Error m ->
          Infeasible
            (Edf_overload
               {
                 task = model.Translate.tasks.(m.m_task).Task.name;
                 instance = m.m_inst;
                 time = m.m_time;
               })
        | Ok occupant -> (
          match guided_replay model occupant with
          | Ok actions -> Feasible actions
          | Error why -> Unknown ("EDF certificate replay failed: " ^ why)))
      else
        Unknown
          "outside the analytic fragment (relations, messages, \
           non-preemptive tasks or an oversized hyper-period)"
  in
  (match verdict with
  | Infeasible w ->
    count_verdict "infeasible";
    count_reject w
  | Feasible _ -> count_verdict "feasible"
  | Unknown _ -> count_verdict "unknown");
  Ezrt_obs.Trace.end_span ~cat:"analysis"
    ~args:
      [
        ( "verdict",
          Ezrt_obs.Trace.Str
            (match verdict with
            | Infeasible _ -> "infeasible"
            | Feasible _ -> "feasible"
            | Unknown _ -> "unknown") );
      ]
    "analysis";
  verdict
