(** Analytic schedulability verdicts: a sound quick-reject /
    quick-accept pre-pass computed from the task parameters, before
    any TLTS or state-class search runs.

    The analyzer is three-valued and every decisive answer carries
    machine-checkable evidence:

    - {b quick-reject} evaluates necessary conditions — per-instance
      laxity, the processor demand bound over deadline windows of the
      hyper-period, precedence/message-chain cumulative response
      bounds, exclusion-pair busy-window interference, and (on the
      independent preemptive fragment) an exact EDF simulation.  A
      violated condition yields a {!witness}: the violated inequality
      with its numbers, re-checkable by {!witness_holds}.
    - {b quick-accept} runs an EDF simulation over the hyper-period
      for independent preemptive task sets and, when it meets every
      deadline, replays it on the translated time Petri net to emit an
      actual firing schedule.  Acceptance is never taken on faith: the
      caller must feed the actions through
      [Ezrt_sched.Schedule.of_actions] and [Validator.certify].
    - anything outside the analytic fragment is {!Unknown} and decides
      nothing.

    Soundness notes are in docs/ANALYSIS.md; the differential fuzzer
    cross-checks every verdict against all search engines
    ([Ezrt_gen.Differ]). *)

module Spec = Ezrt_spec.Spec

type witness =
  | Negative_laxity of {
      task : string;
      instance : int;
      ready : int;  (** earliest start: phase + k·period + release *)
      wcet : int;
      deadline : int;  (** effective: min(arrival + d, hyper-period) *)
    }
      (** [deadline - ready < wcet]: the instance cannot fit its own
          window, independent of any interference. *)
  | Demand_overload of {
      t1 : int;
      t2 : int;
      demand : int;  (** {!demand}[ spec ~t1 ~t2] *)
      capacity : int;  (** [t2 - t1] *)
    }
      (** [demand > capacity]: the work that must execute entirely
          within [\[t1, t2\]] exceeds the interval's length. *)
  | Chain_overrun of {
      task : string;
      instance : int;
      chain : string list;  (** task names, source to sink *)
      earliest_finish : int;
      deadline : int;  (** effective deadline of the sink instance *)
    }
      (** Cumulative earliest finish along a precedence/message chain
          exceeds the last task's deadline. *)
  | Exclusion_conflict of {
      task_a : string;
      instance_a : int;
      task_b : string;
      instance_b : int;
      forward_finish : int;  (** ready_a + c_a + c_b *)
      deadline_b : int;
      backward_finish : int;  (** ready_b + c_b + c_a *)
      deadline_a : int;
    }
      (** The exclusion serializes the two instances, and neither
          order fits: [forward_finish > deadline_b] and
          [backward_finish > deadline_a]. *)
  | Edf_overload of { task : string; instance : int; time : int }
      (** The EDF simulation (optimal on independent preemptive
          uniprocessor job sets) left the instance unfinished at its
          effective deadline — no schedule exists. *)

val witness_kind : witness -> string
(** Stable slug for metric labels: [negative-laxity],
    [demand-overload], [chain-overrun], [exclusion-conflict] or
    [edf-overload]. *)

val witness_to_string : witness -> string
(** The violated inequality with its numbers, one line. *)

val witness_holds : Spec.t -> witness -> bool
(** Re-derives the witness from the specification and re-evaluates the
    inequality — the machine check that the evidence is real.  A
    witness produced by {!quick_reject} or {!analyze} on the same
    specification always holds; the differ flags any that does not. *)

type verdict =
  | Infeasible of witness
  | Feasible of (Ezrt_tpn.Pnet.transition_id * int) list
      (** A candidate firing schedule (relative [(t, q)] actions) of
          the translated net, built by replaying the EDF timeline.
          Callers must certify it ([Schedule.of_actions] +
          [Validator.certify]) before trusting it. *)
  | Unknown of string

val verdict_to_string : verdict -> string

val demand : Spec.t -> t1:int -> t2:int -> int
(** Processor demand of the interval [\[t1, t2\]]: the summed WCET of
    the instances that must execute entirely inside it — ready time
    ([phase + k·period + release]) at or after [t1] and effective
    deadline ([min(arrival + deadline, H)], cyclic-executive
    semantics) at or before [t2].  Monotone in [t2], antitone in
    [t1].  Saturates instead of wrapping on adversarial parameters. *)

val quick_reject : Spec.t -> witness option
(** The cheapest violated necessary condition, if any — checked in
    order: laxity, demand windows, chains, exclusion pairs.  [None]
    decides nothing.  The spec is assumed well-formed
    ([Validate.check] clean); evaluation is capped on astronomically
    large instance counts (fewer windows checked — still sound). *)

val accept_applicable : Spec.t -> bool
(** Whether the quick-accept fragment applies: every task preemptive,
    no precedences, exclusions or messages, and a hyper-period small
    enough to simulate. *)

val analyze : Ezrt_blocks.Translate.t -> verdict
(** {!quick_reject}, then — on the {!accept_applicable} fragment — the
    EDF simulation: a deadline miss is a sound {!Infeasible}
    ({!Edf_overload}), a feasible timeline is replayed on the net into
    a {!Feasible} certificate; any replay surprise degrades to
    {!Unknown}.

    Observability: wraps itself in an [analysis] span and bumps
    [ezrt_analysis_verdicts_total] (label [verdict]) and, on rejects,
    [ezrt_analysis_rejects_total] (label [condition]). *)
