(** Priority-driven runtime scheduling simulator — the comparator the
    pre-runtime approach is motivated against (Mok's classic result:
    with precedence and exclusion relations, optimal runtime scheduling
    is intractable and priority-driven schedulers miss deadlines that a
    pre-runtime schedule meets).

    The simulator steps one time unit at a time over the hyper-period:
    jobs arrive periodically, the highest-priority eligible job runs,
    non-preemptive jobs run to completion once started, exclusion
    blocks an instance from starting while an excluded instance is in
    progress, and precedence/messages gate readiness instance-wise. *)

type policy =
  | Edf  (** earliest absolute deadline first *)
  | Rm  (** rate monotonic *)
  | Dm  (** deadline monotonic *)

val policy_to_string : policy -> string
val all_policies : (string * policy) list

type miss = { task : int; instance : int; time : int }

type result = {
  feasible : bool;
  first_miss : miss option;
  segments : Ezrt_sched.Timeline.segment list;
      (** execution up to the first miss (or the whole hyper-period) *)
  preemptions : int;
}

type fault = {
  f_task : int;  (** task index *)
  f_instance : int;
  f_extra : int;  (** execution-time overrun beyond the WCET *)
}

val any_feasible :
  ?policies:policy list -> Ezrt_spec.Spec.t -> (policy * result) option
(** The first policy (default: EDF, RM, DM in order) whose simulation
    meets every deadline, with its result.  A feasible runtime
    simulation is a constructive witness that the specification is
    schedulable, which the differential fuzzer holds against
    [Infeasible] verdicts of the exhaustive engines. *)

val simulate : ?faults:fault list -> policy -> Ezrt_spec.Spec.t -> result
(** Raises [Failure] when the specification does not validate.

    [faults] inject execution-time overruns; in priority-driven
    scheduling an overrun steals processor time from other jobs, so —
    unlike with a pre-runtime table ({!Ezrt_runtime.Vm.isolation_check})
    — misses can cascade onto healthy tasks. *)
