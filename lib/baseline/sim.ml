module Spec = Ezrt_spec.Spec
module Task = Ezrt_spec.Task
module Message = Ezrt_spec.Message
module Validate = Ezrt_spec.Validate
module Timeline = Ezrt_sched.Timeline

type policy =
  | Edf
  | Rm
  | Dm

let policy_to_string = function Edf -> "edf" | Rm -> "rm" | Dm -> "dm"
let all_policies = [ ("edf", Edf); ("rm", Rm); ("dm", Dm) ]

type miss = { task : int; instance : int; time : int }

type result = {
  feasible : bool;
  first_miss : miss option;
  segments : Timeline.segment list;
  preemptions : int;
}

type fault = {
  f_task : int;
  f_instance : int;
  f_extra : int;
}

type job = {
  j_task : int;
  j_instance : int;
  j_deadline : int;  (* absolute *)
  mutable j_remaining : int;
  mutable j_started : bool;
}

let simulate ?(faults = []) policy spec =
  Validate.check_exn spec;
  let tasks = Array.of_list spec.Spec.tasks in
  let n = Array.length tasks in
  let horizon = Spec.hyperperiod spec in
  let index_of_id id =
    let rec go i =
      if i >= n then raise Not_found
      else if String.equal tasks.(i).Task.id id then i
      else go (i + 1)
    in
    go 0
  in
  let predecessors = Array.make n [] in
  List.iter
    (fun (a, b) ->
      let ia = index_of_id a and ib = index_of_id b in
      predecessors.(ib) <- (ia, 0) :: predecessors.(ib))
    spec.Spec.precedences;
  List.iter
    (fun (m : Message.t) ->
      let ia = index_of_id m.Message.sender
      and ib = index_of_id m.Message.receiver in
      predecessors.(ib) <- (ia, Message.duration m) :: predecessors.(ib))
    spec.Spec.messages;
  let excluded = Array.make_matrix n n false in
  List.iter
    (fun (a, b) ->
      let ia = index_of_id a and ib = index_of_id b in
      excluded.(ia).(ib) <- true;
      excluded.(ib).(ia) <- true)
    spec.Spec.exclusions;
  (* completion_time.(i) holds per finished instance its completion
     instant, used for precedence/message gating. *)
  let completion_time = Array.make n [||] in
  Array.iteri
    (fun i task ->
      completion_time.(i) <- Array.make (Task.instances_in task horizon) (-1))
    tasks;
  let jobs : job list ref = ref [] in
  let segments = ref [] in
  let preemptions = ref 0 in
  let first_miss = ref None in
  let emitted_parts = Hashtbl.create 32 in
  let last_running = ref None in
  let open_segment = ref None in
  let close_segment time =
    match !open_segment with
    | None -> ()
    | Some (job, start) ->
      let parts =
        Option.value
          (Hashtbl.find_opt emitted_parts (job.j_task, job.j_instance))
          ~default:0
      in
      Hashtbl.replace emitted_parts (job.j_task, job.j_instance) (parts + 1);
      segments :=
        {
          Timeline.task = job.j_task;
          instance = job.j_instance;
          start;
          finish = time;
          resumed = parts > 0;
        }
        :: !segments;
      open_segment := None
  in
  let priority_key job =
    match policy with
    | Edf -> job.j_deadline
    | Rm -> tasks.(job.j_task).Task.period
    | Dm -> tasks.(job.j_task).Task.deadline
  in
  let ready time job =
    job.j_remaining > 0
    && List.for_all
         (fun (pred, extra) ->
           let done_at = completion_time.(pred).(job.j_instance) in
           done_at >= 0 && done_at + extra <= time)
         predecessors.(job.j_task)
  in
  (* A job may occupy the CPU at [time] if it is ready and neither the
     exclusion rule nor non-preemptive progress forbids it. *)
  let eligible time job =
    ready time job
    && (job.j_started
        || not
             (List.exists
                (fun other ->
                  other != job && other.j_started && other.j_remaining > 0
                  && excluded.(other.j_task).(job.j_task))
                !jobs))
  in
  let t = ref 0 in
  let stop = ref false in
  while (not !stop) && !t < horizon do
    let time = !t in
    (* arrivals *)
    Array.iteri
      (fun i task ->
        let count = Task.instances_in task horizon in
        let k = (time - task.Task.phase) / task.Task.period in
        if
          time >= task.Task.phase
          && (time - task.Task.phase) mod task.Task.period = 0
          && k < count
        then
          let extra =
            List.fold_left
              (fun acc f ->
                if f.f_task = i && f.f_instance = k then acc + f.f_extra
                else acc)
              0 faults
          in
          jobs :=
            {
              j_task = i;
              j_instance = k;
              j_deadline = time + task.Task.deadline;
              j_remaining = task.Task.wcet + extra;
              j_started = false;
            }
            :: !jobs)
      tasks;
    (* deadline misses: a live job whose remaining work no longer fits *)
    (match
       List.find_opt
         (fun job -> job.j_remaining > 0 && time + job.j_remaining > job.j_deadline)
         !jobs
     with
    | Some job ->
      first_miss :=
        Some { task = job.j_task; instance = job.j_instance; time };
      stop := true
    | None -> ());
    if not !stop then begin
      (* release-offset handling: a job is invisible before r *)
      let visible job =
        let task = tasks.(job.j_task) in
        let arrival = task.Task.phase + (job.j_instance * task.Task.period) in
        time >= arrival + task.Task.release
      in
      let candidates = List.filter (fun j -> visible j && eligible time j) !jobs in
      let running_np =
        List.find_opt
          (fun j ->
            j.j_started && j.j_remaining > 0
            && tasks.(j.j_task).Task.mode = Task.Non_preemptive)
          !jobs
      in
      let chosen =
        match running_np with
        | Some job -> Some job  (* a started NP job cannot be preempted *)
        | None ->
          List.fold_left
            (fun best job ->
              match best with
              | None -> Some job
              | Some b ->
                if
                  compare
                    (priority_key job, job.j_task, job.j_instance)
                    (priority_key b, b.j_task, b.j_instance)
                  < 0
                then Some job
                else Some b)
            None candidates
      in
      (match chosen with
      | None ->
        close_segment time;
        last_running := None
      | Some job ->
        (match !last_running with
        | Some prev when prev == job -> ()
        | Some prev ->
          close_segment time;
          if prev.j_remaining > 0 then incr preemptions
        | None -> ());
        if !open_segment = None then open_segment := Some (job, time);
        job.j_started <- true;
        job.j_remaining <- job.j_remaining - 1;
        last_running := Some job;
        if job.j_remaining = 0 then begin
          completion_time.(job.j_task).(job.j_instance) <- time + 1;
          close_segment (time + 1);
          last_running := None
        end);
      incr t
    end
  done;
  if not !stop then begin
    close_segment horizon;
    (* cyclic-executive semantics: work left at the horizon cannot be
       carried into the next cycle *)
    match List.find_opt (fun job -> job.j_remaining > 0) !jobs with
    | Some job ->
      first_miss :=
        Some { task = job.j_task; instance = job.j_instance; time = horizon }
    | None -> ()
  end;
  {
    feasible = !first_miss = None;
    first_miss = !first_miss;
    segments = List.rev !segments;
    preemptions = !preemptions;
  }

let any_feasible ?(policies = List.map snd all_policies) spec =
  List.find_map
    (fun policy ->
      let result = simulate policy spec in
      if result.feasible then Some (policy, result) else None)
    policies
