(** The whole specification (metamodel root EzRTSpec, Fig 5): tasks,
    processors, messages and inter-task relations, plus the dispatcher
    overhead switch. *)

type t = {
  name : string;
  disp_overhead : int;
      (** Dispatcher/context-switch cost in time units; the metamodel's
          [dispOveh] boolean generalized to the actual cost (0 = the
          boolean off). *)
  tasks : Task.t list;
  processors : Processor.t list;
  messages : Message.t list;
  precedences : (string * string) list;
      (** [(a, b)] task ids: a PRECEDES b. *)
  exclusions : (string * string) list;
      (** Unordered task-id pairs; EXCLUDES is symmetric (paper §3.2),
          pairs are kept normalized with the lexicographically smaller
          id first. *)
}

val make :
  ?disp_overhead:int ->
  ?processors:Processor.t list ->
  ?messages:Message.t list ->
  ?precedences:(string * string) list ->
  ?exclusions:(string * string) list ->
  name:string ->
  tasks:Task.t list ->
  unit ->
  t
(** [processors] defaults to the single [cpu0]; exclusion pairs are
    normalized and deduplicated. *)

val normalize_exclusion : string * string -> string * string

val find_task : t -> string -> Task.t option
(** Lookup by task identifier. *)

val find_task_by_name : t -> string -> Task.t option
val task_ids : t -> string list

val sat_add : int -> int -> int
(** Saturating addition on non-negative operands: [max_int] instead of
    wrapping.  Shared by the workload arithmetic ({!hyperperiod},
    {!Stats}) and the analytic pre-pass ([Ezrt_analysis]). *)

val sat_mul : int -> int -> int
(** Saturating multiplication on non-negative operands. *)

val hyperperiod : t -> int
(** LCM of the task periods — the schedule period [PS] (paper §3.3).
    Saturates to [max_int] on adversarial period sets instead of
    wrapping (check [hyperperiod spec = max_int] to detect).  Raises
    [Invalid_argument] on an empty task list or a non-positive
    period. *)

val instance_counts : t -> (string * int) list
(** [(task id, N(ti))] over the hyperperiod. *)

val total_instances : t -> int
(** The paper's "tasks' instances" count (782 for the mine pump);
    saturating, like {!hyperperiod}. *)

val utilization : t -> float
(** Processor utilization [sum ci / pi]; a value above 1.0 is
    structurally infeasible on one processor. *)

val drop_task : t -> string -> t
(** Remove the task with the given id together with every precedence,
    exclusion and message involving it — the primitive the
    counterexample shrinker reduces with. *)

val map_task : t -> string -> (Task.t -> Task.t) -> t
(** Rewrite one task in place (by id), leaving the rest of the
    specification untouched. *)

val excluded_pairs : t -> (string * string) list
val precedes : t -> string -> string -> bool
val excludes : t -> string -> string -> bool

val pp : Format.formatter -> t -> unit
