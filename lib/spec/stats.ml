type task_row = {
  name : string;
  utilization : float;
  density : float;
  instances : int;
  laxity : int;
}

type t = {
  tasks : task_row list;
  total_utilization : float;
  total_density : float;
  hyperperiod : int;
  total_instances : int;
  busy_time : int;
  harmonic : bool;
  period_classes : (int * int) list;
  min_laxity : int;
}

let compute spec =
  let horizon = Spec.hyperperiod spec in
  let tasks =
    List.map
      (fun (task : Task.t) ->
        let c = float_of_int task.Task.wcet in
        {
          name = task.Task.name;
          utilization = c /. float_of_int task.Task.period;
          density = c /. float_of_int (min task.Task.deadline task.Task.period);
          instances = Task.instances_in task horizon;
          laxity = task.Task.deadline - task.Task.wcet - task.Task.release;
        })
      spec.Spec.tasks
  in
  let periods =
    List.sort_uniq compare
      (List.map (fun (t : Task.t) -> t.Task.period) spec.Spec.tasks)
  in
  let period_classes =
    List.map
      (fun p ->
        ( p,
          List.length
            (List.filter
               (fun (t : Task.t) -> t.Task.period = p)
               spec.Spec.tasks) ))
      periods
  in
  let harmonic =
    (* sorted periods: harmonic iff each divides the next *)
    let rec chain = function
      | a :: (b :: _ as rest) -> b mod a = 0 && chain rest
      | [ _ ] | [] -> true
    in
    chain periods
  in
  {
    tasks;
    total_utilization = Spec.utilization spec;
    total_density = List.fold_left (fun acc r -> acc +. r.density) 0.0 tasks;
    hyperperiod = horizon;
    total_instances = Spec.total_instances spec;
    busy_time =
      (* instance counts on a saturated horizon are astronomical:
         saturate rather than wrap into a negative busy time *)
      List.fold_left
        (fun acc (t : Task.t) ->
          Spec.sat_add acc
            (Spec.sat_mul (Task.instances_in t horizon) t.Task.wcet))
        0 spec.Spec.tasks;
    harmonic;
    period_classes;
    min_laxity = List.fold_left (fun acc r -> min acc r.laxity) max_int tasks;
  }

let pp fmt s =
  Format.fprintf fmt
    "U = %.3f, density = %.3f, H = %d, %d instances, busy %d/%d (%.1f%%), \
     %s periods %s, min laxity %d@."
    s.total_utilization s.total_density s.hyperperiod s.total_instances
    s.busy_time s.hyperperiod
    (100.0 *. float_of_int s.busy_time /. float_of_int s.hyperperiod)
    (if s.harmonic then "harmonic" else "non-harmonic")
    (String.concat ", "
       (List.map
          (fun (p, n) -> Printf.sprintf "%dx%d" n p)
          s.period_classes))
    s.min_laxity;
  Format.fprintf fmt "%-10s %7s %8s %9s %7s@." "task" "util" "density"
    "instances" "laxity";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-10s %7.3f %8.3f %9d %7d@." r.name r.utilization
        r.density r.instances r.laxity)
    s.tasks
