(** Workload statistics for specifications — the numbers a real-time
    engineer reads before synthesis.

    All quantities are derived purely from the task parameters; they
    bound or characterize the search problem without running it. *)

type task_row = {
  name : string;
  utilization : float;  (** c / p *)
  density : float;  (** c / min(d, p): > utilization for d < p *)
  instances : int;  (** over the hyper-period *)
  laxity : int;  (** d - c - r: scheduling slack per instance *)
}

type t = {
  tasks : task_row list;
  total_utilization : float;
  total_density : float;
      (** a total density <= 1 makes EDF feasible for independent
          preemptive tasks; > 1 decides nothing *)
  hyperperiod : int;
  total_instances : int;
  busy_time : int;
      (** sum of instances x wcet; saturates at [max_int] (with
          {!Spec.sat_add}/{!Spec.sat_mul}) instead of wrapping on
          adversarial period sets *)
  harmonic : bool;
      (** every period pair divides one another — the case where the
          Liu-Layland bound reaches 1.0 *)
  period_classes : (int * int) list;
      (** distinct periods with their task counts, ascending *)
  min_laxity : int;
}

val compute : Spec.t -> t
(** Raises [Invalid_argument] on an empty task list (like
    {!Spec.hyperperiod}). *)

val pp : Format.formatter -> t -> unit
