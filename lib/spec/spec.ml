type t = {
  name : string;
  disp_overhead : int;
  tasks : Task.t list;
  processors : Processor.t list;
  messages : Message.t list;
  precedences : (string * string) list;
  exclusions : (string * string) list;
}

let normalize_exclusion (a, b) = if String.compare a b <= 0 then (a, b) else (b, a)

let make ?(disp_overhead = 0) ?processors ?(messages = [])
    ?(precedences = []) ?(exclusions = []) ~name ~tasks () =
  let processors =
    match processors with
    | Some ps -> ps
    | None -> [ Processor.make "cpu0" ]
  in
  let exclusions =
    List.sort_uniq compare (List.map normalize_exclusion exclusions)
  in
  { name; disp_overhead; tasks; processors; messages; precedences; exclusions }

let find_task spec id =
  List.find_opt (fun (t : Task.t) -> String.equal t.Task.id id) spec.tasks

let find_task_by_name spec name =
  List.find_opt (fun (t : Task.t) -> String.equal t.Task.name name) spec.tasks

let task_ids spec = List.map (fun (t : Task.t) -> t.Task.id) spec.tasks

(* Saturating arithmetic on non-negative operands: adversarial period
   sets (large coprime periods) make the hyper-period and the derived
   instance counts exceed [max_int], and a silently wrapped negative
   horizon would poison every downstream consumer.  Saturating to
   [max_int] keeps all comparisons honest and is detectable
   ([hyperperiod spec = max_int]). *)
let sat_add a b = if a > max_int - b then max_int else a + b

let sat_mul a b =
  if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let lcm a b =
  if a = max_int || b = max_int then max_int else sat_mul (a / gcd a b) b

let hyperperiod spec =
  match spec.tasks with
  | [] -> invalid_arg "Spec.hyperperiod: no tasks"
  | tasks ->
    List.fold_left
      (fun acc (t : Task.t) ->
        if t.Task.period <= 0 then
          invalid_arg
            (Printf.sprintf "Spec.hyperperiod: task %s has period %d"
               t.Task.name t.Task.period)
        else lcm acc t.Task.period)
      1 tasks

let instance_counts spec =
  let horizon = hyperperiod spec in
  List.map
    (fun (t : Task.t) -> (t.Task.id, Task.instances_in t horizon))
    spec.tasks

let total_instances spec =
  List.fold_left (fun acc (_, n) -> sat_add acc n) 0 (instance_counts spec)

let utilization spec =
  List.fold_left
    (fun acc (t : Task.t) ->
      acc +. (float_of_int t.Task.wcet /. float_of_int t.Task.period))
    0.0 spec.tasks

let drop_task spec id =
  let keeps_pair (a, b) = not (String.equal a id || String.equal b id) in
  {
    spec with
    tasks = List.filter (fun (t : Task.t) -> not (String.equal t.Task.id id)) spec.tasks;
    precedences = List.filter keeps_pair spec.precedences;
    exclusions = List.filter keeps_pair spec.exclusions;
    messages =
      List.filter
        (fun (m : Message.t) ->
          keeps_pair (m.Message.sender, m.Message.receiver))
        spec.messages;
  }

let map_task spec id f =
  {
    spec with
    tasks =
      List.map
        (fun (t : Task.t) -> if String.equal t.Task.id id then f t else t)
        spec.tasks;
  }

let excluded_pairs spec = spec.exclusions

let precedes spec a b =
  List.exists (fun (x, y) -> String.equal x a && String.equal y b)
    spec.precedences

let excludes spec a b =
  let pair = normalize_exclusion (a, b) in
  List.exists (fun p -> p = pair) spec.exclusions

let pp fmt spec =
  Format.fprintf fmt "spec %s: %d tasks, H=%d, %d instances, U=%.3f" spec.name
    (List.length spec.tasks) (hyperperiod spec) (total_instances spec)
    (utilization spec)
