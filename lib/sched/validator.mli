(** Independent check of a synthesized timeline against the
    specification.

    This deliberately does not look at the Petri net: it re-derives
    every timing constraint from the task parameters and relations, so
    that a bug in the block library or in the search cannot vouch for
    itself. *)

type violation =
  | Wrong_instance_count of string * int * int  (** task, expected, got *)
  | Wrong_amount of string * int * int * int
      (** task, instance, expected WCET, executed *)
  | Started_before_release of string * int * int * int
      (** task, instance, earliest legal start, actual *)
  | Missed_deadline of string * int * int * int
      (** task, instance, deadline, completion *)
  | Fragmented_non_preemptive of string * int
  | Processor_overlap of string * string * int
      (** two segments hold the processor at the same instant *)
  | Precedence_violated of string * string * int
      (** pred, succ, instance *)
  | Exclusion_interleaved of string * string * int
      (** the instance spans of an excluded pair overlap; time given *)
  | Message_too_early of string * int
      (** receiver started before the message could be delivered *)

val violation_to_string : violation -> string

val check :
  Ezrt_blocks.Translate.t -> Timeline.segment list -> (unit, violation list) result

val check_exn : Ezrt_blocks.Translate.t -> Timeline.segment list -> unit
(** Raises [Failure] listing the violations. *)

(** Full certification of a synthesized firing schedule: replay it
    through the TPN semantics, require the final marking, derive the
    timeline and run {!check}.  This is the one gate every engine's
    output goes through in the differential fuzzer. *)

type certification_failure =
  | Replay_error of string
      (** some step is illegal under the firing rule, or the timeline
          cannot be derived *)
  | Wrong_final_marking
  | Violations of violation list

val certification_failure_to_string : certification_failure -> string

val certify :
  Ezrt_blocks.Translate.t ->
  Schedule.t ->
  (Timeline.segment list, certification_failure) result
