(** Work-stealing parallel search over the dense-time class graph.

    The class-graph analogue of {!Par_search}: N domains expand
    disjoint subtrees of the same class graph, each worker owning a
    {!Deque} of unexpanded classes (LIFO for the owner, so a lone
    worker explores exactly {!Class_search.find_schedule}'s order;
    idle workers steal the shallowest half of a victim's deque).
    Pruning — exact duplicates and inclusion subsumption — is shared
    through one {!Ezrt_tpn.Class_store}, so each canonical class is
    expanded at most once globally.

    The feasibility verdict is deterministic and, with [domains = 1],
    the outcome is identical to the sequential engine's; with more
    domains the specific schedule may differ because subtree
    completion order depends on the race — the same contract as the
    discrete parallel engine. *)

type t = {
  outcome : (Schedule.t, Class_search.failure) result;
  metrics : Class_search.metrics;
  domains_used : int;  (** workers that expanded or stole at least once *)
  steals : int;
  store : Ezrt_tpn.Class_store.stats;
}

val find_schedule :
  ?max_stored:int ->
  ?subsume:bool ->
  ?por:bool ->
  ?domains:int ->
  ?cancel:(unit -> bool) ->
  Ezrt_blocks.Translate.t ->
  t
(** [max_stored] defaults to 500_000; [subsume] (default [true]) is
    gated on {!Class_search.subsumption_applicable}; [por] (default
    [true]) enables the class-level stubborn-set reduction shared with
    {!Class_search}; [domains] defaults to
    [max 2 (recommended_domain_count - 1)].  [cancel] is polled by
    worker 0 at every expansion. *)
