type 'a t = {
  mutable buf : 'a array;
  mutable head : int;  (* bottom: oldest / shallowest *)
  mutable len : int;
  lock : Mutex.t;
  dummy : 'a;
}

let create dummy =
  { buf = Array.make 64 dummy; head = 0; len = 0; lock = Mutex.create (); dummy }

let grow q =
  let cap = Array.length q.buf in
  let bigger = Array.make (2 * cap) q.dummy in
  for i = 0 to q.len - 1 do
    bigger.(i) <- q.buf.((q.head + i) mod cap)
  done;
  q.buf <- bigger;
  q.head <- 0

let push_top q x =
  Mutex.lock q.lock;
  if q.len = Array.length q.buf then grow q;
  q.buf.((q.head + q.len) mod Array.length q.buf) <- x;
  q.len <- q.len + 1;
  Mutex.unlock q.lock

let push_list q xs =
  Mutex.lock q.lock;
  List.iter
    (fun x ->
      if q.len = Array.length q.buf then grow q;
      q.buf.((q.head + q.len) mod Array.length q.buf) <- x;
      q.len <- q.len + 1)
    xs;
  Mutex.unlock q.lock

let pop_top q =
  Mutex.lock q.lock;
  let r =
    if q.len = 0 then None
    else begin
      q.len <- q.len - 1;
      let i = (q.head + q.len) mod Array.length q.buf in
      let x = q.buf.(i) in
      q.buf.(i) <- q.dummy;
      Some x
    end
  in
  Mutex.unlock q.lock;
  r

let length q = q.len

let steal_half ?limit q =
  Mutex.lock q.lock;
  let k = (q.len + 1) / 2 in
  let k = match limit with Some l -> min k l | None -> k in
  let stolen =
    List.init k (fun i ->
        let j = (q.head + i) mod Array.length q.buf in
        let x = q.buf.(j) in
        q.buf.(j) <- q.dummy;
        x)
  in
  q.head <- (q.head + k) mod Array.length q.buf;
  q.len <- q.len - k;
  Mutex.unlock q.lock;
  stolen
