module Translate = Ezrt_blocks.Translate
module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec
module Message = Ezrt_spec.Message

type violation =
  | Wrong_instance_count of string * int * int
  | Wrong_amount of string * int * int * int
  | Started_before_release of string * int * int * int
  | Missed_deadline of string * int * int * int
  | Fragmented_non_preemptive of string * int
  | Processor_overlap of string * string * int
  | Precedence_violated of string * string * int
  | Exclusion_interleaved of string * string * int
  | Message_too_early of string * int

let violation_to_string = function
  | Wrong_instance_count (t, want, got) ->
    Printf.sprintf "%s: expected %d executed instances, found %d" t want got
  | Wrong_amount (t, k, want, got) ->
    Printf.sprintf "%s#%d: executed %d units instead of %d" t k got want
  | Started_before_release (t, k, lo, got) ->
    Printf.sprintf "%s#%d: started at %d before earliest release %d" t k got lo
  | Missed_deadline (t, k, d, got) ->
    Printf.sprintf "%s#%d: completed at %d after deadline %d" t k got d
  | Fragmented_non_preemptive (t, k) ->
    Printf.sprintf "%s#%d: non-preemptive instance executed in pieces" t k
  | Processor_overlap (a, b, time) ->
    Printf.sprintf "%s and %s both hold the processor at %d" a b time
  | Precedence_violated (a, b, k) ->
    Printf.sprintf "precedence %s -> %s violated for instance %d" a b k
  | Exclusion_interleaved (a, b, time) ->
    Printf.sprintf "exclusion %s -- %s interleaved around time %d" a b time
  | Message_too_early (b, k) ->
    Printf.sprintf "%s#%d started before its input message was delivered" b k

(* Segments of one instance, plus its span. *)
type instance_run = {
  segs : Timeline.segment list;  (* in start order *)
  first_start : int;
  last_finish : int;
  executed : int;
}

let group_instances model segments =
  let n = Array.length model.Translate.tasks in
  let table = Hashtbl.create 64 in
  List.iter
    (fun (seg : Timeline.segment) ->
      let key = (seg.Timeline.task, seg.Timeline.instance) in
      let old = Option.value (Hashtbl.find_opt table key) ~default:[] in
      Hashtbl.replace table key (seg :: old))
    segments;
  let runs = Array.make n [] in
  Hashtbl.iter
    (fun (task, instance) segs ->
      let segs =
        List.sort (fun a b -> compare a.Timeline.start b.Timeline.start) segs
      in
      let first = List.hd segs in
      let last = List.nth segs (List.length segs - 1) in
      let run =
        {
          segs;
          first_start = first.Timeline.start;
          last_finish = last.Timeline.finish;
          executed = Timeline.busy_time segs;
        }
      in
      runs.(task) <- (instance, run) :: runs.(task))
    table;
  Array.map (fun l -> List.sort compare l) runs

let check model segments =
  let violations = ref [] in
  let report v = violations := v :: !violations in
  let tasks = model.Translate.tasks in
  let name i = tasks.(i).Task.name in
  let runs = group_instances model segments in
  (* Per-instance timing. *)
  Array.iteri
    (fun i per_task ->
      let task = tasks.(i) in
      let expected = model.Translate.instance_counts.(i) in
      if List.length per_task <> expected then
        report (Wrong_instance_count (name i, expected, List.length per_task));
      List.iter
        (fun (k, run) ->
          let arrival = task.Task.phase + (k * task.Task.period) in
          if run.executed <> task.Task.wcet then
            report (Wrong_amount (name i, k, task.Task.wcet, run.executed));
          let earliest = arrival + task.Task.release in
          if run.first_start < earliest then
            report (Started_before_release (name i, k, earliest, run.first_start));
          let deadline = arrival + task.Task.deadline in
          if run.last_finish > deadline then
            report (Missed_deadline (name i, k, deadline, run.last_finish));
          if task.Task.mode = Task.Non_preemptive && List.length run.segs > 1
          then report (Fragmented_non_preemptive (name i, k)))
        per_task)
    runs;
  (* Mutual exclusion of the processor. *)
  let ordered =
    List.sort
      (fun a b -> compare a.Timeline.start b.Timeline.start)
      segments
  in
  let rec overlap = function
    | a :: (b :: _ as rest) ->
      if b.Timeline.start < a.Timeline.finish then
        report
          (Processor_overlap
             (name a.Timeline.task, name b.Timeline.task, b.Timeline.start));
      overlap rest
    | [ _ ] | [] -> ()
  in
  overlap ordered;
  (* Relations. *)
  let run_of i k = List.assoc_opt k runs.(i) in
  let spec = model.Translate.spec in
  List.iter
    (fun (a, b) ->
      let ia = Translate.task_index model a
      and ib = Translate.task_index model b in
      List.iter
        (fun (k, run_b) ->
          match run_of ia k with
          | Some run_a when run_a.last_finish <= run_b.first_start -> ()
          | Some _ | None -> report (Precedence_violated (name ia, name ib, k)))
        runs.(ib))
    spec.Spec.precedences;
  List.iter
    (fun (a, b) ->
      let ia = Translate.task_index model a
      and ib = Translate.task_index model b in
      List.iter
        (fun (_, run_a) ->
          List.iter
            (fun (_, run_b) ->
              let disjoint =
                run_a.last_finish <= run_b.first_start
                || run_b.last_finish <= run_a.first_start
              in
              if not disjoint then
                report
                  (Exclusion_interleaved
                     (name ia, name ib, max run_a.first_start run_b.first_start)))
            runs.(ib))
        runs.(ia))
    spec.Spec.exclusions;
  List.iter
    (fun (m : Message.t) ->
      let ia = Translate.task_index model m.Message.sender
      and ib = Translate.task_index model m.Message.receiver in
      List.iter
        (fun (k, run_b) ->
          match run_of ia k with
          | Some run_a
            when run_a.last_finish + Message.duration m <= run_b.first_start ->
            ()
          | Some _ | None -> report (Message_too_early (name ib, k)))
        runs.(ib))
    spec.Spec.messages;
  match List.rev !violations with [] -> Ok () | vs -> Error vs

type certification_failure =
  | Replay_error of string
  | Wrong_final_marking
  | Violations of violation list

let certification_failure_to_string = function
  | Replay_error msg -> Printf.sprintf "schedule does not replay: %s" msg
  | Wrong_final_marking -> "replayed schedule does not reach the final marking"
  | Violations vs ->
    String.concat "; " (List.map violation_to_string vs)

let certify model schedule =
  match Schedule.replay model.Translate.net schedule with
  | exception Invalid_argument msg -> Error (Replay_error msg)
  | final ->
    if not (Translate.is_final model final) then Error Wrong_final_marking
    else (
      match Timeline.of_schedule model schedule with
      | exception Invalid_argument msg -> Error (Replay_error msg)
      | segments -> (
        match check model segments with
        | Ok () -> Ok segments
        | Error vs -> Error (Violations vs)))

let check_exn model segments =
  match check model segments with
  | Ok () -> ()
  | Error vs ->
    failwith
      (Printf.sprintf "timeline violates the specification: %s"
         (String.concat "; " (List.map violation_to_string vs)))
