open Ezrt_tpn
module Translate = Ezrt_blocks.Translate
module Meaning = Ezrt_blocks.Meaning

type options = {
  policy : Priority.policy;
  partial_order : bool;
  latest_release : bool;
  max_stored : int;
  incremental : bool;
  por : bool;
}

let default_options =
  { policy = Priority.Edf; partial_order = true; latest_release = false;
    max_stored = 500_000; incremental = true; por = true }

type failure =
  | Infeasible
  | Budget_exhausted

let failure_to_string = function
  | Infeasible -> "no feasible schedule exists for the explored choice space"
  | Budget_exhausted -> "stored-state budget exhausted"

type metrics = {
  stored : int;
  visited : int;
  eager : int;
  backtracks : int;
  max_depth : int;
  elapsed_s : float;
  por_reduced : int;
  por_fallback : int;
  por_skipped : int;
}

type counters = {
  mutable c_stored : int;
  mutable c_visited : int;
  mutable c_eager : int;
  mutable c_backtracks : int;
  mutable c_max_depth : int;
  mutable c_por_reduced : int;
  mutable c_por_fallback : int;
  mutable c_por_skipped : int;
}

(* --- observability ---------------------------------------------------
   The DFS keeps its own unsynchronized counter record (hot path); the
   Ezrt_obs registry receives the totals in one bulk update per search,
   and the progress reporter renders from the live record only when a
   line is due.  With no sink installed all of this is a branch on
   [None] per stored node. *)

let progress_reporter ~engine (c : counters) =
  let t0 = Unix.gettimeofday () in
  let snapshot () =
    let dt = Unix.gettimeofday () -. t0 in
    Printf.sprintf
      "search[%s]: %d stored, %d visited, depth %d, %.0f states/s" engine
      c.c_stored c.c_visited c.c_max_depth
      (float_of_int c.c_visited /. max 1e-9 dt)
  in
  fun () -> Ezrt_obs.Progress.tick snapshot

let flush_metrics ~engine (m : metrics) =
  let open Ezrt_obs in
  let labels = [ ("engine", engine) ] in
  let bump name help v =
    Metrics.add (Metrics.counter ~help ~labels name) v
  in
  bump "ezrt_search_stored_states_total" "Search nodes stored" m.stored;
  bump "ezrt_search_visited_states_total" "Search nodes visited" m.visited;
  bump "ezrt_search_eager_fires_total"
    "Forced immediate firings collapsed without storing a node" m.eager;
  bump "ezrt_search_backtracks_total" "Exhausted search nodes" m.backtracks;
  bump "ezrt_por_reduced_total"
    "Expansions pruned by the stubborn-set partial-order reduction"
    m.por_reduced;
  bump "ezrt_por_fallback_total"
    "Urgent states where the stubborn set gave no strict reduction"
    m.por_fallback;
  bump "ezrt_por_skipped_total"
    "Expanded states where the reduction's gate did not apply" m.por_skipped;
  Metrics.observe
    (Metrics.timer ~help:"Wall-clock time spent in search" ~labels
       "ezrt_search_duration")
    (max 0.0 m.elapsed_s);
  Metrics.record_gc_gauges ()

let metrics_of_counters (c : counters) elapsed_s =
  {
    stored = c.c_stored;
    visited = c.c_visited;
    eager = c.c_eager;
    backtracks = c.c_backtracks;
    max_depth = c.c_max_depth;
    elapsed_s;
    por_reduced = c.c_por_reduced;
    por_fallback = c.c_por_fallback;
    por_skipped = c.c_por_skipped;
  }

(* Shared stubborn-set reduction plumbing: [por_context] decides once
   per search whether reduction is even on the table, [reduce_fireable]
   applies the per-state urgency gate and counts the outcome.  Every
   engine goes through these two so the `ezrt_por_*` counters mean the
   same thing everywhere. *)

let por_context options model =
  if options.por && not options.latest_release then
    let ind =
      Indep.create model.Translate.net
        ~final_place:model.Translate.final_place
        ~dead_places:model.Translate.dead_places
    in
    if Indep.applicable ind then Some ind else None
  else None

type por_outcome =
  | Por_reduced
  | Por_fallback
  | Por_skipped

let apply_por ~ind ~urgent ~enabled ~dub_zero ~tokens fireable =
  match ind with
  | Some ind when urgent () -> (
    match Indep.reduce ind ~enabled ~dub_zero ~tokens fireable with
    | Indep.Reduced e -> (e, Por_reduced)
    | Indep.Fallback -> (fireable, Por_fallback))
  | Some _ | None -> (fireable, Por_skipped)

let reduce_fireable ~ind ~options ~counters:(c : counters) ~urgent ~enabled
    ~dub_zero ~tokens fireable =
  let expansion, outcome =
    apply_por ~ind ~urgent ~enabled ~dub_zero ~tokens fireable
  in
  (match outcome with
  | Por_reduced -> c.c_por_reduced <- c.c_por_reduced + 1
  | Por_fallback -> c.c_por_fallback <- c.c_por_fallback + 1
  | Por_skipped ->
    if options.por then c.c_por_skipped <- c.c_por_skipped + 1);
  expansion

exception Found of (Pnet.transition_id * int) list
(* carries the reversed action path *)

let is_immediate net tid =
  let itv = Pnet.interval net tid in
  Time_interval.is_point itv && Time_interval.eft itv = 0

(* Firing times to branch on within a domain: the earliest time always,
   plus the latest time of release windows when inserted idle time is
   allowed. *)
let firing_times options model tid (lo, hi) =
  if
    options.latest_release
    && Meaning.is_release model.Translate.meanings.(tid)
  then
    match hi with
    | Time_interval.Finite hi when hi > lo -> [ lo; hi ]
    | Time_interval.Finite _ | Time_interval.Infinity -> [ lo ]
  else [ lo ]

(* --- copy-based reference engine ------------------------------------ *)
(* The seed implementation: immutable states, a [State.Table] memo.
   Kept as the semantic oracle for the differential tests and the
   benchmark baseline. *)

let find_schedule_copying ~options ~cancel model counters =
  let net = model.Translate.net in
  let ind = por_context options model in
  let failed = State.Table.create 4096 in
  let budget_hit = ref false in
  let progress = progress_reporter ~engine:"discrete-copying" counters in
  (* Collapse chains of forced immediate firings: when the fireable set
     is a singleton [0,0] transition, the semantics leaves no choice and
     no time passes, so the intermediate state need not become a search
     node. *)
  let rec eager_advance path_rev s =
    if
      options.partial_order
      && (not (Translate.is_final model s))
      && not (Translate.is_dead model s)
    then
      match State.fireable net s with
      | [ tid ] when is_immediate net tid ->
        counters.c_eager <- counters.c_eager + 1;
        counters.c_visited <- counters.c_visited + 1;
        eager_advance ((tid, 0) :: path_rev) (State.fire net s tid 0)
      | [] | _ :: _ -> (path_rev, s)
    else (path_rev, s)
  in
  let rec dfs depth path_rev s =
    if depth > counters.c_max_depth then counters.c_max_depth <- depth;
    if Translate.is_final model s then raise (Found path_rev);
    if cancel () then budget_hit := true;
    if
      (not (Translate.is_dead model s))
      && (not (State.Table.mem failed s))
      && not !budget_hit
    then begin
      if counters.c_stored >= options.max_stored then budget_hit := true
      else begin
        counters.c_stored <- counters.c_stored + 1;
        counters.c_visited <- counters.c_visited + 1;
        progress ();
        let fireable =
          reduce_fireable ~ind ~options ~counters
            ~urgent:(fun () -> State.min_dub net s = Time_interval.Finite 0)
            ~enabled:(State.is_enabled s)
            ~dub_zero:(fun t -> State.dub net s t = Time_interval.Finite 0)
            ~tokens:(State.tokens s) (State.fireable net s)
        in
        let ordered = Priority.order options.policy model s fireable in
        let try_candidate tid =
          if not !budget_hit then
            let domain = State.firing_domain net s tid in
            List.iter
              (fun q ->
                if not !budget_hit then begin
                  let path_rev, s' =
                    eager_advance ((tid, q) :: path_rev) (State.fire net s tid q)
                  in
                  dfs (depth + 1) path_rev s'
                end)
              (firing_times options model tid domain)
        in
        List.iter try_candidate ordered;
        counters.c_backtracks <- counters.c_backtracks + 1;
        State.Table.replace failed s ()
      end
    end
  in
  match
    let path0, s0 = eager_advance [] (State.initial net) in
    if Translate.is_final model s0 then raise (Found path0);
    dfs 0 path0 s0
  with
  | () -> Error (if !budget_hit then Budget_exhausted else Infeasible)
  | exception Found path_rev -> Ok (Schedule.of_actions (List.rev path_rev))

(* --- incremental engine --------------------------------------------- *)
(* One mutable [State.Incremental] engine walked push/pop by the DFS;
   the failed-state memo stores packed byte states with memoized
   hashes.  Candidate order, firing domains and counter updates mirror
   the copy-based engine exactly, so both produce action-for-action
   identical schedules and identical metrics. *)

let find_schedule_incremental ~options ~cancel model counters =
  let net = model.Translate.net in
  let ind = por_context options model in
  let eng = State.Incremental.create net in
  let view = Priority.view_of_engine eng in
  (* Size the memo from the stored-state budget (capped — Hashtbl grows
     on demand, this only avoids rehash churn on the way up without
     zeroing megabytes for searches that stay small). *)
  let failed =
    Packed_state.Table.create (max 1024 (min options.max_stored 0x10000))
  in
  let budget_hit = ref false in
  let progress = progress_reporter ~engine:"discrete-incremental" counters in
  let is_final () = State.Incremental.tokens eng model.Translate.final_place >= 1 in
  let is_dead () =
    List.exists
      (fun pdm -> State.Incremental.tokens eng pdm > 0)
      model.Translate.dead_places
  in
  (* fires eager singleton chains in place, extending [path_rev] *)
  let rec eager_advance path_rev =
    if options.partial_order && (not (is_final ())) && not (is_dead ()) then
      match State.Incremental.fireable eng with
      | [ tid ] when is_immediate net tid ->
        counters.c_eager <- counters.c_eager + 1;
        counters.c_visited <- counters.c_visited + 1;
        State.Incremental.fire eng tid 0;
        eager_advance ((tid, 0) :: path_rev)
      | [] | _ :: _ -> path_rev
    else path_rev
  in
  let rec dfs depth path_rev =
    if depth > counters.c_max_depth then counters.c_max_depth <- depth;
    if is_final () then raise (Found path_rev);
    if cancel () then budget_hit := true;
    if (not (is_dead ())) && not !budget_hit then begin
      let key = Packed_state.of_engine eng in
      if not (Packed_state.Table.mem failed key) then begin
        if counters.c_stored >= options.max_stored then budget_hit := true
        else begin
          counters.c_stored <- counters.c_stored + 1;
          counters.c_visited <- counters.c_visited + 1;
          progress ();
          let fireable =
            reduce_fireable ~ind ~options ~counters
              ~urgent:(fun () ->
                State.Incremental.min_dub eng = Time_interval.Finite 0)
              ~enabled:(State.Incremental.is_enabled eng)
              ~dub_zero:(fun t ->
                State.Incremental.dub eng t = Time_interval.Finite 0)
              ~tokens:(State.Incremental.tokens eng)
              (State.Incremental.fireable eng)
          in
          let ordered = Priority.order_view options.policy model view fireable in
          (* domains must be read before any child mutates the engine *)
          let plans =
            List.map
              (fun tid -> (tid, State.Incremental.firing_domain eng tid))
              ordered
          in
          let here = State.Incremental.depth eng in
          let try_candidate (tid, domain) =
            if not !budget_hit then
              List.iter
                (fun q ->
                  if not !budget_hit then begin
                    State.Incremental.fire eng tid q;
                    let path_rev = eager_advance ((tid, q) :: path_rev) in
                    dfs (depth + 1) path_rev;
                    State.Incremental.undo_to eng here
                  end)
                (firing_times options model tid domain)
          in
          List.iter try_candidate plans;
          counters.c_backtracks <- counters.c_backtracks + 1;
          Packed_state.Table.replace failed key ()
        end
      end
    end
  in
  let outcome =
    match
      let path0 = eager_advance [] in
      if is_final () then raise (Found path0);
      dfs 0 path0
    with
    | () -> Error (if !budget_hit then Budget_exhausted else Infeasible)
    | exception Found path_rev -> Ok (Schedule.of_actions (List.rev path_rev))
  in
  let st = Packed_state.Table.load_stats failed in
  let bump name help v =
    Ezrt_obs.Metrics.add
      (Ezrt_obs.Metrics.counter ~help
         ~labels:[ ("engine", "discrete-incremental") ]
         name)
      v
  in
  bump "ezrt_search_table_entries_total" "Failed-state memo entries"
    st.Packed_state.entries;
  bump "ezrt_search_table_collisions_total"
    "Failed-state memo entries sharing a bucket" st.Packed_state.collisions;
  outcome

let no_cancel () = false

let find_schedule ?(options = default_options) ?(cancel = no_cancel) model =
  let started = Unix.gettimeofday () in
  let engine =
    if options.incremental then "discrete-incremental" else "discrete-copying"
  in
  Ezrt_obs.Trace.begin_span ~cat:"search"
    ~args:
      [
        ("engine", Ezrt_obs.Trace.Str engine);
        ("policy", Ezrt_obs.Trace.Str (Priority.to_string options.policy));
      ]
    "search";
  let counters =
    { c_stored = 0; c_visited = 0; c_eager = 0; c_backtracks = 0;
      c_max_depth = 0; c_por_reduced = 0; c_por_fallback = 0;
      c_por_skipped = 0 }
  in
  let outcome =
    Fun.protect
      ~finally:(fun () ->
        Ezrt_obs.Trace.end_span ~cat:"search"
          ~args:
            [
              ("stored", Ezrt_obs.Trace.Int counters.c_stored);
              ("visited", Ezrt_obs.Trace.Int counters.c_visited);
            ]
          "search")
      (fun () ->
        if options.incremental then
          find_schedule_incremental ~options ~cancel model counters
        else find_schedule_copying ~options ~cancel model counters)
  in
  let elapsed_s = Unix.gettimeofday () -. started in
  let metrics = metrics_of_counters counters elapsed_s in
  flush_metrics ~engine metrics;
  (outcome, metrics)
