open Ezrt_tpn
module Translate = Ezrt_blocks.Translate
module Meaning = Ezrt_blocks.Meaning
module Task = Ezrt_spec.Task

type policy =
  | Fifo
  | Edf
  | Rm
  | Dm
  | Continuity

let all =
  [ ("fifo", Fifo); ("edf", Edf); ("rm", Rm); ("dm", Dm);
    ("continuity", Continuity) ]

let to_string = function
  | Fifo -> "fifo"
  | Edf -> "edf"
  | Rm -> "rm"
  | Dm -> "dm"
  | Continuity -> "continuity"

let no_urgency = max_int / 2

(* The policies read the dynamic state through this small vtable so the
   same ordering logic serves both the immutable [State.t] and the
   incremental engine without copying either. *)
type view = {
  v_is_enabled : Pnet.transition_id -> bool;
  v_dub : Pnet.transition_id -> Time_interval.bound;
  v_dlb : Pnet.transition_id -> int;
  v_tokens : Pnet.place_id -> int;
}

let view_of_state net s =
  {
    v_is_enabled = State.is_enabled s;
    v_dub = State.dub net s;
    v_dlb = State.dlb net s;
    v_tokens = State.tokens s;
  }

let view_of_engine e =
  {
    v_is_enabled = State.Incremental.is_enabled e;
    v_dub = State.Incremental.dub e;
    v_dlb = State.Incremental.dlb e;
    v_tokens = State.Incremental.tokens e;
  }

(* Time remaining to the current instance deadline of task [i], read
   off the deadline-watch transition's clock.  When the watch is not
   armed the task has no pending instance. *)
let slack model v i =
  let td = model.Translate.deadline_watch.(i) in
  if v.v_is_enabled td then
    match v.v_dub td with
    | Time_interval.Finite q -> q
    | Time_interval.Infinity -> no_urgency
  else no_urgency

(* A preemptive instance is in progress when some units have been
   consumed but work remains: the unit pool is partially drained or a
   unit holds the processor right now. *)
let in_progress model v i =
  match model.Translate.progress.(i) with
  | None -> false
  | Some (pwu, pwx) ->
    let pending = v.v_tokens pwu and running = v.v_tokens pwx in
    let total = pending + running in
    running > 0 || (total > 0 && total < model.Translate.tasks.(i).Task.wcet)

let key_view policy model v tid =
  match Meaning.task_index model.Translate.meanings.(tid) with
  | None -> no_urgency
  | Some i -> (
    let task = model.Translate.tasks.(i) in
    match policy with
    | Fifo -> tid
    | Edf -> slack model v i
    | Rm -> task.Task.period
    | Dm -> task.Task.deadline
    | Continuity ->
      let started = if in_progress model v i then 0 else 1 in
      (started * no_urgency) + slack model v i)

let order_view policy model v candidates =
  let decorated =
    List.map (fun tid -> (key_view policy model v tid, v.v_dlb tid, tid))
      candidates
  in
  List.map (fun (_, _, tid) -> tid) (List.sort compare decorated)

let key policy model s tid =
  key_view policy model (view_of_state model.Translate.net s) tid

let order policy model s candidates =
  order_view policy model (view_of_state model.Translate.net s) candidates
