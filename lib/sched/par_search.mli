(** Work-stealing parallel DFS: one search problem, N OCaml 5 domains
    expanding disjoint subtrees from a shared frontier.

    Each worker owns a deque of unexpanded nodes (LIFO at the top, so
    a lone worker explores exactly the sequential incremental engine's
    order); idle workers steal half a victim's deque from the bottom —
    the shallowest nodes with the largest subtrees.  A worker walks
    its own {!Ezrt_tpn.State.Incremental} engine and repositions
    between nodes by undoing to the lowest common ancestor and
    replaying the downward actions.

    Pruning is shared through one {!Ezrt_tpn.Packed_state.Sharded}
    table, keyed by the engine's incrementally maintained Zobrist
    hash: a node {e claims} its state before expanding, so each
    distinct state is expanded at most once across all domains.

    {b Determinism contract}: the feasibility verdict (and
    certification of any schedule found) is deterministic; the
    {e specific} schedule may differ from the sequential engines' —
    and between runs with [domains > 1] — because subtree completion
    order depends on the race.  With [~domains:1] the search is
    action-for-action identical to the sequential incremental
    engine. *)

type t = {
  outcome : (Schedule.t, Search.failure) result;
  metrics : Search.metrics;
      (** aggregated over workers; [stored] counts successful claims *)
  domains_used : int;
      (** workers that expanded, skipped, or stole at least once *)
  steals : int;
  shared_hits : int;
      (** expansions skipped because the state was already claimed in
          the shared table — re-convergent paths of the TLTS (the
          sequential engines' memo hits) plus states claimed first by
          another domain *)
  replayed_fires : int;
      (** firings replayed while repositioning after pops and steals *)
  table : Ezrt_tpn.Packed_state.Sharded.stats;
}

val default_domains : unit -> int
(** [max 2 (recommended_domain_count - 1)] — leave one for the
    caller's domain, never degenerate to a sequential run. *)

val find_schedule :
  ?options:Search.options ->
  ?domains:int ->
  ?cancel:(unit -> bool) ->
  Ezrt_blocks.Translate.t ->
  t
(** [options.incremental] is ignored (the engine is always the
    incremental one); [cancel] is polled by worker 0 and stops every
    domain, reporting [Budget_exhausted] like the sequential search. *)
