(* Work-stealing parallel DFS over the state-class graph.

   Structurally a simplification of Par_search: classes are immutable
   values ([State_class.fire] is pure), so there is no incremental
   engine to reposition — a node carries its class and the reversed
   transition path that produced it, and moving between nodes is free.
   What is shared is the Class_store: a node claims its canonical
   class at first visit (Fresh) before expanding; Duplicate and
   Subsumed answers mean some worker already owns an equal or
   containing domain under the same marking, so the subtree is pruned
   globally on the same soundness argument as the sequential engine
   (see Class_search and DESIGN.md).

   Termination mirrors Par_search: [pending] counts nodes pushed but
   not yet expanded; a worker finding its deque empty steals, and when
   [pending] hits 0 the explored choice space is exhausted. *)

open Ezrt_tpn
module Translate = Ezrt_blocks.Translate

type t = {
  outcome : (Schedule.t, Class_search.failure) result;
  metrics : Class_search.metrics;
  domains_used : int;
  steals : int;
  store : Class_store.stats;
}

type node = {
  path_rev : Pnet.transition_id list;
  cls : State_class.t;
  depth : int;
}

type worker_stats = {
  mutable w_stored : int;
  mutable w_visited : int;
  mutable w_eager : int;
  mutable w_backtracks : int;
  mutable w_max_depth : int;
  mutable w_steals : int;
  mutable w_por_reduced : int;
  mutable w_por_fallback : int;
  mutable w_por_skipped : int;
}

let zero_stats () =
  { w_stored = 0; w_visited = 0; w_eager = 0; w_backtracks = 0;
    w_max_depth = 0; w_steals = 0; w_por_reduced = 0; w_por_fallback = 0;
    w_por_skipped = 0 }

let default_domains () = max 2 (Domain.recommended_domain_count () - 1)

let find_schedule ?(max_stored = 500_000) ?(subsume = true) ?(por = true)
    ?domains ?(cancel = fun () -> false) model =
  let started = Unix.gettimeofday () in
  let net = model.Translate.net in
  let n_workers =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let subsume = subsume && Class_search.subsumption_applicable model in
  (* the stubborn-set context is immutable after creation — shared
     read-only across worker domains like the net itself *)
  let ind = Search.por_context { Search.default_options with por } model in
  Ezrt_obs.Trace.begin_span ~cat:"search"
    ~args:
      [
        ("engine", Ezrt_obs.Trace.Str "classes-parallel");
        ("domains", Ezrt_obs.Trace.Int n_workers);
        ("subsume", Ezrt_obs.Trace.Str (string_of_bool subsume));
      ]
    "search";
  let store = Class_store.create ~subsume () in
  let root = { path_rev = []; cls = State_class.initial net; depth = 0 } in
  (* the dummy fills vacated deque slots; never expanded *)
  let deques = Array.init n_workers (fun _ -> Deque.create root) in
  let all_stats = Array.init n_workers (fun _ -> zero_stats ()) in
  let stop = Atomic.make false in
  let budget_hit = Atomic.make false in
  let cancelled = Atomic.make false in
  let pending = Atomic.make 1 in
  let stored_total = Atomic.make 0 in
  let result : Pnet.transition_id list option Atomic.t = Atomic.make None in
  Deque.push_top deques.(0) root;
  let helpers = ref [||] in
  let helpers_spawned = ref (n_workers <= 1) in
  let spawn_helpers = ref (fun () -> ()) in
  let worker_body id =
    let w = all_stats.(id) in
    let deque = deques.(id) in
    Ezrt_obs.Trace.begin_span ~cat:"search"
      ~args:[ ("worker", Ezrt_obs.Trace.Int id) ]
      "class-worker";
    let progress =
      let snapshot () =
        let dt = Unix.gettimeofday () -. started in
        let stored = Atomic.get stored_total in
        Printf.sprintf "search[classes x%d]: %d stored, %.0f classes/s"
          n_workers stored
          (float_of_int stored /. max 1e-9 dt)
      in
      fun () -> if id = 0 then Ezrt_obs.Progress.tick snapshot
    in
    (* forced singleton chains collapse without publishing a node,
       exactly as in the sequential engine *)
    let rec eager_advance path_rev c =
      if Class_search.is_final model c || Class_search.is_dead model c then
        (path_rev, c)
      else
        match State_class.firable net c with
        | [ tid ] ->
          w.w_eager <- w.w_eager + 1;
          w.w_visited <- w.w_visited + 1;
          eager_advance (tid :: path_rev) (State_class.fire net c tid)
        | [] | _ :: _ -> (path_rev, c)
    in
    (* Expands [node]; returns the first child to expand next, kept in
       hand so the DFS spine never round-trips through the deque. *)
    let expand node =
      let path_rev, c = eager_advance node.path_rev node.cls in
      if node.depth > w.w_max_depth then w.w_max_depth <- node.depth;
      let next =
        if Class_search.is_final model c then begin
          ignore (Atomic.compare_and_set result None (Some path_rev));
          Atomic.set stop true;
          None
        end
        else if Class_search.is_dead model c then begin
          w.w_backtracks <- w.w_backtracks + 1;
          None
        end
        else begin
          match Class_store.visit store c with
          | Class_store.Duplicate | Class_store.Subsumed -> None
          | Class_store.Fresh ->
            if Atomic.fetch_and_add stored_total 1 >= max_stored then begin
              Atomic.set budget_hit true;
              Atomic.set stop true;
              None
            end
            else begin
              w.w_stored <- w.w_stored + 1;
              w.w_visited <- w.w_visited + 1;
              progress ();
              let firable, por_out =
                Class_search.apply_por ~ind net c (State_class.firable net c)
              in
              (match por_out with
              | Search.Por_reduced -> w.w_por_reduced <- w.w_por_reduced + 1
              | Search.Por_fallback -> w.w_por_fallback <- w.w_por_fallback + 1
              | Search.Por_skipped ->
                if por then w.w_por_skipped <- w.w_por_skipped + 1);
              let candidates = Class_search.order_candidates net c firable in
              (* first candidate kept in hand; the rest accumulate in
                 reverse, which is push order: the deque top ends up
                 holding the second candidate, preserving sequential
                 order for a lone worker *)
              let first = ref None in
              let rev_rest = ref [] in
              let count = ref 0 in
              List.iter
                (fun tid ->
                  let child =
                    {
                      path_rev = tid :: path_rev;
                      cls = State_class.fire net c tid;
                      depth = node.depth + 1;
                    }
                  in
                  incr count;
                  match !first with
                  | None -> first := Some child
                  | Some _ -> rev_rest := child :: !rev_rest)
                candidates;
              match !first with
              | None ->
                w.w_backtracks <- w.w_backtracks + 1;
                None
              | Some _ as f ->
                ignore (Atomic.fetch_and_add pending !count);
                if !rev_rest <> [] then Deque.push_list deque !rev_rest;
                f
            end
        end
      in
      Atomic.decr pending;
      next
    in
    let opportunistic = id >= Domain.recommended_domain_count () in
    let burst = ref 8 in
    let try_steal () =
      let got = ref false in
      let k = ref 1 in
      let limit = if opportunistic then Some !burst else None in
      while (not !got) && !k < n_workers do
        let victim = (id + !k) mod n_workers in
        (match Deque.steal_half ?limit deques.(victim) with
        | [] -> ()
        | items ->
          got := true;
          w.w_steals <- w.w_steals + 1;
          List.iter (fun it -> Deque.push_top deque it) items);
        incr k
      done;
      !got
    in
    let in_hand = ref None in
    let idle = ref 0 in
    let running = ref true in
    while !running do
      if Atomic.get stop then running := false
      else begin
        if id = 0 && cancel () then begin
          Atomic.set cancelled true;
          Atomic.set stop true
        end;
        let next =
          match !in_hand with
          | Some _ as n ->
            in_hand := None;
            n
          | None -> Deque.pop_top deque
        in
        match next with
        | Some node ->
          idle := 0;
          in_hand := expand node;
          if id = 0 && not !helpers_spawned then !spawn_helpers ();
          if opportunistic then begin
            decr burst;
            if !burst <= 0 then begin
              (match !in_hand with
              | Some n ->
                Deque.push_top deque n;
                in_hand := None
              | None -> ());
              running := false
            end
          end
        | None ->
          if n_workers > 1 && try_steal () then idle := 0
          else if Atomic.get pending = 0 then running := false
          else begin
            incr idle;
            if !idle < 2 then Domain.cpu_relax () else Unix.sleepf 0.0002;
            if opportunistic && !idle > 8 then running := false
          end
      end
    done;
    Ezrt_obs.Trace.end_span ~cat:"search"
      ~args:
        [
          ("worker", Ezrt_obs.Trace.Int id);
          ("stored", Ezrt_obs.Trace.Int w.w_stored);
          ("steals", Ezrt_obs.Trace.Int w.w_steals);
        ]
      "class-worker"
  in
  (spawn_helpers :=
     fun () ->
       if Deque.length deques.(0) >= n_workers - 1 then begin
         helpers_spawned := true;
         helpers :=
           Array.init (n_workers - 1) (fun i ->
               Domain.spawn (fun () -> worker_body (i + 1)))
       end);
  worker_body 0;
  Array.iter Domain.join !helpers;
  let elapsed_s = Unix.gettimeofday () -. started in
  let sum f = Array.fold_left (fun acc w -> acc + f w) 0 all_stats in
  let store_stats = Class_store.stats store in
  let metrics =
    {
      Class_search.stored = sum (fun w -> w.w_stored);
      visited = sum (fun w -> w.w_visited);
      eager = sum (fun w -> w.w_eager);
      backtracks = sum (fun w -> w.w_backtracks);
      subsumed = store_stats.Class_store.subsumed;
      max_depth =
        Array.fold_left (fun acc w -> max acc w.w_max_depth) 0 all_stats;
      elapsed_s;
      por_reduced = sum (fun w -> w.w_por_reduced);
      por_fallback = sum (fun w -> w.w_por_fallback);
      por_skipped = sum (fun w -> w.w_por_skipped);
    }
  in
  let domains_used =
    Array.fold_left
      (fun acc w -> if w.w_visited > 0 || w.w_steals > 0 then acc + 1 else acc)
      0 all_stats
  in
  let steals = sum (fun w -> w.w_steals) in
  let outcome =
    match Atomic.get result with
    | Some path_rev -> (
      match Class_search.extract net (List.rev path_rev) with
      | Some schedule -> Ok schedule
      | None -> Error Class_search.Extraction_failed)
    | None ->
      if Atomic.get cancelled || Atomic.get budget_hit then
        Error Class_search.Budget_exhausted
      else Error Class_search.Infeasible
  in
  Ezrt_obs.Trace.end_span ~cat:"search"
    ~args:
      [
        ("stored", Ezrt_obs.Trace.Int metrics.Class_search.stored);
        ("steals", Ezrt_obs.Trace.Int steals);
        ("domains_used", Ezrt_obs.Trace.Int domains_used);
      ]
    "search";
  Class_search.flush_class_metrics ~engine:"classes-parallel" metrics
    store_stats;
  Ezrt_obs.Metrics.add
    (Ezrt_obs.Metrics.counter ~help:"Work-stealing operations"
       ~labels:[ ("engine", "classes-parallel") ]
       "ezrt_par_steals_total")
    steals;
  { outcome; metrics; domains_used; steals; store = store_stats }
