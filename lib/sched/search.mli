(** Pre-runtime schedule synthesis (paper §4.4.1): a depth-first search
    over the TLTS of the translated net, stopping at the desired final
    marking [MF], with partial-order reduction of deterministic
    immediate firings and memoization of failed states.

    Two interchangeable engines implement the same search:

    - the {e incremental} engine (default) walks one mutable
      {!Ezrt_tpn.State.Incremental} state push/pop, firing in O(arcs)
      instead of O(|T|·|F|), and memoizes failed states as packed byte
      strings ({!Ezrt_tpn.Packed_state}) with memoized hashes;
    - the {e copying} engine is the original immutable-state
      implementation, kept as the semantic oracle and benchmark
      baseline.

    Both explore candidates in exactly the same order and produce
    action-for-action identical schedules and identical metrics. *)

type options = {
  policy : Priority.policy;  (** branch ordering; default [Edf] *)
  partial_order : bool;
      (** fire a lone immediate candidate eagerly, without creating a
          stored search node — the Lilius-style pruning the paper
          adopts; default true *)
  latest_release : bool;
      (** besides the earliest firing time, also branch on the latest
          time of release windows, allowing inserted idle time;
          default false (the paper's search is work-conserving) *)
  max_stored : int;  (** stored-state budget; default 500_000 *)
  incremental : bool;
      (** use the incremental engine with the packed failed-state
          store; default true.  [false] selects the copy-based
          reference engine. *)
  por : bool;
      (** stubborn-set partial-order reduction ({!Ezrt_tpn.Indep}):
          at urgent states, expand only a dependency-closed subset of
          the fireable set; default true.  Automatically inert under
          [latest_release] or on nets that fail
          {!Ezrt_tpn.Indep.applicable}; [--no-por] on the CLI. *)
}

val default_options : options

type failure =
  | Infeasible  (** the search space is exhausted: no feasible schedule *)
  | Budget_exhausted

val failure_to_string : failure -> string

val no_cancel : unit -> bool

val is_immediate : Ezrt_tpn.Pnet.t -> Ezrt_tpn.Pnet.transition_id -> bool
(** A \[0,0\] transition — the ones the partial-order reduction may
    fire eagerly when they are the lone candidate. *)

val firing_times :
  options ->
  Ezrt_blocks.Translate.t ->
  Ezrt_tpn.Pnet.transition_id ->
  int * Ezrt_tpn.Time_interval.bound ->
  int list
(** Firing times to branch on within a firing domain: the earliest
    always, plus the latest of release windows under
    [latest_release].  Shared by the sequential engines and
    {!Par_search} so all explore the same choice space. *)

type metrics = {
  stored : int;
      (** search nodes examined — the paper's "states searched" *)
  visited : int;  (** stored plus eagerly fired intermediate states *)
  eager : int;  (** states skipped by the partial-order reduction *)
  backtracks : int;  (** stored nodes whose subtree was exhausted *)
  max_depth : int;
  elapsed_s : float;
  por_reduced : int;
      (** expanded states where the stubborn set pruned ≥ 1 candidate *)
  por_fallback : int;
      (** urgent states where no sound strict reduction was found *)
  por_skipped : int;
      (** expanded states where the reduction gate did not apply
          (non-urgent state, inapplicable net, or [latest_release]) *)
}

val flush_metrics : engine:string -> metrics -> unit
(** Bulk-update the {!Ezrt_obs.Metrics} registry with one search's
    totals under the given engine label — the
    [ezrt_search_{stored_states,visited_states,eager_fires,backtracks}_total]
    and [ezrt_por_{reduced,fallback,skipped}_total] counters, the
    [ezrt_search_duration] timer and the end-of-span GC gauges.  Every
    engine (sequential, parallel, classes) flushes through this so the
    series mean the same thing under every label. *)

val por_context : options -> Ezrt_blocks.Translate.t -> Ezrt_tpn.Indep.t option
(** The per-search stubborn-set context: [Some] exactly when
    [options.por] is on, [latest_release] is off, and the net passes
    {!Ezrt_tpn.Indep.applicable}.  Shared by every engine so the
    reduction is gated identically everywhere. *)

type por_outcome =
  | Por_reduced  (** the stubborn set pruned at least one candidate *)
  | Por_fallback  (** urgent state, but no sound strict reduction *)
  | Por_skipped  (** gate not met: non-urgent state or no context *)

val apply_por :
  ind:Ezrt_tpn.Indep.t option ->
  urgent:(unit -> bool) ->
  enabled:(Ezrt_tpn.Pnet.transition_id -> bool) ->
  dub_zero:(Ezrt_tpn.Pnet.transition_id -> bool) ->
  tokens:(Ezrt_tpn.Pnet.place_id -> int) ->
  Ezrt_tpn.Pnet.transition_id list ->
  Ezrt_tpn.Pnet.transition_id list * por_outcome
(** One expansion through the reduction gate: probes are only called
    when [ind] is [Some] and [urgent ()] holds ([dub_zero] only on
    enabled transitions).  Returns the (possibly reduced) expansion
    set and what happened, so every engine counts
    [ezrt_por_{reduced,fallback,skipped}_total] identically. *)

val find_schedule :
  ?options:options ->
  ?cancel:(unit -> bool) ->
  Ezrt_blocks.Translate.t ->
  (Schedule.t, failure) result * metrics
(** On success the returned schedule has been found by the DFS; callers
    can certify it independently with {!Schedule.replay} and
    {!Validator.check}.

    [cancel] is polled at every search node (default: never).  When it
    returns [true] the search unwinds and reports
    {!Budget_exhausted} — the hook the parallel portfolio uses to stop
    losing configurations. *)
