(** Mutex-guarded work-stealing deque.

    A ring buffer with a coarse lock, shared by the parallel engines:
    the owner pushes and pops at the top (plain LIFO, so a lone worker
    explores exactly the sequential order) while thieves take from the
    bottom — the shallowest nodes, whose subtrees are the largest and
    amortize the steal.  The lock is deliberate: pushes and pops are a
    few dozen ns against node expansions of microseconds, and the same
    mutex gives the publication happens-before for whatever node
    fields a thief reads. *)

type 'a t

val create : 'a -> 'a t
(** [create dummy] — [dummy] fills vacated slots so the buffer never
    retains popped values. *)

val push_top : 'a t -> 'a -> unit

val push_list : 'a t -> 'a list -> unit
(** One lock for a whole sibling batch; pushed in list order, so pass
    children reversed to leave the first candidate on top. *)

val pop_top : 'a t -> 'a option

val length : 'a t -> int
(** Racy read; only meaningful as a heuristic for the deque's owner. *)

val steal_half : ?limit:int -> 'a t -> 'a list
(** Up to half the items — capped at [limit] — from the bottom,
    shallowest first.  Long-lived peers split the load evenly;
    opportunistic workers cap the batch at what they will actually
    expand, so they never hold hostage work they are about to
    abandon. *)
