(* Parallel portfolio search: race independent search configurations
   (branch-ordering policy x inserted-idle branching x engine) on
   OCaml 5 domains and return the first feasible schedule.

   Which configuration wins a hard instance is unpredictable — EDF
   ordering backtracks where continuity sails through, the class engine
   beats the discrete one on wide windows — so racing them bounds the
   wall-clock by the best config instead of a guessed one.  Losing
   configurations are stopped through the search's [cancel] hook; the
   translated model is shared read-only across domains, every search
   owns its engine and tables. *)

open Ezrt_tpn
module Translate = Ezrt_blocks.Translate
module Meaning = Ezrt_blocks.Meaning

type engine =
  | Discrete
  | Classes
  | Parallel of int
  | Class_parallel of int

type config = {
  engine : engine;
  policy : Priority.policy;
  latest_release : bool;
}

let config_to_string c =
  match c.engine with
  | Classes -> "classes"
  | Class_parallel d -> Printf.sprintf "classes-parallel%d" d
  | Parallel d ->
    Printf.sprintf "parallel%d/%s%s" d
      (Priority.to_string c.policy)
      (if c.latest_release then "+latest-release" else "")
  | Discrete ->
    Printf.sprintf "discrete/%s%s"
      (Priority.to_string c.policy)
      (if c.latest_release then "+latest-release" else "")

type attempt = {
  config : config;
  outcome : (Schedule.t, Search.failure) result;
  metrics : Search.metrics;
  cancelled : bool;
}

type prepass =
  | Prepass_off
  | Prepass_unknown of string
  | Prepass_rejected of Ezrt_analysis.Schedulability.witness
  | Prepass_accepted
  | Prepass_uncertified of string

let prepass_to_string = function
  | Prepass_off -> "off"
  | Prepass_unknown why -> Printf.sprintf "unknown (%s)" why
  | Prepass_rejected w ->
    Printf.sprintf "rejected (%s)"
      (Ezrt_analysis.Schedulability.witness_to_string w)
  | Prepass_accepted -> "accepted (EDF certificate certified)"
  | Prepass_uncertified why -> Printf.sprintf "uncertified (%s)" why

type t = {
  outcome : (Schedule.t, Search.failure) result;
  winner : config option;
  attempts : attempt list;  (** configurations that ran to a verdict *)
  configs_started : int;
  domains_used : int;
  elapsed_s : float;
  prepass : prepass;
}

(* Inserted-idle branching only widens the choice space when some
   release window is wider than a point; otherwise the latest-release
   configs replicate the plain ones and would waste domains. *)
let has_release_window model =
  let net = model.Translate.net in
  let wide = ref false in
  Array.iteri
    (fun tid m ->
      if Meaning.is_release m
         && not (Time_interval.is_point (Pnet.interval net tid))
      then wide := true)
    model.Translate.meanings;
  !wide

let default_configs model =
  let discrete policy latest_release =
    { engine = Discrete; policy; latest_release }
  in
  let base = List.map (fun (_, p) -> discrete p false) Priority.all in
  let idle =
    if has_release_window model then
      [ discrete Priority.Edf true; discrete Priority.Continuity true ]
    else []
  in
  base @ idle
  @ [ { engine = Classes; policy = Priority.Edf; latest_release = false } ]
  @
  (* shared-visited parallel members only pay for themselves when the
     host has domains left over after the portfolio's own workers *)
  (if Domain.recommended_domain_count () >= 4 then
     [
       { engine = Parallel 2; policy = Priority.Edf; latest_release = false };
       {
         engine = Class_parallel 2;
         policy = Priority.Edf;
         latest_release = false;
       };
     ]
   else [])

let class_metrics = Class_search.to_search_metrics

(* an unrealized class path is inconclusive, not a proof *)
let class_outcome = function
  | Ok schedule -> Ok schedule
  | Error Class_search.Infeasible -> Error Search.Infeasible
  | Error (Class_search.Budget_exhausted | Class_search.Extraction_failed) ->
    Error Search.Budget_exhausted

let run_config ~max_stored ~por ~cancel model cfg =
  match cfg.engine with
  | Discrete ->
    let options =
      { Search.default_options with
        policy = cfg.policy;
        latest_release = cfg.latest_release;
        max_stored;
        por }
    in
    let outcome, metrics = Search.find_schedule ~options ~cancel model in
    { config = cfg; outcome; metrics; cancelled = false }
  | Classes ->
    let outcome, metrics =
      Class_search.find_schedule ~max_stored ~por ~cancel model
    in
    { config = cfg; outcome = class_outcome outcome;
      metrics = class_metrics metrics; cancelled = false }
  | Class_parallel domains ->
    let r = Par_class.find_schedule ~max_stored ~por ~domains ~cancel model in
    { config = cfg; outcome = class_outcome r.Par_class.outcome;
      metrics = class_metrics r.Par_class.metrics; cancelled = false }
  | Parallel domains ->
    let options =
      { Search.default_options with
        policy = cfg.policy;
        latest_release = cfg.latest_release;
        max_stored;
        por }
    in
    let r = Par_search.find_schedule ~options ~domains ~cancel model in
    { config = cfg; outcome = r.Par_search.outcome;
      metrics = r.Par_search.metrics; cancelled = false }

(* Race-level accounting: one bulk registry update after the join, so
   losers' work — invisible in the returned schedule — still shows up
   in the metrics dump. *)
let obs_flush ~winner attempts =
  let open Ezrt_obs in
  Metrics.incr
    (Metrics.counter ~help:"Portfolio races run" "ezrt_portfolio_races_total");
  List.iter
    (fun (a : attempt) ->
      let outcome =
        if Some a.config = winner then "winner"
        else if a.cancelled then "cancelled"
        else "loser"
      in
      Metrics.incr
        (Metrics.counter
           ~help:"Portfolio member verdicts by race outcome"
           ~labels:
             [
               ("config", config_to_string a.config); ("outcome", outcome);
             ]
           "ezrt_portfolio_members_total");
      if Some a.config <> winner then
        Metrics.add
          (Metrics.counter
             ~help:"Search nodes stored by losing portfolio members"
             "ezrt_portfolio_loser_stored_states_total")
          a.metrics.Search.stored)
    attempts

let count_prepass outcome =
  Ezrt_obs.Metrics.incr
    (Ezrt_obs.Metrics.counter
       ~help:"Portfolio analytic pre-pass outcomes"
       ~labels:[ ("outcome", outcome) ]
       "ezrt_analysis_prepass_total")

(* The analytic pre-pass: a witnessed quick-reject skips the race with
   an [Infeasible] verdict, a certified EDF quick-accept skips it with
   the certificate as the schedule.  Acceptance is gated on
   [Validator.certify] — an uncertified analytic schedule falls
   through to the race instead of being trusted. *)
let run_prepass model =
  let module A = Ezrt_analysis.Schedulability in
  match A.analyze model with
  | A.Infeasible w ->
    count_prepass "reject";
    (Prepass_rejected w, Some (Error Search.Infeasible))
  | A.Feasible actions -> (
    let schedule = Schedule.of_actions actions in
    match Validator.certify model schedule with
    | Ok _ ->
      count_prepass "accept";
      (Prepass_accepted, Some (Ok schedule))
    | Error f ->
      count_prepass "uncertified";
      ( Prepass_uncertified (Validator.certification_failure_to_string f),
        None ))
  | A.Unknown why ->
    count_prepass "unknown";
    (Prepass_unknown why, None)

let find_schedule ?configs ?(max_stored = 500_000) ?domains ?(analysis = true)
    ?(por = true) ?(cancel = Search.no_cancel) model =
  let started_at = Unix.gettimeofday () in
  let prepass, decided =
    if analysis then run_prepass model
    else begin
      count_prepass "off";
      (Prepass_off, None)
    end
  in
  match decided with
  | Some outcome ->
    Ezrt_obs.Trace.instant ~cat:"portfolio" "prepass-decided"
      ~args:[ ("outcome", Ezrt_obs.Trace.Str (prepass_to_string prepass)) ];
    {
      outcome;
      winner = None;
      attempts = [];
      configs_started = 0;
      domains_used = 0;
      elapsed_s = Unix.gettimeofday () -. started_at;
      prepass;
    }
  | None ->
  let configs =
    match configs with Some cs -> cs | None -> default_configs model
  in
  if configs = [] then invalid_arg "Portfolio.find_schedule: no configurations";
  let cfgs = Array.of_list configs in
  let n = Array.length cfgs in
  let workers =
    match domains with
    | Some d -> max 1 (min d n)
    | None -> max 1 (min n (Domain.recommended_domain_count () - 1))
  in
  Ezrt_obs.Trace.begin_span ~cat:"portfolio"
    ~args:[ ("configs", Ezrt_obs.Trace.Int n) ]
    "portfolio";
  let stop = Atomic.make false in
  let next = Atomic.make 0 in
  let results = Array.make n None in
  (* members that actually began a search, as opposed to queue slots
     claimed-then-abandoned because the race was already decided; and
     which worker domains ran at least one of them ([worked.(w)] is
     written only by worker [w], read after the join) *)
  let started = Atomic.make 0 in
  let worked = Array.make workers false in
  (* each worker drains the config queue until a winner appears; slot
     [i] is written by exactly one domain and read only after join *)
  let worker wid =
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n || Atomic.get stop || cancel () then continue := false
      else begin
        Atomic.incr started;
        worked.(wid) <- true;
        let name = "member:" ^ config_to_string cfgs.(i) in
        (* the span opens on the worker domain, so each member gets its
           own track in the trace viewer *)
        Ezrt_obs.Trace.begin_span ~cat:"portfolio" "portfolio-member"
          ~args:[ ("config", Ezrt_obs.Trace.Str name) ];
        let saw_cancel = ref false in
        let member_cancel () =
          (* the race's own stop signal, ORed with the caller's
             deadline/cancellation hook *)
          let c = Atomic.get stop || cancel () in
          if c && not !saw_cancel then begin
            saw_cancel := true;
            Ezrt_obs.Trace.instant ~cat:"portfolio" "member-cancelled"
              ~args:[ ("config", Ezrt_obs.Trace.Str name) ]
          end;
          c
        in
        let (attempt : attempt) =
          run_config ~max_stored ~por ~cancel:member_cancel model cfgs.(i)
        in
        let attempt = { attempt with cancelled = !saw_cancel } in
        Ezrt_obs.Trace.end_span ~cat:"portfolio" "portfolio-member"
          ~args:
            [
              ("config", Ezrt_obs.Trace.Str name);
              ( "outcome",
                Ezrt_obs.Trace.Str
                  (match attempt.outcome with
                  | Ok _ -> "feasible"
                  | Error f -> Search.failure_to_string f) );
            ];
        results.(i) <- Some attempt;
        match attempt.outcome with
        | Ok _ ->
          Atomic.set stop true;
          Ezrt_obs.Trace.instant ~cat:"portfolio" "race-decided"
            ~args:[ ("config", Ezrt_obs.Trace.Str name) ]
        | Error _ -> ()
      end
    done
  in
  if workers = 1 then worker 0
  else begin
    let spawned =
      List.init (workers - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    worker 0;
    List.iter Domain.join spawned
  end;
  let attempts =
    Array.to_list results |> List.filter_map (fun a -> a)
  in
  let winner =
    (* lowest config index with a feasible outcome, for determinism
       given the set of finished attempts *)
    List.find_opt (fun (a : attempt) -> Result.is_ok a.outcome) attempts
  in
  let outcome, winner_cfg =
    match winner with
    | Some (a : attempt) -> (a.outcome, Some a.config)
    | None ->
      (* a proof of infeasibility requires every config to have run to
         exhaustion; any budget/cancel verdict leaves it open *)
      let verdict =
        if
          List.length attempts = n
          && List.for_all
               (fun (a : attempt) -> a.outcome = Error Search.Infeasible)
               attempts
        then Search.Infeasible
        else Search.Budget_exhausted
      in
      (Error verdict, None)
  in
  obs_flush ~winner:winner_cfg attempts;
  Ezrt_obs.Trace.end_span ~cat:"portfolio"
    ~args:
      [
        ( "winner",
          Ezrt_obs.Trace.Str
            (match winner_cfg with
            | Some cfg -> config_to_string cfg
            | None -> "none") );
        ("finished", Ezrt_obs.Trace.Int (List.length attempts));
      ]
    "portfolio";
  {
    outcome;
    winner = winner_cfg;
    attempts;
    configs_started = Atomic.get started;
    domains_used = Array.fold_left (fun n w -> if w then n + 1 else n) 0 worked;
    elapsed_s = Unix.gettimeofday () -. started_at;
    prepass;
  }
