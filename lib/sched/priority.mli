(** Branch-ordering policies for the depth-first search.

    The TPN's static priority function already filters the fireable set
    [FT(s)]; among the remaining candidates the search is free to pick
    any exploration order, and a good order finds a feasible schedule
    with few backtracks.  Keys are compared smaller-first. *)

open Ezrt_tpn

type policy =
  | Fifo  (** transition-id order: the unguided baseline *)
  | Edf
      (** earliest (absolute) deadline first, read dynamically off the
          deadline-watch clock of the candidate's task *)
  | Rm  (** rate monotonic: smallest period first *)
  | Dm  (** deadline monotonic: smallest relative deadline first *)
  | Continuity
      (** preemption-avoiding: prefer the preemptive task whose
          instance has already executed some units (finishing it avoids
          a resume row in the table), then fall back to EDF slack *)

val all : (string * policy) list
val to_string : policy -> string

(** Read-only dynamic-state accessors: the policies are written against
    this vtable so the same ordering logic serves the immutable
    {!State.t} and the incremental engine. *)
type view = {
  v_is_enabled : Pnet.transition_id -> bool;
  v_dub : Pnet.transition_id -> Time_interval.bound;
  v_dlb : Pnet.transition_id -> int;
  v_tokens : Pnet.place_id -> int;
}

val view_of_state : Pnet.t -> State.t -> view
val view_of_engine : State.Incremental.engine -> view

val key_view :
  policy -> Ezrt_blocks.Translate.t -> view -> Pnet.transition_id -> int

val order_view :
  policy ->
  Ezrt_blocks.Translate.t ->
  view ->
  Pnet.transition_id list ->
  Pnet.transition_id list

val key :
  policy -> Ezrt_blocks.Translate.t -> State.t -> Pnet.transition_id -> int
(** Ordering key of a candidate transition in a state.  Transitions not
    belonging to a task (bookkeeping, messages) sort last. *)

val order :
  policy ->
  Ezrt_blocks.Translate.t ->
  State.t ->
  Pnet.transition_id list ->
  Pnet.transition_id list
(** Stable sort of the candidates by {!key}, tie-broken by earliest
    dynamic lower bound and then transition id. *)
