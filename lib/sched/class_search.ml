open Ezrt_tpn
module Translate = Ezrt_blocks.Translate

type metrics = {
  stored : int;
  visited : int;
  eager : int;
  backtracks : int;
  subsumed : int;
  max_depth : int;
  elapsed_s : float;
  por_reduced : int;
  por_fallback : int;
  por_skipped : int;
}

type failure =
  | Infeasible
  | Budget_exhausted
  | Extraction_failed

let failure_to_string = function
  | Infeasible -> "no feasible schedule exists (dense-time class graph)"
  | Budget_exhausted -> "stored-class budget exhausted"
  | Extraction_failed -> "class path could not be realized at integer times"

type counters = {
  mutable c_stored : int;
  mutable c_visited : int;
  mutable c_eager : int;
  mutable c_backtracks : int;
  mutable c_max_depth : int;
  mutable c_por_reduced : int;
  mutable c_por_fallback : int;
  mutable c_por_skipped : int;
}

exception Found of Pnet.transition_id list
(* reversed transition sequence *)

let is_final model (c : State_class.t) =
  c.State_class.marking.(model.Translate.final_place) >= 1

let is_dead model (c : State_class.t) =
  List.exists
    (fun pdm -> c.State_class.marking.(pdm) > 0)
    model.Translate.dead_places

(* Fast path: realize the sequence at the earliest legal integer
   times, step by step. *)
let extract_greedy net sequence =
  let rec go s acc = function
    | [] -> Some (Schedule.of_actions (List.rev acc))
    | tid :: rest ->
      if not (State.is_enabled s tid) then None
      else
        let q = State.dlb net s tid in
        let lo, hi = State.firing_domain net s tid in
        if q < lo || not (Time_interval.bound_le (Time_interval.Finite q) hi)
        then None
        else go (State.fire net s tid q) ((tid, q) :: acc) rest
  in
  go (State.initial net) [] sequence

(* Exact path: the firing dates S_1..S_n of the sequence form a system
   of difference constraints —

   - monotonicity           S_{i-1} - S_i       <= 0
   - interval of the firing EFT <= S_i - S_e <= LFT  (e = enabling step)
   - urgency of bystanders  S_k - S_e <= LFT(t) for every transition t
     enabled from step e through firing k (time cannot pass beyond an
     enabled transition's latest firing time)

   Enabling steps follow Def 3.1 persistence.  The system is solved by
   Bellman-Ford; the earliest solution realizes the class path, which
   is exactly a timed run of the net. *)
let extract_exact (net : Pnet.t) sequence =
  let seq = Array.of_list sequence in
  let n = Array.length seq in
  (* untimed walk computing per-step enabling points *)
  let n_trans = Pnet.transition_count net in
  let enabled_since = Array.make n_trans (-1) in
  (* -1 = disabled; otherwise the step index (0 = initially) whose date
     starts the clock *)
  let marking = Array.copy net.Pnet.m0 in
  for t = 0 to n_trans - 1 do
    if State.marking_enables net marking t then enabled_since.(t) <- 0
  done;
  (* constraints as (a, b, w) meaning S_b - S_a <= w, nodes 0..n *)
  let constraints = ref [] in
  let add a b w = constraints := (a, b, w) :: !constraints in
  for i = 1 to n do
    add i (i - 1) 0 (* S_{i-1} <= S_i *)
  done;
  let ok = ref true in
  for i = 1 to n do
    if !ok then begin
      let tid = seq.(i - 1) in
      let e = enabled_since.(tid) in
      if e < 0 then ok := false
      else begin
        let itv = Pnet.interval net tid in
        (* S_i - S_e >= EFT  <=>  S_e - S_i <= -EFT *)
        add i e (-Time_interval.eft itv);
        (match Time_interval.lft itv with
        | Time_interval.Finite l -> add e i l
        | Time_interval.Infinity -> ());
        (* urgency: every transition enabled across this firing bounds
           this step's date *)
        for t = 0 to n_trans - 1 do
          if t <> tid && enabled_since.(t) >= 0 then
            match Time_interval.lft (Pnet.interval net t) with
            | Time_interval.Finite l -> add enabled_since.(t) i l
            | Time_interval.Infinity -> ()
        done;
        (* fire untimed, update enabling points per Def 3.1 *)
        let before = Array.copy marking in
        Array.iter (fun (p, w) -> marking.(p) <- marking.(p) - w) net.Pnet.pre.(tid);
        Array.iter (fun (p, w) -> marking.(p) <- marking.(p) + w) net.Pnet.post.(tid);
        for t = 0 to n_trans - 1 do
          if not (State.marking_enables net marking t) then enabled_since.(t) <- -1
          else if t = tid || not (State.marking_enables net before t) then
            enabled_since.(t) <- i
          (* persistent: keep its enabling point *)
        done
      end
    end
  done;
  if not !ok then None
  else begin
    (* earliest solution: x_i = -d(i) with d = shortest paths from node
       0 over reversed edges (b -> a, weight w) *)
    let dist = Array.make (n + 1) Dbm.infinity in
    dist.(0) <- 0;
    let edges = List.map (fun (a, b, w) -> (b, a, w)) !constraints in
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds <= n + 1 do
      changed := false;
      incr rounds;
      List.iter
        (fun (src, dst, w) ->
          if dist.(src) < Dbm.infinity && dist.(src) + w < dist.(dst) then begin
            dist.(dst) <- dist.(src) + w;
            changed := true
          end)
        edges
    done;
    if !changed then None (* negative cycle: infeasible *)
    else begin
      let dates = Array.init (n + 1) (fun i -> -dist.(i)) in
      if Array.exists (fun d -> d < 0) dates then None
      else begin
        let actions =
          List.init n (fun i -> (seq.(i), dates.(i + 1) - dates.(i)))
        in
        Some (Schedule.of_actions actions)
      end
    end
  end

let extraction_counter result =
  Ezrt_obs.Metrics.incr
    (Ezrt_obs.Metrics.counter
       ~help:"Class-path realizations by extraction strategy"
       ~labels:[ ("result", result) ]
       "ezrt_class_extractions_total")

let extract net sequence =
  match extract_greedy net sequence with
  | Some schedule ->
    extraction_counter "greedy";
    Some schedule
  | None -> (
    Ezrt_obs.Trace.instant ~cat:"search" "extract-greedy-failed";
    match extract_exact net sequence with
    | Some schedule -> (
      (* certify against the step semantics before handing it out *)
      match Schedule.replay net schedule with
      | (_ : State.t) ->
        extraction_counter "exact";
        Some schedule
      | exception Invalid_argument _ ->
        extraction_counter "failed";
        Ezrt_obs.Trace.instant ~cat:"search" "extract-exact-failed";
        None)
    | None ->
      extraction_counter "failed";
      Ezrt_obs.Trace.instant ~cat:"search" "extract-exact-failed";
      None)

let no_cancel () = false

(* Candidate order: smallest delay lower bound first (ties by id) —
   the dense-time analogue of the discrete engine's earliest-first
   policy. *)
let order_candidates net c candidates =
  let key tid =
    let lo, _ = State_class.delay_bounds net c tid in
    (lo, tid)
  in
  List.map snd
    (List.sort compare (List.map (fun tid -> (key tid, tid)) candidates))

(* Inclusion pruning is sound for the feasibility verdict only when
   priorities cannot un-suppress a transition inside the subsumed
   class.  Candidates of a contained class are a subset of the
   container's, so the minimum priority over them can only be WORSE
   (numerically larger); a transition filtered out in the container
   could then survive the filter in the contained class and open a
   branch the container never explores.  Two structural conditions
   rule that out for the nets our translation emits:

   (A) every transition with a better-than-default priority has static
       interval [0,0] — its time-firability is then marking-determined
       (an enabled [0,0] transition always can fire first), so it is a
       candidate in the contained class iff it is one in the
       container, and the priority filter picks the same winners;
   (B) every transition with a worse-than-default priority marks a
       dead place — it only ever fires into a state the search prunes
       as dead, so losing it in the contained class cannot lose a
       feasible witness, and a miss reachable below the contained
       class is equally reachable below the container.

   The translation satisfies both (deadline_ok/finish/bookkeeping are
   immediate; only deadline-miss watchdogs are demoted, and they mark
   [pdm]); hand-written nets may not, so subsumption silently turns
   itself off when the check fails. *)
let subsumption_applicable (model : Translate.t) =
  let net = model.Translate.net in
  let default = Pnet.default_priority in
  let marks_dead tid =
    Array.exists
      (fun (p, _) -> List.mem p model.Translate.dead_places)
      net.Pnet.post.(tid)
  in
  let immediate tid =
    let itv = Pnet.interval net tid in
    Time_interval.eft itv = 0 && Time_interval.lft itv = Time_interval.Finite 0
  in
  let rec go tid =
    tid < 0
    ||
    let p = Pnet.priority net tid in
    (if p < default then immediate tid
     else if p > default then marks_dead tid
     else true)
    && go (tid - 1)
  in
  go (Pnet.transition_count net - 1)

(* Class-level stubborn-set gate: the discrete reduction's urgency
   condition "min DUB = 0" becomes "some enabled transition has delay
   upper bound 0" — no time can elapse before the next firing, so the
   exchange argument of {!Ezrt_tpn.Indep} applies to the class graph
   verbatim (every delay in scope is the point 0 and the domain is
   unchanged by commuting independent firings).  Probes are only
   evaluated when the shared gate in {!Search.apply_por} asks for
   them. *)
let apply_por ~ind net (c : State_class.t) firable =
  let enabled tid =
    Array.exists (fun t -> t = tid) c.State_class.enabled
  in
  let dub_zero tid = snd (State_class.delay_bounds net c tid) = 0 in
  let urgent () = Array.exists dub_zero c.State_class.enabled in
  Search.apply_por ~ind ~urgent ~enabled ~dub_zero
    ~tokens:(fun p -> c.State_class.marking.(p))
    firable

let to_search_metrics (m : metrics) =
  {
    Search.stored = m.stored;
    visited = m.visited;
    eager = m.eager;
    backtracks = m.backtracks;
    max_depth = m.max_depth;
    elapsed_s = m.elapsed_s;
    por_reduced = m.por_reduced;
    por_fallback = m.por_fallback;
    por_skipped = m.por_skipped;
  }

(* Both class engines flush through {!Search.flush_metrics} (so the
   ezrt_search_*/ezrt_por_* series mean the same thing under every
   engine label) plus the class-store extras. *)
let flush_class_metrics ~engine (m : metrics) (store : Class_store.stats) =
  Search.flush_metrics ~engine (to_search_metrics m);
  let open Ezrt_obs in
  let labels = [ ("engine", engine) ] in
  let bump name help v = Metrics.add (Metrics.counter ~help ~labels name) v in
  bump "ezrt_class_store_entries_total" "Canonical domains stored"
    store.Class_store.entries;
  bump "ezrt_class_store_contended_total"
    "Class-store stripe locks that had to wait"
    store.Class_store.contended;
  bump "ezrt_class_subsumed_total"
    "Classes pruned by inclusion in an already-explored domain"
    store.Class_store.subsumed

let find_schedule ?(max_stored = 500_000) ?(subsume = true) ?(por = true)
    ?(cancel = no_cancel) model =
  let net = model.Translate.net in
  let started = Unix.gettimeofday () in
  let subsume = subsume && subsumption_applicable model in
  let ind = Search.por_context { Search.default_options with por } model in
  Ezrt_obs.Trace.begin_span ~cat:"search"
    ~args:
      [
        ("engine", Ezrt_obs.Trace.Str "classes");
        ("subsume", Ezrt_obs.Trace.Str (string_of_bool subsume));
      ]
    "search";
  let store = Class_store.create ~subsume () in
  let counters =
    { c_stored = 0; c_visited = 0; c_eager = 0; c_backtracks = 0;
      c_max_depth = 0; c_por_reduced = 0; c_por_fallback = 0;
      c_por_skipped = 0 }
  in
  let progress =
    let snapshot () =
      let dt = Unix.gettimeofday () -. started in
      Printf.sprintf
        "search[classes]: %d stored, %d visited, depth %d, %.0f classes/s"
        counters.c_stored counters.c_visited counters.c_max_depth
        (float_of_int counters.c_visited /. max 1e-9 dt)
    in
    fun () -> Ezrt_obs.Progress.tick snapshot
  in
  let budget_hit = ref false in
  (* a lone firable transition leaves no choice: advance without
     creating a search node.  Cancel is polled here too — chains of
     forced firings are where a losing portfolio member used to
     linger after its rivals finished. *)
  let rec eager_advance path_rev c =
    if is_final model c || is_dead model c then (path_rev, c)
    else if cancel () then begin
      budget_hit := true;
      (path_rev, c)
    end
    else
      match State_class.firable net c with
      | [ tid ] ->
        counters.c_eager <- counters.c_eager + 1;
        counters.c_visited <- counters.c_visited + 1;
        eager_advance (tid :: path_rev) (State_class.fire net c tid)
      | [] | _ :: _ -> (path_rev, c)
  in
  (* The store claims a class at FIRST visit (not, as the engine once
     did, memoizing only fully-exhausted failures): the first claimant
     explores the whole choice space below the class before the DFS
     ever reaches a second copy, so skipping duplicates loses no
     witness, and a class graph cycle terminates instead of recursing
     forever.  Subsumed classes are skipped on the same argument —
     their behaviours are a subset of a stored class's (see
     [subsumption_applicable]). *)
  let rec dfs depth path_rev c =
    if depth > counters.c_max_depth then counters.c_max_depth <- depth;
    if is_final model c then raise (Found path_rev);
    if cancel () then budget_hit := true;
    if (not (is_dead model c)) && not !budget_hit then begin
      if counters.c_stored >= max_stored then budget_hit := true
      else
        match Class_store.visit store c with
        | Class_store.Duplicate | Class_store.Subsumed -> ()
        | Class_store.Fresh ->
          counters.c_stored <- counters.c_stored + 1;
          counters.c_visited <- counters.c_visited + 1;
          progress ();
          let firable, por_out = apply_por ~ind net c (State_class.firable net c) in
          (match por_out with
          | Search.Por_reduced ->
            counters.c_por_reduced <- counters.c_por_reduced + 1
          | Search.Por_fallback ->
            counters.c_por_fallback <- counters.c_por_fallback + 1
          | Search.Por_skipped ->
            if por then counters.c_por_skipped <- counters.c_por_skipped + 1);
          let candidates = order_candidates net c firable in
          List.iter
            (fun tid ->
              if not !budget_hit then begin
                let path_rev, c' =
                  eager_advance (tid :: path_rev) (State_class.fire net c tid)
                in
                dfs (depth + 1) path_rev c'
              end)
            candidates;
          counters.c_backtracks <- counters.c_backtracks + 1
    end
  in
  let outcome =
    Fun.protect
      ~finally:(fun () ->
        Ezrt_obs.Trace.end_span ~cat:"search"
          ~args:
            [
              ("stored", Ezrt_obs.Trace.Int counters.c_stored);
              ("visited", Ezrt_obs.Trace.Int counters.c_visited);
              ("subsumed",
               Ezrt_obs.Trace.Int (Class_store.stats store).Class_store.subsumed);
            ]
          "search")
      (fun () ->
        match
          let path0, c0 = eager_advance [] (State_class.initial net) in
          if is_final model c0 then raise (Found path0);
          dfs 0 path0 c0
        with
        | () -> Error (if !budget_hit then Budget_exhausted else Infeasible)
        | exception Found path_rev -> (
          match extract net (List.rev path_rev) with
          | Some schedule -> Ok schedule
          | None -> Error Extraction_failed))
  in
  let elapsed_s = Unix.gettimeofday () -. started in
  let store_stats = Class_store.stats store in
  let metrics =
    {
      stored = counters.c_stored;
      visited = counters.c_visited;
      eager = counters.c_eager;
      backtracks = counters.c_backtracks;
      subsumed = store_stats.Class_store.subsumed;
      max_depth = counters.c_max_depth;
      elapsed_s;
      por_reduced = counters.c_por_reduced;
      por_fallback = counters.c_por_fallback;
      por_skipped = counters.c_por_skipped;
    }
  in
  flush_class_metrics ~engine:"classes" metrics store_stats;
  (outcome, metrics)
