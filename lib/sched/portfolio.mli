(** Parallel portfolio search over OCaml 5 domains.

    Races independent search configurations — branch-ordering policy
    × inserted-idle branching × engine (discrete TLTS or dense-time
    state classes) — against the same translated model and returns the
    first feasible schedule found.  Losing configurations are stopped
    through the searches' [cancel] hooks.  Any returned schedule goes
    through the same certification pipeline as single-engine results
    ({!Validator.check}); which config wins under parallel execution is
    timing-dependent, the schedule's validity is not. *)

type engine =
  | Discrete  (** {!Search.find_schedule}, incremental engine *)
  | Classes  (** {!Class_search.find_schedule} *)
  | Parallel of int
      (** {!Par_search.find_schedule} with this many worker domains —
          a shared-visited member racing the independent ones with the
          host's leftover domains *)
  | Class_parallel of int
      (** {!Par_class.find_schedule} with this many worker domains —
          the work-stealing class engine over a shared
          {!Ezrt_tpn.Class_store} *)

type config = {
  engine : engine;
  policy : Priority.policy;  (** ignored by [Classes] *)
  latest_release : bool;  (** ignored by [Classes] *)
}

val config_to_string : config -> string

type attempt = {
  config : config;
  outcome : (Schedule.t, Search.failure) result;
  metrics : Search.metrics;
  cancelled : bool;
      (** the member observed the race's cancellation signal before
          reaching its own verdict — its [Budget_exhausted] is the
          race stopping it, not a real budget exhaustion *)
}

(** Verdict of the analytic pre-pass ({!Ezrt_analysis.Schedulability})
    that runs before the race unless disabled. *)
type prepass =
  | Prepass_off  (** [~analysis:false] *)
  | Prepass_unknown of string  (** analysis decided nothing; raced *)
  | Prepass_rejected of Ezrt_analysis.Schedulability.witness
      (** witnessed quick-reject: the outcome is [Error Infeasible]
          without any configuration running *)
  | Prepass_accepted
      (** EDF quick-accept whose certificate passed
          {!Validator.certify}: the outcome is that schedule, no
          configuration ran, [winner = None] *)
  | Prepass_uncertified of string
      (** the analyzer claimed feasible but certification failed — the
          claim was discarded and the race ran normally (the
          differential fuzzer treats this as a divergence) *)

val prepass_to_string : prepass -> string

type t = {
  outcome : (Schedule.t, Search.failure) result;
      (** the winner's schedule; [Infeasible] only when the analytic
          pre-pass proved it (with a witness) or every configuration
          ran to exhaustion *)
  winner : config option;
  attempts : attempt list;
      (** configurations that reached a verdict before the race was
          decided, in configuration order *)
  configs_started : int;
      (** members that actually began a search — queue slots claimed
          after the race was decided don't count *)
  domains_used : int;
      (** worker domains that ran at least one member, as opposed to
          the requested worker count *)
  elapsed_s : float;
  prepass : prepass;
}

val has_release_window : Ezrt_blocks.Translate.t -> bool
(** Whether some release transition has a non-point firing window —
    the precondition for latest-release configs to add coverage
    (via {!Ezrt_blocks.Meaning.is_release}). *)

val default_configs : Ezrt_blocks.Translate.t -> config list
(** Every ordering policy on the discrete engine, latest-release
    variants when {!has_release_window}, the class engine, and — on
    hosts with at least 4 recommended domains — 2-domain shared-visited
    parallel members for both the discrete and the class engine. *)

val find_schedule :
  ?configs:config list ->
  ?max_stored:int ->
  ?domains:int ->
  ?analysis:bool ->
  ?por:bool ->
  ?cancel:(unit -> bool) ->
  Ezrt_blocks.Translate.t ->
  t
(** [max_stored] bounds each configuration separately (default
    500_000).  [por] (default [true]) is threaded into every member —
    discrete engines via {!Search.options.por}, class engines via
    their [?por] parameter — so [--no-por] disables the stubborn-set
    reduction across the whole race.  [domains] caps the worker domains (default: one per
    config, at most [Domain.recommended_domain_count () - 1]); with
    [~domains:1] the configs run sequentially on the calling domain in
    order, which is deterministic.

    [cancel] (default: never) is ORed with the race's internal stop
    signal and polled by every member at every search node and by the
    queue before starting a member — the hook wall-clock deadlines
    (`--timeout`, service jobs) map onto.  A cancelled race reports
    [Budget_exhausted], never [Infeasible].

    [analysis] (default [true]) runs the analytic pre-pass first: a
    witnessed quick-reject or a certified EDF quick-accept
    short-circuits the race entirely (see {!prepass});
    [~analysis:false] — the CLI's [--no-analysis] — always races.

    Observability: every race opens a [portfolio] span and one
    [portfolio-member] span per started config (on the member's own
    domain, so traces show parallel tracks), and updates the
    [ezrt_portfolio_races_total], [ezrt_portfolio_members_total]
    (labels [config], [outcome∈winner|loser|cancelled]) and
    [ezrt_portfolio_loser_stored_states_total] counters
    ({!Ezrt_obs.Metrics}), making losers' work visible. *)
