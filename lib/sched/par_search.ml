(* Work-stealing parallel DFS over a single search problem.

   N domains expand disjoint subtrees of the same TLTS from a shared
   frontier.  Each worker owns a deque of unexpanded nodes: it pushes
   and pops at the top (plain LIFO, so a lone worker explores exactly
   the sequential incremental engine's order) while idle workers steal
   half a victim's deque from the bottom — the shallowest nodes, whose
   subtrees are the largest and amortize the steal.

   A node is an action list (the branching firing plus the eager
   immediate chain discovered at first expansion) and a parent
   pointer.  Every worker walks its own [State.Incremental] engine;
   moving from the last expanded node to the next popped one is an
   undo to their lowest common ancestor plus a replay of the actions
   on the downward path — O(1) amortized for own-deque pops, O(depth)
   only after a steal.

   Pruning is shared: a node claims its packed state in one
   [Packed_state.Sharded] table before expanding ([add] returning
   [false] means some worker already owns that state — skip).  Claiming
   at first visit rather than memoizing at exhaustion keeps each
   distinct state expanded at most once globally, which is what turns
   extra domains into speedup instead of duplicated work.

   Soundness: every pushed node is eventually expanded or the search
   stops early (goal / budget / cancel), and a state's first claimant
   explores the full choice space below it, so a reachable final
   marking is always found and exhaustion (pending counter hitting 0)
   really is infeasibility of the explored choice space.  The
   feasibility verdict is deterministic; the specific schedule may
   differ from the sequential engines' because subtree completion
   order depends on the race — the differ and tests encode exactly
   that contract. *)

open Ezrt_tpn
module Translate = Ezrt_blocks.Translate

type t = {
  outcome : (Schedule.t, Search.failure) result;
  metrics : Search.metrics;
  domains_used : int;
  steals : int;
  shared_hits : int;
  replayed_fires : int;
  table : Packed_state.Sharded.stats;
}

(* --- search-tree nodes --------------------------------------------- *)

type node = {
  mutable actions : (Pnet.transition_id * int) list;
      (* firings from the parent's state to this node's state; the
         branch action, extended in place with the eager chain at
         first expansion (before any child is published) *)
  parent : node;  (* the root points at itself *)
  depth : int;  (* tree depth, root = 0 *)
  mutable edepth : int;  (* engine depth at this node's state *)
}

(* [origin] is every worker's initial position — engine at depth 0,
   never pushed, never mutated.  The search root proper is a child of
   it, so its eager extension (mutating [actions]/[edepth] at first
   expansion) never invalidates another worker's position invariant
   [cur.edepth = engine depth]. *)
let make_origin () =
  let rec origin = { actions = []; parent = origin; depth = 0; edepth = 0 } in
  origin

(* --- per-worker deques: the shared [Deque] ring buffer ------------- *)

(* --- per-worker state ---------------------------------------------- *)

type worker_stats = {
  mutable w_stored : int;
  mutable w_visited : int;
  mutable w_eager : int;
  mutable w_backtracks : int;  (* expansions that published no child *)
  mutable w_max_depth : int;
  mutable w_steals : int;
  mutable w_shared_hits : int;
  mutable w_replayed : int;  (* firings replayed while repositioning *)
  mutable w_por_reduced : int;
  mutable w_por_fallback : int;
  mutable w_por_skipped : int;
}

let zero_stats () =
  { w_stored = 0; w_visited = 0; w_eager = 0; w_backtracks = 0;
    w_max_depth = 0; w_steals = 0; w_shared_hits = 0; w_replayed = 0;
    w_por_reduced = 0; w_por_fallback = 0; w_por_skipped = 0 }

let default_domains () = max 2 (Domain.recommended_domain_count () - 1)

let find_schedule ?(options = Search.default_options) ?domains
    ?(cancel = Search.no_cancel) model =
  let started = Unix.gettimeofday () in
  let net = model.Translate.net in
  (* one immutable reduction context, shared read-only by all domains;
     each worker applies it per-node against its own engine *)
  let ind = Search.por_context options model in
  let n_workers = match domains with Some d -> max 1 d | None -> default_domains () in
  Ezrt_obs.Trace.begin_span ~cat:"search"
    ~args:
      [
        ("engine", Ezrt_obs.Trace.Str "discrete-parallel");
        ("policy", Ezrt_obs.Trace.Str (Priority.to_string options.Search.policy));
        ("domains", Ezrt_obs.Trace.Int n_workers);
      ]
    "search";
  (* Modest initial sizing — stripes grow geometrically, so this only
     tunes when rehashing starts, and pre-sizing for [max_stored]
     would zero megabytes per search. *)
  let visited =
    Packed_state.Sharded.create
      ~expected:(max 1024 (min options.Search.max_stored 0x10000))
      ()
  in
  let origin = make_origin () in
  let root = { actions = []; parent = origin; depth = 1; edepth = 0 } in
  let deques = Array.init n_workers (fun _ -> Deque.create origin) in
  let all_stats = Array.init n_workers (fun _ -> zero_stats ()) in
  let stop = Atomic.make false in
  let budget_hit = Atomic.make false in
  let cancelled = Atomic.make false in
  let pending = Atomic.make 1 (* the root *) in
  let stored_total = Atomic.make 0 in
  let result : node option Atomic.t = Atomic.make None in
  Deque.push_top deques.(0) root;
  (* Helpers are spawned lazily by worker 0, once its deque actually
     holds stealable work: a helper born earlier would only spin or
     sleep waiting for the frontier to fill, and on few cores that
     waiting taxes the very worker producing the work. *)
  let helpers = ref [||] in
  let helpers_spawned = ref (n_workers <= 1) in
  let spawn_helpers = ref (fun () -> ()) in
  let worker_body id =
    let eng = State.Incremental.create net in
    let view = Priority.view_of_engine eng in
    let w = all_stats.(id) in
    let deque = deques.(id) in
    Ezrt_obs.Trace.begin_span ~cat:"search"
      ~args:[ ("worker", Ezrt_obs.Trace.Int id) ]
      "par-worker";
    let is_final () =
      State.Incremental.tokens eng model.Translate.final_place >= 1
    in
    let is_dead () =
      List.exists
        (fun pdm -> State.Incremental.tokens eng pdm > 0)
        model.Translate.dead_places
    in
    (* current position: the last node whose state the engine is at *)
    let cur = ref origin in
    let rec lca a b chain =
      if a == b then (a, chain)
      else if a.depth > b.depth then lca a.parent b chain
      else if b.depth > a.depth then lca a b.parent (b :: chain)
      else lca a.parent b.parent (b :: chain)
    in
    let move_to target =
      (* fast path: the spine — target is a child of the current
         position, so it's a plain replay of its own actions *)
      if target.parent == !cur then
        List.iter
          (fun (tid, q) -> State.Incremental.fire eng tid q)
          target.actions
      else begin
        let anc, chain = lca !cur target [] in
        State.Incremental.undo_to eng anc.edepth;
        List.iter
          (fun n ->
            List.iter
              (fun (tid, q) ->
                State.Incremental.fire eng tid q;
                if n != target then w.w_replayed <- w.w_replayed + 1)
              n.actions)
          chain
      end;
      cur := target
    in
    (* Collapse chains of forced immediate firings, extending the
       node's action list in place; published to other workers only
       via the deque mutexes, after this returns. *)
    let eager_extend node =
      let extra = ref [] in
      let continue = ref true in
      while !continue do
        if
          options.Search.partial_order
          && (not (is_final ()))
          && not (is_dead ())
        then
          match State.Incremental.fireable eng with
          | [ tid ] when Search.is_immediate net tid ->
            w.w_eager <- w.w_eager + 1;
            w.w_visited <- w.w_visited + 1;
            State.Incremental.fire eng tid 0;
            extra := (tid, 0) :: !extra
          | [] | _ :: _ -> continue := false
        else continue := false
      done;
      if !extra <> [] then node.actions <- node.actions @ List.rev !extra;
      node.edepth <- State.Incremental.depth eng
    in
    let progress =
      let t0 = Unix.gettimeofday () in
      let snapshot () =
        let dt = Unix.gettimeofday () -. t0 in
        let stored = Atomic.get stored_total in
        Printf.sprintf "search[parallel x%d]: %d stored, %.0f states/s"
          n_workers stored
          (float_of_int stored /. max 1e-9 dt)
      in
      fun () -> if id = 0 then Ezrt_obs.Progress.tick snapshot
    in
    (* Expands [node]; returns the first child to expand next, kept "in
       hand" so the DFS spine never round-trips through the deque —
       only siblings are published for stealing. *)
    let expand node =
      move_to node;
      eager_extend node;
      if node.depth > w.w_max_depth then w.w_max_depth <- node.depth;
      let next =
        if is_final () then begin
          if Atomic.compare_and_set result None (Some node) then ();
          Atomic.set stop true;
          None
        end
        else if is_dead () then begin
          w.w_backtracks <- w.w_backtracks + 1;
          None
        end
        else begin
          let key = Packed_state.of_engine eng in
          if not (Packed_state.Sharded.add visited key) then begin
            w.w_shared_hits <- w.w_shared_hits + 1;
            None
          end
          else if
            Atomic.fetch_and_add stored_total 1 >= options.Search.max_stored
          then begin
            Atomic.set budget_hit true;
            Atomic.set stop true;
            None
          end
          else begin
            w.w_stored <- w.w_stored + 1;
            w.w_visited <- w.w_visited + 1;
            progress ();
            let fireable, por_outcome =
              Search.apply_por ~ind
                ~urgent:(fun () ->
                  State.Incremental.min_dub eng = Time_interval.Finite 0)
                ~enabled:(State.Incremental.is_enabled eng)
                ~dub_zero:(fun t ->
                  State.Incremental.dub eng t = Time_interval.Finite 0)
                ~tokens:(State.Incremental.tokens eng)
                (State.Incremental.fireable eng)
            in
            (match por_outcome with
            | Search.Por_reduced -> w.w_por_reduced <- w.w_por_reduced + 1
            | Search.Por_fallback -> w.w_por_fallback <- w.w_por_fallback + 1
            | Search.Por_skipped ->
              if options.Search.por then
                w.w_por_skipped <- w.w_por_skipped + 1);
            let ordered =
              Priority.order_view options.Search.policy model view fireable
            in
            (* Children are built in one pass with no intermediate
               lists — the node machinery competes with the sequential
               engine on allocation, and minor collections are what the
               race is decided by.  The engine is not mutated while
               publishing, so firing domains can be read inline.  The
               first candidate is kept in hand; the rest accumulate in
               reverse, which is exactly push order: the deque top ends
               up holding the second candidate, preserving sequential
               order for a lone worker. *)
            let first = ref None in
            let rev_rest = ref [] in
            let count = ref 0 in
            List.iter
              (fun tid ->
                let domain = State.Incremental.firing_domain eng tid in
                List.iter
                  (fun q ->
                    let child =
                      {
                        actions = [ (tid, q) ];
                        parent = node;
                        depth = node.depth + 1;
                        edepth = node.edepth + 1;
                      }
                    in
                    incr count;
                    match !first with
                    | None -> first := Some child
                    | Some _ -> rev_rest := child :: !rev_rest)
                  (Search.firing_times options model tid domain))
              ordered;
            match !first with
            | None ->
              w.w_backtracks <- w.w_backtracks + 1;
              None
            | Some _ as f ->
              ignore (Atomic.fetch_and_add pending !count);
              if !rev_rest <> [] then Deque.push_list deque !rev_rest;
              f
          end
        end
      in
      Atomic.decr pending;
      next
    in
    (* Workers beyond the hardware's recommended domain count are
       opportunistic: a long-lived extra domain slows the whole
       process on a saturated host (every stop-the-world minor
       collection synchronizes with it), so they steal only what they
       will expand, contribute that bounded burst of claims to the
       shared table, and exit — any leftovers are stolen back by the
       survivors.  At or below the recommended count workers run for
       the whole search. *)
    let opportunistic = id >= Domain.recommended_domain_count () in
    let burst = ref 8 in
    let try_steal () =
      let got = ref false in
      let k = ref 1 in
      let limit = if opportunistic then Some !burst else None in
      while (not !got) && !k < n_workers do
        let victim = (id + !k) mod n_workers in
        (match Deque.steal_half ?limit deques.(victim) with
        | [] -> ()
        | items ->
          got := true;
          w.w_steals <- w.w_steals + 1;
          List.iter (fun it -> Deque.push_top deque it) items);
        incr k
      done;
      !got
    in
    let in_hand = ref None in
    let idle = ref 0 in
    let running = ref true in
    while !running do
      if Atomic.get stop then running := false
      else begin
        if id = 0 && cancel () then begin
          Atomic.set cancelled true;
          Atomic.set stop true
        end;
        let next =
          match !in_hand with
          | Some _ as n ->
            in_hand := None;
            n
          | None -> Deque.pop_top deque
        in
        match next with
        | Some node ->
          idle := 0;
          in_hand := expand node;
          if id = 0 && not !helpers_spawned then !spawn_helpers ();
          if opportunistic then begin
            decr burst;
            if !burst <= 0 then begin
              (* hand the unfinished spine back for the survivors *)
              (match !in_hand with
              | Some n ->
                Deque.push_top deque n;
                in_hand := None
              | None -> ());
              running := false
            end
          end
        | None ->
          if n_workers > 1 && try_steal () then idle := 0
          else if Atomic.get pending = 0 then running := false
          else begin
            incr idle;
            (* back off instead of spinning: on few cores the worker
               holding the work needs the cycles, and a sleeping domain
               also cooperates with stop-the-world collections *)
            if !idle < 2 then Domain.cpu_relax () else Unix.sleepf 0.0002;
            if opportunistic && !idle > 8 then running := false
          end
      end
    done;
    Ezrt_obs.Trace.end_span ~cat:"search"
      ~args:
        [
          ("worker", Ezrt_obs.Trace.Int id);
          ("stored", Ezrt_obs.Trace.Int w.w_stored);
          ("steals", Ezrt_obs.Trace.Int w.w_steals);
          ("shared_hits", Ezrt_obs.Trace.Int w.w_shared_hits);
        ]
      "par-worker"
  in
  (spawn_helpers :=
     fun () ->
       if Deque.length deques.(0) >= n_workers - 1 then begin
         helpers_spawned := true;
         helpers :=
           Array.init (n_workers - 1) (fun i ->
               Domain.spawn (fun () -> worker_body (i + 1)))
       end);
  worker_body 0;
  Array.iter Domain.join !helpers;
  let elapsed_s = Unix.gettimeofday () -. started in
  (* aggregate per-worker counters *)
  let sum f = Array.fold_left (fun acc w -> acc + f w) 0 all_stats in
  let metrics =
    {
      Search.stored = sum (fun w -> w.w_stored);
      visited = sum (fun w -> w.w_visited);
      eager = sum (fun w -> w.w_eager);
      backtracks = sum (fun w -> w.w_backtracks);
      max_depth =
        Array.fold_left (fun acc w -> max acc w.w_max_depth) 0 all_stats;
      elapsed_s;
      por_reduced = sum (fun w -> w.w_por_reduced);
      por_fallback = sum (fun w -> w.w_por_fallback);
      por_skipped = sum (fun w -> w.w_por_skipped);
    }
  in
  let domains_used =
    Array.fold_left
      (fun acc w ->
        if w.w_visited > 0 || w.w_shared_hits > 0 || w.w_steals > 0 then
          acc + 1
        else acc)
      0 all_stats
  in
  let table = Packed_state.Sharded.stats visited in
  let steals = sum (fun w -> w.w_steals) in
  let shared_hits = sum (fun w -> w.w_shared_hits) in
  let replayed_fires = sum (fun w -> w.w_replayed) in
  let outcome =
    match Atomic.get result with
    | Some node ->
      let rec path n acc =
        if n == origin then acc else path n.parent (n.actions @ acc)
      in
      Ok (Schedule.of_actions (path node []))
    | None ->
      if Atomic.get cancelled || Atomic.get budget_hit then
        Error Search.Budget_exhausted
      else Error Search.Infeasible
  in
  Ezrt_obs.Trace.end_span ~cat:"search"
    ~args:
      [
        ("stored", Ezrt_obs.Trace.Int metrics.Search.stored);
        ("steals", Ezrt_obs.Trace.Int steals);
        ("domains_used", Ezrt_obs.Trace.Int domains_used);
      ]
    "search";
  (* common search counters (incl. the POR triple) go through the same
     flush as the sequential engines, so every engine label carries an
     identical series vocabulary; only the parallel-specific counters
     are bumped by hand *)
  Search.flush_metrics ~engine:"discrete-parallel" metrics;
  let open Ezrt_obs in
  let labels = [ ("engine", "discrete-parallel") ] in
  let bump name help v = Metrics.add (Metrics.counter ~help ~labels name) v in
  bump "ezrt_par_steals_total" "Work-stealing operations" steals;
  bump "ezrt_par_shared_hits_total"
    "Expansions skipped because the state was already claimed in the \
     shared table"
    shared_hits;
  bump "ezrt_par_replayed_fires_total"
    "Firings replayed while repositioning after pops and steals"
    replayed_fires;
  bump "ezrt_par_table_contended_total"
    "Shared-table lock acquisitions that had to wait"
    table.Packed_state.Sharded.contended;
  bump "ezrt_par_table_entries_total" "Shared visited-table entries"
    table.Packed_state.Sharded.entries;
  {
    outcome;
    metrics;
    domains_used;
    steals;
    shared_hits;
    replayed_fires;
    table;
  }
