(** Pre-runtime schedule synthesis over the dense-time state-class
    graph ({!Ezrt_tpn.State_class}) instead of the discrete TLTS.

    A class branches only on *which* transition fires next (the firing
    time is kept symbolic), so the search needs no firing-time
    heuristic and is complete for dense-time feasibility.  When a path
    to the final marking is found, a concrete integer schedule is
    extracted by replaying the transition sequence through the
    discrete semantics at the earliest legal times, then handed to the
    same certification pipeline as {!Search} results. *)

type metrics = {
  stored : int;  (** classes examined as search nodes *)
  visited : int;
  eager : int;  (** classes skipped by singleton-chain collapsing *)
  backtracks : int;
  subsumed : int;
      (** classes pruned by inclusion in an already-explored domain *)
  max_depth : int;
  elapsed_s : float;
  por_reduced : int;
      (** expanded classes where the stubborn set pruned ≥ 1 candidate *)
  por_fallback : int;
      (** urgent classes where no sound strict reduction was found *)
  por_skipped : int;
      (** expanded classes where the reduction gate did not apply *)
}

type failure =
  | Infeasible
  | Budget_exhausted
  | Extraction_failed
      (** the class path could not be realized at earliest integer
          times — not expected for translation-generated nets; surfaced
          rather than silently retried *)

val failure_to_string : failure -> string

val subsumption_applicable : Ezrt_blocks.Translate.t -> bool
(** Whether inclusion-based pruning preserves the feasibility verdict
    under this net's priorities: every better-than-default priority is
    on a [0,0] transition (marking-determined firability) and every
    worse-than-default priority marks a dead place.  Both engines gate
    [~subsume] on this, so hand-written nets that violate it fall back
    to exact visited-set pruning automatically. *)

val find_schedule :
  ?max_stored:int ->
  ?subsume:bool ->
  ?por:bool ->
  ?cancel:(unit -> bool) ->
  Ezrt_blocks.Translate.t ->
  (Schedule.t, failure) result * metrics
(** [max_stored] defaults to 500_000.  [subsume] (default [true])
    enables inclusion pruning when {!subsumption_applicable} holds.
    [por] (default [true]) enables the class-level stubborn-set
    reduction, gated through {!Search.por_context} exactly like the
    discrete engines (automatically inert on nets failing
    {!Ezrt_tpn.Indep.applicable}).  [cancel] is polled at every
    visited class, including forced eager-advance chains (default:
    never); when it returns [true] the search unwinds and reports
    {!Budget_exhausted} — used by the parallel portfolio to stop
    losing configurations. *)

(**/**)

(* Shared with the parallel class engine ({!Par_class}). *)

val is_final : Ezrt_blocks.Translate.t -> Ezrt_tpn.State_class.t -> bool
val is_dead : Ezrt_blocks.Translate.t -> Ezrt_tpn.State_class.t -> bool

val order_candidates :
  Ezrt_tpn.Pnet.t ->
  Ezrt_tpn.State_class.t ->
  Ezrt_tpn.Pnet.transition_id list ->
  Ezrt_tpn.Pnet.transition_id list

val extract :
  Ezrt_tpn.Pnet.t -> Ezrt_tpn.Pnet.transition_id list -> Schedule.t option

val apply_por :
  ind:Ezrt_tpn.Indep.t option ->
  Ezrt_tpn.Pnet.t ->
  Ezrt_tpn.State_class.t ->
  Ezrt_tpn.Pnet.transition_id list ->
  Ezrt_tpn.Pnet.transition_id list * Search.por_outcome
(* Class-level reduction gate: urgency is "some enabled transition has
   delay upper bound 0".  Shared by both class engines. *)

val to_search_metrics : metrics -> Search.metrics

val flush_class_metrics :
  engine:string -> metrics -> Ezrt_tpn.Class_store.stats -> unit

(**/**)
