(** Pre-runtime schedule synthesis over the dense-time state-class
    graph ({!Ezrt_tpn.State_class}) instead of the discrete TLTS.

    A class branches only on *which* transition fires next (the firing
    time is kept symbolic), so the search needs no firing-time
    heuristic and is complete for dense-time feasibility.  When a path
    to the final marking is found, a concrete integer schedule is
    extracted by replaying the transition sequence through the
    discrete semantics at the earliest legal times, then handed to the
    same certification pipeline as {!Search} results. *)

type metrics = {
  stored : int;  (** classes examined as search nodes *)
  visited : int;
  eager : int;  (** classes skipped by singleton-chain collapsing *)
  backtracks : int;
  max_depth : int;
  elapsed_s : float;
}

type failure =
  | Infeasible
  | Budget_exhausted
  | Extraction_failed
      (** the class path could not be realized at earliest integer
          times — not expected for translation-generated nets; surfaced
          rather than silently retried *)

val failure_to_string : failure -> string

val find_schedule :
  ?max_stored:int ->
  ?cancel:(unit -> bool) ->
  Ezrt_blocks.Translate.t ->
  (Schedule.t, failure) result * metrics
(** [max_stored] defaults to 500_000.  [cancel] is polled at every
    stored class (default: never); when it returns [true] the search
    unwinds and reports {!Budget_exhausted} — used by the parallel
    portfolio to stop losing configurations. *)
