module Spec = Ezrt_spec.Spec
module Dsl = Ezrt_spec.Dsl

type divergent = {
  index : int;
  spec : Spec.t;
  divergences : Differ.divergence list;
  shrunk : Spec.t;
}

type stats = {
  seed : int;
  count : int;
  generated : int;
  feasible : int;
  infeasible : int;
  unknown : int;
  divergent : divergent list;
  elapsed_s : float;
}

let class_verdict (report : Differ.report) =
  List.find_opt (fun r -> r.Differ.engine = "classes") report.Differ.results
  |> Option.map (fun r -> r.Differ.verdict)

(* Per-spec observability: one verdict counter bump per engine result,
   so campaigns expose which engine said what how often. *)
let obs_spec_result (report : Differ.report) =
  let open Ezrt_obs in
  List.iter
    (fun (r : Differ.engine_result) ->
      let verdict =
        match r.Differ.verdict with
        | Differ.Feasible _ -> "feasible"
        | Differ.Infeasible -> "infeasible"
        | Differ.Unknown _ -> "unknown"
      in
      Metrics.incr
        (Metrics.counter ~help:"Fuzz verdicts by engine"
           ~labels:[ ("engine", r.Differ.engine); ("verdict", verdict) ]
           "ezrt_fuzz_engine_verdicts_total"))
    report.Differ.results;
  Metrics.incr
    (Metrics.counter ~help:"Fuzzed specifications checked"
       "ezrt_fuzz_specs_total");
  if report.Differ.divergences <> [] then
    Metrics.incr
      (Metrics.counter ~help:"Fuzzed specifications that diverged"
         "ezrt_fuzz_divergent_total")

let run ?(profile = Spec_gen.default) ?max_stored ?class_domains ?engines
    ?(shrink = true) ?log ~seed ~count () =
  let started = Unix.gettimeofday () in
  let feasible = ref 0 and infeasible = ref 0 and unknown = ref 0 in
  let divergent = ref [] in
  let done_specs = ref 0 in
  let progress_snapshot () =
    let dt = Unix.gettimeofday () -. started in
    Printf.sprintf "fuzz[seed %d]: %d/%d specs, %.1f specs/s, %d divergent"
      seed !done_specs count
      (float_of_int !done_specs /. max 1e-9 dt)
      (List.length !divergent)
  in
  Ezrt_obs.Trace.begin_span ~cat:"fuzz"
    ~args:
      [ ("seed", Ezrt_obs.Trace.Int seed); ("count", Ezrt_obs.Trace.Int count) ]
    "fuzz-campaign";
  Fun.protect
    ~finally:(fun () -> Ezrt_obs.Trace.end_span ~cat:"fuzz" "fuzz-campaign")
  @@ fun () ->
  for index = 0 to count - 1 do
    Ezrt_obs.Trace.begin_span ~cat:"fuzz"
      ~args:[ ("index", Ezrt_obs.Trace.Int index) ]
      "fuzz-spec";
    let spec = Spec_gen.spec_at ~profile ~seed index in
    let report = Differ.check ?max_stored ?class_domains ?engines spec in
    obs_spec_result report;
    (match log with Some f -> f index spec report | None -> ());
    (match class_verdict report with
    | Some (Differ.Feasible _) -> incr feasible
    | Some Differ.Infeasible -> incr infeasible
    | Some (Differ.Unknown _) | None -> incr unknown);
    if report.Differ.divergences <> [] then begin
      Ezrt_obs.Trace.instant ~cat:"fuzz" "divergence"
        ~args:[ ("index", Ezrt_obs.Trace.Int index) ];
      let shrunk =
        if shrink then
          Shrink.minimize
            ~failing:(fun s ->
              (Differ.check ?max_stored ?class_domains ?engines s)
                .Differ.divergences
              <> [])
            spec
        else spec
      in
      divergent :=
        { index; spec; divergences = report.Differ.divergences; shrunk }
        :: !divergent
    end;
    Ezrt_obs.Trace.end_span ~cat:"fuzz"
      ~args:[ ("index", Ezrt_obs.Trace.Int index) ]
      "fuzz-spec";
    incr done_specs;
    Ezrt_obs.Progress.checkpoint progress_snapshot
  done;
  {
    seed;
    count;
    generated = count;
    feasible = !feasible;
    infeasible = !infeasible;
    unknown = !unknown;
    divergent = List.rev !divergent;
    elapsed_s = Unix.gettimeofday () -. started;
  }

let specs_per_s stats =
  if stats.elapsed_s > 0.0 then float_of_int stats.generated /. stats.elapsed_s
  else 0.0

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let write_corpus ~dir stats =
  if stats.divergent <> [] then ensure_dir dir;
  List.map
    (fun d ->
      let path =
        Filename.concat dir (Printf.sprintf "div-seed%d-i%d.xml" stats.seed d.index)
      in
      Dsl.save_file path d.shrunk;
      path)
    stats.divergent
