module Spec = Ezrt_spec.Spec
module Dsl = Ezrt_spec.Dsl

type divergent = {
  index : int;
  spec : Spec.t;
  divergences : Differ.divergence list;
  shrunk : Spec.t;
}

type stats = {
  seed : int;
  count : int;
  generated : int;
  feasible : int;
  infeasible : int;
  unknown : int;
  divergent : divergent list;
  elapsed_s : float;
}

let class_verdict (report : Differ.report) =
  List.find_opt (fun r -> r.Differ.engine = "classes") report.Differ.results
  |> Option.map (fun r -> r.Differ.verdict)

let run ?(profile = Spec_gen.default) ?max_stored ?(shrink = true) ?log ~seed
    ~count () =
  let started = Unix.gettimeofday () in
  let feasible = ref 0 and infeasible = ref 0 and unknown = ref 0 in
  let divergent = ref [] in
  for index = 0 to count - 1 do
    let spec = Spec_gen.spec_at ~profile ~seed index in
    let report = Differ.check ?max_stored spec in
    (match log with Some f -> f index spec report | None -> ());
    (match class_verdict report with
    | Some (Differ.Feasible _) -> incr feasible
    | Some Differ.Infeasible -> incr infeasible
    | Some (Differ.Unknown _) | None -> incr unknown);
    if report.Differ.divergences <> [] then begin
      let shrunk =
        if shrink then
          Shrink.minimize ~failing:(Differ.failing ?max_stored) spec
        else spec
      in
      divergent :=
        { index; spec; divergences = report.Differ.divergences; shrunk }
        :: !divergent
    end
  done;
  {
    seed;
    count;
    generated = count;
    feasible = !feasible;
    infeasible = !infeasible;
    unknown = !unknown;
    divergent = List.rev !divergent;
    elapsed_s = Unix.gettimeofday () -. started;
  }

let specs_per_s stats =
  if stats.elapsed_s > 0.0 then float_of_int stats.generated /. stats.elapsed_s
  else 0.0

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let write_corpus ~dir stats =
  if stats.divergent <> [] then ensure_dir dir;
  List.map
    (fun d ->
      let path =
        Filename.concat dir (Printf.sprintf "div-seed%d-i%d.xml" stats.seed d.index)
      in
      Dsl.save_file path d.shrunk;
      path)
    stats.divergent
