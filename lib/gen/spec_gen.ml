module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec
module Message = Ezrt_spec.Message
module Validate = Ezrt_spec.Validate
module Time_interval = Ezrt_tpn.Time_interval

type profile = {
  min_tasks : int;
  max_tasks : int;
  preemptive_fraction : float;
  precedence_density : float;
  exclusion_density : float;
  message_fraction : float;
  utilization : float * float;
  boundary_fraction : float;
  boundary_utilization : float * float;
  period_menus : int array array;
  max_phase : int;
}

(* Period menus are harmonic-ish with small LCMs so the hyper-period —
   and with it every engine's search space — stays small enough to run
   five engines per spec at scale. *)
let default =
  {
    min_tasks = 2;
    max_tasks = 6;
    preemptive_fraction = 0.35;
    precedence_density = 0.3;
    exclusion_density = 0.2;
    message_fraction = 0.25;
    utilization = (0.2, 0.75);
    boundary_fraction = 0.35;
    boundary_utilization = (0.8, 1.0);
    period_menus =
      [|
        [| 10; 20; 40 |];
        [| 12; 24; 48 |];
        [| 10; 30; 30 |];
        [| 16; 16; 32 |];
        [| 20; 20; 20 |];
      |];
    max_phase = 3;
  }

let smoke =
  {
    default with
    max_tasks = 4;
    utilization = (0.2, 0.6);
    boundary_fraction = 0.25;
    boundary_utilization = (0.75, 0.95);
  }

let pick_range rng (lo, hi) = lo +. (Rng.float rng *. (hi -. lo))

(* One candidate draw; may be invalid in rare corners (the caller
   retries with a derived stream). *)
let draw profile name rng =
  let boundary = Rng.chance rng profile.boundary_fraction in
  let menu = Rng.choose rng profile.period_menus in
  let n = Rng.int_in rng profile.min_tasks profile.max_tasks in
  let target_u =
    pick_range rng
      (if boundary then profile.boundary_utilization else profile.utilization)
  in
  let weights = Array.init n (fun _ -> 0.5 +. Rng.float rng) in
  let weight_sum = Array.fold_left ( +. ) 0.0 weights in
  let periods = Array.init n (fun _ -> Rng.choose rng menu) in
  let wcets =
    Array.init n (fun i ->
        let share = target_u *. weights.(i) /. weight_sum in
        let c =
          int_of_float (Float.round (share *. float_of_int periods.(i)))
        in
        max 1 (min c periods.(i)))
  in
  (* trim back under the schedulability ceiling; U > 1 would not even
     validate *)
  let utilization () =
    let u = ref 0.0 in
    Array.iteri
      (fun i c -> u := !u +. (float_of_int c /. float_of_int periods.(i)))
      wcets;
    !u
  in
  let rec trim () =
    if utilization () > 0.995 then begin
      let largest = ref (-1) in
      Array.iteri
        (fun i c ->
          if c > 1 && (!largest < 0 || c > wcets.(!largest)) then largest := i)
        wcets;
      if !largest >= 0 then begin
        wcets.(!largest) <- wcets.(!largest) - 1;
        trim ()
      end
    end
  in
  trim ();
  let tasks =
    List.init n (fun i ->
        let period = periods.(i) and wcet = wcets.(i) in
        let deadline =
          if boundary then
            (* tight: at most ~50% slack over the WCET *)
            min period (wcet + Rng.int rng (1 + (wcet / 2)))
          else wcet + Rng.int rng (period - wcet + 1)
        in
        let release =
          if deadline = wcet || Rng.chance rng 0.6 then 0
          else Rng.int rng (deadline - wcet + 1)
        in
        let phase =
          if Rng.chance rng 0.25 then Rng.int_in rng 0 profile.max_phase else 0
        in
        Task.make
          ~name:(Printf.sprintf "t%d" i)
          ~phase ~release ~wcet ~deadline ~period
          ~mode:
            (if Rng.chance rng profile.preemptive_fraction then Task.Preemptive
             else Task.Non_preemptive)
          ~energy:(Rng.int rng 4) ())
  in
  let task_arr = Array.of_list tasks in
  let pairs p =
    List.concat
      (List.init n (fun i ->
           List.filter_map
             (fun j -> if p i j then Some (i, j) else None)
             (List.init n (fun j -> j))))
  in
  let id i = task_arr.(i).Task.id in
  let equal_period i j = i < j && periods.(i) = periods.(j) in
  let precedences =
    List.map
      (fun (i, j) -> (id i, id j))
      (Rng.sub_list rng ~keep:profile.precedence_density (pairs equal_period))
  in
  let exclusions =
    List.filter
      (fun pair -> not (List.mem pair precedences))
      (List.map
         (fun (i, j) -> (id i, id j))
         (Rng.sub_list rng ~keep:profile.exclusion_density
            (pairs (fun i j -> i < j))))
  in
  let message_candidates =
    List.filter
      (fun (i, j) -> not (List.mem (id i, id j) precedences))
      (pairs equal_period)
  in
  let messages =
    if message_candidates = [] || not (Rng.chance rng profile.message_fraction)
    then []
    else begin
      let i, j =
        List.nth message_candidates (Rng.int rng (List.length message_candidates))
      in
      [
        Message.make ~name:"m0" ~sender:(id i) ~receiver:(id j)
          ~grant_time:(Rng.int rng 2) ~comm_time:(Rng.int rng 3) ();
      ]
    end
  in
  (* a message already orders its pair; a mutex on top of it only slows
     the engines down without adding coverage *)
  let exclusions =
    List.filter
      (fun pair ->
        not
          (List.exists
             (fun (m : Message.t) ->
               Spec.normalize_exclusion (m.Message.sender, m.Message.receiver)
               = Spec.normalize_exclusion pair)
             messages))
      exclusions
  in
  Spec.make ~name ~tasks ~precedences ~exclusions ~messages ()

let spec ?(profile = default) ?(name = "fuzz") rng =
  let rec attempt k =
    let candidate = draw profile name (if k = 0 then rng else Rng.derive rng k) in
    if Validate.is_valid candidate then candidate
    else if k < 50 then attempt (k + 1)
    else
      (* unreachable by construction; surface loudly rather than loop *)
      Validate.check_exn candidate |> fun () -> candidate
  in
  attempt 0

let spec_at ?(profile = default) ~seed index =
  spec ~profile
    ~name:(Printf.sprintf "fuzz-s%d-i%d" seed index)
    (Rng.derive (Rng.create seed) index)

let interval ?(max_eft = 20) ?(max_width = 20) rng =
  let eft = Rng.int_in rng 0 max_eft in
  if Rng.chance rng 0.15 then Time_interval.make_unbounded eft
  else Time_interval.make eft (eft + Rng.int_in rng 0 max_width)

let cell rng =
  match Rng.int rng 5 with
  | 0 -> Rng.int_in rng (-1) 8  (* the shapes real states are made of *)
  | 1 -> Rng.choose rng [| -0x8000; -1; 0; 0x7fff |]  (* 16-bit edges *)
  | 2 -> Rng.choose rng [| -0x40000000; -0x8001; 0x8000; 0x3fffffff |]
  | 3 -> Rng.choose rng [| min_int; -0x40000001; 0x40000000; max_int |]
  | _ -> Rng.int_in rng (-0x8000) 0x7fff
