(** Greedy counterexample minimization.

    Given a failing specification (one on which {!Differ.check} finds
    a divergence, or any other predicate), repeatedly applies the
    simplest fail-preserving reduction until none applies: drop a
    task, drop a relation or message, zero a phase/release/energy,
    shrink a WCET, relax a deadline, halve a period, demote a task to
    non-preemptive, strip source code.  Every accepted step keeps the
    spec valid and strictly decreases a size measure, so the loop
    terminates on a locally-minimal failing spec — small enough to
    read, file, and replay from the regression corpus. *)

val size : Ezrt_spec.Spec.t -> int
(** The strictly-decreasing measure: task count dominates, then
    relations, messages and parameter magnitudes. *)

val candidates : Ezrt_spec.Spec.t -> Ezrt_spec.Spec.t list
(** One-step reductions, most aggressive first.  Invalid candidates
    are included; {!minimize} filters them. *)

val minimize :
  ?max_steps:int ->
  failing:(Ezrt_spec.Spec.t -> bool) ->
  Ezrt_spec.Spec.t ->
  Ezrt_spec.Spec.t
(** [minimize ~failing spec] assumes [failing spec]; returns a valid
    spec on which [failing] still holds and no candidate reduction
    does.  [max_steps] (default 500) bounds accepted reductions as a
    safety net. *)
