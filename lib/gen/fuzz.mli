(** Differential fuzzing campaigns: generate → cross-check → shrink.

    A campaign is fully determined by [(seed, count, profile)]: spec
    [i] is drawn from an independent stream derived from the seed, so
    runs are byte-for-byte reproducible and a single divergent index
    can be replayed alone with {!Spec_gen.spec_at}. *)

type divergent = {
  index : int;  (** which generated spec diverged *)
  spec : Ezrt_spec.Spec.t;  (** the original offender *)
  divergences : Differ.divergence list;
  shrunk : Ezrt_spec.Spec.t;
      (** minimal failing spec (equal to [spec] when shrinking is off) *)
}

type stats = {
  seed : int;
  count : int;
  generated : int;
  feasible : int;
  infeasible : int;
  unknown : int;  (** budget-limited: no claim either way *)
  divergent : divergent list;
  elapsed_s : float;
}

val run :
  ?profile:Spec_gen.profile ->
  ?max_stored:int ->
  ?class_domains:int ->
  ?engines:string list ->
  ?shrink:bool ->
  ?log:(int -> Ezrt_spec.Spec.t -> Differ.report -> unit) ->
  seed:int ->
  count:int ->
  unit ->
  stats
(** Generate [count] specs from [seed] and {!Differ.check} each.
    [class_domains] is forwarded to {!Differ.check} — greater than one
    runs the classes engine through the parallel searcher.
    [engines] restricts which built-in engines run and cross-check
    (see {!Differ.builtin_engines}) — e.g. [["parallel"; "reference"]]
    bisects parallel-only divergences quickly; shrinking uses the same
    restriction so the minimized spec still exhibits the restricted
    divergence.  Divergent specs are minimized with {!Shrink.minimize}
    unless [shrink:false].  [log] observes every checked spec (for
    progress reporting).  The feasible/infeasible tally follows the
    class engine's verdict, the most authoritative one (always
    [unknown] when "classes" is filtered out). *)

val specs_per_s : stats -> float

val write_corpus : dir:string -> stats -> string list
(** Serialize each divergent case's shrunken spec to
    [dir/div-seed<seed>-i<index>.xml] (creating [dir] if needed) so
    the regression suite replays it forever.  Returns the paths. *)
