(** Seeded random generation of specification models.

    Every generated specification is well-formed by construction and
    validated ({!Ezrt_spec.Validate}) before being returned, so the
    differential fuzzer only ever feeds the engines inputs they are
    specified to handle: mixed preemptive/non-preemptive task sets,
    acyclic PRECEDES relations, EXCLUDES pairs, inter-task messages,
    small hyper-periods (period menus), and a tunable fraction of
    specs whose utilization and deadline slack put them near the
    feasibility boundary — where engine disagreements live. *)

type profile = {
  min_tasks : int;
  max_tasks : int;
  preemptive_fraction : float;  (** probability a task is preemptive *)
  precedence_density : float;
      (** probability of a PRECEDES edge per equal-period pair (edges
          go from lower to higher task index, so DAGs by construction) *)
  exclusion_density : float;  (** probability of EXCLUDES per pair *)
  message_fraction : float;  (** probability the spec carries a message *)
  utilization : float * float;  (** target range for ordinary specs *)
  boundary_fraction : float;
      (** fraction of specs drawn with {!field-boundary_utilization}
          and tight deadlines instead *)
  boundary_utilization : float * float;
  period_menus : int array array;
      (** one menu per spec; small LCMs keep hyper-periods searchable *)
  max_phase : int;
}

val default : profile

val smoke : profile
(** Smaller task sets and lower utilization: fast enough for a CI
    smoke run. *)

val spec : ?profile:profile -> ?name:string -> Rng.t -> Ezrt_spec.Spec.t
(** Draw one valid specification.  Consumes the stream; use
    {!Rng.derive} per index for position-independent reproducibility. *)

val spec_at : ?profile:profile -> seed:int -> int -> Ezrt_spec.Spec.t
(** [spec_at ~seed i] is spec number [i] of the campaign keyed by
    [seed] — independent of every other index. *)

(** {2 Primitive distributions}

    Shared with the property-test suites so qcheck-style invariants
    sample the same value shapes the fuzzer exercises. *)

val interval : ?max_eft:int -> ?max_width:int -> Rng.t -> Ezrt_tpn.Time_interval.t
(** A static firing interval; unbounded LFTs appear with small
    probability. *)

val cell : Rng.t -> int
(** A state-vector cell value spanning the packed encoding's width
    classes: small counts, 16-bit extremes, 32-bit and full-word
    values (clock cells may be [-1]). *)
