module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec
module Message = Ezrt_spec.Message
module Validate = Ezrt_spec.Validate

let size (spec : Spec.t) =
  let task_cost (t : Task.t) =
    t.Task.wcet + t.Task.deadline + t.Task.period + t.Task.phase
    + t.Task.release + t.Task.energy
    + (match t.Task.mode with Task.Preemptive -> 1 | Task.Non_preemptive -> 0)
    + (match t.Task.code with Some _ -> 1 | None -> 0)
  in
  (1000 * List.length spec.Spec.tasks)
  + (10 * List.length spec.Spec.precedences)
  + (10 * List.length spec.Spec.exclusions)
  + (20 * List.length spec.Spec.messages)
  + spec.Spec.disp_overhead
  + List.fold_left (fun acc t -> acc + task_cost t) 0 spec.Spec.tasks

let without xs rebuild =
  List.mapi (fun i _ -> rebuild (List.filteri (fun j _ -> j <> i) xs)) xs

let candidates (spec : Spec.t) =
  let drop_tasks =
    List.map (fun (t : Task.t) -> Spec.drop_task spec t.Task.id) spec.Spec.tasks
  in
  let drop_messages =
    without spec.Spec.messages (fun messages -> { spec with messages })
  in
  let drop_precedences =
    without spec.Spec.precedences (fun precedences -> { spec with precedences })
  in
  let drop_exclusions =
    without spec.Spec.exclusions (fun exclusions -> { spec with exclusions })
  in
  let zero_overhead =
    if spec.Spec.disp_overhead > 0 then [ { spec with disp_overhead = 0 } ]
    else []
  in
  let simplify_tasks =
    List.concat_map
      (fun (t : Task.t) ->
        let set f = Spec.map_task spec t.Task.id f in
        List.filter_map
          (fun c -> c)
          [
            (if t.Task.phase > 0 then
               Some (set (fun t -> { t with Task.phase = 0 }))
             else None);
            (if t.Task.release > 0 then
               Some (set (fun t -> { t with Task.release = 0 }))
             else None);
            (if t.Task.energy > 0 then
               Some (set (fun t -> { t with Task.energy = 0 }))
             else None);
            (if t.Task.code <> None then
               Some (set (fun t -> { t with Task.code = None }))
             else None);
            (if t.Task.mode = Task.Preemptive then
               Some (set (fun t -> { t with Task.mode = Task.Non_preemptive }))
             else None);
            (if t.Task.wcet > 1 then
               Some (set (fun t -> { t with Task.wcet = 1 }))
             else None);
            (if t.Task.wcet > 1 then
               Some (set (fun t -> { t with Task.wcet = t.Task.wcet / 2 }))
             else None);
            (* rounding the deadline up to the period removes the
               tightness; rounding halfway keeps some of it *)
            (if t.Task.deadline < t.Task.period then
               Some (set (fun t -> { t with Task.deadline = t.Task.period }))
             else None);
            (if t.Task.period - t.Task.deadline > 1 then
               Some
                 (set (fun t ->
                      {
                        t with
                        Task.deadline =
                          t.Task.deadline
                          + ((t.Task.period - t.Task.deadline) / 2);
                      }))
             else None);
            (if t.Task.period > 1 then
               Some (set (fun t -> { t with Task.period = t.Task.period / 2 }))
             else None);
          ])
      spec.Spec.tasks
  in
  drop_tasks @ drop_messages @ drop_precedences @ drop_exclusions
  @ zero_overhead @ simplify_tasks

let minimize ?(max_steps = 500) ~failing spec =
  let rec go steps spec =
    if steps >= max_steps then spec
    else
      let current = size spec in
      match
        List.find_opt
          (fun candidate ->
            size candidate < current
            && Validate.is_valid candidate
            && failing candidate)
          (candidates spec)
      with
      | Some smaller -> go (steps + 1) smaller
      | None -> spec
  in
  go 0 spec
