(** Deterministic pseudo-random number generator for the fuzzing
    subsystem (SplitMix64).

    [Random.State] would also be deterministic, but its stream is not
    specified across OCaml releases; the fuzzer's whole value rests on
    "same seed ⇒ same specs, byte for byte, forever", so the generator
    is pinned down to an exact, trivially portable algorithm instead.
    Streams can be derived ({!derive}) so spec [i] of a campaign does
    not depend on how much randomness specs [0..i-1] consumed. *)

type t

val create : int -> t
(** A fresh stream seeded from an integer. *)

val derive : t -> int -> t
(** [derive rng salt] is an independent stream deterministically keyed
    by [rng]'s seed and [salt]; the parent stream is not advanced. *)

val int : t -> int -> int
(** [int rng bound] draws uniformly from [0 .. bound-1].
    Raises [Invalid_argument] when [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in rng lo hi] draws uniformly from [lo .. hi] inclusive. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [0, 1). *)

val chance : t -> float -> bool
(** [chance rng p] is true with probability [p]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sub_list : t -> keep:float -> 'a list -> 'a list
(** Independent coin per element with probability [keep]. *)
