module Spec = Ezrt_spec.Spec
module Validate = Ezrt_spec.Validate
module Translate = Ezrt_blocks.Translate
module Search = Ezrt_sched.Search
module Class_search = Ezrt_sched.Class_search
module Portfolio = Ezrt_sched.Portfolio
module Par_search = Ezrt_sched.Par_search
module Par_class = Ezrt_sched.Par_class
module Schedule = Ezrt_sched.Schedule
module Validator = Ezrt_sched.Validator
module Sim = Ezrt_baseline.Sim
module Rta = Ezrt_baseline.Rta
module Schedulability = Ezrt_analysis.Schedulability
module Lint = Ezrt_lint.Lint
module Invariants = Ezrt_tpn.Invariants
module Tlts = Ezrt_tpn.Tlts
module State = Ezrt_tpn.State
module Pnet = Ezrt_tpn.Pnet

type verdict =
  | Feasible of Schedule.t
  | Infeasible
  | Unknown of string

let verdict_to_string = function
  | Feasible s -> Printf.sprintf "feasible (%d firings)" (Schedule.length s)
  | Infeasible -> "infeasible"
  | Unknown why -> Printf.sprintf "unknown (%s)" why

type engine_result = {
  engine : string;
  verdict : verdict;
}

type divergence =
  | Invalid_input of string
  | Translation_crash of string
  | Verdict_mismatch of {
      engine_a : string;
      verdict_a : string;
      engine_b : string;
      verdict_b : string;
      reason : string;
    }
  | Schedule_mismatch of { engine_a : string; engine_b : string }
  | Uncertified of { engine : string; failure : string }
  | Extraction_failed
  | Runtime_beats_synthesis of { policy : string }
  | Rta_beats_synthesis
  | Overutilized_feasible of float
  | Engine_crash of { engine : string; exn : string }
  | Analysis_witness_invalid of string
  | Lint_crash of string
  | Lint_dead_scheduled of { engine : string; transition : string }
  | Lint_certificate_violated of string
  | Lint_gate_mismatch of string
  | Lint_shrink_regression of { dropped_task : string; diagnostic : string }

let divergence_to_string = function
  | Invalid_input msg -> Printf.sprintf "spec does not validate: %s" msg
  | Translation_crash msg -> Printf.sprintf "translation crashed: %s" msg
  | Verdict_mismatch { engine_a; verdict_a; engine_b; verdict_b; reason } ->
    Printf.sprintf "%s says %s but %s says %s (%s)" engine_a verdict_a
      engine_b verdict_b reason
  | Schedule_mismatch { engine_a; engine_b } ->
    Printf.sprintf "%s and %s found different schedules (must be \
                    action-identical)" engine_a engine_b
  | Uncertified { engine; failure } ->
    Printf.sprintf "%s produced an uncertified schedule: %s" engine failure
  | Extraction_failed -> "class engine failed to extract a concrete schedule"
  | Runtime_beats_synthesis { policy } ->
    Printf.sprintf
      "exhaustive search says infeasible but a certified %s simulation \
       meets every deadline"
      policy
  | Rta_beats_synthesis ->
    "exhaustive search says infeasible but response-time analysis proves \
     the task set schedulable"
  | Overutilized_feasible u ->
    Printf.sprintf "feasible verdict at utilization %.3f > 1" u
  | Engine_crash { engine; exn } ->
    Printf.sprintf "%s raised %s" engine exn
  | Analysis_witness_invalid w ->
    Printf.sprintf
      "analysis emitted a quick-reject witness that does not re-evaluate \
       to true: %s" w
  | Lint_crash exn -> Printf.sprintf "structural lint crashed: %s" exn
  | Lint_dead_scheduled { engine; transition } ->
    Printf.sprintf
      "lint proved %s structurally dead, yet %s's feasible schedule fires it"
      transition engine
  | Lint_certificate_violated msg ->
    Printf.sprintf
      "a lint P-invariant certificate fails on a reachable state: %s" msg
  | Lint_gate_mismatch msg ->
    Printf.sprintf "lint gate-explain disagrees with the live gate: %s" msg
  | Lint_shrink_regression { dropped_task; diagnostic } ->
    Printf.sprintf
      "lint-clean spec stops being clean after dropping task %s: %s"
      dropped_task diagnostic

type report = {
  results : engine_result list;
  divergences : divergence list;
}

let of_search = function
  | Ok s -> Feasible s
  | Error Search.Infeasible -> Infeasible
  | Error Search.Budget_exhausted -> Unknown "stored-state budget exhausted"

let feasible = function Feasible _ -> true | Infeasible | Unknown _ -> false

let builtin_engines =
  [ "reference"; "incremental"; "latest-release"; "classes"; "portfolio";
    "parallel"; "analysis"; "no-por"; "classes-no-por" ]

let check ?(max_stored = 50_000) ?(class_domains = 1) ?engines ?(extra = [])
    spec =
  (match engines with
  | Some names ->
    List.iter
      (fun n ->
        if not (List.mem n builtin_engines) then
          invalid_arg
            (Printf.sprintf
               "Differ.check: unknown engine %S (known: %s)" n
               (String.concat ", " builtin_engines)))
      names
  | None -> ());
  match (Validate.check spec).Validate.errors with
  | e :: _ -> {
      results = [];
      divergences = [ Invalid_input (Validate.error_to_string e) ];
    }
  | [] -> (
    match Translate.translate spec with
    | exception exn ->
      { results = []; divergences = [ Translation_crash (Printexc.to_string exn) ] }
    | model ->
      let divergences = ref [] in
      let flag d = divergences := d :: !divergences in
      let guard engine f =
        match f () with
        | v -> v
        | exception exn ->
          flag (Engine_crash { engine; exn = Printexc.to_string exn });
          Unknown "crashed"
      in
      let discrete ~incremental ~latest_release () =
        of_search
          (fst
             (Search.find_schedule
                ~options:
                  {
                    Search.default_options with
                    incremental;
                    latest_release;
                    max_stored;
                  }
                model))
      in
      let want name =
        match engines with None -> true | Some names -> List.mem name names
      in
      let run name f = if want name then Some (guard name f) else None in
      let reference =
        run "reference" (discrete ~incremental:false ~latest_release:false)
      in
      let incremental =
        run "incremental" (discrete ~incremental:true ~latest_release:false)
      in
      let latest =
        run "latest-release" (discrete ~incremental:true ~latest_release:true)
      in
      let of_class = function
        | Ok s -> Feasible s
        | Error Class_search.Infeasible -> Infeasible
        | Error Class_search.Budget_exhausted ->
          Unknown "stored-state budget exhausted"
        | Error Class_search.Extraction_failed ->
          flag Extraction_failed;
          Unknown "extraction failed"
      in
      let classes =
        run "classes" (fun () ->
            of_class
              (if class_domains > 1 then
                 (Par_class.find_schedule ~max_stored ~domains:class_domains
                    model)
                   .Par_class.outcome
               else fst (Class_search.find_schedule ~max_stored model)))
      in
      (* POR-off baselines: the default rows above run with the
         stubborn-set reduction on, so these two re-run the incremental
         discrete and the class engine with [por = false] for theorem
         (g) below *)
      let no_por =
        run "no-por" (fun () ->
            of_search
              (fst
                 (Search.find_schedule
                    ~options:
                      { Search.default_options with max_stored; por = false }
                    model)))
      in
      let classes_no_por =
        run "classes-no-por" (fun () ->
            of_class
              (fst (Class_search.find_schedule ~max_stored ~por:false model)))
      in
      let portfolio =
        (* analysis off: keep this row a pure race result so the
           analysis row below is checked against real searches, not
           against itself through the pre-pass *)
        run "portfolio" (fun () ->
            match
              (Portfolio.find_schedule ~max_stored ~domains:1 ~analysis:false
                 model)
                .Portfolio.outcome
            with
            | Ok s -> Feasible s
            | Error Search.Infeasible -> Infeasible
            | Error Search.Budget_exhausted ->
              Unknown "stored-state budget exhausted")
      in
      let parallel =
        run "parallel" (fun () ->
            let r =
              Par_search.find_schedule
                ~options:{ Search.default_options with max_stored }
                ~domains:2 model
            in
            of_search r.Par_search.outcome)
      in
      let analysis =
        run "analysis" (fun () ->
            match Schedulability.analyze model with
            | Schedulability.Infeasible w ->
              (* acceptance is never taken on faith and neither is
                 rejection: the witness must re-evaluate to true
                 against the spec, independently of the analyzer *)
              if Schedulability.witness_holds spec w then Infeasible
              else begin
                flag
                  (Analysis_witness_invalid (Schedulability.witness_to_string w));
                Unknown "invalid quick-reject witness"
              end
            | Schedulability.Feasible actions ->
              Feasible (Schedule.of_actions actions)
            | Schedulability.Unknown why -> Unknown why)
      in
      let extra_results =
        List.map
          (fun (name, run) -> (name, guard name (fun () -> run ~max_stored model)))
          extra
      in
      let results =
        List.filter_map
          (fun (name, v) -> Option.map (fun v -> (name, v)) v)
          [
            ("reference", reference);
            ("incremental", incremental);
            ("latest-release", latest);
            ("classes", classes);
            ("portfolio", portfolio);
            ("parallel", parallel);
            ("analysis", analysis);
            ("no-por", no_por);
            ("classes-no-por", classes_no_por);
          ]
        @ extra_results
      in
      (* (a) every feasible schedule must be certified independently *)
      List.iter
        (fun (engine, verdict) ->
          match verdict with
          | Feasible schedule -> (
            match Validator.certify model schedule with
            | Ok _ -> ()
            | Error failure ->
              flag
                (Uncertified
                   {
                     engine;
                     failure = Validator.certification_failure_to_string failure;
                   }))
          | Infeasible | Unknown _ -> ())
        results;
      (* (b) the reference and incremental engines walk the identical
         tree: verdicts and schedules must match exactly *)
      let mismatch a va b vb reason =
        flag
          (Verdict_mismatch
             {
               engine_a = a;
               verdict_a = verdict_to_string va;
               engine_b = b;
               verdict_b = verdict_to_string vb;
               reason;
             })
      in
      let feasible_o = function Some v -> feasible v | None -> false in
      let getv = function Some v -> v | None -> Unknown "skipped" in
      (match reference, incremental with
      | Some (Feasible a), Some (Feasible b) ->
        if a.Schedule.entries <> b.Schedule.entries then
          flag
            (Schedule_mismatch
               { engine_a = "reference"; engine_b = "incremental" })
      | Some Infeasible, Some Infeasible -> ()
      | Some (Unknown _), Some (Unknown _) -> ()
      | Some a, Some b ->
        mismatch "reference" a "incremental" b
          "the two discrete engines must explore the same tree"
      | None, _ | _, None -> ());
      (* the parallel engine explores the same discrete choice space as
         the sequential engines but subtree completion order is racy:
         decisive verdicts must agree, schedules may differ (its
         feasible schedules are still certified by (a) above) *)
      let sequential_discrete =
        match reference with
        | Some v -> Some ("reference", v)
        | None -> Option.map (fun v -> ("incremental", v)) incremental
      in
      (match sequential_discrete, parallel with
      | Some (name, (Feasible _ as a)), Some (Infeasible as b)
      | Some (name, (Infeasible as a)), Some (Feasible _ as b) ->
        mismatch name a "parallel" b
          "the parallel engine explores the same choice space: verdicts \
           must agree even though schedules may differ"
      | _ -> ());
      (* extra engines claim default discrete semantics *)
      List.iter
        (fun (name, verdict) ->
          match reference, verdict with
          | Some (Feasible _), Infeasible | Some Infeasible, Feasible _ ->
            mismatch "reference" (getv reference) name verdict
              "engine claims default discrete search semantics"
          | _ -> ())
        extra_results;
      (* (c) implication lattice between decisive verdicts *)
      if feasible_o reference && classes = Some Infeasible then
        mismatch "reference" (getv reference) "classes" Infeasible
          "dense-time state classes are complete";
      if feasible_o latest && classes = Some Infeasible then
        mismatch "latest-release" (getv latest) "classes" Infeasible
          "dense-time state classes are complete";
      if feasible_o reference && latest = Some Infeasible then
        mismatch "reference" (getv reference) "latest-release" Infeasible
          "latest-release branching explores a superset";
      if
        (feasible_o reference || feasible_o latest || feasible_o classes)
        && portfolio = Some Infeasible
      then
        mismatch "portfolio" Infeasible "classes" (getv classes)
          "the portfolio races all of these configurations";
      if
        feasible_o portfolio && reference = Some Infeasible
        && latest = Some Infeasible && classes = Some Infeasible
      then
        mismatch "portfolio" (getv portfolio) "classes" Infeasible
          "the portfolio has no engine outside these configurations";
      (* (d) feasibility is impossible above full utilization *)
      let u = Spec.utilization spec in
      if u > 1.0 +. 1e-9 && List.exists (fun (_, v) -> feasible v) results then
        flag (Overutilized_feasible u);
      (* (e) infeasible verdicts of the exhaustive engines against the
         constructive and analytic baselines.  Gated on the class
         engine's verdict: it is the complete one, so a certified
         witness against it is a contradiction, never noise (the
         work-conserving discrete engines may legitimately miss
         schedules that need inserted idle time). *)
      if classes = Some Infeasible then begin
        (match Sim.any_feasible spec with
        | Some (policy, result) -> (
          (* only a simulation the independent validator certifies is a
             witness; Sim-internal quirks must not create noise *)
          match Validator.check model result.Sim.segments with
          | Ok () ->
            flag
              (Runtime_beats_synthesis { policy = Sim.policy_to_string policy })
          | Error _ -> ())
        | None -> ());
        match Rta.analyze spec with
        | Ok report when report.Rta.all_schedulable -> flag Rta_beats_synthesis
        | Ok _ | Error _ -> ()
      end;
      (* (f) the analytic pre-pass against every search engine.  Its
         quick-reject conditions are necessary, so an analysis
         [Infeasible] contradicts any engine's feasible schedule; its
         quick-accept certificate is built from discrete [dlb] firings,
         so it lies inside every engine's branch space and contradicts
         any engine's exhaustive [Infeasible].  [Unknown] is the only
         analysis verdict allowed to disagree.  (The analysis row's
         feasible schedules are certified by (a) like everyone else's.) *)
      (match analysis with
      | Some Infeasible ->
        List.iter
          (fun (name, v) ->
            match v with
            | Feasible _ when name <> "analysis" ->
              mismatch "analysis" Infeasible name v
                "quick-reject is a necessary condition: no engine may \
                 schedule past a true witness"
            | _ -> ())
          results
      | Some (Feasible _ as a) ->
        List.iter
          (fun (name, v) ->
            match v with
            | Infeasible when name <> "analysis" ->
              mismatch "analysis" a name v
                "a certified analytic schedule lies in every engine's \
                 branch space"
            | _ -> ())
          results
      | Some (Unknown _) | None -> ());
      (* (g) the stubborn-set reduction must preserve the feasibility
         verdict: POR-on and POR-off runs of the same engine agree on
         decisive verdicts.  The specific schedule may differ — the
         reduced expansion commits to one interleaving of each
         independent diamond — but feasible/infeasible may not (both
         runs' feasible schedules are certified by (a) above). *)
      let por_pair on_name on off_name off =
        match on, off with
        | Some (Feasible _ as a), Some (Infeasible as b)
        | Some (Infeasible as a), Some (Feasible _ as b) ->
          mismatch on_name a off_name b
            "the stubborn-set reduction preserves the feasibility verdict"
        | _ -> ()
      in
      por_pair "incremental" incremental "no-por" no_por;
      por_pair "classes" classes "classes-no-por" classes_no_por;
      (* (h)-(j) structural-lint theorems.  Lint is a static oracle:
         its claims must be consistent with what the engines actually
         did on this very spec. *)
      let lint_report =
        match Lint.check_model model with
        | r -> Some r
        | exception exn ->
          flag (Lint_crash (Printexc.to_string exn));
          None
      in
      (match lint_report with
      | None -> ()
      | Some lr ->
        let net = model.Translate.net in
        (* (h) a transition lint proved structurally dead can never
           appear in any engine's feasible schedule *)
        let dead = Lint.structurally_dead net in
        if dead <> [] then
          List.iter
            (fun (engine, v) ->
              match v with
              | Feasible s ->
                List.iter
                  (fun (e : Schedule.entry) ->
                    if List.mem e.Schedule.tid dead then
                      flag
                        (Lint_dead_scheduled
                           {
                             engine;
                             transition =
                               Pnet.transition_name net e.Schedule.tid;
                           }))
                  s.Schedule.entries
              | Infeasible | Unknown _ -> ())
            results;
        (* (i) every P-invariant certificate in the report conserves
           its constant on every state of a bounded TLTS walk *)
        let consts =
          List.map
            (fun y -> (y, Invariants.weighted_tokens y net.Pnet.m0))
            lr.Lint.certificates
        in
        let bad = ref None in
        ignore
          (Tlts.explore ~max_states:(min 2_000 max_stored)
             ~on_state:(fun s ->
               if !bad = None then
                 List.iter
                   (fun (y, c) ->
                     let v = Invariants.weighted_tokens y s.State.marking in
                     if v <> c then bad := Some (y, c, v))
                   consts)
             net);
        (match !bad with
        | Some (y, c, v) ->
          flag
            (Lint_certificate_violated
               (Printf.sprintf
                  "certificate over {%s} should conserve %d but a reachable \
                   state holds %d"
                  (String.concat ", "
                     (List.map (Pnet.place_name net) (Invariants.support y)))
                  c v))
        | None -> ());
        (* gate-explain must agree with the live gates (L013 never fires) *)
        List.iter
          (fun (d : Lint.diagnostic) ->
            if String.equal d.Lint.code "EZRT-L013" then
              flag (Lint_gate_mismatch d.Lint.message))
          lr.Lint.diagnostics;
        (* (j) lint cleanliness is monotone under the shrinker's task
           dropping: removing a task from a clean spec cannot introduce
           an error or warning (otherwise shrinking a divergent spec
           could drift into lint noise unrelated to the divergence) *)
        if (not (Lint.deny_hit ~deny:Lint.Warning lr))
           && List.length spec.Spec.tasks > 1
        then
          List.iter
            (fun (t : Ezrt_spec.Task.t) ->
              let shrunk = Spec.drop_task spec t.Ezrt_spec.Task.id in
              if (Validate.check shrunk).Validate.errors = [] then
                match Lint.check_model (Translate.translate shrunk) with
                | shrunk_report ->
                  List.iter
                    (fun (d : Lint.diagnostic) ->
                      if
                        Lint.severity_rank d.Lint.severity
                        >= Lint.severity_rank Lint.Warning
                      then
                        flag
                          (Lint_shrink_regression
                             {
                               dropped_task = t.Ezrt_spec.Task.id;
                               diagnostic =
                                 d.Lint.code ^ " " ^ d.Lint.subject ^ ": "
                                 ^ d.Lint.message;
                             }))
                    shrunk_report.Lint.diagnostics
                | exception exn ->
                  flag (Lint_crash (Printexc.to_string exn)))
            spec.Spec.tasks);
      {
        results = List.map (fun (engine, verdict) -> { engine; verdict }) results;
        divergences = List.rev !divergences;
      })

let failing ?max_stored spec = (check ?max_stored spec).divergences <> []
