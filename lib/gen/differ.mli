(** Differential cross-checking of one specification across every
    schedule-synthesis engine in the repository, plus the independent
    oracles ({!Ezrt_sched.Validator}, {!Ezrt_baseline.Sim},
    {!Ezrt_baseline.Rta}).

    The sound relations checked — each a theorem about the engines,
    so any violation is a bug, not noise:

    - reference (copy-based) and incremental discrete search explore
      the same order: identical verdicts {e and} action-identical
      schedules;
    - latest-release branching explores a superset of the
      work-conserving search: feasible cannot become infeasible;
    - the dense-time class engine is complete: anything any discrete
      configuration schedules, it must too;
    - the sequential portfolio subsumes its member engines' verdicts
      in both directions;
    - the work-stealing parallel engine ({!Ezrt_sched.Par_search})
      explores the same discrete choice space as the sequential
      engines: decisive verdicts must agree, while the {e specific}
      schedule may legitimately differ (subtree completion order is
      racy) — so only the verdict is compared, and its schedules are
      certified like any other;
    - the stubborn-set partial-order reduction ({!Ezrt_tpn.Indep})
      preserves the feasibility verdict: the [no-por] and
      [classes-no-por] rows re-run the incremental discrete and the
      class engine with the reduction off, and decisive verdicts must
      match the POR-on rows (schedules may differ — the reduction
      commits to one interleaving of each independent diamond);
    - every feasible schedule must replay through the TPN semantics to
      the final marking and pass the spec-level validator;
    - an [Infeasible] verdict of an exhaustive engine is contradicted
      by a certified runtime simulation (EDF/RM/DM) or a schedulable
      response-time analysis, and a feasible verdict by utilization
      above 1. *)

type verdict =
  | Feasible of Ezrt_sched.Schedule.t
  | Infeasible
  | Unknown of string
      (** budget exhausted, extraction failure, engine crash — no
          claim either way *)

val verdict_to_string : verdict -> string

type engine_result = {
  engine : string;
  verdict : verdict;
}

type divergence =
  | Invalid_input of string  (** the spec does not validate *)
  | Translation_crash of string
  | Verdict_mismatch of {
      engine_a : string;
      verdict_a : string;
      engine_b : string;
      verdict_b : string;
      reason : string;
    }
  | Schedule_mismatch of { engine_a : string; engine_b : string }
      (** engines required to be action-identical disagree *)
  | Uncertified of { engine : string; failure : string }
  | Extraction_failed
  | Runtime_beats_synthesis of { policy : string }
      (** a certified priority-driven simulation schedules a spec the
          exhaustive search called infeasible *)
  | Rta_beats_synthesis
  | Overutilized_feasible of float
  | Engine_crash of { engine : string; exn : string }
  | Analysis_witness_invalid of string
      (** the analytic pre-pass emitted a quick-reject witness whose
          inequality does not re-evaluate to true against the spec *)
  | Lint_crash of string  (** the structural lint pass itself raised *)
  | Lint_dead_scheduled of { engine : string; transition : string }
      (** a transition lint proved structurally dead appears in an
          engine's certified feasible schedule *)
  | Lint_certificate_violated of string
      (** a P-invariant certificate from the lint report fails to
          conserve its constant on a state visited during a bounded
          TLTS walk *)
  | Lint_gate_mismatch of string
      (** lint's re-derived POR/subsumption gate verdict disagrees
          with the live gate (the L013 self-check fired) *)
  | Lint_shrink_regression of { dropped_task : string; diagnostic : string }
      (** a lint-clean spec acquired an error/warning after the
          shrinker's task-dropping step *)

val divergence_to_string : divergence -> string

type report = {
  results : engine_result list;
  divergences : divergence list;
}

val builtin_engines : string list
(** [["reference"; "incremental"; "latest-release"; "classes";
    "portfolio"; "parallel"; "analysis"]] — the names accepted by
    [?engines].  [analysis] is {!Ezrt_analysis.Schedulability}: its
    quick-reject witnesses are re-evaluated (an untrue witness is an
    {!Analysis_witness_invalid} divergence), its [Infeasible] verdict
    contradicts any engine's feasible schedule, and its quick-accept
    certificate — certified like every other feasible schedule —
    contradicts any engine's [Infeasible].  The [portfolio] row runs
    with [~analysis:false] so it stays an independent race result. *)

val check :
  ?max_stored:int ->
  ?class_domains:int ->
  ?engines:string list ->
  ?extra:(string * (max_stored:int -> Ezrt_blocks.Translate.t -> verdict)) list ->
  Ezrt_spec.Spec.t ->
  report
(** Run every engine (bounded by [max_stored], default 50_000) and
    every cross-check on one spec.  [class_domains] (default 1) runs
    the classes engine through the work-stealing parallel searcher
    when greater than one, cross-checking the shared class store
    against every other engine.  [engines] restricts the built-in
    engines that run (default: all of {!builtin_engines}; unknown
    names raise [Invalid_argument]); cross-checks needing a skipped
    engine are skipped too, which lets a campaign bisect e.g. just
    [["parallel"; "reference"]].  [extra] engines claim default
    discrete search semantics: their verdict is compared against the
    reference engine's and their schedules must certify — the hook the
    tests use to prove an injected engine bug is caught. *)

val failing : ?max_stored:int -> Ezrt_spec.Spec.t -> bool
(** [divergences <> []] — the predicate handed to {!Shrink.minimize}. *)
