(* SplitMix64 (Steele, Lea & Flood 2014): a tiny, fast, well-mixed
   generator with a one-word state, reproducible on any platform with
   64-bit integers.  The fuzzer keys everything off it so a seed
   reproduces a campaign exactly. *)

type t = {
  seed : int64;  (* remembered for [derive] *)
  mutable state : int64;
}

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let seed = Int64.of_int seed in
  { seed; state = seed }

let derive rng salt =
  let seed =
    mix (Int64.add rng.seed (Int64.mul (Int64.of_int (salt + 1)) golden))
  in
  { seed; state = seed }

let next rng =
  rng.state <- Int64.add rng.state golden;
  mix rng.state

(* 62 non-negative bits: enough for every bounded draw and immune to
   [Int64.to_int] sign surprises. *)
let bits rng = Int64.to_int (Int64.shift_right_logical (next rng) 2)

let int rng bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits rng mod bound

let int_in rng lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int rng (hi - lo + 1)

let bool rng = Int64.logand (next rng) 1L = 1L
let float rng = Stdlib.float_of_int (bits rng) /. 4611686018427387904.0
let chance rng p = float rng < p
let choose rng arr = arr.(int rng (Array.length arr))
let sub_list rng ~keep xs = List.filter (fun _ -> chance rng keep) xs
