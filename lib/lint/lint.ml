open Ezrt_tpn
module Translate = Ezrt_blocks.Translate
module Class_search = Ezrt_sched.Class_search
module Json = Ezrt_service.Json

type severity = Info | Warning | Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let severity_of_string = function
  | "info" -> Some Info
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

type diagnostic = {
  code : string;
  severity : severity;
  subject : string;
  message : string;
  origin : string option;
}

type gate = { gate : string; gate_open : bool; reasons : string list }

type report = {
  net_name : string;
  diagnostics : diagnostic list;
  gates : gate list;
  certificates : int array list;
  truncated : bool;
  covered_places : int;
  place_count : int;
  transition_count : int;
}

let catalogue =
  [
    ("EZRT-L001", Warning, "place not covered by any P-invariant");
    ("EZRT-L002", Warning, "invariant computation truncated (row bound)");
    ("EZRT-L003", Error, "resource place not certified 1-safe");
    ("EZRT-L004", Error, "periodic skeleton not reproducible");
    ("EZRT-L005", Error, "structurally dead transition");
    ("EZRT-L006", Warning, "sink transition (no output arcs)");
    ("EZRT-L007", Info, "isolated place (no arcs)");
    ("EZRT-L008", Info, "accumulator place (produced, never consumed)");
    ("EZRT-L009", Warning, "initially-unmarked siphon");
    ("EZRT-L010", Warning, "unbounded latest firing time");
    ("EZRT-L011", Info, "partial-order reduction gate decision");
    ("EZRT-L012", Info, "subsumption gate decision");
    ("EZRT-L013", Error, "gate-explain disagrees with the live gate");
    ("EZRT-L014", Info, "initially-unmarked trap");
  ]

let count sev report =
  List.length (List.filter (fun d -> d.severity = sev) report.diagnostics)

let max_severity report =
  List.fold_left
    (fun acc d ->
      match acc with
      | Some s when severity_rank s >= severity_rank d.severity -> acc
      | _ -> Some d.severity)
    None report.diagnostics

let deny_hit ~deny report =
  List.exists
    (fun d -> severity_rank d.severity >= severity_rank deny)
    report.diagnostics

(* ------------------------------------------------------------------ *)
(* Structural analyses (all polynomial, no state space)               *)
(* ------------------------------------------------------------------ *)

(* Token-flow liveness fixpoint.  A transition is (possibly) live when
   every input arc is satisfiable: the initial marking already meets
   the weight, or some live producer can feed the place (tokens then
   accumulate over repeated firings, so any finite weight is
   eventually met — a sound over-approximation).  Transitions never
   reaching liveness are dead in every reachable marking. *)
let structurally_dead net =
  let nt = Pnet.transition_count net in
  let producers = Pnet.producers net in
  let live = Array.make nt false in
  let sat (p, w) =
    net.Pnet.m0.(p) >= w
    || Array.exists (fun t -> live.(t)) producers.(p)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for t = 0 to nt - 1 do
      if (not live.(t)) && Array.for_all sat (Pnet.pre_arcs net t) then begin
        live.(t) <- true;
        changed := true
      end
    done
  done;
  List.filter (fun t -> not live.(t)) (List.init nt Fun.id)

(* Maximal siphon among the initially-unmarked places: drop any place
   with a producer whose preset is disjoint from the candidate set
   (that producer could fire and mark the place).  What remains can
   never acquire a token. *)
let unmarked_siphon net =
  let np = Pnet.place_count net in
  let producers = Pnet.producers net in
  let in_s = Array.init np (fun p -> net.Pnet.m0.(p) = 0) in
  let preset_meets_s t =
    Array.exists (fun (q, _) -> in_s.(q)) (Pnet.pre_arcs net t)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for p = 0 to np - 1 do
      if
        in_s.(p)
        && Array.exists (fun t -> not (preset_meets_s t)) producers.(p)
      then begin
        in_s.(p) <- false;
        changed := true
      end
    done
  done;
  List.filter (fun p -> in_s.(p)) (List.init np Fun.id)

(* Maximal trap among initially-unmarked places with at least one
   consumer: drop any place with a consumer whose postset misses the
   candidate set (that consumer could drain the trap).  Tokens that
   enter what remains can never all leave. *)
let unmarked_trap ?(exclude = []) net =
  let np = Pnet.place_count net in
  let in_s =
    Array.init np (fun p ->
        net.Pnet.m0.(p) = 0
        && Array.length (Pnet.consumers_of net p) > 0
        && not (List.mem p exclude))
  in
  let postset_meets_s t =
    Array.exists (fun (q, _) -> in_s.(q)) (Pnet.post_arcs net t)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for p = 0 to np - 1 do
      if
        in_s.(p)
        && Array.exists
             (fun t -> not (postset_meets_s t))
             (Pnet.consumers_of net p)
      then begin
        in_s.(p) <- false;
        changed := true
      end
    done
  done;
  List.filter (fun p -> in_s.(p)) (List.init np Fun.id)

(* ------------------------------------------------------------------ *)
(* Gate explain                                                       *)
(* ------------------------------------------------------------------ *)

(* Re-derivation of [Class_search.subsumption_applicable]'s two
   structural conditions, producing a reason per violating
   transition.  The conditions are copied, not shared, on purpose:
   the lint pass asserts agreement with the live gate (L013), so a
   drift between this explanation and the engine's own check is
   caught rather than hidden. *)
let subsumption_reasons (model : Translate.t) =
  let net = model.Translate.net in
  let default = Pnet.default_priority in
  let marks_dead tid =
    Array.exists
      (fun (p, _) -> List.mem p model.Translate.dead_places)
      (Pnet.post_arcs net tid)
  in
  let reasons = ref [] in
  for tid = Pnet.transition_count net - 1 downto 0 do
    let p = Pnet.priority net tid in
    let itv = Pnet.interval net tid in
    if
      p < default
      && not
           (Time_interval.eft itv = 0
           && Time_interval.lft itv = Time_interval.Finite 0)
    then
      reasons :=
        Printf.sprintf
          "transition %s has better-than-default priority %d but interval %s \
           instead of [0,0]"
          (Pnet.transition_name net tid)
          p
          (Time_interval.to_string itv)
        :: !reasons
    else if p > default && not (marks_dead tid) then
      reasons :=
        Printf.sprintf
          "transition %s has worse-than-default priority %d but does not mark \
           a dead-end place"
          (Pnet.transition_name net tid)
          p
        :: !reasons
  done;
  !reasons

let explain_subsumption model =
  let reasons = subsumption_reasons model in
  { gate = "subsumption"; gate_open = reasons = []; reasons }

(* Re-derivation of [Indep.net_applicable]: the subsumption priority
   shape (with Indep's own [is_point && eft = 0] formulation of the
   immediate-interval condition, which is equivalent) plus the
   dead-places-are-sinks condition. *)
let por_reasons (model : Translate.t) =
  let net = model.Translate.net in
  let default = Pnet.default_priority in
  let marks_dead tid =
    Array.exists
      (fun (p, _) -> List.mem p model.Translate.dead_places)
      (Pnet.post_arcs net tid)
  in
  let sink_reasons =
    List.filter_map
      (fun p ->
        if Array.length (Pnet.consumers_of net p) = 0 then None
        else
          Some
            (Printf.sprintf
               "dead-end place %s has consumers (a reordered prefix could \
                detour through a pruned dead state)"
               (Pnet.place_name net p)))
      model.Translate.dead_places
  in
  let prio_reasons = ref [] in
  for tid = Pnet.transition_count net - 1 downto 0 do
    let p = Pnet.priority net tid in
    let itv = Pnet.interval net tid in
    if
      p < default
      && not (Time_interval.is_point itv && Time_interval.eft itv = 0)
    then
      prio_reasons :=
        Printf.sprintf
          "transition %s has better-than-default priority %d but interval %s \
           instead of [0,0]"
          (Pnet.transition_name net tid)
          p
          (Time_interval.to_string itv)
        :: !prio_reasons
    else if p > default && not (marks_dead tid) then
      prio_reasons :=
        Printf.sprintf
          "transition %s has worse-than-default priority %d but does not mark \
           a dead-end place"
          (Pnet.transition_name net tid)
          p
        :: !prio_reasons
  done;
  sink_reasons @ !prio_reasons

let explain_por model =
  let reasons = por_reasons model in
  { gate = "por"; gate_open = reasons = []; reasons }

(* ------------------------------------------------------------------ *)
(* The lint pass                                                      *)
(* ------------------------------------------------------------------ *)

let nets_counter =
  lazy
    (Ezrt_obs.Metrics.counter ~help:"Nets linted" "ezrt_lint_nets_total")

let diag_counter sev =
  Ezrt_obs.Metrics.counter ~help:"Lint diagnostics emitted"
    ~labels:[ ("severity", severity_to_string sev) ]
    "ezrt_lint_diagnostics_total"

let truncated_counter =
  lazy
    (Ezrt_obs.Metrics.counter
       ~help:"Lint runs whose Farkas invariant computation hit the row bound"
       "ezrt_lint_truncated_total")

let mismatch_counter =
  lazy
    (Ezrt_obs.Metrics.counter
       ~help:"Gate-explain verdicts disagreeing with the live gate (bug!)"
       "ezrt_lint_gate_mismatch_total")

let lint_timer =
  lazy
    (Ezrt_obs.Metrics.timer ~help:"Wall-clock time spent in structural lint"
       "ezrt_lint_duration")

let check_net_untraced ?(max_rows = 20_000) ?(final_places = [])
    ?(dead_places = []) ?(resource_places = []) ?required_firings
    ?(origin_of_place = fun _ -> None) ?(origin_of_transition = fun _ -> None)
    (net : Pnet.t) =
  let np = Pnet.place_count net in
  let nt = Pnet.transition_count net in
  let producers = Pnet.producers net in
  let diags = ref [] in
  let emit ?origin code severity subject message =
    diags := { code; severity; subject; message; origin } :: !diags
  in
  let place p = "place " ^ Pnet.place_name net p in
  let trans t = "transition " ^ Pnet.transition_name net t in
  (* --- P-invariant boundedness certification ---------------------- *)
  let outcome = Invariants.p_invariants ~max_rows net in
  let certificates = Invariants.invariants_of outcome in
  let truncated = Invariants.is_truncated outcome in
  let covered p = List.exists (fun y -> y.(p) <> 0) certificates in
  let covered_places =
    List.length (List.filter covered (List.init np Fun.id))
  in
  if truncated then
    emit "EZRT-L002" Warning ("net " ^ net.Pnet.net_name)
      (Printf.sprintf
         "P-invariant computation truncated at %d Farkas rows — boundedness \
          coverage unknown for %d uncovered place(s)"
         max_rows (np - covered_places));
  List.iter
    (fun p ->
      if not (covered p) then
        if List.mem p resource_places then
          emit ?origin:(origin_of_place p) "EZRT-L003" Error (place p)
            (if truncated then
               "resource place not certified 1-safe (invariant set truncated)"
             else
               "resource place not covered by any P-invariant — 1-safety \
                uncertified")
        else if not truncated then
          emit ?origin:(origin_of_place p) "EZRT-L001" Warning (place p)
            "not covered by any P-invariant — boundedness uncertified")
    (List.init np Fun.id);
  (* resource places covered by an invariant must be bounded at 1 *)
  List.iter
    (fun p ->
      match List.find_opt (fun y -> y.(p) <> 0) certificates with
      | None -> ()
      | Some y ->
        let bound = Invariants.weighted_tokens y net.Pnet.m0 / y.(p) in
        if List.mem p resource_places && bound <> 1 then
          emit ?origin:(origin_of_place p) "EZRT-L003" Error (place p)
            (Printf.sprintf
               "covering invariant bounds the resource at %d tokens, not 1"
               bound))
    (List.init np Fun.id);
  (* --- T-invariant reproducibility of the periodic skeleton ------- *)
  (match required_firings with
  | None -> ()
  | Some x when Array.length x <> nt -> ()
  | Some x ->
    let c = Invariants.incidence net in
    for p = 0 to np - 1 do
      let delta = ref 0 in
      for t = 0 to nt - 1 do
        delta := !delta + (c.(p).(t) * x.(t))
      done;
      let final = net.Pnet.m0.(p) + !delta in
      let expected =
        if List.mem p final_places then 1
        else if List.mem p resource_places then net.Pnet.m0.(p)
        else 0
      in
      if final <> expected then
        emit ?origin:(origin_of_place p) "EZRT-L004" Error (place p)
          (Printf.sprintf
             "periodic skeleton not reproducible: the required firing vector \
              leaves %d token(s) here, expected %d"
             final expected)
    done);
  (* --- structurally dead transitions ------------------------------ *)
  let dead = structurally_dead net in
  List.iter
    (fun t ->
      emit ?origin:(origin_of_transition t) "EZRT-L005" Error (trans t)
        "structurally dead — no reachable marking can ever satisfy its input \
         arcs")
    dead;
  (* --- sinks, isolated places, accumulators ----------------------- *)
  for t = 0 to nt - 1 do
    if Array.length (Pnet.post_arcs net t) = 0 then
      emit ?origin:(origin_of_transition t) "EZRT-L006" Warning (trans t)
        "sink transition — consumes tokens but produces none"
  done;
  for p = 0 to np - 1 do
    let produced = Array.length producers.(p) > 0 in
    let consumed = Array.length (Pnet.consumers_of net p) > 0 in
    if (not produced) && not consumed then
      emit ?origin:(origin_of_place p) "EZRT-L007" Info (place p)
        "isolated place — no arc touches it"
    else if
      produced && (not consumed)
      && (not (List.mem p final_places))
      && not (List.mem p dead_places)
    then
      emit ?origin:(origin_of_place p) "EZRT-L008" Info (place p)
        "accumulator place — produced but never consumed"
  done;
  (* --- siphon / trap hints ---------------------------------------- *)
  let name_list ps =
    String.concat ", " (List.map (Pnet.place_name net) ps)
  in
  (let siphon = unmarked_siphon net in
   if siphon <> [] then
     emit "EZRT-L009" Warning ("net " ^ net.Pnet.net_name)
       (Printf.sprintf
          "initially-unmarked siphon {%s} — these places stay empty forever \
           and every transition consuming from them is dead"
          (name_list siphon)));
  (let exclude = final_places @ dead_places in
   let trap = unmarked_trap ~exclude net in
   if trap <> [] then
     emit "EZRT-L014" Info ("net " ^ net.Pnet.net_name)
       (Printf.sprintf
          "initially-unmarked trap {%s} — once a token enters, the trap can \
           never fully drain"
          (name_list trap)));
  (* --- static time-interval sanity -------------------------------- *)
  for t = 0 to nt - 1 do
    if Pnet.interval net t |> Time_interval.lft = Time_interval.Infinity then
      let on_deadline_path =
        match required_firings with Some x -> x.(t) > 0 | None -> false
      in
      emit
        ?origin:(origin_of_transition t)
        "EZRT-L010"
        (if on_deadline_path then Error else Warning)
        (trans t)
        (if on_deadline_path then
           "no latest firing time, yet every feasible run must fire it — a \
            deadline can never be enforced along this path"
         else "no latest firing time — firing may be postponed forever")
  done;
  let diagnostics =
    List.sort
      (fun a b ->
        compare (a.code, a.subject, a.message) (b.code, b.subject, b.message))
      !diags
  in
  {
    net_name = net.Pnet.net_name;
    diagnostics;
    gates = [];
    certificates;
    truncated;
    covered_places;
    place_count = np;
    transition_count = nt;
  }

let flush_report report =
  Ezrt_obs.Metrics.incr (Lazy.force nets_counter);
  if report.truncated then
    Ezrt_obs.Metrics.incr (Lazy.force truncated_counter);
  List.iter
    (fun d -> Ezrt_obs.Metrics.incr (diag_counter d.severity))
    report.diagnostics

let check_net ?max_rows ?final_places ?dead_places ?resource_places
    ?required_firings ?origin_of_place ?origin_of_transition net =
  Ezrt_obs.Trace.with_span ~cat:"lint"
    ~args:[ ("net", Ezrt_obs.Trace.Str net.Pnet.net_name) ]
    (fun () ->
      let report =
        Ezrt_obs.Metrics.time (Lazy.force lint_timer) (fun () ->
            check_net_untraced ?max_rows ?final_places ?dead_places
              ?resource_places ?required_firings ?origin_of_place
              ?origin_of_transition net)
      in
      flush_report report;
      report)
    "lint"

let check_model ?max_rows (model : Translate.t) =
  Ezrt_obs.Trace.with_span ~cat:"lint"
    ~args:[ ("net", Ezrt_obs.Trace.Str model.Translate.net.Pnet.net_name) ]
    (fun () ->
      let net = model.Translate.net in
      let origin_of_place p =
        Some (Translate.origin_to_string model (Translate.place_origin model p))
      in
      let origin_of_transition t =
        Some
          (Translate.origin_to_string model
             (Translate.transition_origin model t))
      in
      let base =
        Ezrt_obs.Metrics.time (Lazy.force lint_timer) (fun () ->
            check_net_untraced ?max_rows
              ~final_places:[ model.Translate.final_place ]
              ~dead_places:model.Translate.dead_places
              ~resource_places:model.Translate.resource_places
              ~required_firings:(Translate.required_firings model)
              ~origin_of_place ~origin_of_transition net)
      in
      (* gate explain, cross-checked against the live gates *)
      let sub = explain_subsumption model in
      let por = explain_por model in
      let live_sub = Class_search.subsumption_applicable model in
      let live_por =
        Indep.applicable
          (Indep.create net ~final_place:model.Translate.final_place
             ~dead_places:model.Translate.dead_places)
      in
      let gate_diag code (g : gate) =
        {
          code;
          severity = Info;
          subject = "gate " ^ g.gate;
          message =
            (if g.gate_open then "open — the optimization applies to this net"
             else "closed: " ^ String.concat "; " g.reasons);
          origin = None;
        }
      in
      let mismatch_diag name explained live =
        if explained = live then []
        else begin
          Ezrt_obs.Metrics.incr (Lazy.force mismatch_counter);
          [
            {
              code = "EZRT-L013";
              severity = Error;
              subject = "gate " ^ name;
              message =
                Printf.sprintf
                  "gate-explain says %s but the live gate says %s — lint and \
                   engine have drifted apart"
                  (if explained then "open" else "closed")
                  (if live then "open" else "closed");
              origin = None;
            };
          ]
        end
      in
      let extra =
        [ gate_diag "EZRT-L011" por; gate_diag "EZRT-L012" sub ]
        @ mismatch_diag "por" por.gate_open live_por
        @ mismatch_diag "subsumption" sub.gate_open live_sub
      in
      let diagnostics =
        List.sort
          (fun a b ->
            compare (a.code, a.subject, a.message)
              (b.code, b.subject, b.message))
          (extra @ base.diagnostics)
      in
      let report = { base with diagnostics; gates = [ por; sub ] } in
      flush_report report;
      report)
    "lint"

let check_spec ?max_rows spec =
  match Translate.translate spec with
  | model -> Ok (check_model ?max_rows model)
  | exception Failure msg -> Result.Error msg
  | exception Invalid_argument msg -> Result.Error msg

(* ------------------------------------------------------------------ *)
(* Renderers                                                          *)
(* ------------------------------------------------------------------ *)

let to_text report =
  let buf = Buffer.create 1024 in
  let errors = count Error report
  and warnings = count Warning report
  and infos = count Info report in
  Buffer.add_string buf
    (Printf.sprintf "lint %s: %d error(s), %d warning(s), %d info(s)\n"
       report.net_name errors warnings infos);
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "  %s %-7s %s: %s%s\n" d.code
           (severity_to_string d.severity)
           d.subject d.message
           (match d.origin with Some o -> " [" ^ o ^ "]" | None -> "")))
    report.diagnostics;
  Buffer.add_string buf
    (Printf.sprintf "invariants: %d certificate(s) covering %d/%d place(s)%s\n"
       (List.length report.certificates)
       report.covered_places report.place_count
       (if report.truncated then " (truncated)" else ""));
  List.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "gate %s: %s\n" g.gate
           (if g.gate_open then "open" else "closed")))
    report.gates;
  Buffer.contents buf

let json_of_diag d =
  Json.Obj
    [
      ("code", Json.Str d.code);
      ("severity", Json.Str (severity_to_string d.severity));
      ("subject", Json.Str d.subject);
      ("message", Json.Str d.message);
      ( "origin",
        match d.origin with Some o -> Json.Str o | None -> Json.Null );
    ]

let json_of_gate g =
  Json.Obj
    [
      ("gate", Json.Str g.gate);
      ("open", Json.Bool g.gate_open);
      ("reasons", Json.List (List.map (fun r -> Json.Str r) g.reasons));
    ]

let json_value report =
  Json.Obj
    [
      ("schema", Json.Str "ezrt-lint/1");
      ("net", Json.Str report.net_name);
      ( "summary",
        Json.Obj
          [
            ("errors", Json.Num (float_of_int (count Error report)));
            ("warnings", Json.Num (float_of_int (count Warning report)));
            ("infos", Json.Num (float_of_int (count Info report)));
          ] );
      ("diagnostics", Json.List (List.map json_of_diag report.diagnostics));
      ("gates", Json.List (List.map json_of_gate report.gates));
      ( "invariants",
        Json.Obj
          [
            ( "count",
              Json.Num (float_of_int (List.length report.certificates)) );
            ("truncated", Json.Bool report.truncated);
            ("covered_places", Json.Num (float_of_int report.covered_places));
            ("place_count", Json.Num (float_of_int report.place_count));
            ( "transition_count",
              Json.Num (float_of_int report.transition_count) );
            ( "certificates",
              Json.List
                (List.map
                   (fun y ->
                     Json.List
                       (Array.to_list
                          (Array.map
                             (fun w -> Json.Num (float_of_int w))
                             y)))
                   report.certificates) );
          ] );
    ]

let to_json report = Json.to_string (json_value report)

let sarif_level = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

let to_sarif ?uri report =
  let rules =
    List.map
      (fun (code, _sev, summary) ->
        Json.Obj
          [
            ("id", Json.Str code);
            ("shortDescription", Json.Obj [ ("text", Json.Str summary) ]);
          ])
      catalogue
  in
  let location d =
    let logical =
      Json.Obj
        [
          ("name", Json.Str d.subject);
          ( "fullyQualifiedName",
            Json.Str (report.net_name ^ "/" ^ d.subject) );
        ]
    in
    let fields = [ ("logicalLocations", Json.List [ logical ]) ] in
    let fields =
      match uri with
      | None -> fields
      | Some u ->
        ( "physicalLocation",
          Json.Obj
            [ ("artifactLocation", Json.Obj [ ("uri", Json.Str u) ]) ] )
        :: fields
    in
    Json.Obj fields
  in
  let results =
    List.map
      (fun d ->
        Json.Obj
          [
            ("ruleId", Json.Str d.code);
            ("level", Json.Str (sarif_level d.severity));
            ( "message",
              Json.Obj
                [
                  ( "text",
                    Json.Str
                      (d.subject ^ ": " ^ d.message
                      ^
                      match d.origin with
                      | Some o -> " [" ^ o ^ "]"
                      | None -> "") );
                ] );
            ("locations", Json.List [ location d ]);
          ])
      report.diagnostics
  in
  let driver =
    Json.Obj
      [
        ("name", Json.Str "ezrt-lint");
        ("version", Json.Str "1.0.0");
        ( "informationUri",
          Json.Str "https://example.org/ezrealtime/docs/LINT.md" );
        ("rules", Json.List rules);
      ]
  in
  Json.to_string
    (Json.Obj
       [
         ( "$schema",
           Json.Str "https://json.schemastore.org/sarif-2.1.0.json" );
         ("version", Json.Str "2.1.0");
         ( "runs",
           Json.List
             [
               Json.Obj
                 [
                   ("tool", Json.Obj [ ("driver", driver) ]);
                   ("results", Json.List results);
                 ];
             ] );
       ])
