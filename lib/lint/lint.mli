(** Structural lint: static diagnostics over compiled time Petri nets.

    Every analysis here is polynomial in the net (the Farkas invariant
    computation is capped by [max_rows] and degrades to a truncation
    diagnostic) and none explores the state space — the pass is a
    cheap, sound oracle that runs before any search engine and scales
    to generated corpora of millions of specs.

    Findings are stable-coded [EZRT-L0xx] diagnostics (see
    docs/LINT.md for the catalogue) with severity error / warning /
    info, each carrying the spec fragment it was compiled from
    ({!Ezrt_blocks.Translate.origin}), rendered as plain text, a
    single-line JSON object, or a SARIF 2.1.0 log.

    The boundedness analysis is {e certifying}: the report carries the
    P-invariant rows themselves, and every certificate re-checks
    against the net with {!Ezrt_tpn.Invariants.is_invariant}.  The
    gate-explain analysis re-derives the class engines' subsumption
    gate and the stubborn-set reduction's net gate with human-readable
    reasons, and cross-checks its verdicts against the live gates
    ([Class_search.subsumption_applicable], [Indep.applicable]) —
    disagreement is itself a (should-never-fire) error diagnostic. *)

open Ezrt_tpn

type severity = Info | Warning | Error

val severity_to_string : severity -> string
val severity_rank : severity -> int
(** [Info] = 0, [Warning] = 1, [Error] = 2. *)

val severity_of_string : string -> severity option

type diagnostic = {
  code : string;  (** stable identifier, e.g. ["EZRT-L005"] *)
  severity : severity;
  subject : string;  (** the net element, e.g. ["transition tr_pump"] *)
  message : string;
  origin : string option;
      (** spec provenance, e.g. ["task pump (id t2)"]; [None] on raw
          nets with no translation context *)
}

type gate = {
  gate : string;  (** ["por"] or ["subsumption"] *)
  gate_open : bool;
  reasons : string list;  (** why closed; empty when open *)
}

type report = {
  net_name : string;
  diagnostics : diagnostic list;
      (** sorted by (code, subject, message) — deterministic *)
  gates : gate list;  (** model context only; [] on raw nets *)
  certificates : int array list;
      (** the P-invariant rows backing the boundedness verdicts; each
          satisfies [Invariants.is_invariant net] *)
  truncated : bool;  (** the Farkas row bound tripped *)
  covered_places : int;
  place_count : int;
  transition_count : int;
}

val catalogue : (string * severity * string) list
(** [(code, default severity, summary)] for every documented code, in
    code order.  The SARIF renderer emits these as the tool rules. *)

val count : severity -> report -> int

val max_severity : report -> severity option
(** The worst severity present, [None] on a clean report. *)

val deny_hit : deny:severity -> report -> bool
(** Whether any diagnostic sits at or above the [deny] threshold. *)

val check_net :
  ?max_rows:int ->
  ?final_places:Pnet.place_id list ->
  ?dead_places:Pnet.place_id list ->
  ?resource_places:Pnet.place_id list ->
  ?required_firings:int array ->
  ?origin_of_place:(Pnet.place_id -> string option) ->
  ?origin_of_transition:(Pnet.transition_id -> string option) ->
  Pnet.t ->
  report
(** Lint a raw net.  The optional arguments supply translation
    context: final / dead-marker / resource places refine the
    accumulator and safety analyses, and [required_firings] enables
    the periodic-skeleton reproducibility check (L004) and the
    deadline-path escalation of L010.  [max_rows] (default 20_000)
    caps the Farkas invariant computation. *)

val check_model : ?max_rows:int -> Ezrt_blocks.Translate.t -> report
(** Lint a translated model: {!check_net} with the full context from
    the translation, plus spec provenance on every diagnostic and the
    gate-explain analyses (L011-L013). *)

val check_spec : ?max_rows:int -> Ezrt_spec.Spec.t -> (report, string) result
(** Validate, translate and lint; [Error] carries the validation or
    translation failure. *)

val explain_subsumption : Ezrt_blocks.Translate.t -> gate
(** The class engines' inclusion-subsumption gate, re-derived with
    reasons.  [gate_open] agrees with
    [Class_search.subsumption_applicable] by construction (asserted by
    L013 and the test suite). *)

val explain_por : Ezrt_blocks.Translate.t -> gate
(** The stubborn-set reduction's net-level gate, re-derived with
    reasons; agrees with [Indep.applicable]. *)

val structurally_dead : Pnet.t -> Pnet.transition_id list
(** Transitions that can never fire, by the token-flow fixpoint: an
    input place is unsatisfiable when the initial marking falls short
    of the arc weight and no live transition produces into it.  Sound:
    a listed transition is dead in every reachable marking. *)

val unmarked_siphon : Pnet.t -> Pnet.place_id list
(** The maximal siphon among initially-unmarked places.  Such places
    stay empty forever and every consumer is structurally dead. *)

val unmarked_trap : ?exclude:Pnet.place_id list -> Pnet.t -> Pnet.place_id list
(** The maximal trap among initially-unmarked places that have at
    least one consumer (excluding [exclude], e.g. final and dead
    markers): once a token enters, the trap can never fully drain. *)

val to_text : report -> string

val to_json : report -> string
(** Single-line JSON; byte-identical across runs on the same spec. *)

val to_sarif : ?uri:string -> report -> string
(** SARIF 2.1.0 log with one run; [uri] attaches the spec file as the
    result artifact location. *)
