module Translate = Ezrt_blocks.Translate
module Table = Ezrt_sched.Table
module Task = Ezrt_spec.Task
module Spec = Ezrt_spec.Spec

let c_identifier name =
  let mangled =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name
  in
  match mangled.[0] with
  | '0' .. '9' -> "T" ^ mangled
  | 'a' .. 'z' | 'A' .. 'Z' | '_' -> mangled
  | _ -> "T" ^ mangled
  | exception Invalid_argument _ -> "T_anonymous"

let task_fn model i =
  c_identifier model.Translate.tasks.(i).Task.name

let schedule_table model items =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "struct ScheduleItem scheduleTable[EZRT_SCHEDULE_SIZE] = {\n";
  let rows = List.length items in
  List.iteri
    (fun row item ->
      let comma = if row = rows - 1 then " " else "," in
      out "    {%4d, %-5s, %d, %s}%s /* %s */\n" item.Table.start
        (if item.Table.resumed then "true" else "false")
        (item.Table.task + 1)
        (task_fn model item.Table.task)
        comma
        (Table.row_comment model item))
    items;
  out "};\n";
  Buffer.contents buf

let task_definition model i =
  let task = model.Translate.tasks.(i) in
  let fn = task_fn model i in
  let buf = Buffer.create 256 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "void %s(void)\n{\n" fn;
  out "#ifdef EZRT_TRACE\n";
  out "    printf(\"t=%%ld run %s\\n\", ezrt_now);\n" fn;
  out "#endif\n";
  (match task.Task.code with
  | Some code ->
    out "#ifdef EZRT_USER_CODE\n";
    List.iter
      (fun line -> out "    %s\n" line)
      (String.split_on_char '\n' code);
    out "#endif\n"
  | None -> out "    /* no behavioural source provided */\n");
  out "}\n";
  Buffer.contents buf

type layout =
  | Struct_table
  | Compact_table

type footprint = {
  rows : int;
  row_bytes : int;
  table_bytes : int;
  fits_flash : bool option;
}

let check_compact_limits model items =
  let n_tasks = Array.length model.Translate.tasks in
  if n_tasks > 127 then
    invalid_arg "Emit: Compact_table supports at most 127 tasks";
  if model.Translate.horizon > 0xffff then
    invalid_arg "Emit: Compact_table needs a hyper-period below 65536";
  List.iter
    (fun item ->
      if item.Table.start > 0xffff then
        invalid_arg "Emit: Compact_table start time exceeds 16 bits")
    items

(* start-time deltas between consecutive rows; the first delta is from
   the cycle base *)
let deltas items =
  let rec go prev = function
    | [] -> []
    | item :: rest -> (item.Table.start - prev, item) :: go item.Table.start rest
  in
  go 0 items

let compact_tables model items =
  check_compact_limits model items;
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let rows = List.length items in
  out "/* compact layout: 16-bit start deltas + packed flag/task byte\n";
  out "   (3 bytes per row vs sizeof(struct ScheduleItem)) */\n";
  out "static const unsigned short ezrt_delta[EZRT_SCHEDULE_SIZE] = {\n    ";
  List.iteri
    (fun i (delta, _) ->
      out "%d%s" delta
        (if i = rows - 1 then "\n" else if (i + 1) mod 12 = 0 then ",\n    " else ", "))
    (deltas items);
  out "};\n";
  out "static const unsigned char ezrt_tf[EZRT_SCHEDULE_SIZE] = {\n    ";
  List.iteri
    (fun i item ->
      let packed =
        (item.Table.task + 1) lor (if item.Table.resumed then 0x80 else 0)
      in
      out "0x%02x%s" packed
        (if i = rows - 1 then "\n" else if (i + 1) mod 12 = 0 then ",\n    " else ", "))
    items;
  out "};\n";
  out "static void (*const ezrt_task_fn[EZRT_TASK_COUNT])(void) = {\n";
  let n_tasks = Array.length model.Translate.tasks in
  for i = 0 to n_tasks - 1 do
    out "    %s%s\n" (task_fn model i) (if i = n_tasks - 1 then "" else ",")
  done;
  out "};\n";
  Buffer.contents buf

(* layout of struct ScheduleItem (start_time, flag, task_id and the
   function pointer) under natural alignment *)

(* layout of struct ScheduleItem (start_time, flag, task_id and the
   function pointer) under natural alignment *)
let table_footprint ?(layout = Struct_table) (target : Target.t) items =
  let rows = List.length items in
  let row_bytes, fixed =
    match layout with
    | Compact_table ->
      (* u16 delta + u8 packed; the function table is a fixed cost *)
      (3, 0)
    | Struct_table ->
      let int_b = target.Target.int_bytes in
      let ptr_b = target.Target.pointer_bytes in
      let align offset a = (offset + a - 1) / a * a in
      let offset = int_b in          (* start_time *)
      let offset = offset + 1 in     (* flag *)
      let offset = align offset int_b + int_b in  (* task_id *)
      let offset = align offset ptr_b + ptr_b in  (* task pointer *)
      (align offset (max int_b ptr_b), 0)
  in
  let table_bytes = (rows * row_bytes) + fixed in
  {
    rows;
    row_bytes;
    table_bytes;
    fits_flash =
      Option.map (fun budget -> table_bytes <= budget)
        target.Target.flash_bytes;
  }

let trace_line_of_item model ~base item =
  let time = base + item.Table.start in
  let verb = if item.Table.resumed then "resume" else "run" in
  Printf.sprintf "t=%d %s %s" time verb (task_fn model item.Table.task)

let isr_signature (target : Target.t) =
  (* SDCC's 8051 dialect puts the interrupt keyword after the
     parameter list; GCC-style attributes go in front. *)
  if target.Target.isr_qualifier = "" then "void ezrt_timer_isr(void)"
  else if String.length target.Target.isr_qualifier >= 11
          && String.sub target.Target.isr_qualifier 0 11 = "__interrupt"
  then Printf.sprintf "void ezrt_timer_isr(void) %s" target.Target.isr_qualifier
  else Printf.sprintf "%s void ezrt_timer_isr(void)" target.Target.isr_qualifier

let rec program ?(target = Target.hosted) ?(layout = Struct_table) model items =
  Ezrt_obs.Trace.with_span ~cat:"codegen"
    ~args:[ ("target", Ezrt_obs.Trace.Str target.Target.name) ]
    (fun () ->
      Ezrt_obs.Metrics.time
        (Ezrt_obs.Metrics.timer
           ~help:"Wall-clock time spent emitting scheduled C"
           "ezrt_codegen_duration")
        (fun () -> program_untraced ~target ~layout model items))
    "emit"

and program_untraced ~target ~layout model items =
  (match layout with
  | Compact_table -> check_compact_limits model items
  | Struct_table -> ());
  let spec = model.Translate.spec in
  let n_tasks = Array.length model.Translate.tasks in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let outl lines = List.iter (fun l -> out "%s\n" l) lines in
  out "/*\n";
  out " * Scheduled code generated by ezRealtime.\n";
  out " * specification : %s\n" spec.Spec.name;
  out " * target        : %s (%s)\n" target.Target.name
    target.Target.description;
  out " * hyper-period  : %d time units, %d schedule rows\n"
    model.Translate.horizon (List.length items);
  out " * dispatcher overhead budget: %d time unit(s)\n" spec.Spec.disp_overhead;
  out " */\n\n";
  List.iter (fun inc -> out "#include %s\n" inc) target.Target.includes;
  out "\n#define EZRT_SCHEDULE_SIZE %d\n" (List.length items);
  out "#define EZRT_HYPER_PERIOD %d\n" model.Translate.horizon;
  out "#define EZRT_TASK_COUNT %d\n\n" n_tasks;
  outl target.Target.glue;
  out "\nstatic long ezrt_now;\n\n";
  out "/* ---- task codes (EZRT_USER_CODE compiles the behavioural\n";
  out "   sources; EZRT_TRACE prints each activation) ---- */\n\n";
  for i = 0 to n_tasks - 1 do
    out "%s\n" (task_definition model i)
  done;
  out "/* ---- schedule table: one row per execution part ---- */\n\n";
  (match layout with
  | Struct_table ->
    out "struct ScheduleItem {\n";
    out "    int start_time;\n";
    out "    bool flag;       /* true: instance was preempted before */\n";
    out "    int task_id;\n";
    out "    void (*task)(void);\n";
    out "};\n\n";
    out "%s\n" (schedule_table model items)
  | Compact_table -> out "%s\n" (compact_tables model items));
  out "#ifdef EZRT_TRACE\n";
  out "static const char *ezrt_task_name[EZRT_TASK_COUNT] = {\n";
  for i = 0 to n_tasks - 1 do
    out "    \"%s\"%s\n" (task_fn model i) (if i = n_tasks - 1 then "" else ",")
  done;
  out "};\n";
  out "#endif\n\n";
  out "/* ---- context switching hooks (platform specific) ---- */\n\n";
  out "#ifndef EZRT_SAVE_CONTEXT\n#define EZRT_SAVE_CONTEXT(id)\n#endif\n";
  out "#ifndef EZRT_RESTORE_CONTEXT\n#define EZRT_RESTORE_CONTEXT(id)\n#endif\n\n";
  out "static int ezrt_index;\n";
  out "static long ezrt_cycle_base;\n";
  out "static int ezrt_running;\n";
  (match layout with
  | Compact_table -> out "static long ezrt_offset;\n"
  | Struct_table -> ());
  if target.Target.hosted then out "static long ezrt_next_tick;\n";
  out "\nstatic void ezrt_timer_init(void)\n{\n";
  outl (List.map (fun l -> "    " ^ l) target.Target.timer_setup);
  out "}\n\n";
  out "static void ezrt_timer_program(long next)\n{\n";
  out "    (void)next;\n";
  outl (List.map (fun l -> "    " ^ l) target.Target.timer_program);
  out "}\n\n";
  out "/* The dispatcher: restore a preempted instance or start a new\n";
  out "   one, then arm the timer for the next schedule row. */\n";
  (match layout with
  | Struct_table ->
    out "static void ezrt_dispatch(void)\n{\n";
    out "    const struct ScheduleItem *item = &scheduleTable[ezrt_index];\n";
    out "    ezrt_now = ezrt_cycle_base + item->start_time;\n";
    out "    if (item->flag) {\n";
    out "#ifdef EZRT_TRACE\n";
    out "        printf(\"t=%%ld resume %%s\\n\", ezrt_now,\n";
    out "               ezrt_task_name[item->task_id - 1]);\n";
    out "#endif\n";
    out "        EZRT_RESTORE_CONTEXT(item->task_id);\n";
    out "    } else {\n";
    out "        item->task();\n";
    out "    }\n";
    out "    ezrt_running = item->task_id;\n";
    out "    ezrt_index += 1;\n";
    out "    if (ezrt_index == EZRT_SCHEDULE_SIZE) {\n";
    out "        ezrt_index = 0;\n";
    out "        ezrt_cycle_base += EZRT_HYPER_PERIOD;\n";
    out "    }\n";
    out "    ezrt_timer_program(ezrt_cycle_base\n";
    out "                       + scheduleTable[ezrt_index].start_time);\n";
    out "}\n\n"
  | Compact_table ->
    out "static void ezrt_dispatch(void)\n{\n";
    out "    unsigned char tf = ezrt_tf[ezrt_index];\n";
    out "    int task_id = tf & 0x7f;\n";
    out "    ezrt_now = ezrt_cycle_base + ezrt_offset;\n";
    out "    if (tf & 0x80) {\n";
    out "#ifdef EZRT_TRACE\n";
    out "        printf(\"t=%%ld resume %%s\\n\", ezrt_now,\n";
    out "               ezrt_task_name[task_id - 1]);\n";
    out "#endif\n";
    out "        EZRT_RESTORE_CONTEXT(task_id);\n";
    out "    } else {\n";
    out "        ezrt_task_fn[task_id - 1]();\n";
    out "    }\n";
    out "    ezrt_running = task_id;\n";
    out "    ezrt_index += 1;\n";
    out "    if (ezrt_index == EZRT_SCHEDULE_SIZE) {\n";
    out "        ezrt_index = 0;\n";
    out "        ezrt_cycle_base += EZRT_HYPER_PERIOD;\n";
    out "        ezrt_offset = ezrt_delta[0];\n";
    out "    } else {\n";
    out "        ezrt_offset += ezrt_delta[ezrt_index];\n";
    out "    }\n";
    out "    ezrt_timer_program(ezrt_cycle_base + ezrt_offset);\n";
    out "}\n\n");
  out "%s\n{\n" (isr_signature target);
  outl (List.map (fun l -> "    " ^ l) target.Target.timer_ack);
  out "    EZRT_SAVE_CONTEXT(ezrt_running);\n";
  out "    ezrt_dispatch();\n";
  out "}\n\n";
  if target.Target.hosted then begin
    out "int main(void)\n{\n";
    out "    long rows = (long)EZRT_SCHEDULE_SIZE * EZRT_HOSTED_CYCLES;\n";
    out "    long i;\n";
    out "    ezrt_timer_init();\n";
    (match layout with
    | Struct_table -> out "    ezrt_timer_program(scheduleTable[0].start_time);\n"
    | Compact_table ->
      out "    ezrt_offset = ezrt_delta[0];\n";
      out "    ezrt_timer_program(ezrt_offset);\n");
    out "    for (i = 0; i < rows; i++)\n";
    out "        ezrt_timer_isr();\n";
    out "    printf(\"ezrt: completed %%d hyper-period(s), final time %%ld\\n\",\n";
    out "           EZRT_HOSTED_CYCLES, ezrt_now);\n";
    out "    return 0;\n";
    out "}\n"
  end
  else begin
    out "int main(void)\n{\n";
    out "    ezrt_timer_init();\n";
    (match layout with
    | Struct_table -> out "    ezrt_timer_program(scheduleTable[0].start_time);\n"
    | Compact_table ->
      out "    ezrt_offset = ezrt_delta[0];\n";
      out "    ezrt_timer_program(ezrt_offset);\n");
    out "    for (;;) {\n";
    out "        %s\n" target.Target.idle;
    out "    }\n";
    out "}\n"
  end;
  Buffer.contents buf
