(** Throttled one-line progress reporting.

    A reporter is installed process-wide (like {!Trace} sinks); with
    none installed (the default), {!tick} and {!checkpoint} are a
    branch on [None], so hot loops can tick unconditionally.

    Producers pass a snapshot thunk that renders the current status
    line ("[search[classes]: 12040 stored, depth 31, 85k states/s]");
    it is only called when a line is actually due, so building the
    line costs nothing between reports. *)

type t

val create :
  ?interval_s:float ->
  ?every:int ->
  ?clock:(unit -> float) ->
  ?out:(string -> unit) ->
  unit ->
  t
(** [interval_s] is the minimum time between emitted lines (default
    [0.5]).  [every] bounds how often {!tick} consults the clock: only
    every [every]-th tick (rounded up to a power of two, default
    [1024]) — the per-tick cost between clock checks is one atomic
    increment.  [out] receives finished lines (default: [stderr],
    flushed). *)

val install : t -> unit
val uninstall : unit -> unit
val enabled : unit -> bool

val tick : (unit -> string) -> unit
(** Hot-path tick: cheap counter bump; every [every]-th call checks
    whether [interval_s] has elapsed and, if so, emits the snapshot. *)

val checkpoint : (unit -> string) -> unit
(** Coarse-grained tick for loops whose iterations are already slow
    (one fuzz spec, one portfolio member): always consults the clock,
    still throttled by [interval_s]. *)

val force : (unit -> string) -> unit
(** Emit unconditionally (if a reporter is installed) — for final
    summary lines. *)
