type t = {
  interval_s : float;
  mask : int;
  clock : unit -> float;
  out : string -> unit;
  ticks : int Atomic.t;
  (* guarded by [lock]: last emission time *)
  mutable last : float;
  lock : Mutex.t;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let default_out line = Printf.eprintf "%s\n%!" line

let create ?(interval_s = 0.5) ?(every = 1024) ?(clock = Unix.gettimeofday)
    ?(out = default_out) () =
  {
    interval_s;
    mask = next_pow2 (max 1 every) - 1;
    clock;
    out;
    ticks = Atomic.make 0;
    last = neg_infinity;
    lock = Mutex.create ();
  }

let current : t option ref = ref None

let install t = current := Some t
let uninstall () = current := None
let enabled () = !current <> None

let emit_if_due t snapshot =
  let now = t.clock () in
  Mutex.lock t.lock;
  let due = now -. t.last >= t.interval_s in
  if due then t.last <- now;
  Mutex.unlock t.lock;
  (* render outside the lock: snapshots may be arbitrarily slow *)
  if due then t.out (snapshot ())

let tick snapshot =
  match !current with
  | None -> ()
  | Some t ->
    let n = Atomic.fetch_and_add t.ticks 1 in
    if n land t.mask = t.mask then emit_if_due t snapshot

let checkpoint snapshot =
  match !current with
  | None -> ()
  | Some t -> emit_if_due t snapshot

let force snapshot =
  match !current with
  | None -> ()
  | Some t -> t.out (snapshot ())
