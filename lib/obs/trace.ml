type arg =
  | Int of int
  | Str of string
  | Float of float

type phase =
  | Begin
  | End
  | Instant

type event = {
  name : string;
  cat : string;
  phase : phase;
  ts_us : int;
  tid : int;
  args : (string * arg) list;
}

type t = {
  clock : unit -> float;
  epoch : float;
  buf : event array;
  cap : int;
  mutable next : int;  (* total events ever written *)
  lock : Mutex.t;
}

let dummy_event =
  { name = ""; cat = ""; phase = Instant; ts_us = 0; tid = 0; args = [] }

let create ?(capacity = 65536) ?(clock = Unix.gettimeofday) () =
  let cap = max 2 capacity in
  {
    clock;
    epoch = clock ();
    buf = Array.make cap dummy_event;
    cap;
    next = 0;
    lock = Mutex.create ();
  }

(* The one process-wide sink.  Written from the main domain before
   workers spawn and read without synchronization: the ref itself is a
   data race only if install happens concurrently with recording,
   which the CLI/test discipline (install, run, uninstall) avoids. *)
let current : t option ref = ref None

let install t = current := Some t
let uninstall () = current := None
let installed () = !current
let enabled () = !current <> None

let record t name cat phase args =
  let ts_us =
    int_of_float ((t.clock () -. t.epoch) *. 1e6 +. 0.5)
  in
  let tid = (Domain.self () :> int) in
  let ev = { name; cat; phase; ts_us; tid; args } in
  Mutex.lock t.lock;
  t.buf.(t.next mod t.cap) <- ev;
  t.next <- t.next + 1;
  Mutex.unlock t.lock

let begin_span ?(args = []) ~cat name =
  match !current with
  | None -> ()
  | Some t -> record t name cat Begin args

let end_span ?(args = []) ~cat name =
  match !current with
  | None -> ()
  | Some t -> record t name cat End args

let instant ?(args = []) ~cat name =
  match !current with
  | None -> ()
  | Some t -> record t name cat Instant args

let with_span ?args ~cat f name =
  match !current with
  | None -> f ()
  | Some _ ->
    begin_span ?args ~cat name;
    Fun.protect ~finally:(fun () -> end_span ~cat name) f

let written t = t.next
let dropped t = max 0 (t.next - t.cap)
let capacity t = t.cap

let events t =
  Mutex.lock t.lock;
  let n = t.next in
  let live = min n t.cap in
  let first = n - live in
  let out =
    List.init live (fun i -> t.buf.((first + i) mod t.cap))
  in
  Mutex.unlock t.lock;
  out

(* --- Chrome trace-event JSON ---------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let arg_to_json = function
  | Int i -> string_of_int i
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Float f -> Printf.sprintf "%.6g" f

let event_to_json ev =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\""
       (json_escape ev.name) (json_escape ev.cat)
       (match ev.phase with Begin -> "B" | End -> "E" | Instant -> "i"));
  (* instant events need a scope; "t" = this thread *)
  if ev.phase = Instant then Buffer.add_string b ",\"s\":\"t\"";
  Buffer.add_string b
    (Printf.sprintf ",\"ts\":%d,\"pid\":1,\"tid\":%d" ev.ts_us ev.tid);
  (match ev.args with
  | [] -> ()
  | args ->
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "\"%s\":%s" (json_escape k) (arg_to_json v)))
      args;
    Buffer.add_char b '}');
  Buffer.add_char b '}';
  Buffer.contents b

let to_chrome_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (event_to_json ev))
    (events t);
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\",";
  Buffer.add_string b
    (Printf.sprintf "\"otherData\":{\"producer\":\"ezrt\",\"dropped\":%d}}\n"
       (dropped t));
  Buffer.contents b

let save_file path t =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_chrome_json t))
