type render =
  | Count  (* plain integer *)
  | Nanoseconds  (* cell holds ns, exported as seconds *)

type counter = {
  name : string;
  labels : (string * string) list;
  help : string;
  render : render;
  is_gauge : bool;  (* set semantics; exported as # TYPE gauge *)
  cell : int Atomic.t;
}

(* keyed by (name, sorted labels); the mutex guards only registration,
   increments go straight to the atomic cell *)
let registry : (string * (string * string) list, counter) Hashtbl.t =
  Hashtbl.create 64

let registry_lock = Mutex.create ()

let get_or_create ?(help = "") ?(labels = []) ?(is_gauge = false) ~render name =
  let labels = List.sort compare labels in
  let key = (name, labels) in
  Mutex.lock registry_lock;
  let c =
    match Hashtbl.find_opt registry key with
    | Some c -> c
    | None ->
      let c = { name; labels; help; render; is_gauge; cell = Atomic.make 0 } in
      Hashtbl.add registry key c;
      c
  in
  Mutex.unlock registry_lock;
  c

let counter ?help ?labels name = get_or_create ?help ?labels ~render:Count name

type gauge = counter

let gauge ?help ?labels name =
  get_or_create ?help ?labels ~is_gauge:true ~render:Count name

let set g v = Atomic.set g.cell v
let gauge_value g = Atomic.get g.cell

let add c n =
  if n < 0 then
    invalid_arg
      (Printf.sprintf "Metrics.add: negative increment %d on %s" n c.name);
  ignore (Atomic.fetch_and_add c.cell n)

let incr c = add c 1
let value c = Atomic.get c.cell

type timer = {
  ns : counter;
  runs : counter;
}

let timer ?(help = "") ?labels name =
  {
    ns =
      get_or_create ~help ?labels ~render:Nanoseconds
        (name ^ "_seconds_total");
    runs = get_or_create ~help ?labels ~render:Count (name ^ "_runs_total");
  }

let observe t seconds =
  if seconds < 0.0 then invalid_arg "Metrics.observe: negative duration";
  ignore (Atomic.fetch_and_add t.ns.cell (int_of_float (seconds *. 1e9)));
  incr t.runs

let time t f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> observe t (Unix.gettimeofday () -. t0)) f

let timer_seconds t = float_of_int (Atomic.get t.ns.cell) /. 1e9
let timer_runs t = value t.runs

(* --- Prometheus text exposition -------------------------------------- *)

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let series_line c =
  let labels =
    match c.labels with
    | [] -> ""
    | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"
  in
  match c.render with
  | Count -> Printf.sprintf "%s%s %d" c.name labels (Atomic.get c.cell)
  | Nanoseconds ->
    Printf.sprintf "%s%s %.9f" c.name labels
      (float_of_int (Atomic.get c.cell) /. 1e9)

let dump () =
  Mutex.lock registry_lock;
  let all = Hashtbl.fold (fun _ c acc -> c :: acc) registry [] in
  Mutex.unlock registry_lock;
  let all =
    List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels)) all
  in
  let b = Buffer.create 1024 in
  let last_name = ref "" in
  List.iter
    (fun c ->
      if c.name <> !last_name then begin
        last_name := c.name;
        if c.help <> "" then
          Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" c.name c.help);
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" c.name
             (if c.is_gauge then "gauge" else "counter"))
      end;
      Buffer.add_string b (series_line c);
      Buffer.add_char b '\n')
    all;
  Buffer.contents b

let save_file path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (dump ()))

(* End-of-span GC snapshot: engines call this when flushing their
   counters so a --metrics dump shows the allocation behaviour of the
   last search (quick_stat: no heap traversal). *)
let record_gc_gauges () =
  let q = Gc.quick_stat () in
  let g name help = gauge ~help name in
  set
    (g "ezrt_gc_minor_words"
       "Words allocated in the minor heap since program start")
    (int_of_float q.Gc.minor_words);
  set
    (g "ezrt_gc_major_words"
       "Words allocated in or promoted to the major heap since program start")
    (int_of_float q.Gc.major_words);
  set
    (g "ezrt_gc_compactions" "Heap compactions since program start")
    q.Gc.compactions

let reset_all () =
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) registry;
  Mutex.unlock registry_lock
