(** Structured tracing: timestamped begin/end spans and instant
    events, recorded into a preallocated ring buffer and exportable as
    Chrome trace-event JSON ([chrome://tracing] / Perfetto loadable).

    A process has at most one installed sink.  With no sink installed
    (the default) every recording entry point is a branch on [None]
    and returns immediately, so instrumentation in hot paths is
    near-free when tracing is off.  Recording is domain-safe: events
    carry the recording domain's id as their [tid], so portfolio
    members show up as parallel tracks in the viewer. *)

type arg =
  | Int of int
  | Str of string
  | Float of float

type phase =
  | Begin  (** span opening ([ph:"B"]) *)
  | End  (** span closing ([ph:"E"]) *)
  | Instant  (** point event ([ph:"i"]) *)

type event = {
  name : string;
  cat : string;  (** category, e.g. ["search"], ["portfolio"], ["fuzz"] *)
  phase : phase;
  ts_us : int;  (** microseconds since the sink's creation *)
  tid : int;  (** recording domain id *)
  args : (string * arg) list;
}

type t
(** A sink: a fixed-capacity ring buffer of events.  When full, new
    events overwrite the oldest ones; {!dropped} counts the losses. *)

val create : ?capacity:int -> ?clock:(unit -> float) -> unit -> t
(** [capacity] is the ring size in events (default [65536]; clamped to
    at least 2).  [clock] returns seconds (default
    [Unix.gettimeofday]); it is sampled once at creation to set the
    sink's epoch, then once per recorded event.  Injecting a fake
    clock makes traces byte-for-byte reproducible. *)

val install : t -> unit
(** Make [t] the process-wide sink observed by the recording entry
    points below. *)

val uninstall : unit -> unit

val installed : unit -> t option
val enabled : unit -> bool

(** {1 Recording}

    All of these are no-ops (a single branch) when no sink is
    installed. *)

val begin_span : ?args:(string * arg) list -> cat:string -> string -> unit
val end_span : ?args:(string * arg) list -> cat:string -> string -> unit
val instant : ?args:(string * arg) list -> cat:string -> string -> unit

val with_span : ?args:(string * arg) list -> cat:string -> (unit -> 'a) -> string -> 'a
(** [with_span ~cat f name] brackets [f ()] in a [name] span; the span
    is closed on exceptions too. *)

(** {1 Reading a sink} *)

val events : t -> event list
(** Chronological (oldest surviving first). *)

val written : t -> int
(** Total events recorded, including overwritten ones. *)

val dropped : t -> int
(** Events lost to ring wraparound: [max 0 (written - capacity)]. *)

val capacity : t -> int

(** {1 Export} *)

val to_chrome_json : t -> string
(** Chrome trace-event format: a JSON object with a [traceEvents]
    array of [B]/[E]/[i] events, one per line.  Load it at
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. *)

val save_file : string -> t -> unit
