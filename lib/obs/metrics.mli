(** Named monotonic counters and timers with a Prometheus-style text
    dump.

    The registry is process-wide: {!counter} is get-or-create, so
    instrumentation sites can look a counter up by name and label set
    without coordinating registration.  Cells are [Atomic.t]s —
    increments from portfolio worker domains are safe.  Engines update
    counters in bulk (once per search/spec, not per node), so the
    always-on registry costs nothing on hot paths. *)

type counter

val counter :
  ?help:string -> ?labels:(string * string) list -> string -> counter
(** [counter name] returns the registered counter for [(name, labels)],
    creating it on first use.  [name] should follow Prometheus
    conventions (snake case, [_total] suffix for counters).  [help] is
    kept from the first registration. *)

val incr : counter -> unit

val add : counter -> int -> unit
(** @raise Invalid_argument on a negative amount: counters are
    monotonic. *)

val value : counter -> int

type gauge
(** A last-value cell, exported with [# TYPE ... gauge]: {!set}
    overwrites instead of accumulating.  Used for end-of-span
    snapshots such as the GC word counts. *)

val gauge : ?help:string -> ?labels:(string * string) list -> string -> gauge
(** Get-or-create, like {!counter}; gauges and counters share the
    registry namespace, so a name should be one or the other. *)

val set : gauge -> int -> unit
val gauge_value : gauge -> int

type timer
(** An accumulating timer, exported as two series:
    [<name>_seconds_total] and [<name>_runs_total]. *)

val timer : ?help:string -> ?labels:(string * string) list -> string -> timer
(** [timer name] — [name] is the series prefix, without a suffix. *)

val observe : timer -> float -> unit
(** Record one run of the given duration (seconds, non-negative). *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk and {!observe} its wall-clock duration (measured
    with [Unix.gettimeofday]), exceptions included. *)

val timer_seconds : timer -> float
val timer_runs : timer -> int

val record_gc_gauges : unit -> unit
(** Snapshot [Gc.quick_stat] into the
    [ezrt_gc_{minor_words,major_words,compactions}] gauges.  The
    search engines call this at the end of every search span so the
    metrics dump reflects allocation up to the last search. *)

val dump : unit -> string
(** Prometheus text exposition: [# HELP] / [# TYPE] blocks, series
    sorted by name then labels, so the dump is deterministic given the
    counter values. *)

val save_file : string -> unit

val reset_all : unit -> unit
(** Zero every registered cell (the registry itself is kept) — for
    tests and benchmark isolation. *)
