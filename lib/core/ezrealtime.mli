(** ezRealtime: embedded hard real-time software synthesis.

    One-call pipeline over the underlying libraries (all re-exported
    below): a specification is validated, translated to a time Petri
    net by building-block composition, a feasible pre-runtime schedule
    is found by depth-first search over the net's timed transition
    system, certified by an independent validator, and turned into a
    schedule table plus scheduled C code.

    {[
      let artifact =
        Ezrealtime.synthesize_exn Ezrt_spec.Case_studies.quickstart in
      print_string artifact.Ezrealtime.c_program
    ]} *)

(** {1 Re-exported subsystems} *)

module Xml = Ezrt_xml.Doc
module Xml_parser = Ezrt_xml.Parser
module Interval = Ezrt_tpn.Time_interval
module Pnet = Ezrt_tpn.Pnet
module State = Ezrt_tpn.State
module Packed_state = Ezrt_tpn.Packed_state
module Tlts = Ezrt_tpn.Tlts
module Analysis = Ezrt_tpn.Analysis
module Invariants = Ezrt_tpn.Invariants
module Dbm = Ezrt_tpn.Dbm
module State_class = Ezrt_tpn.State_class
module Reduce = Ezrt_tpn.Reduce
module Dot = Ezrt_tpn.Dot
module Tina = Ezrt_tpn.Tina
module Query = Ezrt_tpn.Query
module Task = Ezrt_spec.Task
module Processor = Ezrt_spec.Processor
module Message = Ezrt_spec.Message
module Spec = Ezrt_spec.Spec
module Validate = Ezrt_spec.Validate
module Dsl = Ezrt_spec.Dsl
module Stats = Ezrt_spec.Stats
module Case_studies = Ezrt_spec.Case_studies
module Pnml = Ezrt_pnml.Pnml
module Blocks = Ezrt_blocks.Blocks
module Relations = Ezrt_blocks.Relations
module Compose = Ezrt_blocks.Compose
module Meaning = Ezrt_blocks.Meaning
module Translate = Ezrt_blocks.Translate
module Lint = Ezrt_lint.Lint

module Schedulability = Ezrt_analysis.Schedulability
(** Analytic schedulability verdicts — spec-level quick-reject with
    machine-checkable witnesses and a certified EDF quick-accept
    ([Analysis] above is the TPN reachability module). *)

module Priority = Ezrt_sched.Priority
module Search = Ezrt_sched.Search
module Schedule = Ezrt_sched.Schedule
module Timeline = Ezrt_sched.Timeline
module Table = Ezrt_sched.Table
module Validator = Ezrt_sched.Validator
module Chart = Ezrt_sched.Chart
module Quality = Ezrt_sched.Quality
module Sensitivity = Ezrt_sched.Sensitivity
module Vcd = Ezrt_sched.Vcd
module Class_search = Ezrt_sched.Class_search
module Optimize = Ezrt_sched.Optimize
module Portfolio = Ezrt_sched.Portfolio
module Par_search = Ezrt_sched.Par_search
module Par_class = Ezrt_sched.Par_class
module Class_store = Ezrt_tpn.Class_store
module Target = Ezrt_codegen.Target
module Emit = Ezrt_codegen.Emit
module Vm = Ezrt_runtime.Vm
module Baseline_sim = Ezrt_baseline.Sim
module Baseline_compare = Ezrt_baseline.Compare
module Rta = Ezrt_baseline.Rta
module Rng = Ezrt_gen.Rng
module Spec_gen = Ezrt_gen.Spec_gen
module Differ = Ezrt_gen.Differ
module Shrink = Ezrt_gen.Shrink
module Fuzz = Ezrt_gen.Fuzz

(** Observability (see [docs/OBSERVABILITY.md]): install an
    {!Obs_trace} sink before synthesizing to capture Chrome-trace
    spans of every pipeline phase, dump {!Obs_metrics} counters after
    a run, or install an {!Obs_progress} reporter for a throttled
    status line on stderr. *)

module Obs_trace = Ezrt_obs.Trace
module Obs_metrics = Ezrt_obs.Metrics
module Obs_progress = Ezrt_obs.Progress

(** The synthesis service (see [docs/SERVICE.md]): content-addressed
    result caching with re-validation on every hit, and the concurrent
    job server behind [ezrt serve] / [ezrt batch]. *)

module Service_json = Ezrt_service.Json
module Spec_digest = Ezrt_service.Spec_digest
module Result_cache = Ezrt_service.Cache
module Server = Ezrt_service.Server

(** {1 The synthesis pipeline} *)

type artifact = {
  spec : Spec.t;
  model : Translate.t;  (** the composed time Petri net *)
  schedule : Schedule.t;  (** the feasible firing schedule *)
  segments : Timeline.segment list;
  table : Table.item list;  (** the Fig 8 schedule table *)
  c_program : string;  (** scheduled C for the requested target *)
  metrics : Search.metrics;
}

type error =
  | Invalid_spec of Validate.error list
  | No_schedule of Search.failure * Search.metrics
  | Not_certified of Validator.violation list
      (** the search returned a schedule the independent validator
          rejects — a library bug, surfaced rather than swallowed *)

val error_to_string : error -> string

val synthesize :
  ?search:Search.options ->
  ?cancel:(unit -> bool) ->
  ?target:Target.t ->
  Spec.t ->
  (artifact, error) result
(** [target] defaults to {!Target.hosted}.  [cancel] is the search's
    cancellation hook (polled at every node): when it returns [true]
    the search unwinds and this returns
    [Error (No_schedule (Budget_exhausted, _))] — how [--timeout]
    maps wall-clock deadlines onto the discrete engine. *)

val synthesize_exn :
  ?search:Search.options ->
  ?cancel:(unit -> bool) ->
  ?target:Target.t ->
  Spec.t ->
  artifact

val report : Format.formatter -> artifact -> unit
(** Human-readable synthesis summary: net size, search statistics,
    schedule table. *)

val version : string
