module Xml = Ezrt_xml.Doc
module Xml_parser = Ezrt_xml.Parser
module Interval = Ezrt_tpn.Time_interval
module Pnet = Ezrt_tpn.Pnet
module State = Ezrt_tpn.State
module Packed_state = Ezrt_tpn.Packed_state
module Tlts = Ezrt_tpn.Tlts
module Analysis = Ezrt_tpn.Analysis
module Invariants = Ezrt_tpn.Invariants
module Dbm = Ezrt_tpn.Dbm
module State_class = Ezrt_tpn.State_class
module Reduce = Ezrt_tpn.Reduce
module Dot = Ezrt_tpn.Dot
module Tina = Ezrt_tpn.Tina
module Query = Ezrt_tpn.Query
module Task = Ezrt_spec.Task
module Processor = Ezrt_spec.Processor
module Message = Ezrt_spec.Message
module Spec = Ezrt_spec.Spec
module Validate = Ezrt_spec.Validate
module Dsl = Ezrt_spec.Dsl
module Stats = Ezrt_spec.Stats
module Case_studies = Ezrt_spec.Case_studies
module Pnml = Ezrt_pnml.Pnml
module Blocks = Ezrt_blocks.Blocks
module Relations = Ezrt_blocks.Relations
module Compose = Ezrt_blocks.Compose
module Meaning = Ezrt_blocks.Meaning
module Translate = Ezrt_blocks.Translate
module Lint = Ezrt_lint.Lint

(* [Analysis] is taken by the TPN-level reachability module above *)
module Schedulability = Ezrt_analysis.Schedulability
module Priority = Ezrt_sched.Priority
module Search = Ezrt_sched.Search
module Schedule = Ezrt_sched.Schedule
module Timeline = Ezrt_sched.Timeline
module Table = Ezrt_sched.Table
module Validator = Ezrt_sched.Validator
module Chart = Ezrt_sched.Chart
module Quality = Ezrt_sched.Quality
module Sensitivity = Ezrt_sched.Sensitivity
module Vcd = Ezrt_sched.Vcd
module Class_search = Ezrt_sched.Class_search
module Optimize = Ezrt_sched.Optimize
module Portfolio = Ezrt_sched.Portfolio
module Par_search = Ezrt_sched.Par_search
module Par_class = Ezrt_sched.Par_class
module Class_store = Ezrt_tpn.Class_store
module Target = Ezrt_codegen.Target
module Emit = Ezrt_codegen.Emit
module Vm = Ezrt_runtime.Vm
module Baseline_sim = Ezrt_baseline.Sim
module Baseline_compare = Ezrt_baseline.Compare
module Rta = Ezrt_baseline.Rta
module Rng = Ezrt_gen.Rng
module Spec_gen = Ezrt_gen.Spec_gen
module Differ = Ezrt_gen.Differ
module Shrink = Ezrt_gen.Shrink
module Fuzz = Ezrt_gen.Fuzz
module Obs_trace = Ezrt_obs.Trace
module Obs_metrics = Ezrt_obs.Metrics
module Obs_progress = Ezrt_obs.Progress
module Service_json = Ezrt_service.Json
module Spec_digest = Ezrt_service.Spec_digest
module Result_cache = Ezrt_service.Cache
module Server = Ezrt_service.Server

type artifact = {
  spec : Spec.t;
  model : Translate.t;
  schedule : Schedule.t;
  segments : Timeline.segment list;
  table : Table.item list;
  c_program : string;
  metrics : Search.metrics;
}

type error =
  | Invalid_spec of Validate.error list
  | No_schedule of Search.failure * Search.metrics
  | Not_certified of Validator.violation list

let error_to_string = function
  | Invalid_spec errors ->
    Printf.sprintf "invalid specification: %s"
      (String.concat "; " (List.map Validate.error_to_string errors))
  | No_schedule (f, m) ->
    Printf.sprintf "no schedule: %s (after %d states, %.1f ms)"
      (Search.failure_to_string f) m.Search.stored
      (m.Search.elapsed_s *. 1000.)
  | Not_certified violations ->
    Printf.sprintf "schedule failed certification: %s"
      (String.concat "; " (List.map Validator.violation_to_string violations))

let version = "1.0.0"

let synthesize ?search ?cancel ?(target = Target.hosted) spec =
  Obs_trace.with_span ~cat:"synthesize"
    ~args:[ ("spec", Obs_trace.Str spec.Spec.name) ]
    (fun () ->
      match (Validate.check spec).Validate.errors with
      | _ :: _ as errors -> Error (Invalid_spec errors)
      | [] -> (
        let model = Translate.translate spec in
        let outcome, metrics = Search.find_schedule ?options:search ?cancel model in
        match outcome with
        | Error f -> Error (No_schedule (f, metrics))
        | Ok schedule -> (
          let segments = Timeline.of_schedule model schedule in
          match
            Obs_trace.with_span ~cat:"synthesize"
              (fun () -> Validator.check model segments)
              "certify"
          with
          | Error violations -> Error (Not_certified violations)
          | Ok () ->
            let table = Table.of_segments segments in
            let c_program = Emit.program ~target model table in
            Ok { spec; model; schedule; segments; table; c_program; metrics })))
    "synthesize"

let synthesize_exn ?search ?cancel ?target spec =
  match synthesize ?search ?cancel ?target spec with
  | Ok artifact -> artifact
  | Error e -> failwith (error_to_string e)

let report fmt artifact =
  let model = artifact.model in
  Format.fprintf fmt "specification : %a@." Spec.pp artifact.spec;
  Format.fprintf fmt "net           : %a@." Pnet.pp_summary model.Translate.net;
  Format.fprintf fmt
    "search        : %d states stored (%d visited, %d pruned eagerly), %d \
     backtracks, %.1f ms@."
    artifact.metrics.Search.stored artifact.metrics.Search.visited
    artifact.metrics.Search.eager artifact.metrics.Search.backtracks
    (artifact.metrics.Search.elapsed_s *. 1000.);
  Format.fprintf fmt "schedule      : %d firings, makespan %d, %d table rows@."
    (Schedule.length artifact.schedule)
    (Schedule.makespan artifact.schedule)
    (List.length artifact.table);
  Format.fprintf fmt "schedule table:@.%a" (Table.pp model) artifact.table
