(* Canonical content addressing of specifications.

   The encoding is built for injectivity, not speed: every string is
   length-prefixed (so "ab"^"c" and "a"^"bc" cannot collide), every
   record is tagged with a field marker, and every list is sorted by a
   total key before encoding (so list order cannot leak into the
   address).  MD5 over the result is plenty for a content address —
   the cache re-validates every hit semantically, so even an
   adversarial collision degrades to a miss, never to a wrong
   answer. *)

module Spec = Ezrt_spec.Spec
module Task = Ezrt_spec.Task
module Processor = Ezrt_spec.Processor
module Message = Ezrt_spec.Message

let version = "ezrt-digest-v1"

let add_str buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let add_int buf n =
  Buffer.add_char buf 'i';
  Buffer.add_string buf (string_of_int n);
  Buffer.add_char buf ';'

let add_tag buf tag = Buffer.add_char buf tag

let add_opt_str buf = function
  | None -> Buffer.add_char buf '_'
  | Some s ->
    Buffer.add_char buf '+';
    add_str buf s

let add_task buf (t : Task.t) =
  add_tag buf 'T';
  add_str buf t.Task.id;
  add_str buf t.Task.name;
  add_int buf t.Task.phase;
  add_int buf t.Task.release;
  add_int buf t.Task.wcet;
  add_int buf t.Task.deadline;
  add_int buf t.Task.period;
  add_tag buf
    (match t.Task.mode with Task.Non_preemptive -> 'N' | Task.Preemptive -> 'P');
  add_int buf t.Task.energy;
  add_str buf t.Task.processor;
  add_opt_str buf t.Task.code

let add_processor buf (p : Processor.t) =
  add_tag buf 'C';
  add_str buf p.Processor.id;
  add_str buf p.Processor.name

let add_message buf (m : Message.t) =
  add_tag buf 'M';
  add_str buf m.Message.id;
  add_str buf m.Message.name;
  add_str buf m.Message.sender;
  add_str buf m.Message.receiver;
  add_str buf m.Message.bus;
  add_int buf m.Message.grant_time;
  add_int buf m.Message.comm_time

let add_pair buf (a, b) =
  add_str buf a;
  add_str buf b

let sort_uniq_by key xs = List.sort (fun a b -> compare (key a) (key b)) xs

let canonical_bytes (spec : Spec.t) =
  let buf = Buffer.create 512 in
  add_tag buf 'S';
  add_str buf spec.Spec.name;
  add_int buf spec.Spec.disp_overhead;
  (* each section is tagged and counted, so an empty task list cannot
     be confused with an empty message list *)
  let section tag add xs =
    add_tag buf tag;
    add_int buf (List.length xs);
    List.iter (add buf) xs
  in
  section 't' add_task
    (sort_uniq_by (fun (t : Task.t) -> (t.Task.id, t.Task.name)) spec.Spec.tasks);
  section 'c' add_processor
    (sort_uniq_by
       (fun (p : Processor.t) -> (p.Processor.id, p.Processor.name))
       spec.Spec.processors);
  section 'm' add_message
    (sort_uniq_by
       (fun (m : Message.t) -> (m.Message.id, m.Message.name))
       spec.Spec.messages);
  section 'p' add_pair (sort_uniq_by Fun.id spec.Spec.precedences);
  section 'x' add_pair
    (sort_uniq_by Fun.id
       (List.map Spec.normalize_exclusion spec.Spec.exclusions));
  Buffer.contents buf

let digest spec =
  Digest.to_hex (Digest.string (version ^ "\000" ^ canonical_bytes spec))
