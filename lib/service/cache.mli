(** Two-tier content-addressed result cache for synthesis verdicts.

    Entries are keyed by {!Spec_digest.digest} and held in a bounded
    in-memory LRU over an optional on-disk store (one file per digest,
    written atomically via tmp+rename).  The cache stores only
    {e checkable} results:

    - a feasible verdict is stored as the firing schedule's
      [(transition name, delay)] actions, and every hit is replayed
      through [Schedule.of_actions] and re-certified with
      {!Ezrt_sched.Validator.certify} against the freshly translated
      model before being trusted;
    - an infeasible verdict is stored with its analytic witness
      ({!Ezrt_analysis.Schedulability.witness}) and every hit
      re-evaluates the witness with [witness_holds].

    A corrupt, truncated, stale or otherwise unverifiable entry is
    counted ([ezrt_cache_invalid_total]) and degrades to a miss —
    never to an error, and never to an untrusted answer.  Infeasible
    verdicts without a witness (search exhaustion) are not cacheable:
    there is nothing cheap to re-check, so the service recomputes
    them.

    All operations are domain-safe; the server's worker domains share
    one cache. *)

module Spec = Ezrt_spec.Spec
module Schedulability = Ezrt_analysis.Schedulability

type verdict =
  | Feasible of (string * int) list
      (** [(transition name, relative delay)] actions; names, not ids,
          so the entry survives task-list reorderings that preserve
          the digest *)
  | Infeasible of Schedulability.witness

type entry = {
  verdict : verdict;
  engine : string;  (** what computed it, e.g. ["portfolio"] *)
  elapsed_ms : float;  (** original compute cost (informational) *)
  stored_states : int;  (** original search effort (informational) *)
}

(** A hit that survived re-validation. *)
type validated =
  | Hit_feasible of Ezrt_sched.Schedule.t * Ezrt_sched.Timeline.segment list
  | Hit_infeasible of Schedulability.witness

type t

val create : ?capacity:int -> ?dir:string -> unit -> t
(** [capacity] bounds the in-memory tier (entries, default 256; at
    least 1).  [dir] enables the on-disk tier (created if missing).
    Without [dir] the cache is memory-only. *)

val dir : t -> string option

(** {1 Wire format} *)

val encode : digest:string -> entry -> string
(** Self-describing text: a versioned header, the embedded digest (so
    a renamed file cannot impersonate another spec), the verdict body
    and a terminating [end] line (so truncation is detectable). *)

val decode : string -> (string * entry, string) result
(** Returns [(digest, entry)]; any malformed, truncated or
    version-mismatched input is an [Error]. *)

(** {1 Operations} *)

val store : t -> digest:string -> entry -> unit
(** Insert into the memory tier (evicting the least recently used
    entry past capacity) and, when a [dir] is configured, write the
    entry file atomically. *)

val find :
  t ->
  digest:string ->
  spec:Spec.t ->
  model:Ezrt_blocks.Translate.t ->
  validated option
(** Memory tier first, then disk.  Every hit — including memory hits —
    is re-validated against [spec]/[model] as described above; an
    entry that fails validation is dropped from both tiers and the
    lookup degrades to a miss. *)

val get_or_compute :
  t ->
  digest:string ->
  spec:Spec.t ->
  model:Ezrt_blocks.Translate.t ->
  compute:(unit -> entry option) ->
  validated option
(** {!find}; on a miss, run [compute] and — when it yields a cacheable
    entry that passes validation — {!store} it and return the
    validated hit.  [None] means the computation itself produced
    nothing cacheable (the caller already has its own outcome).
    Concurrent callers on the same digest may duplicate the compute
    (both results are certified, so either may be stored — the store
    is last-writer-wins and both answers are valid); callers never
    observe a half-written entry. *)

(** {1 Accounting} *)

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  invalid : int;  (** corrupt/stale/unverifiable entries degraded to misses *)
}

val counters : t -> counters
(** This cache instance's counters.  The same events also bump the
    process-wide [ezrt_cache_{hits,misses,evictions,invalid}_total]
    metrics ({!Ezrt_obs.Metrics}). *)
