(** Concurrent synthesis job server.

    A bounded job queue drained by OCaml 5 worker domains, each running
    the portfolio pipeline (with the analytic pre-pass) behind the
    shared result {!Cache}.  Admission control sheds load instead of
    queueing without bound: a submit against a full queue returns
    [`Overloaded] immediately and the caller reports it — the server
    never silently drops an accepted job.  Shutdown drains the queue:
    every accepted job gets its response before the workers exit.

    Two protocol front-ends run the same pool: {!serve_channels}
    (newline-delimited JSON over arbitrary channels, e.g. stdio) and
    {!serve_socket} (the same protocol over a Unix domain socket,
    serving connections sequentially). *)

module Spec = Ezrt_spec.Spec
module Schedulability = Ezrt_analysis.Schedulability

(** {1 Solving one specification} *)

type verdict =
  | Feasible of { firings : int; makespan : int }
  | Infeasible of Schedulability.witness option
      (** [None] when proved by race exhaustion rather than an analytic
          witness — correct but not cacheable *)
  | Timed_out  (** the job's wall-clock deadline expired mid-search *)
  | Inconclusive  (** stored-state budget exhausted before a verdict *)

type outcome = {
  verdict : verdict;
  digest : string;  (** {!Spec_digest.digest} of the spec *)
  engine : string;  (** what produced it: a portfolio config, ["prepass"],
                        or ["cache"] on a validated hit *)
  cached : bool;
  elapsed_ms : float;
  stored_states : int;
}

val verdict_line : outcome -> string
(** Deterministic one-line rendering of the digest and verdict — no
    timings, no engine — so two runs over the same corpus (cold and
    warm) produce byte-identical verdict output. *)

val solve :
  ?cache:Cache.t ->
  ?max_states:int ->
  ?deadline_at:float ->
  ?engine_domains:int ->
  Spec.t ->
  (outcome, string) result
(** Validate, translate, consult the cache (every hit re-validated,
    see {!Cache}), and on a miss run {!Ezrt_sched.Portfolio} and store
    any checkable result.  [deadline_at] is an absolute
    [Unix.gettimeofday] instant mapped onto the engines' [cancel]
    hooks.  [engine_domains] caps the portfolio's worker domains
    (default 1 — server workers are already parallel, and a
    single-domain race is deterministic).  [Error] only for invalid
    specifications. *)

(** {1 The worker pool} *)

type request = {
  id : string;
  spec : Spec.t;
  timeout_ms : int option;  (** overrides the pool's default *)
  max_states : int option;  (** overrides the pool's budget *)
}

type response = { id : string; result : (outcome, string) result }

type t

val create :
  ?workers:int ->
  ?queue_limit:int ->
  ?cache:Cache.t ->
  ?max_states:int ->
  ?default_timeout_ms:int ->
  unit ->
  t
(** [workers] (default [Domain.recommended_domain_count () - 1], at
    least 1) domains are spawned immediately.  [queue_limit] (default
    64) bounds the backlog of accepted-but-unstarted jobs. *)

val submit : t -> request -> on_done:(response -> unit) -> [ `Accepted | `Overloaded ]
(** [on_done] runs on a worker domain exactly once per accepted job —
    it must be domain-safe.  A job whose deadline expires while queued
    is answered [Timed_out] without running.  [`Overloaded] when the
    queue is at [queue_limit] (counted in
    [ezrt_service_jobs_shed_total]) or the pool is shutting down. *)

val queue_depth : t -> int
(** Jobs accepted and not yet picked up by a worker. *)

val shed_count : t -> int

val shutdown : t -> unit
(** Drain: no new admissions, workers finish every queued job, then
    exit and are joined.  Idempotent. *)

(** {1 Wire protocol}

    One JSON object per line.  Requests:
    [{"id":..,"spec":"<xml>"}] or [{"id":..,"case":"mine-pump"}], with
    optional ["timeout_ms"] and ["max_states"]; control ops
    [{"op":"ping"}] and [{"op":"shutdown"}].  Responses carry
    ["status"]: ["ok"] (with digest/verdict fields), ["error"],
    or ["overloaded"].  See [docs/SERVICE.md]. *)

val response_to_json : response -> Json.t

val serve_channels : t -> in_channel -> out_channel -> [ `Eof | `Shutdown ]
(** Read requests until EOF or a [shutdown] op; responses are written
    (and flushed) as jobs complete, in completion order.  Returns
    after every accepted job's response has been written.  Does not
    shut the pool down — the caller decides ([`Shutdown] means the
    client asked for it). *)

val serve_socket : t -> path:string -> unit
(** Bind a Unix domain socket at [path] (replacing any stale file) and
    serve connections one at a time until a client sends the
    [shutdown] op.  Removes the socket file on exit. *)
