(* Minimal JSON: just enough for newline-delimited request/response
   lines and nothing more.  Both directions are total over the subset
   the protocol uses; the parser rejects anything it does not
   understand with a positioned error message. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing -------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s -> escape_string buf s
    | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          go v)
        vs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- parsing --------------------------------------------------------- *)

exception Parse_error of int * string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> error (Printf.sprintf "expected %c, got %c" c got)
    | None -> error (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error ("expected " ^ word)
  in
  (* UTF-8 encoding of a code point, for \uXXXX escapes *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let s = String.sub input !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ s) with
    | Some v -> v
    | None -> error ("bad \\u escape " ^ s)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 32 in
    let rec loop () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        (match peek () with
        | None -> error "unterminated escape"
        | Some c -> (
          advance ();
          match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' -> (
            let hi = hex4 () in
            (* surrogate pair: \uD8xx\uDCxx *)
            if hi >= 0xd800 && hi <= 0xdbff then begin
              if
                !pos + 1 < n && input.[!pos] = '\\' && input.[!pos + 1] = 'u'
              then begin
                pos := !pos + 2;
                let lo = hex4 () in
                if lo >= 0xdc00 && lo <= 0xdfff then
                  add_utf8 buf
                    (0x10000 + ((hi - 0xd800) lsl 10) + (lo - 0xdc00))
                else error "invalid low surrogate"
              end
              else error "lone high surrogate"
            end
            else add_utf8 buf hi)
          | c -> error (Printf.sprintf "bad escape \\%c" c)));
        loop ())
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char input.[!pos] do
      advance ()
    done;
    let s = String.sub input start (!pos - start) in
    match float_of_string_opt s with
    | Some f -> Num f
    | None -> error ("bad number " ^ s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, value) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, value) :: acc)
          | _ -> error "expected , or } in object"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (value :: acc)
          | Some ']' ->
            advance ();
            List.rev (value :: acc)
          | _ -> error "expected , or ] in array"
        in
        List (items [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
    Error (Printf.sprintf "json: %s at offset %d" msg pos)

(* --- accessors ------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_num = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None
