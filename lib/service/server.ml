(* Synthesis job server: a bounded queue drained by worker domains.

   Every job runs the same pipeline as `ezrt schedule --engine
   portfolio` — analytic pre-pass, then the config race — behind the
   shared re-validating cache.  The pool's concurrency lives at the
   job level, so each portfolio runs single-domain by default: jobs
   are independent, and N independent races saturate N domains better
   than one race on N domains. *)

module Spec = Ezrt_spec.Spec
module Validate = Ezrt_spec.Validate
module Dsl = Ezrt_spec.Dsl
module Case_studies = Ezrt_spec.Case_studies
module Translate = Ezrt_blocks.Translate
module Schedulability = Ezrt_analysis.Schedulability
module Pnet = Ezrt_tpn.Pnet
module Schedule = Ezrt_sched.Schedule
module Search = Ezrt_sched.Search
module Portfolio = Ezrt_sched.Portfolio
module Metrics = Ezrt_obs.Metrics
module Trace = Ezrt_obs.Trace

type verdict =
  | Feasible of { firings : int; makespan : int }
  | Infeasible of Schedulability.witness option
  | Timed_out
  | Inconclusive

type outcome = {
  verdict : verdict;
  digest : string;
  engine : string;
  cached : bool;
  elapsed_ms : float;
  stored_states : int;
}

let verdict_line o =
  match o.verdict with
  | Feasible { firings; makespan } ->
    Printf.sprintf "%s feasible firings=%d makespan=%d" o.digest firings
      makespan
  | Infeasible (Some w) ->
    Printf.sprintf "%s infeasible witness=%s" o.digest
      (Schedulability.witness_kind w)
  | Infeasible None -> o.digest ^ " infeasible witness=none"
  | Timed_out -> o.digest ^ " timed-out"
  | Inconclusive -> o.digest ^ " inconclusive"

let jobs_metric which =
  Metrics.counter ~help:"Service jobs by lifecycle event"
    ("ezrt_service_jobs_" ^ which ^ "_total")

let solve ?cache ?(max_states = 500_000) ?deadline_at ?(engine_domains = 1)
    spec =
  match (Validate.check spec).Validate.errors with
  | e :: _ ->
    Error ("invalid specification: " ^ Validate.error_to_string e)
  | [] ->
    let started = Unix.gettimeofday () in
    let digest = Spec_digest.digest spec in
    let model = Translate.translate spec in
    let finish ?(cached = false) ~engine ~stored verdict =
      {
        verdict;
        digest;
        engine;
        cached;
        elapsed_ms = (Unix.gettimeofday () -. started) *. 1000.;
        stored_states = stored;
      }
    in
    let hit =
      match cache with
      | None -> None
      | Some c -> Cache.find c ~digest ~spec ~model
    in
    (match hit with
    | Some (Cache.Hit_feasible (schedule, _segments)) ->
      Ok
        (finish ~cached:true ~engine:"cache" ~stored:0
           (Feasible
              {
                firings = Schedule.length schedule;
                makespan = Schedule.makespan schedule;
              }))
    | Some (Cache.Hit_infeasible w) ->
      Ok (finish ~cached:true ~engine:"cache" ~stored:0 (Infeasible (Some w)))
    | None ->
      let cancel () =
        match deadline_at with
        | None -> false
        | Some d -> Unix.gettimeofday () > d
      in
      let race =
        Portfolio.find_schedule ~max_stored:max_states
          ~domains:engine_domains ~cancel model
      in
      let stored =
        List.fold_left
          (fun acc (a : Portfolio.attempt) ->
            acc + a.Portfolio.metrics.Search.stored)
          0 race.Portfolio.attempts
      in
      let engine =
        match (race.Portfolio.winner, race.Portfolio.prepass) with
        | Some cfg, _ -> Portfolio.config_to_string cfg
        | None, (Portfolio.Prepass_accepted | Portfolio.Prepass_rejected _) ->
          "prepass"
        | None, _ -> "portfolio"
      in
      let store_entry verdict =
        match cache with
        | None -> ()
        | Some c ->
          Cache.store c ~digest
            {
              Cache.verdict;
              engine;
              elapsed_ms = race.Portfolio.elapsed_s *. 1000.;
              stored_states = stored;
            }
      in
      (match race.Portfolio.outcome with
      | Ok schedule ->
        let net = model.Translate.net in
        let actions =
          List.map
            (fun (e : Schedule.entry) ->
              (Pnet.transition_name net e.Schedule.tid, e.Schedule.delay))
            schedule.Schedule.entries
        in
        store_entry (Cache.Feasible actions);
        Ok
          (finish ~engine ~stored
             (Feasible
                {
                  firings = Schedule.length schedule;
                  makespan = Schedule.makespan schedule;
                }))
      | Error Search.Infeasible -> (
        match race.Portfolio.prepass with
        | Portfolio.Prepass_rejected w ->
          store_entry (Cache.Infeasible w);
          Ok (finish ~engine ~stored (Infeasible (Some w)))
        | _ ->
          (* exhaustion proofs carry no witness to re-check later, so
             they are reported but never cached *)
          Ok (finish ~engine ~stored (Infeasible None)))
      | Error Search.Budget_exhausted ->
        if cancel () then Ok (finish ~engine ~stored Timed_out)
        else Ok (finish ~engine ~stored Inconclusive)))

(* --- the worker pool -------------------------------------------------- *)

type request = {
  id : string;
  spec : Spec.t;
  timeout_ms : int option;
  max_states : int option;
}

type response = { id : string; result : (outcome, string) result }

type job = {
  req : request;
  deadline_at : float option;  (** absolute; fixed at admission *)
  on_done : response -> unit;
}

type t = {
  cache : Cache.t option;
  max_states : int;
  default_timeout_ms : int option;
  queue_limit : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  jobs : job Queue.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  shed : int Atomic.t;
}

let process t job =
  Trace.begin_span ~cat:"service" "job"
    ~args:[ ("id", Trace.Str job.req.id) ];
  let result =
    match job.deadline_at with
    | Some d when Unix.gettimeofday () > d ->
      (* expired while queued: answer without burning a worker on a
         job whose client deadline is already gone *)
      Ok
        {
          verdict = Timed_out;
          digest = Spec_digest.digest job.req.spec;
          engine = "queue";
          cached = false;
          elapsed_ms = 0.;
          stored_states = 0;
        }
    | deadline_at -> (
      try
        solve ?cache:t.cache
          ~max_states:(Option.value job.req.max_states ~default:t.max_states)
          ?deadline_at job.req.spec
      with exn -> Error ("internal error: " ^ Printexc.to_string exn))
  in
  Trace.end_span ~cat:"service" "job"
    ~args:
      [
        ("id", Trace.Str job.req.id);
        ( "outcome",
          Trace.Str
            (match result with
            | Ok o -> verdict_line o
            | Error _ -> "error") );
      ];
  Metrics.incr (jobs_metric "completed");
  try job.on_done { id = job.req.id; result } with _ -> ()

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.jobs && not t.stopping do
    Condition.wait t.nonempty t.mutex
  done;
  if Queue.is_empty t.jobs then
    (* stopping and drained *)
    Mutex.unlock t.mutex
  else begin
    let job = Queue.pop t.jobs in
    Mutex.unlock t.mutex;
    Metrics.incr (jobs_metric "dequeued");
    (try process t job with _ -> ());
    worker_loop t
  end

let create ?workers ?(queue_limit = 64) ?cache ?(max_states = 500_000)
    ?default_timeout_ms () =
  let workers =
    match workers with
    | Some w -> max 1 w
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let t =
    {
      cache;
      max_states;
      default_timeout_ms;
      queue_limit = max 1 queue_limit;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      stopping = false;
      domains = [];
      shed = Atomic.make 0;
    }
  in
  t.domains <-
    List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t req ~on_done =
  Mutex.lock t.mutex;
  let decision =
    if t.stopping || Queue.length t.jobs >= t.queue_limit then `Overloaded
    else begin
      let timeout_ms =
        match req.timeout_ms with
        | Some _ as s -> s
        | None -> t.default_timeout_ms
      in
      let deadline_at =
        Option.map
          (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
          timeout_ms
      in
      Queue.push { req; deadline_at; on_done } t.jobs;
      Condition.signal t.nonempty;
      `Accepted
    end
  in
  Mutex.unlock t.mutex;
  (match decision with
  | `Accepted -> Metrics.incr (jobs_metric "enqueued")
  | `Overloaded ->
    Atomic.incr t.shed;
    Metrics.incr (jobs_metric "shed"));
  decision

let queue_depth t =
  Mutex.lock t.mutex;
  let n = Queue.length t.jobs in
  Mutex.unlock t.mutex;
  n

let shed_count t = Atomic.get t.shed

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  let domains = t.domains in
  t.domains <- [];
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join domains

(* --- wire protocol ---------------------------------------------------- *)

let verdict_slug = function
  | Feasible _ -> "feasible"
  | Infeasible _ -> "infeasible"
  | Timed_out -> "timed-out"
  | Inconclusive -> "inconclusive"

let response_to_json (r : response) =
  match r.result with
  | Ok o ->
    let base =
      [
        ("id", Json.Str r.id);
        ("status", Json.Str "ok");
        ("digest", Json.Str o.digest);
        ("verdict", Json.Str (verdict_slug o.verdict));
        ("engine", Json.Str o.engine);
        ("cached", Json.Bool o.cached);
        ("elapsed_ms", Json.Num o.elapsed_ms);
        ("stored_states", Json.Num (float_of_int o.stored_states));
      ]
    in
    let extra =
      match o.verdict with
      | Feasible { firings; makespan } ->
        [
          ("firings", Json.Num (float_of_int firings));
          ("makespan", Json.Num (float_of_int makespan));
        ]
      | Infeasible (Some w) ->
        [ ("witness", Json.Str (Schedulability.witness_kind w)) ]
      | Infeasible None | Timed_out | Inconclusive -> []
    in
    Json.Obj (base @ extra)
  | Error msg ->
    Json.Obj
      [
        ("id", Json.Str r.id);
        ("status", Json.Str "error");
        ("error", Json.Str msg);
      ]

let str_member key j = Option.bind (Json.member key j) Json.to_str
let int_member key j = Option.bind (Json.member key j) Json.to_int

let spec_of_request j =
  match (str_member "spec" j, str_member "case" j) with
  | Some xml, None -> (
    match Dsl.of_string xml with
    | Ok spec -> Ok spec
    | Error e -> Error (Dsl.error_to_string e))
  | None, Some name -> (
    match List.assoc_opt name Case_studies.all with
    | Some spec -> Ok spec
    | None -> Error (Printf.sprintf "unknown case study %S" name))
  | Some _, Some _ -> Error "pass either \"spec\" or \"case\", not both"
  | None, None -> Error "request needs a \"spec\" or \"case\" field"

let serve_channels t ic oc =
  (* a client that hangs up mid-stream must not kill the server *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let out_mutex = Mutex.create () in
  let pending = Atomic.make 0 in
  let write_json j =
    Mutex.lock out_mutex;
    (try
       output_string oc (Json.to_string j);
       output_char oc '\n';
       flush oc
     with Sys_error _ -> ());
    Mutex.unlock out_mutex
  in
  let drain () =
    while Atomic.get pending > 0 do
      Unix.sleepf 0.002
    done
  in
  let error_response ~id msg =
    write_json (response_to_json { id; result = Error msg })
  in
  let handle_request j =
    let id = Option.value (str_member "id" j) ~default:"?" in
    match spec_of_request j with
    | Error msg -> error_response ~id msg
    | Ok spec -> (
      let req =
        {
          id;
          spec;
          timeout_ms = int_member "timeout_ms" j;
          max_states = int_member "max_states" j;
        }
      in
      Atomic.incr pending;
      match
        submit t req ~on_done:(fun r ->
            write_json (response_to_json r);
            Atomic.decr pending)
      with
      | `Accepted -> ()
      | `Overloaded ->
        Atomic.decr pending;
        write_json
          (Json.Obj
             [ ("id", Json.Str id); ("status", Json.Str "overloaded") ]))
  in
  let rec loop () =
    match In_channel.input_line ic with
    | None -> `Eof
    | Some line when String.trim line = "" -> loop ()
    | Some line -> (
      match Json.of_string line with
      | Error msg ->
        error_response ~id:"?" msg;
        loop ()
      | Ok j -> (
        match str_member "op" j with
        | Some "ping" ->
          write_json
            (Json.Obj
               [ ("status", Json.Str "ok"); ("op", Json.Str "pong") ]);
          loop ()
        | Some "shutdown" -> `Shutdown
        | Some op ->
          error_response ~id:"?" (Printf.sprintf "unknown op %S" op);
          loop ()
        | None ->
          handle_request j;
          loop ()))
  in
  let reason = loop () in
  (* every accepted job answers before the stream ends *)
  drain ();
  (match reason with
  | `Shutdown ->
    write_json
      (Json.Obj [ ("status", Json.Str "ok"); ("op", Json.Str "shutdown") ])
  | `Eof -> ());
  reason

let serve_socket t ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        let fd, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let reason =
          try serve_channels t ic oc with _ -> `Eof
        in
        (* closing the out channel closes the shared descriptor *)
        close_out_noerr oc;
        match reason with `Eof -> accept_loop () | `Shutdown -> ()
      in
      accept_loop ())
