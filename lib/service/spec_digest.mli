(** Stable content addresses for specifications.

    [digest spec] hashes a canonical, order-insensitive binary
    serialization of the whole specification — tasks, processors,
    messages and relations are sorted by identifier before encoding,
    and every string is length-prefixed so no two distinct
    specifications share an encoding.  Reordering the task list (or
    the relation lists) of a specification therefore does not change
    its address, while changing any parameter does.

    The hash is salted with {!version}: whenever the synthesis
    engines' observable verdicts or the cache entry format change
    incompatibly, bumping the salt invalidates every previously
    written cache entry at the address level — stale results are
    unreachable rather than merely rejected. *)

val version : string
(** The engine/format version salt mixed into every digest
    (["ezrt-digest-v<n>"]). *)

val canonical_bytes : Ezrt_spec.Spec.t -> string
(** The canonical serialization that is hashed: deterministic,
    order-insensitive, and injective on specifications (two specs map
    to the same bytes iff they are equal up to reordering of the
    task/processor/message/relation lists). *)

val digest : Ezrt_spec.Spec.t -> string
(** 32 lowercase hex characters (an MD5 over {!canonical_bytes}
    prefixed by {!version}).  This is the cache key and the on-disk
    entry file name. *)
