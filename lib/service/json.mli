(** Minimal JSON values for the service protocol.

    The repository deliberately carries no third-party JSON dependency;
    the serve/batch protocol needs only objects, arrays, strings,
    numbers, booleans and null, parsed from and printed to single
    lines (newline-delimited JSON).  Printing escapes control
    characters so a printed value never spans lines. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line rendering.  Integral floats print without a
    fractional part ([Num 3.] is ["3"]). *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing
    garbage is an error).  The standard backslash escapes and
    [backslash-u] sequences are decoded; surrogate pairs outside the
    BMP are emitted as UTF-8. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field lookup on objects; [None] on anything else. *)

val to_str : t -> string option
val to_int : t -> int option
val to_num : t -> float option
