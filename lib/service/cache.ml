(* Two-tier re-validating result cache.

   Trust model: the cache is an accelerator, never an oracle.  Every
   hit is re-proven against the current spec before anything is
   returned — feasible entries by full certification (TPN replay +
   independent validator), infeasible entries by re-evaluating their
   analytic witness.  The disk tier therefore needs no integrity
   machinery beyond a terminator line: a flipped bit either breaks the
   decode, breaks the replay, or breaks the witness, and each of those
   is a counted miss. *)

module Spec = Ezrt_spec.Spec
module Schedulability = Ezrt_analysis.Schedulability
module Pnet = Ezrt_tpn.Pnet
module Translate = Ezrt_blocks.Translate
module Schedule = Ezrt_sched.Schedule
module Validator = Ezrt_sched.Validator
module Metrics = Ezrt_obs.Metrics

type verdict =
  | Feasible of (string * int) list
  | Infeasible of Schedulability.witness

type entry = {
  verdict : verdict;
  engine : string;
  elapsed_ms : float;
  stored_states : int;
}

type validated =
  | Hit_feasible of Ezrt_sched.Schedule.t * Ezrt_sched.Timeline.segment list
  | Hit_infeasible of Schedulability.witness

type counters = { hits : int; misses : int; evictions : int; invalid : int }

type t = {
  capacity : int;
  disk_dir : string option;
  mutex : Mutex.t;
  memory : (string, entry * int ref) Hashtbl.t;  (* digest -> entry, last use *)
  clock : int ref;  (* LRU tick, under [mutex] *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  invalid : int Atomic.t;
}

let metric which =
  Metrics.counter
    ~help:"Result-cache lookups and lifecycle events by kind"
    ("ezrt_cache_" ^ which ^ "_total")

let count t which =
  let cell =
    match which with
    | `Hit -> t.hits
    | `Miss -> t.misses
    | `Eviction -> t.evictions
    | `Invalid -> t.invalid
  in
  Atomic.incr cell;
  Metrics.incr
    (metric
       (match which with
       | `Hit -> "hits"
       | `Miss -> "misses"
       | `Eviction -> "evictions"
       | `Invalid -> "invalid"))

let create ?(capacity = 256) ?dir () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> (
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | Some _ | None -> ());
  {
    capacity = max 1 capacity;
    disk_dir = dir;
    mutex = Mutex.create ();
    memory = Hashtbl.create 64;
    clock = ref 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    invalid = Atomic.make 0;
  }

let dir t = t.disk_dir

let counters t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
    invalid = Atomic.get t.invalid;
  }

(* --- wire format ------------------------------------------------------ *)

let format_version = 1

(* Strings (task and transition names) are percent-escaped so every
   record stays one space-separated line regardless of content. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '%' | '\n' | '\r' | '\t' ->
        Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i < n then
      if s.[i] = '%' then
        if i + 2 < n then begin
          match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
          | Some code ->
            Buffer.add_char buf (Char.chr (code land 0xff));
            go (i + 3)
          | None -> failwith "bad escape"
        end
        else failwith "truncated escape"
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let witness_to_line (w : Schedulability.witness) =
  match w with
  | Schedulability.Negative_laxity { task; instance; ready; wcet; deadline } ->
    Printf.sprintf "witness negative-laxity %s %d %d %d %d" (escape task)
      instance ready wcet deadline
  | Schedulability.Demand_overload { t1; t2; demand; capacity } ->
    Printf.sprintf "witness demand-overload %d %d %d %d" t1 t2 demand capacity
  | Schedulability.Chain_overrun
      { task; instance; chain; earliest_finish; deadline } ->
    (* the chain words go last so decoding is unambiguous; an empty
       chain must not leave a trailing separator *)
    String.concat " "
      ("witness" :: "chain-overrun" :: escape task :: string_of_int instance
      :: string_of_int earliest_finish :: string_of_int deadline
      :: List.map escape chain)
  | Schedulability.Exclusion_conflict
      {
        task_a;
        instance_a;
        task_b;
        instance_b;
        forward_finish;
        deadline_b;
        backward_finish;
        deadline_a;
      } ->
    Printf.sprintf "witness exclusion-conflict %s %d %s %d %d %d %d %d"
      (escape task_a) instance_a (escape task_b) instance_b forward_finish
      deadline_b backward_finish deadline_a
  | Schedulability.Edf_overload { task; instance; time } ->
    Printf.sprintf "witness edf-overload %s %d %d" (escape task) instance time

let witness_of_words = function
  | [ "negative-laxity"; task; instance; ready; wcet; deadline ] ->
    Schedulability.Negative_laxity
      {
        task = unescape task;
        instance = int_of_string instance;
        ready = int_of_string ready;
        wcet = int_of_string wcet;
        deadline = int_of_string deadline;
      }
  | [ "demand-overload"; t1; t2; demand; capacity ] ->
    Schedulability.Demand_overload
      {
        t1 = int_of_string t1;
        t2 = int_of_string t2;
        demand = int_of_string demand;
        capacity = int_of_string capacity;
      }
  | "chain-overrun" :: task :: instance :: finish :: deadline :: chain ->
    Schedulability.Chain_overrun
      {
        task = unescape task;
        instance = int_of_string instance;
        earliest_finish = int_of_string finish;
        deadline = int_of_string deadline;
        chain = List.map unescape chain;
      }
  | [
      "exclusion-conflict"; task_a; ia; task_b; ib; ff; db; bf; da;
    ] ->
    Schedulability.Exclusion_conflict
      {
        task_a = unescape task_a;
        instance_a = int_of_string ia;
        task_b = unescape task_b;
        instance_b = int_of_string ib;
        forward_finish = int_of_string ff;
        deadline_b = int_of_string db;
        backward_finish = int_of_string bf;
        deadline_a = int_of_string da;
      }
  | [ "edf-overload"; task; instance; time ] ->
    Schedulability.Edf_overload
      {
        task = unescape task;
        instance = int_of_string instance;
        time = int_of_string time;
      }
  | _ -> failwith "unknown witness"

let encode ~digest entry =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "ezrt-cache %d\n" format_version;
  Printf.bprintf buf "digest %s\n" digest;
  Printf.bprintf buf "engine %s\n" (escape entry.engine);
  Printf.bprintf buf "elapsed_ms %.3f\n" entry.elapsed_ms;
  Printf.bprintf buf "stored %d\n" entry.stored_states;
  (match entry.verdict with
  | Feasible actions ->
    Printf.bprintf buf "verdict feasible %d\n" (List.length actions);
    List.iter
      (fun (name, delay) ->
        Printf.bprintf buf "a %s %d\n" (escape name) delay)
      actions
  | Infeasible w ->
    Buffer.add_string buf "verdict infeasible\n";
    Buffer.add_string buf (witness_to_line w);
    Buffer.add_char buf '\n');
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let decode text =
  try
    let lines = String.split_on_char '\n' text in
    (* [end] must terminate the payload: a truncated write is missing
       it, and bytes after it are garbage *)
    let rec split_payload acc = function
      | [ "end"; "" ] | [ "end" ] -> List.rev acc
      | "end" :: _ -> failwith "garbage after end marker"
      | [] -> failwith "missing end marker"
      | line :: rest -> split_payload (line :: acc) rest
    in
    match split_payload [] lines with
    | header :: rest -> (
      (match String.split_on_char ' ' header with
      | [ "ezrt-cache"; v ] when int_of_string v = format_version -> ()
      | [ "ezrt-cache"; _ ] -> failwith "format version mismatch"
      | _ -> failwith "bad header");
      let field name line =
        match String.split_on_char ' ' line with
        | key :: words when key = name -> words
        | _ -> failwith ("expected field " ^ name)
      in
      let one name line =
        match field name line with
        | [ v ] -> v
        | _ -> failwith ("malformed field " ^ name)
      in
      match rest with
      | dg :: eng :: el :: st :: verdict :: body ->
        let digest = one "digest" dg in
        let engine = unescape (one "engine" eng) in
        let elapsed_ms = float_of_string (one "elapsed_ms" el) in
        let stored_states = int_of_string (one "stored" st) in
        let verdict =
          match field "verdict" verdict with
          | [ "feasible"; n ] ->
            let n = int_of_string n in
            if List.length body <> n then failwith "action count mismatch";
            Feasible
              (List.map
                 (fun line ->
                   match field "a" line with
                   | [ name; delay ] -> (unescape name, int_of_string delay)
                   | _ -> failwith "malformed action")
                 body)
          | [ "infeasible" ] -> (
            match body with
            | [ w ] -> Infeasible (witness_of_words (field "witness" w))
            | _ -> failwith "malformed witness body")
          | _ -> failwith "malformed verdict"
        in
        Ok (digest, { verdict; engine; elapsed_ms; stored_states })
      | _ -> failwith "truncated header")
    | [] -> failwith "empty entry"
  with
  | Failure msg -> Error msg
  | _ -> Error "malformed entry"

(* --- disk tier -------------------------------------------------------- *)

let entry_path dir digest = Filename.concat dir (digest ^ ".entry")

let disk_write t ~digest entry =
  match t.disk_dir with
  | None -> ()
  | Some dir -> (
    (* tmp+rename in the same directory: readers only ever see a
       complete file, concurrent writers race benignly (same content
       address, last rename wins) *)
    try
      let tmp =
        Filename.concat dir
          (Printf.sprintf ".tmp-%s-%d-%d" digest (Unix.getpid ())
             (Domain.self () :> int))
      in
      Out_channel.with_open_bin tmp (fun oc ->
          Out_channel.output_string oc (encode ~digest entry));
      Unix.rename tmp (entry_path dir digest)
    with Sys_error _ | Unix.Unix_error _ -> ())

let disk_read t ~digest =
  match t.disk_dir with
  | None -> None
  | Some dir -> (
    let path = entry_path dir digest in
    match In_channel.with_open_bin path In_channel.input_all with
    | text -> Some (path, text)
    | exception Sys_error _ -> None)

let disk_remove t ~digest =
  match t.disk_dir with
  | None -> ()
  | Some dir -> ( try Sys.remove (entry_path dir digest) with Sys_error _ -> ())

(* --- memory tier ------------------------------------------------------ *)

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let memory_touch_find t digest =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.memory digest with
      | None -> None
      | Some (entry, last) ->
        incr t.clock;
        last := !(t.clock);
        Some entry)

let memory_remove t digest =
  with_lock t (fun () -> Hashtbl.remove t.memory digest)

let memory_insert t digest entry =
  let evicted =
    with_lock t (fun () ->
        incr t.clock;
        Hashtbl.replace t.memory digest (entry, ref !(t.clock));
        if Hashtbl.length t.memory <= t.capacity then 0
        else begin
          (* evict least-recently-used entries down to capacity; the
             scan is O(entries) but capacity is small and eviction is
             off every hot path *)
          let evicted = ref 0 in
          while Hashtbl.length t.memory > t.capacity do
            let victim = ref None in
            Hashtbl.iter
              (fun key (_, last) ->
                match !victim with
                | Some (_, best) when best <= !last -> ()
                | _ -> victim := Some (key, !last))
              t.memory;
            match !victim with
            | Some (key, _) ->
              Hashtbl.remove t.memory key;
              incr evicted
            | None -> ()
          done;
          !evicted
        end)
  in
  for _ = 1 to evicted do
    count t `Eviction
  done

(* --- validation ------------------------------------------------------- *)

(* Re-prove the entry against the current spec/model.  Nothing in the
   entry is trusted: feasible actions must name real transitions,
   replay legally through the TPN and pass the independent validator;
   an infeasible witness must re-evaluate to true. *)
let validate ~spec ~model entry =
  match entry.verdict with
  | Feasible actions -> (
    let net = model.Translate.net in
    match
      List.map
        (fun (name, delay) ->
          match Pnet.find_transition_opt net name with
          | Some tid -> (tid, delay)
          | None -> raise Exit)
        actions
    with
    | exception Exit -> None
    | resolved -> (
      let schedule = Schedule.of_actions resolved in
      match Validator.certify model schedule with
      | Ok segments -> Some (Hit_feasible (schedule, segments))
      | Error _ -> None))
  | Infeasible w ->
    if Schedulability.witness_holds spec w then Some (Hit_infeasible w)
    else None

let store t ~digest entry =
  memory_insert t digest entry;
  disk_write t ~digest entry

let find t ~digest ~spec ~model =
  let invalidate () =
    memory_remove t digest;
    disk_remove t ~digest;
    count t `Invalid;
    count t `Miss
  in
  match memory_touch_find t digest with
  | Some entry -> (
    match validate ~spec ~model entry with
    | Some hit ->
      count t `Hit;
      Some hit
    | None ->
      invalidate ();
      None)
  | None -> (
    match disk_read t ~digest with
    | None ->
      count t `Miss;
      None
    | Some (_path, text) -> (
      match decode text with
      | Error _ ->
        invalidate ();
        None
      | Ok (stored_digest, entry) ->
        if stored_digest <> digest then begin
          (* a renamed or mixed-up file addresses a different spec *)
          invalidate ();
          None
        end
        else
          (match validate ~spec ~model entry with
          | Some hit ->
            memory_insert t digest entry;
            count t `Hit;
            Some hit
          | None ->
            invalidate ();
            None)))

let get_or_compute t ~digest ~spec ~model ~compute =
  match find t ~digest ~spec ~model with
  | Some hit -> Some hit
  | None -> (
    match compute () with
    | None -> None
    | Some entry -> (
      (* only certified results enter the cache: an engine bug that
         produced an uncheckable entry is surfaced as None here, not
         laundered through the store *)
      match validate ~spec ~model entry with
      | Some hit ->
        store t ~digest entry;
        Some hit
      | None -> None))
