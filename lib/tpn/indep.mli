(** Static independence relations and stubborn-set partial-order
    reduction for the prioritized TPN semantics.

    The search engines explore every interleaving of the fireable set
    [FT(s)]; on specifications with several independent tasks per
    processor the bookkeeping transitions of distinct tasks interleave
    factorially at each instant even though every order reaches the
    same state.  A {e stubborn set} [T_s] is a transition set closed
    under static dependency rules such that any firing sequence
    leaving [s] and reaching the final marking can be reordered (by
    adjacent exchanges of independent firings) to start with a member
    of [T_s ∩ FT(s)]; expanding only those members preserves the
    feasibility verdict while pruning the equivalent orders.

    Timed and priority side conditions — the module is deliberately
    conservative and falls back to full expansion whenever any of them
    fails:

    - reduction applies only at {e urgent} states ([min DUB = 0]): no
      time can pass, every firing in scope happens after delay 0, so
      clocks are frozen along the reordered prefixes and the untimed
      exchange argument applies verbatim;
    - for every expanded member [m] the stubborn set must also contain
      an enabled {e freezer}: a transition with [DUB = 0], distinct
      from [m] and sharing no input place with it, whose potential
      disablers are all inside the set.  Outside firings then keep the
      state urgent before {e and} after [m] is commuted forward, so a
      slow better-priority transition can never slip into the
      candidate set mid-exchange;
    - the dependency matrix couples two transitions when they touch a
      common place (conflict and causality); priorities are handled
      dynamically instead of being folded into the matrix: reduction
      only runs when the shared fireable priority equals the
      translation's default (so a stubborn member heading a witness
      run is itself fireable), and every better-priority consumer of
      an expanded member's output places must have an input place that
      stays short of tokens after the member fires and whose producers
      are all stubborn (so the deferred prefix cannot enable it
      either and evict the prefix from the prioritized [FT] filter);
    - the closure is re-attempted from the first few fireable
      transitions as seeds — the first seed whose closure yields a
      strict reduction wins; seed order is deterministic, so state
      re-visits compute the same set;
    - the stubborn set is seeded with every producer of the final
      place, so any run reaching [MF] contains a stubborn member and
      the exchange argument has something to commute;
    - net-level {!applicable} gate, mirroring the class engines'
      subsumption gate: dead places must have no consumers (a
      reordered prefix can then never detour through a pruned dead
      state — dead-token counts are monotone), every better-than-
      default priority sits on a [0,0] transition and every worse-
      than-default priority marks a dead place (the translation's
      priority discipline; hand-written nets that violate it fall back
      to full expansion automatically). *)

type t

val create :
  Pnet.t ->
  final_place:Pnet.place_id ->
  dead_places:Pnet.place_id list ->
  t
(** Precomputes the static relations.  O(|T|² · |P| / word_size) time
    and O(|T|²) bits of memory — run once per net, then shared
    read-only by all worker domains. *)

val applicable : t -> bool
(** Whether the net-level side conditions hold.  When [false], every
    {!reduce} call returns [Fallback]; engines may skip the per-state
    work entirely. *)

type reduction =
  | Reduced of Pnet.transition_id list
      (** strictly fewer transitions than the fireable set passed in,
          in the same relative order; expanding exactly these
          preserves the feasibility verdict *)
  | Fallback
      (** no sound strict reduction found — expand the full set *)

val reduce :
  t ->
  enabled:(Pnet.transition_id -> bool) ->
  dub_zero:(Pnet.transition_id -> bool) ->
  tokens:(Pnet.place_id -> int) ->
  Pnet.transition_id list ->
  reduction
(** [reduce ind ~enabled ~dub_zero ~tokens fireable] computes a
    stubborn set at the current state and intersects it with
    [fireable].

    The caller must only invoke this at urgent states (so some enabled
    transition has [dub_zero]) with the earliest-firing-only branching
    rule in force (no [latest_release] idle-time branching).
    [enabled], [dub_zero] and [tokens] are read-only probes into the
    caller's state representation (immutable state, incremental
    engine, or state class), so one [t] serves every engine.

    The computation is deterministic in the state, so re-visits reduce
    to the same set and memoization over the reduced graph stays
    sound. *)

val dependents : t -> Pnet.transition_id -> Pnet.transition_id list
(** The static dependency row of a transition (diagnostics and
    tests). *)
