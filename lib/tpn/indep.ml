(* Stubborn-set partial-order reduction: static dependency matrices
   precomputed once per net, a per-state closure over them, and the
   timed/priority side conditions documented in the interface.

   All matrices are bitsets over transition ids, so the per-state
   closure is a word-wise worklist sweep; the [t] value is immutable
   after [create] and shared read-only across worker domains. *)

(* --- flat bitsets ----------------------------------------------------- *)

module Bits = struct
  let bpw = Sys.int_size

  type t = int array

  let words n = (n + bpw - 1) / bpw
  let create n : t = Array.make (max 1 (words n)) 0
  let mem (b : t) i = b.(i / bpw) land (1 lsl (i mod bpw)) <> 0
  let set (b : t) i = b.(i / bpw) <- b.(i / bpw) lor (1 lsl (i mod bpw))

  let inter_nonempty (a : t) (b : t) =
    let hit = ref false in
    for w = 0 to Array.length a - 1 do
      if a.(w) land b.(w) <> 0 then hit := true
    done;
    !hit

  let iter f (b : t) n =
    for i = 0 to n - 1 do
      if mem b i then f i
    done
end

type t = {
  net : Pnet.t;
  n : int;  (* transition count *)
  applicable : bool;
  dep : Bits.t array;  (* dep.(t): transitions sharing a place with t *)
  confl : Bits.t array;  (* confl.(t): shared-input-place conflicts *)
  dep_size : int array;  (* popcount of dep.(t), freezer-choice heuristic *)
  producers : Pnet.transition_id array array;  (* by place *)
  final_seeds : Pnet.transition_id array;  (* producers of MF's place *)
}

let applicable ind = ind.applicable

let dependents ind t =
  let acc = ref [] in
  Bits.iter (fun u -> acc := u :: !acc) ind.dep.(t) ind.n;
  List.rev !acc

(* Net-level gate.  Dead places must be sinks: a reordered prefix then
   carries no more dead tokens than the original run's final state, so
   pruned-order detours cannot pass through a dead (pruned) state.
   The priority shape is the class engines' subsumption gate: every
   better-than-default priority on a [0,0] transition (its firability
   is marking-determined), every worse-than-default priority marking a
   dead place (it never appears on a feasible run). *)
let net_applicable net ~dead_places =
  let n = Pnet.transition_count net in
  let dead_sinks =
    List.for_all
      (fun p -> Array.length (Pnet.consumers_of net p) = 0)
      dead_places
  in
  let is_dead p = List.mem p dead_places in
  let priority_shape = ref true in
  for t = 0 to n - 1 do
    let pr = Pnet.priority net t in
    if pr < Pnet.default_priority then begin
      let itv = Pnet.interval net t in
      if not (Time_interval.is_point itv && Time_interval.eft itv = 0) then
        priority_shape := false
    end
    else if pr > Pnet.default_priority then
      if not (Array.exists (fun (p, _) -> is_dead p) (Pnet.post_arcs net t))
      then priority_shape := false
  done;
  dead_sinks && !priority_shape

let create net ~final_place ~dead_places =
  let n = Pnet.transition_count net in
  let np = Pnet.place_count net in
  (* touched.(t): places on any arc of t, as place bitsets *)
  let touched = Array.init n (fun _ -> Bits.create np) in
  for t = 0 to n - 1 do
    Array.iter (fun (p, _) -> Bits.set touched.(t) p) (Pnet.pre_arcs net t);
    Array.iter (fun (p, _) -> Bits.set touched.(t) p) (Pnet.post_arcs net t)
  done;
  (* pre_bits.(t): input places only (conflict detection) *)
  let pre_bits = Array.init n (fun _ -> Bits.create np) in
  for t = 0 to n - 1 do
    Array.iter (fun (p, _) -> Bits.set pre_bits.(t) p) (Pnet.pre_arcs net t)
  done;
  let dep = Array.init n (fun _ -> Bits.create n) in
  let confl = Array.init n (fun _ -> Bits.create n) in
  for t = 0 to n - 1 do
    for u = 0 to n - 1 do
      if u <> t then begin
        if Bits.inter_nonempty pre_bits.(t) pre_bits.(u) then begin
          Bits.set confl.(t) u;
          Bits.set dep.(t) u
        end
        else if Bits.inter_nonempty touched.(t) touched.(u) then
          Bits.set dep.(t) u
      end
    done
  done;
  let producers = Pnet.producers net in
  let dep_size =
    Array.init n (fun t ->
        let c = ref 0 in
        Bits.iter (fun _ -> incr c) dep.(t) n;
        !c)
  in
  {
    net;
    n;
    applicable = net_applicable net ~dead_places;
    dep;
    confl;
    dep_size;
    producers;
    final_seeds = producers.(final_place);
  }


type reduction =
  | Reduced of Pnet.transition_id list
  | Fallback

let dbg =
  match Sys.getenv_opt "EZRT_POR_DEBUG" with Some _ -> true | None -> false

(* Per-state stubborn closure.  Enabled members pull in their full
   dependency row; a disabled member pulls in the producers of one
   input place that currently lacks tokens (any run enabling it must
   fire one of those first).  The place choice is deterministic (first
   under-marked arc), so revisits of a state compute the same set.

   Priority is handled by two dynamic conditions rather than in the
   static matrices.  The reduction only runs when the shared fireable
   priority pi_s is exactly the default (worse classes are dead-bound
   under shape (B); better classes would let a non-fireable stubborn
   transition head a witness).  And every better-priority consumer of
   an expansion member's output places must provably stay disabled
   across the commuted segment (rule 4): it needs an input place that
   is still short of tokens after the member fires and whose producers
   are all stubborn — otherwise commuting the member to the front
   could enable a transition that evicts the deferred prefix from the
   prioritized fireable filter.

   The closure is attempted from several seeds: which fireable
   transition the set grows from decides whether it stays clear of the
   conflict cliques (a grant transition's dependency row drags in every
   other grant), so the first few fireable transitions each get a
   fresh attempt and the first strict reduction wins.  Seed order is
   deterministic, so revisits of a state compute the same set. *)

let max_seed_attempts = 6

let reduce ind ~enabled ~dub_zero ~tokens fireable =
  match fireable with
  | [] | [ _ ] -> Fallback
  | _ when not ind.applicable -> Fallback
  | _ ->
    let n = ind.n in
    let pi_s = Pnet.priority ind.net (List.hd fireable) in
    if pi_s <> Pnet.default_priority then begin
      if dbg then Printf.eprintf "POR: pi_s %d not default\n%!" pi_s;
      Fallback
    end
    else begin
      let n_fireable = List.length fireable in
      let exception Rule4_push of int in
      let exception Rule4_bad in
      let attempt seed =
        let stubborn = Bits.create n in
        let work = ref [] in
        let push t = if not (Bits.mem stubborn t) then work := t :: !work in
        let close () =
          let rec go () =
            match !work with
            | [] -> ()
            | t :: rest ->
              work := rest;
              if not (Bits.mem stubborn t) then begin
                Bits.set stubborn t;
                if enabled t then Bits.iter push ind.dep.(t) n
                else begin
                  (* among input places short of tokens, pick the one
                     with the fewest producers still outside the set —
                     a shared resource place (every finish transition
                     feeds the processor) would otherwise drag in the
                     whole net when a task-local place does the job *)
                  let arcs = Pnet.pre_arcs ind.net t in
                  let chosen = ref (-1) in
                  let chosen_cost = ref max_int in
                  Array.iter
                    (fun (p, w) ->
                      if tokens p < w then begin
                        let cost =
                          Array.fold_left
                            (fun acc x ->
                              if Bits.mem stubborn x then acc else acc + 1)
                            0 ind.producers.(p)
                        in
                        if cost < !chosen_cost then begin
                          chosen := p;
                          chosen_cost := cost
                        end
                      end)
                    arcs;
                  if !chosen >= 0 then
                    Array.iter push ind.producers.(!chosen)
                  else
                    (* inconsistent probe (should be enabled) — be safe *)
                    Bits.iter push ind.dep.(t) n
                end
              end;
              go ()
          in
          go ()
        in
        (* rule 4 for one expansion member: every better-priority
           consumer y of its output places needs a witness input place
           still under-marked after the member fires, with all of the
           place's producers stubborn (so the deferred prefix cannot
           top it up either).  An under-marked place with outside
           producers is repairable by absorbing them; an
           enabled-after-firing y is not. *)
        let arc_weight arcs q =
          Array.fold_left
            (fun acc (p, w) -> if p = q then acc + w else acc)
            0 arcs
        in
        let rule4_check m =
          let pre_m = Pnet.pre_arcs ind.net m in
          let post_m = Pnet.post_arcs ind.net m in
          Array.iter
            (fun (p, _) ->
              Array.iter
                (fun y ->
                  if Pnet.priority ind.net y < pi_s then begin
                    let witness = ref false in
                    let pushable = ref (-1) in
                    Array.iter
                      (fun (q, w) ->
                        if not !witness then begin
                          let after =
                            tokens q - arc_weight pre_m q
                            + arc_weight post_m q
                          in
                          if after < w then
                            if
                              Array.for_all
                                (fun x -> Bits.mem stubborn x)
                                ind.producers.(q)
                            then witness := true
                            else if !pushable < 0 then pushable := q
                        end)
                      (Pnet.pre_arcs ind.net y);
                    if not !witness then
                      if !pushable >= 0 then raise (Rule4_push !pushable)
                      else raise Rule4_bad
                  end)
                (Pnet.consumers_of ind.net p))
            post_m
        in
        push seed;
        Array.iter push ind.final_seeds;
        close ();
        (* Freezer cover: every expanded member needs an enabled
           dub-zero stubborn transition, distinct and input-disjoint
           from it, so the state after commuting the member forward is
           still urgent.  A missing freezer is searched for outside the
           set and, when found, added (with its dependency closure); a
           few rounds converge or blow the set up to the full list. *)
        let rec rounds k =
          if k <= 0 then begin
            if dbg then Printf.eprintf "POR: rounds exhausted\n%!";
            Fallback
          end
          else begin
            let expansion =
              List.filter (fun t -> Bits.mem stubborn t) fireable
            in
            if List.length expansion >= n_fireable then begin
              if dbg then
                Printf.eprintf "POR: seed %s saturated (%d/%d)\n%!"
                  (Pnet.transition_name ind.net seed)
                  (List.length expansion) n_fireable;
              Fallback
            end
            else begin
              match List.iter rule4_check expansion with
              | exception Rule4_bad ->
                if dbg then Printf.eprintf "POR: rule 4 unrepairable\n%!";
                Fallback
              | exception Rule4_push q ->
                Array.iter push ind.producers.(q);
                close ();
                rounds (k - 1)
              | () ->
                let covered m =
                  let ok = ref false in
                  for z = 0 to n - 1 do
                    if
                      (not !ok) && z <> m && Bits.mem stubborn z
                      && enabled z && dub_zero z
                      && not (Bits.mem ind.confl.(m) z)
                    then ok := true
                  done;
                  !ok
                in
                (match
                   List.find_opt (fun m -> not (covered m)) expansion
                 with
                | None -> Reduced expansion
                | Some m ->
                  (* find an outside freezer for m — it joins the
                     expansion and is rule-4-checked next round.  Among
                     eligible candidates prefer the smallest dependency
                     row: a grant-like transition would drag its whole
                     conflict clique in behind it *)
                  let z = ref (-1) in
                  for cand = n - 1 downto 0 do
                    if
                      cand <> m
                      && (not (Bits.mem stubborn cand))
                      && enabled cand && dub_zero cand
                      && not (Bits.mem ind.confl.(m) cand)
                      && (!z < 0 || ind.dep_size.(cand) < ind.dep_size.(!z))
                    then z := cand
                  done;
                  if !z < 0 then Fallback
                  else begin
                    push !z;
                    close ();
                    rounds (k - 1)
                  end)
            end
          end
        in
        rounds 4
      in
      let rec try_seeds k = function
        | [] -> Fallback
        | _ when k <= 0 -> Fallback
        | seed :: rest -> (
          match attempt seed with
          | Reduced _ as r -> r
          | Fallback -> try_seeds (k - 1) rest)
      in
      try_seeds max_seed_attempts fireable
    end
