(** Difference bound matrices over integer bounds.

    A DBM over variables [x_1 .. x_k] (with the implicit reference
    [x_0 = 0]) represents the conjunction of constraints
    [x_i - x_j <= m.(i).(j)].  Bounds are integers or [infinity]; all
    constraints are non-strict, which is exact for integer-interval
    time Petri nets.

    Used by {!State_class} to represent firing-delay domains. *)

type t
(** Mutable square matrix of size [dim + 1]. *)

val infinity : int
(** A large sentinel; arithmetic on it saturates. *)

val create : int -> t
(** [create dim] is the universe over [dim] variables ([x_i >= 0] is
    NOT implied; callers add the bounds they mean). *)

val dim : t -> int
val copy : t -> t

val get : t -> int -> int -> int
(** [get m i j] is the bound on [x_i - x_j]; indices 0..dim. *)

val constrain : t -> int -> int -> int -> unit
(** [constrain m i j b] adds [x_i - x_j <= b] (tightening only). *)

val canonicalize : t -> unit
(** All-pairs shortest paths; after this, entries are the tightest
    implied bounds and {!is_empty} is meaningful. *)

val tighten : t -> int -> int -> int -> unit
(** [tighten m i j b] adds [x_i - x_j <= b] to a {e canonical} matrix
    and restores canonical form in O(n²) (one row-column propagation
    instead of the O(n³) Floyd–Warshall).  On consistent inputs the
    result is bit-identical to {!constrain} followed by
    {!canonicalize}; an inconsistent constraint leaves a negative
    diagonal entry so {!is_empty} holds (other entries are then
    unspecified, and further [tighten] calls keep the matrix empty). *)

val is_empty : t -> bool
(** True when the constraint set is unsatisfiable (requires canonical
    form). *)

val is_canonical_nonempty : t -> bool
(** Convenience: canonicalize a copy and test. *)

val equal : t -> t -> bool
(** Entry-wise equality — semantically meaningful on canonical forms. *)

val subset : t -> t -> bool
(** [subset a b]: every valuation of [a] satisfies [b] — entry-wise
    [a <= b] on canonical forms of equal dimension. *)

val hash : t -> int

val rebase : t -> int -> keep:int list -> t
(** [rebase m f ~keep] performs the state-class change of origin: the
    new DBM is over the variables [keep] (given in the desired order),
    each reinterpreted as [x_i - x_f], with the reference row/column
    taken from [f]'s relations.  Requires canonical [m]. *)

val add_fresh : t -> (int * int) list -> t
(** [add_fresh m bounds] appends one new variable per [(lo, hi)] pair,
    constrained to [lo <= x <= hi] ([hi = infinity] for unbounded) and
    unrelated to the others. *)

val bounds : t -> int -> int * int
(** [bounds m i] is [(lo, hi)] for variable [i] in canonical form:
    [-m.(0).(i), m.(i).(0)]. *)

val pp : Format.formatter -> t -> unit
