(** Static firing intervals of time Petri net transitions.

    The paper's model has [I : T -> N x N] with
    [EFT(t) <= LFT(t)] (Merlin/Faber time Petri nets over discrete
    time).  An unbounded latest firing time is also supported because it
    is standard for TPNs, even though every ezRealtime building block
    uses finite bounds. *)

type bound =
  | Finite of int
  | Infinity

type t = private { eft : int; lft : bound }

val make : int -> int -> t
(** [make eft lft] with [0 <= eft <= lft].
    Raises [Invalid_argument] otherwise. *)

val make_unbounded : int -> t
(** [make_unbounded eft] is the interval with no latest firing time. *)

val point : int -> t
(** [point q] is [make q q] — the constant intervals of Figs 1–2. *)

val zero : t
(** The ubiquitous immediate interval. *)

val eft : t -> int
val lft : t -> bound

val is_point : t -> bool
val contains : t -> int -> bool

val intersect : t -> t -> t option
(** Set intersection of two intervals; [None] when they are disjoint.
    The result contains exactly the instants contained in both. *)

val shift : t -> int -> t
(** [shift t q] translates both bounds by [q] (negative [q] shifts
    toward zero).  Raises [Invalid_argument] when the shifted EFT
    would become negative. *)

val bound_min : bound -> bound -> bound
val bound_le : bound -> bound -> bool
val bound_add : bound -> int -> bound
val bound_sub : bound -> int -> bound
(** [bound_sub b q] clamps at [Finite 0] from below for finite bounds
    only in the sense that the caller interprets negative values; no
    clamping is applied here. *)

val bound_to_string : bound -> string
val to_string : t -> string
(** Renders as in the paper's figures, e.g. ["[0, 130]"]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
