type place_id = int
type transition_id = int

type transition = {
  t_name : string;
  interval : Time_interval.t;
  priority : int;
  code : string option;
}

type t = {
  net_name : string;
  place_names : string array;
  transitions : transition array;
  pre : (place_id * int) array array;
  post : (place_id * int) array array;
  consumers : transition_id array array;
  m0 : int array;
}

let default_priority = 100

let place_count net = Array.length net.place_names
let transition_count net = Array.length net.transitions

let arc_count net =
  let sum arcs = Array.fold_left (fun acc a -> acc + Array.length a) 0 arcs in
  sum net.pre + sum net.post

let place_name net p = net.place_names.(p)
let transition_name net t = net.transitions.(t).t_name
let interval net t = net.transitions.(t).interval
let priority net t = net.transitions.(t).priority

let array_find_index f arr =
  let n = Array.length arr in
  let rec go i = if i >= n then None else if f arr.(i) then Some i else go (i + 1) in
  go 0

let find_place_opt net name =
  array_find_index (String.equal name) net.place_names

let find_transition_opt net name =
  array_find_index (fun t -> String.equal t.t_name name) net.transitions

let find_place net name =
  match find_place_opt net name with Some p -> p | None -> raise Not_found

let find_transition net name =
  match find_transition_opt net name with Some t -> t | None -> raise Not_found

let pre_arcs net t = net.pre.(t)
let post_arcs net t = net.post.(t)
let consumers_of net p = net.consumers.(p)

let producers net =
  let prod = Array.make (place_count net) [] in
  Array.iteri
    (fun t arcs ->
      Array.iter (fun (p, _) -> prod.(p) <- t :: prod.(p)) arcs)
    net.post;
  Array.map (fun ts -> Array.of_list (List.rev ts)) prod

let in_structural_conflict net t1 t2 =
  t1 <> t2
  && Array.exists
       (fun (p, _) -> Array.exists (fun (q, _) -> p = q) net.pre.(t2))
       net.pre.(t1)

let pp_summary fmt net =
  Format.fprintf fmt "%s: |P|=%d, |T|=%d, |F|=%d, tokens(m0)=%d" net.net_name
    (place_count net) (transition_count net) (arc_count net)
    (Array.fold_left ( + ) 0 net.m0)

module Builder = struct
  type net = t

  type t = {
    name : string;
    mutable places : (string * int) list;       (* reversed *)
    mutable trans : transition list;            (* reversed *)
    mutable n_places : int;
    mutable n_trans : int;
    pre_arcs : (int * int, int) Hashtbl.t;      (* (t, p) -> weight *)
    post_arcs : (int * int, int) Hashtbl.t;     (* (t, p) -> weight *)
    place_index : (string, int) Hashtbl.t;
    trans_index : (string, int) Hashtbl.t;
    mutable extra_tokens : (int * int) list;
  }

  let create name =
    {
      name;
      places = [];
      trans = [];
      n_places = 0;
      n_trans = 0;
      pre_arcs = Hashtbl.create 64;
      post_arcs = Hashtbl.create 64;
      place_index = Hashtbl.create 64;
      trans_index = Hashtbl.create 64;
      extra_tokens = [];
    }

  let add_place b ?(tokens = 0) name =
    if tokens < 0 then invalid_arg "Builder.add_place: negative tokens";
    if Hashtbl.mem b.place_index name then
      invalid_arg (Printf.sprintf "Builder.add_place: duplicate place %S" name);
    let id = b.n_places in
    b.n_places <- id + 1;
    b.places <- (name, tokens) :: b.places;
    Hashtbl.add b.place_index name id;
    id

  let add_transition b ?(priority = default_priority) ?code name interval =
    if Hashtbl.mem b.trans_index name then
      invalid_arg
        (Printf.sprintf "Builder.add_transition: duplicate transition %S" name);
    let id = b.n_trans in
    b.n_trans <- id + 1;
    b.trans <- { t_name = name; interval; priority; code } :: b.trans;
    Hashtbl.add b.trans_index name id;
    id

  let check_ids b p t who =
    if p < 0 || p >= b.n_places then
      invalid_arg (Printf.sprintf "Builder.%s: bad place id %d" who p);
    if t < 0 || t >= b.n_trans then
      invalid_arg (Printf.sprintf "Builder.%s: bad transition id %d" who t)

  let accumulate table key weight =
    let prev = Option.value (Hashtbl.find_opt table key) ~default:0 in
    Hashtbl.replace table key (prev + weight)

  let arc_pt b ?(weight = 1) p t =
    check_ids b p t "arc_pt";
    if weight < 1 then invalid_arg "Builder.arc_pt: weight < 1";
    accumulate b.pre_arcs (t, p) weight

  let arc_tp b ?(weight = 1) t p =
    check_ids b p t "arc_tp";
    if weight < 1 then invalid_arg "Builder.arc_tp: weight < 1";
    accumulate b.post_arcs (t, p) weight

  let add_tokens b p n =
    if p < 0 || p >= b.n_places then
      invalid_arg "Builder.add_tokens: bad place id";
    if n < 0 then invalid_arg "Builder.add_tokens: negative tokens";
    b.extra_tokens <- (p, n) :: b.extra_tokens

  let place_of_name b name = Hashtbl.find_opt b.place_index name
  let transition_of_name b name = Hashtbl.find_opt b.trans_index name
  let place_count b = b.n_places
  let transition_count b = b.n_trans

  let build b =
    let place_rows = Array.of_list (List.rev b.places) in
    let place_names = Array.map fst place_rows in
    let m0 = Array.map snd place_rows in
    List.iter (fun (p, n) -> m0.(p) <- m0.(p) + n) b.extra_tokens;
    let transitions = Array.of_list (List.rev b.trans) in
    let gather table t =
      let arcs =
        Hashtbl.fold
          (fun (t', p) w acc -> if t' = t then (p, w) :: acc else acc)
          table []
      in
      Array.of_list (List.sort compare arcs)
    in
    let pre = Array.init b.n_trans (gather b.pre_arcs) in
    let post = Array.init b.n_trans (gather b.post_arcs) in
    Array.iteri
      (fun t arcs ->
        if Array.length arcs = 0 then
          invalid_arg
            (Printf.sprintf "Builder.build: transition %S has no input arc"
               transitions.(t).t_name))
      pre;
    let consumer_lists = Array.make b.n_places [] in
    Array.iteri
      (fun t arcs ->
        Array.iter
          (fun (p, _) -> consumer_lists.(p) <- t :: consumer_lists.(p))
          arcs)
      pre;
    let consumers =
      Array.map (fun l -> Array.of_list (List.sort compare l)) consumer_lists
    in
    {
      net_name = b.name;
      place_names;
      transitions;
      pre;
      post;
      consumers;
      m0;
    }
end
