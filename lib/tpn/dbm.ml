type t = { size : int; m : int array array }
(* size = dim + 1; index 0 is the reference variable *)

let infinity = max_int / 4

let sat_add a b = if a >= infinity || b >= infinity then infinity else a + b

let create dim =
  let size = dim + 1 in
  let m = Array.make_matrix size size infinity in
  for i = 0 to size - 1 do
    m.(i).(i) <- 0
  done;
  { size; m }

let dim t = t.size - 1
let copy t = { size = t.size; m = Array.map Array.copy t.m }
let get t i j = t.m.(i).(j)

let constrain t i j b =
  if b < t.m.(i).(j) then t.m.(i).(j) <- b

let canonicalize t =
  let n = t.size in
  let m = t.m in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let mik = m.(i).(k) in
      if mik < infinity then
        for j = 0 to n - 1 do
          let through = sat_add mik m.(k).(j) in
          if through < m.(i).(j) then m.(i).(j) <- through
        done
    done
  done

(* Incremental closure: add one constraint x_i - x_j <= b to a matrix
   already in canonical form and restore canonicality in O(n^2) instead
   of re-running the O(n^3) Floyd-Warshall.  The closed form is unique
   (entries are shortest paths), so on consistent inputs the result is
   bit-identical to [constrain] + [canonicalize] — the qcheck suite in
   test_dbm.ml pins that.  An inconsistent constraint (it would close a
   negative cycle) is recorded by making the diagonal negative, which is
   exactly what [is_empty] tests; entries of an empty DBM are otherwise
   unspecified, as with Floyd-Warshall.

   Why one pass suffices: any path using the new edge (i,j) more than
   once is no shorter than one using it once (the cycle through it has
   weight m.(j).(i) + b >= 0 on consistent inputs), so the new shortest
   path p->q is min(m.(p).(q), m.(p).(i) + b + m.(j).(q)) over the OLD
   entries.  Row j and column i are fixpoints of that update, so in-place
   evaluation order cannot interfere. *)
let tighten t i j b =
  if b < t.m.(i).(j) then begin
    if i = j then t.m.(i).(i) <- b
    else begin
      let cycle = sat_add t.m.(j).(i) b in
      if cycle < 0 then t.m.(i).(i) <- cycle
      else begin
        let n = t.size in
        let m = t.m in
        for p = 0 to n - 1 do
          let via = sat_add m.(p).(i) b in
          if via < infinity then
            for q = 0 to n - 1 do
              let through = sat_add via m.(j).(q) in
              if through < m.(p).(q) then m.(p).(q) <- through
            done
        done
      end
    end
  end

let is_empty t =
  let rec go i = i < t.size && (t.m.(i).(i) < 0 || go (i + 1)) in
  go 0

let is_canonical_nonempty t =
  let c = copy t in
  canonicalize c;
  not (is_empty c)

let equal a b =
  a.size = b.size
  &&
  let rec row i =
    i >= a.size
    ||
    let rec col j = j >= a.size || (a.m.(i).(j) = b.m.(i).(j) && col (j + 1)) in
    col 0 && row (i + 1)
  in
  row 0

let subset a b =
  a.size = b.size
  &&
  let rec row i =
    i >= a.size
    ||
    let rec col j =
      j >= a.size || (a.m.(i).(j) <= b.m.(i).(j) && col (j + 1))
    in
    col 0 && row (i + 1)
  in
  row 0

let hash t =
  let h = ref 0x811c9dc5 in
  Array.iter
    (Array.iter (fun x ->
         h := (!h lxor (x land 0xffff)) * 0x01000193 land max_int))
    t.m;
  !h

(* Change of origin after firing variable f: the kept variables are
   reinterpreted relative to x_f.  For i, j kept:
   x'_i - x'_j = x_i - x_j        -> bound m.(i).(j)
   x'_i - 0    = x_i - x_f        -> bound m.(i).(f)
   0 - x'_i    = x_f - x_i        -> bound m.(f).(i) *)
let rebase t f ~keep =
  let k = List.length keep in
  let fresh = create k in
  List.iteri
    (fun i' i ->
      fresh.m.(i' + 1).(0) <- t.m.(i).(f);
      fresh.m.(0).(i' + 1) <- t.m.(f).(i);
      List.iteri
        (fun j' j -> if i <> j then fresh.m.(i' + 1).(j' + 1) <- t.m.(i).(j))
        keep)
    keep;
  fresh

let add_fresh t bounds_list =
  let extra = List.length bounds_list in
  let fresh = create (dim t + extra) in
  for i = 0 to t.size - 1 do
    for j = 0 to t.size - 1 do
      fresh.m.(i).(j) <- t.m.(i).(j)
    done
  done;
  List.iteri
    (fun idx (lo, hi) ->
      let v = t.size + idx in
      fresh.m.(v).(0) <- hi;
      fresh.m.(0).(v) <- -lo)
    bounds_list;
  fresh

let bounds t i = (-t.m.(0).(i), t.m.(i).(0))

let pp fmt t =
  for i = 0 to t.size - 1 do
    for j = 0 to t.size - 1 do
      if t.m.(i).(j) >= infinity then Format.fprintf fmt "  inf"
      else Format.fprintf fmt "%5d" t.m.(i).(j)
    done;
    Format.fprintf fmt "@."
  done
