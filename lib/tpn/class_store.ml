(* Lock-striped store of canonical (marking, domain) classes.

   Stripe design mirrors Packed_state.Sharded: 2^k stripes, each an
   independently-locked hashtable, a key's stripe chosen by the low
   bits of its hash so every operation on one marking serializes
   through one mutex.  Unlike the packed-state table the payload here
   is structured — per marking we keep the list of canonical domains
   already explored — because subsumption needs to scan the domains
   under one marking, and that list is exactly the unit the stripe
   lock protects.

   The enabled-transition vector is a function of the marking (classes
   are built by State_class, whose [fire] derives [enabled] from the
   marking), so the marking alone is a sound skeleton key: equal
   markings imply equal enabled sets and equal DBM dimensions. *)

type entry = {
  dhash : int;  (* Dbm.hash of the stored domain, compared first *)
  domain : Dbm.t;
}

module Skeleton = Hashtbl.Make (struct
  type t = int array

  let equal = ( = )

  let hash (m : int array) =
    let h = ref 0x811c9dc5 in
    Array.iter
      (fun x -> h := (!h lxor (x land 0xffff)) * 0x01000193 land max_int)
      m;
    !h
end)

type stripe = {
  lock : Mutex.t;
  buckets : entry list ref Skeleton.t;
}

type t = {
  stripes : stripe array;
  mask : int;
  subsume : bool;
  total : int Atomic.t;
  duplicates : int Atomic.t;
  subsumed : int Atomic.t;
  contended : int Atomic.t;
}

type verdict = Fresh | Duplicate | Subsumed

type stats = {
  stripes : int;
  entries : int;
  skeletons : int;
  duplicates : int;
  subsumed : int;
  contended : int;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(stripes = 64) ?(subsume = true) () =
  let n = next_pow2 (max 1 stripes) in
  {
    stripes =
      Array.init n (fun _ ->
          { lock = Mutex.create (); buckets = Skeleton.create 64 });
    mask = n - 1;
    subsume;
    total = Atomic.make 0;
    duplicates = Atomic.make 0;
    subsumed = Atomic.make 0;
    contended = Atomic.make 0;
  }

let subsume_enabled t = t.subsume

let marking_hash (m : int array) =
  let h = ref 0x811c9dc5 in
  Array.iter
    (fun x -> h := (!h lxor (x land 0xffff)) * 0x01000193 land max_int)
    m;
  !h

let lock_stripe (t : t) st =
  if not (Mutex.try_lock st.lock) then begin
    Atomic.incr t.contended;
    Mutex.lock st.lock
  end

let visit (t : t) (c : State_class.t) =
  let marking = c.State_class.marking in
  let domain = c.State_class.domain in
  let h = marking_hash marking in
  let st = t.stripes.(h land t.mask) in
  let dhash = Dbm.hash domain in
  lock_stripe t st;
  let verdict =
    match Skeleton.find_opt st.buckets marking with
    | None ->
      Skeleton.replace st.buckets (Array.copy marking)
        (ref [ { dhash; domain } ]);
      Fresh
    | Some entries ->
      let dup =
        List.exists
          (fun e -> e.dhash = dhash && Dbm.equal e.domain domain)
          !entries
      in
      if dup then Duplicate
      else if
        t.subsume
        && List.exists (fun e -> Dbm.subset domain e.domain) !entries
      then Subsumed
      else begin
        entries := { dhash; domain } :: !entries;
        Fresh
      end
  in
  Mutex.unlock st.lock;
  (match verdict with
  | Fresh -> Atomic.incr t.total
  | Duplicate -> Atomic.incr t.duplicates
  | Subsumed -> Atomic.incr t.subsumed);
  verdict

let length (t : t) = Atomic.get t.total

let stats (t : t) =
  let skeletons = ref 0 in
  Array.iter
    (fun st ->
      lock_stripe t st;
      skeletons := !skeletons + Skeleton.length st.buckets;
      Mutex.unlock st.lock)
    t.stripes;
  {
    stripes = t.mask + 1;
    entries = Atomic.get t.total;
    skeletons = !skeletons;
    duplicates = Atomic.get t.duplicates;
    subsumed = Atomic.get t.subsumed;
    contended = Atomic.get t.contended;
  }
