(** Place invariants (P-semiflows).

    A P-invariant is a nonnegative integer weighting [y] of the places
    with [y . C = 0] for the incidence matrix [C]: the weighted token
    count [y . m] is constant over every reachable marking.  The
    translation's resource places (processor, buses, exclusion slots)
    are covered by invariants of constant 1 — a structural proof of
    their mutual-exclusion role that needs no state-space search.

    Computed with the Farkas algorithm restricted to minimal-support
    invariants.  The algorithm is worst-case exponential; [max_rows]
    aborts gracefully on pathological nets. *)

val incidence : Pnet.t -> int array array
(** [incidence net] is [C] with [C.(p).(t) = W(t,p) - W(p,t)]. *)

val is_invariant : Pnet.t -> int array -> bool
(** [y . C = 0], with [y] indexed by place id. *)

val weighted_tokens : int array -> int array -> int
(** [weighted_tokens y marking] is [y . marking]. *)

type outcome =
  | Complete of int array list
      (** Every minimal-support invariant of the net. *)
  | Truncated of int array list
      (** The Farkas row bound tripped mid-elimination; the carried
          rows are genuine invariants (all-zero residual) but the set
          is incomplete — an uncovered place proves nothing. *)

val invariants_of : outcome -> int array list
(** The invariant rows regardless of completeness. *)

val is_truncated : outcome -> bool

val p_invariants : ?max_rows:int -> Pnet.t -> outcome
(** Minimal-support nonnegative invariants with coprime weights
    ([max_rows] defaults to 4096).  Never raises: when the row bound is
    exceeded the result degrades to [Truncated] carrying the invariants
    found so far. *)

val support : int array -> Pnet.place_id list
(** Places with nonzero weight in the invariant. *)

val invariant_covering : Pnet.t -> Pnet.place_id -> int array list -> int array option
(** First invariant whose support contains the given place. *)

val conserved_constant : Pnet.t -> int array -> int
(** The invariant's constant, [y . m0]. *)
