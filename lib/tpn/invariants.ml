let incidence (net : Pnet.t) =
  let n_places = Pnet.place_count net in
  let n_trans = Pnet.transition_count net in
  let c = Array.make_matrix n_places n_trans 0 in
  Array.iteri
    (fun t arcs -> Array.iter (fun (p, w) -> c.(p).(t) <- c.(p).(t) - w) arcs)
    net.Pnet.pre;
  Array.iteri
    (fun t arcs -> Array.iter (fun (p, w) -> c.(p).(t) <- c.(p).(t) + w) arcs)
    net.Pnet.post;
  c

let is_invariant net y =
  let c = incidence net in
  let n_places = Array.length c in
  if Array.length y <> n_places then false
  else begin
    let n_trans = Pnet.transition_count net in
    let rec column t =
      t >= n_trans
      ||
      let sum = ref 0 in
      for p = 0 to n_places - 1 do
        sum := !sum + (y.(p) * c.(p).(t))
      done;
      !sum = 0 && column (t + 1)
    in
    column 0
  end

let weighted_tokens y marking =
  let total = ref 0 in
  Array.iteri (fun p w -> total := !total + (w * marking.(p))) y;
  !total

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let normalize row =
  let g = Array.fold_left (fun acc x -> gcd acc (abs x)) 0 row in
  if g > 1 then Array.map (fun x -> x / g) row else row

let support row =
  let acc = ref [] in
  Array.iteri (fun i x -> if x <> 0 then acc := i :: !acc) row;
  !acc

let support_subset a b =
  (* support(a) included in support(b) *)
  let ok = ref true in
  Array.iteri (fun i x -> if x <> 0 && b.(i) = 0 then ok := false) a;
  !ok

type outcome =
  | Complete of int array list
  | Truncated of int array list

let invariants_of = function Complete ys | Truncated ys -> ys
let is_truncated = function Complete _ -> false | Truncated _ -> true

let finalize rows =
  List.map (fun (y, _) -> normalize y) rows
  |> List.filter (fun y -> support y <> [])
  |> List.sort compare

(* Farkas algorithm: rows are (y, r) with y the candidate invariant and
   r = y . C the residual; eliminate each transition column in turn by
   nonnegative combinations of rows with opposite signs. *)
let p_invariants ?(max_rows = 4096) (net : Pnet.t) =
  let c = incidence net in
  let n_places = Array.length c in
  let n_trans = Pnet.transition_count net in
  let rows =
    ref
      (List.init n_places (fun p ->
           let y = Array.make n_places 0 in
           y.(p) <- 1;
           (y, Array.copy c.(p))))
  in
  let truncated = ref false in
  let t = ref 0 in
  while (not !truncated) && !t < n_trans do
    let zero, nonzero =
      List.partition (fun (_, r) -> r.(!t) = 0) !rows
    in
    let pos = List.filter (fun (_, r) -> r.(!t) > 0) nonzero in
    let neg = List.filter (fun (_, r) -> r.(!t) < 0) nonzero in
    let combos =
      List.concat_map
        (fun (y1, r1) ->
          List.map
            (fun (y2, r2) ->
              let a = -r2.(!t) and b = r1.(!t) in
              let y =
                Array.init n_places (fun p -> (a * y1.(p)) + (b * y2.(p)))
              in
              let r =
                Array.init n_trans (fun j -> (a * r1.(j)) + (b * r2.(j)))
              in
              let g =
                Array.fold_left (fun acc x -> gcd acc (abs x))
                  (Array.fold_left (fun acc x -> gcd acc (abs x)) 0 y)
                  r
              in
              if g > 1 then
                (Array.map (fun x -> x / g) y, Array.map (fun x -> x / g) r)
              else (y, r))
            neg)
        pos
    in
    (* prune duplicates and non-minimal supports *)
    let candidate = zero @ combos in
    let minimal =
      List.filter
        (fun (y, _) ->
          not
            (List.exists
               (fun (y', _) -> y' != y && y' <> y && support_subset y' y)
               candidate))
        candidate
    in
    let deduped =
      List.sort_uniq (fun (a, _) (b, _) -> compare a b) minimal
    in
    if List.length deduped > max_rows then begin
      (* Row bound tripped mid-elimination.  Rows whose residual is
         already all-zero satisfy y . C = 0 outright, so they are
         genuine invariants even though later columns were never
         processed — salvage those and report the truncation. *)
      truncated := true;
      rows :=
        List.filter
          (fun (_, r) -> Array.for_all (fun x -> x = 0) r)
          deduped
    end
    else begin
      rows := deduped;
      incr t
    end
  done;
  let ys = finalize !rows in
  if !truncated then Truncated ys else Complete ys

let invariant_covering _net place invariants =
  List.find_opt (fun y -> y.(place) <> 0) invariants

let conserved_constant (net : Pnet.t) y = weighted_tokens y net.Pnet.m0
