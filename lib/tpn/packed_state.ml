(* Packed TLTS states for the search's memo tables.

   A boxed [State.t] costs two int arrays plus a record — roughly
   8 bytes per cell plus three headers — and hashing it walks boxed
   arrays on every lookup.  Here a state is serialized once into a
   [Bytes.t] of fixed-width little-endian cells (the narrowest of
   16/32/64 bits that fits every cell, chosen per state so equal states
   encode identically) with the full-width Zobrist hash memoized next
   to it.  A 500k-entry failed-state table shrinks by ~4x and lookups
   reduce to a stored-int compare plus [Bytes.equal].

   [of_engine] takes the incremental engine's maintained Zobrist word
   directly, so keying a search node costs only the serialization scan
   — no rehash of the marking at all. *)

type t = {
  data : bytes;
  hash : int;
}

let width_tag_2 = '\002'
let width_tag_4 = '\004'
let width_tag_8 = '\008'

let serialize ~cells ~cell =
  let lo = ref 0 and hi = ref 0 in
  for i = 0 to cells - 1 do
    let v = cell i in
    if v < !lo then lo := v;
    if v > !hi then hi := v
  done;
  if !lo >= -0x8000 && !hi <= 0x7fff then begin
    let data = Bytes.create (1 + (2 * cells)) in
    Bytes.unsafe_set data 0 width_tag_2;
    for i = 0 to cells - 1 do
      Bytes.set_int16_le data (1 + (2 * i)) (cell i)
    done;
    data
  end
  else if !lo >= -0x40000000 && !hi <= 0x3fffffff then begin
    let data = Bytes.create (1 + (4 * cells)) in
    Bytes.unsafe_set data 0 width_tag_4;
    for i = 0 to cells - 1 do
      Bytes.set_int32_le data (1 + (4 * i)) (Int32.of_int (cell i))
    done;
    data
  end
  else begin
    let data = Bytes.create (1 + (8 * cells)) in
    Bytes.unsafe_set data 0 width_tag_8;
    for i = 0 to cells - 1 do
      Bytes.set_int64_le data (1 + (8 * i)) (Int64.of_int (cell i))
    done;
    data
  end

let pack ~n_places ~n_transitions ~tokens ~clock =
  let cells = n_places + n_transitions in
  let cell i = if i < n_places then tokens i else clock (i - n_places) in
  (* same fold as [State.Zobrist.of_cells], driven by [cell] so
     degenerate shapes (zero cells) never index the accessors *)
  let hash = ref 0 in
  for i = 0 to cells - 1 do
    let v = cell i in
    if i < n_places then hash := !hash lxor State.Zobrist.place i v
    else if v >= 0 then hash := !hash lxor State.Zobrist.clock (i - n_places) v
  done;
  { data = serialize ~cells ~cell; hash = !hash }

let of_state (s : State.t) =
  pack
    ~n_places:(Array.length s.State.marking)
    ~n_transitions:(Array.length s.State.clocks)
    ~tokens:(fun p -> s.State.marking.(p))
    ~clock:(fun t -> s.State.clocks.(t))

let of_engine e =
  let net = State.Incremental.net e in
  let n_places = Pnet.place_count net in
  let cells = n_places + Pnet.transition_count net in
  let cell i =
    if i < n_places then State.Incremental.tokens e i
    else State.Incremental.clock e (i - n_places)
  in
  { data = serialize ~cells ~cell; hash = State.Incremental.zhash e }

let unpack p =
  let data = p.data in
  let width = Char.code (Bytes.get data 0) in
  let cells = (Bytes.length data - 1) / width in
  Array.init cells (fun i ->
      match width with
      | 2 -> Bytes.get_int16_le data (1 + (2 * i))
      | 4 -> Int32.to_int (Bytes.get_int32_le data (1 + (4 * i)))
      | 8 -> Int64.to_int (Bytes.get_int64_le data (1 + (8 * i)))
      | w -> invalid_arg (Printf.sprintf "Packed_state.unpack: width tag %d" w))

let equal a b = a.hash = b.hash && Bytes.equal a.data b.data
let hash p = p.hash
let byte_size p = Bytes.length p.data

type table_stats = {
  entries : int;
  buckets : int;
  load : float;
  collisions : int;
  max_bucket : int;
}

module Table = struct
  include Hashtbl.Make (struct
    type nonrec t = t

    let equal = equal
    let hash = hash
  end)

  let load_stats t =
    let s = stats t in
    let nonempty =
      let n = ref 0 in
      Array.iteri
        (fun len count -> if len > 0 then n := !n + count)
        s.Hashtbl.bucket_histogram;
      !n
    in
    {
      entries = s.Hashtbl.num_bindings;
      buckets = s.Hashtbl.num_buckets;
      load =
        (if s.Hashtbl.num_buckets = 0 then 0.
         else float_of_int s.Hashtbl.num_bindings
              /. float_of_int s.Hashtbl.num_buckets);
      collisions = s.Hashtbl.num_bindings - nonempty;
      max_bucket = s.Hashtbl.max_bucket_length;
    }
end

(* ------------------------------------------------------------------ *)
(* Lock-striped concurrent set of packed states.

   The parallel search's shared visited table: 2^k stripes, each an
   independently-locked open-addressed table (linear probing over
   parallel [bytes]/[hash] arrays, grown at ~3/4 load).  A key's stripe
   is its low hash bits, the probe start its next bits, so all
   operations on one key serialize through one mutex and the structure
   is trivially linearizable.  Stripe count is fixed at creation —
   contention drops as 1/stripes for uniform keys, and the Zobrist
   hashes are uniform by construction. *)

module Sharded = struct
  type stripe = {
    lock : Mutex.t;
    mutable keys : bytes array;  (* Bytes.empty = free slot *)
    mutable hashes : int array;
    mutable count : int;
    mutable collisions : int;  (* probe steps past the home slot *)
  }

  type table = {
    stripes : stripe array;
    mask : int;  (* stripe count - 1 *)
    shift : int;  (* bits consumed by stripe selection *)
    total : int Atomic.t;
    contended : int Atomic.t;  (* Mutex.try_lock misses *)
  }

  type stats = {
    stripes : int;
    entries : int;
    capacity : int;
    load : float;
    collisions : int;
    contended : int;
  }

  let next_pow2 n =
    let rec go p = if p >= n then p else go (p * 2) in
    go 1

  let create ?(stripes = 64) ?(expected = 4096) () =
    let n_stripes = next_pow2 (max 1 stripes) in
    let shift =
      let rec bits p acc = if p <= 1 then acc else bits (p / 2) (acc + 1) in
      bits n_stripes 0
    in
    let per_stripe = next_pow2 (max 16 (2 * expected / n_stripes)) in
    {
      stripes =
        Array.init n_stripes (fun _ ->
            {
              lock = Mutex.create ();
              keys = Array.make per_stripe Bytes.empty;
              hashes = Array.make per_stripe 0;
              count = 0;
              collisions = 0;
            });
      mask = n_stripes - 1;
      shift;
      total = Atomic.make 0;
      contended = Atomic.make 0;
    }

  (* Caller holds the stripe lock.  Returns the slot of [key], or the
     first free slot if absent.  The probe start uses the hash bits
     above the stripe-selection bits so slots spread within a stripe;
     occupancy checks compare the stored full hash first. *)
  let probe st ~hash ~shift ~slot_mask key =
    let i = ref ((hash lsr shift) land slot_mask) in
    let steps = ref 0 in
    let found = ref (-1) in
    while !found < 0 do
      let k = st.keys.(!i) in
      if Bytes.length k = 0 then found := !i
      else if st.hashes.(!i) = hash && Bytes.equal k key then found := !i
      else begin
        incr steps;
        i := (!i + 1) land slot_mask
      end
    done;
    st.collisions <- st.collisions + !steps;
    !found

  let grow st ~shift =
    let old_keys = st.keys and old_hashes = st.hashes in
    let cap = 2 * Array.length old_keys in
    st.keys <- Array.make cap Bytes.empty;
    st.hashes <- Array.make cap 0;
    let slot_mask = cap - 1 in
    Array.iteri
      (fun i k ->
        if Bytes.length k > 0 then begin
          let h = old_hashes.(i) in
          let j = probe st ~hash:h ~shift ~slot_mask k in
          st.keys.(j) <- k;
          st.hashes.(j) <- h
        end)
      old_keys

  let lock_stripe (t : table) st =
    if not (Mutex.try_lock st.lock) then begin
      Atomic.incr t.contended;
      Mutex.lock st.lock
    end

  let add (t : table) key =
    let h = key.hash in
    let st = t.stripes.(h land t.mask) in
    lock_stripe t st;
    let slot_mask = Array.length st.keys - 1 in
    let i = probe st ~hash:h ~shift:t.shift ~slot_mask key.data in
    let added = Bytes.length st.keys.(i) = 0 in
    if added then begin
      st.keys.(i) <- key.data;
      st.hashes.(i) <- h;
      st.count <- st.count + 1;
      if 4 * st.count > 3 * Array.length st.keys then grow st ~shift:t.shift;
      Atomic.incr t.total
    end;
    Mutex.unlock st.lock;
    added

  let mem (t : table) key =
    let h = key.hash in
    let st = t.stripes.(h land t.mask) in
    lock_stripe t st;
    let slot_mask = Array.length st.keys - 1 in
    let i = probe st ~hash:h ~shift:t.shift ~slot_mask key.data in
    let present = Bytes.length st.keys.(i) > 0 in
    Mutex.unlock st.lock;
    present

  let length (t : table) = Atomic.get t.total

  let stats (t : table) =
    let capacity = ref 0 and collisions = ref 0 in
    Array.iter
      (fun st ->
        capacity := !capacity + Array.length st.keys;
        collisions := !collisions + st.collisions)
      t.stripes;
    let entries = Atomic.get t.total in
    {
      stripes = t.mask + 1;
      entries;
      capacity = !capacity;
      load =
        (if !capacity = 0 then 0.
         else float_of_int entries /. float_of_int !capacity);
      collisions = !collisions;
      contended = Atomic.get t.contended;
    }
end
