(* Packed TLTS states for the search's memo tables.

   A boxed [State.t] costs two int arrays plus a record — roughly
   8 bytes per cell plus three headers — and hashing it walks boxed
   arrays on every lookup.  Here a state is serialized once into a
   [Bytes.t] of fixed-width little-endian cells (the narrowest of
   16/32/64 bits that fits every cell, chosen per state so equal states
   encode identically) with the full-width FNV-1a hash memoized next to
   it.  A 500k-entry failed-state table shrinks by ~4x and lookups
   reduce to a stored-int compare plus [Bytes.equal]. *)

type t = {
  data : bytes;
  hash : int;
}

let width_tag_2 = '\002'
let width_tag_4 = '\004'
let width_tag_8 = '\008'

let pack ~n_places ~n_transitions ~tokens ~clock =
  let cells = n_places + n_transitions in
  let cell i = if i < n_places then tokens i else clock (i - n_places) in
  let h = ref State.fnv_basis in
  let lo = ref 0 and hi = ref 0 in
  for i = 0 to cells - 1 do
    let v = cell i in
    h := State.mix_cell !h v;
    if v < !lo then lo := v;
    if v > !hi then hi := v
  done;
  let data =
    if !lo >= -0x8000 && !hi <= 0x7fff then begin
      let data = Bytes.create (1 + (2 * cells)) in
      Bytes.unsafe_set data 0 width_tag_2;
      for i = 0 to cells - 1 do
        Bytes.set_int16_le data (1 + (2 * i)) (cell i)
      done;
      data
    end
    else if !lo >= -0x40000000 && !hi <= 0x3fffffff then begin
      let data = Bytes.create (1 + (4 * cells)) in
      Bytes.unsafe_set data 0 width_tag_4;
      for i = 0 to cells - 1 do
        Bytes.set_int32_le data (1 + (4 * i)) (Int32.of_int (cell i))
      done;
      data
    end
    else begin
      let data = Bytes.create (1 + (8 * cells)) in
      Bytes.unsafe_set data 0 width_tag_8;
      for i = 0 to cells - 1 do
        Bytes.set_int64_le data (1 + (8 * i)) (Int64.of_int (cell i))
      done;
      data
    end
  in
  { data; hash = !h }

let of_state (s : State.t) =
  pack
    ~n_places:(Array.length s.State.marking)
    ~n_transitions:(Array.length s.State.clocks)
    ~tokens:(fun p -> s.State.marking.(p))
    ~clock:(fun t -> s.State.clocks.(t))

let of_engine e =
  let net = State.Incremental.net e in
  pack
    ~n_places:(Pnet.place_count net)
    ~n_transitions:(Pnet.transition_count net)
    ~tokens:(State.Incremental.tokens e)
    ~clock:(State.Incremental.clock e)

let unpack p =
  let data = p.data in
  let width = Char.code (Bytes.get data 0) in
  let cells = (Bytes.length data - 1) / width in
  Array.init cells (fun i ->
      match width with
      | 2 -> Bytes.get_int16_le data (1 + (2 * i))
      | 4 -> Int32.to_int (Bytes.get_int32_le data (1 + (4 * i)))
      | 8 -> Int64.to_int (Bytes.get_int64_le data (1 + (8 * i)))
      | w -> invalid_arg (Printf.sprintf "Packed_state.unpack: width tag %d" w))

let equal a b = a.hash = b.hash && Bytes.equal a.data b.data
let hash p = p.hash
let byte_size p = Bytes.length p.data

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
