(** Concurrent store of canonical state classes with inclusion-based
    subsumption.

    The symbolic engines' shared visited table: a lock-striped map from
    markings to the canonical firing domains already explored under
    that marking.  Domains are hash-consed — one stored copy per
    canonical form, compared hash-first — so duplicate classes cost a
    hash probe, not a matrix copy.

    With subsumption enabled (the default), a new class whose domain is
    {e contained} in an already-stored domain over the same marking is
    reported {!Subsumed} and not stored: every behaviour from the new
    class is a behaviour of the stored one, so exploring it again can
    neither add a feasible witness nor remove one (see DESIGN.md,
    "Symbolic engine performance", for the soundness argument and the
    structural conditions under which priorities preserve it). *)

type t

type verdict =
  | Fresh  (** first visit — the class was stored; caller explores it *)
  | Duplicate  (** bit-identical domain already stored under this marking *)
  | Subsumed
      (** strictly contained in a stored domain over the same marking *)

type stats = {
  stripes : int;
  entries : int;  (** stored canonical domains *)
  skeletons : int;  (** distinct markings seen *)
  duplicates : int;  (** visits answered [Duplicate] *)
  subsumed : int;  (** visits answered [Subsumed] *)
  contended : int;  (** [Mutex.try_lock] misses across all stripes *)
}

val create : ?stripes:int -> ?subsume:bool -> unit -> t
(** [create ()] makes an empty store.  [stripes] (rounded up to a power
    of two, default 64) fixes the lock granularity; [subsume] (default
    [true]) enables inclusion pruning — with it off the store degrades
    to an exact visited set and never answers [Subsumed]. *)

val subsume_enabled : t -> bool

val visit : t -> State_class.t -> verdict
(** Atomically classify [c] against the store and, when [Fresh], record
    its domain.  Thread-safe; all operations on one marking serialize
    through that marking's stripe lock. *)

val length : t -> int
(** Stored domains ([entries]); lock-free read of the shared total. *)

val stats : t -> stats
