(** Time Petri net structure.

    An extended time Petri net (paper §3.1) is
    [(P, T, F, W, m0, I)] plus a partial code-binding function [CS] and
    a priority function [pi].  Places and transitions are dense integer
    ids into arrays; arcs carry positive weights. *)

type place_id = int
type transition_id = int

type transition = {
  t_name : string;
  interval : Time_interval.t;
  priority : int;
      (** [pi : T -> N]; smaller values are preferred by the fireable
          set [FT(s)] (paper §3.1).  Default {!default_priority}. *)
  code : string option;
      (** [CS : T -9-> ST] — behavioural source bound to the
          transition, when any. *)
}

type t = private {
  net_name : string;
  place_names : string array;
  transitions : transition array;
  pre : (place_id * int) array array;
      (** [pre.(t)] lists [(p, w)] input arcs of transition [t]. *)
  post : (place_id * int) array array;
  consumers : transition_id array array;
      (** [consumers.(p)] lists the transitions with an input arc on
          [p]; derived index used for conflict detection. *)
  m0 : int array;
}

val default_priority : int

val place_count : t -> int
val transition_count : t -> int
val arc_count : t -> int

val place_name : t -> place_id -> string
val transition_name : t -> transition_id -> string
val interval : t -> transition_id -> Time_interval.t
val priority : t -> transition_id -> int

val find_place : t -> string -> place_id
(** Raises [Not_found] when no place has that name. *)

val find_transition : t -> string -> transition_id
(** Raises [Not_found]. *)

val find_place_opt : t -> string -> place_id option
val find_transition_opt : t -> string -> transition_id option

val pre_arcs : t -> transition_id -> (place_id * int) array
(** Input arcs [(p, w)] of a transition.  The returned array is the
    net's own — callers must not mutate it. *)

val post_arcs : t -> transition_id -> (place_id * int) array

val consumers_of : t -> place_id -> transition_id array
(** Transitions with an input arc on the place (the derived conflict
    index); not to be mutated. *)

val producers : t -> transition_id array array
(** Freshly computed per-place producer index: [producers net].(p)
    lists the transitions with an output arc into [p], ascending.
    O(arcs); callers that need it repeatedly should keep the result
    (as {!Indep} does). *)

(** Structural conflict: two transitions sharing an input place can
    disable each other. *)
val in_structural_conflict : t -> transition_id -> transition_id -> bool

val pp_summary : Format.formatter -> t -> unit
(** One-line [name: |P|=.., |T|=.., |F|=.., tokens(m0)=..]. *)

(** Imperative construction of a net; ids are handed out densely.
    [build] freezes the net and validates it. *)
module Builder : sig
  type net = t
  type t

  val create : string -> t
  (** [create name] starts an empty net. *)

  val add_place : t -> ?tokens:int -> string -> place_id
  (** Adds a place with [tokens] initial marks (default 0).
      Raises [Invalid_argument] on duplicate names or negative
      tokens. *)

  val add_transition :
    t ->
    ?priority:int ->
    ?code:string ->
    string ->
    Time_interval.t ->
    transition_id
  (** Raises [Invalid_argument] on duplicate names. *)

  val arc_pt : t -> ?weight:int -> place_id -> transition_id -> unit
  (** Input arc place -> transition; weight defaults to 1.  Adding the
      same arc twice accumulates weights. *)

  val arc_tp : t -> ?weight:int -> transition_id -> place_id -> unit

  val add_tokens : t -> place_id -> int -> unit
  (** Adds to the initial marking of an existing place. *)

  val place_of_name : t -> string -> place_id option
  val transition_of_name : t -> string -> transition_id option

  val place_count : t -> int
  (** Places added so far — a watermark for tagging construction
      phases with their originating spec fragment. *)

  val transition_count : t -> int

  val build : t -> net
  (** Freezes the net.  Raises [Invalid_argument] when a transition has
      no input arc (such a transition would be continuously enabled and
      break the TLTS finiteness argument) — every ezRealtime block
      transition has a pre-set. *)
end
