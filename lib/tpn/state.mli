(** TLTS states and the firing rule of paper Def 3.1.

    A state is a marking plus one clock per enabled transition.  The
    dynamic firing bounds are
    [DLB(t) = max(0, EFT(t) - c(t))] and [DUB(t) = LFT(t) - c(t)];
    the fireable set [FT(s)] keeps the enabled transitions whose [DLB]
    does not exceed the minimum [DUB] (no other transition is forced to
    fire strictly earlier) and, among those, the ones of minimal
    priority value.  The firing domain is
    [FD_s(t) = [DLB(t), min DUB(tk)]]. *)

type t = private {
  marking : int array;
  clocks : int array;  (** [clocks.(t) = -1] iff [t] is disabled. *)
}

val initial : Pnet.t -> t

val is_enabled : t -> Pnet.transition_id -> bool
val enabled_ids : t -> Pnet.transition_id list
val marking_enables : Pnet.t -> int array -> Pnet.transition_id -> bool
val tokens : t -> Pnet.place_id -> int

val dlb : Pnet.t -> t -> Pnet.transition_id -> int
(** Raises [Invalid_argument] if the transition is disabled. *)

val dub : Pnet.t -> t -> Pnet.transition_id -> Time_interval.bound
(** May be negative for an overdue transition that must fire now. *)

val min_dub : Pnet.t -> t -> Time_interval.bound
(** Over all enabled transitions; [Infinity] when none is enabled. *)

val candidates : Pnet.t -> t -> Pnet.transition_id list
(** Enabled transitions with [DLB <= min DUB], i.e. [FT(s)] before the
    priority filter — the raw schedulability choice set. *)

val fireable : Pnet.t -> t -> Pnet.transition_id list
(** [FT(s)] of the paper: {!candidates} restricted to the minimal
    priority value present among them. *)

val firing_domain : Pnet.t -> t -> Pnet.transition_id -> int * Time_interval.bound
(** [FD_s(t)]; raises [Invalid_argument] if disabled. *)

val fire : Pnet.t -> t -> Pnet.transition_id -> int -> t
(** [fire net s t q] fires [t] after [q] further time units (Def 3.1):
    tokens move along the arcs and every transition enabled in the new
    marking has clock 0 when newly enabled (or when it is [t] itself)
    and its old clock advanced by [q] otherwise.  Raises
    [Invalid_argument] when [t] is disabled or [q] lies outside the
    firing domain. *)

val equal : t -> t -> bool

val hash : t -> int
(** Zobrist hash: the XOR of one {!Zobrist.place} contribution per
    marking cell and one {!Zobrist.clock} contribution per enabled
    clock cell.  Every bit of every cell perturbs the hash, and the
    XOR structure is what lets {!Incremental} maintain it across
    fire/undo without rehashing the state. *)

(** Per-cell hash contributions, exposed so packed encodings can hash
    identically to {!hash}.  The "table" is virtual — contributions
    are computed by a splitmix-style finalizer because cell values are
    unbounded. *)
module Zobrist : sig
  val mix : int -> int
  (** The finalizer itself; non-negative output. *)

  val place : Pnet.place_id -> int -> int
  (** [place p v] — contribution of marking cell [p] holding [v]. *)

  val clock : Pnet.transition_id -> int -> int
  (** [clock t c] — contribution of enabled transition [t] at clock
      [c].  Disabled transitions (clock -1) contribute nothing. *)

  val of_cells :
    n_places:int ->
    n_transitions:int ->
    tokens:(Pnet.place_id -> int) ->
    clocks:(Pnet.transition_id -> int) ->
    int
  (** Full fold over a state's cells; [clocks] returns -1 for disabled
      transitions.  [hash s] is exactly this over [s]'s arrays. *)
end

val pp : Pnet.t -> Format.formatter -> t -> unit

(** Hash tables keyed by states. *)
module Table : Hashtbl.S with type key = t

val reset_write_counters : unit -> unit

val write_counters : unit -> int * int * int
(** [(copy_writes, incremental_writes, fires)] — state-vector cells
    written by the copy-based {!fire} versus {!Incremental.fire}, and
    total firings, since the last {!reset_write_counters}.  Benchmark
    instrumentation; approximate under parallel search. *)

(** Incremental firing engine: one mutable state, an undo trail for
    depth-first backtracking, a maintained enabled-set so a firing only
    inspects transitions adjacent to touched places, and a fused
    candidate analysis.  Semantically equivalent to the copy-based
    functions above (checked by the differential test suite); clock
    values are represented as [now - enabled_at t]. *)
module Incremental : sig
  type engine

  val create : Pnet.t -> engine
  (** Fresh engine at the initial marking, depth 0. *)

  val net : engine -> Pnet.t

  val depth : engine -> int
  (** Number of firings applied and not undone. *)

  val now : engine -> int
  (** Total elapsed time along the current firing path. *)

  val tokens : engine -> Pnet.place_id -> int
  val is_enabled : engine -> Pnet.transition_id -> bool

  val clock : engine -> Pnet.transition_id -> int
  (** [-1] when disabled, matching {!t}'s convention. *)

  val zhash : engine -> int
  (** Incrementally maintained Zobrist hash of the current state;
      always equal to [hash (snapshot e)], bit for bit, at O(1) cost.
      Fire updates it with the XOR contributions of the touched cells
      (plus O(enabled) clock shifts when time advances) and undo
      restores the saved word from the trail. *)

  val dlb : engine -> Pnet.transition_id -> int
  val dub : engine -> Pnet.transition_id -> Time_interval.bound
  val min_dub : engine -> Time_interval.bound

  val candidates : engine -> Pnet.transition_id list
  (** Ascending transition order, like the copy-based {!candidates}. *)

  val fireable : engine -> Pnet.transition_id list

  val firing_domain :
    engine -> Pnet.transition_id -> int * Time_interval.bound

  val fire : engine -> Pnet.transition_id -> int -> unit
  (** In-place firing; pushes an undo frame.  Raises
      [Invalid_argument] exactly when the copy-based {!fire} would. *)

  val undo : engine -> unit
  (** Reverts the most recent un-undone firing.  Raises
      [Invalid_argument] at depth 0. *)

  val undo_to : engine -> int -> unit
  (** [undo_to e d] pops firings until [depth e = d]. *)

  val snapshot : engine -> t
  (** Immutable copy of the current state (allocates). *)
end
