(** Packed TLTS states: a state serialized into a compact [Bytes.t]
    with its full-width Zobrist hash memoized, for the search's large
    memo tables.  The encoding picks the narrowest cell width (16, 32
    or 64-bit little-endian) that fits every marking/clock cell of the
    state, so equal states always encode to equal bytes, and the hash
    agrees with {!State.hash} on the same logical state. *)

type t = private {
  data : bytes;
  hash : int;
}

val pack :
  n_places:int ->
  n_transitions:int ->
  tokens:(Pnet.place_id -> int) ->
  clock:(Pnet.transition_id -> int) ->
  t
(** Serialize from accessors ([clock] returning [-1] for disabled
    transitions, as in {!State.t}). *)

val of_state : State.t -> t

val of_engine : State.Incremental.engine -> t
(** Pack the engine's current state without materializing a
    {!State.t}.  Reuses the engine's incrementally maintained
    {!State.Incremental.zhash}, so no cell is hashed at all — keying a
    search node costs one serialization scan. *)

val unpack : t -> int array
(** Decode every cell back, in pack order: the [n_places] marking cells
    followed by the [n_transitions] clock cells.  Inverse of {!pack}
    for any cell width. *)

val equal : t -> t -> bool

val hash : t -> int
(** Memoized; equals [State.hash] of the corresponding state. *)

val byte_size : t -> int

type table_stats = {
  entries : int;
  buckets : int;
  load : float;  (** entries / buckets *)
  collisions : int;  (** entries sharing a bucket with an earlier one *)
  max_bucket : int;
}

(** Hash tables keyed by packed states, plus occupancy introspection
    for the metrics flush at the end of a search. *)
module Table : sig
  include Hashtbl.S with type key = t

  val load_stats : 'a t -> table_stats
end

(** Lock-striped concurrent set of packed states — the parallel
    search's shared visited table.  2^k stripes selected by the low
    hash bits, each an independently-locked open-addressed table
    (linear probing, grown at ~3/4 load), so all operations on one key
    serialize through one mutex: the set is linearizable, and
    contention spreads 1/stripes for the uniform Zobrist hashes. *)
module Sharded : sig
  type table

  type stats = {
    stripes : int;
    entries : int;
    capacity : int;  (** total slots across stripes *)
    load : float;  (** entries / capacity *)
    collisions : int;  (** probe steps past home slots, cumulative *)
    contended : int;  (** [Mutex.try_lock] misses across all ops *)
  }

  val create : ?stripes:int -> ?expected:int -> unit -> table
  (** [stripes] (default 64) is rounded up to a power of two;
      [expected] pre-sizes the stripes for that many total entries. *)

  val add : table -> t -> bool
  (** [add t k] inserts [k]; [true] iff [k] was not already present —
      the atomic claim the parallel search races on. *)

  val mem : table -> t -> bool

  val length : table -> int
  (** Exact once all writers have quiesced; monotone under writers. *)

  val stats : table -> stats
end
