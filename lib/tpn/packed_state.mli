(** Packed TLTS states: a state serialized into a compact [Bytes.t]
    with its full-width FNV-1a hash memoized, for the search's large
    memo tables.  The encoding picks the narrowest cell width (16, 32
    or 64-bit little-endian) that fits every marking/clock cell of the
    state, so equal states always encode to equal bytes, and the hash
    agrees with {!State.hash} on the same logical state. *)

type t = private {
  data : bytes;
  hash : int;
}

val pack :
  n_places:int ->
  n_transitions:int ->
  tokens:(Pnet.place_id -> int) ->
  clock:(Pnet.transition_id -> int) ->
  t
(** Serialize from accessors ([clock] returning [-1] for disabled
    transitions, as in {!State.t}). *)

val of_state : State.t -> t

val of_engine : State.Incremental.engine -> t
(** Pack the engine's current state without materializing a
    {!State.t}. *)

val unpack : t -> int array
(** Decode every cell back, in pack order: the [n_places] marking cells
    followed by the [n_transitions] clock cells.  Inverse of {!pack}
    for any cell width. *)

val equal : t -> t -> bool

val hash : t -> int
(** Memoized; equals [State.hash] of the corresponding state. *)

val byte_size : t -> int

module Table : Hashtbl.S with type key = t
