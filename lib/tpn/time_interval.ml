type bound =
  | Finite of int
  | Infinity

type t = { eft : int; lft : bound }

let bound_le a b =
  match a, b with
  | _, Infinity -> true
  | Infinity, Finite _ -> false
  | Finite x, Finite y -> x <= y

let bound_min a b = if bound_le a b then a else b

let bound_add b q =
  match b with Finite x -> Finite (x + q) | Infinity -> Infinity

let bound_sub b q =
  match b with Finite x -> Finite (x - q) | Infinity -> Infinity

let make eft lft =
  if eft < 0 then invalid_arg "Time_interval.make: negative EFT";
  if lft < eft then invalid_arg "Time_interval.make: LFT < EFT";
  { eft; lft = Finite lft }

let make_unbounded eft =
  if eft < 0 then invalid_arg "Time_interval.make_unbounded: negative EFT";
  { eft; lft = Infinity }

let point q = make q q
let zero = point 0
let eft t = t.eft
let lft t = t.lft

let is_point t =
  match t.lft with Finite l -> l = t.eft | Infinity -> false

let contains t q = q >= t.eft && bound_le (Finite q) t.lft

let intersect a b =
  let eft = max a.eft b.eft in
  let lft = bound_min a.lft b.lft in
  if bound_le (Finite eft) lft then Some { eft; lft } else None

let shift t q =
  let eft = t.eft + q in
  if eft < 0 then invalid_arg "Time_interval.shift: negative EFT";
  { eft; lft = bound_add t.lft q }

let bound_to_string = function
  | Finite x -> string_of_int x
  | Infinity -> "inf"

let to_string t = Printf.sprintf "[%d, %s]" t.eft (bound_to_string t.lft)

let equal a b =
  a.eft = b.eft
  &&
  match a.lft, b.lft with
  | Finite x, Finite y -> x = y
  | Infinity, Infinity -> true
  | Finite _, Infinity | Infinity, Finite _ -> false

let pp fmt t = Format.pp_print_string fmt (to_string t)
