type t = {
  marking : int array;
  enabled : int array;
  domain : Dbm.t;
}

let enabled_ids c = Array.to_list c.enabled

let enabled_of_marking (net : Pnet.t) marking =
  let acc = ref [] in
  for tid = Pnet.transition_count net - 1 downto 0 do
    if State.marking_enables net marking tid then acc := tid :: !acc
  done;
  Array.of_list !acc

let static_bounds net tid =
  let itv = Pnet.interval net tid in
  let hi =
    match Time_interval.lft itv with
    | Time_interval.Finite l -> l
    | Time_interval.Infinity -> Dbm.infinity
  in
  (Time_interval.eft itv, hi)

let initial (net : Pnet.t) =
  let marking = Array.copy net.Pnet.m0 in
  let enabled = enabled_of_marking net marking in
  let domain = Dbm.create (Array.length enabled) in
  Array.iteri
    (fun i tid ->
      let lo, hi = static_bounds net tid in
      Dbm.constrain domain (i + 1) 0 hi;
      Dbm.constrain domain 0 (i + 1) (-lo))
    enabled;
  Dbm.canonicalize domain;
  { marking; enabled; domain }

let var_of c tid =
  let n = Array.length c.enabled in
  let rec go i =
    if i >= n then None else if c.enabled.(i) = tid then Some (i + 1) else go (i + 1)
  in
  go 0

(* Domain restricted to "tid fires first": θ_f <= θ_j for every other
   enabled j.  The class domain is canonical, so each added constraint
   is an O(n²) incremental tightening — and most are no-ops (the bound
   already holds), so the common cost is far below the full O(n³)
   re-canonicalization this used to pay. *)
let fires_first_domain c f_var =
  let d = Dbm.copy c.domain in
  for j = 1 to Dbm.dim d do
    if j <> f_var then Dbm.tighten d f_var j 0
  done;
  d

let time_firable c tid =
  match var_of c tid with
  | None -> false
  | Some f_var -> not (Dbm.is_empty (fires_first_domain c f_var))

let firable ?(priorities = true) net c =
  let candidates = List.filter (time_firable c) (enabled_ids c) in
  match candidates with
  | [] -> []
  | _ :: _ when not priorities -> candidates
  | _ :: _ ->
    let best =
      List.fold_left (fun acc tid -> min acc (Pnet.priority net tid)) max_int
        candidates
    in
    List.filter (fun tid -> Pnet.priority net tid = best) candidates

let delay_bounds _net c tid =
  match var_of c tid with
  | None ->
    invalid_arg
      (Printf.sprintf "State_class.delay_bounds: transition %d disabled" tid)
  | Some v -> Dbm.bounds c.domain v

let fire (net : Pnet.t) c tid =
  let f_var =
    match var_of c tid with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "State_class.fire: %s not enabled"
           (Pnet.transition_name net tid))
  in
  let fired = fires_first_domain c f_var in
  if Dbm.is_empty fired then
    invalid_arg
      (Printf.sprintf "State_class.fire: %s cannot fire first"
         (Pnet.transition_name net tid));
  let marking = Array.copy c.marking in
  Array.iter (fun (p, w) -> marking.(p) <- marking.(p) - w) net.Pnet.pre.(tid);
  Array.iter (fun (p, w) -> marking.(p) <- marking.(p) + w) net.Pnet.post.(tid);
  let enabled' = enabled_of_marking net marking in
  (* Def 3.1 persistence: enabled before and after, and not the fired
     transition itself. *)
  let persistent_var tid' =
    if tid' = tid then None
    else
      match var_of c tid' with
      | Some v when State.marking_enables net c.marking tid' -> Some v
      | Some _ | None -> None
  in
  let k = Array.length enabled' in
  let domain = Dbm.create k in
  (* Pass 1 — persistent block: a projection of the canonical [fired]
     matrix onto the kept variables (change of origin to θ_f).  A
     projection of a canonical DBM is canonical, and the untouched
     newly-enabled rows/columns stay at infinity, so the whole matrix
     is canonical after this pass. *)
  Array.iteri
    (fun i tid_i ->
      match persistent_var tid_i with
      | Some vi ->
        (* new variable is θ_i - θ_f *)
        Dbm.constrain domain (i + 1) 0 (Dbm.get fired vi f_var);
        Dbm.constrain domain 0 (i + 1) (Dbm.get fired f_var vi);
        Array.iteri
          (fun j tid_j ->
            if i <> j then
              match persistent_var tid_j with
              | Some vj -> Dbm.constrain domain (i + 1) (j + 1) (Dbm.get fired vi vj)
              | None -> ())
          enabled'
      | None -> ())
    enabled';
  (* Pass 2 — newly enabled variables: static bounds added one
     constraint at a time through the O(n²) incremental closure, which
     keeps the matrix canonical with no final Floyd–Warshall.  The
     closed form is unique, so the resulting class is bit-identical to
     the constrain-then-canonicalize construction this replaces. *)
  Array.iteri
    (fun i tid_i ->
      match persistent_var tid_i with
      | Some _ -> ()
      | None ->
        let lo, hi = static_bounds net tid_i in
        Dbm.tighten domain (i + 1) 0 hi;
        Dbm.tighten domain 0 (i + 1) (-lo))
    enabled';
  { marking; enabled = enabled'; domain }

let equal a b =
  a.marking = b.marking && a.enabled = b.enabled && Dbm.equal a.domain b.domain

let hash c =
  let h = ref (Dbm.hash c.domain) in
  Array.iter (fun x -> h := ((!h * 31) + x) land max_int) c.marking;
  !h

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

type stats = {
  classes : int;
  edges : int;
  deadlocks : int;
  truncated : bool;
}

let explore ?(max_classes = 100_000) ?(inclusion = false) net =
  let seen = Table.create 1024 in
  (* inclusion mode: domains seen per (marking, enabled) skeleton *)
  let skeletons : (int list * int list, Dbm.t list ref) Hashtbl.t =
    Hashtbl.create 1024
  in
  let queue = Queue.create () in
  let edges = ref 0 in
  let deadlocks = ref 0 in
  let truncated = ref false in
  let count () = if inclusion then Hashtbl.length skeletons else Table.length seen in
  let subsumed c =
    if not inclusion then Table.mem seen c
    else begin
      let key = (Array.to_list c.marking, Array.to_list c.enabled) in
      match Hashtbl.find_opt skeletons key with
      | None -> false
      | Some domains -> List.exists (Dbm.subset c.domain) !domains
    end
  in
  let remember c =
    if inclusion then begin
      let key = (Array.to_list c.marking, Array.to_list c.enabled) in
      match Hashtbl.find_opt skeletons key with
      | Some domains -> domains := c.domain :: !domains
      | None -> Hashtbl.replace skeletons key (ref [ c.domain ])
    end
    else Table.replace seen c ()
  in
  let classes_stored = ref 0 in
  let visit c =
    if not (subsumed c) then begin
      ignore (count ());
      if !classes_stored >= max_classes then truncated := true
      else begin
        incr classes_stored;
        remember c;
        Queue.push c queue
      end
    end
  in
  visit (initial net);
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    match firable net c with
    | [] -> if c.enabled = [||] then incr deadlocks
    | firables ->
      List.iter
        (fun tid ->
          incr edges;
          visit (fire net c tid))
        firables
  done;
  {
    classes = !classes_stored;
    edges = !edges;
    deadlocks = !deadlocks;
    truncated = !truncated;
  }

type marking_comparison = {
  common : int;
  classes_only : int;
  discrete_only : int;
}

let compare_reachable_markings ?(max_states = 50_000) net =
  let markings_of_classes = Hashtbl.create 256 in
  let seen = Table.create 256 in
  let queue = Queue.create () in
  let visit c =
    if (not (Table.mem seen c)) && Table.length seen < max_states then begin
      Table.replace seen c ();
      Hashtbl.replace markings_of_classes (Array.to_list c.marking) ();
      Queue.push c queue
    end
  in
  visit (initial net);
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    List.iter (fun tid -> visit (fire net c tid)) (firable net c)
  done;
  let markings_of_states = Hashtbl.create 256 in
  let record (s : State.t) =
    Hashtbl.replace markings_of_states (Array.to_list s.State.marking) ()
  in
  let (_ : Tlts.stats) = Tlts.explore ~max_states ~on_state:record net in
  let common = ref 0 and classes_only = ref 0 and discrete_only = ref 0 in
  Hashtbl.iter
    (fun m () ->
      if Hashtbl.mem markings_of_states m then incr common
      else incr classes_only)
    markings_of_classes;
  Hashtbl.iter
    (fun m () ->
      if not (Hashtbl.mem markings_of_classes m) then incr discrete_only)
    markings_of_states;
  { common = !common; classes_only = !classes_only;
    discrete_only = !discrete_only }

let reachable_markings_agree ?max_states net =
  let cmp = compare_reachable_markings ?max_states net in
  cmp.classes_only = 0 && cmp.discrete_only = 0
