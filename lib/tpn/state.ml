type t = {
  marking : int array;
  clocks : int array;
}

(* Instrumentation: state-vector cell writes per firing engine, used by
   the benchmark harness to compare the copying rule against the
   incremental one.  Plain ints — approximate under parallel search,
   exact in the single-domain benchmarks. *)
let copy_writes = ref 0
let incremental_writes = ref 0
let fires = ref 0

let reset_write_counters () =
  copy_writes := 0;
  incremental_writes := 0;
  fires := 0

let write_counters () = (!copy_writes, !incremental_writes, !fires)

let marking_enables (net : Pnet.t) marking tid =
  Array.for_all (fun (p, w) -> marking.(p) >= w) net.pre.(tid)

let initial (net : Pnet.t) =
  let marking = Array.copy net.m0 in
  let clocks =
    Array.init (Pnet.transition_count net) (fun tid ->
        if marking_enables net marking tid then 0 else -1)
  in
  { marking; clocks }

let is_enabled s tid = s.clocks.(tid) >= 0

let enabled_ids s =
  let acc = ref [] in
  for tid = Array.length s.clocks - 1 downto 0 do
    if s.clocks.(tid) >= 0 then acc := tid :: !acc
  done;
  !acc

let tokens s p = s.marking.(p)

let check_enabled who s tid =
  if not (is_enabled s tid) then
    invalid_arg (Printf.sprintf "State.%s: transition %d is not enabled" who tid)

let dlb net s tid =
  check_enabled "dlb" s tid;
  max 0 (Time_interval.eft (Pnet.interval net tid) - s.clocks.(tid))

let dub net s tid =
  check_enabled "dub" s tid;
  Time_interval.bound_sub (Time_interval.lft (Pnet.interval net tid)) s.clocks.(tid)

let min_dub net s =
  let best = ref Time_interval.Infinity in
  Array.iteri
    (fun tid clock ->
      if clock >= 0 then best := Time_interval.bound_min !best (dub net s tid))
    s.clocks;
  !best

let candidates net s =
  let limit = min_dub net s in
  List.filter
    (fun tid -> Time_interval.bound_le (Time_interval.Finite (dlb net s tid)) limit)
    (enabled_ids s)

let fireable net s =
  match candidates net s with
  | [] -> []
  | cands ->
    let best =
      List.fold_left
        (fun acc tid -> min acc (Pnet.priority net tid))
        max_int cands
    in
    List.filter (fun tid -> Pnet.priority net tid = best) cands

let firing_domain net s tid =
  check_enabled "firing_domain" s tid;
  (dlb net s tid, min_dub net s)

let fire (net : Pnet.t) s tid q =
  check_enabled "fire" s tid;
  let lo, hi = firing_domain net s tid in
  if q < lo || not (Time_interval.bound_le (Time_interval.Finite q) hi) then
    invalid_arg
      (Printf.sprintf "State.fire: time %d outside firing domain [%d, %s] of %s"
         q lo (Time_interval.bound_to_string hi) (Pnet.transition_name net tid));
  let marking = Array.copy s.marking in
  Array.iter (fun (p, w) -> marking.(p) <- marking.(p) - w) net.pre.(tid);
  Array.iter (fun (p, w) -> marking.(p) <- marking.(p) + w) net.post.(tid);
  let clocks =
    Array.init (Array.length s.clocks) (fun tk ->
        if not (marking_enables net marking tk) then -1
        else if tk = tid || s.clocks.(tk) < 0 then 0
        else s.clocks.(tk) + q)
  in
  incr fires;
  copy_writes :=
    !copy_writes + Array.length marking + Array.length clocks
    + Array.length net.pre.(tid) + Array.length net.post.(tid);
  { marking; clocks }

let equal a b =
  let arr_equal xs ys =
    Array.length xs = Array.length ys
    &&
    let rec go i = i >= Array.length xs || (xs.(i) = ys.(i) && go (i + 1)) in
    go 0
  in
  arr_equal a.marking b.marking && arr_equal a.clocks b.clocks

(* Zobrist hashing: the hash of a state is the XOR of one contribution
   per marking cell and one per *enabled* clock cell.  XOR makes the
   hash incrementally maintainable — firing a transition only touches
   the contributions of the cells it changes, and undo restores the
   saved word — which is what lets the incremental engine key a search
   node without re-hashing the whole state vector.  The contribution
   "table" is virtual: cell values are unbounded (clocks run to the
   hyper-period), so contributions are computed on demand by a
   splitmix-style finalizer instead of being precomputed.  Like the
   earlier full-word FNV, every bit of every cell perturbs the hash. *)
module Zobrist = struct
  (* SplitMix64-style finalizer truncated to OCaml's native word; the
     constants are 62-bit-safe.  [land max_int] keeps results
     non-negative so XOR-combinations stay non-negative too. *)
  let mix x =
    let x = x * 0x2545F4914F6CDD1D in
    let x = (x lxor (x lsr 30)) * 0x3C79AC492BA7B653 in
    let x = (x lxor (x lsr 27)) * 0x1C69B3F74AC4AE35 in
    (x lxor (x lsr 31)) land max_int

  (* Place and clock contributions draw from disjoint pre-images (the
     inner argument's parity) so a marking cell can never cancel a
     clock cell with the same index and value. *)
  let place p v = mix (mix ((v lsl 1) lor 0) + (p * 0x9E3779B97F4A7C))
  let clock t c = mix (mix ((c lsl 1) lor 1) + (t * 0x9E3779B97F4A7C))

  let of_cells ~n_places ~n_transitions ~tokens ~clocks =
    let h = ref 0 in
    for p = 0 to n_places - 1 do
      h := !h lxor place p (tokens p)
    done;
    for t = 0 to n_transitions - 1 do
      let c = clocks t in
      if c >= 0 then h := !h lxor clock t c
    done;
    !h
end

let hash s =
  Zobrist.of_cells
    ~n_places:(Array.length s.marking)
    ~n_transitions:(Array.length s.clocks)
    ~tokens:(fun p -> s.marking.(p))
    ~clocks:(fun t -> s.clocks.(t))

let pp net fmt s =
  let marked = ref [] in
  Array.iteri
    (fun p n ->
      if n > 0 then
        marked := Printf.sprintf "%s:%d" (Pnet.place_name net p) n :: !marked)
    s.marking;
  let clocked = ref [] in
  Array.iteri
    (fun tid c ->
      if c >= 0 then
        clocked :=
          Printf.sprintf "%s@%d" (Pnet.transition_name net tid) c :: !clocked)
    s.clocks;
  Format.fprintf fmt "{m: %s | c: %s}"
    (String.concat ", " (List.rev !marked))
    (String.concat ", " (List.rev !clocked))

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(* ------------------------------------------------------------------ *)
(* Incremental firing engine.

   The copy-based [fire] above allocates a fresh clock vector and
   re-derives enabledness of every transition on every firing —
   O(|T|·|F|) per step.  The engine below maintains one mutable state
   in place and exploits two facts:

   - enabledness can only change for transitions adjacent (through
     [Pnet.consumers]) to a place whose marking the firing touched, so
     a firing inspects O(arcs of t) transitions instead of |T|;
   - clocks need not be advanced individually: the engine keeps a
     global elapsed time [now] and per-transition enabling stamps
     [enabled_at], with clock(t) = now - enabled_at(t), so letting q
     units pass writes one cell instead of |enabled|.

   Every mutation is recorded on an undo trail so a depth-first search
   backtracks by popping frames instead of keeping parent copies.  The
   candidate analysis (dlb/dub/min_dub/fireable) runs as one fused pass
   over the maintained enabled-set and is cached until the next
   fire/undo. *)

module Incremental = struct
  type engine = {
    net : Pnet.t;
    marking : int array;
    enabled_at : int array;  (* meaningful only while in the enabled set *)
    mutable now : int;
    (* dense enabled set with positional index *)
    enabled : int array;  (* first [n_enabled] cells are the enabled tids *)
    pos : int array;  (* pos.(t) = index into [enabled], or -1 *)
    mutable n_enabled : int;
    (* undo trail: a growable int stack of per-fire frames *)
    mutable trail : int array;
    mutable trail_len : int;
    mutable depth : int;
    (* incrementally maintained Zobrist hash of the current state;
       always equals [hash (snapshot e)] *)
    mutable zhash : int;
    (* fused candidate analysis, invalidated by fire/undo *)
    mutable cache_valid : bool;
    mutable cached_min_dub : Time_interval.bound;
    mutable cached_candidates : Pnet.transition_id list;
    mutable cached_fireable : Pnet.transition_id list;
    scratch_dlb : int array;
  }

  let push e x =
    if e.trail_len = Array.length e.trail then begin
      let bigger = Array.make (2 * Array.length e.trail) 0 in
      Array.blit e.trail 0 bigger 0 e.trail_len;
      e.trail <- bigger
    end;
    e.trail.(e.trail_len) <- x;
    e.trail_len <- e.trail_len + 1

  let pop e =
    e.trail_len <- e.trail_len - 1;
    e.trail.(e.trail_len)

  let create (net : Pnet.t) =
    let n_places = Pnet.place_count net in
    let n_trans = Pnet.transition_count net in
    let e =
      {
        net;
        marking = Array.copy net.m0;
        enabled_at = Array.make n_trans 0;
        now = 0;
        enabled = Array.make (max 1 n_trans) 0;
        pos = Array.make n_trans (-1);
        n_enabled = 0;
        trail = Array.make (max 16 (4 * (n_places + n_trans))) 0;
        trail_len = 0;
        depth = 0;
        zhash = 0;
        cache_valid = false;
        cached_min_dub = Time_interval.Infinity;
        cached_candidates = [];
        cached_fireable = [];
        scratch_dlb = Array.make n_trans 0;
      }
    in
    for tid = 0 to n_trans - 1 do
      if marking_enables net e.marking tid then begin
        e.pos.(tid) <- e.n_enabled;
        e.enabled.(e.n_enabled) <- tid;
        e.n_enabled <- e.n_enabled + 1
      end
    done;
    e.zhash <-
      Zobrist.of_cells ~n_places ~n_transitions:n_trans
        ~tokens:(fun p -> e.marking.(p))
        ~clocks:(fun t -> if e.pos.(t) >= 0 then 0 else -1);
    e

  let net e = e.net
  let depth e = e.depth
  let now e = e.now
  let tokens e p = e.marking.(p)
  let is_enabled e tid = e.pos.(tid) >= 0
  let clock e tid = if e.pos.(tid) >= 0 then e.now - e.enabled_at.(tid) else -1
  let zhash e = e.zhash

  let check_enabled who e tid =
    if e.pos.(tid) < 0 then
      invalid_arg
        (Printf.sprintf "State.Incremental.%s: transition %d is not enabled"
           who tid)

  let dlb e tid =
    check_enabled "dlb" e tid;
    max 0 (Time_interval.eft (Pnet.interval e.net tid) - (e.now - e.enabled_at.(tid)))

  let dub e tid =
    check_enabled "dub" e tid;
    Time_interval.bound_sub
      (Time_interval.lft (Pnet.interval e.net tid))
      (e.now - e.enabled_at.(tid))

  (* Single fused pass: dynamic bounds, min DUB, candidate set and the
     priority-filtered fireable set, in ascending transition order so
     the search explores exactly the order of the copy-based oracle. *)
  let ensure_cache e =
    if not e.cache_valid then begin
      let min_dub = ref Time_interval.Infinity in
      for i = 0 to e.n_enabled - 1 do
        let tid = e.enabled.(i) in
        let c = e.now - e.enabled_at.(tid) in
        let itv = Pnet.interval e.net tid in
        e.scratch_dlb.(tid) <- max 0 (Time_interval.eft itv - c);
        min_dub :=
          Time_interval.bound_min !min_dub
            (Time_interval.bound_sub (Time_interval.lft itv) c)
      done;
      let limit = !min_dub in
      let cands = ref [] and best = ref max_int in
      for i = 0 to e.n_enabled - 1 do
        let tid = e.enabled.(i) in
        if Time_interval.bound_le (Time_interval.Finite e.scratch_dlb.(tid)) limit
        then begin
          cands := tid :: !cands;
          let pri = Pnet.priority e.net tid in
          if pri < !best then best := pri
        end
      done;
      let cands = List.sort compare !cands in
      e.cached_min_dub <- limit;
      e.cached_candidates <- cands;
      e.cached_fireable <-
        List.filter (fun tid -> Pnet.priority e.net tid = !best) cands;
      e.cache_valid <- true
    end

  let min_dub e =
    ensure_cache e;
    e.cached_min_dub

  let candidates e =
    ensure_cache e;
    e.cached_candidates

  let fireable e =
    ensure_cache e;
    e.cached_fireable

  let firing_domain e tid =
    check_enabled "firing_domain" e tid;
    ensure_cache e;
    (e.scratch_dlb.(tid), e.cached_min_dub)

  let set_add e tid =
    e.pos.(tid) <- e.n_enabled;
    e.enabled.(e.n_enabled) <- tid;
    e.n_enabled <- e.n_enabled + 1

  let set_remove e tid =
    let i = e.pos.(tid) in
    let last = e.enabled.(e.n_enabled - 1) in
    e.enabled.(i) <- last;
    e.pos.(last) <- i;
    e.n_enabled <- e.n_enabled - 1;
    e.pos.(tid) <- -1

  (* Trail frame, pushed bottom-up:
       old_now, old_zhash
       (old_tokens, place) x k,        k
       (old_enabled_at | -1, tid) x m, m
     The -1 sentinel means the transition was disabled before the
     record.  Records replay in reverse on undo, so a cell touched
     twice lands back on its first pre-image; the saved hash word makes
     undo restore the Zobrist hash bit-for-bit without recomputing. *)

  let fire e tid q =
    check_enabled "fire" e tid;
    ensure_cache e;
    let lo = e.scratch_dlb.(tid) and hi = e.cached_min_dub in
    if q < lo || not (Time_interval.bound_le (Time_interval.Finite q) hi) then
      invalid_arg
        (Printf.sprintf
           "State.Incremental.fire: time %d outside firing domain [%d, %s] of %s"
           q lo
           (Time_interval.bound_to_string hi)
           (Pnet.transition_name e.net tid));
    let net = e.net in
    push e e.now;
    push e e.zhash;
    let h = ref e.zhash in
    (* Letting q time units pass advances the clock of *every* enabled
       transition, so their hash contributions shift from c to c + q.
       O(enabled) XORs — still far cheaper than rehashing the state,
       and free on the q = 0 firings that dominate eager chains. *)
    if q > 0 then
      for i = 0 to e.n_enabled - 1 do
        let t = e.enabled.(i) in
        let c = e.now - e.enabled_at.(t) in
        h := !h lxor Zobrist.clock t c lxor Zobrist.clock t (c + q)
      done;
    e.now <- e.now + q;
    let writes = ref 1 in
    (* token moves, recording every touched place *)
    let places_changed = ref 0 in
    let touch p delta =
      push e e.marking.(p);
      push e p;
      h := !h lxor Zobrist.place p e.marking.(p);
      e.marking.(p) <- e.marking.(p) + delta;
      h := !h lxor Zobrist.place p e.marking.(p);
      incr places_changed;
      incr writes
    in
    Array.iter (fun (p, w) -> touch p (-w)) net.pre.(tid);
    Array.iter (fun (p, w) -> touch p w) net.post.(tid);
    push e !places_changed;
    (* enabledness can change only for consumers of touched places *)
    let trans_changed = ref 0 in
    let record_trans t old_at =
      push e old_at;
      push e t;
      incr trans_changed;
      incr writes
    in
    let recheck t =
      let enabled_now = marking_enables net e.marking t in
      let was = e.pos.(t) >= 0 in
      if enabled_now && not was then begin
        record_trans t (-1);
        set_add e t;
        e.enabled_at.(t) <- e.now;
        h := !h lxor Zobrist.clock t 0
      end
      else if (not enabled_now) && was then begin
        record_trans t e.enabled_at.(t);
        (* contribution already advanced to the post-q clock above *)
        h := !h lxor Zobrist.clock t (e.now - e.enabled_at.(t));
        set_remove e t
      end
    in
    let scan arcs =
      Array.iter
        (fun ((p : int), _) -> Array.iter recheck net.consumers.(p))
        arcs
    in
    scan net.pre.(tid);
    scan net.post.(tid);
    (* Def 3.1: the fired transition's clock restarts when it remains
       enabled (a newly re-enabled one already carries [now]) *)
    if e.pos.(tid) >= 0 && e.enabled_at.(tid) <> e.now then begin
      record_trans tid e.enabled_at.(tid);
      h := !h lxor Zobrist.clock tid (e.now - e.enabled_at.(tid))
           lxor Zobrist.clock tid 0;
      e.enabled_at.(tid) <- e.now
    end;
    push e !trans_changed;
    e.zhash <- !h;
    e.depth <- e.depth + 1;
    e.cache_valid <- false;
    incr fires;
    incremental_writes := !incremental_writes + !writes

  let undo e =
    if e.depth = 0 then invalid_arg "State.Incremental.undo: at the root";
    let m = pop e in
    for _ = 1 to m do
      let tid = pop e in
      let old_at = pop e in
      if old_at < 0 then set_remove e tid
      else begin
        if e.pos.(tid) < 0 then set_add e tid;
        e.enabled_at.(tid) <- old_at
      end
    done;
    let k = pop e in
    for _ = 1 to k do
      let p = pop e in
      let old = pop e in
      e.marking.(p) <- old
    done;
    e.zhash <- pop e;
    e.now <- pop e;
    e.depth <- e.depth - 1;
    e.cache_valid <- false

  let undo_to e target =
    if target < 0 || target > e.depth then
      invalid_arg "State.Incremental.undo_to: bad target depth";
    while e.depth > target do
      undo e
    done

  let snapshot e =
    {
      marking = Array.copy e.marking;
      clocks = Array.init (Pnet.transition_count e.net) (fun tid -> clock e tid);
    }
end
