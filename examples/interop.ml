(* Interoperability and analysis walkthrough: export a generated time
   Petri net to PNML (the ISO/IEC 15909-2 transfer format the paper
   adopts), read it back, clean it up structurally, and prove resource
   safety twice — once by exhaustive reachability and once by place
   invariants.

   Run with:  dune exec examples/interop.exe *)

open Ezrealtime

let () =
  let spec = Case_studies.fig4_exclusion in
  let model = Translate.translate spec in
  let net = model.Translate.net in
  Format.printf "source net: %a@." Pnet.pp_summary net;

  (* 1. PNML round-trip, as another tool (TINA, Romeo, ...) would
     consume it. *)
  let doc = Pnml.to_string net in
  Format.printf "PNML document: %d bytes@." (String.length doc);
  let reloaded =
    match Pnml.of_string doc with
    | Ok reloaded -> reloaded
    | Error e -> failwith (Pnml.error_to_string e)
  in
  Format.printf "reloaded:   %a@." Pnet.pp_summary reloaded;

  (* 2. Structural cleanup is the identity on generated nets. *)
  let cleaned = Reduce.cleanup reloaded in
  Format.printf "cleanup removed %d transitions, %d places (generated nets \
                 are clean)@."
    (List.length cleaned.Reduce.removed_transitions)
    (List.length cleaned.Reduce.removed_places);

  (* 3. Behavioural proof: explore every reachable state and check the
     processor and the exclusion slot never hold two tokens. *)
  let report = Analysis.reachability_report ~max_states:100_000 reloaded in
  Format.printf
    "reachability: %d states, %d edges; every resource place 1-safe: %b@."
    report.Analysis.reachable_states report.Analysis.edges
    (List.for_all
       (fun p -> Analysis.is_safe_place report p)
       model.Translate.resource_places);

  (* 4. Structural proof of the same fact, without any state space:
     place invariants cover each resource with bound constant/weight =
     1. *)
  let invariants =
    Invariants.invariants_of (Invariants.p_invariants ~max_rows:20_000 reloaded)
  in
  Format.printf "place invariants found: %d@." (List.length invariants);
  List.iter
    (fun place ->
      match Invariants.invariant_covering reloaded place invariants with
      | Some y ->
        Format.printf "  %-14s bounded at %d token(s) structurally@."
          (Pnet.place_name reloaded place)
          (Invariants.conserved_constant reloaded y / y.(place))
      | None ->
        Format.printf "  %-14s not covered by any invariant@."
          (Pnet.place_name reloaded place))
    model.Translate.resource_places;

  (* 5. Reachability queries (the paper's "checking properties"). *)
  List.iter
    (fun q ->
      Format.printf "  %-34s %s@." q
        (Query.verdict_to_string (Query.check_exn reloaded q)))
    [
      "AG pexcl_T0_T2 <= 1";
      "AG pwx_T0 + pwx_T2 <= 1";
      "EF pend >= 1";
    ];

  (* 6. Graphviz export for the paper's figures. *)
  Out_channel.with_open_text "fig4.dot" (fun oc ->
      Out_channel.output_string oc (Dot.to_dot reloaded));
  Format.printf "wrote fig4.dot (render with: dot -Tpdf fig4.dot)@."
