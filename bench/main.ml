(* Benchmark harness: regenerates every measurable table and figure of
   the paper (see DESIGN.md's experiment index) and runs one Bechamel
   micro-benchmark per experiment.

   Sections E1-E7 print paper-reported versus measured values;
   sections A1-A6 are the ablations DESIGN.md calls out. *)

open Ezrealtime

let line = String.make 72 '-'

let section id title =
  Format.printf "@.%s@.%s  %s@.%s@." line id title line

let solve ?options spec =
  let model = Translate.translate spec in
  let outcome, metrics = Search.find_schedule ?options model in
  (model, outcome, metrics)

let ms metrics = metrics.Search.elapsed_s *. 1000.

(* --- machine-readable output (BENCH_search.json) --------------------- *)
(* Besides the pretty tables, every search experiment appends a record
   here; the file lets CI track the perf trajectory across PRs. *)

let json_entries : (string * string) list ref = ref []

let add_json key fields =
  let body =
    String.concat ",\n    "
      (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields)
  in
  json_entries := (key, Printf.sprintf "{\n    %s\n  }" body) :: !json_entries

let jint = string_of_int
let jfloat f = Printf.sprintf "%.3f" f
let jbool = string_of_bool
let jstr s = Printf.sprintf "%S" s

(* Run metadata, first entry in the file: lets CI distinguish schema
   revisions and attribute a perf trajectory to the machine and
   compiler that produced it. *)
let record_meta () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  let generated_utc =
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  add_json "meta"
    [
      ("schema_version", jint 2);
      ("generated_utc", jstr generated_utc);
      ("hostname", jstr (Unix.gethostname ()));
      ("ocaml_version", jstr Sys.ocaml_version);
      ("ezrt_version", jstr version);
    ]

let states_per_s metrics =
  float_of_int metrics.Search.visited /. max 1e-9 metrics.Search.elapsed_s

let record_search exp ?options (name, spec) =
  let _, outcome, metrics = solve ?options spec in
  add_json exp
    [
      ("spec", jstr name);
      ("feasible", jbool (Result.is_ok outcome));
      ("stored_states", jint metrics.Search.stored);
      ("visited_states", jint metrics.Search.visited);
      ("elapsed_ms", jfloat (ms metrics));
      ("states_per_s", jfloat (states_per_s metrics));
    ]

let write_json path =
  let oc = open_out path in
  output_string oc "{\n";
  let entries = List.rev !json_entries in
  List.iteri
    (fun i (key, value) ->
      Printf.fprintf oc "  %S: %s%s\n" key value
        (if i = List.length entries - 1 then "" else ","))
    entries;
  output_string oc "}\n";
  close_out oc

(* --- E1: Table 1 + the quantitative case-study paragraph ----------- *)

let e1 () =
  section "E1" "Mine pump case study (Table 1, section 5)";
  let spec = Case_studies.mine_pump in
  Format.printf "%-6s %11s %8s %6s %9s@." "task" "computation" "deadline"
    "period" "instances";
  List.iter2
    (fun (t : Task.t) (_, n) ->
      Format.printf "%-6s %11d %8d %6d %9d@." t.Task.name t.Task.wcet
        t.Task.deadline t.Task.period n)
    spec.Spec.tasks
    (Spec.instance_counts spec);
  let model, outcome, metrics = solve spec in
  let feasible, certified =
    match outcome with
    | Ok schedule ->
      let segments = Timeline.of_schedule model schedule in
      (true, Result.is_ok (Validator.check model segments))
    | Error _ -> (false, false)
  in
  Format.printf "@.%-34s %14s %14s@." "" "paper (2008)" "measured";
  Format.printf "%-34s %14d %14d@." "task instances" 782
    (Spec.total_instances spec);
  Format.printf "%-34s %14d %14d@." "hyper-period" 30000
    (Spec.hyperperiod spec);
  Format.printf "%-34s %14d %14d@." "states searched" 3268
    metrics.Search.stored;
  Format.printf "%-34s %14d %14d@." "minimum states (see DESIGN.md)" 3130
    (Translate.minimum_states model);
  Format.printf "%-34s %14.0f %14.1f@." "search time (ms)" 330. (ms metrics);
  Format.printf "%-34s %14s %14b@." "feasible schedule found" "yes" feasible;
  Format.printf "%-34s %14s %14b@." "independently certified" "n/a" certified;
  record_search "E1" ("mine-pump", spec);
  (* seed (copy-based) engine versus the incremental engine on the same
     search, with per-fire state-vector writes from the State counters *)
  let run incremental =
    State.reset_write_counters ();
    let t0 = Unix.gettimeofday () in
    let outcome, m =
      Search.find_schedule
        ~options:{ Search.default_options with incremental }
        model
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let copy_w, incr_w, fires = State.write_counters () in
    (outcome, m, elapsed, (if incremental then incr_w else copy_w), fires)
  in
  let seed_outcome, seed_m, seed_t, seed_writes, seed_fires = run false in
  let incr_outcome, incr_m, incr_t, incr_writes, incr_fires = run true in
  let writes_per_fire w f = float_of_int w /. float_of_int (max 1 f) in
  let seed_wpf = writes_per_fire seed_writes seed_fires in
  let incr_wpf = writes_per_fire incr_writes incr_fires in
  let identical =
    match (seed_outcome, incr_outcome) with
    | Ok a, Ok b -> a.Schedule.entries = b.Schedule.entries
    | Error a, Error b -> a = b
    | _ -> false
  in
  let speedup = seed_t /. max 1e-9 incr_t in
  Format.printf "@.engine comparison (seed copy-based vs incremental):@.";
  Format.printf "%-34s %14s %14s@." "" "seed" "incremental";
  Format.printf "%-34s %14.1f %14.1f@." "search time (ms)" (seed_t *. 1000.)
    (incr_t *. 1000.);
  Format.printf "%-34s %14.1f %14.1f@." "state-vector writes per fire"
    seed_wpf incr_wpf;
  Format.printf "%-34s %14d %14d@." "firings" seed_fires incr_fires;
  Format.printf "write reduction: %.1fx   speedup: %.2fx   schedules identical: %b@."
    (seed_wpf /. max 1e-9 incr_wpf) speedup identical;
  add_json "E1_engine_comparison"
    [
      ("spec", jstr "mine-pump");
      ("seed_elapsed_ms", jfloat (seed_t *. 1000.));
      ("incremental_elapsed_ms", jfloat (incr_t *. 1000.));
      ("seed_states_per_s", jfloat (states_per_s seed_m));
      ("incremental_states_per_s", jfloat (states_per_s incr_m));
      ("seed_writes_per_fire", jfloat seed_wpf);
      ("incremental_writes_per_fire", jfloat incr_wpf);
      ("write_reduction", jfloat (seed_wpf /. max 1e-9 incr_wpf));
      ("speedup", jfloat speedup);
      ("schedules_identical", jbool identical);
    ]

(* --- E2: the Fig 8 schedule table ----------------------------------- *)

let e2 () =
  section "E2" "Preemptive schedule table (Fig 8)";
  let artifact = synthesize_exn Case_studies.fig8_preemptive in
  print_string (Emit.schedule_table artifact.model artifact.table);
  let resumes =
    List.length (List.filter (fun i -> i.Table.resumed) artifact.table)
  in
  let preempts =
    List.length
      (List.filter (fun i -> i.Table.preempts <> None) artifact.table)
  in
  Format.printf "@.%-34s %14s %14s@." "" "paper (Fig 8)" "measured";
  Format.printf "%-34s %14d %14d@." "table rows" 11
    (List.length artifact.table);
  Format.printf "%-34s %14d %14d@." "resume rows (flag=true)" 5 resumes;
  Format.printf "%-34s %14d %14d@." "preempting rows" 5 preempts;
  Format.printf "%-34s %14s %14s@." "row vocabulary"
    "start/preempt/resume" "same";
  record_search "E2" ("fig8-preemptive", Case_studies.fig8_preemptive)

(* --- E3 / E4: relation models (Figs 3 and 4) ------------------------ *)

let relation_report spec expectations =
  let model, outcome, metrics = solve spec in
  let net = model.Translate.net in
  Format.printf "net: %a@." Pnet.pp_summary net;
  List.iter
    (fun node ->
      Format.printf "  figure node %-16s present: %b@." node
        (Pnet.find_transition_opt net node <> None
         || Pnet.find_place_opt net node <> None))
    expectations;
  match outcome with
  | Ok schedule ->
    let segments = Timeline.of_schedule model schedule in
    Format.printf "feasible schedule (%d states, %.1f ms); timeline:@.%a"
      metrics.Search.stored (ms metrics)
      (Timeline.pp model) segments;
    (match Validator.check model segments with
    | Ok () -> Format.printf "certified: every relation constraint holds@."
    | Error vs ->
      List.iter
        (fun v ->
          Format.printf "VIOLATION: %s@." (Validator.violation_to_string v))
        vs)
  | Error f -> Format.printf "NO SCHEDULE: %s@." (Search.failure_to_string f)

let e3 () =
  section "E3" "Precedence relation model (Fig 3)";
  relation_report Case_studies.fig3_precedence
    [ "tprec_T1_T2"; "pwp_T1_T2"; "pprec_T1_T2"; "tr_T1"; "tc_T2"; "td_T2" ];
  record_search "E3" ("fig3-precedence", Case_studies.fig3_precedence)

let e4 () =
  section "E4" "Exclusion relation model (Fig 4)";
  relation_report Case_studies.fig4_exclusion
    [ "pexcl_T0_T2"; "te_T0"; "te_T2"; "tr_T0"; "tf_T2" ];
  let model = Translate.translate Case_studies.fig4_exclusion in
  let report =
    Analysis.reachability_report ~max_states:50_000 model.Translate.net
  in
  Format.printf
    "reachability: %d states, resource places 1-safe everywhere: %b@."
    report.Analysis.reachable_states
    (List.for_all
       (fun p -> Analysis.is_safe_place report p)
       model.Translate.resource_places);
  record_search "E4" ("fig4-exclusion", Case_studies.fig4_exclusion)

(* --- E5: building-block inventory (Figs 1-2) ------------------------ *)

let e5 () =
  section "E5" "Building blocks (Figs 1 and 2)";
  let fig8 = Translate.translate Case_studies.fig8_preemptive in
  let mine = Translate.translate Case_studies.mine_pump in
  Format.printf
    "non-preemptive task cost: 10 places + 8 transitions per task (plus a \
     wait stage when r > 0)@.";
  Format.printf "  mine pump: 10 tasks + pproc/pstart/pend + cycle watchdog \
                 -> |P| = %d, |T| = %d@."
    (Pnet.place_count mine.Translate.net)
    (Pnet.transition_count mine.Translate.net);
  Format.printf "  fig8 (preemptive): 4 tasks -> |P| = %d, |T| = %d@."
    (Pnet.place_count fig8.Translate.net)
    (Pnet.transition_count fig8.Translate.net);
  Format.printf "block inventory (paper Figs 1-2 vs constructed):@.";
  List.iter
    (fun (block, paper_nodes, ours) ->
      Format.printf "  %-24s figure: %-12s ours: %s@." block paper_nodes ours)
    [
      ("fork", "1 pl + 1 tr", "pstart, tstart [0,0]");
      ("join", "1 pl + 1 tr", "pend, tend [0,0], weighted N(ti) inputs");
      ("periodic arrival", "2 pl + 2 tr", "tph [ph,ph], ta [p,p], pwa weight N-1");
      ("deadline checking", "3 pl + 2 tr", "td [d,d], tpc [0,0]");
      ("np task structure", "5 pl + 4 tr", "tr [r,d-c], tg [0,0], tc [c,c], tf [0,0]");
      ("preemptive structure", "5 pl + 4 tr", "tc [1,1] per unit, tf weight c");
      ("processor", "1 marked pl", "pproc, 1-safe (E4 check)");
    ];
  record_search "E5" ("flight-control", Case_studies.flight_control)

(* --- E6: the DSL document (Fig 7) ----------------------------------- *)

let e6 () =
  section "E6" "XML DSL (Fig 7)";
  let spec = Case_studies.mine_pump in
  let doc = Dsl.to_string spec in
  Format.printf "mine-pump document: %d bytes@." (String.length doc);
  (match Dsl.of_string doc with
  | Ok spec' ->
    Format.printf "round-trip: %d tasks parsed back, hyper-periods equal: %b@."
      (List.length spec'.Spec.tasks)
      (Spec.hyperperiod spec' = Spec.hyperperiod spec)
  | Error e -> Format.printf "ROUND-TRIP FAILED: %s@." (Dsl.error_to_string e));
  Format.printf "fig3 document (compare paper Fig 7):@.%s"
    (Dsl.to_string Case_studies.fig3_precedence);
  record_search "E6" ("quickstart", Case_studies.quickstart)

(* --- E7: PNML export (section 4.1) ----------------------------------- *)

let e7 () =
  section "E7" "PNML export/import (ISO/IEC 15909-2)";
  List.iter
    (fun (name, spec) ->
      let net = (Translate.translate spec).Translate.net in
      let doc = Pnml.to_string net in
      match Pnml.of_string doc with
      | Ok net' ->
        Format.printf
          "%-12s |P|=%-3d |T|=%-3d document: %6d bytes, round-trip equal: %b@."
          name (Pnet.place_count net)
          (Pnet.transition_count net)
          (String.length doc)
          (Pnet.place_count net' = Pnet.place_count net
           && Pnet.transition_count net' = Pnet.transition_count net
           && Pnet.arc_count net' = Pnet.arc_count net)
      | Error e ->
        Format.printf "%-12s FAILED: %s@." name (Pnml.error_to_string e))
    Case_studies.all;
  record_search "E7"
    ~options:{ Search.default_options with latest_release = true }
    ("greedy-trap", Case_studies.greedy_trap)

(* --- E8: property checking (abstract: "checking properties") --------- *)

let e8 () =
  section "E8" "Property checking (reachability queries on the models)";
  List.iter
    (fun (name, spec, queries) ->
      let model = Translate.translate spec in
      Format.printf "%s:@." name;
      List.iter
        (fun q ->
          match Query.parse q with
          | Error msg -> Format.printf "  %-44s syntax error: %s@." q msg
          | Ok query -> (
            match Query.check ~max_states:100_000 model.Translate.net query with
            | Ok verdict ->
              let shown =
                match verdict with
                | Query.Holds [] -> "holds"
                | Query.Holds w ->
                  Printf.sprintf "holds (witness: %d firings)" (List.length w)
                | Query.Fails [] -> "does not hold"
                | Query.Fails w ->
                  Printf.sprintf "FAILS (counterexample: %d firings)"
                    (List.length w)
                | Query.Unknown -> "unknown"
              in
              Format.printf "  %-44s %s@." q shown
            | Error msg -> Format.printf "  %-44s %s@." q msg))
        queries)
    [
      ( "fig3",
        Case_studies.fig3_precedence,
        [
          "AG pproc <= 1";
          "AG pdm_T1 = 0 && pdm_T2 = 0";
          "EF pend >= 1";
          "AG (pwc_T2 = 0 || pf_T1 + pe_T1 >= 1)";
        ] );
      ( "fig4",
        Case_studies.fig4_exclusion,
        [
          "AG pexcl_T0_T2 <= 1";
          "AG pwx_T0 + pwx_T2 <= 1";
          "EF pend >= 1";
        ] );
      ( "quickstart",
        Case_studies.quickstart,
        [ "EF pend >= 1"; "EF deadlock"; "AG pproc <= 1" ] );
    ]

(* --- A1: partial-order pruning ablation ------------------------------ *)

let a1 () =
  section "A1" "Ablation: partial-order reduction (section 4.4.1)";
  Format.printf "%-12s %26s %26s@." "spec" "with pruning" "without pruning";
  List.iter
    (fun (name, spec) ->
      let run partial_order =
        let options = { Search.default_options with partial_order } in
        let _, outcome, metrics = solve ~options spec in
        match outcome with
        | Ok _ ->
          Printf.sprintf "%d states / %.1f ms" metrics.Search.stored
            (ms metrics)
        | Error f -> Search.failure_to_string f
      in
      Format.printf "%-12s %26s %26s@." name (run true) (run false))
    [
      ("mine-pump", Case_studies.mine_pump);
      ("fig8", Case_studies.fig8_preemptive);
      ("fig4", Case_studies.fig4_exclusion);
    ]

(* --- A2: branch-ordering policies ------------------------------------ *)

let a2 () =
  section "A2" "Ablation: search ordering policy (mine pump)";
  Format.printf "%-8s %12s %12s %12s %10s@." "policy" "states" "backtracks"
    "time (ms)" "feasible";
  List.iter
    (fun (name, policy) ->
      let options =
        { Search.default_options with policy; max_stored = 200_000 }
      in
      let _, outcome, metrics = solve ~options Case_studies.mine_pump in
      Format.printf "%-8s %12d %12d %12.1f %10s@." name metrics.Search.stored
        metrics.Search.backtracks (ms metrics)
        (match outcome with
        | Ok _ -> "yes"
        | Error Search.Infeasible -> "no"
        | Error Search.Budget_exhausted -> "budget"))
    Priority.all

(* --- A3: pre-runtime vs runtime scheduling --------------------------- *)

let a3 () =
  section "A3" "Pre-runtime synthesis vs runtime policies (motivation)";
  List.iter
    (fun (name, spec, search) ->
      Format.printf "%s:@.%a" name Baseline_compare.pp
        (Baseline_compare.run_all ?search spec))
    [
      ("mine-pump (np-EDF anomaly)", Case_studies.mine_pump, None);
      ( "greedy-trap (inserted idle time)",
        Case_studies.greedy_trap,
        Some { Search.default_options with latest_release = true } );
      ("fig4 (exclusion)", Case_studies.fig4_exclusion, None);
    ]

(* --- A4: scaling sweep ------------------------------------------------ *)

let scaling_family ~preemptive n =
  let periods = [| 20; 40; 80 |] in
  let tasks =
    List.init n (fun i ->
        Task.make
          ~name:(Printf.sprintf "s%d" i)
          ~wcet:(1 + (i mod 2))
          ~deadline:periods.(i mod 3)
          ~period:periods.(i mod 3)
          ~mode:(if preemptive then Task.Preemptive else Task.Non_preemptive)
          ())
  in
  Spec.make ~name:(Printf.sprintf "family-%d" n) ~tasks ()

let a4 () =
  section "A4" "Scaling sweep: task-set size vs search cost (non-preemptive)";
  Format.printf "%-6s %6s %10s %12s %12s %10s@." "tasks" "U" "instances"
    "states" "time (ms)" "feasible";
  List.iter
    (fun n ->
      let spec = scaling_family ~preemptive:false n in
      let _, outcome, metrics = solve spec in
      Format.printf "%-6d %6.2f %10d %12d %12.2f %10s@." n
        (Spec.utilization spec)
        (Spec.total_instances spec)
        metrics.Search.stored (ms metrics)
        (match outcome with
        | Ok _ -> "yes"
        | Error Search.Infeasible -> "no"
        | Error Search.Budget_exhausted -> "budget"))
    [ 2; 4; 6; 8; 10; 12 ]

(* --- A5: preemptive vs non-preemptive state cost ---------------------- *)

let a5 () =
  section "A5" "Preemptive vs non-preemptive state-space cost";
  Format.printf "%-6s %22s %22s@." "tasks" "non-preemptive" "preemptive";
  List.iter
    (fun n ->
      let run preemptive =
        let _, outcome, metrics = solve (scaling_family ~preemptive n) in
        match outcome with
        | Ok _ ->
          Printf.sprintf "%d st / %.1f ms" metrics.Search.stored (ms metrics)
        | Error Search.Infeasible -> "infeasible"
        | Error Search.Budget_exhausted -> "budget"
      in
      Format.printf "%-6d %22s %22s@." n (run false) (run true))
    [ 2; 4; 6; 8 ]

(* --- A6: dispatcher overhead (dispOveh) -------------------------------- *)

let a6 () =
  section "A6" "Dispatcher overhead absorption (metamodel dispOveh)";
  Format.printf "%-14s %26s@." "spec" "max tolerable overhead";
  List.iter
    (fun (name, spec) ->
      match synthesize spec with
      | Ok artifact ->
        Format.printf "%-14s %26d@." name
          (Vm.max_tolerable_overhead artifact.model artifact.table)
      | Error e -> Format.printf "%-14s %26s@." name (error_to_string e))
    [
      ("mine-pump", Case_studies.mine_pump);
      ("quickstart", Case_studies.quickstart);
      ("fig8", Case_studies.fig8_preemptive);
      ("fig3", Case_studies.fig3_precedence);
    ]

(* --- A7: analytic schedulability vs exhaustive synthesis -------------- *)

let a7 () =
  section "A7" "Response-time analysis vs simulation vs synthesis";
  Format.printf "%-6s %6s %10s %14s %14s %14s@." "tasks" "U" "LL-bound"
    "RTA (DM)" "DM simulation" "DFS synthesis";
  List.iter
    (fun n ->
      let spec = scaling_family ~preemptive:true n in
      let rta =
        match Rta.analyze ~policy:Rta.Deadline_monotonic spec with
        | Ok report ->
          ( report.Rta.liu_layland_bound,
            if report.Rta.all_schedulable then "schedulable" else "miss" )
        | Error msg -> (nan, msg)
      in
      let sim =
        if (Baseline_sim.simulate Baseline_sim.Dm spec).Baseline_sim.feasible
        then "feasible"
        else "infeasible"
      in
      let dfs =
        match solve spec with
        | _, Ok _, _ -> "feasible"
        | _, Error _, _ -> "infeasible"
      in
      Format.printf "%-6d %6.2f %10.3f %14s %14s %14s@." n
        (Spec.utilization spec) (fst rta) (snd rta) sim dfs)
    [ 2; 4; 6; 8; 10 ];
  (* RTA's blocking bound is pessimistic: a preemptive task over a long
     non-preemptive one is declared a miss analytically, while both the
     simulation (synchronous phasing) and the exhaustive synthesis
     schedule it. *)
  let mixed =
    Spec.make ~name:"mixed"
      ~tasks:
        [
          Task.make ~name:"hi" ~wcet:2 ~deadline:6 ~period:10
            ~mode:Task.Preemptive ();
          Task.make ~name:"lo" ~wcet:5 ~deadline:20 ~period:20 ();
        ]
      ()
  in
  let rta_verdict =
    match Rta.analyze mixed with
    | Ok r -> if r.Rta.all_schedulable then "schedulable" else "miss (B=5)"
    | Error msg -> msg
  in
  let sim_verdict =
    if (Baseline_sim.simulate Baseline_sim.Dm mixed).Baseline_sim.feasible
    then "feasible" else "infeasible"
  in
  let dfs_verdict =
    match solve mixed with _, Ok _, _ -> "feasible" | _, Error _, _ -> "infeasible"
  in
  Format.printf
    "mixed np/preemptive pessimism:      %14s %14s %14s@."
    rta_verdict sim_verdict dfs_verdict

(* --- A8: discrete TLTS engine vs dense-time state-class engine ------- *)

let a8 () =
  section "A8" "Search engine: discrete states vs dense-time state classes";
  Format.printf "%-14s %24s %24s@." "spec" "discrete (states/ms)"
    "classes (nodes/ms)";
  List.iter
    (fun (name, spec) ->
      let model = Translate.translate spec in
      let discrete =
        match Search.find_schedule model with
        | Ok _, m ->
          Printf.sprintf "%d / %.1f" m.Search.stored (m.Search.elapsed_s *. 1000.)
        | Error f, _ -> Search.failure_to_string f
      in
      let classes =
        match Class_search.find_schedule model with
        | Ok _, m ->
          Printf.sprintf "%d / %.1f" m.Class_search.stored
            (m.Class_search.elapsed_s *. 1000.)
        | Error f, _ -> Class_search.failure_to_string f
      in
      Format.printf "%-14s %24s %24s@." name discrete classes)
    [
      ("mine-pump", Case_studies.mine_pump);
      ("flight-control", Case_studies.flight_control);
      ("fig8", Case_studies.fig8_preemptive);
      ("greedy-trap", Case_studies.greedy_trap);
    ];
  Format.printf
    "note: the class engine needs no inserted-idle option on the greedy \
     trap@.";
  (* class-graph sizes versus discrete reachability on the relation
     models *)
  Format.printf "@.full graph sizes (reachability, not search):@.";
  List.iter
    (fun (name, spec) ->
      let net = (Translate.translate spec).Translate.net in
      let classes = State_class.explore ~max_classes:50_000 net in
      let included =
        State_class.explore ~max_classes:50_000 ~inclusion:true net
      in
      let states = Tlts.explore ~max_states:50_000 net in
      let cmp = State_class.compare_reachable_markings ~max_states:50_000 net in
      Format.printf
        "  %-12s classes=%-6d with-inclusion=%-6d discrete=%-6d shared \
         markings=%d dense-only=%d@."
        name classes.State_class.classes included.State_class.classes
        states.Tlts.states cmp.State_class.common
        cmp.State_class.classes_only)
    [
      ("fig3", Case_studies.fig3_precedence);
      ("fig4", Case_studies.fig4_exclusion);
      ("quickstart", Case_studies.quickstart);
    ]

(* --- A9: WCET sensitivity margins ------------------------------------- *)

let a9 () =
  section "A9" "WCET sensitivity (largest schedulable WCET per task)";
  (* probes against near-infeasible variants can backtrack heavily, so
     each probe gets a bounded state budget; budget-exhausted probes
     count as infeasible, making the reported margins conservative *)
  let options = { Search.default_options with max_stored = 25_000 } in
  List.iter
    (fun (name, spec) ->
      Format.printf "%s:@." name;
      match Sensitivity.analyze ~options spec with
      | Ok t -> Format.printf "%a" Sensitivity.pp t
      | Error msg -> Format.printf "  %s@." msg)
    [
      ("quickstart", Case_studies.quickstart);
      ("flight-control", Case_studies.flight_control);
      ("mine-pump", Case_studies.mine_pump);
    ];
  Format.printf
    "@.deadline margins (smallest schedulable deadline = exact \
     best-achievable response bound):@.";
  List.iter
    (fun (name, spec) ->
      Format.printf "%s:@." name;
      match Sensitivity.deadline_margins ~options spec with
      | Ok t -> Format.printf "%a" Sensitivity.pp_deadlines t
      | Error msg -> Format.printf "  %s@." msg)
    [
      ("quickstart", Case_studies.quickstart);
      ("flight-control", Case_studies.flight_control);
    ]

(* --- A10: schedule quality -------------------------------------------- *)

let a10 () =
  section "A10" "Schedule quality (responses, jitter, preemptions)";
  List.iter
    (fun (name, spec) ->
      match synthesize spec with
      | Ok artifact ->
        Format.printf "%s:@.%a@." name Quality.pp
          (Quality.of_timeline artifact.model artifact.segments)
      | Error e -> Format.printf "%s: %s@." name (error_to_string e))
    [
      ("fig8", Case_studies.fig8_preemptive);
      ("flight-control", Case_studies.flight_control);
    ];
  (* preemption counts per ordering policy on fig8, against the exact
     branch-and-bound optimum *)
  Format.printf "preemptions by policy (fig8):@.";
  List.iter
    (fun (name, policy) ->
      let options = { Search.default_options with policy } in
      match solve ~options Case_studies.fig8_preemptive with
      | model, Ok schedule, _ ->
        let segments = Timeline.of_schedule model schedule in
        let q = Quality.of_timeline model segments in
        Format.printf "  %-12s %d preemptions, %d rows@." name
          q.Quality.total_preemptions q.Quality.context_switches
      | _, Error f, _ ->
        Format.printf "  %-12s %s@." name (Search.failure_to_string f))
    Priority.all;
  (match
     Optimize.min_preemptions (Translate.translate Case_studies.fig8_preemptive)
   with
  | Ok o ->
    Format.printf
      "  %-12s %d preemptions (proven minimum, %d B&B nodes)@." "exact"
      o.Optimize.preemptions o.Optimize.explored
  | Error f ->
    Format.printf "  %-12s %s@." "exact" (Search.failure_to_string f))

(* --- A11: schedulability vs utilization (random campaign) ------------- *)

(* Deterministic LCG so the campaign is reproducible run to run. *)
let lcg seed =
  let state = ref seed in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3fffffff;
    !state mod bound

let random_spec rand ~target_u ~n_tasks =
  let periods = [| 10; 20; 40 |] in
  let tasks =
    List.init n_tasks (fun i ->
        let period = periods.(rand 3) in
        let share = target_u /. float_of_int n_tasks in
        let wcet =
          max 1
            (int_of_float (share *. float_of_int period)
            + (rand 3 - 1))
        in
        let wcet = min wcet period in
        let slack = rand (period - wcet + 1) in
        Task.make
          ~name:(Printf.sprintf "r%d" i)
          ~wcet ~deadline:(wcet + slack) ~period ())
  in
  Spec.make ~name:"campaign" ~tasks ()

let a11 () =
  section "A11" "Schedulability vs utilization (random non-preemptive sets)";
  let trials = 40 in
  Format.printf "%d random 5-task sets per bucket; %% schedulable@." trials;
  Format.printf "%-8s %8s %8s %8s %8s@." "target U" "DFS" "EDF sim" "RM sim"
    "RTA(DM)";
  List.iter
    (fun target_u ->
      let rand = lcg (int_of_float (target_u *. 1000.)) in
      let dfs = ref 0 and edf = ref 0 and rm = ref 0 and rta = ref 0 in
      let valid = ref 0 in
      let attempts = ref 0 in
      while !valid < trials && !attempts < trials * 20 do
        incr attempts;
        let spec = random_spec rand ~target_u ~n_tasks:5 in
        if Validate.is_valid spec then begin
          incr valid;
          (match solve spec with _, Ok _, _ -> incr dfs | _, Error _, _ -> ());
          if (Baseline_sim.simulate Baseline_sim.Edf spec).Baseline_sim.feasible
          then incr edf;
          if (Baseline_sim.simulate Baseline_sim.Rm spec).Baseline_sim.feasible
          then incr rm;
          match Rta.analyze spec with
          | Ok r when r.Rta.all_schedulable -> incr rta
          | Ok _ | Error _ -> ()
        end
      done;
      let pct x = 100. *. float_of_int x /. float_of_int (max 1 !valid) in
      Format.printf "%-8.2f %7.0f%% %7.0f%% %7.0f%% %7.0f%%@." target_u
        (pct !dfs) (pct !edf) (pct !rm) (pct !rta))
    [ 0.3; 0.5; 0.7; 0.9 ];
  Format.printf
    "(DFS dominates: it subsumes every priority-driven schedule and adds \
     inserted-idle and non-greedy orders; RTA is sufficient-only and \
     penalizes np blocking)@."

(* --- A12: temporal isolation under WCET overruns ----------------------- *)

(* The blocker has ample slack; the victim arrives at t=1 with a tight
   deadline.  A fault on the blocker makes priority-driven execution
   push the victim past its deadline, while the time-driven table cuts
   the blocker at its slot boundary. *)
let overrun_pair =
  Spec.make ~name:"overrun-pair"
    ~tasks:
      [
        Task.make ~name:"blocker" ~wcet:2 ~deadline:20 ~period:20 ();
        Task.make ~name:"victim" ~phase:1 ~wcet:3 ~deadline:6 ~period:20 ();
      ]
    ()

let a12 () =
  section "A12" "Temporal isolation under WCET overruns (fault injection)";
  (match synthesize overrun_pair with
  | Error e -> Format.printf "synthesis failed: %s@." (error_to_string e)
  | Ok artifact ->
    Format.printf "planned table:@.%a" (Table.pp artifact.model) artifact.table;
    List.iter
      (fun extra ->
        let vm_faults = [ { Vm.f_task = 0; f_instance = 0; f_extra = extra } ] in
        let table_verdict =
          match Vm.isolation_check ~faults:vm_faults artifact.model artifact.table with
          | Ok overruns ->
            Printf.sprintf "isolated (%d overrun event(s) on the faulty instance)"
              overruns
          | Error vs ->
            Printf.sprintf "LEAKED: %s"
              (Validator.violation_to_string (List.hd vs))
        in
        let sim_faults =
          [ { Baseline_sim.f_task = 0; f_instance = 0; f_extra = extra } ]
        in
        let edf_verdict =
          match
            (Baseline_sim.simulate ~faults:sim_faults Baseline_sim.Edf
               overrun_pair)
              .Baseline_sim.first_miss
          with
          | None -> "absorbed"
          | Some m ->
            Printf.sprintf "cascading miss on %s#%d at t=%d"
              (Array.of_list overrun_pair.Spec.tasks).(m.Baseline_sim.task)
                .Task.name m.Baseline_sim.instance m.Baseline_sim.time
        in
        Format.printf "blocker overrun +%d:  table-driven: %-55s EDF: %s@."
          extra table_verdict edf_verdict)
      [ 0; 1; 3; 6 ]);
  Format.printf
    "(the table confines the damage to the faulty instance; data-flow \
     consequences of its truncation are the application's concern)@."

(* --- A13: schedule-table ROM footprint per target ---------------------- *)

let a13 () =
  section "A13" "Schedule-table ROM footprint (per code-generation target)";
  Format.printf
    "%-14s %6s | %s@." "spec" "rows"
    (String.concat " | "
       (List.map (fun (name, _) -> Printf.sprintf "%10s" name) Target.all));
  List.iter
    (fun (name, spec) ->
      match synthesize spec with
      | Error e -> Format.printf "%-14s %s@." name (error_to_string e)
      | Ok artifact ->
        let cells =
          List.map
            (fun (_, target) ->
              let fp = Emit.table_footprint target artifact.table in
              Printf.sprintf "%7d B%s" fp.Emit.table_bytes
                (match fp.Emit.fits_flash with
                | Some true -> "  "
                | Some false -> " !"
                | None -> "  "))
            Target.all
        in
        Format.printf "%-14s %6d | %s@." name
          (List.length artifact.table)
          (String.concat " | " cells))
    [
      ("quickstart", Case_studies.quickstart);
      ("fig8", Case_studies.fig8_preemptive);
      ("flight-control", Case_studies.flight_control);
      ("mine-pump", Case_studies.mine_pump);
    ];
  Format.printf
    "('!' = exceeds the profile's typical flash budget)@.";
  (* the compact layout (16-bit deltas + packed flag/task byte) is the
     future-work "optimize the generated code" answer *)
  (match synthesize Case_studies.mine_pump with
  | Error e -> Format.printf "%s@." (error_to_string e)
  | Ok artifact ->
    let s = Emit.table_footprint Target.i8051 artifact.table in
    let c =
      Emit.table_footprint ~layout:Emit.Compact_table Target.i8051
        artifact.table
    in
    Format.printf
      "mine-pump on the 8051: struct layout %d B (exceeds 4096), compact \
       layout %d B (fits: %b) — the same dispatcher semantics, verified by \
       the generated-code tests@."
      s.Emit.table_bytes c.Emit.table_bytes
      (c.Emit.fits_flash = Some true))

(* --- A14: parallel portfolio race -------------------------------------- *)

let a14 () =
  section "A14" "Parallel portfolio race (OCaml 5 domains)";
  Format.printf "recommended domains on this machine: %d@."
    (Domain.recommended_domain_count ());
  List.iter
    (fun (name, spec) ->
      let model = Translate.translate spec in
      let result = Portfolio.find_schedule model in
      let winner =
        match result.Portfolio.winner with
        | Some cfg -> Portfolio.config_to_string cfg
        | None -> "-"
      in
      let cancelled =
        List.length
          (List.filter
             (fun (a : Portfolio.attempt) -> a.Portfolio.cancelled)
             result.Portfolio.attempts)
      in
      let loser_stored =
        List.fold_left
          (fun acc (a : Portfolio.attempt) ->
            if Some a.Portfolio.config = result.Portfolio.winner then acc
            else acc + a.Portfolio.metrics.Search.stored)
          0 result.Portfolio.attempts
      in
      (* per-member records: losers' and cancelled members' work used to
         be invisible here, underreporting what the race actually cost *)
      let member_json (a : Portfolio.attempt) =
        Printf.sprintf
          "{\"config\": %S, \"outcome\": %S, \"stored\": %d, \"visited\": \
           %d, \"elapsed_ms\": %.3f, \"cancelled\": %b}"
          (Portfolio.config_to_string a.Portfolio.config)
          (match a.Portfolio.outcome with
          | Ok _ -> "feasible"
          | Error f -> Search.failure_to_string f)
          a.Portfolio.metrics.Search.stored a.Portfolio.metrics.Search.visited
          (a.Portfolio.metrics.Search.elapsed_s *. 1000.)
          a.Portfolio.cancelled
      in
      Format.printf
        "%-14s %s on %d domain(s), %d config(s) started, %d finished (%d \
         cancelled, %d loser states), %.1f ms (winner: %s)@."
        name
        (match result.Portfolio.outcome with
        | Ok _ -> "feasible"
        | Error f -> Search.failure_to_string f)
        result.Portfolio.domains_used result.Portfolio.configs_started
        (List.length result.Portfolio.attempts)
        cancelled loser_stored
        (result.Portfolio.elapsed_s *. 1000.)
        winner;
      add_json ("A14_portfolio_" ^ name)
        [
          ("spec", jstr name);
          ("feasible", jbool (Result.is_ok result.Portfolio.outcome));
          ("winner", jstr winner);
          ("domains_used", jint result.Portfolio.domains_used);
          ("configs_started", jint result.Portfolio.configs_started);
          ("configs_finished", jint (List.length result.Portfolio.attempts));
          ("configs_cancelled", jint cancelled);
          ("loser_stored_states", jint loser_stored);
          ("elapsed_ms", jfloat (result.Portfolio.elapsed_s *. 1000.));
          ( "members",
            "["
            ^ String.concat ", "
                (List.map member_json result.Portfolio.attempts)
            ^ "]" );
        ])
    [
      ("mine-pump", Case_studies.mine_pump);
      ("flight-control", Case_studies.flight_control);
      ("greedy-trap", Case_studies.greedy_trap);
    ]

(* --- A16: shared-visited parallel search -------------------------------- *)

(* worker domains for A16, settable with --domains N *)
let bench_domains = ref 2

(* A deterministic generated spec whose search is large (tight deadlines
   force heavy backtracking into an exhaustive infeasibility proof), so
   fixed parallel overheads — domain spawn, table striping — amortize
   over tens of thousands of stored states. *)
let large_tight_spec =
  let periods = [| 25; 50; 100 |] in
  let tasks =
    List.init 8 (fun i ->
        let period = periods.(i mod 3) in
        let wcet = 2 * (2 + (i mod 3)) in
        Task.make
          ~name:(Printf.sprintf "t%d" i)
          ~wcet
          ~deadline:(min period (wcet + 2 + (i mod 4)))
          ~period ())
  in
  Spec.make ~name:"large-tight-8" ~tasks ()

let a16 () =
  section "A16" "Shared-visited parallel search (work-stealing DFS)";
  let domains = !bench_domains in
  Format.printf "worker domains: %d (recommended on this machine: %d)@."
    domains
    (Domain.recommended_domain_count ());
  (* wall-clock comparisons take the minimum of 3 runs per engine: the
     point is the engines' cost, not the host scheduler's mood *)
  let runs = 3 in
  let min_by_snd xs =
    List.fold_left
      (fun acc x -> if snd x < snd acc then x else acc)
      (List.hd xs) (List.tl xs)
  in
  List.iter
    (fun (name, spec) ->
      let model = Translate.translate spec in
      let (seq_outcome, seq_m), seq_ms =
        min_by_snd
          (List.init runs (fun _ ->
               let outcome, m = Search.find_schedule model in
               ((outcome, m), ms m)))
      in
      let par, par_ms =
        min_by_snd
          (List.init runs (fun _ ->
               let r = Par_search.find_schedule ~domains model in
               (r, r.Par_search.metrics.Search.elapsed_s *. 1000.)))
      in
      let pm = par.Par_search.metrics in
      let speedup = seq_ms /. max 1e-9 par_ms in
      let verdicts_agree =
        Result.is_ok seq_outcome = Result.is_ok par.Par_search.outcome
      in
      let certified =
        match par.Par_search.outcome with
        | Ok schedule ->
          Result.is_ok
            (Validator.check model (Timeline.of_schedule model schedule))
        | Error _ -> false
      in
      Format.printf
        "%-14s seq %8d st %8.1f ms | par %8d st %8.1f ms on %d domain(s), \
         %d steal(s), %d shared hit(s) | speedup %.2fx, verdicts agree: %b%s@."
        name seq_m.Search.stored seq_ms pm.Search.stored par_ms
        par.Par_search.domains_used par.Par_search.steals
        par.Par_search.shared_hits speedup verdicts_agree
        (if Result.is_ok par.Par_search.outcome then
           Printf.sprintf ", certified: %b" certified
         else "");
      add_json ("A16_parallel_" ^ name)
        [
          ("spec", jstr name);
          ("domains_requested", jint domains);
          ("domains_used", jint par.Par_search.domains_used);
          ("runs", jint runs);
          ("feasible", jbool (Result.is_ok par.Par_search.outcome));
          ("verdicts_agree_sequential", jbool verdicts_agree);
          ("certified", jbool certified);
          ("stored_states", jint pm.Search.stored);
          ("sequential_stored_states", jint seq_m.Search.stored);
          ("steals", jint par.Par_search.steals);
          ("shared_table_hits", jint par.Par_search.shared_hits);
          ("replayed_fires", jint par.Par_search.replayed_fires);
          ( "table_entries",
            jint par.Par_search.table.Packed_state.Sharded.entries );
          ( "table_contended",
            jint par.Par_search.table.Packed_state.Sharded.contended );
          ("sequential_elapsed_ms", jfloat seq_ms);
          ("parallel_elapsed_ms", jfloat par_ms);
          ("speedup", jfloat speedup);
        ])
    [
      ("mine-pump", Case_studies.mine_pump);
      ("large-tight-8", large_tight_spec);
    ]

(* --- A17: subsumption-pruned symbolic class engine ---------------------- *)

(* Relation-heavy infeasible spec (five tasks, near-complete exclusion
   clique plus one precedence): the search exhausts the class graph,
   where the same marking recurs under nested domains — the workload
   inclusion subsumption exists for.  Mirrors
   Test_class_search.relations_spec. *)
let relations_spec =
  let mk i d =
    Task.make ~name:(Printf.sprintf "q%d" i) ~wcet:7 ~deadline:d ~period:40 ()
  in
  let tasks = [ mk 0 22; mk 1 22; mk 2 26; mk 3 30; mk 4 34 ] in
  let id i = (List.nth tasks i).Task.id in
  let pairs =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j -> if j > i then Some (id i, id j) else None)
          [ 0; 1; 2; 3; 4 ])
      [ 0; 1; 2; 3; 4 ]
  in
  Spec.make ~name:"relations" ~tasks
    ~precedences:[ (id 0, id 1) ]
    ~exclusions:(List.filter (fun p -> p <> (id 0, id 1)) pairs)
    ()

let a17 () =
  section "A17" "Class engine: hash-consed store, subsumption, parallel search";
  let domains = !bench_domains in
  let runs = 3 in
  let min_by_snd xs =
    List.fold_left
      (fun acc x -> if snd x < snd acc then x else acc)
      (List.hd xs) (List.tl xs)
  in
  List.iter
    (fun (name, spec) ->
      let model = Translate.translate spec in
      let cls_ms (m : Class_search.metrics) = m.Class_search.elapsed_s *. 1000. in
      let (outcome, m), on_ms =
        min_by_snd
          (List.init runs (fun _ ->
               let r = Class_search.find_schedule model in
               (r, cls_ms (snd r))))
      in
      let (_, m_off), off_ms =
        min_by_snd
          (List.init runs (fun _ ->
               let r = Class_search.find_schedule ~subsume:false model in
               (r, cls_ms (snd r))))
      in
      let par, par_ms =
        min_by_snd
          (List.init runs (fun _ ->
               let r = Par_class.find_schedule ~domains model in
               (r, cls_ms r.Par_class.metrics)))
      in
      let classes_per_s =
        float_of_int m.Class_search.visited /. max 1e-9 m.Class_search.elapsed_s
      in
      let speedup = on_ms /. max 1e-9 par_ms in
      let verdicts_agree =
        Result.is_ok outcome = Result.is_ok par.Par_class.outcome
      in
      Format.printf
        "%-14s %s: %5d stored (%4d subsumed) %8.1f ms, %8.0f classes/s | \
         no-subsume %5d stored %8.1f ms | par %8.1f ms on %d domain(s), %d \
         steal(s), speedup %.2fx, verdicts agree: %b@."
        name
        (if Result.is_ok outcome then "feasible" else "infeasible")
        m.Class_search.stored m.Class_search.subsumed on_ms classes_per_s
        m_off.Class_search.stored off_ms par_ms par.Par_class.domains_used
        par.Par_class.steals speedup verdicts_agree;
      add_json ("A17_class_" ^ name)
        [
          ("spec", jstr name);
          ("feasible", jbool (Result.is_ok outcome));
          ("runs", jint runs);
          ("stored_classes", jint m.Class_search.stored);
          ("visited_classes", jint m.Class_search.visited);
          ("subsumed", jint m.Class_search.subsumed);
          ("stored_classes_no_subsume", jint m_off.Class_search.stored);
          ("classes_per_s", jfloat classes_per_s);
          ("elapsed_ms", jfloat on_ms);
          ("no_subsume_elapsed_ms", jfloat off_ms);
          ("domains_requested", jint domains);
          ("domains_used", jint par.Par_class.domains_used);
          ("steals", jint par.Par_class.steals);
          ("parallel_elapsed_ms", jfloat par_ms);
          ("parallel_speedup", jfloat speedup);
          ("verdicts_agree_parallel", jbool verdicts_agree);
          ( "store_entries",
            jint par.Par_class.store.Class_store.entries );
          ( "store_contended",
            jint par.Par_class.store.Class_store.contended );
        ])
    [
      ("mine-pump", Case_studies.mine_pump);
      ("large-tight-8", large_tight_spec);
      ("relations", relations_spec);
    ]

(* --- A18: analytic schedulability pre-pass ------------------------------ *)

(* A demand-overloaded pair (quick-reject) and the paper's independent
   preemptive set (quick-accept), each solved twice: pre-pass on versus
   the raced portfolio baseline.  The harness asserts the pre-pass
   actually decided at least one profile — otherwise the record would
   silently measure two identical races. *)
let a18 () =
  section "A18" "Analytic pre-pass (quick-reject / quick-accept vs the race)";
  let overload =
    Spec.make ~name:"demand-overload"
      ~tasks:
        [
          Task.make ~name:"a" ~wcet:5 ~deadline:5 ~period:10 ();
          Task.make ~name:"b" ~wcet:5 ~deadline:6 ~period:10 ();
        ]
      ()
  in
  let decided = ref 0 in
  List.iter
    (fun (name, spec) ->
      let model = Translate.translate spec in
      let with_pre = Portfolio.find_schedule ~domains:1 model in
      let baseline =
        Portfolio.find_schedule ~domains:1 ~analysis:false model
      in
      let pre_decided =
        match with_pre.Portfolio.prepass with
        | Portfolio.Prepass_rejected _ | Portfolio.Prepass_accepted -> true
        | Portfolio.Prepass_off | Portfolio.Prepass_unknown _
        | Portfolio.Prepass_uncertified _ -> false
      in
      if pre_decided then incr decided;
      if
        Result.is_ok with_pre.Portfolio.outcome
        <> Result.is_ok baseline.Portfolio.outcome
      then
        failwith
          ("A18: pre-pass and raced portfolio disagree on " ^ name);
      let pre_ms = with_pre.Portfolio.elapsed_s *. 1000. in
      let base_ms = baseline.Portfolio.elapsed_s *. 1000. in
      Format.printf
        "%-16s %s — pre-pass %s in %.2f ms, raced portfolio %.2f ms \
         (%.0fx)@."
        name
        (match with_pre.Portfolio.outcome with
        | Ok _ -> "feasible"
        | Error f -> Search.failure_to_string f)
        (Portfolio.prepass_to_string with_pre.Portfolio.prepass)
        pre_ms base_ms
        (base_ms /. Float.max 1e-6 pre_ms);
      add_json ("A18_analysis_" ^ name)
        [
          ("spec", jstr name);
          ("prepass", jstr (Portfolio.prepass_to_string with_pre.Portfolio.prepass));
          ("decided_without_search", jbool pre_decided);
          ("feasible", jbool (Result.is_ok with_pre.Portfolio.outcome));
          ("analysis_ms", jfloat pre_ms);
          ("portfolio_ms", jfloat base_ms);
          ("speedup", jfloat (base_ms /. Float.max 1e-6 pre_ms));
        ])
    [
      ("demand-overload", overload);
      ("edf-schedulable", Case_studies.fig8_preemptive);
    ];
  if !decided = 0 then
    failwith "A18: the analytic pre-pass decided no profile";
  Format.printf "pre-pass decided %d/2 profiles without any search@." !decided

(* --- A19: synthesis service result cache -------------------------------- *)

(* The same corpus solved twice through the service path: a cold run
   populating the on-disk content-addressed cache, then a warm run with
   a fresh cache instance over the same directory, so every hit travels
   decode -> replay -> certify.  The verdict lines must be
   byte-identical; the warm run's win is re-validation cost versus
   search cost.  Renamed copies of the case studies are distinct cold
   entries because the specification name participates in the digest. *)
let a19 () =
  section "A19" "Service result cache (cold corpus vs warm re-validated hits)";
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ezrt-bench-a19-%d" (Unix.getpid ()))
  in
  let copies n spec =
    List.init n (fun i ->
        { spec with Spec.name = Printf.sprintf "%s#%d" spec.Spec.name i })
  in
  let corpus =
    copies 4 Case_studies.mine_pump
    @ copies 4 Case_studies.greedy_trap
    @ List.init 4 (fun i -> Spec_gen.spec_at ~profile:Spec_gen.smoke ~seed:11 i)
  in
  let run cache =
    let t0 = Unix.gettimeofday () in
    let lines =
      List.map
        (fun spec ->
          match Server.solve ~cache spec with
          | Ok o -> Server.verdict_line o
          | Error msg -> failwith ("A19: solve failed: " ^ msg))
        corpus
    in
    (lines, (Unix.gettimeofday () -. t0) *. 1000.)
  in
  let cold_lines, cold_ms = run (Result_cache.create ~dir ()) in
  let warm_cache = Result_cache.create ~dir () in
  let warm_lines, warm_ms = run warm_cache in
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  if cold_lines <> warm_lines then
    failwith "A19: warm verdicts diverge from the cold run";
  let k = Result_cache.counters warm_cache in
  if k.Result_cache.hits = 0 then failwith "A19: warm run never hit the cache";
  let speedup = cold_ms /. Float.max 1e-6 warm_ms in
  Format.printf
    "corpus of %d specs: cold %.1f ms, warm %.1f ms (%.1fx; %d hit(s), %d \
     miss(es), %d invalid)@."
    (List.length corpus) cold_ms warm_ms speedup k.Result_cache.hits
    k.Result_cache.misses k.Result_cache.invalid;
  add_json "A19_service_cache"
    [
      ("corpus_specs", jint (List.length corpus));
      ("cold_ms", jfloat cold_ms);
      ("warm_ms", jfloat warm_ms);
      ("warm_speedup", jfloat speedup);
      ("warm_hits", jint k.Result_cache.hits);
      ("warm_misses", jint k.Result_cache.misses);
      ("verdicts_identical", jbool true);
    ]

(* --- A20: stubborn-set partial-order reduction -------------------------- *)

(* Eight independent zero-laxity tasks: every task must run back-to-back
   from time 0, so the set is infeasible, and the exhaustive proof must
   consider the bookkeeping transitions of all eight tasks — factorially
   many interleavings, of which the stubborn set keeps one
   representative per equivalence class.  The mine-pump row shows the
   reduction is verdict- and certificate-neutral on the feasible
   flagship case. *)
let independent_8 =
  let tasks =
    List.init 8 (fun i ->
        Task.make
          ~name:(Printf.sprintf "c%d" i)
          ~wcet:1 ~deadline:1 ~period:60 ())
  in
  Spec.make ~name:"independent-8" ~tasks ()

let a20 () =
  section "A20" "Stubborn-set partial-order reduction (POR on vs off)";
  let verdict = function
    | Ok _ -> "feasible"
    | Error f -> Search.failure_to_string f
  in
  List.iter
    (fun (name, spec, expect_2x) ->
      let model = Translate.translate spec in
      let run por =
        Search.find_schedule
          ~options:{ Search.default_options with por }
          model
      in
      let par por =
        Par_search.find_schedule
          ~options:{ Search.default_options with por }
          ~domains:!bench_domains model
      in
      let o_on, m_on = run true in
      let o_off, m_off = run false in
      let p_on = par true and p_off = par false in
      let certified = function
        | Ok schedule ->
          Result.is_ok
            (Validator.check model (Timeline.of_schedule model schedule))
        | Error _ -> false
      in
      if verdict o_on <> verdict o_off then
        failwith
          (Printf.sprintf "A20: %s: sequential verdict differs (%s vs %s)"
             name (verdict o_on) (verdict o_off));
      if verdict p_on.Par_search.outcome <> verdict p_off.Par_search.outcome
      then
        failwith
          (Printf.sprintf "A20: %s: parallel verdict differs (%s vs %s)" name
             (verdict p_on.Par_search.outcome)
             (verdict p_off.Par_search.outcome));
      if Result.is_ok o_on && not (certified o_on && certified o_off) then
        failwith ("A20: " ^ name ^ ": schedule fails certification");
      let ratio on off = float_of_int off /. float_of_int (max 1 on) in
      let seq_ratio = ratio m_on.Search.visited m_off.Search.visited in
      let par_ratio =
        ratio p_on.Par_search.metrics.Search.visited
          p_off.Par_search.metrics.Search.visited
      in
      if expect_2x then begin
        if m_on.Search.por_reduced = 0 then
          failwith ("A20: " ^ name ^ ": reduction never fired");
        if seq_ratio < 2.0 || par_ratio < 2.0 then
          failwith
            (Printf.sprintf
               "A20: %s: expected >= 2x visited-state reduction, got \
                %.2fx seq / %.2fx par"
               name seq_ratio par_ratio)
      end;
      Format.printf
        "%-14s %-10s | seq %8d -> %8d visited (%.2fx) | par %8d -> %8d \
         (%.2fx) | %d reduced, %d fallback@."
        name (verdict o_on) m_off.Search.visited m_on.Search.visited
        seq_ratio p_off.Par_search.metrics.Search.visited
        p_on.Par_search.metrics.Search.visited par_ratio
        m_on.Search.por_reduced m_on.Search.por_fallback;
      add_json ("A20_por_" ^ name)
        [
          ("spec", jstr name);
          ("feasible", jbool (Result.is_ok o_on));
          ("verdicts_agree", jbool true);
          ("seq_visited_on", jint m_on.Search.visited);
          ("seq_visited_off", jint m_off.Search.visited);
          ("seq_reduction", jfloat seq_ratio);
          ("par_visited_on", jint p_on.Par_search.metrics.Search.visited);
          ("par_visited_off", jint p_off.Par_search.metrics.Search.visited);
          ("par_reduction", jfloat par_ratio);
          ("por_reduced", jint m_on.Search.por_reduced);
          ("por_fallback", jint m_on.Search.por_fallback);
          ("por_skipped", jint m_on.Search.por_skipped);
          ("elapsed_ms_on", jfloat (ms m_on));
          ("elapsed_ms_off", jfloat (ms m_off));
        ])
    [
      ("mine-pump", Case_studies.mine_pump, false);
      ("independent-8", independent_8, true);
    ];
  (* the CI smoke lane leans on this counter being live *)
  if
    Obs_metrics.value
      (Obs_metrics.counter
         ~labels:[ ("engine", "discrete-incremental") ]
         "ezrt_por_reduced_total")
    = 0
  then failwith "A20: ezrt_por_reduced_total never moved"

(* --- A21: structural lint throughput ----------------------------------- *)

(* Lint the 500-spec seed-42 generated corpus (the fuzz campaign's
   corpus) with the full pass — invariants, skeleton, dead structure,
   siphon/trap, gate explain.  The corpus must lint without a single
   error and without a single gate-explain mismatch; throughput is the
   headline number (the lint pass is the service layer's cheap
   pre-search oracle, so specs/s is what matters). *)

let a21 ?(count = 500) () =
  section "A21"
    (Printf.sprintf "Structural lint throughput (%d-spec seeded corpus)"
       count);
  let specs = List.init count (fun i -> Spec_gen.spec_at ~seed:42 i) in
  let started = Unix.gettimeofday () in
  let errors = ref 0 and warnings = ref 0 and infos = ref 0 in
  let truncated = ref 0 and mismatches = ref 0 and certs = ref 0 in
  List.iter
    (fun spec ->
      let r = Lint.check_model (Translate.translate spec) in
      errors := !errors + Lint.count Lint.Error r;
      warnings := !warnings + Lint.count Lint.Warning r;
      infos := !infos + Lint.count Lint.Info r;
      if r.Lint.truncated then incr truncated;
      certs := !certs + List.length r.Lint.certificates;
      List.iter
        (fun (d : Lint.diagnostic) ->
          if String.equal d.Lint.code "EZRT-L013" then incr mismatches)
        r.Lint.diagnostics)
    specs;
  let elapsed = Unix.gettimeofday () -. started in
  let specs_per_s = float_of_int count /. max 1e-9 elapsed in
  if !mismatches > 0 then
    failwith "A21: gate-explain disagreed with a live gate";
  if !errors > 0 then
    failwith "A21: the generated corpus must lint without errors";
  Format.printf
    "%d specs linted in %.2f s (%.0f specs/s) — %d warning(s), %d info(s), \
     %d certificate(s), %d truncated@."
    count elapsed specs_per_s !warnings !infos !certs !truncated;
  add_json "A21_lint"
    [
      ("specs", jint count);
      ("errors", jint !errors);
      ("warnings", jint !warnings);
      ("infos", jint !infos);
      ("certificates", jint !certs);
      ("truncated", jint !truncated);
      ("gate_mismatches", jint !mismatches);
      ("elapsed_s", jfloat elapsed);
      ("specs_per_s", jfloat specs_per_s);
    ]

(* --- A15: differential fuzzing throughput ------------------------------ *)

let a15 () =
  section "A15" "Differential fuzzing throughput (5 engines + oracles per spec)";
  let stats = Fuzz.run ~profile:Spec_gen.smoke ~seed:7 ~count:150 () in
  Format.printf
    "%d specs (seed %d): %d feasible, %d infeasible, %d inconclusive, %d \
     divergent in %.1f s — %.1f specs/s@."
    stats.Fuzz.generated stats.Fuzz.seed stats.Fuzz.feasible
    stats.Fuzz.infeasible stats.Fuzz.unknown
    (List.length stats.Fuzz.divergent)
    stats.Fuzz.elapsed_s (Fuzz.specs_per_s stats);
  add_json "A15_fuzz_differential"
    [
      ("seed", jint stats.Fuzz.seed);
      ("specs", jint stats.Fuzz.generated);
      ("feasible", jint stats.Fuzz.feasible);
      ("infeasible", jint stats.Fuzz.infeasible);
      ("inconclusive", jint stats.Fuzz.unknown);
      ("divergent", jint (List.length stats.Fuzz.divergent));
      ("elapsed_s", jfloat stats.Fuzz.elapsed_s);
      ("specs_per_s", jfloat (Fuzz.specs_per_s stats));
    ]

(* --- Bechamel micro-benchmarks ---------------------------------------- *)

let bechamel_suite () =
  let open Bechamel in
  let mine_model = Translate.translate Case_studies.mine_pump in
  let mine_table =
    match Search.find_schedule mine_model with
    | Ok schedule, _ -> Table.of_schedule mine_model schedule
    | Error _, _ -> failwith "mine pump must be schedulable"
  in
  let mine_pnml = Pnml.to_string mine_model.Translate.net in
  let mine_dsl = Dsl.to_string Case_studies.mine_pump in
  let no_po = { Search.default_options with partial_order = false } in
  let tests =
    [
      Test.make ~name:"e1-mine-pump-schedule"
        (Staged.stage (fun () -> ignore (Search.find_schedule mine_model)));
      Test.make ~name:"e1-mine-pump-translate"
        (Staged.stage (fun () ->
             ignore (Translate.translate Case_studies.mine_pump)));
      Test.make ~name:"e2-fig8-synthesize"
        (Staged.stage (fun () ->
             ignore (synthesize Case_studies.fig8_preemptive)));
      Test.make ~name:"e3-fig3-synthesize"
        (Staged.stage (fun () ->
             ignore (synthesize Case_studies.fig3_precedence)));
      Test.make ~name:"e4-fig4-synthesize"
        (Staged.stage (fun () ->
             ignore (synthesize Case_studies.fig4_exclusion)));
      Test.make ~name:"e6-dsl-roundtrip"
        (Staged.stage (fun () -> ignore (Dsl.of_string mine_dsl)));
      Test.make ~name:"e7-pnml-roundtrip"
        (Staged.stage (fun () -> ignore (Pnml.of_string mine_pnml)));
      Test.make ~name:"a1-search-no-partial-order"
        (Staged.stage (fun () ->
             ignore (Search.find_schedule ~options:no_po mine_model)));
      Test.make ~name:"a3-baseline-edf-mine-pump"
        (Staged.stage (fun () ->
             ignore
               (Baseline_sim.simulate Baseline_sim.Edf Case_studies.mine_pump)));
      Test.make ~name:"vm-execute-mine-pump"
        (Staged.stage (fun () -> ignore (Vm.execute mine_model mine_table)));
      Test.make ~name:"codegen-mine-pump"
        (Staged.stage (fun () -> ignore (Emit.program mine_model mine_table)));
      Test.make ~name:"a8-class-search-mine-pump"
        (Staged.stage (fun () -> ignore (Class_search.find_schedule mine_model)));
      Test.make ~name:"a8-flight-control-synthesize"
        (Staged.stage (fun () ->
             ignore (synthesize Case_studies.flight_control)));
      Test.make ~name:"a10-quality-mine-pump"
        (Staged.stage
           (let segments =
              Timeline.of_schedule mine_model
                (match Search.find_schedule mine_model with
                | Ok s, _ -> s
                | Error _, _ -> assert false)
            in
            fun () -> ignore (Quality.of_timeline mine_model segments)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"ezrealtime" tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let nanos =
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> est
          | Some [] | None -> nan
        in
        (name, nanos) :: acc)
      results []
  in
  section "BENCH" "Bechamel micro-benchmarks (monotonic clock)";
  List.iter
    (fun (name, nanos) ->
      Format.printf "  %-44s %12.0f ns/run  (%8.3f ms)@." name nanos
        (nanos /. 1e6))
    (List.sort compare rows)

(* --- regression guard (--check BASELINE.json) --------------------------- *)

(* Compares the entries just written against a committed baseline
   (BASELINE.json): verdicts must match exactly; stored_states may grow
   by at most 25% (plus a small absolute allowance for racy parallel
   counts); states_per_s — and specs_per_s for the lint experiment —
   may drop to no less than 40% of the baseline: hosts differ,
   order-of-magnitude slowdowns are what the guard is for.  Lint
   gate-explain mismatches must stay at zero.  With [require_all] (the full run), baseline keys missing from
   the current run fail too: a renamed experiment must update the
   baseline deliberately.  Any violation exits non-zero so CI blocks
   the regression. *)
let check_against ~require_all ~current path =
  let parse file =
    let ic = open_in_bin file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Service_json.of_string s with
    | Ok (Service_json.Obj fields) -> fields
    | Ok _ -> failwith (file ^ ": expected a JSON object")
    | Error msg -> failwith (file ^ ": " ^ msg)
  in
  let base = parse path and cur = parse current in
  let violations = ref [] in
  let bad fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let compared = ref 0 in
  List.iter
    (fun (key, bentry) ->
      match List.assoc_opt key cur with
      | None ->
        if require_all && key <> "meta" then
          bad "%s: present in %s but missing from the current run" key path
      | Some _ when key = "meta" -> ()
      | Some centry ->
        incr compared;
        let field name entry conv =
          Option.bind (Service_json.member name entry) conv
        in
        let to_bool = function Service_json.Bool b -> Some b | _ -> None in
        (match
           (field "feasible" bentry to_bool, field "feasible" centry to_bool)
         with
        | Some b, Some c when b <> c ->
          bad "%s: verdict changed (baseline feasible=%b, now %b)" key b c
        | _ -> ());
        (match
           ( field "stored_states" bentry Service_json.to_int,
             field "stored_states" centry Service_json.to_int )
         with
        | Some b, Some c when c > (b * 5 / 4) + 64 ->
          bad "%s: stored_states regressed (baseline %d, now %d)" key b c
        | _ -> ());
        (match
           ( field "states_per_s" bentry Service_json.to_num,
             field "states_per_s" centry Service_json.to_num )
         with
        | Some b, Some c when b > 0. && c < 0.4 *. b ->
          bad "%s: states_per_s regressed (baseline %.0f, now %.0f)" key b c
        | _ -> ());
        (match
           ( field "specs_per_s" bentry Service_json.to_num,
             field "specs_per_s" centry Service_json.to_num )
         with
        | Some b, Some c when b > 0. && c < 0.4 *. b ->
          bad "%s: specs_per_s regressed (baseline %.0f, now %.0f)" key b c
        | _ -> ());
        (match
           ( field "gate_mismatches" bentry Service_json.to_int,
             field "gate_mismatches" centry Service_json.to_int )
         with
        | Some 0, Some c when c > 0 ->
          bad "%s: gate-explain mismatches appeared (now %d)" key c
        | _ -> ()))
    base;
  match !violations with
  | [] ->
    Format.printf "check: %d entr%s within tolerance of %s@." !compared
      (if !compared = 1 then "y" else "ies")
      path
  | vs ->
    List.iter (fun v -> Format.printf "check FAILED: %s@." v) (List.rev vs);
    exit 1

(* The harness takes the same observability flags as ezrt: --trace FILE,
   --metrics FILE and --progress — plus --domains N (A16 worker count),
   --smoke (CI subset: E1, A14, A16, A17, A18, A19, A20, A21) and
   --check BASELINE.json (regression guard, applied to the entries the
   run just wrote).  No cmdliner here — a
   hand scan of argv keeps bench dependency-free. *)
let obs_setup () =
  let argv = Sys.argv in
  let n = Array.length argv in
  let value_of flag =
    let found = ref None in
    for i = 1 to n - 2 do
      if String.equal argv.(i) flag then found := Some argv.(i + 1)
    done;
    !found
  in
  let has flag = Array.exists (String.equal flag) argv in
  (match value_of "--trace" with
  | Some path ->
    let sink = Obs_trace.create () in
    Obs_trace.install sink;
    at_exit (fun () ->
        Obs_trace.save_file path sink;
        Format.printf "trace written to %s@." path)
  | None -> ());
  (match value_of "--metrics" with
  | Some path ->
    at_exit (fun () ->
        Obs_metrics.save_file path;
        Format.printf "metrics written to %s@." path)
  | None -> ());
  if has "--progress" then Obs_progress.install (Obs_progress.create ());
  (match value_of "--domains" with
  | Some d -> (
    match int_of_string_opt d with
    | Some d when d >= 1 -> bench_domains := d
    | Some _ | None -> ())
  | None -> ());
  (has "--smoke", value_of "--check")

let () =
  let smoke, check = obs_setup () in
  Format.printf "ezRealtime benchmark harness (paper: DATE 2008)@.";
  record_meta ();
  if smoke then begin
    e1 ();
    a14 ();
    a16 ();
    a17 ();
    a18 ();
    a19 ();
    a20 ();
    a21 ()
  end
  else begin
    e1 ();
    e2 ();
    e3 ();
    e4 ();
    e5 ();
    e6 ();
    e7 ();
    e8 ();
    a1 ();
    a2 ();
    a3 ();
    a4 ();
    a5 ();
    a6 ();
    a7 ();
    a8 ();
    a9 ();
    a10 ();
    a11 ();
    a12 ();
    a13 ();
    a14 ();
    a15 ();
    a16 ();
    a17 ();
    a18 ();
    a19 ();
    a20 ();
    a21 ();
    bechamel_suite ()
  end;
  write_json "BENCH_search.json";
  Format.printf "@.wrote BENCH_search.json@.";
  (match check with
  | Some path ->
    check_against ~require_all:(not smoke) ~current:"BENCH_search.json" path
  | None -> ());
  Format.printf "done.@."
