(* Quickstart: specify a tiny sampled control application in code,
   synthesize its pre-runtime schedule and print the scheduled C.

   Run with:  dune exec examples/quickstart.exe *)

open Ezrealtime

let () =
  (* Three periodic tasks on one processor: an ADC sampler feeding a
     filter feeding a DAC, chained by precedence relations. *)
  let sample =
    Task.make ~name:"sample" ~wcet:2 ~deadline:10 ~period:20
      ~code:"adc_read(&raw);" ()
  in
  let filter =
    Task.make ~name:"filter" ~wcet:4 ~deadline:16 ~period:20
      ~code:"fir(raw, &smooth);" ()
  in
  let actuate =
    Task.make ~name:"actuate" ~wcet:3 ~deadline:20 ~period:20
      ~code:"dac_write(smooth);" ()
  in
  let spec =
    Spec.make ~name:"quickstart"
      ~tasks:[ sample; filter; actuate ]
      ~precedences:[ ("sample", "filter"); ("filter", "actuate") ]
      ()
  in
  (* One call runs the whole pipeline: validation, net composition,
     DFS schedule synthesis, certification, code generation. *)
  let artifact = synthesize_exn spec in
  Format.printf "%a@." report artifact;
  Format.printf "execution timeline:@.%a@."
    (Timeline.pp artifact.model) artifact.segments;
  (* The specification also round-trips through the XML DSL. *)
  Format.printf "DSL document:@.%s@." (Dsl.to_string spec);
  Format.printf "generated C (hosted target):@.%s@." artifact.c_program
