(* A distributed-flavour control loop exercising every relation kind:
   a sensor task sends a message over a bus to a controller, the
   controller precedes the actuator, and a diagnostic logger is
   excluded from the controller (they share a calibration table).

   The example also shows the paper's motivation quantitatively: the
   same specification under runtime scheduling policies versus the
   pre-runtime synthesis.

   Run with:  dune exec examples/control_loop.exe *)

open Ezrealtime

let spec =
  let sensor =
    Task.make ~name:"sensor" ~wcet:3 ~deadline:15 ~period:50 ~energy:2
      ~code:"imu_sample(&frame);" ()
  in
  let controller =
    Task.make ~name:"controller" ~wcet:8 ~deadline:35 ~period:50 ~energy:6
      ~mode:Task.Preemptive ~code:"pid_step(&frame, &cmd);" ()
  in
  let actuator =
    Task.make ~name:"actuator" ~wcet:4 ~deadline:50 ~period:50 ~energy:5
      ~code:"servo_apply(cmd);" ()
  in
  let logger =
    Task.make ~name:"logger" ~wcet:6 ~deadline:50 ~period:50
      ~mode:Task.Preemptive ~code:"log_append(&frame);" ()
  in
  let frame_msg =
    Message.make ~name:"frame" ~sender:"sensor" ~receiver:"controller"
      ~bus:"can0" ~grant_time:1 ~comm_time:2 ()
  in
  Spec.make ~name:"control-loop"
    ~tasks:[ sensor; controller; actuator; logger ]
    ~messages:[ frame_msg ]
    ~precedences:[ ("controller", "actuator") ]
    ~exclusions:[ ("controller", "logger") ]
    ()

let () =
  (match Validate.check spec with
  | { Validate.errors = []; warnings } ->
    List.iter
      (fun w -> Format.printf "warning: %s@." (Validate.warning_to_string w))
      warnings
  | { Validate.errors; _ } ->
    List.iter
      (fun e -> Format.printf "error: %s@." (Validate.error_to_string e))
      errors;
    exit 1);
  let artifact = synthesize_exn spec in
  Format.printf "%a@." report artifact;
  Format.printf "timeline (note: controller and logger never interleave,@.";
  Format.printf "and the controller waits for the 3-unit bus transfer):@.%a@."
    (Timeline.pp artifact.model) artifact.segments;

  Format.printf "runtime policies vs pre-runtime synthesis:@.%a@."
    Baseline_compare.pp
    (Baseline_compare.run_all spec);

  (* How much dispatcher overhead does this table absorb? *)
  Format.printf "max tolerable dispatch overhead: %d time unit(s)@.@."
    (Vm.max_tolerable_overhead artifact.model artifact.table);

  (* How much can each WCET estimate grow before the set becomes
     unschedulable? *)
  (match Sensitivity.analyze spec with
  | Ok t -> Format.printf "WCET margins:@.%a@." Sensitivity.pp t
  | Error msg -> Format.printf "WCET margins: %s@." msg);

  Format.printf "energy per hyper-period: %d units (%s)@."
    (Timeline.energy_of artifact.model artifact.segments)
    (String.concat ", "
       (List.map
          (fun (name, e) -> Printf.sprintf "%s=%d" name e)
          (Timeline.energy_by_task artifact.model artifact.segments)))
