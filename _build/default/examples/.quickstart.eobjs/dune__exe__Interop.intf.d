examples/interop.mli:
