examples/mine_pump.ml: Case_studies Chart Dot Ezrealtime Format List Out_channel Pnml Search Spec Table Task Timeline Translate Validator Vm
