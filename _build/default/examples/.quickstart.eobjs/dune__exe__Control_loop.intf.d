examples/control_loop.mli:
