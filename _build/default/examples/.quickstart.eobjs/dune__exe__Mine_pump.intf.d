examples/mine_pump.mli:
