examples/preemptive_pipeline.mli:
