examples/control_loop.ml: Baseline_compare Ezrealtime Format List Message Printf Sensitivity Spec String Task Timeline Validate Vm
