examples/quickstart.mli:
