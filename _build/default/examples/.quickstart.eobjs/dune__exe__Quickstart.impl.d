examples/quickstart.ml: Dsl Ezrealtime Format Spec Task Timeline
