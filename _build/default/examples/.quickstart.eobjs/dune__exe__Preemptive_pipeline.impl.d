examples/preemptive_pipeline.ml: Case_studies Chart Emit Ezrealtime Format List Out_channel Printf Quality Target Vcd Vm
