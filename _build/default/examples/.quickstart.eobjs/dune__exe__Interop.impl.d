examples/interop.ml: Analysis Array Case_studies Dot Ezrealtime Format Invariants List Out_channel Pnet Pnml Query Reduce String Translate
