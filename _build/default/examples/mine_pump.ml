(* The paper's case study (§5): the Burns & Wellings mine pump control
   system, 10 non-preemptive tasks, hyper-period 30000, 782 task
   instances.

   Prints the paper-style report (states searched, minimum states,
   elapsed time) and writes the PNML, Graphviz and scheduled-C
   artifacts next to the executable.

   Run with:  dune exec examples/mine_pump.exe *)

open Ezrealtime

let () =
  let spec = Case_studies.mine_pump in
  Format.printf "=== Mine pump (paper Table 1) ===@.";
  Format.printf "%-6s %11s %8s %6s@." "task" "computation" "deadline" "period";
  List.iter
    (fun (t : Task.t) ->
      Format.printf "%-6s %11d %8d %6d@." t.Task.name t.Task.wcet
        t.Task.deadline t.Task.period)
    spec.Spec.tasks;
  Format.printf "@.hyper-period: %d, task instances: %d@."
    (Spec.hyperperiod spec) (Spec.total_instances spec);

  let artifact = synthesize_exn spec in
  let m = artifact.metrics in
  Format.printf
    "@.schedule found: %d states searched (minimum %d), %.0f ms@."
    m.Search.stored
    (Translate.minimum_states artifact.model)
    (m.Search.elapsed_s *. 1000.);
  Format.printf
    "paper reports : 3268 states searched (minimum 3130), 330 ms (AMD \
     Athlon 1800, 2008)@.";
  Format.printf "processor load: %d busy / %d idle time units@."
    (Timeline.busy_time artifact.segments)
    (Timeline.idle_time ~horizon:artifact.model.Translate.horizon
       artifact.segments);

  (* Certify the schedule once more on the virtual machine. *)
  (match Vm.verify artifact.model artifact.table with
  | Ok () -> Format.printf "virtual-machine execution: all constraints met@."
  | Error vs ->
    List.iter
      (fun v -> Format.printf "VIOLATION: %s@." (Validator.violation_to_string v))
      vs);

  (* Export the paper's artifacts. *)
  let net = artifact.model.Translate.net in
  Pnml.save_file "mine_pump.pnml" net;
  Out_channel.with_open_text "mine_pump.dot" (fun oc ->
      Out_channel.output_string oc (Dot.to_dot net));
  Out_channel.with_open_text "mine_pump_scheduled.c" (fun oc ->
      Out_channel.output_string oc artifact.c_program);
  Format.printf
    "@.artifacts written: mine_pump.pnml, mine_pump.dot, \
     mine_pump_scheduled.c@.";
  Format.printf "@.first 500 time units (# executing):@.%s@."
    (Chart.render ~upto:500 artifact.model artifact.segments);
  Format.printf "first ten schedule rows:@.";
  List.iteri
    (fun i item ->
      if i < 10 then
        Format.printf "  {%5d, %-5b, %2d} /* %s */@." item.Table.start
          item.Table.resumed (item.Table.task + 1)
          (Table.row_comment artifact.model item))
    artifact.table
