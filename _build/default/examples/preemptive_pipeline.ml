(* The Fig 8 scenario: four preemptive tasks whose only feasible
   schedules preempt and resume, reproducing the paper's schedule
   table with its start/preempt/resume row comments, then executing
   the table on the virtual target machine.

   Run with:  dune exec examples/preemptive_pipeline.exe *)

open Ezrealtime

let () =
  let spec = Case_studies.fig8_preemptive in
  let artifact = synthesize_exn spec in

  Format.printf "schedule table (paper Fig 8 format):@.@.";
  Format.printf "struct ScheduleItem scheduleTable[SCHEDULE_SIZE] =@.";
  print_string (Emit.schedule_table artifact.model artifact.table);

  Format.printf "@.Gantt chart (# executing, . preempted):@.%s@."
    (Chart.render artifact.model artifact.segments);

  Format.printf "virtual machine trace:@.";
  let outcome = Vm.execute artifact.model artifact.table in
  List.iter
    (fun e ->
      match e with
      | Vm.Dispatch _ | Vm.Preempted _ | Vm.Completed _ ->
        Format.printf "%s@." (Vm.event_to_string artifact.model e)
      | Vm.Timer_interrupt _ | Vm.Overrun _ -> ())
    outcome.Vm.trace;
  Format.printf "instances completed: %d, overruns: %d@." outcome.Vm.completed
    outcome.Vm.overruns;

  Format.printf "@.schedule quality:@.%a@." Quality.pp
    (Quality.of_timeline artifact.model artifact.segments);

  (* Waveform export: open fig8.vcd in GTKWave to see the preemptions. *)
  Vcd.save_file "fig8.vcd" artifact.model artifact.segments;
  Format.printf "wrote fig8.vcd (open with gtkwave)@.@.";

  (* The same table as compilable C for each supported target. *)
  List.iter
    (fun (name, target) ->
      let path = Printf.sprintf "fig8_%s.c" (Emit.c_identifier name) in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc
            (Emit.program ~target artifact.model artifact.table));
      Format.printf "wrote %s (%s)@." path target.Target.description)
    Target.all
