open Ezrt_tpn
module Translate = Ezrt_blocks.Translate
module Meaning = Ezrt_blocks.Meaning

type options = {
  policy : Priority.policy;
  partial_order : bool;
  latest_release : bool;
  max_stored : int;
}

let default_options =
  { policy = Priority.Edf; partial_order = true; latest_release = false;
    max_stored = 500_000 }

type failure =
  | Infeasible
  | Budget_exhausted

let failure_to_string = function
  | Infeasible -> "no feasible schedule exists for the explored choice space"
  | Budget_exhausted -> "stored-state budget exhausted"

type metrics = {
  stored : int;
  visited : int;
  eager : int;
  backtracks : int;
  max_depth : int;
  elapsed_s : float;
}

type counters = {
  mutable c_stored : int;
  mutable c_visited : int;
  mutable c_eager : int;
  mutable c_backtracks : int;
  mutable c_max_depth : int;
}

exception Found of (Pnet.transition_id * int) list
(* carries the reversed action path *)

let is_immediate net tid =
  let itv = Pnet.interval net tid in
  Time_interval.is_point itv && Time_interval.eft itv = 0

let find_schedule ?(options = default_options) model =
  let net = model.Translate.net in
  let started = Unix.gettimeofday () in
  let failed = State.Table.create 4096 in
  let counters =
    { c_stored = 0; c_visited = 0; c_eager = 0; c_backtracks = 0;
      c_max_depth = 0 }
  in
  let budget_hit = ref false in
  (* Collapse chains of forced immediate firings: when the fireable set
     is a singleton [0,0] transition, the semantics leaves no choice and
     no time passes, so the intermediate state need not become a search
     node. *)
  let rec eager_advance path_rev s =
    if
      options.partial_order
      && (not (Translate.is_final model s))
      && not (Translate.is_dead model s)
    then
      match State.fireable net s with
      | [ tid ] when is_immediate net tid ->
        counters.c_eager <- counters.c_eager + 1;
        counters.c_visited <- counters.c_visited + 1;
        eager_advance ((tid, 0) :: path_rev) (State.fire net s tid 0)
      | [] | _ :: _ -> (path_rev, s)
    else (path_rev, s)
  in
  let firing_times tid (lo, hi) =
    if
      options.latest_release
      &&
      match model.Translate.meanings.(tid) with
      | Meaning.Release _ -> true
      | Meaning.Start | Meaning.End | Meaning.Phase_arrival _
      | Meaning.Arrival _ | Meaning.Release_wait _ | Meaning.Grab _
      | Meaning.Compute _
      | Meaning.Unit_grab _ | Meaning.Unit_compute _ | Meaning.Excl_grab _
      | Meaning.Finish _ | Meaning.Deadline_ok _ | Meaning.Deadline_miss _
      | Meaning.Cycle_overrun
      | Meaning.Precedence _ | Meaning.Msg_grant _ | Meaning.Msg_transfer _ ->
        false
    then
      match hi with
      | Time_interval.Finite hi when hi > lo -> [ lo; hi ]
      | Time_interval.Finite _ | Time_interval.Infinity -> [ lo ]
    else [ lo ]
  in
  let rec dfs depth path_rev s =
    if depth > counters.c_max_depth then counters.c_max_depth <- depth;
    if Translate.is_final model s then raise (Found path_rev);
    if
      (not (Translate.is_dead model s))
      && (not (State.Table.mem failed s))
      && not !budget_hit
    then begin
      if counters.c_stored >= options.max_stored then budget_hit := true
      else begin
        counters.c_stored <- counters.c_stored + 1;
        counters.c_visited <- counters.c_visited + 1;
        let ordered =
          Priority.order options.policy model s (State.fireable net s)
        in
        let try_candidate tid =
          if not !budget_hit then
            let domain = State.firing_domain net s tid in
            List.iter
              (fun q ->
                if not !budget_hit then begin
                  let path_rev, s' =
                    eager_advance ((tid, q) :: path_rev) (State.fire net s tid q)
                  in
                  dfs (depth + 1) path_rev s'
                end)
              (firing_times tid domain)
        in
        List.iter try_candidate ordered;
        counters.c_backtracks <- counters.c_backtracks + 1;
        State.Table.replace failed s ()
      end
    end
  in
  let outcome =
    match
      let path0, s0 = eager_advance [] (State.initial net) in
      if Translate.is_final model s0 then raise (Found path0);
      dfs 0 path0 s0
    with
    | () -> Error (if !budget_hit then Budget_exhausted else Infeasible)
    | exception Found path_rev -> Ok (Schedule.of_actions (List.rev path_rev))
  in
  let metrics =
    {
      stored = counters.c_stored;
      visited = counters.c_visited;
      eager = counters.c_eager;
      backtracks = counters.c_backtracks;
      max_depth = counters.c_max_depth;
      elapsed_s = Unix.gettimeofday () -. started;
    }
  in
  (outcome, metrics)
