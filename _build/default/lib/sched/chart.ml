module Translate = Ezrt_blocks.Translate
module Task = Ezrt_spec.Task

(* Map a time instant to a chart column under scaling. *)
let column ~scale t = int_of_float (float_of_int t /. scale)

let fill_cells cells ~scale ~upto segments keep mark =
  List.iter
    (fun (seg : Timeline.segment) ->
      if keep seg && seg.Timeline.start < upto then begin
        let first = column ~scale seg.Timeline.start in
        let last = column ~scale (min upto seg.Timeline.finish - 1) in
        for c = first to min last (Array.length cells - 1) do
          cells.(c) <- mark
        done
      end)
    segments

let instance_spans segments =
  (* for the [.] preemption-gap fill: span of each instance *)
  let spans = Hashtbl.create 16 in
  List.iter
    (fun (seg : Timeline.segment) ->
      let key = (seg.Timeline.task, seg.Timeline.instance) in
      let lo, hi =
        match Hashtbl.find_opt spans key with
        | Some (lo, hi) -> (min lo seg.Timeline.start, max hi seg.Timeline.finish)
        | None -> (seg.Timeline.start, seg.Timeline.finish)
      in
      Hashtbl.replace spans key (lo, hi))
    segments;
  spans

let render ?(width = 72) ?upto model segments =
  let horizon = model.Translate.horizon in
  let upto =
    match upto with Some u -> min u horizon | None -> horizon
  in
  let columns = min width upto in
  let columns = max columns 1 in
  let scale = float_of_int upto /. float_of_int columns in
  let spans = instance_spans segments in
  let buf = Buffer.create 256 in
  let name_width =
    Array.fold_left
      (fun acc (t : Task.t) -> max acc (String.length t.Task.name))
      0 model.Translate.tasks
  in
  Array.iteri
    (fun i (task : Task.t) ->
      let cells = Array.make columns ' ' in
      (* preemption gaps first, then execution on top *)
      Hashtbl.iter
        (fun (t, _) (lo, hi) ->
          if t = i && lo < upto then
            for c = column ~scale lo to min (column ~scale (min upto hi - 1)) (columns - 1) do
              cells.(c) <- '.'
            done)
        spans;
      fill_cells cells ~scale ~upto segments
        (fun seg -> seg.Timeline.task = i)
        '#';
      Buffer.add_string buf
        (Printf.sprintf "%-*s |%s|\n" name_width task.Task.name
           (String.init columns (Array.get cells))))
    model.Translate.tasks;
  Buffer.contents buf

let render_occupancy ?(width = 72) ~horizon segments =
  let columns = max 1 (min width horizon) in
  let scale = float_of_int horizon /. float_of_int columns in
  let cells = Array.make columns ' ' in
  fill_cells cells ~scale ~upto:horizon segments (fun _ -> true) '#';
  Printf.sprintf "cpu |%s|\n" (String.init columns (Array.get cells))
