(** Feasible firing schedules (paper Def 3.2): a sequence of
    [(t, q)] actions from the initial state to the final marking [MF],
    with the absolute firing times accumulated along the path. *)

open Ezrt_tpn

type entry = {
  tid : Pnet.transition_id;
  delay : int;  (** [q]: time since the previous firing *)
  time : int;  (** absolute firing time *)
}

type t = { entries : entry list }

val of_actions : (Pnet.transition_id * int) list -> t
(** From relative [(t, q)] pairs, accumulating absolute times. *)

val length : t -> int
val makespan : t -> int
(** Absolute time of the last firing (0 for an empty schedule). *)

val replay : Pnet.t -> t -> State.t
(** Re-fires the whole schedule from the initial state, checking every
    step against the TPN semantics; returns the reached state.  Raises
    [Invalid_argument] if any step is illegal — used to certify that a
    schedule produced by the search is semantically real. *)

val pp : Ezrt_blocks.Translate.t -> Format.formatter -> t -> unit
(** Renders entries as [(name, q) @ time], one per line. *)
