open Ezrt_tpn
module Translate = Ezrt_blocks.Translate
module Meaning = Ezrt_blocks.Meaning
module Task = Ezrt_spec.Task

type policy =
  | Fifo
  | Edf
  | Rm
  | Dm
  | Continuity

let all =
  [ ("fifo", Fifo); ("edf", Edf); ("rm", Rm); ("dm", Dm);
    ("continuity", Continuity) ]

let to_string = function
  | Fifo -> "fifo"
  | Edf -> "edf"
  | Rm -> "rm"
  | Dm -> "dm"
  | Continuity -> "continuity"

let no_urgency = max_int / 2

(* Time remaining to the current instance deadline of task [i], read
   off the deadline-watch transition's clock.  When the watch is not
   armed the task has no pending instance. *)
let slack model s i =
  let td = model.Translate.deadline_watch.(i) in
  if State.is_enabled s td then
    match State.dub model.Translate.net s td with
    | Time_interval.Finite q -> q
    | Time_interval.Infinity -> no_urgency
  else no_urgency

(* A preemptive instance is in progress when some units have been
   consumed but work remains: the unit pool is partially drained or a
   unit holds the processor right now. *)
let in_progress model (s : State.t) i =
  match model.Translate.progress.(i) with
  | None -> false
  | Some (pwu, pwx) ->
    let pending = s.State.marking.(pwu) and running = s.State.marking.(pwx) in
    let total = pending + running in
    running > 0 || (total > 0 && total < model.Translate.tasks.(i).Task.wcet)

let key policy model s tid =
  match Meaning.task_index model.Translate.meanings.(tid) with
  | None -> no_urgency
  | Some i -> (
    let task = model.Translate.tasks.(i) in
    match policy with
    | Fifo -> tid
    | Edf -> slack model s i
    | Rm -> task.Task.period
    | Dm -> task.Task.deadline
    | Continuity ->
      let started = if in_progress model s i then 0 else 1 in
      (started * no_urgency) + slack model s i)

let order policy model s candidates =
  let decorated =
    List.map
      (fun tid -> (key policy model s tid, State.dlb model.Translate.net s tid, tid))
      candidates
  in
  List.map (fun (_, _, tid) -> tid) (List.sort compare decorated)
