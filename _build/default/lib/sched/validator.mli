(** Independent check of a synthesized timeline against the
    specification.

    This deliberately does not look at the Petri net: it re-derives
    every timing constraint from the task parameters and relations, so
    that a bug in the block library or in the search cannot vouch for
    itself. *)

type violation =
  | Wrong_instance_count of string * int * int  (** task, expected, got *)
  | Wrong_amount of string * int * int * int
      (** task, instance, expected WCET, executed *)
  | Started_before_release of string * int * int * int
      (** task, instance, earliest legal start, actual *)
  | Missed_deadline of string * int * int * int
      (** task, instance, deadline, completion *)
  | Fragmented_non_preemptive of string * int
  | Processor_overlap of string * string * int
      (** two segments hold the processor at the same instant *)
  | Precedence_violated of string * string * int
      (** pred, succ, instance *)
  | Exclusion_interleaved of string * string * int
      (** the instance spans of an excluded pair overlap; time given *)
  | Message_too_early of string * int
      (** receiver started before the message could be delivered *)

val violation_to_string : violation -> string

val check :
  Ezrt_blocks.Translate.t -> Timeline.segment list -> (unit, violation list) result

val check_exn : Ezrt_blocks.Translate.t -> Timeline.segment list -> unit
(** Raises [Failure] listing the violations. *)
