(** WCET sensitivity analysis.

    Pre-runtime schedules are synthesized against worst-case execution
    times; a WCET estimate that later grows can void feasibility.  This
    module measures, per task, the largest WCET for which the whole
    specification remains schedulable (all other parameters fixed) —
    the task's WCET margin — by binary search over full syntheses.

    The margin is with respect to the schedulability of the *modified
    specification*, so it accounts for every relation and for the other
    tasks' constraints, not just the task's own deadline. *)

type row = {
  task : string;
  wcet : int;
  max_wcet : int;
      (** largest feasible WCET found (at least [wcet] when the input
          is schedulable) *)
  margin : int;  (** [max_wcet - wcet] *)
}

type t = {
  rows : row list;
  syntheses : int;  (** schedule syntheses performed *)
}

val analyze :
  ?options:Search.options -> ?limit_factor:int -> Ezrt_spec.Spec.t -> (t, string) result
(** [limit_factor] bounds the search: a task's WCET is never probed
    beyond [min (deadline - release, limit_factor * wcet)] (default 16).
    Returns [Error] when the specification itself is invalid or not
    schedulable. *)

val pp : Format.formatter -> t -> unit

type deadline_row = {
  d_task : string;
  deadline : int;
  min_deadline : int;
      (** smallest deadline for which the whole specification stays
          schedulable — the task's exact best-achievable worst-case
          response bound under pre-runtime scheduling *)
  d_margin : int;  (** [deadline - min_deadline] *)
}

type deadline_report = {
  d_rows : deadline_row list;
  d_syntheses : int;
}

val deadline_margins :
  ?options:Search.options -> Ezrt_spec.Spec.t -> (deadline_report, string) result
(** Per task, binary search for the tightest deadline the synthesis
    can still meet (all other parameters fixed).  Returns [Error] when
    the specification is invalid or unschedulable as given. *)

val pp_deadlines : Format.formatter -> deadline_report -> unit
