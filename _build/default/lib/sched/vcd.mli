(** Value Change Dump (IEEE 1364) export of execution timelines.

    One 1-bit wire per task (high while the task holds the processor)
    plus a [cpu] busy wire, so synthesized schedules can be inspected
    in GTKWave or any other EDA waveform viewer next to the signals of
    the rest of the design. *)

val of_timeline :
  ?timescale:string ->
  Ezrt_blocks.Translate.t ->
  Timeline.segment list ->
  string
(** [timescale] defaults to ["1us"] (one time unit = 1 microsecond).
    The dump covers [0 .. horizon]. *)

val save_file :
  ?timescale:string ->
  string ->
  Ezrt_blocks.Translate.t ->
  Timeline.segment list ->
  unit
