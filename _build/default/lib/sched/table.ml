module Translate = Ezrt_blocks.Translate
module Task = Ezrt_spec.Task

type item = {
  start : int;
  resumed : bool;
  task : int;
  instance : int;
  preempts : (int * int) option;
}

let of_segments segments =
  let segments =
    List.sort (fun a b -> compare a.Timeline.start b.Timeline.start) segments
  in
  (* A row preempts instance X when X has a segment ending exactly at
     the row's start and a later segment still to run. *)
  let cut_instance_at time =
    List.find_map
      (fun (s : Timeline.segment) ->
        if
          s.Timeline.finish = time
          && List.exists
               (fun (later : Timeline.segment) ->
                 later.Timeline.task = s.Timeline.task
                 && later.Timeline.instance = s.Timeline.instance
                 && later.Timeline.start > time)
               segments
        then Some (s.Timeline.task, s.Timeline.instance)
        else None)
      segments
  in
  List.map
    (fun (s : Timeline.segment) ->
      {
        start = s.Timeline.start;
        resumed = s.Timeline.resumed;
        task = s.Timeline.task;
        instance = s.Timeline.instance;
        preempts = (if s.Timeline.resumed then None else cut_instance_at s.Timeline.start);
      })
    segments

let of_schedule model schedule =
  of_segments (Timeline.of_schedule model schedule)

let short_name model task instance =
  let name = model.Translate.tasks.(task).Task.name in
  (* Fig 8 numbers instances from 1 and abbreviates TaskA as A1. *)
  let name =
    if String.length name > 4 && String.sub name 0 4 = "Task" then
      String.sub name 4 (String.length name - 4)
    else name
  in
  Printf.sprintf "%s%d" name (instance + 1)

let row_comment model item =
  let self = short_name model item.task item.instance in
  if item.resumed then Printf.sprintf "%s resumes" self
  else
    match item.preempts with
    | Some (task, instance) ->
      Printf.sprintf "%s preempts %s" self (short_name model task instance)
    | None -> Printf.sprintf "%s starts" self

let pp model fmt items =
  List.iter
    (fun item ->
      Format.fprintf fmt "{%3d, %-5b, %d} /* %s */@." item.start item.resumed
        (item.task + 1) (row_comment model item))
    items
