lib/sched/validator.mli: Ezrt_blocks Timeline
