lib/sched/timeline.mli: Ezrt_blocks Format Schedule
