lib/sched/schedule.ml: Ezrt_blocks Ezrt_tpn Format List Pnet State
