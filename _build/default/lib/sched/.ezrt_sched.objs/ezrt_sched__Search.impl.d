lib/sched/search.ml: Array Ezrt_blocks Ezrt_tpn List Pnet Priority Schedule State Time_interval Unix
