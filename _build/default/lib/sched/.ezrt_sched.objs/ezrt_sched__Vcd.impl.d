lib/sched/vcd.ml: Array Buffer Char Ezrt_blocks Ezrt_spec List Out_channel Printf String Timeline
