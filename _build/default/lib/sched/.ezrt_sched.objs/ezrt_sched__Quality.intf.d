lib/sched/quality.mli: Ezrt_blocks Format Timeline
