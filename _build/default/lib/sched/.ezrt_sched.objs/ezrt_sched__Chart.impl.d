lib/sched/chart.ml: Array Buffer Ezrt_blocks Ezrt_spec Hashtbl List Printf String Timeline
