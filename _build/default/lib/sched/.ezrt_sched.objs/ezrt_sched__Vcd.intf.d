lib/sched/vcd.mli: Ezrt_blocks Timeline
