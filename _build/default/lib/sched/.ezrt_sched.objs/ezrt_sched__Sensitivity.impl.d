lib/sched/sensitivity.ml: Ezrt_blocks Ezrt_spec Format List Search String
