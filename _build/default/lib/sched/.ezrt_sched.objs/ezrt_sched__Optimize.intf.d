lib/sched/optimize.mli: Ezrt_blocks Schedule Search
