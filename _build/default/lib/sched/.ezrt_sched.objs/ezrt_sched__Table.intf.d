lib/sched/table.mli: Ezrt_blocks Format Schedule Timeline
