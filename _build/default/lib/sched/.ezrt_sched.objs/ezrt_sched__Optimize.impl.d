lib/sched/optimize.ml: Array Ezrt_blocks Ezrt_tpn List Option Priority Schedule Search State
