lib/sched/timeline.ml: Array Ezrt_blocks Ezrt_spec Format List Schedule
