lib/sched/schedule.mli: Ezrt_blocks Ezrt_tpn Format Pnet State
