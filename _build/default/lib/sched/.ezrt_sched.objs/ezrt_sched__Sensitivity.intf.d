lib/sched/sensitivity.mli: Ezrt_spec Format Search
