lib/sched/priority.ml: Array Ezrt_blocks Ezrt_spec Ezrt_tpn List State Time_interval
