lib/sched/table.ml: Array Ezrt_blocks Ezrt_spec Format List Printf String Timeline
