lib/sched/search.mli: Ezrt_blocks Priority Schedule
