lib/sched/quality.ml: Array Ezrt_blocks Ezrt_spec Format Hashtbl List Printf Timeline
