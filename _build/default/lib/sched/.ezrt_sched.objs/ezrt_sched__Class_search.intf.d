lib/sched/class_search.mli: Ezrt_blocks Schedule
