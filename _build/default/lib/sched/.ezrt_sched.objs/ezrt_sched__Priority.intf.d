lib/sched/priority.mli: Ezrt_blocks Ezrt_tpn Pnet State
