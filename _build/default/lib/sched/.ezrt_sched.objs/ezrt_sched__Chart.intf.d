lib/sched/chart.mli: Ezrt_blocks Timeline
