lib/sched/class_search.ml: Array Dbm Ezrt_blocks Ezrt_tpn List Pnet Schedule State State_class Time_interval Unix
