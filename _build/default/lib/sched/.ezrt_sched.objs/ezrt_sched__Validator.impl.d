lib/sched/validator.ml: Array Ezrt_blocks Ezrt_spec Hashtbl List Option Printf String Timeline
