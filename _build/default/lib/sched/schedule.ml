open Ezrt_tpn

type entry = {
  tid : Pnet.transition_id;
  delay : int;
  time : int;
}

type t = { entries : entry list }

let of_actions actions =
  let _, rev =
    List.fold_left
      (fun (now, acc) (tid, delay) ->
        let time = now + delay in
        (time, { tid; delay; time } :: acc))
      (0, []) actions
  in
  { entries = List.rev rev }

let length s = List.length s.entries

let makespan s =
  List.fold_left (fun acc e -> max acc e.time) 0 s.entries

let replay net s =
  List.fold_left
    (fun state e -> State.fire net state e.tid e.delay)
    (State.initial net) s.entries

let pp model fmt s =
  List.iter
    (fun e ->
      Format.fprintf fmt "(%s, %d) @ %d@."
        (Pnet.transition_name model.Ezrt_blocks.Translate.net e.tid)
        e.delay e.time)
    s.entries
