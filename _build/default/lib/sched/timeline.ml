module Translate = Ezrt_blocks.Translate
module Meaning = Ezrt_blocks.Meaning
module Task = Ezrt_spec.Task

type segment = {
  task : int;
  instance : int;
  start : int;
  finish : int;
  resumed : bool;
}

let duration seg = seg.finish - seg.start

type task_progress = {
  mutable releases : int;  (* instances released so far *)
  mutable open_at : int;  (* start of the in-flight np computation / unit *)
  mutable pending : (int * int) option;  (* merged unit run [start, finish) *)
  mutable emitted : int;  (* segments emitted for the current instance *)
}

let of_schedule model schedule =
  let n = Array.length model.Translate.tasks in
  let progress =
    Array.init n (fun _ ->
        { releases = 0; open_at = -1; pending = None; emitted = 0 })
  in
  let segments = ref [] in
  let emit i start finish =
    let p = progress.(i) in
    segments :=
      {
        task = i;
        instance = p.releases - 1;
        start;
        finish;
        resumed = p.emitted > 0;
      }
      :: !segments;
    p.emitted <- p.emitted + 1
  in
  let flush_pending i =
    let p = progress.(i) in
    match p.pending with
    | None -> ()
    | Some (start, finish) ->
      p.pending <- None;
      emit i start finish
  in
  let step (e : Schedule.entry) =
    let time = e.Schedule.time in
    match model.Translate.meanings.(e.Schedule.tid) with
    | Meaning.Release i ->
      let p = progress.(i) in
      p.releases <- p.releases + 1;
      p.emitted <- 0
    | Meaning.Grab i -> progress.(i).open_at <- time
    | Meaning.Compute i ->
      let p = progress.(i) in
      if p.open_at < 0 then
        invalid_arg "Timeline.of_schedule: compute without grab";
      emit i p.open_at time;
      p.open_at <- -1
    | Meaning.Unit_grab i ->
      let p = progress.(i) in
      (* A unit starting later than the pending run ends means the task
         was preempted: close the previous segment. *)
      (match p.pending with
      | Some (_, finish) when finish <> time -> flush_pending i
      | Some _ | None -> ());
      p.open_at <- time
    | Meaning.Unit_compute i ->
      let p = progress.(i) in
      if p.open_at < 0 then
        invalid_arg "Timeline.of_schedule: unit-compute without unit-grab";
      (match p.pending with
      | Some (start, finish) when finish = p.open_at ->
        p.pending <- Some (start, time)
      | Some _ | None -> p.pending <- Some (p.open_at, time));
      p.open_at <- -1
    | Meaning.Finish i -> flush_pending i
    | Meaning.Start | Meaning.End | Meaning.Phase_arrival _
    | Meaning.Arrival _ | Meaning.Release_wait _ | Meaning.Excl_grab _
    | Meaning.Deadline_ok _ | Meaning.Deadline_miss _ | Meaning.Cycle_overrun
    | Meaning.Precedence _ | Meaning.Msg_grant _ | Meaning.Msg_transfer _ -> ()
  in
  List.iter step schedule.Schedule.entries;
  List.sort
    (fun a b -> compare (a.start, a.task, a.instance) (b.start, b.task, b.instance))
    !segments

let busy_time segments =
  List.fold_left (fun acc seg -> acc + duration seg) 0 segments

let idle_time ~horizon segments = horizon - busy_time segments

let executed_instances segments =
  List.sort_uniq compare
    (List.map (fun seg -> (seg.task, seg.instance)) segments)

let energy_by_task model segments =
  let totals = Array.make (Array.length model.Translate.tasks) 0 in
  List.iter
    (fun (task, _) ->
      totals.(task) <- totals.(task) + model.Translate.tasks.(task).Task.energy)
    (executed_instances segments);
  Array.to_list
    (Array.mapi
       (fun i total -> (model.Translate.tasks.(i).Task.name, total))
       totals)

let energy_of model segments =
  List.fold_left (fun acc (_, e) -> acc + e) 0 (energy_by_task model segments)

let pp model fmt segments =
  List.iter
    (fun seg ->
      Format.fprintf fmt "  [%4d, %4d) %s#%d%s@." seg.start seg.finish
        model.Translate.tasks.(seg.task).Task.name seg.instance
        (if seg.resumed then " (resumed)" else ""))
    segments
