(** Branch-ordering policies for the depth-first search.

    The TPN's static priority function already filters the fireable set
    [FT(s)]; among the remaining candidates the search is free to pick
    any exploration order, and a good order finds a feasible schedule
    with few backtracks.  Keys are compared smaller-first. *)

open Ezrt_tpn

type policy =
  | Fifo  (** transition-id order: the unguided baseline *)
  | Edf
      (** earliest (absolute) deadline first, read dynamically off the
          deadline-watch clock of the candidate's task *)
  | Rm  (** rate monotonic: smallest period first *)
  | Dm  (** deadline monotonic: smallest relative deadline first *)
  | Continuity
      (** preemption-avoiding: prefer the preemptive task whose
          instance has already executed some units (finishing it avoids
          a resume row in the table), then fall back to EDF slack *)

val all : (string * policy) list
val to_string : policy -> string

val key :
  policy -> Ezrt_blocks.Translate.t -> State.t -> Pnet.transition_id -> int
(** Ordering key of a candidate transition in a state.  Transitions not
    belonging to a task (bookkeeping, messages) sort last. *)

val order :
  policy ->
  Ezrt_blocks.Translate.t ->
  State.t ->
  Pnet.transition_id list ->
  Pnet.transition_id list
(** Stable sort of the candidates by {!key}, tie-broken by earliest
    dynamic lower bound and then transition id. *)
