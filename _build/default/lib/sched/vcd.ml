module Translate = Ezrt_blocks.Translate
module Task = Ezrt_spec.Task

(* VCD identifier codes: printable ASCII from '!' (33) upward. *)
let code i = String.make 1 (Char.chr (33 + i))

(* VCD reference names must not contain whitespace. *)
let mangle name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let of_timeline ?(timescale = "1us") model segments =
  let n = Array.length model.Translate.tasks in
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "$comment ezRealtime synthesized schedule: %s $end\n"
    model.Translate.spec.Ezrt_spec.Spec.name;
  out "$timescale %s $end\n" timescale;
  out "$scope module ezrt $end\n";
  for i = 0 to n - 1 do
    out "$var wire 1 %s %s $end\n" (code i)
      (mangle model.Translate.tasks.(i).Task.name)
  done;
  out "$var wire 1 %s cpu $end\n" (code n);
  out "$upscope $end\n$enddefinitions $end\n";
  (* change list: (time, wire index, value) *)
  let changes = ref [] in
  List.iter
    (fun (seg : Timeline.segment) ->
      changes :=
        (seg.Timeline.start, seg.Timeline.task, true)
        :: (seg.Timeline.finish, seg.Timeline.task, false)
        :: (seg.Timeline.start, n, true)
        :: (seg.Timeline.finish, n, false)
        :: !changes)
    segments;
  let changes =
    List.sort
      (fun (ta, wa, va) (tb, wb, vb) ->
        (* at equal times, falling edges first so back-to-back
           segments produce 0 then 1 (net: stays 1 for the cpu wire
           only if re-raised, which the later rise does) *)
        compare (ta, not va, wa) (tb, not vb, wb))
      !changes
  in
  out "$dumpvars\n";
  for i = 0 to n do
    out "0%s\n" (code i)
  done;
  out "$end\n";
  let current = Array.make (n + 1) false in
  let emitted_time = ref (-1) in
  (* coalesce: apply all changes of an instant, emit the net effect *)
  let pending = Array.make (n + 1) None in
  let flush time =
    let any = ref false in
    Array.iteri
      (fun w v ->
        match v with
        | Some value when value <> current.(w) -> any := true
        | Some _ | None -> ())
      pending;
    if !any then begin
      if time <> !emitted_time then begin
        out "#%d\n" time;
        emitted_time := time
      end;
      Array.iteri
        (fun w v ->
          match v with
          | Some value when value <> current.(w) ->
            current.(w) <- value;
            out "%c%s\n" (if value then '1' else '0') (code w)
          | Some _ | None -> ())
        pending
    end;
    Array.fill pending 0 (n + 1) None
  in
  let rec walk last = function
    | [] -> flush last
    | (time, wire, value) :: rest ->
      if time <> last then flush last;
      (* a rise overrides a fall at the same instant (continuous
         occupancy), a fall never overrides a rise *)
      (match pending.(wire) with
      | Some true when not value -> ()
      | Some _ | None -> pending.(wire) <- Some value);
      walk time rest
  in
  (match changes with
  | [] -> ()
  | (t0, _, _) :: _ -> walk t0 changes);
  out "#%d\n" model.Translate.horizon;
  Buffer.contents buf

let save_file ?timescale path model segments =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (of_timeline ?timescale model segments))
