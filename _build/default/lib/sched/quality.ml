module Translate = Ezrt_blocks.Translate
module Task = Ezrt_spec.Task

type task_quality = {
  task : string;
  instances : int;
  best_response : int;
  worst_response : int;
  avg_response : float;
  worst_slack : int;
  start_jitter : int;
  preemptions : int;
}

type t = {
  tasks : task_quality list;
  total_preemptions : int;
  context_switches : int;
  busy : int;
  idle : int;
  makespan : int;
}

type instance_acc = {
  mutable first_start : int;
  mutable last_finish : int;
}

let of_timeline model segments =
  let n = Array.length model.Translate.tasks in
  let per_instance : (int * int, instance_acc) Hashtbl.t = Hashtbl.create 64 in
  let preemptions = Array.make n 0 in
  List.iter
    (fun (seg : Timeline.segment) ->
      if seg.Timeline.resumed then
        preemptions.(seg.Timeline.task) <- preemptions.(seg.Timeline.task) + 1;
      let key = (seg.Timeline.task, seg.Timeline.instance) in
      match Hashtbl.find_opt per_instance key with
      | Some acc ->
        acc.first_start <- min acc.first_start seg.Timeline.start;
        acc.last_finish <- max acc.last_finish seg.Timeline.finish
      | None ->
        Hashtbl.replace per_instance key
          { first_start = seg.Timeline.start; last_finish = seg.Timeline.finish })
    segments;
  let task_rows =
    List.init n (fun i ->
        let task = model.Translate.tasks.(i) in
        let expected = model.Translate.instance_counts.(i) in
        let responses = ref [] in
        let slacks = ref [] in
        let offsets = ref [] in
        for k = 0 to expected - 1 do
          match Hashtbl.find_opt per_instance (i, k) with
          | None ->
            invalid_arg
              (Printf.sprintf "Quality.of_timeline: %s#%d missing"
                 task.Task.name k)
          | Some acc ->
            let arrival = task.Task.phase + (k * task.Task.period) in
            responses := (acc.last_finish - arrival) :: !responses;
            slacks := (arrival + task.Task.deadline - acc.last_finish) :: !slacks;
            offsets := (acc.first_start - arrival) :: !offsets
        done;
        let responses = !responses and slacks = !slacks and offsets = !offsets in
        let fold f init = List.fold_left f init responses in
        {
          task = task.Task.name;
          instances = expected;
          best_response = fold min max_int;
          worst_response = fold max 0;
          avg_response =
            float_of_int (fold ( + ) 0) /. float_of_int (max 1 expected);
          worst_slack = List.fold_left min max_int slacks;
          start_jitter =
            List.fold_left max 0 offsets - List.fold_left min max_int offsets;
          preemptions = preemptions.(i);
        })
  in
  {
    tasks = task_rows;
    total_preemptions = Array.fold_left ( + ) 0 preemptions;
    context_switches = List.length segments;
    busy = Timeline.busy_time segments;
    idle = Timeline.idle_time ~horizon:model.Translate.horizon segments;
    makespan =
      List.fold_left
        (fun acc (seg : Timeline.segment) -> max acc seg.Timeline.finish)
        0 segments;
  }

let pp fmt q =
  Format.fprintf fmt
    "%d context switches, %d preemptions, busy %d / idle %d, makespan %d@."
    q.context_switches q.total_preemptions q.busy q.idle q.makespan;
  Format.fprintf fmt "%-10s %5s %9s %9s %9s %7s %7s %6s@." "task" "inst"
    "best-R" "worst-R" "avg-R" "slack" "jitter" "preem";
  List.iter
    (fun t ->
      Format.fprintf fmt "%-10s %5d %9d %9d %9.1f %7d %7d %6d@." t.task
        t.instances t.best_response t.worst_response t.avg_response
        t.worst_slack t.start_jitter t.preemptions)
    q.tasks
