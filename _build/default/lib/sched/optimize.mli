(** Exact schedule optimization by branch-and-bound.

    The DFS of {!Search} stops at the first feasible schedule; this
    module keeps searching the same space for the schedule minimizing a
    cost, pruning branches whose partial cost already reaches the best
    known bound.  Failed-state memoization must be weakened to
    (state, cost) dominance, so this is for small-to-medium models —
    the paper-scale relation examples, not the 782-instance mine pump.

    Supported cost: the number of preemptions (resume rows in the Fig 8
    table), the natural objective for table-driven dispatchers where
    every resume needs a context restore. *)

type outcome = {
  schedule : Schedule.t;
  preemptions : int;  (** the proven minimum *)
  explored : int;  (** branch-and-bound nodes *)
  improvements : int;  (** how many times the incumbent improved *)
}

val min_preemptions :
  ?max_nodes:int ->
  ?initial_bound:int ->
  Ezrt_blocks.Translate.t ->
  (outcome, Search.failure) result
(** Finds a feasible schedule with the provably minimal number of
    preemptions.  [initial_bound] primes the incumbent (e.g. from a
    heuristic run); [max_nodes] (default 2_000_000) bounds the search —
    when it trips, the best incumbent so far is returned if one exists
    (no optimality claim) and [explored >= max_nodes] reveals the
    truncation. *)
