(** The schedule table of paper Fig 8: one row per execution part of a
    task instance, with the start time, a flag telling the dispatcher
    whether the instance was preempted before (so its context must be
    restored rather than its entry point called), and the task id. *)

type item = {
  start : int;
  resumed : bool;  (** Fig 8's [flag]: true on resume rows *)
  task : int;  (** task index; the generated C uses [task + 1] as id *)
  instance : int;  (** 0-based instance number *)
  preempts : (int * int) option;
      (** the (task, instance) cut short at this row's start, if any —
          drives the Fig 8 row comments *)
}

val of_segments : Timeline.segment list -> item list
(** Rows in start-time order. *)

val of_schedule : Ezrt_blocks.Translate.t -> Schedule.t -> item list

val row_comment : Ezrt_blocks.Translate.t -> item -> string
(** ["A1 starts"], ["B1 preempts A1"] or ["B1 resumes"], matching the
    comments of Fig 8 (instances are numbered from 1 there). *)

val pp : Ezrt_blocks.Translate.t -> Format.formatter -> item list -> unit
