(** Quality metrics of a synthesized schedule.

    Pre-runtime scheduling fixes every start time, so response times
    and release jitter are exact numbers rather than bounds; this
    module derives them from the execution timeline, per task and
    globally. *)

type task_quality = {
  task : string;
  instances : int;
  best_response : int;  (** min over instances of finish - arrival *)
  worst_response : int;
  avg_response : float;
  worst_slack : int;  (** min over instances of deadline - finish; >= 0 *)
  start_jitter : int;
      (** max - min over instances of (first start - arrival) *)
  preemptions : int;  (** resumed segments of this task *)
}

type t = {
  tasks : task_quality list;
  total_preemptions : int;
  context_switches : int;
      (** schedule-table rows: dispatcher activations per hyper-period *)
  busy : int;
  idle : int;
  makespan : int;  (** completion of the last instance *)
}

val of_timeline : Ezrt_blocks.Translate.t -> Timeline.segment list -> t
(** Raises [Invalid_argument] when some instance is missing from the
    timeline (quality is only defined for complete schedules). *)

val pp : Format.formatter -> t -> unit
