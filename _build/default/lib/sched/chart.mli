(** ASCII Gantt charts of execution timelines.

    One row per task, one column per time unit (scaled down for long
    horizons).  Execution is drawn with [#], preempted-instance gaps
    with [.], idle time is blank:

    {v
    TaskA  |##.......####|
    TaskB  |  ######     |
    v} *)

val render :
  ?width:int ->
  ?upto:int ->
  Ezrt_blocks.Translate.t ->
  Timeline.segment list ->
  string
(** [render model segments] draws the first hyper-period ([upto]
    defaults to the model's horizon and is clipped to it).  [width]
    (default 72) bounds the number of chart columns; longer horizons
    are scaled, and a column shows [#] when any execution of the task
    falls into it. *)

val render_occupancy :
  ?width:int -> horizon:int -> Timeline.segment list -> string
(** A single-row processor-occupancy strip for the same timeline. *)
