(** Task-level execution timeline derived from a feasible firing
    schedule: which task instance occupied the processor when.

    Preemptive unit firings are merged into maximal contiguous
    segments; an instance executed in several segments was preempted
    in between, and every segment after the first carries
    [resumed = true] (the Fig 8 flag). *)

type segment = {
  task : int;  (** task index *)
  instance : int;  (** 0-based instance number within the hyper-period *)
  start : int;
  finish : int;  (** exclusive: the processor is held on [start, finish) *)
  resumed : bool;
}

val duration : segment -> int

val of_schedule : Ezrt_blocks.Translate.t -> Schedule.t -> segment list
(** Segments sorted by start time.  Raises [Invalid_argument] when the
    schedule is not consistent with the net's block structure (which
    cannot happen for schedules produced by {!Search}). *)

val busy_time : segment list -> int
val idle_time : horizon:int -> segment list -> int

val energy_of : Ezrt_blocks.Translate.t -> segment list -> int
(** Total energy of the executed instances (each instance costs its
    task's metamodel [energy] value once). *)

val energy_by_task : Ezrt_blocks.Translate.t -> segment list -> (string * int) list
(** Energy per task name, in task order. *)

val pp : Ezrt_blocks.Translate.t -> Format.formatter -> segment list -> unit
(** One line per segment: [  [start, finish) TaskName#instance (resumed)]. *)
