module Spec = Ezrt_spec.Spec
module Task = Ezrt_spec.Task
module Translate = Ezrt_blocks.Translate

type row = {
  task : string;
  wcet : int;
  max_wcet : int;
  margin : int;
}

type t = {
  rows : row list;
  syntheses : int;
}

let with_wcet spec task_id wcet =
  {
    spec with
    Spec.tasks =
      List.map
        (fun (t : Task.t) ->
          if String.equal t.Task.id task_id then { t with Task.wcet } else t)
        spec.Spec.tasks;
  }

let analyze ?options ?(limit_factor = 16) spec =
  let syntheses = ref 0 in
  let schedulable candidate =
    incr syntheses;
    Ezrt_spec.Validate.is_valid candidate
    &&
    match Search.find_schedule ?options (Translate.translate candidate) with
    | Ok _, _ -> true
    | Error _, _ -> false
  in
  if not (Ezrt_spec.Validate.is_valid spec) then
    Error "specification does not validate"
  else if not (schedulable spec) then
    Error "specification is not schedulable as given"
  else begin
    let rows =
      List.map
        (fun (task : Task.t) ->
          (* a feasible WCET can never exceed the window d - r, and the
             utilization ceiling caps it too; binary search on the
             monotone feasibility predicate *)
          let hard_cap =
            min
              (task.Task.deadline - task.Task.release)
              (limit_factor * task.Task.wcet)
          in
          let ok c = schedulable (with_wcet spec task.Task.id c) in
          let rec search lo hi =
            (* invariant: ok lo, not (ok (hi + 1)) or hi = cap *)
            if lo >= hi then lo
            else
              let mid = (lo + hi + 1) / 2 in
              if ok mid then search mid hi else search lo (mid - 1)
          in
          let max_wcet = search task.Task.wcet hard_cap in
          {
            task = task.Task.name;
            wcet = task.Task.wcet;
            max_wcet;
            margin = max_wcet - task.Task.wcet;
          })
        spec.Spec.tasks
    in
    Ok { rows; syntheses = !syntheses }
  end

type deadline_row = {
  d_task : string;
  deadline : int;
  min_deadline : int;
  d_margin : int;
}

type deadline_report = {
  d_rows : deadline_row list;
  d_syntheses : int;
}

let with_deadline spec task_id deadline =
  {
    spec with
    Spec.tasks =
      List.map
        (fun (t : Task.t) ->
          if String.equal t.Task.id task_id then { t with Task.deadline }
          else t)
        spec.Spec.tasks;
  }

let deadline_margins ?options spec =
  let syntheses = ref 0 in
  let schedulable candidate =
    incr syntheses;
    Ezrt_spec.Validate.is_valid candidate
    &&
    match Search.find_schedule ?options (Translate.translate candidate) with
    | Ok _, _ -> true
    | Error _, _ -> false
  in
  if not (Ezrt_spec.Validate.is_valid spec) then
    Error "specification does not validate"
  else if not (schedulable spec) then
    Error "specification is not schedulable as given"
  else begin
    let d_rows =
      List.map
        (fun (task : Task.t) ->
          (* feasibility is monotone in the deadline: search for the
             smallest feasible one in [r + c, d] *)
          let floor = task.Task.release + task.Task.wcet in
          let ok d = schedulable (with_deadline spec task.Task.id d) in
          let rec search lo hi =
            (* invariant: ok hi, not (ok (lo - 1)) or lo = floor *)
            if lo >= hi then hi
            else
              let mid = (lo + hi) / 2 in
              if ok mid then search lo mid else search (mid + 1) hi
          in
          let min_deadline = search floor task.Task.deadline in
          {
            d_task = task.Task.name;
            deadline = task.Task.deadline;
            min_deadline;
            d_margin = task.Task.deadline - min_deadline;
          })
        spec.Spec.tasks
    in
    Ok { d_rows; d_syntheses = !syntheses }
  end

let pp_deadlines fmt t =
  Format.fprintf fmt "%-10s %9s %13s %7s@." "task" "deadline" "min-deadline"
    "margin";
  List.iter
    (fun row ->
      Format.fprintf fmt "%-10s %9d %13d %7d@." row.d_task row.deadline
        row.min_deadline row.d_margin)
    t.d_rows;
  Format.fprintf fmt "(%d syntheses)@." t.d_syntheses

let pp fmt t =
  Format.fprintf fmt "%-10s %6s %9s %7s@." "task" "wcet" "max-wcet" "margin";
  List.iter
    (fun row ->
      Format.fprintf fmt "%-10s %6d %9d %7d@." row.task row.wcet row.max_wcet
        row.margin)
    t.rows;
  Format.fprintf fmt "(%d syntheses)@." t.syntheses
