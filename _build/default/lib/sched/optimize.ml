open Ezrt_tpn
module Translate = Ezrt_blocks.Translate
module Meaning = Ezrt_blocks.Meaning

type outcome = {
  schedule : Schedule.t;
  preemptions : int;
  explored : int;
  improvements : int;
}

(* Incremental preemption accounting mirroring Timeline.of_schedule:
   a preemptive instance pays one preemption for every unit run that is
   not contiguous with its previous one.  Mutable state with an undo
   trail, popped on backtrack. *)
type accounting = {
  run_finish : int array;  (* -1 = no open run for the task's instance *)
  seg_count : int array;
  mutable cost : int;
  mutable trail : (int * [ `Run | `Seg ] * int) list list;
      (* per applied firing: the cells it changed *)
}

let make_accounting n =
  { run_finish = Array.make n (-1); seg_count = Array.make n 0; cost = 0;
    trail = [] }

let apply_firing model acc tid now =
  let changes = ref [] in
  let set_run i v =
    changes := (i, `Run, acc.run_finish.(i)) :: !changes;
    acc.run_finish.(i) <- v
  in
  let set_seg i v =
    changes := (i, `Seg, acc.seg_count.(i)) :: !changes;
    acc.seg_count.(i) <- v
  in
  let cost_before = acc.cost in
  (match model.Translate.meanings.(tid) with
  | Meaning.Release i ->
    set_run i (-1);
    set_seg i 0
  | Meaning.Unit_grab i ->
    if acc.run_finish.(i) = -1 then set_seg i 1
    else if acc.run_finish.(i) <> now then begin
      set_seg i (acc.seg_count.(i) + 1);
      acc.cost <- acc.cost + 1
    end
  | Meaning.Unit_compute i -> set_run i now
  | Meaning.Finish i ->
    set_run i (-1);
    set_seg i 0
  | Meaning.Start | Meaning.End | Meaning.Phase_arrival _ | Meaning.Arrival _
  | Meaning.Release_wait _ | Meaning.Grab _ | Meaning.Compute _
  | Meaning.Excl_grab _
  | Meaning.Deadline_ok _ | Meaning.Deadline_miss _ | Meaning.Cycle_overrun
  | Meaning.Precedence _ | Meaning.Msg_grant _ | Meaning.Msg_transfer _ -> ());
  acc.trail <- ((-1, `Seg, cost_before) :: !changes) :: acc.trail

let undo_firing acc =
  match acc.trail with
  | [] -> invalid_arg "Optimize: undo underflow"
  | changes :: rest ->
    List.iter
      (fun (i, kind, old) ->
        if i = -1 then acc.cost <- old
        else
          match kind with
          | `Run -> acc.run_finish.(i) <- old
          | `Seg -> acc.seg_count.(i) <- old)
      changes;
    acc.trail <- rest

let min_preemptions ?(max_nodes = 2_000_000) ?initial_bound model =
  let net = model.Translate.net in
  let n_tasks = Array.length model.Translate.tasks in
  let acc = make_accounting n_tasks in
  (* dominance memo: a state already expanded at cost <= current cost
     cannot yield anything better *)
  let best_cost_at = State.Table.create 4096 in
  let incumbent = ref None in
  let bound = ref (Option.value initial_bound ~default:max_int) in
  let explored = ref 0 in
  let improvements = ref 0 in
  let budget_hit = ref false in
  (* apply a firing (with accounting), recurse via [k], then undo *)
  let rec descend path_rev now s =
    (* collapse forced immediate steps, with accounting *)
    if Translate.is_final model s then begin
      (* path complete: candidate schedule *)
      if acc.cost < !bound then begin
        bound := acc.cost;
        incumbent := Some (List.rev path_rev, acc.cost);
        incr improvements
      end
    end
    else if
      (not (Translate.is_dead model s))
      && acc.cost < !bound
      && (not !budget_hit)
      &&
      match State.Table.find_opt best_cost_at s with
      | Some c when c <= acc.cost -> false
      | Some _ | None -> true
    then begin
      if !explored >= max_nodes then budget_hit := true
      else begin
        incr explored;
        State.Table.replace best_cost_at s acc.cost;
        let candidates =
          Priority.order Priority.Continuity model s (State.fireable net s)
        in
        List.iter
          (fun tid ->
            if not !budget_hit then begin
              let q = State.dlb net s tid in
              let now' = now + q in
              apply_firing model acc tid now';
              descend ((tid, q) :: path_rev) now' (State.fire net s tid q);
              undo_firing acc
            end)
          candidates
      end
    end
  in
  descend [] 0 (State.initial net);
  match !incumbent with
  | Some (actions, cost) ->
    Ok
      {
        schedule = Schedule.of_actions actions;
        preemptions = cost;
        explored = !explored;
        improvements = !improvements;
      }
  | None ->
    Error (if !budget_hit then Search.Budget_exhausted else Search.Infeasible)
