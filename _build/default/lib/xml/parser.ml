type error = { position : int; message : string }

let error_to_string e =
  Printf.sprintf "XML parse error at byte %d: %s" e.position e.message

exception Parse_error of error

type cursor = { src : string; mutable pos : int }

let fail cur message = raise (Parse_error { position = cur.pos; message })
let at_end cur = cur.pos >= String.length cur.src

let peek cur =
  if at_end cur then fail cur "unexpected end of input" else cur.src.[cur.pos]

let advance cur = cur.pos <- cur.pos + 1

let looking_at cur prefix =
  let n = String.length prefix in
  cur.pos + n <= String.length cur.src
  && String.sub cur.src cur.pos n = prefix

let expect cur prefix =
  if looking_at cur prefix then cur.pos <- cur.pos + String.length prefix
  else fail cur (Printf.sprintf "expected %S" prefix)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_spaces cur =
  while (not (at_end cur)) && is_space cur.src.[cur.pos] do
    advance cur
  done

let is_name_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | ':' -> true
  | _ -> false

let read_name cur =
  let start = cur.pos in
  while (not (at_end cur)) && is_name_char cur.src.[cur.pos] do
    advance cur
  done;
  if cur.pos = start then fail cur "expected a name";
  String.sub cur.src start (cur.pos - start)

(* Decode one entity after the '&' has been consumed. *)
let read_entity cur =
  let semi =
    match String.index_from_opt cur.src cur.pos ';' with
    | Some i when i - cur.pos <= 12 -> i
    | Some _ | None -> fail cur "unterminated entity reference"
  in
  let body = String.sub cur.src cur.pos (semi - cur.pos) in
  cur.pos <- semi + 1;
  match body with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
    let code =
      if String.length body > 2 && body.[0] = '#' && (body.[1] = 'x' || body.[1] = 'X')
      then int_of_string_opt ("0x" ^ String.sub body 2 (String.length body - 2))
      else if String.length body > 1 && body.[0] = '#' then
        int_of_string_opt (String.sub body 1 (String.length body - 1))
      else None
    in
    (match code with
    | Some c when c >= 0 && c < 128 -> String.make 1 (Char.chr c)
    | Some c ->
      (* Minimal UTF-8 encoding for non-ASCII character references. *)
      let buf = Buffer.create 4 in
      if c < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
      end
      else if c < 0x10000 then begin
        Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xF0 lor (c lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 12) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
      end;
      Buffer.contents buf
    | None -> fail cur (Printf.sprintf "unknown entity &%s;" body))

let read_attr_value cur =
  let quote = peek cur in
  if quote <> '"' && quote <> '\'' then fail cur "expected attribute quote";
  advance cur;
  let buf = Buffer.create 16 in
  let rec go () =
    let c = peek cur in
    if c = quote then advance cur
    else if c = '&' then begin
      advance cur;
      Buffer.add_string buf (read_entity cur);
      go ()
    end
    else if c = '<' then fail cur "'<' in attribute value"
    else begin
      Buffer.add_char buf c;
      advance cur;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let skip_comment cur =
  expect cur "<!--";
  let close =
    let rec find i =
      if i + 3 > String.length cur.src then fail cur "unterminated comment"
      else if String.sub cur.src i 3 = "-->" then i
      else find (i + 1)
    in
    find cur.pos
  in
  cur.pos <- close + 3

let skip_pi cur =
  expect cur "<?";
  match String.index_from_opt cur.src cur.pos '>' with
  | Some i when i > 0 && cur.src.[i - 1] = '?' -> cur.pos <- i + 1
  | Some _ | None -> fail cur "unterminated processing instruction"

let skip_doctype cur =
  expect cur "<!DOCTYPE";
  (* No internal-subset support: scan to the first '>'. *)
  match String.index_from_opt cur.src cur.pos '>' with
  | Some i -> cur.pos <- i + 1
  | None -> fail cur "unterminated DOCTYPE"

let read_cdata cur =
  expect cur "<![CDATA[";
  let close =
    let rec find i =
      if i + 3 > String.length cur.src then fail cur "unterminated CDATA"
      else if String.sub cur.src i 3 = "]]>" then i
      else find (i + 1)
    in
    find cur.pos
  in
  let body = String.sub cur.src cur.pos (close - cur.pos) in
  cur.pos <- close + 3;
  body

let is_blank s = String.for_all is_space s

let rec read_element cur =
  expect cur "<";
  let tag = read_name cur in
  let rec read_attrs acc =
    skip_spaces cur;
    match peek cur with
    | '>' | '/' -> List.rev acc
    | _ ->
      let key = read_name cur in
      skip_spaces cur;
      expect cur "=";
      skip_spaces cur;
      let value = read_attr_value cur in
      read_attrs ((key, value) :: acc)
  in
  let attrs = read_attrs [] in
  if looking_at cur "/>" then begin
    expect cur "/>";
    Doc.Element { Doc.tag; attrs; children = [] }
  end
  else begin
    expect cur ">";
    let children = read_content cur [] in
    expect cur "</";
    let closing = read_name cur in
    if closing <> tag then
      fail cur (Printf.sprintf "mismatched closing tag </%s> for <%s>" closing tag);
    skip_spaces cur;
    expect cur ">";
    Doc.Element { Doc.tag; attrs; children }
  end

and read_content cur acc =
  if looking_at cur "</" then List.rev acc
  else if looking_at cur "<!--" then begin
    skip_comment cur;
    read_content cur acc
  end
  else if looking_at cur "<![CDATA[" then begin
    let body = read_cdata cur in
    read_content cur (Doc.Text body :: acc)
  end
  else if looking_at cur "<?" then begin
    skip_pi cur;
    read_content cur acc
  end
  else if looking_at cur "<" then begin
    let child = read_element cur in
    read_content cur (child :: acc)
  end
  else begin
    let buf = Buffer.create 32 in
    let rec chars () =
      if at_end cur then fail cur "unexpected end of input in content"
      else
        match peek cur with
        | '<' -> ()
        | '&' ->
          advance cur;
          Buffer.add_string buf (read_entity cur);
          chars ()
        | c ->
          Buffer.add_char buf c;
          advance cur;
          chars ()
    in
    chars ();
    let s = Buffer.contents buf in
    let acc = if is_blank s then acc else Doc.Text s :: acc in
    read_content cur acc
  end

let skip_prolog cur =
  let rec go () =
    skip_spaces cur;
    if looking_at cur "<?" then begin
      skip_pi cur;
      go ()
    end
    else if looking_at cur "<!--" then begin
      skip_comment cur;
      go ()
    end
    else if looking_at cur "<!DOCTYPE" then begin
      skip_doctype cur;
      go ()
    end
  in
  go ()

let parse s =
  let cur = { src = s; pos = 0 } in
  match
    skip_prolog cur;
    let root = read_element cur in
    skip_spaces cur;
    (* Trailing comments are legal after the root element. *)
    let rec trailing () =
      if looking_at cur "<!--" then begin
        skip_comment cur;
        skip_spaces cur;
        trailing ()
      end
    in
    trailing ();
    if not (at_end cur) then fail cur "trailing content after root element";
    root
  with
  | root -> Ok root
  | exception Parse_error e -> Error e

let parse_exn s =
  match parse s with
  | Ok node -> node
  | Error e -> failwith (error_to_string e)
