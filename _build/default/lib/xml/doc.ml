type node =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;
  children : node list;
}

let valid_tag s =
  s <> ""
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | ':' -> true
         | _ -> false)
       s

let elt ?(attrs = []) tag children =
  if not (valid_tag tag) then
    invalid_arg (Printf.sprintf "Ezrt_xml.Doc.elt: invalid tag %S" tag);
  Element { tag; attrs; children }

let text s = Text s
let leaf ?attrs tag s = elt ?attrs tag [ text s ]

let tag_of = function Element e -> Some e.tag | Text _ -> None

let attr n key =
  match n with
  | Element e -> List.assoc_opt key e.attrs
  | Text _ -> None

let attr_exn n key =
  match attr n key with Some v -> v | None -> raise Not_found

let children_of = function Element e -> e.children | Text _ -> []

let find_children n tag =
  let is_tagged = function
    | Element e -> e.tag = tag
    | Text _ -> false
  in
  List.filter is_tagged (children_of n)

let find_child n tag =
  match find_children n tag with [] -> None | child :: _ -> Some child

let rec text_content n =
  match n with
  | Text s -> s
  | Element e -> String.concat "" (List.map text_content e.children)

let child_text n tag = Option.map text_content (find_child n tag)

let rec equal a b =
  match a, b with
  | Text sa, Text sb -> String.equal sa sb
  | Element ea, Element eb ->
    String.equal ea.tag eb.tag
    && List.length ea.attrs = List.length eb.attrs
    && List.for_all2
         (fun (ka, va) (kb, vb) -> String.equal ka kb && String.equal va vb)
         ea.attrs eb.attrs
    && List.length ea.children = List.length eb.children
    && List.for_all2 equal ea.children eb.children
  | Text _, Element _ | Element _, Text _ -> false

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let xml_decl = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"

let add_attrs buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape v);
      Buffer.add_char buf '"')
    attrs

let to_string ?(decl = false) n =
  let buf = Buffer.create 256 in
  if decl then Buffer.add_string buf xml_decl;
  let rec go = function
    | Text s -> Buffer.add_string buf (escape s)
    | Element e ->
      Buffer.add_char buf '<';
      Buffer.add_string buf e.tag;
      add_attrs buf e.attrs;
      (match e.children with
      | [] -> Buffer.add_string buf "/>"
      | children ->
        Buffer.add_char buf '>';
        List.iter go children;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.tag;
        Buffer.add_char buf '>')
  in
  go n;
  Buffer.contents buf

(* An element is printed inline when any child is text: indenting would
   inject whitespace into its text content. *)
let has_text_child e =
  List.exists (function Text _ -> true | Element _ -> false) e.children

let to_string_pretty ?(decl = false) n =
  let buf = Buffer.create 256 in
  if decl then Buffer.add_string buf xml_decl;
  let indent depth = Buffer.add_string buf (String.make (2 * depth) ' ') in
  let rec go depth = function
    | Text s -> Buffer.add_string buf (escape s)
    | Element e ->
      indent depth;
      Buffer.add_char buf '<';
      Buffer.add_string buf e.tag;
      add_attrs buf e.attrs;
      (match e.children with
      | [] -> Buffer.add_string buf "/>\n"
      | children when has_text_child e ->
        Buffer.add_char buf '>';
        List.iter (go_inline) children;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.tag;
        Buffer.add_string buf ">\n"
      | children ->
        Buffer.add_string buf ">\n";
        List.iter (go (depth + 1)) children;
        indent depth;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.tag;
        Buffer.add_string buf ">\n")
  and go_inline = function
    | Text s -> Buffer.add_string buf (escape s)
    | Element e ->
      Buffer.add_char buf '<';
      Buffer.add_string buf e.tag;
      add_attrs buf e.attrs;
      (match e.children with
      | [] -> Buffer.add_string buf "/>"
      | children ->
        Buffer.add_char buf '>';
        List.iter go_inline children;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.tag;
        Buffer.add_char buf '>')
  in
  go 0 n;
  Buffer.contents buf

let pp fmt n = Format.pp_print_string fmt (to_string_pretty n)
