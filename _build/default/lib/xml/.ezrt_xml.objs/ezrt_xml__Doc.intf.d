lib/xml/doc.mli: Format
