lib/xml/parser.ml: Buffer Char Doc List Printf String
