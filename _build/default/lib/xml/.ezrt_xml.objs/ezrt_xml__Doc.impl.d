lib/xml/doc.ml: Buffer Format List Option Printf String
