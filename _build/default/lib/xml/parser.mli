(** Recursive-descent parser for the XML subset emitted by {!Doc}.

    Supported: one root element, attributes with single or double
    quotes, character data, the five predefined entities plus decimal
    and hexadecimal character references, comments, CDATA sections, an
    optional XML declaration and DOCTYPE (both skipped), and
    processing instructions (skipped).

    Whitespace-only text between elements is dropped, so parsing the
    output of {!Doc.to_string_pretty} yields the original tree;
    whitespace inside mixed content is preserved. *)

type error = { position : int; message : string }

val error_to_string : error -> string

val parse : string -> (Doc.node, error) result
(** [parse s] parses the root element of [s]. *)

val parse_exn : string -> Doc.node
(** Like {!parse}; raises [Failure] with a positioned message. *)
