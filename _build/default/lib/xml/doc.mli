(** XML document trees.

    This is the in-tree substitute for the third-party PNML Framework
    used by the paper: a small, dependency-free XML 1.0 subset that is
    sufficient for the ezRealtime DSL (Fig 7) and for PNML (ISO/IEC
    15909-2) documents.  Namespaces are kept as literal prefixed tag
    names ([rt:ez-spec]); there is no namespace resolution, which
    matches how the paper's fixed-vocabulary documents are consumed. *)

type node =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;
  children : node list;
}

(** {1 Construction} *)

val elt : ?attrs:(string * string) list -> string -> node list -> node
(** [elt tag children] builds an element node.  Raises
    [Invalid_argument] on an empty or whitespace-containing tag. *)

val text : string -> node
(** [text s] builds a text node. *)

val leaf : ?attrs:(string * string) list -> string -> string -> node
(** [leaf tag s] is [elt tag [text s]] — the common one-line element. *)

(** {1 Accessors} *)

val tag_of : node -> string option
(** [tag_of n] is the tag when [n] is an element. *)

val attr : node -> string -> string option
(** [attr n key] looks up an attribute on an element node. *)

val attr_exn : node -> string -> string
(** Like {!attr}; raises [Not_found] when absent or [n] is text. *)

val children_of : node -> node list
(** Children of an element; [[]] for text. *)

val find_child : node -> string -> node option
(** First child element with the given tag. *)

val find_children : node -> string -> node list
(** All child elements with the given tag, in document order. *)

val text_content : node -> string
(** Concatenation of all text descendants of [n]. *)

val child_text : node -> string -> string option
(** [child_text n tag] is the text content of the first [tag] child. *)

(** {1 Comparison} *)

val equal : node -> node -> bool
(** Structural equality; attribute order is significant (documents we
    emit are canonical), text nodes compare byte-wise. *)

(** {1 Printing} *)

val escape : string -> string
(** Escape the five XML special characters (ampersand, angle brackets
    and both quotes) for use in text and attribute values. *)

val to_string : ?decl:bool -> node -> string
(** Compact serialization (no inserted whitespace).  [decl] prepends the
    XML version declaration (default false). *)

val to_string_pretty : ?decl:bool -> node -> string
(** Indented serialization.  Elements whose children include text are
    printed inline so that round-tripping does not invent whitespace
    inside text content. *)

val pp : Format.formatter -> node -> unit
(** Pretty-printer ({!to_string_pretty} without declaration). *)
