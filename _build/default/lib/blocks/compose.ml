open Ezrt_tpn

(* Rebuild a net through a builder, applying a node-level
   transformation along the way. *)
let rebuild ?name ~place_name ~place_tokens ~transition_name (net : Pnet.t) =
  let b = Pnet.Builder.create (Option.value name ~default:net.Pnet.net_name) in
  let place_map =
    Array.init (Pnet.place_count net) (fun p ->
        Pnet.Builder.add_place b ~tokens:(place_tokens p) (place_name p))
  in
  Array.iteri
    (fun tid (tr : Pnet.transition) ->
      let id =
        Pnet.Builder.add_transition b ~priority:tr.Pnet.priority
          ?code:tr.Pnet.code (transition_name tid) tr.Pnet.interval
      in
      Array.iter
        (fun (p, weight) -> Pnet.Builder.arc_pt b ~weight place_map.(p) id)
        net.Pnet.pre.(tid);
      Array.iter
        (fun (p, weight) -> Pnet.Builder.arc_tp b ~weight id place_map.(p))
        net.Pnet.post.(tid))
    net.Pnet.transitions;
  Pnet.Builder.build b

let rename ~places ~transitions (net : Pnet.t) =
  rebuild net
    ~place_name:(fun p -> places (Pnet.place_name net p))
    ~place_tokens:(fun p -> net.Pnet.m0.(p))
    ~transition_name:(fun tid -> transitions (Pnet.transition_name net tid))

let prefix prefix net =
  let add n = prefix ^ n in
  rename ~places:add ~transitions:add net

let union ?name (a : Pnet.t) (b : Pnet.t) =
  let name =
    Option.value name ~default:(a.Pnet.net_name ^ "+" ^ b.Pnet.net_name)
  in
  let builder = Pnet.Builder.create name in
  (* places of [a], then the places of [b] that do not fuse *)
  let a_place =
    Array.init (Pnet.place_count a) (fun p ->
        Pnet.Builder.add_place builder ~tokens:a.Pnet.m0.(p)
          (Pnet.place_name a p))
  in
  let b_place =
    Array.init (Pnet.place_count b) (fun p ->
        let pname = Pnet.place_name b p in
        match Pnet.find_place_opt a pname with
        | Some ap ->
          (* fusion: markings add *)
          Pnet.Builder.add_tokens builder a_place.(ap) b.Pnet.m0.(p);
          a_place.(ap)
        | None -> Pnet.Builder.add_place builder ~tokens:b.Pnet.m0.(p) pname)
  in
  let copy_transitions (net : Pnet.t) place_of =
    Array.iteri
      (fun tid (tr : Pnet.transition) ->
        let id =
          Pnet.Builder.add_transition builder ~priority:tr.Pnet.priority
            ?code:tr.Pnet.code tr.Pnet.t_name tr.Pnet.interval
        in
        Array.iter
          (fun (p, weight) -> Pnet.Builder.arc_pt builder ~weight (place_of p) id)
          net.Pnet.pre.(tid);
        Array.iter
          (fun (p, weight) -> Pnet.Builder.arc_tp builder ~weight id (place_of p))
          net.Pnet.post.(tid))
      net.Pnet.transitions
  in
  copy_transitions a (fun p -> a_place.(p));
  copy_transitions b (fun p -> b_place.(p));
  Pnet.Builder.build builder

let union_all ?name = function
  | [] -> invalid_arg "Compose.union_all: empty list"
  | first :: rest ->
    let merged = List.fold_left (fun acc net -> union acc net) first rest in
    (match name with
    | Some name ->
      rebuild ~name merged
        ~place_name:(Pnet.place_name merged)
        ~place_tokens:(fun p -> merged.Pnet.m0.(p))
        ~transition_name:(Pnet.transition_name merged)
    | None -> merged)

let add_arc (net : Pnet.t) ~from ~into ?(weight = 1) () =
  let b = Pnet.Builder.create net.Pnet.net_name in
  let place_map =
    Array.init (Pnet.place_count net) (fun p ->
        Pnet.Builder.add_place b ~tokens:net.Pnet.m0.(p) (Pnet.place_name net p))
  in
  let trans_map =
    Array.mapi
      (fun tid (tr : Pnet.transition) ->
        let id =
          Pnet.Builder.add_transition b ~priority:tr.Pnet.priority
            ?code:tr.Pnet.code tr.Pnet.t_name tr.Pnet.interval
        in
        Array.iter
          (fun (p, weight) -> Pnet.Builder.arc_pt b ~weight place_map.(p) id)
          net.Pnet.pre.(tid);
        Array.iter
          (fun (p, weight) -> Pnet.Builder.arc_tp b ~weight id place_map.(p))
          net.Pnet.post.(tid);
        id)
      net.Pnet.transitions
  in
  (match
     ( Pnet.find_place_opt net from, Pnet.find_transition_opt net into,
       Pnet.find_transition_opt net from, Pnet.find_place_opt net into )
   with
  | Some p, Some t, _, _ -> Pnet.Builder.arc_pt b ~weight place_map.(p) trans_map.(t)
  | _, _, Some t, Some p -> Pnet.Builder.arc_tp b ~weight trans_map.(t) place_map.(p)
  | _, _, _, _ -> raise Not_found);
  Pnet.Builder.build b

let marked (net : Pnet.t) pname tokens =
  let target = Pnet.find_place net pname in
  rebuild net
    ~place_name:(Pnet.place_name net)
    ~place_tokens:(fun p -> if p = target then tokens else net.Pnet.m0.(p))
    ~transition_name:(Pnet.transition_name net)
