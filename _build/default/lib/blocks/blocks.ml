open Ezrt_tpn
module B = Pnet.Builder

let prio_deadline_ok = 10
let prio_finish = 20
let prio_bookkeeping = 60
(* Arrivals keep the default priority: excluding them from FT(s)
   whenever other work is fireable would prune the branches where the
   processor idles until the next arrival, losing feasible schedules
   (the greedy-trap case study needs exactly such a branch).  The
   deadline bookkeeping stays safe because tpc/tf outrank arrivals at
   simultaneous instants. *)
let prio_arrival = Pnet.default_priority
let prio_deadline_miss = 999

let processor_block b name = B.add_place b ~tokens:1 name

let fork_block b ~starts =
  let pstart = B.add_place b ~tokens:1 "pstart" in
  let tstart = B.add_transition b "tstart" Time_interval.zero in
  B.arc_pt b pstart tstart;
  List.iter (fun pst -> B.arc_tp b tstart pst) starts;
  (pstart, tstart)

let join_block b ~sources =
  let pend = B.add_place b "pend" in
  let tend = B.add_transition b "tend" Time_interval.zero in
  List.iter (fun (pe, weight) -> B.arc_pt b ~weight pe tend) sources;
  B.arc_tp b tend pend;
  (pend, tend)

type arrival = {
  pwa : Pnet.place_id option;
  tph : Pnet.transition_id;
  ta : Pnet.transition_id option;
}

let arrival_block b ~task ~phase ~period ~instances ~start ~release ~watch =
  if instances < 1 then invalid_arg "arrival_block: instances < 1";
  let tph =
    B.add_transition b ~priority:prio_arrival ("tph_" ^ task)
      (Time_interval.point phase)
  in
  B.arc_pt b start tph;
  B.arc_tp b tph release;
  B.arc_tp b tph watch;
  if instances = 1 then { pwa = None; tph; ta = None }
  else begin
    let pwa = B.add_place b ("pwa_" ^ task) in
    B.arc_tp b tph pwa ~weight:(instances - 1);
    let ta =
      B.add_transition b ~priority:prio_arrival ("ta_" ^ task)
        (Time_interval.point period)
    in
    B.arc_pt b pwa ta;
    B.arc_tp b ta release;
    B.arc_tp b ta watch;
    { pwa = Some pwa; tph; ta = Some ta }
  end

type deadline = {
  pwd : Pnet.place_id;
  pdm : Pnet.place_id;
  pe : Pnet.place_id;
  td : Pnet.transition_id;
  tpc : Pnet.transition_id;
}

let deadline_block b ~task ~deadline ~finished =
  let pwd = B.add_place b ("pwd_" ^ task) in
  let pdm = B.add_place b ("pdm_" ^ task) in
  let pe = B.add_place b ("pe_" ^ task) in
  let td =
    B.add_transition b ~priority:prio_deadline_miss ("td_" ^ task)
      (Time_interval.point deadline)
  in
  B.arc_pt b pwd td;
  B.arc_tp b td pdm;
  let tpc =
    B.add_transition b ~priority:prio_deadline_ok ("tpc_" ^ task)
      Time_interval.zero
  in
  B.arc_pt b pwd tpc;
  B.arc_pt b finished tpc;
  B.arc_tp b tpc pe;
  { pwd; pdm; pe; td; tpc }

type structure = {
  pwr : Pnet.place_id;
  pf : Pnet.place_id;
  tw : Pnet.transition_id option;
  tr : Pnet.transition_id;
  tf : Pnet.transition_id;
  tg : Pnet.transition_id;
  tc : Pnet.transition_id;
  te : Pnet.transition_id option;
}

(* When the task has a release offset, a point [r, r] stage anchors it
   at the period start; the gated release decision then carries the
   remaining window.  Returns (tw option, release interval, gated
   input place). *)
let release_stage b ~task ~release ~wcet ~deadline ~pwr =
  if release = 0 then (None, Time_interval.make 0 (deadline - wcet), pwr)
  else begin
    let pww = B.add_place b ("pww_" ^ task) in
    let tw = B.add_transition b ("tw_" ^ task) (Time_interval.point release) in
    B.arc_pt b pwr tw;
    B.arc_tp b tw pww;
    (Some tw, Time_interval.make 0 (deadline - wcet - release), pww)
  end

let non_preemptive_structure b ~task ~release ~wcet ~deadline ~processor
    ~exclusions =
  if wcet < 1 then invalid_arg "non_preemptive_structure: wcet < 1";
  let pwr = B.add_place b ("pwr_" ^ task) in
  let tw, tr_interval, gated_input =
    release_stage b ~task ~release ~wcet ~deadline ~pwr
  in
  let pwg = B.add_place b ("pwg_" ^ task) in
  let pwc = B.add_place b ("pwc_" ^ task) in
  let pwf = B.add_place b ("pwf_" ^ task) in
  let pf = B.add_place b ("pf_" ^ task) in
  let tr = B.add_transition b ("tr_" ^ task) tr_interval in
  B.arc_pt b gated_input tr;
  B.arc_tp b tr pwg;
  let tg = B.add_transition b ("tg_" ^ task) Time_interval.zero in
  B.arc_pt b pwg tg;
  B.arc_pt b processor tg;
  List.iter (fun excl -> B.arc_pt b excl tg) exclusions;
  B.arc_tp b tg pwc;
  let tc = B.add_transition b ("tc_" ^ task) (Time_interval.point wcet) in
  B.arc_pt b pwc tc;
  B.arc_tp b tc pwf;
  let tf =
    B.add_transition b ~priority:prio_finish ("tf_" ^ task) Time_interval.zero
  in
  B.arc_pt b pwf tf;
  B.arc_tp b tf pf;
  B.arc_tp b tf processor;
  List.iter (fun excl -> B.arc_tp b tf excl) exclusions;
  { pwr; pf; tw; tr; tf; tg; tc; te = None }

let preemptive_structure b ~task ~release ~wcet ~deadline ~processor ~exclusions
    =
  if wcet < 1 then invalid_arg "preemptive_structure: wcet < 1";
  let pwr = B.add_place b ("pwr_" ^ task) in
  let tw, tr_interval, gated_input =
    release_stage b ~task ~release ~wcet ~deadline ~pwr
  in
  let pwu = B.add_place b ("pwu_" ^ task) in
  let pwx = B.add_place b ("pwx_" ^ task) in
  let pwf = B.add_place b ("pwf_" ^ task) in
  let pf = B.add_place b ("pf_" ^ task) in
  let tr = B.add_transition b ("tr_" ^ task) tr_interval in
  B.arc_pt b gated_input tr;
  let te =
    match exclusions with
    | [] ->
      (* No exclusion slots to take: the release feeds the unit pool
         directly. *)
      B.arc_tp b tr pwu ~weight:wcet;
      None
    | _ :: _ ->
      let pwe = B.add_place b ("pwe_" ^ task) in
      B.arc_tp b tr pwe;
      let te = B.add_transition b ("te_" ^ task) Time_interval.zero in
      B.arc_pt b pwe te;
      List.iter (fun excl -> B.arc_pt b excl te) exclusions;
      B.arc_tp b te pwu ~weight:wcet;
      Some te
  in
  let tg = B.add_transition b ("tg_" ^ task) Time_interval.zero in
  B.arc_pt b pwu tg;
  B.arc_pt b processor tg;
  B.arc_tp b tg pwx;
  let tc = B.add_transition b ("tc_" ^ task) (Time_interval.point 1) in
  B.arc_pt b pwx tc;
  B.arc_tp b tc pwf;
  B.arc_tp b tc processor;
  let tf =
    B.add_transition b ~priority:prio_finish ("tf_" ^ task) Time_interval.zero
  in
  B.arc_pt b pwf tf ~weight:wcet;
  B.arc_tp b tf pf;
  List.iter (fun excl -> B.arc_tp b tf excl) exclusions;
  { pwr; pf; tw; tr; tf; tg; tc; te }
