(** Net composition operators (paper §3.3: "the proposed modeling
    method is conducted by building block compositions.  This work
    adopts several operators for building block compositions", citing
    Barreto's thesis for the details).

    These operators work on whole nets by node *name*: disjoint union
    glues two partial models, place fusion merges same-named interface
    places (the thesis' place-merging operator — how a task structure's
    processor place is identified with the global processor), and
    renaming creates instances of a generic block.  {!Translate} builds
    its nets directly for speed; this module provides the paper's
    compositional style for building nets by hand and is exercised by
    tests that reassemble a task model from loose blocks. *)

open Ezrt_tpn

val rename :
  places:(string -> string) ->
  transitions:(string -> string) ->
  Pnet.t ->
  Pnet.t
(** Apply renaming functions to every node name.  Raises
    [Invalid_argument] if the renaming collapses two distinct names. *)

val prefix : string -> Pnet.t -> Pnet.t
(** [prefix "T1_" net] — the common instantiation renaming. *)

val union : ?name:string -> Pnet.t -> Pnet.t -> Pnet.t
(** Disjoint union; same-named places are *fused* (their initial
    markings added, arcs redirected to the single survivor) — this is
    the merge operator, so gluing happens by giving interface places
    equal names.  Same-named transitions are an error
    ([Invalid_argument]): transitions are never shared between
    blocks. *)

val union_all : ?name:string -> Pnet.t list -> Pnet.t
(** Left fold of {!union}.  Raises [Invalid_argument] on an empty
    list. *)

val add_arc :
  Pnet.t -> from:string -> into:string -> ?weight:int -> unit -> Pnet.t
(** Post-composition wiring: adds one arc between a place and a
    transition identified by name (direction inferred from which name
    is a place).  Raises [Not_found] if neither direction matches. *)

val marked : Pnet.t -> string -> int -> Pnet.t
(** Override the initial marking of a named place. *)
