(** The building blocks of paper Figs 1 and 2.

    Each constructor adds one block to a {!Ezrt_tpn.Pnet.Builder} and
    returns the identifiers of the nodes it created.  Blocks connect to
    each other through the place ids passed in, which is the
    composition mechanism (the paper's "operators" merge places of
    partial nets; here the shared places are simply created once and
    wired from both sides).

    Immediate transitions carry ordering priorities so that the
    fireable set [FT(s)] resolves same-instant bookkeeping
    deterministically: deadline bookkeeping runs before task wrap-up,
    wrap-up before scheduling choices, and arrivals after everything
    else at the same instant — which also guarantees that a deadline
    watch token is always consumed by [tpc] before the next arrival can
    add a fresh one. *)

open Ezrt_tpn

val prio_deadline_ok : int
val prio_finish : int
val prio_bookkeeping : int
val prio_arrival : int
val prio_deadline_miss : int

(** {1 Global blocks} *)

val processor_block : Pnet.Builder.t -> string -> Pnet.place_id
(** Fig 1(g): a single marked place, the mutually exclusive
    processor. *)

val fork_block :
  Pnet.Builder.t -> starts:Pnet.place_id list -> Pnet.place_id * Pnet.transition_id
(** Fig 1(a): [pstart] (marked) and [tstart] with interval [0,0]
    feeding every task's start place.  Returns [(pstart, tstart)]. *)

val join_block :
  Pnet.Builder.t ->
  sources:(Pnet.place_id * int) list ->
  Pnet.place_id * Pnet.transition_id
(** Fig 1(b): [tend] consumes [N(ti)] end tokens from every task and
    marks [pend]; [m(pend) = 1] is the desired final marking [MF]
    witnessing a feasible firing schedule (Def 3.2). *)

(** {1 Per-task blocks} *)

type arrival = {
  pwa : Pnet.place_id option;  (** pending-arrival pool, absent when N = 1 *)
  tph : Pnet.transition_id;
  ta : Pnet.transition_id option;
}

val arrival_block :
  Pnet.Builder.t ->
  task:string ->
  phase:int ->
  period:int ->
  instances:int ->
  start:Pnet.place_id ->
  release:Pnet.place_id ->
  watch:Pnet.place_id ->
  arrival
(** Fig 1(c): [tph] (interval [ph, ph]) emits the first release and
    banks [N-1] tokens on [pwa]; [ta] (interval [p, p]) converts one
    banked token per period into a release.  Both also arm the deadline
    watch place. *)

type deadline = {
  pwd : Pnet.place_id;  (** watch place, armed at each arrival *)
  pdm : Pnet.place_id;  (** deadline-missed marker: reaching it is a dead end *)
  pe : Pnet.place_id;  (** instance-completed tokens consumed by the join *)
  td : Pnet.transition_id;
  tpc : Pnet.transition_id;
}

val deadline_block :
  Pnet.Builder.t ->
  task:string ->
  deadline:int ->
  finished:Pnet.place_id ->
  deadline
(** Fig 1(d): [td] (interval [d, d], worst priority) marks [pdm] when
    the watch token survives [d] units; [tpc] (immediate, best
    priority) clears the watch as soon as the instance finishes. *)

type structure = {
  pwr : Pnet.place_id;  (** release place fed by arrivals *)
  pf : Pnet.place_id;  (** finished place consumed by [tpc] *)
  tw : Pnet.transition_id option;
      (** point [r, r] wait stage anchoring the release offset at the
          period start; absent when [release = 0].  Precedence and
          message gates attach to [tr] *after* it, so a late delivery
          does not re-add the offset. *)
  tr : Pnet.transition_id;
      (** gated release decision: [0, d-c] without a wait stage,
          [0, d-c-r] after one *)
  tf : Pnet.transition_id;  (** instance wrap-up, immediate *)
  tg : Pnet.transition_id;  (** processor grab (per instance or per unit) *)
  tc : Pnet.transition_id;  (** computation (whole, or one unit) *)
  te : Pnet.transition_id option;
      (** preemptive-with-exclusions: the exclusion-grab stage *)
}

val non_preemptive_structure :
  Pnet.Builder.t ->
  task:string ->
  release:int ->
  wcet:int ->
  deadline:int ->
  processor:Pnet.place_id ->
  exclusions:Pnet.place_id list ->
  structure
(** Fig 2(a): [tr [r, d-c]; tg [0,0] grabbing the processor and every
    exclusion slot; tc [c, c]; tf [0,0]] returning them.  Requires
    [wcet >= 1]. *)

val preemptive_structure :
  Pnet.Builder.t ->
  task:string ->
  release:int ->
  wcet:int ->
  deadline:int ->
  processor:Pnet.place_id ->
  exclusions:Pnet.place_id list ->
  structure
(** Fig 2(b): the computation is split into [c] unit steps; the
    processor is taken per unit ([tg [0,0]], [tc [1,1]]) so other tasks
    may preempt between units, while exclusion slots are held for the
    whole instance via the [te] stage.  Requires [wcet >= 1]. *)
