lib/blocks/translate.mli: Ezrt_spec Ezrt_tpn Format Meaning Pnet State
