lib/blocks/translate.ml: Analysis Array Blocks Ezrt_spec Ezrt_tpn Format List Meaning Option Pnet Printf Relations State String Time_interval
