lib/blocks/relations.ml: Blocks Ezrt_tpn Pnet Time_interval
