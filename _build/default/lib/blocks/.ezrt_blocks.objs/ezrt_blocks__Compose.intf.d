lib/blocks/compose.mli: Ezrt_tpn Pnet
