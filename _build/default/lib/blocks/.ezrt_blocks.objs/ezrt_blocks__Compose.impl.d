lib/blocks/compose.ml: Array Ezrt_tpn List Option Pnet
