lib/blocks/blocks.mli: Ezrt_tpn Pnet
