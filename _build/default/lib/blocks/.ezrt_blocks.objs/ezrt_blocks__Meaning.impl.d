lib/blocks/meaning.ml: Printf
