lib/blocks/relations.mli: Ezrt_tpn Pnet
