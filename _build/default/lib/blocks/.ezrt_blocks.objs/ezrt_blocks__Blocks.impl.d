lib/blocks/blocks.ml: Ezrt_tpn List Pnet Time_interval
