lib/blocks/meaning.mli:
