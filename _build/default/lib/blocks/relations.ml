open Ezrt_tpn
module B = Pnet.Builder

type precedence = {
  pwp : Pnet.place_id;
  pprec : Pnet.place_id;
  tprec : Pnet.transition_id;
}

let add_precedence b ~name ~finish_of_pred ~release_of_succ =
  let pwp = B.add_place b ("pwp_" ^ name) in
  let pprec = B.add_place b ("pprec_" ^ name) in
  let tprec =
    B.add_transition b ~priority:Blocks.prio_bookkeeping ("tprec_" ^ name)
      Time_interval.zero
  in
  B.arc_tp b finish_of_pred pwp;
  B.arc_pt b pwp tprec;
  B.arc_tp b tprec pprec;
  B.arc_pt b pprec release_of_succ;
  { pwp; pprec; tprec }

let exclusion_place b ~name = B.add_place b ~tokens:1 ("pexcl_" ^ name)

type comm = {
  ps : Pnet.place_id;
  pc : Pnet.place_id;
  pd : Pnet.place_id;
  tsm : Pnet.transition_id;
  tcm : Pnet.transition_id;
}

let add_message b ~name ~bus ~grant_time ~comm_time ~finish_of_sender
    ~release_of_receiver =
  if grant_time < 0 || comm_time < 0 then
    invalid_arg "add_message: negative communication time";
  let ps = B.add_place b ("ps_" ^ name) in
  let pc = B.add_place b ("pc_" ^ name) in
  let pd = B.add_place b ("pd_" ^ name) in
  let tsm =
    B.add_transition b ("tsm_" ^ name) (Time_interval.point grant_time)
  in
  let tcm =
    B.add_transition b ("tcm_" ^ name) (Time_interval.point comm_time)
  in
  B.arc_tp b finish_of_sender ps;
  B.arc_pt b ps tsm;
  B.arc_pt b bus tsm;
  B.arc_tp b tsm pc;
  B.arc_pt b pc tcm;
  B.arc_tp b tcm pd;
  B.arc_tp b tcm bus;
  B.arc_pt b pd release_of_receiver;
  { ps; pc; pd; tsm; tcm }
