(** Net surgery for inter-task relations (paper §3.3.2, Figs 3–4) and
    for inter-task messages. *)

open Ezrt_tpn

type precedence = {
  pwp : Pnet.place_id;  (** finish tokens of the predecessor *)
  pprec : Pnet.place_id;  (** forwarded tokens gating the successor *)
  tprec : Pnet.transition_id;
}

val add_precedence :
  Pnet.Builder.t ->
  name:string ->
  finish_of_pred :Pnet.transition_id ->
  release_of_succ :Pnet.transition_id ->
  precedence
(** Fig 3: the predecessor's [tf] banks a token on [pwp]; the immediate
    [tprec] forwards it to [pprec], which becomes an extra input of the
    successor's [tr] — instance [k] of the successor can only release
    after instance [k] of the predecessor finished. *)

val exclusion_place : Pnet.Builder.t -> name:string -> Pnet.place_id
(** Fig 4: one marked slot shared by the two excluded tasks.  The task
    structure blocks take it for the whole computation (and the whole
    instance for preemptive tasks), so executions of the pair never
    interleave. *)

type comm = {
  ps : Pnet.place_id;  (** message pending *)
  pc : Pnet.place_id;  (** bus granted, transferring *)
  pd : Pnet.place_id;  (** delivered *)
  tsm : Pnet.transition_id;  (** grant, interval [g, g] *)
  tcm : Pnet.transition_id;  (** transfer, interval [cm, cm] *)
}

val add_message :
  Pnet.Builder.t ->
  name:string ->
  bus:Pnet.place_id ->
  grant_time:int ->
  comm_time:int ->
  finish_of_sender:Pnet.transition_id ->
  release_of_receiver:Pnet.transition_id ->
  comm
(** Inter-task communication: the sender's [tf] posts the message; the
    grant stage occupies the bus for [g] units, the transfer for [cm]
    more; the delivered token gates the receiver's release.  The bus is
    a resource distinct from the processor, so communication overlaps
    computation. *)
