(** Graphviz export of TPNs, for regenerating the paper's net figures
    (Figs 1–4) from the constructed models. *)

val to_dot : ?rankdir:string -> Pnet.t -> string
(** Places as circles annotated with their initial tokens, transitions
    as boxes labeled with name, static interval and (when not the
    default) priority; arc weights greater than one are labeled. *)
