type action = { tid : Pnet.transition_id; delay : int }

type mode = [ `Earliest | `All_times ]

let successors mode net s =
  let fireable = State.fireable net s in
  let with_times tid =
    let lo, hi = State.firing_domain net s tid in
    match mode with
    | `Earliest -> [ (lo, tid) ]
    | `All_times ->
      (match hi with
      | Time_interval.Finite hi ->
        List.init (max 0 (hi - lo + 1)) (fun i -> (lo + i, tid))
      | Time_interval.Infinity ->
        invalid_arg "Tlts.successors: `All_times with an unbounded domain")
  in
  List.concat_map
    (fun tid ->
      List.map
        (fun (q, tid) -> ({ tid; delay = q }, State.fire net s tid q))
        (with_times tid))
    fireable

type stats = {
  states : int;
  edges : int;
  deadlocks : int;
  truncated : bool;
}

let explore ?(mode = `Earliest) ?(max_states = 100_000) ?on_state net =
  let seen = State.Table.create 1024 in
  let queue = Queue.create () in
  let edges = ref 0 in
  let deadlocks = ref 0 in
  let truncated = ref false in
  let visit s =
    if not (State.Table.mem seen s) then begin
      if State.Table.length seen >= max_states then truncated := true
      else begin
        State.Table.replace seen s ();
        (match on_state with Some f -> f s | None -> ());
        Queue.push s queue
      end
    end
  in
  visit (State.initial net);
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    match successors mode net s with
    | [] -> if State.enabled_ids s = [] then incr deadlocks
    | succs ->
      List.iter
        (fun (_, s') ->
          incr edges;
          visit s')
        succs
  done;
  {
    states = State.Table.length seen;
    edges = !edges;
    deadlocks = !deadlocks;
    truncated = !truncated;
  }

type graph = {
  nodes : State.t array;
  transitions : (int * action * int) list;
}

let graph ?(mode = `Earliest) ?(max_states = 10_000) net =
  let index = State.Table.create 256 in
  let nodes = ref [] in
  let count = ref 0 in
  let edges = ref [] in
  let queue = Queue.create () in
  let id_of s =
    match State.Table.find_opt index s with
    | Some id -> Some id
    | None ->
      if !count >= max_states then None
      else begin
        let id = !count in
        incr count;
        State.Table.replace index s id;
        nodes := s :: !nodes;
        Queue.push (id, s) queue;
        Some id
      end
  in
  ignore (id_of (State.initial net));
  while not (Queue.is_empty queue) do
    let id, s = Queue.pop queue in
    List.iter
      (fun (action, s') ->
        match id_of s' with
        | Some id' -> edges := (id, action, id') :: !edges
        | None -> ())
      (successors mode net s)
  done;
  {
    nodes = Array.of_list (List.rev !nodes);
    transitions = List.rev !edges;
  }

let graph_to_dot net g =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph tlts {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n";
  Array.iteri
    (fun id (s : State.t) ->
      let marked = ref [] in
      Array.iteri
        (fun p n ->
          if n > 0 then
            marked :=
              (if n = 1 then Pnet.place_name net p
               else Printf.sprintf "%s:%d" (Pnet.place_name net p) n)
              :: !marked)
        s.State.marking;
      out "  s%d [label=\"s%d\\n%s\"];\n" id id
        (String.concat "\\n" (List.rev !marked)))
    g.nodes;
  List.iter
    (fun (src, action, dst) ->
      out "  s%d -> s%d [label=\"%s@%d\"];\n" src dst
        (Pnet.transition_name net action.tid)
        action.delay)
    g.transitions;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let run net pick n =
  let rec go s steps acc =
    if steps = 0 then List.rev acc
    else
      match State.fireable net s with
      | [] -> List.rev acc
      | fireable -> (
        match pick s with
        | None -> List.rev acc
        | Some tid ->
          if not (List.mem tid fireable) then
            invalid_arg
              (Printf.sprintf "Tlts.run: %s is not fireable"
                 (Pnet.transition_name net tid));
          let q = State.dlb net s tid in
          let s' = State.fire net s tid q in
          go s' (steps - 1) ({ tid; delay = q } :: acc))
  in
  go (State.initial net) n []
