type result = {
  net : Pnet.t;
  removed_transitions : string list;
  removed_places : string list;
  place_map : int array;
  transition_map : int array;
}

let live_transitions (net : Pnet.t) =
  let n_places = Pnet.place_count net in
  let n_trans = Pnet.transition_count net in
  let markable = Array.init n_places (fun p -> net.Pnet.m0.(p) > 0) in
  let live = Array.make n_trans false in
  let changed = ref true in
  while !changed do
    changed := false;
    for t = 0 to n_trans - 1 do
      if not live.(t) then
        if Array.for_all (fun (p, _) -> markable.(p)) net.Pnet.pre.(t) then begin
          live.(t) <- true;
          changed := true;
          Array.iter
            (fun (p, _) ->
              if not markable.(p) then begin
                markable.(p) <- true;
                changed := true
              end)
            net.Pnet.post.(t)
        end
    done
  done;
  live

let cleanup (net : Pnet.t) =
  let n_places = Pnet.place_count net in
  let n_trans = Pnet.transition_count net in
  let live = live_transitions net in
  (* a place is kept when it has initial tokens or touches a live
     transition *)
  let keep_place = Array.init n_places (fun p -> net.Pnet.m0.(p) > 0) in
  for t = 0 to n_trans - 1 do
    if live.(t) then begin
      Array.iter (fun (p, _) -> keep_place.(p) <- true) net.Pnet.pre.(t);
      Array.iter (fun (p, _) -> keep_place.(p) <- true) net.Pnet.post.(t)
    end
  done;
  let b = Pnet.Builder.create net.Pnet.net_name in
  let place_map = Array.make n_places (-1) in
  for p = 0 to n_places - 1 do
    if keep_place.(p) then
      place_map.(p) <-
        Pnet.Builder.add_place b ~tokens:net.Pnet.m0.(p) (Pnet.place_name net p)
  done;
  let transition_map = Array.make n_trans (-1) in
  for t = 0 to n_trans - 1 do
    if live.(t) then begin
      let tr = net.Pnet.transitions.(t) in
      let id =
        Pnet.Builder.add_transition b ~priority:tr.Pnet.priority
          ?code:tr.Pnet.code tr.Pnet.t_name tr.Pnet.interval
      in
      transition_map.(t) <- id;
      Array.iter
        (fun (p, weight) -> Pnet.Builder.arc_pt b ~weight place_map.(p) id)
        net.Pnet.pre.(t);
      Array.iter
        (fun (p, weight) -> Pnet.Builder.arc_tp b ~weight id place_map.(p))
        net.Pnet.post.(t)
    end
  done;
  let removed_transitions = ref [] in
  for t = n_trans - 1 downto 0 do
    if not live.(t) then
      removed_transitions := Pnet.transition_name net t :: !removed_transitions
  done;
  let removed_places = ref [] in
  for p = n_places - 1 downto 0 do
    if not keep_place.(p) then
      removed_places := Pnet.place_name net p :: !removed_places
  done;
  {
    net = Pnet.Builder.build b;
    removed_transitions = !removed_transitions;
    removed_places = !removed_places;
    place_map;
    transition_map;
  }

let is_identity result =
  result.removed_transitions = [] && result.removed_places = []
