(** Structural and behavioural checks over TPNs. *)

type report = {
  reachable_states : int;
  edges : int;
  deadlocks : int;
  truncated : bool;
  place_bound : int;  (** max tokens observed in any place *)
  per_place_bound : int array;
}

val reachability_report : ?mode:Tlts.mode -> ?max_states:int -> Pnet.t -> report
(** Walk the state space (earliest-firing semantics by default) and
    record per-place token bounds. *)

val is_safe_place : report -> Pnet.place_id -> bool
(** True when the place never held more than one token — the invariant
    expected of the processor, bus and exclusion places. *)

type structure = {
  places : int;
  transitions : int;
  arcs : int;
  initial_tokens : int;
  source_transitions : string list;
      (** transitions with no output arc (sinks of tokens) *)
  isolated_places : string list;
      (** places with neither producers nor consumers *)
  point_intervals : int;  (** transitions with EFT = LFT *)
  zero_intervals : int;  (** immediate transitions [0,0] *)
}

val structure : Pnet.t -> structure
val pp_structure : Format.formatter -> structure -> unit
