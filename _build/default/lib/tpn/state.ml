type t = {
  marking : int array;
  clocks : int array;
}

let marking_enables (net : Pnet.t) marking tid =
  Array.for_all (fun (p, w) -> marking.(p) >= w) net.pre.(tid)

let initial (net : Pnet.t) =
  let marking = Array.copy net.m0 in
  let clocks =
    Array.init (Pnet.transition_count net) (fun tid ->
        if marking_enables net marking tid then 0 else -1)
  in
  { marking; clocks }

let is_enabled s tid = s.clocks.(tid) >= 0

let enabled_ids s =
  let acc = ref [] in
  for tid = Array.length s.clocks - 1 downto 0 do
    if s.clocks.(tid) >= 0 then acc := tid :: !acc
  done;
  !acc

let tokens s p = s.marking.(p)

let check_enabled who s tid =
  if not (is_enabled s tid) then
    invalid_arg (Printf.sprintf "State.%s: transition %d is not enabled" who tid)

let dlb net s tid =
  check_enabled "dlb" s tid;
  max 0 (Time_interval.eft (Pnet.interval net tid) - s.clocks.(tid))

let dub net s tid =
  check_enabled "dub" s tid;
  Time_interval.bound_sub (Time_interval.lft (Pnet.interval net tid)) s.clocks.(tid)

let min_dub net s =
  let best = ref Time_interval.Infinity in
  Array.iteri
    (fun tid clock ->
      if clock >= 0 then best := Time_interval.bound_min !best (dub net s tid))
    s.clocks;
  !best

let candidates net s =
  let limit = min_dub net s in
  List.filter
    (fun tid -> Time_interval.bound_le (Time_interval.Finite (dlb net s tid)) limit)
    (enabled_ids s)

let fireable net s =
  match candidates net s with
  | [] -> []
  | cands ->
    let best =
      List.fold_left
        (fun acc tid -> min acc (Pnet.priority net tid))
        max_int cands
    in
    List.filter (fun tid -> Pnet.priority net tid = best) cands

let firing_domain net s tid =
  check_enabled "firing_domain" s tid;
  (dlb net s tid, min_dub net s)

let fire (net : Pnet.t) s tid q =
  check_enabled "fire" s tid;
  let lo, hi = firing_domain net s tid in
  if q < lo || not (Time_interval.bound_le (Time_interval.Finite q) hi) then
    invalid_arg
      (Printf.sprintf "State.fire: time %d outside firing domain [%d, %s] of %s"
         q lo (Time_interval.bound_to_string hi) (Pnet.transition_name net tid));
  let marking = Array.copy s.marking in
  Array.iter (fun (p, w) -> marking.(p) <- marking.(p) - w) net.pre.(tid);
  Array.iter (fun (p, w) -> marking.(p) <- marking.(p) + w) net.post.(tid);
  let clocks =
    Array.init (Array.length s.clocks) (fun tk ->
        if not (marking_enables net marking tk) then -1
        else if tk = tid || s.clocks.(tk) < 0 then 0
        else s.clocks.(tk) + q)
  in
  { marking; clocks }

let equal a b =
  let arr_equal xs ys =
    Array.length xs = Array.length ys
    &&
    let rec go i = i >= Array.length xs || (xs.(i) = ys.(i) && go (i + 1)) in
    go 0
  in
  arr_equal a.marking b.marking && arr_equal a.clocks b.clocks

(* FNV-1a over every cell: the stdlib polymorphic hash only samples a
   prefix, which collides badly on states differing deep in the
   vectors. *)
let hash s =
  let h = ref 0x811c9dc5 in
  let mix x =
    h := (!h lxor (x land 0xff)) * 0x01000193 land max_int;
    h := (!h lxor ((x asr 8) land 0xffff)) * 0x01000193 land max_int
  in
  Array.iter mix s.marking;
  Array.iter mix s.clocks;
  !h

let pp net fmt s =
  let marked = ref [] in
  Array.iteri
    (fun p n ->
      if n > 0 then
        marked := Printf.sprintf "%s:%d" (Pnet.place_name net p) n :: !marked)
    s.marking;
  let clocked = ref [] in
  Array.iteri
    (fun tid c ->
      if c >= 0 then
        clocked :=
          Printf.sprintf "%s@%d" (Pnet.transition_name net tid) c :: !clocked)
    s.clocks;
  Format.fprintf fmt "{m: %s | c: %s}"
    (String.concat ", " (List.rev !marked))
    (String.concat ", " (List.rev !clocked))

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
