lib/tpn/dbm.mli: Format
