lib/tpn/time_interval.ml: Format Printf
