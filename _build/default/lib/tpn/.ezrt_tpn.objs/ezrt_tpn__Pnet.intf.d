lib/tpn/pnet.mli: Format Time_interval
