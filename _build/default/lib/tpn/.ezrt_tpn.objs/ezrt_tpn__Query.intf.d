lib/tpn/query.mli: Pnet
