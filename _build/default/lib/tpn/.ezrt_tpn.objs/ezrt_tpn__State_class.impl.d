lib/tpn/state_class.ml: Array Dbm Hashtbl List Pnet Printf Queue State Time_interval Tlts
