lib/tpn/analysis.mli: Format Pnet Tlts
