lib/tpn/invariants.mli: Pnet
