lib/tpn/tlts.ml: Array Buffer List Pnet Printf Queue State String Time_interval
