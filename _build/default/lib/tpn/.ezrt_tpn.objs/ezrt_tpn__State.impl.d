lib/tpn/state.ml: Array Format Hashtbl List Pnet Printf String Time_interval
