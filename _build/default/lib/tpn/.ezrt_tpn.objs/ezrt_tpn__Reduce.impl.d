lib/tpn/reduce.ml: Array Pnet
