lib/tpn/query.ml: Array List Pnet Printf Queue State State_class String Tlts
