lib/tpn/dot.mli: Pnet
