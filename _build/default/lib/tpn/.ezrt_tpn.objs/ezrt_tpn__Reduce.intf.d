lib/tpn/reduce.mli: Pnet
