lib/tpn/invariants.ml: Array List Pnet Printf
