lib/tpn/dbm.ml: Array Format List
