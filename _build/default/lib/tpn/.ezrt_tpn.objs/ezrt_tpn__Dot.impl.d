lib/tpn/dot.ml: Array Buffer Pnet Printf String Time_interval
