lib/tpn/state.mli: Format Hashtbl Pnet Time_interval
