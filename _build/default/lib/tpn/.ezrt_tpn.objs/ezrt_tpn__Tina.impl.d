lib/tpn/tina.ml: Array Buffer Hashtbl In_channel List Option Out_channel Pnet Printf String Time_interval
