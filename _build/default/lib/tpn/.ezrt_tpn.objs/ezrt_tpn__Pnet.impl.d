lib/tpn/pnet.ml: Array Format Hashtbl List Option Printf String Time_interval
