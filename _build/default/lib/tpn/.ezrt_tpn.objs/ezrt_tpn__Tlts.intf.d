lib/tpn/tlts.mli: Pnet State
