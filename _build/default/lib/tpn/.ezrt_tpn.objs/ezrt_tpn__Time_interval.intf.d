lib/tpn/time_interval.mli: Format
