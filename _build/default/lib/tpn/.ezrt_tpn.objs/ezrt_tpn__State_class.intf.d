lib/tpn/state_class.mli: Dbm Hashtbl Pnet
