lib/tpn/analysis.ml: Array Format Pnet State Time_interval Tlts
