lib/tpn/tina.mli: Pnet
