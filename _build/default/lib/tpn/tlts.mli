(** Timed labeled transition system derived from a TPN (paper §3.1).

    The TLTS of a net has actions [(t, q)] — transition [t] fired [q]
    time units after the previous action.  Exhaustive enumeration of
    every [q] in every firing domain explodes even on small nets, so
    exploration offers two successor modes:

    - [`Earliest] fires each fireable transition at its [DLB] (the
      policy of the paper's scheduler and of pre-runtime scheduling in
      general: work is started as early as allowed);
    - [`All_times] additionally enumerates every integer [q] in the
      firing domain, for small nets and for tests of the semantics. *)

type action = { tid : Pnet.transition_id; delay : int }

type mode = [ `Earliest | `All_times ]

val successors : mode -> Pnet.t -> State.t -> (action * State.t) list
(** Successors through the fireable set [FT(s)]. *)

type stats = {
  states : int;  (** distinct states reached (including the initial) *)
  edges : int;
  deadlocks : int;  (** states with no enabled transition *)
  truncated : bool;  (** true when [max_states] stopped the walk *)
}

val explore :
  ?mode:mode ->
  ?max_states:int ->
  ?on_state:(State.t -> unit) ->
  Pnet.t ->
  stats
(** Breadth-first reachability from the initial state.
    [max_states] defaults to 100_000. *)

type graph = {
  nodes : State.t array;  (** index 0 is the initial state *)
  transitions : (int * action * int) list;  (** (source, action, target) *)
}

val graph : ?mode:mode -> ?max_states:int -> Pnet.t -> graph
(** Materialized reachability graph ([max_states] defaults to 10_000 —
    this is for small nets and debugging; use {!explore} for counting). *)

val graph_to_dot : Pnet.t -> graph -> string
(** Graphviz rendering of the reachability graph: nodes show the
    marked places, edges the fired transition and its delay. *)

val run : Pnet.t -> (State.t -> Pnet.transition_id option) -> int -> action list
(** [run net pick n] executes up to [n] steps, letting [pick] choose
    among the fireable transitions (earliest firing); stops early when
    [pick] returns [None] or nothing is fireable.  Returns the actions
    taken, in order.  Raises [Invalid_argument] if [pick] returns a
    transition outside the fireable set. *)
