type error = { line : int; message : string }

let error_to_string e =
  Printf.sprintf "TINA .net error at line %d: %s" e.line e.message

exception Tina_error of error

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Tina_error { line; message })) fmt

(* TINA names with special characters must be brace-quoted; we mangle
   instead (our generated names are already plain). *)
let plain_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '\'' -> c
      | _ -> '_')
    name

let to_string (net : Pnet.t) =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "net %s\n" (plain_name net.Pnet.net_name);
  let arc (p, w) =
    if w = 1 then plain_name (Pnet.place_name net p)
    else Printf.sprintf "%s*%d" (plain_name (Pnet.place_name net p)) w
  in
  Array.iteri
    (fun tid (tr : Pnet.transition) ->
      let itv = tr.Pnet.interval in
      let interval =
        match Time_interval.lft itv with
        | Time_interval.Finite l ->
          Printf.sprintf "[%d,%d]" (Time_interval.eft itv) l
        | Time_interval.Infinity ->
          Printf.sprintf "[%d,w[" (Time_interval.eft itv)
      in
      out "tr %s %s %s -> %s\n"
        (plain_name tr.Pnet.t_name)
        interval
        (String.concat " " (Array.to_list (Array.map arc net.Pnet.pre.(tid))))
        (String.concat " " (Array.to_list (Array.map arc net.Pnet.post.(tid))));
      if tr.Pnet.priority <> Pnet.default_priority then
        out "# priority %s %d\n" (plain_name tr.Pnet.t_name) tr.Pnet.priority)
    net.Pnet.transitions;
  Array.iteri
    (fun p name ->
      let tokens = net.Pnet.m0.(p) in
      if tokens = 0 then out "pl %s\n" (plain_name name)
      else out "pl %s (%d)\n" (plain_name name) tokens)
    net.Pnet.place_names;
  Buffer.contents buf

(* --- reading -------------------------------------------------------- *)

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse_interval lineno s =
  (* [a,b] or [a,w[ *)
  let n = String.length s in
  if n < 5 || s.[0] <> '[' then fail lineno "malformed interval %S" s;
  let closer = s.[n - 1] in
  let body = String.sub s 1 (n - 2) in
  match String.split_on_char ',' body with
  | [ a; b ] -> (
    let eft =
      match int_of_string_opt a with
      | Some v -> v
      | None -> fail lineno "bad interval bound %S" a
    in
    match b, closer with
    | "w", '[' -> Time_interval.make_unbounded eft
    | _, ']' -> (
      match int_of_string_opt b with
      | Some lft -> Time_interval.make eft lft
      | None -> fail lineno "bad interval bound %S" b)
    | _, _ -> fail lineno "malformed interval %S" s)
  | _ -> fail lineno "malformed interval %S" s

let parse_arc lineno s =
  match String.index_opt s '*' with
  | None -> (s, 1)
  | Some i -> (
    let name = String.sub s 0 i in
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some w when w >= 1 -> (name, w)
    | Some _ | None -> fail lineno "bad arc weight in %S" s)

type raw_transition = {
  rt_line : int;
  rt_name : string;
  rt_interval : Time_interval.t;
  rt_pre : (string * int) list;
  rt_post : (string * int) list;
}

let of_string text =
  match
    let lines = String.split_on_char '\n' text in
    let name = ref "tina-net" in
    let transitions = ref [] in
    let places = ref [] in
    let priorities = ref [] in
    List.iteri
      (fun idx line ->
        let lineno = idx + 1 in
        let line = String.trim line in
        if line = "" then ()
        else
          match split_words line with
          | "net" :: rest -> name := String.concat " " rest
          | [ "#"; "priority"; t; p ] -> (
            match int_of_string_opt p with
            | Some p -> priorities := (t, p) :: !priorities
            | None -> fail lineno "bad priority %S" p)
          | "#" :: _ -> ()  (* other comments *)
          | "tr" :: tname :: interval :: rest ->
            let itv = parse_interval lineno interval in
            let rec split_at_arrow acc = function
              | [] -> fail lineno "transition %s has no ->" tname
              | "->" :: outputs -> (List.rev acc, outputs)
              | w :: rest -> split_at_arrow (w :: acc) rest
            in
            let inputs, outputs = split_at_arrow [] rest in
            transitions :=
              {
                rt_line = lineno;
                rt_name = tname;
                rt_interval = itv;
                rt_pre = List.map (parse_arc lineno) inputs;
                rt_post = List.map (parse_arc lineno) outputs;
              }
              :: !transitions
          | [ "pl"; pname ] -> places := (pname, 0) :: !places
          | [ "pl"; pname; marking ] ->
            let n = String.length marking in
            if n >= 3 && marking.[0] = '(' && marking.[n - 1] = ')' then
              match int_of_string_opt (String.sub marking 1 (n - 2)) with
              | Some tokens when tokens >= 0 ->
                places := (pname, tokens) :: !places
              | Some _ | None -> fail lineno "bad marking %S" marking
            else fail lineno "bad marking %S" marking
          | word :: _ -> fail lineno "unknown directive %S" word
          | [] -> ())
      lines;
    let b = Pnet.Builder.create !name in
    let place_ids = Hashtbl.create 64 in
    let place_of lineno pname =
      match Hashtbl.find_opt place_ids pname with
      | Some id -> id
      | None ->
        (* TINA allows arcs to implicitly declare places *)
        ignore lineno;
        let id = Pnet.Builder.add_place b pname in
        Hashtbl.replace place_ids pname id;
        id
    in
    List.iter
      (fun (pname, tokens) ->
        match Hashtbl.find_opt place_ids pname with
        | Some id -> Pnet.Builder.add_tokens b id tokens
        | None ->
          let id = Pnet.Builder.add_place b ~tokens pname in
          Hashtbl.replace place_ids pname id)
      (List.rev !places);
    List.iter
      (fun rt ->
        let priority =
          Option.value
            (List.assoc_opt rt.rt_name !priorities)
            ~default:Pnet.default_priority
        in
        let tid =
          Pnet.Builder.add_transition b ~priority rt.rt_name rt.rt_interval
        in
        List.iter
          (fun (pname, w) ->
            Pnet.Builder.arc_pt b ~weight:w (place_of rt.rt_line pname) tid)
          rt.rt_pre;
        List.iter
          (fun (pname, w) ->
            Pnet.Builder.arc_tp b ~weight:w tid (place_of rt.rt_line pname))
          rt.rt_post)
      (List.rev !transitions);
    Pnet.Builder.build b
  with
  | net -> Ok net
  | exception Tina_error e -> Error e
  | exception Invalid_argument msg -> Error { line = 0; message = msg }

let of_string_exn s =
  match of_string s with
  | Ok net -> net
  | Error e -> failwith (error_to_string e)

let save_file path net =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string net))

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_string contents
  | exception Sys_error msg -> Error { line = 0; message = msg }
