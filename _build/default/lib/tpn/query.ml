type comparison =
  | Le
  | Lt
  | Eq
  | Ne
  | Ge
  | Gt

type prop =
  | Atom of (string * int) list * comparison * int
  | Deadlock
  | Not of prop
  | And of prop * prop
  | Or of prop * prop

type query =
  | Ef of prop
  | Ag of prop

(* --- parsing -------------------------------------------------------- *)

type token =
  | Tword of string
  | Tint of int
  | Tcmp of comparison
  | Tplus
  | Tand
  | Tor
  | Tlpar
  | Trpar

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' -> go (i + 1) acc
      | '(' -> go (i + 1) (Tlpar :: acc)
      | ')' -> go (i + 1) (Trpar :: acc)
      | '+' -> go (i + 1) (Tplus :: acc)
      | '&' when i + 1 < n && s.[i + 1] = '&' -> go (i + 2) (Tand :: acc)
      | '|' when i + 1 < n && s.[i + 1] = '|' -> go (i + 2) (Tor :: acc)
      | '<' when i + 1 < n && s.[i + 1] = '=' -> go (i + 2) (Tcmp Le :: acc)
      | '<' -> go (i + 1) (Tcmp Lt :: acc)
      | '>' when i + 1 < n && s.[i + 1] = '=' -> go (i + 2) (Tcmp Ge :: acc)
      | '>' -> go (i + 1) (Tcmp Gt :: acc)
      | '=' -> go (i + 1) (Tcmp Eq :: acc)
      | '!' when i + 1 < n && s.[i + 1] = '=' -> go (i + 2) (Tcmp Ne :: acc)
      | '0' .. '9' ->
        let j = ref i in
        while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
          incr j
        done;
        go !j (Tint (int_of_string (String.sub s i (!j - i))) :: acc)
      | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let j = ref i in
        let word_char c =
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '\'' -> true
          | _ -> false
        in
        while !j < n && word_char s.[!j] do
          incr j
        done;
        go !j (Tword (String.sub s i (!j - i)) :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C" c)
  in
  go 0 []

exception Syntax of string

let parse input =
  let fail fmt = Printf.ksprintf (fun m -> raise (Syntax m)) fmt in
  let parse_tokens tokens =
    let rest = ref tokens in
    let peek () = match !rest with [] -> None | t :: _ -> Some t in
    let advance () =
      match !rest with
      | [] -> fail "unexpected end of query"
      | t :: tl ->
        rest := tl;
        t
    in
    (* term := (INT? word) ("+" INT? word)* *)
    let parse_term first_coeff first_word =
      let items = ref [ (first_word, first_coeff) ] in
      let rec more () =
        match peek () with
        | Some Tplus ->
          ignore (advance ());
          (match advance () with
          | Tint c -> (
            match advance () with
            | Tword w -> items := (w, c) :: !items
            | _ -> fail "expected a place name after coefficient")
          | Tword w -> items := (w, 1) :: !items
          | _ -> fail "expected a place after '+'");
          more ()
        | _ -> ()
      in
      more ();
      List.rev !items
    in
    let parse_atom_tail weighted =
      match advance () with
      | Tcmp cmp -> (
        match advance () with
        | Tint k -> Atom (weighted, cmp, k)
        | _ -> fail "expected an integer bound")
      | _ -> fail "expected a comparison operator"
    in
    let rec parse_or () =
      let left = parse_and () in
      match peek () with
      | Some Tor ->
        ignore (advance ());
        Or (left, parse_or ())
      | _ -> left
    and parse_and () =
      let left = parse_unary () in
      match peek () with
      | Some Tand ->
        ignore (advance ());
        And (left, parse_and ())
      | _ -> left
    and parse_unary () =
      match advance () with
      | Tword "not" -> Not (parse_unary ())
      | Tword "deadlock" -> Deadlock
      | Tword w -> parse_atom_tail (parse_term 1 w)
      | Tint c -> (
        match advance () with
        | Tword w -> parse_atom_tail (parse_term c w)
        | _ -> fail "expected a place after coefficient")
      | Tlpar ->
        let inner = parse_or () in
        (match advance () with
        | Trpar -> inner
        | _ -> fail "expected ')'")
      | Tcmp _ | Tplus | Tand | Tor | Trpar -> fail "unexpected token"
    in
    let quantifier =
      match advance () with
      | Tword "EF" -> `Ef
      | Tword "AG" -> `Ag
      | _ -> fail "query must start with EF or AG"
    in
    let body = parse_or () in
    if !rest <> [] then fail "trailing tokens after the property";
    match quantifier with `Ef -> Ef body | `Ag -> Ag body
  in
  match tokenize input with
  | Error msg -> Error msg
  | Ok tokens -> (
    match parse_tokens tokens with
    | q -> Ok q
    | exception Syntax msg -> Error msg)

let comparison_to_string = function
  | Le -> "<="
  | Lt -> "<"
  | Eq -> "="
  | Ne -> "!="
  | Ge -> ">="
  | Gt -> ">"

let rec prop_to_string = function
  | Atom (weighted, cmp, k) ->
    Printf.sprintf "%s %s %d"
      (String.concat " + "
         (List.map
            (fun (w, c) -> if c = 1 then w else Printf.sprintf "%d %s" c w)
            weighted))
      (comparison_to_string cmp) k
  | Deadlock -> "deadlock"
  | Not p -> Printf.sprintf "not (%s)" (prop_to_string p)
  | And (a, b) -> Printf.sprintf "(%s && %s)" (prop_to_string a) (prop_to_string b)
  | Or (a, b) -> Printf.sprintf "(%s || %s)" (prop_to_string a) (prop_to_string b)

let to_string = function
  | Ef p -> "EF " ^ prop_to_string p
  | Ag p -> "AG " ^ prop_to_string p

(* --- checking ------------------------------------------------------- *)

type verdict =
  | Holds of string list
  | Fails of string list
  | Unknown

let verdict_to_string = function
  | Holds [] -> "holds"
  | Holds witness ->
    Printf.sprintf "holds; witness: %s" (String.concat " " witness)
  | Fails [] -> "does not hold"
  | Fails counterexample ->
    Printf.sprintf "does not hold; counterexample: %s"
      (String.concat " " counterexample)
  | Unknown -> "unknown (state budget exhausted)"

(* resolve place names once *)
let rec resolve_prop net = function
  | Atom (weighted, cmp, k) ->
    let resolved =
      List.map
        (fun (name, coeff) ->
          match Pnet.find_place_opt net name with
          | Some p -> (p, coeff)
          | None -> raise Not_found)
        weighted
    in
    `Atom (resolved, cmp, k)
  | Deadlock -> `Deadlock
  | Not p -> `Not (resolve_prop net p)
  | And (a, b) -> `And (resolve_prop net a, resolve_prop net b)
  | Or (a, b) -> `Or (resolve_prop net a, resolve_prop net b)

let rec unknown_places net = function
  | Atom (weighted, _, _) ->
    List.filter_map
      (fun (name, _) ->
        if Pnet.find_place_opt net name = None then Some name else None)
      weighted
  | Deadlock -> []
  | Not p -> unknown_places net p
  | And (a, b) | Or (a, b) -> unknown_places net a @ unknown_places net b

let compare_ints cmp a b =
  match cmp with
  | Le -> a <= b
  | Lt -> a < b
  | Eq -> a = b
  | Ne -> a <> b
  | Ge -> a >= b
  | Gt -> a > b

let rec eval net (s : State.t) = function
  | `Atom (weighted, cmp, k) ->
    let total =
      List.fold_left
        (fun acc (p, coeff) -> acc + (coeff * s.State.marking.(p)))
        0 weighted
    in
    compare_ints cmp total k
  | `Deadlock -> State.enabled_ids s = []
  | `Not p -> not (eval net s p)
  | `And (a, b) -> eval net s a && eval net s b
  | `Or (a, b) -> eval net s a || eval net s b

(* BFS with parent pointers: the first state satisfying [target]
   yields the shortest witness. *)
let find_state ?(max_states = 100_000) net target =
  let seen = State.Table.create 1024 in
  let queue = Queue.create () in
  let truncated = ref false in
  let visit parent s =
    if not (State.Table.mem seen s) then begin
      if State.Table.length seen >= max_states then truncated := true
      else begin
        State.Table.replace seen s parent;
        Queue.push s queue
      end
    end
  in
  let witness s =
    let rec build acc s =
      match State.Table.find seen s with
      | None -> acc
      | Some (prev, tid) -> build (Pnet.transition_name net tid :: acc) prev
    in
    build [] s
  in
  let initial = State.initial net in
  visit None initial;
  let found = ref None in
  if target net initial then found := Some initial;
  while !found = None && not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter
      (fun (action, s') ->
        if !found = None && not (State.Table.mem seen s') then begin
          visit (Some (s, action.Tlts.tid)) s';
          if target net s' then found := Some s'
        end)
      (Tlts.successors `Earliest net s)
  done;
  match !found with
  | Some s -> `Found (witness s)
  | None -> if !truncated then `Truncated else `Absent

let check ?max_states net query =
  let body = match query with Ef p | Ag p -> p in
  match unknown_places net body with
  | _ :: _ as missing ->
    Error
      (Printf.sprintf "unknown place(s): %s"
         (String.concat ", " (List.sort_uniq compare missing)))
  | [] ->
    let resolved = resolve_prop net body in
    Ok
      (match query with
      | Ef _ -> (
        (* a state satisfying the property is a witness that EF holds *)
        match find_state ?max_states net (fun net s -> eval net s resolved) with
        | `Found witness -> Holds witness
        | `Absent -> Fails []
        | `Truncated -> Unknown)
      | Ag _ -> (
        (* a state violating the property refutes AG *)
        match
          find_state ?max_states net (fun net s -> not (eval net s resolved))
        with
        | `Found counterexample -> Fails counterexample
        | `Absent -> Holds []
        | `Truncated -> Unknown))

(* The same BFS over the dense-time class graph. *)
let find_class ?(max_classes = 100_000) ~priorities net target =
  let seen = State_class.Table.create 1024 in
  let queue = Queue.create () in
  let truncated = ref false in
  let visit parent c =
    if not (State_class.Table.mem seen c) then begin
      if State_class.Table.length seen >= max_classes then truncated := true
      else begin
        State_class.Table.replace seen c parent;
        Queue.push c queue
      end
    end
  in
  let witness c =
    let rec build acc c =
      match State_class.Table.find seen c with
      | None -> acc
      | Some (prev, tid) -> build (Pnet.transition_name net tid :: acc) prev
    in
    build [] c
  in
  let initial = State_class.initial net in
  visit None initial;
  let found = ref None in
  if target initial then found := Some initial;
  while !found = None && not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    List.iter
      (fun tid ->
        if !found = None then begin
          let c' = State_class.fire net c tid in
          if not (State_class.Table.mem seen c') then begin
            visit (Some (c, tid)) c';
            if target c' then found := Some c'
          end
        end)
      (State_class.firable ~priorities net c)
  done;
  match !found with
  | Some c -> `Found (witness c)
  | None -> if !truncated then `Truncated else `Absent

let rec eval_class net (c : State_class.t) = function
  | `Atom (weighted, cmp, k) ->
    let total =
      List.fold_left
        (fun acc (p, coeff) -> acc + (coeff * c.State_class.marking.(p)))
        0 weighted
    in
    compare_ints cmp total k
  | `Deadlock -> State_class.firable net c = []  (* prioritized *)
  | `Not p -> not (eval_class net c p)
  | `And (a, b) -> eval_class net c a && eval_class net c b
  | `Or (a, b) -> eval_class net c a || eval_class net c b

let check_classes ?max_classes ?(priorities = true) net query =
  let body = match query with Ef p | Ag p -> p in
  match unknown_places net body with
  | _ :: _ as missing ->
    Error
      (Printf.sprintf "unknown place(s): %s"
         (String.concat ", " (List.sort_uniq compare missing)))
  | [] ->
    let resolved = resolve_prop net body in
    Ok
      (match query with
      | Ef _ -> (
        match
          find_class ?max_classes ~priorities net (fun c ->
              eval_class net c resolved)
        with
        | `Found witness -> Holds witness
        | `Absent -> Fails []
        | `Truncated -> Unknown)
      | Ag _ -> (
        match
          find_class ?max_classes ~priorities net (fun c ->
              not (eval_class net c resolved))
        with
        | `Found counterexample -> Fails counterexample
        | `Absent -> Holds []
        | `Truncated -> Unknown))

let check_exn ?max_states net query_text =
  match parse query_text with
  | Error msg -> failwith ("query syntax: " ^ msg)
  | Ok query -> (
    match check ?max_states net query with
    | Ok verdict -> verdict
    | Error msg -> failwith msg)
