(** Conservative structural cleanup of nets.

    Two reductions that preserve the timed behaviour exactly (they only
    remove nodes that can never participate in it), useful for nets
    imported from PNML or assembled by hand:

    - transitions that are structurally dead — some input place can
      never receive a token (not marked initially and not produced by
      any live transition, computed as a fixpoint);
    - places that end up isolated (no arcs and no initial tokens).

    The translation's own nets are already clean; tests assert that
    cleanup is the identity on them. *)

type result = {
  net : Pnet.t;
  removed_transitions : string list;
  removed_places : string list;
  place_map : int array;
      (** old place id -> new id, or -1 when removed *)
  transition_map : int array;
}

val live_transitions : Pnet.t -> bool array
(** Fixpoint liveness over-approximation: a transition is kept when
    every input place is potentially markable. *)

val cleanup : Pnet.t -> result

val is_identity : result -> bool
