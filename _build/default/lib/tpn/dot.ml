let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_dot ?(rankdir = "LR") (net : Pnet.t) =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph %s {\n" (quote net.net_name);
  out "  rankdir=%s;\n" rankdir;
  for p = 0 to Pnet.place_count net - 1 do
    let tokens = net.m0.(p) in
    let label =
      if tokens = 0 then Pnet.place_name net p
      else Printf.sprintf "%s\\n(%d)" (Pnet.place_name net p) tokens
    in
    out "  p%d [shape=circle, label=%s];\n" p (quote label)
  done;
  for tid = 0 to Pnet.transition_count net - 1 do
    let itv = Pnet.interval net tid in
    let prio = Pnet.priority net tid in
    let label =
      if prio = Pnet.default_priority then
        Printf.sprintf "%s\\n%s" (Pnet.transition_name net tid)
          (Time_interval.to_string itv)
      else
        Printf.sprintf "%s\\n%s\\npi=%d" (Pnet.transition_name net tid)
          (Time_interval.to_string itv) prio
    in
    out "  t%d [shape=box, label=%s];\n" tid (quote label)
  done;
  let edge src dst w =
    if w = 1 then out "  %s -> %s;\n" src dst
    else out "  %s -> %s [label=%s];\n" src dst (quote (string_of_int w))
  in
  Array.iteri
    (fun tid arcs ->
      Array.iter
        (fun (p, w) ->
          edge (Printf.sprintf "p%d" p) (Printf.sprintf "t%d" tid) w)
        arcs)
    net.pre;
  Array.iteri
    (fun tid arcs ->
      Array.iter
        (fun (p, w) ->
          edge (Printf.sprintf "t%d" tid) (Printf.sprintf "p%d" p) w)
        arcs)
    net.post;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
