type report = {
  reachable_states : int;
  edges : int;
  deadlocks : int;
  truncated : bool;
  place_bound : int;
  per_place_bound : int array;
}

let reachability_report ?(mode = `Earliest) ?max_states (net : Pnet.t) =
  let per_place_bound = Array.copy net.m0 in
  let record (s : State.t) =
    Array.iteri
      (fun p n -> if n > per_place_bound.(p) then per_place_bound.(p) <- n)
      s.State.marking
  in
  let stats = Tlts.explore ~mode ?max_states ~on_state:record net in
  {
    reachable_states = stats.Tlts.states;
    edges = stats.Tlts.edges;
    deadlocks = stats.Tlts.deadlocks;
    truncated = stats.Tlts.truncated;
    place_bound = Array.fold_left max 0 per_place_bound;
    per_place_bound;
  }

let is_safe_place report p = report.per_place_bound.(p) <= 1

type structure = {
  places : int;
  transitions : int;
  arcs : int;
  initial_tokens : int;
  source_transitions : string list;
  isolated_places : string list;
  point_intervals : int;
  zero_intervals : int;
}

let structure (net : Pnet.t) =
  let transitions = Pnet.transition_count net in
  let source_transitions = ref [] in
  let point_intervals = ref 0 in
  let zero_intervals = ref 0 in
  for tid = transitions - 1 downto 0 do
    if Array.length net.post.(tid) = 0 then
      source_transitions := Pnet.transition_name net tid :: !source_transitions;
    let itv = Pnet.interval net tid in
    if Time_interval.is_point itv then begin
      incr point_intervals;
      if Time_interval.eft itv = 0 then incr zero_intervals
    end
  done;
  let produced = Array.make (Pnet.place_count net) false in
  Array.iter (Array.iter (fun (p, _) -> produced.(p) <- true)) net.post;
  let isolated_places = ref [] in
  for p = Pnet.place_count net - 1 downto 0 do
    if (not produced.(p)) && Array.length net.consumers.(p) = 0 then
      isolated_places := Pnet.place_name net p :: !isolated_places
  done;
  {
    places = Pnet.place_count net;
    transitions;
    arcs = Pnet.arc_count net;
    initial_tokens = Array.fold_left ( + ) 0 net.m0;
    source_transitions = !source_transitions;
    isolated_places = !isolated_places;
    point_intervals = !point_intervals;
    zero_intervals = !zero_intervals;
  }

let pp_structure fmt s =
  Format.fprintf fmt
    "|P|=%d |T|=%d |F|=%d m0-tokens=%d point-intervals=%d immediate=%d" s.places
    s.transitions s.arcs s.initial_tokens s.point_intervals s.zero_intervals
