(** Property checking over the reachable state space — the "checking
    properties" capability the paper's abstract lists, in the style of
    TINA/Romeo reachability queries.

    Properties are boolean combinations of linear marking atoms plus a
    [deadlock] atom; queries quantify them over the reachable states:

    {v
    EF pdm_T1 >= 1                    a deadline can be missed
    AG pproc <= 1                     the processor is 1-safe
    AG (pexcl_A_B + pwc_A <= 1)       slot accounting
    EF deadlock                       some state has no successor
    v}

    Checking walks the discrete earliest-firing TLTS breadth-first with
    parent tracking, so failed universal and satisfied existential
    queries come with a concrete firing witness.

    Semantics caveat: the walk explores every choice of *which*
    transition fires next (the fireable set [FT(s)]) but fires each at
    its earliest time, like the scheduler's search.  Properties are
    therefore relative to that discrete semantics; behaviour reachable
    only by delaying a firing inside its window (e.g. a deadline miss
    that needs a late release) is covered by {!State_class}, not by
    this walk. *)

type comparison =
  | Le
  | Lt
  | Eq
  | Ne
  | Ge
  | Gt

type prop =
  | Atom of (string * int) list * comparison * int
      (** weighted place sum compared to a constant *)
  | Deadlock
  | Not of prop
  | And of prop * prop
  | Or of prop * prop

type query =
  | Ef of prop  (** some reachable state satisfies the property *)
  | Ag of prop  (** every reachable state satisfies the property *)

val parse : string -> (query, string) result
(** Concrete syntax:
    [query := ("EF" | "AG") prop],
    [prop := term cmp INT | "deadlock" | "not" prop
           | prop "&&" prop | prop "||" prop | "(" prop ")"],
    [term := INT? place ("+" INT? place)*],
    [cmp := "<=" | "<" | "=" | "!=" | ">=" | ">"].
    Place names are resolved against the net at check time. *)

val to_string : query -> string

type verdict =
  | Holds of string list
      (** for [EF]: a shortest firing sequence (transition names)
          reaching a satisfying state; [[]] for [AG] *)
  | Fails of string list
      (** for [AG]: a shortest counterexample run; [[]] for [EF] *)
  | Unknown
      (** the bounded walk was truncated before an answer was found *)

val verdict_to_string : verdict -> string

val check : ?max_states:int -> Pnet.t -> query -> (verdict, string) result
(** [Error] reports unknown place names.  [max_states] defaults to
    100_000. *)

val check_classes :
  ?max_classes:int -> ?priorities:bool -> Pnet.t -> query -> (verdict, string) result
(** The same queries over the dense-time state-class graph
    ({!State_class}), covering behaviour reachable only by delaying
    firings inside their windows, at a higher per-node cost.
    [Deadlock] means the class has no firable transition.

    [priorities] (default true) keeps the paper's [FT] filter, which
    does not commute with the class abstraction (see
    {!State_class.firable}); pass [false] for the classical TPN
    semantics, which over-approximates the prioritized behaviour —
    [AG phi] holding at [~priorities:false] implies it holds
    in the prioritized semantics, while an [EF] witness found there
    may be spurious at exact-deadline boundaries. *)

val check_exn : ?max_states:int -> Pnet.t -> string -> verdict
(** Parse and check; raises [Failure] on syntax or name errors. *)
