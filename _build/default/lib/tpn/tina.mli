(** TINA [.net] textual format.

    TINA (TIme petri Net Analyzer, LAAS/CNRS) is the reference analyzer
    for time Petri nets; this module reads and writes its textual net
    format so that generated models can be cross-checked with the real
    tool and TINA examples can be imported:

    {v
    net mine-pump
    tr tr_PMC [0,10] pwr_PMC -> pwg_PMC
    tr tc_PMC [10,10] pwc_PMC -> pwf_PMC
    pl pproc (1)
    v}

    Supported subset: [net], [tr] with closed intervals ([ [a,b] ] or
    [ [a,w[ ] for unbounded), arc weights ([place*3]), [pl] with
    initial markings.  Labels ([: lbl]), open intervals and stopwatch
    extensions are not supported; transition priorities (not part of
    TINA's core format) are carried in a [# priority] comment that this
    reader understands and TINA ignores. *)

val to_string : Pnet.t -> string

type error = { line : int; message : string }

val error_to_string : error -> string

val of_string : string -> (Pnet.t, error) result
val of_string_exn : string -> Pnet.t

val save_file : string -> Pnet.t -> unit
val load_file : string -> (Pnet.t, error) result
