lib/codegen/target.mli:
