lib/codegen/target.ml: List
