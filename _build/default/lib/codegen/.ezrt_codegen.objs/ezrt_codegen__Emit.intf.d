lib/codegen/emit.mli: Ezrt_blocks Ezrt_sched Target
