lib/codegen/emit.ml: Array Buffer Ezrt_blocks Ezrt_sched Ezrt_spec List Option Printf String Target
