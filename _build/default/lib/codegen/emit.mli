(** Scheduled C code generation (paper §4.4.2 and Fig 8).

    The generated program contains, exactly as the paper describes:
    the tasks' code, a schedule table ([struct ScheduleItem] with start
    time, preemption flag, task id and a function pointer), a small
    dispatcher that walks the table, and a timer interrupt handler that
    reprograms the timer to the next row's start time.

    Task bodies compile in two modes: with [EZRT_TRACE] (default on the
    hosted target) each activation prints a trace line, and with
    [EZRT_USER_CODE] the behavioural sources from the specification are
    compiled in.  Context save/restore are platform hooks
    ([EZRT_SAVE_CONTEXT] / [EZRT_RESTORE_CONTEXT]) that default to
    no-ops, as the mechanism is register-file specific. *)

val c_identifier : string -> string
(** Mangle a task name into a C identifier. *)

val schedule_table :
  Ezrt_blocks.Translate.t -> Ezrt_sched.Table.item list -> string
(** Just the [struct ScheduleItem scheduleTable[...]] initializer with
    Fig 8-style row comments. *)

type layout =
  | Struct_table
      (** the paper's Fig 8 representation: an array of
          [struct ScheduleItem] with a function pointer per row *)
  | Compact_table
      (** parallel [const] arrays — 16-bit start-time deltas and a
          packed flag/task byte — plus one small function table; 3
          bytes per row instead of 8-24, for flash-constrained parts
          (the paper's "optimize the generated code to specific
          platforms" future work).  Requires task ids below 128 and
          hyper-periods below 65536. *)

val program :
  ?target:Target.t ->
  ?layout:layout ->
  Ezrt_blocks.Translate.t ->
  Ezrt_sched.Table.item list ->
  string
(** The complete C translation unit ([target] defaults to
    {!Target.hosted}, [layout] to [Struct_table]).  Raises
    [Invalid_argument] when [Compact_table] limits are exceeded. *)

type footprint = {
  rows : int;
  row_bytes : int;  (** sizeof(struct ScheduleItem) under natural alignment *)
  table_bytes : int;
  fits_flash : bool option;
      (** table vs the target's typical code-memory budget; [None] when
          the profile declares no budget *)
}

val table_footprint :
  ?layout:layout -> Target.t -> Ezrt_sched.Table.item list -> footprint
(** ROM cost of the schedule table — the dominant memory artifact of
    pre-runtime scheduling on small parts (the paper's 8051 has a few
    KiB of flash, while a hyper-period like the mine pump's needs one
    row per execution part). *)

val trace_line_of_item :
  Ezrt_blocks.Translate.t -> base:int -> Ezrt_sched.Table.item -> string
(** The line the hosted program prints for one table row — used by
    tests to predict the output of the compiled program.  [base] is the
    hyper-period offset (0 for the first cycle). *)
