type t = {
  name : string;
  description : string;
  includes : string list;
  isr_qualifier : string;
  timer_setup : string list;
  timer_program : string list;
  timer_ack : string list;
  idle : string;
  glue : string list;
  int_bytes : int;
  pointer_bytes : int;
  flash_bytes : int option;
  hosted : bool;
}

let hosted =
  {
    name = "hosted";
    description = "host-compilable simulation harness (logical clock)";
    includes = [ "<stdio.h>"; "<stdbool.h>" ];
    isr_qualifier = "";
    timer_setup = [ "/* hosted: the harness advances the logical clock */" ];
    timer_program = [ "ezrt_next_tick = next;" ];
    timer_ack = [];
    idle = "/* hosted: the harness drives the ISR directly */";
    glue =
      [
        "#define EZRT_TRACE 1";
        "#ifndef EZRT_HOSTED_CYCLES";
        "#define EZRT_HOSTED_CYCLES 1   /* hyper-periods to simulate */";
        "#endif";
      ];
    int_bytes = 4;
    pointer_bytes = 8;
    flash_bytes = None;
    hosted = true;
  }

let x86 =
  {
    name = "x86";
    description = "bare-metal x86, legacy PIT channel 0";
    includes = [ "<stdbool.h>"; "<stdint.h>" ];
    isr_qualifier = "__attribute__((interrupt))";
    timer_setup =
      [
        "outb(0x43, 0x34);               /* PIT channel 0, rate generator */";
        "outb(0x40, EZRT_PIT_DIVISOR & 0xff);";
        "outb(0x40, EZRT_PIT_DIVISOR >> 8);";
      ];
    timer_program =
      [
        "uint16_t ticks = (uint16_t)(next - ezrt_now);";
        "outb(0x40, ticks & 0xff);";
        "outb(0x40, ticks >> 8);";
      ];
    timer_ack = [ "outb(0x20, 0x20);               /* EOI to the PIC */" ];
    idle = "__asm__ volatile (\"hlt\");";
    glue =
      [
        "#define EZRT_PIT_DIVISOR 1193  /* ~1 kHz tick from 1.193 MHz */";
        "static inline void outb(uint16_t port, uint8_t value)";
        "{";
        "    __asm__ volatile (\"outb %0, %1\" :: \"a\"(value), \"Nd\"(port));";
        "}";
      ];
    int_bytes = 4;
    pointer_bytes = 4;
    flash_bytes = Some 262144;   (* 256 KiB option ROM class *)
    hosted = false;
  }

let arm9 =
  {
    name = "arm9";
    description = "ARM9, memory-mapped periodic timer";
    includes = [ "<stdbool.h>"; "<stdint.h>" ];
    isr_qualifier = "__attribute__((interrupt(\"IRQ\")))";
    timer_setup =
      [
        "EZRT_TIMER->control = 0;        /* stop */";
        "EZRT_TIMER->load = EZRT_TICK_CYCLES;";
        "EZRT_TIMER->control = TIMER_ENABLE | TIMER_IRQ;";
      ];
    timer_program = [ "EZRT_TIMER->compare = next * EZRT_TICK_CYCLES;" ];
    timer_ack = [ "EZRT_TIMER->clear = 1;          /* clear the IRQ line */" ];
    idle = "__asm__ volatile (\"mcr p15, 0, %0, c7, c0, 4\" :: \"r\"(0)); /* wait for interrupt */";
    glue =
      [
        "#define EZRT_TICK_CYCLES 1000u /* timer cycles per time unit */";
        "#define TIMER_ENABLE (1u << 7)";
        "#define TIMER_IRQ    (1u << 5)";
        "struct ezrt_timer_regs {";
        "    volatile uint32_t load, compare, control, clear;";
        "};";
        "#define EZRT_TIMER ((struct ezrt_timer_regs *)0x101e2000)";
      ];
    int_bytes = 4;
    pointer_bytes = 4;
    flash_bytes = Some 524288;   (* 512 KiB on-chip flash class *)
    hosted = false;
  }

let i8051 =
  {
    name = "8051";
    description = "Intel 8051, timer 0 mode 1 (SDCC dialect)";
    includes = [ "<8051.h>" ];
    isr_qualifier = "__interrupt(1)";
    timer_setup =
      [
        "TMOD = (TMOD & 0xf0) | 0x01;    /* timer 0, 16-bit mode */";
        "ET0 = 1;                        /* enable timer 0 interrupt */";
        "EA = 1;                         /* global interrupt enable */";
        "TR0 = 1;                        /* run */";
      ];
    timer_program =
      [
        "unsigned int ticks = (unsigned int)(next - ezrt_now) * EZRT_CYCLES_PER_TICK;";
        "TH0 = (unsigned char)((0x10000u - ticks) >> 8);";
        "TL0 = (unsigned char)(0x10000u - ticks);";
      ];
    timer_ack = [ "TF0 = 0;                        /* clear overflow flag */" ];
    idle = "PCON |= 0x01;                   /* idle mode until interrupt */";
    glue =
      [ "#define EZRT_CYCLES_PER_TICK 922u /* 12 MHz / 12 / 1 kHz */" ];
    int_bytes = 2;
    pointer_bytes = 2;  (* small memory model *)
    flash_bytes = Some 4096;     (* classic AT89C51 *)
    hosted = false;
  }

let m68k =
  {
    name = "m68k";
    description = "Motorola 68000, periodic timer on a user vector";
    includes = [ "<stdbool.h>"; "<stdint.h>" ];
    isr_qualifier = "__attribute__((interrupt_handler))";
    timer_setup =
      [
        "*EZRT_TIMER_CTRL = 0;           /* stop */";
        "*EZRT_TIMER_VECTOR = EZRT_TIMER_VEC;";
        "*EZRT_TIMER_CTRL = TIMER_GO | TIMER_IRQ_EN;";
      ];
    timer_program = [ "*EZRT_TIMER_CMP = next * EZRT_TICK_CYCLES;" ];
    timer_ack = [ "*EZRT_TIMER_STAT = 1;           /* acknowledge */" ];
    idle = "__asm__ volatile (\"stop #0x2000\");";
    glue =
      [
        "#define EZRT_TICK_CYCLES 1000u";
        "#define EZRT_TIMER_VEC 64";
        "#define TIMER_GO     (1u << 0)";
        "#define TIMER_IRQ_EN (1u << 1)";
        "#define EZRT_TIMER_CTRL   ((volatile uint16_t *)0xfff000)";
        "#define EZRT_TIMER_CMP    ((volatile uint32_t *)0xfff004)";
        "#define EZRT_TIMER_STAT   ((volatile uint16_t *)0xfff008)";
        "#define EZRT_TIMER_VECTOR ((volatile uint16_t *)0xfff00a)";
      ];
    int_bytes = 4;
    pointer_bytes = 4;
    flash_bytes = Some 131072;   (* 128 KiB ROM class *)
    hosted = false;
  }

let all =
  [
    ("hosted", hosted);
    ("x86", x86);
    ("arm9", arm9);
    ("8051", i8051);
    ("m68k", m68k);
  ]

let find name = List.assoc_opt name all
