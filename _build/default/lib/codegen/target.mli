(** Code-generation target profiles.

    The paper's future-work list names ARM9, 8051, M68K and x86; each
    profile provides the platform-specific boilerplate (includes, timer
    programming, interrupt-handler qualifiers, idle instruction) while
    the schedule table and dispatcher are platform-independent.

    The [hosted] profile additionally wraps the program in a logical-
    clock harness so the generated file compiles with any host C
    compiler and, when run, prints its dispatch trace for one
    hyper-period — the container substitute for executing on a real
    microcontroller (see DESIGN.md). *)

type t = {
  name : string;
  description : string;
  includes : string list;
  isr_qualifier : string;  (** attribute/keyword marking the timer ISR *)
  timer_setup : string list;  (** body lines of [ezrt_timer_init] *)
  timer_program : string list;
      (** body lines of [ezrt_timer_program(next)] *)
  timer_ack : string list;  (** interrupt acknowledgment lines *)
  idle : string;  (** one statement for the main idle loop *)
  glue : string list;
      (** platform glue emitted before the dispatcher: register maps,
          port helpers, tick-rate constants *)
  int_bytes : int;  (** sizeof(int) on the target *)
  pointer_bytes : int;  (** size of a function pointer *)
  flash_bytes : int option;
      (** typical code-memory budget of the profile's reference part,
          used by footprint warnings; [None] for hosted *)
  hosted : bool;
}

val hosted : t
(** Self-contained ANSI C simulation harness (x86 or any host). *)

val x86 : t
(** Bare-metal x86 with the legacy PIT (port 0x40) timer. *)

val arm9 : t
(** ARM9 with a memory-mapped timer block. *)

val i8051 : t
(** Intel 8051, timer 0 in mode 1 (uses the SDCC [__interrupt]
    keyword; not compilable by a host compiler). *)

val m68k : t
(** Motorola 68000 with a periodic timer vector. *)

val all : (string * t) list
val find : string -> t option
