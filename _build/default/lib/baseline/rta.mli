(** Analytic schedulability tests for fixed-priority runtime
    scheduling — the textbook counterpart of both the simulator
    ({!Sim}) and the paper's exhaustive synthesis.

    Implements, for task sets ordered by rate- or deadline-monotonic
    priority:

    - the Liu & Layland utilization bound [n (2^{1/n} - 1)] (sufficient
      for preemptive RM with implicit deadlines);
    - exact response-time analysis
      [R = C + B + sum_{hp} ceil(R / T_j) C_j] with the blocking term
      [B] = the longest lower-priority non-preemptive computation (a
      non-preemptive task, once started, cannot be preempted).

    Precedence, message and exclusion relations are outside this
    analysis (it is sound only for independent task sets); {!analyze}
    refuses specifications that have them. *)

type policy =
  | Rate_monotonic
  | Deadline_monotonic

type task_report = {
  task : string;
  priority_rank : int;  (** 0 = highest priority *)
  blocking : int;
  response_time : int option;
      (** [None]: the recurrence found no fixed point within the
          safety cap (only possible for over-utilized inputs) *)
  schedulable : bool;
}

type report = {
  utilization : float;
  liu_layland_bound : float;
  passes_utilization_test : bool;
      (** sufficient only; a [false] here decides nothing *)
  tasks : task_report list;
  all_schedulable : bool;  (** every response time meets its deadline *)
}

val analyze : ?policy:policy -> Ezrt_spec.Spec.t -> (report, string) result
(** [policy] defaults to [Deadline_monotonic].  Returns [Error] for
    specifications with relations, messages or phases (the analysis
    assumes independent, synchronous task sets). *)

val pp : Format.formatter -> report -> unit
