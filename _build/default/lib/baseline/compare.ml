module Spec = Ezrt_spec.Spec
module Task = Ezrt_spec.Task
module Translate = Ezrt_blocks.Translate
module Search = Ezrt_sched.Search
module Timeline = Ezrt_sched.Timeline
module Validator = Ezrt_sched.Validator

type row = {
  approach : string;
  feasible : bool;
  detail : string;
}

let runtime_row spec (name, policy) =
  let result = Sim.simulate policy spec in
  let detail =
    match result.Sim.first_miss with
    | None -> Printf.sprintf "%d preemptions" result.Sim.preemptions
    | Some miss ->
      let tasks = Array.of_list spec.Spec.tasks in
      Printf.sprintf "first miss: %s#%d at t=%d"
        tasks.(miss.Sim.task).Task.name miss.Sim.instance miss.Sim.time
  in
  { approach = name; feasible = result.Sim.feasible; detail }

let pre_runtime_row ?search spec =
  let model = Translate.translate spec in
  let outcome, metrics = Search.find_schedule ?options:search model in
  match outcome with
  | Ok schedule ->
    let segments = Timeline.of_schedule model schedule in
    let certified =
      match Validator.check model segments with Ok () -> true | Error _ -> false
    in
    {
      approach = "pre-runtime (dfs)";
      feasible = certified;
      detail =
        Printf.sprintf "%d states, %.1f ms%s" metrics.Search.stored
          (metrics.Search.elapsed_s *. 1000.)
          (if certified then "" else "; VALIDATOR REJECTED");
    }
  | Error f ->
    {
      approach = "pre-runtime (dfs)";
      feasible = false;
      detail = Search.failure_to_string f;
    }

let run_all ?search spec =
  List.map (runtime_row spec) Sim.all_policies @ [ pre_runtime_row ?search spec ]

let pp fmt rows =
  List.iter
    (fun row ->
      Format.fprintf fmt "  %-18s %-10s %s@." row.approach
        (if row.feasible then "feasible" else "INFEASIBLE")
        row.detail)
    rows
