lib/baseline/sim.ml: Array Ezrt_sched Ezrt_spec Hashtbl List Option String
