lib/baseline/compare.ml: Array Ezrt_blocks Ezrt_sched Ezrt_spec Format List Printf Sim
