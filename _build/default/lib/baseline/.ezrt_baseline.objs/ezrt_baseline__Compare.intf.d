lib/baseline/compare.mli: Ezrt_sched Ezrt_spec Format
