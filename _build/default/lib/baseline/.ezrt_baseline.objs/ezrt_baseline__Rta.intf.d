lib/baseline/rta.mli: Ezrt_spec Format
