lib/baseline/rta.ml: Ezrt_spec Format List
