lib/baseline/sim.mli: Ezrt_sched Ezrt_spec
