module Spec = Ezrt_spec.Spec
module Task = Ezrt_spec.Task

type policy =
  | Rate_monotonic
  | Deadline_monotonic

type task_report = {
  task : string;
  priority_rank : int;
  blocking : int;
  response_time : int option;
  schedulable : bool;
}

type report = {
  utilization : float;
  liu_layland_bound : float;
  passes_utilization_test : bool;
  tasks : task_report list;
  all_schedulable : bool;
}

let priority_key policy (t : Task.t) =
  match policy with
  | Rate_monotonic -> t.Task.period
  | Deadline_monotonic -> t.Task.deadline

(* R = C + B + sum_{j in hp} ceil(R / T_j) * C_j, iterated to a fixed
   point.  With U <= 1 the recurrence always converges within the busy
   period; the cap only guards pathological inputs. *)
let response_time ~blocking ~higher (task : Task.t) =
  let interference r =
    List.fold_left
      (fun acc (h : Task.t) ->
        acc + (((r + h.Task.period - 1) / h.Task.period) * h.Task.wcet))
      0 higher
  in
  let cap = 64 * task.Task.period in
  let rec iterate r =
    let r' = task.Task.wcet + blocking + interference r in
    if r' = r then Some r else if r' > cap then None else iterate r'
  in
  iterate task.Task.wcet

let analyze ?(policy = Deadline_monotonic) spec =
  if spec.Spec.precedences <> [] || spec.Spec.exclusions <> []
     || spec.Spec.messages <> []
  then Error "response-time analysis assumes independent tasks (no relations)"
  else if List.exists (fun (t : Task.t) -> t.Task.phase <> 0) spec.Spec.tasks
  then Error "response-time analysis assumes synchronous tasks (no phases)"
  else if not (Ezrt_spec.Validate.is_valid spec) then
    Error "specification does not validate"
  else begin
    let tasks =
      List.stable_sort
        (fun a b -> compare (priority_key policy a) (priority_key policy b))
        spec.Spec.tasks
    in
    let n = List.length tasks in
    let utilization = Spec.utilization spec in
    let bound =
      float_of_int n *. ((2. ** (1. /. float_of_int n)) -. 1.)
    in
    let reports =
      List.mapi
        (fun rank (task : Task.t) ->
          let higher = List.filteri (fun i _ -> i < rank) tasks in
          let lower = List.filteri (fun i _ -> i > rank) tasks in
          (* a lower-priority non-preemptive task can block for its
             whole computation once started *)
          let blocking =
            List.fold_left
              (fun acc (l : Task.t) ->
                match l.Task.mode with
                | Task.Non_preemptive -> max acc l.Task.wcet
                | Task.Preemptive -> acc)
              0 lower
          in
          let response = response_time ~blocking ~higher task in
          {
            task = task.Task.name;
            priority_rank = rank;
            blocking;
            response_time = response;
            schedulable =
              (match response with
              | Some r -> r <= task.Task.deadline
              | None -> false);
          })
        tasks
    in
    Ok
      {
        utilization;
        liu_layland_bound = bound;
        passes_utilization_test = utilization <= bound +. 1e-9;
        tasks = reports;
        all_schedulable = List.for_all (fun r -> r.schedulable) reports;
      }
  end

let pp fmt report =
  Format.fprintf fmt "U = %.3f, Liu-Layland bound = %.3f (%s)@."
    report.utilization report.liu_layland_bound
    (if report.passes_utilization_test then "passes" else "inconclusive");
  List.iter
    (fun t ->
      Format.fprintf fmt "  #%d %-10s B=%-3d R=%-6s %s@." t.priority_rank
        t.task t.blocking
        (match t.response_time with
        | Some r -> string_of_int r
        | None -> "diverged")
        (if t.schedulable then "ok" else "MISS"))
    report.tasks
