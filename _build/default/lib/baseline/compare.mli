(** Side-by-side feasibility of runtime policies versus the paper's
    pre-runtime synthesis — the quantitative form of the paper's
    motivation. *)

type row = {
  approach : string;  (** "edf", "rm", "dm" or "pre-runtime (dfs)" *)
  feasible : bool;
  detail : string;  (** first miss, or search statistics *)
}

val run_all : ?search:Ezrt_sched.Search.options -> Ezrt_spec.Spec.t -> row list
(** Simulates every runtime policy and runs the DFS synthesis (with
    [search] options, when given); pre-runtime results are certified
    with the independent validator before being reported feasible. *)

val pp : Format.formatter -> row list -> unit
