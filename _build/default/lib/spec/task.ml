type scheduling_mode =
  | Non_preemptive
  | Preemptive

let scheduling_mode_to_string = function
  | Non_preemptive -> "NP"
  | Preemptive -> "P"

let scheduling_mode_of_string = function
  | "NP" | "np" | "nonpreemptive" | "non-preemptive" -> Some Non_preemptive
  | "P" | "p" | "preemptive" -> Some Preemptive
  | _ -> None

type t = {
  id : string;
  name : string;
  phase : int;
  release : int;
  wcet : int;
  deadline : int;
  period : int;
  mode : scheduling_mode;
  energy : int;
  processor : string;
  code : string option;
}

let make ?id ?(phase = 0) ?(release = 0) ?(mode = Non_preemptive) ?(energy = 0)
    ?(processor = "cpu0") ?code ~name ~wcet ~deadline ~period () =
  {
    id = Option.value id ~default:name;
    name;
    phase;
    release;
    wcet;
    deadline;
    period;
    mode;
    energy;
    processor;
    code;
  }

let instances_in task horizon =
  if task.period <= 0 then 0 else horizon / task.period

let pp fmt t =
  Format.fprintf fmt "%s(ph=%d r=%d c=%d d=%d p=%d %s)" t.name t.phase t.release
    t.wcet t.deadline t.period (scheduling_mode_to_string t.mode)
