lib/spec/message.ml: Option
