lib/spec/dsl.mli: Ezrt_xml Spec
