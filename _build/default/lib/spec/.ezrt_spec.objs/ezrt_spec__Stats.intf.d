lib/spec/stats.mli: Format Spec
