lib/spec/task.mli: Format
