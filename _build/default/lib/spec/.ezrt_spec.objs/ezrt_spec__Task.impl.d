lib/spec/task.ml: Format Option
