lib/spec/message.mli:
