lib/spec/case_studies.ml: Message Printf Spec Task
