lib/spec/processor.mli:
