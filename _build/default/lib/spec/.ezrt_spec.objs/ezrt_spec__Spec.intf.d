lib/spec/spec.mli: Format Message Processor Task
