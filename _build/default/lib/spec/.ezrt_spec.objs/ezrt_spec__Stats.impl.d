lib/spec/stats.ml: Format List Printf Spec String Task
