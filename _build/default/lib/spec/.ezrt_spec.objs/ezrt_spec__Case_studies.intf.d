lib/spec/case_studies.mli: Spec
