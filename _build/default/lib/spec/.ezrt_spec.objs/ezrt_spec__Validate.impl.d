lib/spec/validate.ml: Hashtbl List Message Option Printf Processor Spec String Task
