lib/spec/dsl.ml: Ezrt_xml In_channel List Message Option Out_channel Printf Processor Spec String Task
