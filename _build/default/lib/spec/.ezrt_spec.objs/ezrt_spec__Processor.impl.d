lib/spec/processor.ml: Option
