lib/spec/spec.ml: Format List Message Printf Processor String Task
