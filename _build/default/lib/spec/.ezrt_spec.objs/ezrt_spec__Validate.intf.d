lib/spec/validate.mli: Spec
