(** Periodic tasks of the specification model (paper §3.2 and the Fig 5
    metamodel).

    A task's timing constraints are [(ph, r, c, d, p)]: phase offset of
    the first request, release time, worst-case execution time,
    deadline and period — release, WCET and deadline are relative to
    the start of each period.  The model requires [c <= d <= p]. *)

type scheduling_mode =
  | Non_preemptive
  | Preemptive

val scheduling_mode_to_string : scheduling_mode -> string
(** ["NP"] or ["P"], the DSL vocabulary of Fig 7. *)

val scheduling_mode_of_string : string -> scheduling_mode option

type t = {
  id : string;  (** metamodel [identifier] *)
  name : string;
  phase : int;
  release : int;
  wcet : int;
  deadline : int;
  period : int;
  mode : scheduling_mode;
  energy : int;  (** metamodel [energy] / DSL [power]; per-run cost *)
  processor : string;  (** processor identifier *)
  code : string option;  (** behavioural C source (metamodel SourceCode) *)
}

val make :
  ?id:string ->
  ?phase:int ->
  ?release:int ->
  ?mode:scheduling_mode ->
  ?energy:int ->
  ?processor:string ->
  ?code:string ->
  name:string ->
  wcet:int ->
  deadline:int ->
  period:int ->
  unit ->
  t
(** [id] defaults to the task name; [phase]/[release]/[energy] to 0;
    [mode] to [Non_preemptive]; [processor] to ["cpu0"].  No validation
    here — see {!Validate}. *)

val instances_in : t -> int -> int
(** [instances_in task horizon] is the number of task instances in a
    schedule period of [horizon] time units, [horizon / period]
    (the paper's [N(ti)]); phase does not change the count because the
    horizon is a multiple of the period and instances are counted per
    started period. *)

val pp : Format.formatter -> t -> unit
