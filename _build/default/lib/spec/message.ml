type t = {
  id : string;
  name : string;
  sender : string;
  receiver : string;
  bus : string;
  grant_time : int;
  comm_time : int;
}

let make ?id ?(bus = "bus0") ?(grant_time = 0) ?(comm_time = 1) ~name ~sender
    ~receiver () =
  {
    id = Option.value id ~default:name;
    name;
    sender;
    receiver;
    bus;
    grant_time;
    comm_time;
  }

let duration m = m.grant_time + m.comm_time
