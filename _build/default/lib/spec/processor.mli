(** Processors of the Fig 5 metamodel.  The paper's synthesis is
    constrained to a mono-processor architecture; the metamodel still
    names the processor so that specifications stay explicit about the
    deployment target. *)

type t = { id : string; name : string }

val make : ?id:string -> string -> t
(** [id] defaults to the name. *)
