(** Inter-task messages (Fig 5 metamodel: name, bus, grantBus,
    communication).

    A message is sent by one task to another over a bus resource; it
    implies a precedence from sender to receiver through the
    communication, which occupies the bus for [grant_time + comm_time]
    units.  Sender and receiver must share a period so that instances
    pair up. *)

type t = {
  id : string;
  name : string;
  sender : string;  (** task identifier *)
  receiver : string;  (** task identifier *)
  bus : string;  (** bus resource identifier *)
  grant_time : int;  (** metamodel [grantBus]: arbitration delay *)
  comm_time : int;  (** metamodel [communication]: transfer time *)
}

val make :
  ?id:string ->
  ?bus:string ->
  ?grant_time:int ->
  ?comm_time:int ->
  name:string ->
  sender:string ->
  receiver:string ->
  unit ->
  t
(** Defaults: [id] = name, [bus] = ["bus0"], [grant_time] = 0,
    [comm_time] = 1. *)

val duration : t -> int
(** Total bus occupancy, [grant_time + comm_time]. *)
