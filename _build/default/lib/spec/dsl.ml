module Doc = Ezrt_xml.Doc

let namespace = "http://pnmp.sf.net/EZRealtime"

type error = { context : string; message : string }

let error_to_string e = Printf.sprintf "DSL error (%s): %s" e.context e.message

exception Dsl_error of error

let fail context fmt =
  Printf.ksprintf (fun message -> raise (Dsl_error { context; message })) fmt

(* --- writing ------------------------------------------------------- *)

let refs_attr ids = String.concat " " (List.map (fun id -> "#" ^ id) ids)

let task_to_xml spec (t : Task.t) =
  let prec_targets =
    List.filter_map
      (fun (a, b) -> if String.equal a t.Task.id then Some b else None)
      spec.Spec.precedences
  in
  let excl_targets =
    List.concat_map
      (fun (a, b) ->
        if String.equal a t.Task.id then [ b ]
        else if String.equal b t.Task.id then [ a ]
        else [])
      spec.Spec.exclusions
  in
  let attrs =
    [ ("identifier", t.Task.id) ]
    @ (if prec_targets = [] then []
       else [ ("precedesTasks", refs_attr prec_targets) ])
    @
    if excl_targets = [] then []
    else [ ("excludesTasks", refs_attr excl_targets) ]
  in
  let leaf_int tag v = Doc.leaf tag (string_of_int v) in
  let children =
    [
      Doc.leaf "processor" t.Task.processor;
      Doc.leaf "name" t.Task.name;
      leaf_int "period" t.Task.period;
      leaf_int "phase" t.Task.phase;
      leaf_int "release" t.Task.release;
      leaf_int "power" t.Task.energy;
      Doc.leaf "schedulingMode" (Task.scheduling_mode_to_string t.Task.mode);
      leaf_int "computing" t.Task.wcet;
      leaf_int "deadline" t.Task.deadline;
    ]
    @ match t.Task.code with
      | Some code -> [ Doc.leaf "sourceCode" code ]
      | None -> []
  in
  Doc.elt "Task" ~attrs children

let message_to_xml (m : Message.t) =
  Doc.elt "Message"
    ~attrs:[ ("identifier", m.Message.id); ("bus", m.Message.bus) ]
    [
      Doc.leaf "name" m.Message.name;
      Doc.leaf "from" ("#" ^ m.Message.sender);
      Doc.leaf "to" ("#" ^ m.Message.receiver);
      Doc.leaf "grantBus" (string_of_int m.Message.grant_time);
      Doc.leaf "communication" (string_of_int m.Message.comm_time);
    ]

let processor_to_xml (p : Processor.t) =
  Doc.elt "Processor"
    ~attrs:[ ("identifier", p.Processor.id) ]
    [ Doc.leaf "name" p.Processor.name ]

let to_xml spec =
  let attrs =
    [ ("xmlns:rt", namespace); ("name", spec.Spec.name) ]
    @
    if spec.Spec.disp_overhead = 0 then []
    else [ ("dispatcherOverhead", string_of_int spec.Spec.disp_overhead) ]
  in
  Doc.elt "rt:ez-spec" ~attrs
    (List.map processor_to_xml spec.Spec.processors
    @ List.map (task_to_xml spec) spec.Spec.tasks
    @ List.map message_to_xml spec.Spec.messages)

let to_string spec = Doc.to_string_pretty ~decl:true (to_xml spec)

(* --- reading ------------------------------------------------------- *)

let strip_ref context s =
  let s = String.trim s in
  if String.length s > 1 && s.[0] = '#' then String.sub s 1 (String.length s - 1)
  else fail context "expected a #id reference, got %S" s

let refs_of_attr context s =
  String.split_on_char ' ' s
  |> List.filter (fun tok -> String.trim tok <> "")
  |> List.map (strip_ref context)

let int_child context node tag ~default =
  match Doc.child_text node tag with
  | None -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v -> v
    | None -> fail context "element <%s> is not an integer: %S" tag s)

let req_int_child context node tag =
  match Doc.child_text node tag with
  | None -> fail context "missing element <%s>" tag
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v -> v
    | None -> fail context "element <%s> is not an integer: %S" tag s)

let task_of_xml node =
  let id =
    match Doc.attr node "identifier" with
    | Some id -> id
    | None -> fail "Task" "missing identifier attribute"
  in
  let context = Printf.sprintf "Task %s" id in
  let name =
    match Doc.child_text node "name" with
    | Some n -> String.trim n
    | None -> id
  in
  let mode =
    match Doc.child_text node "schedulingMode" with
    | None -> Task.Non_preemptive
    | Some s -> (
      match Task.scheduling_mode_of_string (String.trim s) with
      | Some m -> m
      | None -> fail context "unknown schedulingMode %S" s)
  in
  let code = Doc.child_text node "sourceCode" in
  let processor =
    match Doc.child_text node "processor" with
    | Some p -> String.trim p
    | None -> "cpu0"
  in
  let task =
    Task.make ~id ~name
      ~phase:(int_child context node "phase" ~default:0)
      ~release:(int_child context node "release" ~default:0)
      ~energy:(int_child context node "power" ~default:0)
      ~mode ~processor ?code
      ~wcet:(req_int_child context node "computing")
      ~deadline:(req_int_child context node "deadline")
      ~period:(req_int_child context node "period")
      ()
  in
  let prec =
    match Doc.attr node "precedesTasks" with
    | None -> []
    | Some s -> List.map (fun b -> (id, b)) (refs_of_attr context s)
  in
  let excl =
    match Doc.attr node "excludesTasks" with
    | None -> []
    | Some s -> List.map (fun b -> (id, b)) (refs_of_attr context s)
  in
  (task, prec, excl)

let message_of_xml node =
  let id =
    match Doc.attr node "identifier" with
    | Some id -> id
    | None -> fail "Message" "missing identifier attribute"
  in
  let context = Printf.sprintf "Message %s" id in
  let text tag =
    match Doc.child_text node tag with
    | Some s -> String.trim s
    | None -> fail context "missing element <%s>" tag
  in
  Message.make ~id
    ~bus:(Option.value (Doc.attr node "bus") ~default:"bus0")
    ~grant_time:(int_child context node "grantBus" ~default:0)
    ~comm_time:(int_child context node "communication" ~default:1)
    ~name:(match Doc.child_text node "name" with Some n -> String.trim n | None -> id)
    ~sender:(strip_ref context (text "from"))
    ~receiver:(strip_ref context (text "to"))
    ()

let processor_of_xml node =
  let id =
    match Doc.attr node "identifier" with
    | Some id -> id
    | None -> fail "Processor" "missing identifier attribute"
  in
  let name =
    match Doc.child_text node "name" with
    | Some n -> String.trim n
    | None -> id
  in
  { Processor.id; name }

let of_xml node =
  match
    (match Doc.tag_of node with
    | Some "rt:ez-spec" | Some "ez-spec" -> ()
    | Some other -> fail "root" "expected <rt:ez-spec>, got <%s>" other
    | None -> fail "root" "expected an element");
    let name = Option.value (Doc.attr node "name") ~default:"untitled" in
    let disp_overhead =
      match Doc.attr node "dispatcherOverhead" with
      | None -> 0
      | Some s -> (
        match int_of_string_opt s with
        | Some v -> v
        | None -> fail "root" "dispatcherOverhead is not an integer: %S" s)
    in
    let parsed = List.map task_of_xml (Doc.find_children node "Task") in
    let tasks = List.map (fun (t, _, _) -> t) parsed in
    let precedences = List.concat_map (fun (_, p, _) -> p) parsed in
    let exclusions = List.concat_map (fun (_, _, e) -> e) parsed in
    let messages = List.map message_of_xml (Doc.find_children node "Message") in
    let processors =
      match Doc.find_children node "Processor" with
      | [] -> None
      | procs -> Some (List.map processor_of_xml procs)
    in
    Spec.make ~disp_overhead ?processors ~messages ~precedences ~exclusions
      ~name ~tasks ()
  with
  | spec -> Ok spec
  | exception Dsl_error e -> Error e

let of_string s =
  match Ezrt_xml.Parser.parse s with
  | Error e ->
    Error { context = "XML"; message = Ezrt_xml.Parser.error_to_string e }
  | Ok node -> of_xml node

let of_string_exn s =
  match of_string s with
  | Ok spec -> spec
  | Error e -> failwith (error_to_string e)

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_string contents
  | exception Sys_error msg -> Error { context = "file"; message = msg }

let save_file path spec =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string spec))
