type error =
  | No_tasks
  | Duplicate_task_id of string
  | Duplicate_task_name of string
  | Bad_timing of string * string
  | Unknown_processor of string * string
  | Multi_processor of string list
  | Unknown_task_ref of string * string
  | Self_relation of string * string
  | Precedence_cycle of string list
  | Period_mismatch of string * string * string
  | Overutilized of float
  | Bad_message of string * string

type warning =
  | Exclusion_with_precedence of string * string
  | Zero_wcet_task of string

let error_to_string = function
  | No_tasks -> "specification has no tasks"
  | Duplicate_task_id id -> Printf.sprintf "duplicate task identifier %S" id
  | Duplicate_task_name n -> Printf.sprintf "duplicate task name %S" n
  | Bad_timing (task, what) ->
    Printf.sprintf "task %s violates timing constraint %s" task what
  | Unknown_processor (task, proc) ->
    Printf.sprintf "task %s references unknown processor %S" task proc
  | Multi_processor procs ->
    Printf.sprintf
      "tasks are deployed on %d processors (%s); the synthesis is \
       mono-processor"
      (List.length procs) (String.concat ", " procs)
  | Unknown_task_ref (ctx, id) ->
    Printf.sprintf "%s references unknown task %S" ctx id
  | Self_relation (kind, id) ->
    Printf.sprintf "%s relation of task %S with itself" kind id
  | Precedence_cycle cycle ->
    Printf.sprintf "precedence cycle: %s" (String.concat " -> " cycle)
  | Period_mismatch (ctx, a, b) ->
    Printf.sprintf "%s between %s and %s requires equal periods" ctx a b
  | Overutilized u ->
    Printf.sprintf "processor utilization %.3f exceeds 1.0" u
  | Bad_message (name, what) -> Printf.sprintf "message %s: %s" name what

let warning_to_string = function
  | Exclusion_with_precedence (a, b) ->
    Printf.sprintf
      "tasks %s and %s are both ordered by precedence and excluded; the \
       exclusion is redundant"
      a b
  | Zero_wcet_task name -> Printf.sprintf "task %s has zero WCET" name

type outcome = { errors : error list; warnings : warning list }

let check_task (t : Task.t) =
  let errs = ref [] in
  let bad what = errs := Bad_timing (t.Task.name, what) :: !errs in
  if t.Task.wcet < 0 then bad "c >= 0";
  if t.Task.phase < 0 then bad "ph >= 0";
  if t.Task.release < 0 then bad "r >= 0";
  if t.Task.period <= 0 then bad "p >= 1";
  if t.Task.deadline <= 0 then bad "d >= 1";
  if t.Task.wcet > t.Task.deadline then bad "c <= d";
  if t.Task.deadline > t.Task.period then bad "d <= p";
  if t.Task.release + t.Task.wcet > t.Task.deadline then bad "r + c <= d";
  List.rev !errs

(* DFS cycle detection over the precedence edges; returns one cycle. *)
let find_cycle tasks precedences =
  let succ = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      let old = Option.value (Hashtbl.find_opt succ a) ~default:[] in
      Hashtbl.replace succ a (b :: old))
    precedences;
  let state = Hashtbl.create 16 in
  (* 0 = in progress, 1 = done *)
  let exception Cycle of string list in
  let rec visit path id =
    match Hashtbl.find_opt state id with
    | Some 1 -> ()
    | Some _ ->
      let rec cut = function
        | [] -> [ id ]
        | x :: rest -> if String.equal x id then [ x ] else x :: cut rest
      in
      raise (Cycle (List.rev (id :: cut path)))
    | None ->
      Hashtbl.replace state id 0;
      List.iter (visit (id :: path))
        (Option.value (Hashtbl.find_opt succ id) ~default:[]);
      Hashtbl.replace state id 1
  in
  match List.iter (fun (t : Task.t) -> visit [] t.Task.id) tasks with
  | () -> None
  | exception Cycle c -> Some c

let check spec =
  let errors = ref [] in
  let warnings = ref [] in
  let err e = errors := e :: !errors in
  let warn w = warnings := w :: !warnings in
  let tasks = spec.Spec.tasks in
  if tasks = [] then err No_tasks;
  let seen_ids = Hashtbl.create 16 in
  let seen_names = Hashtbl.create 16 in
  List.iter
    (fun (t : Task.t) ->
      if Hashtbl.mem seen_ids t.Task.id then err (Duplicate_task_id t.Task.id)
      else Hashtbl.add seen_ids t.Task.id ();
      if Hashtbl.mem seen_names t.Task.name then
        err (Duplicate_task_name t.Task.name)
      else Hashtbl.add seen_names t.Task.name ();
      List.iter err (check_task t);
      if t.Task.wcet = 0 then warn (Zero_wcet_task t.Task.name))
    tasks;
  let proc_ids =
    List.map (fun (p : Processor.t) -> p.Processor.id) spec.Spec.processors
  in
  List.iter
    (fun (t : Task.t) ->
      if not (List.mem t.Task.processor proc_ids) then
        err (Unknown_processor (t.Task.name, t.Task.processor)))
    tasks;
  let used_procs =
    List.sort_uniq compare (List.map (fun (t : Task.t) -> t.Task.processor) tasks)
  in
  if List.length used_procs > 1 then err (Multi_processor used_procs);
  let known id = Hashtbl.mem seen_ids id in
  let check_pair ~pair_periods ctx (a, b) =
    if not (known a) then err (Unknown_task_ref (ctx, a));
    if not (known b) then err (Unknown_task_ref (ctx, b));
    if String.equal a b then err (Self_relation (ctx, a));
    if pair_periods then
      match Spec.find_task spec a, Spec.find_task spec b with
      | Some ta, Some tb when ta.Task.period <> tb.Task.period ->
        err (Period_mismatch (ctx, ta.Task.name, tb.Task.name))
      | Some _, Some _ | None, _ | _, None -> ()
  in
  (* precedence pairs instances one-to-one, so periods must agree;
     exclusion is a mutex and works across any periods *)
  List.iter (check_pair ~pair_periods:true "precedence") spec.Spec.precedences;
  List.iter (check_pair ~pair_periods:false "exclusion") spec.Spec.exclusions;
  (match find_cycle tasks spec.Spec.precedences with
  | Some cycle -> err (Precedence_cycle cycle)
  | None -> ());
  List.iter
    (fun (a, b) ->
      if Spec.precedes spec a b || Spec.precedes spec b a then
        warn (Exclusion_with_precedence (a, b)))
    spec.Spec.exclusions;
  List.iter
    (fun (m : Message.t) ->
      let ctx = Printf.sprintf "message %s" m.Message.name in
      if not (known m.Message.sender) then
        err (Unknown_task_ref (ctx, m.Message.sender));
      if not (known m.Message.receiver) then
        err (Unknown_task_ref (ctx, m.Message.receiver));
      if String.equal m.Message.sender m.Message.receiver then
        err (Self_relation ("message", m.Message.sender));
      if m.Message.comm_time < 0 || m.Message.grant_time < 0 then
        err (Bad_message (m.Message.name, "negative communication time"));
      match
        Spec.find_task spec m.Message.sender, Spec.find_task spec m.Message.receiver
      with
      | Some ta, Some tb when ta.Task.period <> tb.Task.period ->
        err (Period_mismatch (ctx, ta.Task.name, tb.Task.name))
      | Some _, Some _ | None, _ | _, None -> ())
    spec.Spec.messages;
  if tasks <> [] && not (List.exists (fun (t : Task.t) -> t.Task.period <= 0) tasks)
  then begin
    let u = Spec.utilization spec in
    if u > 1.0 +. 1e-9 then err (Overutilized u)
  end;
  { errors = List.rev !errors; warnings = List.rev !warnings }

let is_valid spec = (check spec).errors = []

let check_exn spec =
  match (check spec).errors with
  | [] -> ()
  | errors ->
    failwith
      (Printf.sprintf "invalid specification %s: %s" spec.Spec.name
         (String.concat "; " (List.map error_to_string errors)))
