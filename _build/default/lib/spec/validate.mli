(** Well-formedness of specifications, checked before translation.

    Errors make the specification meaningless or certainly infeasible;
    warnings flag suspicious but admissible modeling. *)

type error =
  | No_tasks
  | Duplicate_task_id of string
  | Duplicate_task_name of string
  | Bad_timing of string * string
      (** task name, violated constraint (e.g. ["c <= d"]) *)
  | Unknown_processor of string * string  (** task name, processor id *)
  | Multi_processor of string list
      (** the paper's synthesis is mono-processor; the distinct
          processor ids used by tasks *)
  | Unknown_task_ref of string * string  (** context, missing task id *)
  | Self_relation of string * string  (** relation kind, task id *)
  | Precedence_cycle of string list  (** one cycle, in order *)
  | Period_mismatch of string * string * string
      (** context, task a, task b: instance-wise relations require
          equal periods *)
  | Overutilized of float
  | Bad_message of string * string  (** message name, problem *)

type warning =
  | Exclusion_with_precedence of string * string
      (** an excluded pair that is also ordered by precedence — the
          exclusion is then redundant *)
  | Zero_wcet_task of string

val error_to_string : error -> string
val warning_to_string : warning -> string

type outcome = { errors : error list; warnings : warning list }

val check : Spec.t -> outcome
val is_valid : Spec.t -> bool

val check_exn : Spec.t -> unit
(** Raises [Failure] listing every error when the spec is invalid. *)
