(** The ezRealtime XML DSL (paper Fig 7).

    The vocabulary follows the figure — root [rt:ez-spec] in the
    [http://pnmp.sf.net/EZRealtime] namespace, one [Task] element per
    task with [identifier], [precedesTasks] and [excludesTasks]
    reference attributes (["#id"] tokens, space-separated) and child
    elements [processor], [name], [period], [phase], [release],
    [power], [schedulingMode] (NP/P), [computing], [deadline] and
    [sourceCode] — extended with [Processor] and [Message] elements for
    the rest of the Fig 5 metamodel. *)

val namespace : string

val to_xml : Spec.t -> Ezrt_xml.Doc.node
val to_string : Spec.t -> string
(** Pretty-printed document with the XML declaration. *)

type error = { context : string; message : string }

val error_to_string : error -> string

val of_xml : Ezrt_xml.Doc.node -> (Spec.t, error) result
val of_string : string -> (Spec.t, error) result
val of_string_exn : string -> Spec.t

val load_file : string -> (Spec.t, error) result
val save_file : string -> Spec.t -> unit
