(** The specifications used by the paper's figures and case study. *)

val mine_pump : Spec.t
(** Table 1: the simplified mine pump control system (Burns &
    Wellings HRT-HOOD).  10 non-preemptive tasks, hyper-period 30000,
    782 task instances. *)

val mine_pump_expected_instances : int
(** 782, the instance count reported in §5. *)

val fig3_precedence : Spec.t
(** The two tasks of Fig 3: T1 (c=15, d=100) PRECEDES T2 (c=20, d=150),
    both with period 250. *)

val fig4_exclusion : Spec.t
(** The two preemptive tasks of Fig 4: T0 (c=10, d=100) EXCLUDES
    T2 (c=20, d=150), both with period 250. *)

val fig8_preemptive : Spec.t
(** A four-task preemptive set (TaskA..TaskD) whose synthesized
    schedule exhibits the preempt/resume structure of the Fig 8
    schedule table. *)

val quickstart : Spec.t
(** A small three-task non-preemptive set with one precedence, used by
    the quickstart example and the documentation. *)

val greedy_trap : Spec.t
(** Two non-preemptive tasks for which every work-conserving runtime
    policy (EDF, RM, DM) misses a deadline, while the pre-runtime
    search with inserted idle time ([latest_release]) finds a feasible
    schedule — the classic motivation for pre-runtime scheduling
    (Mok). *)

val flight_control : Spec.t
(** A small flight-control deployment exercising the whole metamodel
    at once: eight tasks with phases, preemptive and non-preemptive
    modes, two bus messages (gyro frames and actuator commands over
    CAN), a precedence chain and an exclusion on a shared parameter
    table. *)

val all : (string * Spec.t) list
(** Every case study, keyed by a short slug. *)
