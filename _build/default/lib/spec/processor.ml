type t = { id : string; name : string }

let make ?id name = { id = Option.value id ~default:name; name }
