(* Mine pump task codes: minimal plausible C bodies so that generated
   programs are self-contained; the paper takes the real bodies from
   the HRT-HOOD case study. *)
let mine_code name body =
  Some (Printf.sprintf "/* %s */\n%s" name body)

let mine_task ?code ~name ~wcet ~deadline ~period () =
  Task.make ~name ~wcet ~deadline ~period
    ?code ~mode:Task.Non_preemptive ()

let mine_pump =
  let tasks =
    [
      mine_task ~name:"PMC" ~wcet:10 ~deadline:20 ~period:80
        ?code:(mine_code "pump motor control" "pump_set(pump_command());") ();
      mine_task ~name:"WFC" ~wcet:15 ~deadline:500 ~period:500
        ?code:(mine_code "water flow check" "check_water_flow();") ();
      mine_task ~name:"RLWH" ~wcet:1 ~deadline:1000 ~period:1000
        ?code:(mine_code "read low water handler" "read_low_water_sensor();") ();
      mine_task ~name:"CH4H" ~wcet:25 ~deadline:500 ~period:500
        ?code:(mine_code "methane handler" "handle_ch4_level();") ();
      mine_task ~name:"CH4S" ~wcet:5 ~deadline:100 ~period:500
        ?code:(mine_code "methane sensor" "sample_ch4();") ();
      mine_task ~name:"COH" ~wcet:15 ~deadline:100 ~period:2500
        ?code:(mine_code "carbon monoxide handler" "handle_co_level();") ();
      mine_task ~name:"AFH" ~wcet:15 ~deadline:200 ~period:6000
        ?code:(mine_code "air flow handler" "handle_air_flow();") ();
      mine_task ~name:"WFH" ~wcet:15 ~deadline:300 ~period:500
        ?code:(mine_code "water flow handler" "handle_water_flow();") ();
      mine_task ~name:"PDL" ~wcet:15 ~deadline:500 ~period:500
        ?code:(mine_code "pump data logger" "log_pump_data();") ();
      mine_task ~name:"SDL" ~wcet:10 ~deadline:500 ~period:500
        ?code:(mine_code "sensor data logger" "log_sensor_data();") ();
    ]
  in
  Spec.make ~name:"mine-pump" ~tasks ()

let mine_pump_expected_instances = 782

let fig3_precedence =
  let t1 = Task.make ~name:"T1" ~wcet:15 ~deadline:100 ~period:250 () in
  let t2 = Task.make ~name:"T2" ~wcet:20 ~deadline:150 ~period:250 () in
  Spec.make ~name:"fig3-precedence" ~tasks:[ t1; t2 ]
    ~precedences:[ ("T1", "T2") ] ()

let fig4_exclusion =
  let t0 =
    Task.make ~name:"T0" ~wcet:10 ~deadline:100 ~period:250
      ~mode:Task.Preemptive ()
  in
  let t2 =
    Task.make ~name:"T2" ~wcet:20 ~deadline:150 ~period:250
      ~mode:Task.Preemptive ()
  in
  Spec.make ~name:"fig4-exclusion" ~tasks:[ t0; t2 ]
    ~exclusions:[ ("T0", "T2") ] ()

(* Four preemptive tasks with tight short-deadline interferers so that
   the feasible schedule must preempt and resume, as in Fig 8. *)
let fig8_preemptive =
  let task = Task.make ~mode:Task.Preemptive in
  Spec.make ~name:"fig8-preemptive"
    ~tasks:
      [
        task ~name:"TaskA" ~wcet:8 ~deadline:30 ~period:30 ();
        task ~name:"TaskB" ~wcet:6 ~deadline:12 ~period:15 ();
        task ~name:"TaskC" ~wcet:2 ~deadline:4 ~period:10 ();
        task ~name:"TaskD" ~wcet:1 ~deadline:30 ~period:30 ();
      ]
    ()

let quickstart =
  let sample =
    Task.make ~name:"sample" ~wcet:2 ~deadline:10 ~period:20
      ~code:"adc_read(&sample_buffer);" ()
  in
  let filter =
    Task.make ~name:"filter" ~wcet:4 ~deadline:16 ~period:20
      ~code:"fir_filter(sample_buffer, filtered);" ()
  in
  let actuate =
    Task.make ~name:"actuate" ~wcet:3 ~deadline:20 ~period:20
      ~code:"dac_write(filtered[0]);" ()
  in
  Spec.make ~name:"quickstart" ~tasks:[ sample; filter; actuate ]
    ~precedences:[ ("sample", "filter"); ("filter", "actuate") ]
    ()

(* At t=0 only [background] is ready, so any work-conserving scheduler
   starts it; [urgent] then arrives at t=1 with a window that closes at
   t=2, inside the non-preemptive background computation.  The only
   feasible schedules leave the processor idle at t=0. *)
let greedy_trap =
  Spec.make ~name:"greedy-trap"
    ~tasks:
      [
        Task.make ~name:"background" ~wcet:3 ~deadline:20 ~period:20 ();
        Task.make ~name:"urgent" ~phase:1 ~wcet:3 ~deadline:4 ~period:20 ();
      ]
    ()

(* Eight tasks, hyper-period 200.  The gyro drives the attitude filter
   over CAN; the controller commands the servos over the same bus; the
   tuner and the controller share a gain table (exclusion). *)
let flight_control =
  let np = Task.make ~mode:Task.Non_preemptive in
  let p = Task.make ~mode:Task.Preemptive in
  Spec.make ~name:"flight-control"
    ~tasks:
      [
        np ~name:"gyro" ~wcet:2 ~deadline:10 ~period:50
          ~code:"gyro_read(&rates);" ();
        p ~name:"attitude" ~wcet:8 ~deadline:40 ~period:50 ~energy:4
          ~code:"kalman_update(&rates, &att);" ();
        p ~name:"control" ~wcet:6 ~deadline:50 ~period:50 ~energy:3
          ~code:"pid_attitude(&att, &cmd);" ();
        np ~name:"servo" ~wcet:2 ~deadline:50 ~period:50
          ~code:"servo_apply(&cmd);" ();
        np ~name:"baro" ~wcet:3 ~deadline:100 ~period:100
          ~code:"baro_sample(&alt);" ();
        p ~name:"tuner" ~wcet:5 ~deadline:200 ~period:200
          ~code:"gain_schedule(&att);" ();
        np ~name:"telemetry" ~wcet:7 ~deadline:200 ~period:200 ~phase:20
          ~code:"telemetry_pack();" ();
        np ~name:"watchdog" ~wcet:1 ~deadline:25 ~period:25
          ~code:"wdt_kick();" ();
      ]
    ~messages:
      [
        Message.make ~name:"gyro_frame" ~sender:"gyro" ~receiver:"attitude"
          ~bus:"can0" ~grant_time:1 ~comm_time:2 ();
        Message.make ~name:"servo_cmd" ~sender:"control" ~receiver:"servo"
          ~bus:"can0" ~grant_time:1 ~comm_time:2 ();
      ]
    ~precedences:[ ("attitude", "control") ]
    ~exclusions:[ ("tuner", "control") ]
    ()

let all =
  [
    ("mine-pump", mine_pump);
    ("flight-control", flight_control);
    ("fig3", fig3_precedence);
    ("fig4", fig4_exclusion);
    ("fig8", fig8_preemptive);
    ("quickstart", quickstart);
    ("greedy-trap", greedy_trap);
  ]
