open Ezrt_tpn
module Doc = Ezrt_xml.Doc

let tool_name = "ezrealtime"
let net_type = "http://www.pnml.org/version-2009/grammar/ptnet"
let pnml_ns = "http://www.pnml.org/version-2009/grammar/pnml"

type error = { context : string; message : string }

let error_to_string e = Printf.sprintf "PNML error (%s): %s" e.context e.message

exception Pnml_error of error

let fail context fmt =
  Printf.ksprintf (fun message -> raise (Pnml_error { context; message })) fmt

(* --- writing ------------------------------------------------------- *)

let name_elt text = Doc.elt "name" [ Doc.leaf "text" text ]

let place_to_xml (net : Pnet.t) p =
  let marking = net.Pnet.m0.(p) in
  Doc.elt "place"
    ~attrs:[ ("id", Printf.sprintf "p%d" p) ]
    (name_elt (Pnet.place_name net p)
    ::
    (if marking = 0 then []
     else
       [
         Doc.elt "initialMarking" [ Doc.leaf "text" (string_of_int marking) ];
       ]))

let transition_to_xml (net : Pnet.t) tid =
  let itv = Pnet.interval net tid in
  let interval_attrs =
    ("eft", string_of_int (Time_interval.eft itv))
    ::
    (match Time_interval.lft itv with
    | Time_interval.Finite l -> [ ("lft", string_of_int l) ]
    | Time_interval.Infinity -> [])
  in
  let tool_children =
    [ Doc.elt "interval" ~attrs:interval_attrs [] ]
    @ (if Pnet.priority net tid = Pnet.default_priority then []
       else [ Doc.leaf "priority" (string_of_int (Pnet.priority net tid)) ])
    @
    match net.Pnet.transitions.(tid).Pnet.code with
    | Some code -> [ Doc.leaf "code" code ]
    | None -> []
  in
  Doc.elt "transition"
    ~attrs:[ ("id", Printf.sprintf "t%d" tid) ]
    [
      name_elt (Pnet.transition_name net tid);
      Doc.elt "toolspecific"
        ~attrs:[ ("tool", tool_name); ("version", "1.0") ]
        tool_children;
    ]

let arcs_to_xml (net : Pnet.t) =
  let arcs = ref [] in
  let counter = ref 0 in
  let emit source target weight =
    let id = Printf.sprintf "a%d" !counter in
    incr counter;
    let children =
      if weight = 1 then []
      else [ Doc.elt "inscription" [ Doc.leaf "text" (string_of_int weight) ] ]
    in
    arcs :=
      Doc.elt "arc" ~attrs:[ ("id", id); ("source", source); ("target", target) ]
        children
      :: !arcs
  in
  Array.iteri
    (fun tid pre ->
      Array.iter
        (fun (p, w) ->
          emit (Printf.sprintf "p%d" p) (Printf.sprintf "t%d" tid) w)
        pre)
    net.Pnet.pre;
  Array.iteri
    (fun tid post ->
      Array.iter
        (fun (p, w) ->
          emit (Printf.sprintf "t%d" tid) (Printf.sprintf "p%d" p) w)
        post)
    net.Pnet.post;
  List.rev !arcs

let to_xml (net : Pnet.t) =
  let places =
    List.init (Pnet.place_count net) (fun p -> place_to_xml net p)
  in
  let transitions =
    List.init (Pnet.transition_count net) (fun tid -> transition_to_xml net tid)
  in
  let page =
    Doc.elt "page"
      ~attrs:[ ("id", "page0") ]
      (places @ transitions @ arcs_to_xml net)
  in
  Doc.elt "pnml"
    ~attrs:[ ("xmlns", pnml_ns) ]
    [
      Doc.elt "net"
        ~attrs:[ ("id", "net0"); ("type", net_type) ]
        [ name_elt net.Pnet.net_name; page ];
    ]

let to_string net = Doc.to_string_pretty ~decl:true (to_xml net)

(* --- reading ------------------------------------------------------- *)

let text_of_name node =
  match Doc.find_child node "name" with
  | Some name -> Doc.child_text name "text"
  | None -> None

let int_text context node tag ~default =
  match Doc.find_child node tag with
  | None -> default
  | Some child -> (
    match Doc.child_text child "text" with
    | None -> default
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v -> v
      | None -> fail context "<%s> text is not an integer: %S" tag s))

let find_toolspecific node =
  List.find_opt
    (fun ts -> Doc.attr ts "tool" = Some tool_name)
    (Doc.find_children node "toolspecific")

let transition_extras context node =
  match find_toolspecific node with
  | None -> (Time_interval.make_unbounded 0, Pnet.default_priority, None)
  | Some ts ->
    let interval =
      match Doc.find_child ts "interval" with
      | None -> Time_interval.make_unbounded 0
      | Some itv -> (
        let attr_int key =
          Option.bind (Doc.attr itv key) int_of_string_opt
        in
        match attr_int "eft", Doc.attr itv "lft" with
        | Some eft, None -> Time_interval.make_unbounded eft
        | Some eft, Some _ -> (
          match attr_int "lft" with
          | Some lft -> Time_interval.make eft lft
          | None -> fail context "interval lft is not an integer")
        | None, _ -> fail context "interval without eft attribute")
    in
    let priority =
      match Doc.child_text ts "priority" with
      | None -> Pnet.default_priority
      | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some p -> p
        | None -> fail context "priority is not an integer: %S" s)
    in
    (interval, priority, Doc.child_text ts "code")

let node_id context node =
  match Doc.attr node "id" with
  | Some id -> id
  | None -> fail context "missing id attribute"

let of_xml root =
  match
    (match Doc.tag_of root with
    | Some "pnml" -> ()
    | Some other -> fail "root" "expected <pnml>, got <%s>" other
    | None -> fail "root" "expected an element");
    let net_node =
      match Doc.find_child root "net" with
      | Some n -> n
      | None -> fail "root" "missing <net>"
    in
    let net_name = Option.value (text_of_name net_node) ~default:"pnml-net" in
    let pages =
      match Doc.find_children net_node "page" with
      | [] -> [ net_node ]  (* tolerate pageless documents *)
      | pages -> pages
    in
    let b = Pnet.Builder.create net_name in
    let place_ids = Hashtbl.create 64 in
    let trans_ids = Hashtbl.create 64 in
    List.iter
      (fun page ->
        List.iter
          (fun node ->
            let id = node_id "place" node in
            let context = Printf.sprintf "place %s" id in
            let name = Option.value (text_of_name node) ~default:id in
            let tokens = int_text context node "initialMarking" ~default:0 in
            Hashtbl.replace place_ids id
              (Pnet.Builder.add_place b ~tokens name))
          (Doc.find_children page "place"))
      pages;
    List.iter
      (fun page ->
        List.iter
          (fun node ->
            let id = node_id "transition" node in
            let context = Printf.sprintf "transition %s" id in
            let name = Option.value (text_of_name node) ~default:id in
            let interval, priority, code = transition_extras context node in
            Hashtbl.replace trans_ids id
              (Pnet.Builder.add_transition b ~priority ?code name interval))
          (Doc.find_children page "transition"))
      pages;
    List.iter
      (fun page ->
        List.iter
          (fun node ->
            let id = node_id "arc" node in
            let context = Printf.sprintf "arc %s" id in
            let source =
              match Doc.attr node "source" with
              | Some s -> s
              | None -> fail context "missing source"
            in
            let target =
              match Doc.attr node "target" with
              | Some t -> t
              | None -> fail context "missing target"
            in
            let weight = int_text context node "inscription" ~default:1 in
            match
              Hashtbl.find_opt place_ids source, Hashtbl.find_opt trans_ids target
            with
            | Some p, Some t -> Pnet.Builder.arc_pt b ~weight p t
            | _ -> (
              match
                Hashtbl.find_opt trans_ids source, Hashtbl.find_opt place_ids target
              with
              | Some t, Some p -> Pnet.Builder.arc_tp b ~weight t p
              | _ -> fail context "source/target do not name a place-transition pair"))
          (Doc.find_children page "arc"))
      pages;
    Pnet.Builder.build b
  with
  | net -> Ok net
  | exception Pnml_error e -> Error e
  | exception Invalid_argument msg -> Error { context = "build"; message = msg }

let of_string s =
  match Ezrt_xml.Parser.parse s with
  | Error e ->
    Error { context = "XML"; message = Ezrt_xml.Parser.error_to_string e }
  | Ok node -> of_xml node

let of_string_exn s =
  match of_string s with
  | Ok net -> net
  | Error e -> failwith (error_to_string e)

let save_file path net =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string net))

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_string contents
  | exception Sys_error msg -> Error { context = "file"; message = msg }
