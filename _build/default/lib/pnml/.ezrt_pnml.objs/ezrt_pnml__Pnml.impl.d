lib/pnml/pnml.ml: Array Ezrt_tpn Ezrt_xml Hashtbl In_channel List Option Out_channel Pnet Printf String Time_interval
