lib/pnml/pnml.mli: Ezrt_tpn Ezrt_xml
