(** PNML (ISO/IEC 15909-2) transfer syntax for the generated time Petri
    nets — the paper's exchange format (§4.1).

    The document follows the standard structure
    [pnml > net > page > place | transition | arc] with [initialMarking]
    on places and [inscription] (arc weight) on arcs.  Timing intervals,
    priorities and code bindings are not part of core PNML, so they
    travel in a [toolspecific tool="ezrealtime"] extension on each
    transition, as the standard prescribes for tool extensions. *)

val tool_name : string
val net_type : string

val to_xml : Ezrt_tpn.Pnet.t -> Ezrt_xml.Doc.node
val to_string : Ezrt_tpn.Pnet.t -> string
(** Pretty-printed document with XML declaration. *)

type error = { context : string; message : string }

val error_to_string : error -> string

val of_xml : Ezrt_xml.Doc.node -> (Ezrt_tpn.Pnet.t, error) result
(** Rebuilds a net from a PNML document.  Unknown [toolspecific]
    sections are ignored; a transition without an ezRealtime interval
    gets the unbounded default interval [[0, inf)], the usual reading
    of an untimed PNML transition. *)

val of_string : string -> (Ezrt_tpn.Pnet.t, error) result
val of_string_exn : string -> Ezrt_tpn.Pnet.t

val save_file : string -> Ezrt_tpn.Pnet.t -> unit
val load_file : string -> (Ezrt_tpn.Pnet.t, error) result
