lib/runtime/vm.ml: Array Ezrt_blocks Ezrt_sched Ezrt_spec Hashtbl List Option Printf
