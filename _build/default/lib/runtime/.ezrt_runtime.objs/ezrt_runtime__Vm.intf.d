lib/runtime/vm.mli: Ezrt_blocks Ezrt_sched
